// Tests for the binary trace serialisation: round-trips, format stability,
// and corruption handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "cpu/trace_io.hpp"
#include "workload/workloads.hpp"

namespace cpc::cpu {
namespace {

Trace sample_trace() {
  Trace t;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    MicroOp op;
    op.pc = 0x1000 + i * 4;
    op.addr = 0x1000'0000u + i * 8;
    op.value = i * 2654435761u;
    op.kind = static_cast<OpKind>(i % 9);
    op.dep1 = static_cast<std::uint8_t>(i % 7);
    op.dep2 = static_cast<std::uint8_t>(i % 3);
    op.flags = static_cast<std::uint8_t>(i % 2);
    t.push_back(op);
  }
  return t;
}

TEST(TraceIo, RoundTripPreservesEveryField) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_trace(buf, original);
  const Trace loaded = read_trace(buf);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].pc, original[i].pc);
    EXPECT_EQ(loaded[i].addr, original[i].addr);
    EXPECT_EQ(loaded[i].value, original[i].value);
    EXPECT_EQ(static_cast<int>(loaded[i].kind), static_cast<int>(original[i].kind));
    EXPECT_EQ(loaded[i].dep1, original[i].dep1);
    EXPECT_EQ(loaded[i].dep2, original[i].dep2);
    EXPECT_EQ(loaded[i].flags, original[i].flags);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buf;
  write_trace(buf, Trace{});
  EXPECT_TRUE(read_trace(buf).empty());
}

TEST(TraceIo, SizeIsHeaderPlusSixteenBytesPerOp) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace(buf, t);
  EXPECT_EQ(buf.str().size(), 24u + 16u * t.size());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOTATRACE_AT_ALL_____________";
  EXPECT_THROW(read_trace(buf), TraceIoError);
}

TEST(TraceIo, RejectsTruncatedHeader) {
  std::stringstream buf;
  buf << "CPCTR";  // cut off
  EXPECT_THROW(read_trace(buf), TraceIoError);
}

TEST(TraceIo, RejectsTruncatedBody) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace(buf, t);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 100);
  std::stringstream cut(bytes);
  EXPECT_THROW(read_trace(cut), TraceIoError);
}

TEST(TraceIo, RejectsUnsupportedVersion) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace(buf, t);
  std::string bytes = buf.str();
  bytes[8] = 99;  // version field
  std::stringstream bad(bytes);
  EXPECT_THROW(read_trace(bad), TraceIoError);
}

TEST(TraceIo, RejectsCorruptOpKind) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace(buf, t);
  std::string bytes = buf.str();
  bytes[24 + 12] = 42;  // first op's kind byte
  std::stringstream bad(bytes);
  EXPECT_THROW(read_trace(bad), TraceIoError);
}

TEST(TraceIo, RejectsNonzeroReservedField) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace(buf, t);
  std::string bytes = buf.str();
  bytes[13] = 1;  // reserved field, bytes 12..15
  std::stringstream bad(bytes);
  EXPECT_THROW(read_trace(bad), TraceIoError);
}

TEST(TraceIo, RejectsOpCountExceedingStreamSize) {
  // A hostile header claiming 2^61 ops must be rejected before allocation,
  // not discovered through a multi-exabyte reserve.
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace(buf, t);
  std::string bytes = buf.str();
  for (int i = 0; i < 8; ++i) bytes[16 + i] = static_cast<char>(0x2f);
  std::stringstream bad(bytes);
  try {
    read_trace(bad);
    FAIL() << "hostile op count accepted";
  } catch (const TraceIoError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds stream size"),
              std::string::npos);
  }
}

TEST(TraceIo, RejectsCountLargerThanPayloadByOne) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace(buf, t);
  std::string bytes = buf.str();
  const std::uint64_t claimed = t.size() + 1;
  for (int i = 0; i < 8; ++i) {
    bytes[16 + i] = static_cast<char>((claimed >> (8 * i)) & 0xff);
  }
  std::stringstream bad(bytes);
  EXPECT_THROW(read_trace(bad), TraceIoError);
}

TEST(TraceIo, HeaderMutationFuzzNeverCrashes) {
  // Every single-byte mutation of the 24-byte header, at every value in a
  // spread sample, must either parse to the original trace (mutating a byte
  // to itself) or throw TraceIoError — never crash, hang, or over-allocate.
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace(buf, t);
  const std::string golden = buf.str();

  for (std::size_t pos = 0; pos < 24; ++pos) {
    for (int value : {0x00, 0x01, 0x7f, 0x80, 0xff}) {
      std::string bytes = golden;
      bytes[pos] = static_cast<char>(value);
      std::stringstream mutated(bytes);
      try {
        const Trace loaded = read_trace(mutated);
        // Accepted: only possible for a no-op mutation or a *smaller* count
        // (trailing payload is ignored). A count beyond the payload must
        // never be accepted.
        EXPECT_LE(loaded.size(), t.size())
            << "header byte " << pos << " <- " << value;
        if (pos < 16) {
          EXPECT_EQ(bytes[pos], golden[pos])
              << "non-count header byte " << pos << " <- " << value
              << " changed the header yet still parsed";
        }
      } catch (const TraceIoError&) {
        // Rejected: the acceptable outcome for a real mutation.
      }
    }
  }
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cpc_trace_io_test.cpctrace";
  const Trace original =
      workload::generate(workload::find_workload("olden.treeadd"), {30'000, 5});
  write_trace_file(path, original);
  const Trace loaded = read_trace_file(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded[i].addr, original[i].addr);
    ASSERT_EQ(loaded[i].value, original[i].value);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/dir/trace.cpctrace"), TraceIoError);
}

}  // namespace
}  // namespace cpc::cpu
