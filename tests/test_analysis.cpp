// Tests for the analysis substrate: reuse-distance profiling (against a
// brute-force oracle), 3C miss classification, and working-set measurement.

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "analysis/miss_classifier.hpp"
#include "analysis/reuse_distance.hpp"
#include "analysis/working_set.hpp"
#include "workload/rng.hpp"
#include "workload/workloads.hpp"

namespace cpc::analysis {
namespace {

TEST(ReuseDistance, FirstTouchIsInfinite) {
  ReuseDistanceProfiler p;
  EXPECT_EQ(p.access(0x1000), ReuseDistanceProfiler::kInfinite);
  EXPECT_EQ(p.access(0x2000), ReuseDistanceProfiler::kInfinite);
  EXPECT_EQ(p.histogram().cold, 2u);
}

TEST(ReuseDistance, ImmediateReuseIsZero) {
  ReuseDistanceProfiler p;
  p.access(0x1000);
  EXPECT_EQ(p.access(0x1000), 0u);
  EXPECT_EQ(p.access(0x1004), 0u) << "same 64-byte line";
}

TEST(ReuseDistance, CountsDistinctInterveningLines) {
  ReuseDistanceProfiler p;
  p.access(0x0000);
  p.access(0x1000);
  p.access(0x2000);
  p.access(0x1000);               // revisit: only 0x2000 intervened
  EXPECT_EQ(p.access(0x0000), 2u);  // 0x1000 and 0x2000 since first access
}

TEST(ReuseDistance, RepeatedLineCountsOnce) {
  ReuseDistanceProfiler p;
  p.access(0x0000);
  for (int i = 0; i < 10; ++i) p.access(0x1000);  // one distinct line
  EXPECT_EQ(p.access(0x0000), 1u);
}

TEST(ReuseDistance, MatchesBruteForceOracle) {
  ReuseDistanceProfiler p;
  // Brute force: list of lines in LRU order.
  std::list<std::uint32_t> stack;
  workload::Rng rng(7);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint32_t addr = rng.below(256) * 64;  // 256 lines
    const std::uint32_t line = addr / 64;
    std::uint64_t expected = ReuseDistanceProfiler::kInfinite;
    std::uint64_t depth = 0;
    for (auto it = stack.begin(); it != stack.end(); ++it, ++depth) {
      if (*it == line) {
        expected = depth;
        stack.erase(it);
        break;
      }
    }
    stack.push_front(line);
    ASSERT_EQ(p.access(addr), expected) << "access " << i;
  }
}

TEST(ReuseDistance, CapacityQueryMatchesLruSimulation) {
  // misses_at_capacity(n) must equal a fully associative LRU cache of n
  // lines run over the same stream.
  workload::Rng rng(99);
  std::vector<std::uint32_t> stream;
  for (int i = 0; i < 30'000; ++i) stream.push_back(rng.below(500) * 64);

  ReuseDistanceProfiler p;
  for (std::uint32_t addr : stream) p.access(addr);

  for (std::uint64_t lines : {8u, 64u, 256u, 1024u}) {
    std::list<std::uint32_t> lru;
    std::uint64_t misses = 0;
    for (std::uint32_t addr : stream) {
      const std::uint32_t line = addr / 64;
      auto it = std::find(lru.begin(), lru.end(), line);
      if (it == lru.end()) {
        ++misses;
        if (lru.size() == lines) lru.pop_back();
      } else {
        lru.erase(it);
      }
      lru.push_front(line);
    }
    EXPECT_EQ(p.misses_at_capacity(lines), misses) << lines << " lines";
  }
}

TEST(ReuseDistance, HistogramAccountsForEveryAccess) {
  ReuseDistanceProfiler p;
  workload::Rng rng(3);
  for (int i = 0; i < 5000; ++i) p.access(rng.below(64) * 64);
  std::uint64_t in_buckets = 0;
  for (std::uint64_t b : p.histogram().buckets) in_buckets += b;
  // distance-0 accesses land in bucket 0 (the [1,2) bucket covers 1; zero
  // distances are counted in bucket 0 as [0,2)).
  EXPECT_EQ(p.histogram().cold + in_buckets, p.histogram().total);
  EXPECT_EQ(p.histogram().total, 5000u);
}

// ---- 3C classification -----------------------------------------------------

TEST(MissClassifier, ColdMissesAreCompulsory) {
  MissClassifier mc({1024, 64, 2});
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_TRUE(mc.access(i * 64));
  EXPECT_EQ(mc.breakdown().compulsory, 8u);
  EXPECT_EQ(mc.breakdown().capacity, 0u);
  EXPECT_EQ(mc.breakdown().conflict, 0u);
}

TEST(MissClassifier, HitsAreCountedAsHits) {
  MissClassifier mc({1024, 64, 2});
  mc.access(0);
  EXPECT_FALSE(mc.access(0));
  EXPECT_FALSE(mc.access(32));  // same line
  EXPECT_EQ(mc.breakdown().hits, 2u);
}

TEST(MissClassifier, CyclicSweepBeyondCapacityIsCapacity) {
  // 16-line cache; sweep 32 lines repeatedly: after the cold pass, every
  // miss would also miss fully associatively -> capacity.
  MissClassifier mc({1024, 64, 2});
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint32_t i = 0; i < 32; ++i) mc.access(i * 64);
  }
  EXPECT_EQ(mc.breakdown().compulsory, 32u);
  EXPECT_EQ(mc.breakdown().capacity, 64u);
  EXPECT_EQ(mc.breakdown().conflict, 0u);
}

TEST(MissClassifier, SameSetPingPongIsConflict) {
  // Direct-mapped 16-line cache: two lines 16 apart share set 0 while the
  // cache is mostly empty — fully associative would hit, so: conflict.
  MissClassifier mc({1024, 64, 1});
  mc.access(0 * 64);
  mc.access(16 * 64);
  for (int i = 0; i < 10; ++i) {
    mc.access(0 * 64);
    mc.access(16 * 64);
  }
  EXPECT_EQ(mc.breakdown().compulsory, 2u);
  EXPECT_EQ(mc.breakdown().conflict, 20u);
  EXPECT_EQ(mc.breakdown().capacity, 0u);
}

TEST(MissClassifier, BreakdownSumsToMisses) {
  MissClassifier mc({8 * 1024, 64, 1});
  workload::Rng rng(11);
  for (int i = 0; i < 50'000; ++i) mc.access(rng.below(1u << 20));
  const MissBreakdown& b = mc.breakdown();
  EXPECT_EQ(b.hits + b.misses(), b.accesses);
  EXPECT_GT(b.misses(), 0u);
}

TEST(MissClassifier, HigherAssociativityShrinksConflictShare) {
  // The same stream on DM vs 2-way: compulsory misses are placement-
  // independent; capacity counts may drift a little (they are conditioned
  // on which accesses actually miss, and a DM cache can luckily hit a
  // long-distance access); the conflict count must drop substantially.
  workload::Rng rng(13);
  std::vector<std::uint32_t> stream;
  for (int i = 0; i < 40'000; ++i) stream.push_back(rng.below(1u << 17) & ~3u);

  MissClassifier dm({8 * 1024, 64, 1});
  MissClassifier assoc({8 * 1024, 64, 2});
  for (std::uint32_t a : stream) {
    dm.access(a);
    assoc.access(a);
  }
  EXPECT_EQ(dm.breakdown().compulsory, assoc.breakdown().compulsory);
  EXPECT_NEAR(static_cast<double>(assoc.breakdown().capacity),
              static_cast<double>(dm.breakdown().capacity),
              0.05 * static_cast<double>(dm.breakdown().capacity));
  EXPECT_LT(assoc.breakdown().conflict, dm.breakdown().conflict);
}

// ---- working set ------------------------------------------------------------

TEST(WorkingSet, CountsDistinctWordsAndLines) {
  cpu::Trace trace;
  auto mem_op = [](cpu::OpKind kind, std::uint32_t addr) {
    cpu::MicroOp op;
    op.kind = kind;
    op.addr = addr;
    return op;
  };
  trace.push_back(mem_op(cpu::OpKind::kLoad, mem::kDefaultHeapBase));
  trace.push_back(mem_op(cpu::OpKind::kLoad, mem::kDefaultHeapBase));  // dup
  trace.push_back(mem_op(cpu::OpKind::kStore, mem::kDefaultHeapBase + 4));
  trace.push_back(mem_op(cpu::OpKind::kStore, mem::kGlobalBase));
  trace.push_back(mem_op(cpu::OpKind::kIntAlu, 0));  // ignored

  const WorkingSet ws = measure_working_set(trace);
  EXPECT_EQ(ws.loads, 2u);
  EXPECT_EQ(ws.stores, 2u);
  EXPECT_EQ(ws.distinct_words, 3u);
  EXPECT_EQ(ws.distinct_lines64, 2u);
  EXPECT_EQ(ws.heap_words, 2u);
  EXPECT_EQ(ws.global_words, 1u);
  EXPECT_DOUBLE_EQ(ws.write_fraction(), 0.5);
}

class WorkloadFootprints : public ::testing::TestWithParam<workload::Workload> {};

TEST_P(WorkloadFootprints, ExceedsL1AtFullScale) {
  const cpu::Trace trace = workload::generate(GetParam(), {600'000, 0x5eed});
  const WorkingSet ws = measure_working_set(trace);
  EXPECT_GT(ws.footprint_bytes(), 8u * 1024)
      << GetParam().name << " fits L1 — cannot exercise the hierarchy";
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadFootprints,
                         ::testing::ValuesIn(workload::all_workloads()),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace cpc::analysis
