// Behavioural tests for the full CPP hierarchy: the CPU/L1, L1/L2 and
// L2/memory protocols of paper section 3.3, plus the equivalence and
// read-your-writes properties.

#include <gtest/gtest.h>

#include <unordered_map>

#include "cache/baseline_hierarchy.hpp"
#include "core/cpp_hierarchy.hpp"

namespace cpc::core {
namespace {

constexpr std::uint32_t kBase = 0x1000'0000u;  // heap-like region

TEST(CppHierarchy, ColdMissFetchesFullLineBandwidth) {
  CppHierarchy h;
  std::uint32_t v = 0;
  const auto r = h.read(kBase, v);
  EXPECT_TRUE(r.l1_miss);
  EXPECT_TRUE(r.l2_miss);
  EXPECT_EQ(r.latency, 100u);
  // "The memory bandwidth is still the same as before": exactly one
  // uncompressed L2 line, affiliated words ride free.
  EXPECT_DOUBLE_EQ(h.stats().traffic.words(), 32.0);
}

TEST(CppHierarchy, NextLinePrefetchServedFromAffiliatedPlace) {
  CppHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);  // zero-filled memory: everything compressible
  const auto r = h.read(kBase + 64, v);  // the affiliated line
  EXPECT_FALSE(r.l1_miss) << "prefetched word must hit";
  EXPECT_EQ(r.served_by, cache::ServedBy::kL1Affiliated);
  EXPECT_EQ(r.latency, 2u) << "affiliated hit returns in the next cycle";
  EXPECT_EQ(h.stats().l1_affiliated_hits, 1u);
  EXPECT_DOUBLE_EQ(h.stats().traffic.words(), 32.0) << "no extra traffic";
  h.validate();
}

TEST(CppHierarchy, L2AffiliatedHitHasExtraCycle) {
  CppHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);  // fetches L2 line 0, packs L2 line 1 (bytes 128..255)
  const auto r = h.read(kBase + 128, v);  // L1 miss; L2 affiliated copy
  EXPECT_TRUE(r.l1_miss);
  EXPECT_FALSE(r.l2_miss);
  EXPECT_EQ(r.served_by, cache::ServedBy::kL2Affiliated);
  EXPECT_EQ(r.latency, 11u);
  EXPECT_EQ(h.stats().l2_affiliated_hits, 1u);
}

TEST(CppHierarchy, IncompressibleWordsAreNotPrefetched) {
  CppHierarchy h;
  h.memory().write_word(kBase + 64, 0x7531'9753u);  // incompressible buddy word 0
  std::uint32_t v = 0;
  h.read(kBase, v);
  const auto r = h.read(kBase + 64, v);  // must miss: word was not packable
  EXPECT_TRUE(r.l1_miss);
  EXPECT_EQ(v, 0x7531'9753u);
  h.validate();
}

TEST(CppHierarchy, WriteToAffiliatedWordPromotesLine) {
  CppHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);  // prefetches line at +64
  const auto w = h.write(kBase + 64, 123u);
  EXPECT_FALSE(w.l1_miss) << "write hit in the affiliated place";
  EXPECT_EQ(w.served_by, cache::ServedBy::kL1Affiliated);
  EXPECT_GT(h.stats().partial_promotions, 0u);
  // Now resident as (partial) primary: the next read is a 1-cycle hit.
  const auto r = h.read(kBase + 64, v);
  EXPECT_EQ(r.latency, 1u);
  EXPECT_EQ(v, 123u);
  h.validate();
}

TEST(CppHierarchy, IncompressibleWriteToAffiliatedAlsoPromotes) {
  CppHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);
  h.write(kBase + 64, 0x7000'1234u);  // "changes ... to incompressible"
  const auto r = h.read(kBase + 64, v);
  EXPECT_EQ(r.latency, 1u);
  EXPECT_EQ(v, 0x7000'1234u);
  h.validate();
}

TEST(CppHierarchy, WriteValidateOnPartialPrimaryLine) {
  CppHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);
  const std::uint64_t misses_before = h.stats().l1_misses;
  // The line is fully present here, so this is a plain write hit; then
  // evict nothing — write to another word in the same line.
  const auto w = h.write(kBase + 8, 55u);
  EXPECT_EQ(w.latency, 1u);
  EXPECT_EQ(h.stats().l1_misses, misses_before);
  h.read(kBase + 8, v);
  EXPECT_EQ(v, 55u);
}

TEST(CppHierarchy, ReadsDoNotPromote) {
  CppHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);
  h.read(kBase + 64, v);  // affiliated hit
  EXPECT_EQ(h.stats().partial_promotions, 0u);
  // Still served from the affiliated place on the next read.
  const auto r = h.read(kBase + 64, v);
  EXPECT_EQ(r.served_by, cache::ServedBy::kL1Affiliated);
}

TEST(CppHierarchy, DirtyEvictionLeavesCleanAffiliatedCopy) {
  CppHierarchy h;
  std::uint32_t v = 0;
  // Make the buddy (line+1, same L1 buddy pair) primary resident: write to
  // it so it is installed as primary.
  h.write(kBase + 64, 7u);
  // Now install and dirty the line itself, then evict it with an L1
  // conflict (8K direct-mapped L1: +8K maps to the same set).
  h.write(kBase, 9u);
  h.read(kBase + 8 * 1024, v);
  // The evicted line was dirty: written back, but a clean copy should be
  // readable from its affiliated place (1-extra-cycle hit, no L2 trip).
  const auto r = h.read(kBase, v);
  EXPECT_EQ(v, 9u);
  EXPECT_EQ(r.served_by, cache::ServedBy::kL1Affiliated);
  EXPECT_GT(h.stats().affiliated_demotions + h.stats().l1_writebacks, 0u);
  h.validate();
}

TEST(CppHierarchy, WritebacksAreMeteredCompressed) {
  CppHierarchy h;
  std::uint32_t v = 0;
  h.write(kBase, 3u);  // small value: compressible
  // Evict through both levels.
  for (std::uint32_t i = 0; i < 4096; ++i) h.read(0x4000'0000u + i * 64, v);
  h.validate();
  EXPECT_GT(h.stats().traffic.writeback_words(), 0.0);
  // Read back through the hierarchy: the write-back chain must preserve it.
  h.read(kBase, v);
  EXPECT_EQ(v, 3u);
}

TEST(CppHierarchy, NoPrefetchVariantMatchesBaselineTiming) {
  // With affiliation disabled at both levels, CPP degenerates to BC: same
  // hits, misses and latencies on any access stream.
  CppHierarchy::Options opts;
  opts.prefetch_l1 = opts.prefetch_l2 = false;
  opts.name = "CPP-none";
  CppHierarchy cpp(opts);
  auto bc = cache::BaselineHierarchy::make_bc();

  std::uint32_t lcg = 777;
  std::uint32_t v1 = 0, v2 = 0;
  for (int i = 0; i < 50'000; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    const std::uint32_t addr = kBase + (lcg % 0x60000u & ~3u);
    if ((lcg >> 29) < 2) {
      const auto r1 = cpp.write(addr, lcg);
      const auto r2 = bc.write(addr, lcg);
      ASSERT_EQ(r1.latency, r2.latency) << "write " << i;
    } else {
      const auto r1 = cpp.read(addr, v1);
      const auto r2 = bc.read(addr, v2);
      ASSERT_EQ(v1, v2);
      ASSERT_EQ(r1.latency, r2.latency) << "read " << i;
      ASSERT_EQ(r1.l1_miss, r2.l1_miss);
      ASSERT_EQ(r1.l2_miss, r2.l2_miss);
    }
  }
  EXPECT_EQ(cpp.stats().l1_misses, bc.stats().l1_misses);
  EXPECT_EQ(cpp.stats().l2_misses, bc.stats().l2_misses);
}

class CppRandomized : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CppRandomized, ReadYourWritesAndInvariants) {
  CppHierarchy h;
  std::uint32_t lcg = GetParam();
  std::unordered_map<std::uint32_t, std::uint32_t> reference;
  std::uint32_t v = 0;
  for (int i = 0; i < 40'000; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    // Footprint ~384 KB; value mix: small, pointer-like, incompressible.
    const std::uint32_t addr = kBase + (lcg % 0x60000u & ~3u);
    std::uint32_t value = lcg;
    if ((lcg & 3u) == 0) value &= 0xfffu;
    if ((lcg & 3u) == 1) value = (addr & ~0x7fffu) | (value & 0x7fffu);
    if ((lcg >> 28) < 7) {
      h.write(addr, value);
      reference[addr] = value;
    } else {
      h.read(addr, v);
      const auto it = reference.find(addr);
      ASSERT_EQ(v, it == reference.end() ? 0u : it->second)
          << "stale data at " << std::hex << addr;
    }
    if (i % 4096 == 0) h.validate();
  }
  h.validate();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CppRandomized,
                         ::testing::Values(1u, 42u, 0xdeadu, 31337u, 777777u));

}  // namespace
}  // namespace cpc::core
