// ShardSupervisor (sim/shard_supervisor.hpp): process-sharded sweeps must
// be bit-identical to serial runs, contain worker death in every crash
// mode, respect the restart/crash-retry budgets, and resume from the same
// journal run_contained writes.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/ipc.hpp"
#include "sim/job.hpp"
#include "sim/shard_supervisor.hpp"
#include "sim/sweep_runner.hpp"
#include "workload/workloads.hpp"

namespace cpc {
namespace {

std::vector<sim::Job> config_grid(std::uint64_t trace_ops) {
  std::vector<sim::Job> jobs;
  for (const char* name : {"olden.treeadd", "olden.health"}) {
    const workload::Workload& wl = workload::find_workload(name);
    for (sim::ConfigKind kind : sim::kAllConfigs) {
      jobs.push_back(sim::make_config_job(wl, trace_ops, 0x5eed, kind));
    }
  }
  return jobs;
}

/// Six BC jobs over one shared trace; `poison_index` throws in-worker
/// (contained failure), `crash_index` aborts the whole worker process.
std::vector<sim::Job> crashable_grid(
    const std::shared_ptr<const cpu::Trace>& trace, int poison_index,
    int crash_index = -1) {
  std::vector<sim::Job> jobs;
  for (int i = 0; i < 6; ++i) {
    sim::Job job;
    job.trace = trace;
    job.tag = "job" + std::to_string(i);
    if (i == poison_index) {
      job.make_hierarchy = []() -> std::unique_ptr<cache::MemoryHierarchy> {
        throw std::runtime_error("deliberate job failure");
      };
    } else if (i == crash_index) {
      job.make_hierarchy = []() -> std::unique_ptr<cache::MemoryHierarchy> {
        std::abort();  // kills the worker process, not just the job
      };
    } else {
      job.make_hierarchy = [] {
        return sim::make_hierarchy(sim::ConfigKind::kBC);
      };
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::shared_ptr<const cpu::Trace> small_trace(std::uint64_t ops = 3'000) {
  return std::make_shared<const cpu::Trace>(workload::generate(
      workload::find_workload("olden.treeadd"), {ops, 0x5eed}));
}

sim::ShardOptions quiet_shards(unsigned procs) {
  sim::ShardOptions options;
  options.procs = procs;
  options.run.quiet = true;
  return options;
}

void expect_counters_identical(const sim::JobResult& a,
                               const sim::JobResult& b) {
  SCOPED_TRACE("job " + std::to_string(a.index) + " (" + a.tag + ")");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.tag, b.tag);
  EXPECT_EQ(a.run.config, b.run.config);
  EXPECT_EQ(a.run.core.cycles, b.run.core.cycles);
  EXPECT_EQ(a.run.core.committed, b.run.core.committed);
  EXPECT_EQ(a.run.core.mispredicts, b.run.core.mispredicts);
  EXPECT_EQ(a.run.core.miss_cycles, b.run.core.miss_cycles);
  EXPECT_EQ(a.run.hierarchy.l1_misses, b.run.hierarchy.l1_misses);
  EXPECT_EQ(a.run.hierarchy.l2_misses, b.run.hierarchy.l2_misses);
  EXPECT_EQ(a.run.hierarchy.traffic.half_units(),
            b.run.hierarchy.traffic.half_units());
}

TEST(ShardSupervisor, ShardedSweepBitIdenticalToSerial) {
  if (!sim::ipc::process_isolation_supported()) {
    GTEST_SKIP() << "no fork() here";
  }
  const sim::SweepRunner runner(1);
  sim::RunOptions serial_options;
  serial_options.quiet = true;
  const sim::RunReport serial =
      runner.run_contained(config_grid(5'000), serial_options);
  ASSERT_TRUE(serial.all_ok());

  const sim::RunReport sharded =
      runner.run_sharded(config_grid(5'000), quiet_shards(3));
  ASSERT_TRUE(sharded.all_ok());
  ASSERT_EQ(sharded.results.size(), serial.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    expect_counters_identical(serial.results[i], sharded.results[i]);
  }
  EXPECT_EQ(sharded.worker_restarts, 0u);
  // Worker-local trace caches report through the merged stats.
  EXPECT_GT(sharded.trace_cache.misses, 0u);
  EXPECT_GT(sharded.trace_cache.hits + sharded.trace_cache.misses +
                sharded.trace_cache.compressed_hits,
            0u);
}

TEST(ShardSupervisor, InWorkerExceptionIsAContainedJobFailure) {
  if (!sim::ipc::process_isolation_supported()) {
    GTEST_SKIP() << "no fork() here";
  }
  const sim::SweepRunner runner(1);
  const sim::RunReport report = runner.run_sharded(
      crashable_grid(small_trace(), /*poison=*/3), quiet_shards(2));
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].index, 3u);
  EXPECT_EQ(report.failures[0].what, "deliberate job failure");
  EXPECT_EQ(report.failures[0].attempts, 1u);
  EXPECT_EQ(report.worker_restarts, 0u) << "an exception must not cost a "
                                           "worker restart";
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(report.results[i].ok, i != 3) << "job " << i;
  }
}

TEST(ShardSupervisor, WorkerDeathIsRetriedOnceThenFails) {
  if (!sim::ipc::process_isolation_supported()) {
    GTEST_SKIP() << "no fork() here";
  }
  // Job 2 aborts the worker on *every* attempt, so the single crash retry
  // (crash_retries = 1) is consumed and the job is recorded as failed with
  // the signal named — while every other job still completes.
  const sim::SweepRunner runner(1);
  sim::ShardOptions options = quiet_shards(2);
  options.backoff_base_ms = 1;  // keep the test fast
  const sim::RunReport report = runner.run_sharded(
      crashable_grid(small_trace(), /*poison=*/-1, /*crash=*/2), options);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].index, 2u);
  EXPECT_EQ(report.failures[0].attempts, 2u);  // initial + 1 crash retry
  EXPECT_NE(report.failures[0].what.find("worker died"), std::string::npos)
      << report.failures[0].what;
  EXPECT_GE(report.worker_restarts, 2u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(report.results[i].ok, i != 2) << "job " << i;
  }
}

TEST(ShardSupervisor, ExhaustedRestartBudgetFailsRemainingJobsLoudly) {
  if (!sim::ipc::process_isolation_supported()) {
    GTEST_SKIP() << "no fork() here";
  }
  const sim::SweepRunner runner(1);
  sim::ShardOptions options = quiet_shards(2);
  options.restart_budget = 0;  // first death already exceeds the budget
  options.backoff_base_ms = 1;
  const sim::RunReport report = runner.run_sharded(
      crashable_grid(small_trace(), /*poison=*/-1, /*crash=*/0), options);
  // Round-robin: worker 0 held jobs {0, 2, 4}. Job 0 killed it; with no
  // respawns allowed all three must surface as failures — never silently
  // vanish — and worker 1's jobs {1, 3, 5} still complete.
  ASSERT_EQ(report.failures.size(), 3u);
  EXPECT_EQ(report.failures[0].index, 0u);
  EXPECT_EQ(report.failures[1].index, 2u);
  EXPECT_EQ(report.failures[2].index, 4u);
  for (std::size_t i : {1u, 3u, 5u}) {
    EXPECT_TRUE(report.results[i].ok) << "job " << i;
  }
}

TEST(ShardSupervisor, CrashHookMatrixContainsEveryFastMode) {
  if (!sim::ipc::process_isolation_supported()) {
    GTEST_SKIP() << "no fork() here";
  }
  const sim::SweepRunner runner(1);
  sim::RunOptions serial_options;
  serial_options.quiet = true;
  const sim::RunReport serial =
      runner.run_contained(config_grid(3'000), serial_options);

  for (const char* mode : {"segv", "abort", "exit3", "hang"}) {
    SCOPED_TRACE(mode);
    ASSERT_EQ(setenv("CPC_CRASH_JOB", (std::string("4:") + mode).c_str(), 1),
              0);
    sim::ShardOptions options = quiet_shards(3);
    options.backoff_base_ms = 1;
    options.silence_budget_ms = 1'000;  // trip the hang watchdog quickly
    const sim::RunReport report =
        runner.run_sharded(config_grid(3'000), options);
    ASSERT_EQ(unsetenv("CPC_CRASH_JOB"), 0);

    EXPECT_TRUE(report.all_ok())
        << "crashed job must be retried to completion";
    EXPECT_GE(report.worker_restarts, 1u);
    ASSERT_EQ(report.results.size(), serial.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
      expect_counters_identical(serial.results[i], report.results[i]);
    }
  }
}

TEST(ShardSupervisor, ResumesFromJournalAcrossExecutionModes) {
  if (!sim::ipc::process_isolation_supported()) {
    GTEST_SKIP() << "no fork() here";
  }
  const std::string path = ::testing::TempDir() + "/cpc_shard_test.journal";
  std::remove(path.c_str());
  const auto trace = small_trace();
  const sim::SweepRunner runner(1);

  // Sharded first pass: job 4 fails (contained), five jobs journaled ok.
  sim::ShardOptions options = quiet_shards(2);
  options.run.journal_path = path;
  const sim::RunReport first =
      runner.run_sharded(crashable_grid(trace, 4), options);
  ASSERT_EQ(first.failures.size(), 1u);
  EXPECT_EQ(first.resumed, 0u);

  // Sharded resume: the five completed jobs restore, only job 4 re-runs.
  const sim::RunReport second =
      runner.run_sharded(crashable_grid(trace, -1), options);
  EXPECT_TRUE(second.all_ok());
  EXPECT_EQ(second.resumed, 5u);

  // Cross-mode: the same journal resumes an in-process contained sweep.
  sim::RunOptions contained;
  contained.quiet = true;
  contained.journal_path = path;
  const sim::RunReport third =
      runner.run_contained(crashable_grid(trace, -1), contained);
  EXPECT_TRUE(third.all_ok());
  EXPECT_EQ(third.resumed, 6u);
  std::remove(path.c_str());
}

TEST(ShardSupervisor, SingleProcessRequestFallsBackToInProcess) {
  const sim::SweepRunner runner(1);
  const sim::RunReport report = runner.run_sharded(
      crashable_grid(small_trace(), /*poison=*/1), quiet_shards(1));
  ASSERT_EQ(report.results.size(), 6u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].index, 1u);
  EXPECT_EQ(report.worker_restarts, 0u);
}

TEST(ShardSupervisor, ShardOptionsReadTheEnvironment) {
  ASSERT_EQ(setenv("CPC_PROCS", "6", 1), 0);
  ASSERT_EQ(setenv("CPC_SHARD_RLIMIT_MB", "512", 1), 0);
  ASSERT_EQ(setenv("CPC_SHARD_SILENCE_MS", "12345", 1), 0);
  sim::ShardOptions options = sim::ShardOptions::from_env();
  EXPECT_EQ(options.procs, 6u);
  EXPECT_EQ(options.rlimit_as_mb, 512u);
  EXPECT_EQ(options.silence_budget_ms, 12'345u);

  // Garbage keeps the defaults instead of half-parsing.
  ASSERT_EQ(setenv("CPC_PROCS", "many", 1), 0);
  EXPECT_EQ(sim::ShardOptions::from_env().procs, 0u);

  ASSERT_EQ(unsetenv("CPC_PROCS"), 0);
  ASSERT_EQ(unsetenv("CPC_SHARD_RLIMIT_MB"), 0);
  ASSERT_EQ(unsetenv("CPC_SHARD_SILENCE_MS"), 0);
  options = sim::ShardOptions::from_env();
  EXPECT_EQ(options.procs, 0u);
  EXPECT_EQ(options.rlimit_as_mb, 0u);
}

}  // namespace
}  // namespace cpc
