// Tests for the related-work comparator hierarchies: pseudo-associative
// cache (PAC) and victim cache (VC).

#include <gtest/gtest.h>

#include <unordered_map>

#include "cache/pseudo_assoc_hierarchy.hpp"
#include "cache/victim_hierarchy.hpp"

namespace cpc::cache {
namespace {

constexpr std::uint32_t kBase = 0x1000'0000u;
// With an 8K direct-mapped L1 (128 sets), +4K flips the top set-index bit,
// so these two addresses are each other's pseudo-associative alternates.
constexpr std::uint32_t kAlt = kBase + 4 * 1024;
// +8K maps to the same set (a genuine conflict for both designs).
constexpr std::uint32_t kConflict = kBase + 8 * 1024;

TEST(PseudoAssoc, PrimaryHitIsFast) {
  PseudoAssocHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);
  EXPECT_EQ(h.read(kBase, v).latency, 1u);
}

TEST(PseudoAssoc, ConflictingLineDisplacesToSecondary) {
  PseudoAssocHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);       // home slot
  h.read(kConflict, v);   // same home: displaces kBase to the alternate slot
  const AccessResult r = h.read(kBase, v);
  EXPECT_FALSE(r.l1_miss) << "displaced line is still resident";
  EXPECT_EQ(r.latency, 2u) << "secondary-place hit is a slow hit";
  EXPECT_EQ(h.slow_hits(), 1u);
}

TEST(PseudoAssoc, SlowHitSwapsBackToFast) {
  PseudoAssocHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);
  h.read(kConflict, v);
  h.read(kBase, v);  // slow hit, swaps
  EXPECT_EQ(h.read(kBase, v).latency, 1u) << "swap made the re-access fast";
  EXPECT_EQ(h.read(kConflict, v).latency, 2u) << "...at the other line's expense";
}

TEST(PseudoAssoc, SecondaryPlacementKicksOutOccupant) {
  // The behaviour the paper criticises: displacing into the alternate slot
  // evicts an unrelated resident line.
  PseudoAssocHierarchy h;
  std::uint32_t v = 0;
  h.read(kAlt, v);        // lives in the slot that is kBase's alternate
  h.read(kBase, v);
  h.read(kConflict, v);   // displaces kBase into kAlt's slot, evicting kAlt
  const AccessResult r = h.read(kAlt, v);
  EXPECT_TRUE(r.l1_miss) << "occupant of the secondary place was kicked out";
}

TEST(PseudoAssoc, ReadYourWrites) {
  PseudoAssocHierarchy h;
  std::uint32_t lcg = 321, v = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> reference;
  for (int i = 0; i < 50'000; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    const std::uint32_t addr = kBase + (lcg % 0x60000u & ~3u);
    if ((lcg >> 28) < 7) {
      h.write(addr, lcg);
      reference[addr] = lcg;
    } else {
      h.read(addr, v);
      const auto it = reference.find(addr);
      ASSERT_EQ(v, it == reference.end() ? 0u : it->second);
    }
  }
}

TEST(VictimCache, EvictedLineGetsSecondChance) {
  VictimHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);
  h.read(kConflict, v);  // evicts kBase into the victim cache
  const AccessResult r = h.read(kBase, v);
  EXPECT_FALSE(r.l1_miss);
  EXPECT_EQ(r.latency, 2u);
  EXPECT_EQ(h.victim_hits(), 1u);
}

TEST(VictimCache, SwapPreservesBothLines) {
  VictimHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);
  h.read(kConflict, v);
  h.read(kBase, v);  // victim hit: swap
  EXPECT_EQ(h.read(kBase, v).latency, 1u);
  EXPECT_EQ(h.read(kConflict, v).latency, 2u) << "now in the victim cache";
}

TEST(VictimCache, CapacityBoundsOccupancy) {
  VictimHierarchy h(kBaselineConfig, 4);
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < 64; ++i) h.read(kBase + i * 8192, v);
  EXPECT_LE(h.victim_occupancy(), 4u);
}

TEST(VictimCache, DirtyVictimSurvivesFullEvictionChain) {
  VictimHierarchy h(kBaselineConfig, 2);
  std::uint32_t v = 0;
  h.write(kBase, 777u);
  // Push it out of L1, through the 2-entry victim cache, out of L2.
  for (std::uint32_t i = 1; i < 8192; ++i) h.read(0x3000'0000u + i * 64, v);
  h.read(kBase, v);
  EXPECT_EQ(v, 777u);
  EXPECT_GT(h.stats().mem_writebacks, 0u);
}

TEST(VictimCache, ReadYourWrites) {
  VictimHierarchy h;
  std::uint32_t lcg = 99, v = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> reference;
  for (int i = 0; i < 50'000; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    const std::uint32_t addr = kBase + (lcg % 0x60000u & ~3u);
    if ((lcg >> 28) < 7) {
      h.write(addr, lcg);
      reference[addr] = lcg;
    } else {
      h.read(addr, v);
      const auto it = reference.find(addr);
      ASSERT_EQ(v, it == reference.end() ? 0u : it->second);
    }
  }
}

TEST(VictimCache, RemovesConflictMissesLikePaperSection5) {
  // Ping-pong between two same-set lines: BC misses every time, VC turns
  // them all into slow hits after the first pair.
  VictimHierarchy vc;
  auto bc = BaselineHierarchy::make_bc();
  std::uint32_t v = 0;
  for (int i = 0; i < 200; ++i) {
    vc.read(i % 2 == 0 ? kBase : kConflict, v);
    bc.read(i % 2 == 0 ? kBase : kConflict, v);
  }
  EXPECT_EQ(vc.stats().l1_misses, 2u);
  EXPECT_EQ(bc.stats().l1_misses, 200u);
}

}  // namespace
}  // namespace cpc::cache
