// Characterisation tests: pin the qualitative properties the figures rely
// on, so a regression in a workload kernel or cache policy that would
// silently distort the reproduced results fails loudly here instead.

#include <gtest/gtest.h>

#include <map>

#include "compress/classification_stats.hpp"
#include "sim/experiment.hpp"

namespace cpc {
namespace {

double compressible_fraction(const cpu::Trace& trace) {
  compress::ClassificationStats stats;
  for (const cpu::MicroOp& op : trace) {
    if (cpu::is_memory_op(op.kind)) stats.record(op.value, op.addr);
  }
  return stats.compressible_fraction();
}

// Expected compressibility bands at full scale (paper Fig. 3 analogue):
// FP-heavy kernels sit low, pointer/counter-heavy kernels sit high.
struct Band {
  const char* name;
  double lo, hi;
};
const Band kBands[] = {
    {"olden.bisort", 0.30, 0.75},
    {"olden.em3d", 0.02, 0.30},      // FP values + scattered pointers
    {"olden.health", 0.60, 0.95},
    {"olden.mst", 0.60, 0.95},
    {"olden.perimeter", 0.70, 0.99},
    {"olden.power", 0.25, 0.75},
    {"olden.treeadd", 0.70, 0.999},
    {"olden.tsp", 0.10, 0.60},       // FP coordinates dominate
    {"spec95.099.go", 0.85, 0.999},  // board arrays of small values
    {"spec95.124.m88ksim", 0.35, 0.80},
    {"spec95.130.li", 0.60, 0.95},
    {"spec2000.164.gzip", 0.60, 0.97},
    {"spec2000.181.mcf", 0.15, 0.60},  // large costs and potentials
    {"spec2000.300.twolf", 0.60, 0.95},
};

class CompressibilityBand : public ::testing::TestWithParam<Band> {};

TEST_P(CompressibilityBand, MatchesFig3Profile) {
  const Band& band = GetParam();
  const cpu::Trace trace =
      workload::generate(workload::find_workload(band.name), {400'000, 0x5eed});
  const double fraction = compressible_fraction(trace);
  EXPECT_GE(fraction, band.lo) << band.name;
  EXPECT_LE(fraction, band.hi) << band.name;
}

INSTANTIATE_TEST_SUITE_P(All, CompressibilityBand, ::testing::ValuesIn(kBands),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

// ---- suite-level shape guard -----------------------------------------------

class PaperShape : public ::testing::Test {
 protected:
  // One shared sweep over a representative workload subset, computed once.
  struct Sums {
    std::map<std::string, double> cycles;
    std::map<std::string, double> traffic;
    std::map<std::string, double> l1_misses;
  };
  static const Sums& sums() {
    static const Sums s = [] {
      Sums out;
      for (const char* name : {"olden.health", "olden.treeadd", "olden.mst",
                               "spec95.130.li", "spec2000.300.twolf"}) {
        const cpu::Trace trace =
            workload::generate(workload::find_workload(name), {120'000, 0x5eed});
        for (sim::ConfigKind kind : sim::kAllConfigs) {
          const sim::RunResult r = sim::run_trace(trace, kind);
          out.cycles[r.config] += r.cycles();
          out.traffic[r.config] += r.traffic_words();
          out.l1_misses[r.config] += r.l1_misses();
        }
      }
      return out;
    }();
    return s;
  }
};

TEST_F(PaperShape, CompressionAloneCutsTrafficHard) {
  // Fig. 10: BCC well below BC.
  EXPECT_LT(sums().traffic.at("BCC"), 0.80 * sums().traffic.at("BC"));
}

TEST_F(PaperShape, PrefetchBuffersInflateTraffic) {
  // Fig. 10: BCP above BC.
  EXPECT_GT(sums().traffic.at("BCP"), 1.05 * sums().traffic.at("BC"));
}

TEST_F(PaperShape, CppPrefetchesUnderBaselineTraffic) {
  // Fig. 10: CPP below BC — prefetching without the traffic.
  EXPECT_LT(sums().traffic.at("CPP"), sums().traffic.at("BC"));
}

TEST_F(PaperShape, CppIsFasterThanBaseline) {
  // Fig. 11: CPP speedup over BC.
  EXPECT_LT(sums().cycles.at("CPP"), sums().cycles.at("BC"));
}

TEST_F(PaperShape, BccTimingEqualsBc) {
  EXPECT_DOUBLE_EQ(sums().cycles.at("BCC"), sums().cycles.at("BC"));
}

TEST_F(PaperShape, PrefetchingReducesL1Misses) {
  // Fig. 12: both prefetchers cut demand misses.
  EXPECT_LT(sums().l1_misses.at("BCP"), sums().l1_misses.at("BC"));
  EXPECT_LT(sums().l1_misses.at("CPP"), sums().l1_misses.at("BC"));
}

TEST_F(PaperShape, CppReducesMissImportance) {
  // Fig. 14 headline on the paper's flagship benchmark: CPP's remaining
  // misses block no more dependent work than the baseline's.
  const cpu::Trace trace =
      workload::generate(workload::find_workload("olden.health"), {120'000, 0x5eed});
  const sim::ImportanceResult bc = sim::miss_importance(trace, sim::ConfigKind::kBC);
  const sim::ImportanceResult cpp = sim::miss_importance(trace, sim::ConfigKind::kCPP);
  EXPECT_LE(cpp.fraction_enhanced, bc.fraction_enhanced * 1.05);
}

}  // namespace
}  // namespace cpc
