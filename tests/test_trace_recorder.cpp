// Tests for the trace recorder: dependence edges, PC/block management,
// concrete memory semantics and dependence-distance clamping.

#include <gtest/gtest.h>

#include "workload/trace_recorder.hpp"

namespace cpc::workload {
namespace {

using Val = TraceRecorder::Val;

TEST(TraceRecorder, LoadsReturnStoredValues) {
  TraceRecorder r;
  const std::uint32_t a = r.alloc(16);
  r.store(Val{a}, r.alu(123u));
  const Val loaded = r.load(Val{a});
  EXPECT_EQ(loaded.value, 123u);
}

TEST(TraceRecorder, LoadOfFreshMemoryIsZero) {
  TraceRecorder r;
  EXPECT_EQ(r.load(Val{r.alloc(8)}).value, 0u);
}

TEST(TraceRecorder, EmitsDependenceDistances) {
  TraceRecorder r;
  const std::uint32_t a = r.alloc(16);
  const Val x = r.alu(5);              // op 0
  const Val y = r.alu(6);              // op 1
  r.alu(11, x, y);                     // op 2: deps at distance 2 and 1
  r.store(Val{a}, x);                  // op 3: value dep at distance 3
  const cpu::Trace& t = r.trace();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[2].dep1, 2u);
  EXPECT_EQ(t[2].dep2, 1u);
  EXPECT_EQ(t[3].dep2, 3u);
  EXPECT_EQ(t[3].dep1, 0u) << "constant address has no producer";
}

TEST(TraceRecorder, AddressArithmeticKeepsDependence) {
  TraceRecorder r;
  const std::uint32_t a = r.alloc(16);
  r.store(Val{a + 8u}, r.alu(77));
  const Val p = r.alu(a);       // op: produces the base pointer
  const Val v = r.load(p + 8u); // load depends on the pointer producer
  EXPECT_EQ(v.value, 77u);
  EXPECT_EQ(r.trace().back().dep1, 1u);
}

TEST(TraceRecorder, FarDependencesAreClamped) {
  TraceRecorder r;
  const Val x = r.alu(1);  // op 0
  for (int i = 0; i < 300; ++i) r.alu(0);
  r.alu(2, x);  // producer 301 ops back: clamped to "no edge"
  EXPECT_EQ(r.trace().back().dep1, 0u);
}

TEST(TraceRecorder, BlocksGiveStablePcs) {
  TraceRecorder r;
  r.block("loop");
  r.alu(1);
  const std::uint32_t pc_first = r.trace().back().pc;
  r.alu(2);
  r.block("other");
  r.alu(3);
  r.block("loop");  // re-enter: PCs repeat
  r.alu(4);
  const cpu::Trace& t = r.trace();
  EXPECT_EQ(t[3].pc, pc_first);
  EXPECT_NE(t[2].pc, pc_first);
  EXPECT_EQ(t[1].pc, pc_first + 4);
}

TEST(TraceRecorder, BranchRecordsOutcome) {
  TraceRecorder r;
  r.branch(true);
  r.branch(false);
  EXPECT_TRUE(r.trace()[0].branch_taken());
  EXPECT_FALSE(r.trace()[1].branch_taken());
}

TEST(TraceRecorder, OpKindsMapCorrectly) {
  TraceRecorder r;
  const std::uint32_t a = r.alloc(8);
  r.alu(1);
  r.mul(2);
  r.div(3);
  r.fp_alu(4);
  r.fp_mul(5);
  r.load(Val{a});
  r.store(Val{a}, Val{1});
  r.branch(true);
  const cpu::Trace& t = r.trace();
  EXPECT_EQ(t[0].kind, cpu::OpKind::kIntAlu);
  EXPECT_EQ(t[1].kind, cpu::OpKind::kIntMul);
  EXPECT_EQ(t[2].kind, cpu::OpKind::kIntDiv);
  EXPECT_EQ(t[3].kind, cpu::OpKind::kFpAlu);
  EXPECT_EQ(t[4].kind, cpu::OpKind::kFpMul);
  EXPECT_EQ(t[5].kind, cpu::OpKind::kLoad);
  EXPECT_EQ(t[6].kind, cpu::OpKind::kStore);
  EXPECT_EQ(t[7].kind, cpu::OpKind::kBranch);
}

TEST(TraceRecorder, DoneReflectsBudget) {
  TraceRecorder r(5);
  EXPECT_FALSE(r.done());
  for (int i = 0; i < 5; ++i) r.alu(0);
  EXPECT_TRUE(r.done());
}

TEST(TraceRecorder, StaticDataIsDisjointFromHeap) {
  TraceRecorder r;
  const std::uint32_t s1 = r.static_data(64);
  const std::uint32_t s2 = r.static_data(64);
  const std::uint32_t h = r.alloc(64);
  EXPECT_GE(s2, s1 + 64u);
  EXPECT_NE(s1 / 0x1000'0000u, h / 0x1000'0000u) << "separate segments";
}

}  // namespace
}  // namespace cpc::workload
