// Codec framework acceptance (compress/codec.hpp): every registered codec
// honours the word-level contract on adversarial fuzzer corpora, the
// line-level accounting stays within structural bounds, the full
// differential oracle runs clean under every codec, and the paper codec is
// pinned bit-identical to the pre-refactor scheme path — same stats, same
// legacy names, same sweep tags.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/codec_survey.hpp"
#include "compress/classification_stats.hpp"
#include "compress/codec.hpp"
#include "compress/gate_model.hpp"
#include "cpu/micro_op.hpp"
#include "net/protocol.hpp"
#include "sim/experiment.hpp"
#include "verify/oracle/differential.hpp"
#include "verify/trace_fuzzer.hpp"
#include "workload/workloads.hpp"

namespace cpc {
namespace {

std::shared_ptr<const cpu::Trace> fuzz_trace(std::uint64_t seed,
                                             std::uint32_t ops) {
  verify::FuzzOptions options;
  options.seed = seed;
  options.target_ops = ops;
  return std::make_shared<const cpu::Trace>(
      verify::TraceFuzzer(options).generate());
}

std::shared_ptr<const cpu::Trace> workload_trace(const char* name,
                                                 std::uint64_t ops) {
  const workload::Workload& wl = workload::find_workload(name);
  workload::WorkloadParams params;
  params.target_ops = ops;
  return std::make_shared<const cpu::Trace>(workload::generate(wl, params));
}

// ---- word-level contract on fuzz corpora --------------------------------

TEST(CodecContract, RoundTripsEveryFuzzCorpusWord) {
  for (const std::uint64_t seed : {1u, 9u, 23u}) {
    const auto trace = fuzz_trace(seed, 2048);
    for (const compress::CodecKind kind : compress::kAllCodecs) {
      const compress::Codec codec{kind};
      SCOPED_TRACE(std::string("seed ") + std::to_string(seed) + " codec " +
                   codec.name());
      for (const cpu::MicroOp& op : *trace) {
        if (!cpu::is_memory_op(op.kind)) continue;
        const compress::ValueClass cls = codec.classify(op.value, op.addr);
        const auto cw = codec.compress(op.value, op.addr);
        // classify, is_compressible and compress must agree exactly.
        ASSERT_EQ(codec.is_compressible(op.value, op.addr),
                  cls != compress::ValueClass::kIncompressible);
        ASSERT_EQ(cw.has_value(),
                  cls != compress::ValueClass::kIncompressible);
        if (!cw) continue;
        // The encoded form fits the advertised width and round-trips.
        ASSERT_EQ(cw->bits >> codec.compressed_bits(), 0u);
        ASSERT_EQ(codec.decompress(*cw, op.addr), op.value);
      }
    }
  }
}

TEST(CodecContract, ClassifyWordsAgreesWithScalarClassify) {
  const auto trace = fuzz_trace(5, 2048);
  std::vector<std::uint32_t> values;
  for (const cpu::MicroOp& op : *trace) {
    if (cpu::is_memory_op(op.kind)) values.push_back(op.value);
  }
  ASSERT_GE(values.size(), 8u);
  for (const compress::CodecKind kind : compress::kAllCodecs) {
    const compress::Codec codec{kind};
    SCOPED_TRACE(codec.name());
    for (std::size_t at = 0; at + 8 <= values.size(); at += 8) {
      const std::uint32_t base =
          0x1000u + static_cast<std::uint32_t>(at) * 4u;
      const compress::WordClassMasks masks =
          codec.classify_words(&values[at], 8, base);
      for (std::size_t i = 0; i < 8; ++i) {
        const std::uint32_t addr =
            base + static_cast<std::uint32_t>(i) * 4u;
        const compress::ValueClass cls = codec.classify(values[at + i], addr);
        ASSERT_EQ((masks.small >> i) & 1u,
                  cls == compress::ValueClass::kSmallValue ? 1u : 0u);
        ASSERT_EQ((masks.pointer >> i) & 1u,
                  cls == compress::ValueClass::kPointer ? 1u : 0u);
      }
    }
  }
}

TEST(CodecContract, LineAccountingStaysWithinStructuralBounds) {
  const auto trace = fuzz_trace(31, 2048);
  std::vector<std::uint32_t> values;
  for (const cpu::MicroOp& op : *trace) {
    if (cpu::is_memory_op(op.kind)) values.push_back(op.value);
  }
  for (const compress::CodecKind kind : compress::kAllCodecs) {
    const compress::Codec codec{kind};
    SCOPED_TRACE(codec.name());
    for (std::size_t at = 0; at + 8 <= values.size(); at += 8) {
      const std::uint32_t base =
          0x2000u + static_cast<std::uint32_t>(at) * 4u;
      const compress::LineCompression line =
          codec.compress_line(&values[at], 8, base);
      // Data never exceeds the raw line; metadata is charged but bounded
      // by the raw line too (a 100%-overhead codec would be a bug).
      EXPECT_LE(line.data_bits, 8u * compress::Codec::kWordBits);
      EXPECT_GT(line.tag_bits, 0u);
      EXPECT_LE(line.tag_bits, 8u * compress::Codec::kWordBits);
    }
  }
}

// ---- trace-level survey --------------------------------------------------

TEST(CodecSurvey, EveryCodecSurveysAWorkloadTrace) {
  const auto trace = workload_trace("olden.treeadd", 20'000);
  for (const compress::CodecKind kind : compress::kAllCodecs) {
    const compress::Codec codec{kind};
    SCOPED_TRACE(codec.name());
    const compress::ClassificationStats survey =
        analysis::survey_codec(*trace, codec);
    EXPECT_GT(survey.total(), 0u);
    EXPECT_GT(survey.lines(), 0u);
    EXPECT_EQ(survey.raw_bits(),
              survey.lines() * 8 * compress::Codec::kWordBits);
    // Ratios are well-formed: positive, and the metadata share is a
    // genuine fraction.
    EXPECT_GT(survey.line_compression_ratio(), 0.0);
    EXPECT_GE(survey.tag_overhead_fraction(), 0.0);
    EXPECT_LT(survey.tag_overhead_fraction(), 1.0);
    EXPECT_GT(survey.tag_bits_per_line(), 0.0);
  }
}

// ---- paper codec pinned bit-identical -----------------------------------

TEST(PaperCodec, HierarchiesBitIdenticalToPreCodecPath) {
  const auto trace = workload_trace("olden.mst", 20'000);
  for (const sim::ConfigKind kind : sim::kAllConfigs) {
    SCOPED_TRACE(sim::config_name(kind));
    auto legacy = sim::make_hierarchy(kind);
    auto codec_path = sim::make_hierarchy(kind, compress::kPaperCodec);
    EXPECT_EQ(legacy->name(), codec_path->name());
    const sim::RunResult a = sim::run_trace_on(*trace, *legacy);
    const sim::RunResult b = sim::run_trace_on(*trace, *codec_path);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.committed, b.core.committed);
    EXPECT_EQ(a.hierarchy.l1_misses, b.hierarchy.l1_misses);
    EXPECT_EQ(a.hierarchy.l2_misses, b.hierarchy.l2_misses);
    EXPECT_EQ(a.hierarchy.mem_fetch_lines, b.hierarchy.mem_fetch_lines);
    EXPECT_EQ(a.hierarchy.mem_writebacks, b.hierarchy.mem_writebacks);
    EXPECT_EQ(a.hierarchy.traffic.half_units(),
              b.hierarchy.traffic.half_units());
  }
}

TEST(CodecNames, PaperKeepsLegacyNamesOthersSuffix) {
  EXPECT_EQ(compress::codec_suffixed_name("CPP", compress::kPaperCodec),
            "CPP");
  EXPECT_EQ(compress::codec_suffixed_name(
                "CPP", compress::Codec{compress::CodecKind::kFpc}),
            "CPP@fpc");
  EXPECT_EQ(sim::config_codec_tag(sim::ConfigKind::kCPP,
                                  compress::kPaperCodec),
            "CPP");
  EXPECT_EQ(sim::config_codec_tag(sim::ConfigKind::kBC,
                                  compress::Codec{compress::CodecKind::kBdi}),
            "BC@bdi");
  // Hierarchy names: compressed-transfer configs advertise their codec,
  // uncompressed ones stay bare (the codec cannot change their behaviour).
  const compress::Codec wkdm{compress::CodecKind::kWkdm};
  EXPECT_EQ(sim::make_hierarchy(sim::ConfigKind::kCPP, wkdm)->name(),
            "CPP@wkdm");
  EXPECT_EQ(sim::make_hierarchy(sim::ConfigKind::kBCC, wkdm)->name(),
            "BCC@wkdm");
  EXPECT_EQ(sim::make_hierarchy(sim::ConfigKind::kBC, wkdm)->name(), "BC");
}

// ---- differential oracle per codec --------------------------------------

TEST(CodecDifferential, EveryCodecRunsTheOracleClean) {
  const auto trace = fuzz_trace(17, 1024);
  for (const compress::CodecKind kind : compress::kAllCodecs) {
    const compress::Codec codec{kind};
    SCOPED_TRACE(codec.name());
    verify::DifferentialOptions options;
    options.codec = codec;
    const verify::DifferentialReport report =
        verify::run_differential(trace, options);
    EXPECT_TRUE(report.clean()) << report.summary();
  }
}

TEST(CodecDifferential, WorkloadCleanUnderEveryCodec) {
  const auto trace = workload_trace("olden.treeadd", 20'000);
  for (const compress::CodecKind kind : compress::kAllCodecs) {
    const compress::Codec codec{kind};
    SCOPED_TRACE(codec.name());
    verify::DifferentialOptions options;
    options.codec = codec;
    const verify::DifferentialReport report =
        verify::run_differential(trace, options);
    EXPECT_TRUE(report.clean()) << report.summary();
  }
}

// Exhaustive inverse-contract check: every encodable 16-bit half, under
// every codec, decompresses to a value that is itself compressible at the
// same address. This is the evidence behind the CPC-L014 waiver on
// Invariant::kAffiliatedNotCompressible in common/invariant_registry.def:
// no stored-bit corruption of an affiliated half can reach that audit arm
// with the shipped codecs, so it is defense-in-depth against a future
// codec whose decode range escapes its encode domain.
TEST(CodecContract, DecodeOfEveryHalfIsRecompressible) {
  using compress::Codec;
  using compress::CompressedWord;
  for (const compress::CodecKind kind : compress::kAllCodecs) {
    const Codec codec(kind);
    for (const std::uint32_t addr :
         {0x0400'0000u, 0x0400'0040u, 0x1234'5678u, 0u}) {
      for (std::uint32_t half = 0; half <= 0xffffu; ++half) {
        const std::uint32_t value =
            codec.decompress(CompressedWord{half}, addr);
        ASSERT_TRUE(codec.is_compressible(value, addr))
            << codec.name() << " half 0x" << std::hex << half << " at 0x"
            << addr << " decodes to non-compressible 0x" << value;
      }
    }
  }
}

// ---- gate model ----------------------------------------------------------

TEST(CodecGateModel, DelaysMatchTheDocumentedBudgets) {
  using compress::Codec;
  using compress::CodecKind;
  EXPECT_EQ(compress::compressor_gate_delay(Codec{}), 8u);
  EXPECT_EQ(compress::decompressor_gate_delay(Codec{}), 2u);
  EXPECT_EQ(compress::compressor_gate_delay(Codec{CodecKind::kFpc}), 8u);
  EXPECT_EQ(compress::compressor_gate_delay(Codec{CodecKind::kBdi}), 15u);
  EXPECT_EQ(compress::decompressor_gate_delay(Codec{CodecKind::kBdi}), 7u);
  EXPECT_EQ(compress::compressor_gate_delay(Codec{CodecKind::kWkdm}), 8u);
}

}  // namespace
}  // namespace cpc
