// Exhaustive boundary sweeps of the compression scheme: every value in a
// window around each classification boundary, for every ablation width.
// Complements the random property tests in test_compress.cpp with complete
// coverage of the edges where off-by-one bugs live.

#include <gtest/gtest.h>

#include <algorithm>

#include "compress/scheme.hpp"

namespace cpc::compress {
namespace {

class BoundarySweep : public ::testing::TestWithParam<unsigned> {
 protected:
  Scheme scheme() const { return Scheme{GetParam()}; }
};

TEST_P(BoundarySweep, PositiveSmallValueEdge) {
  const Scheme s = scheme();
  const std::uint32_t max = static_cast<std::uint32_t>(s.small_max());
  const std::uint32_t addr = 0xdead'0000u;  // prefix never matches
  for (std::uint32_t v = max > 64 ? max - 64 : 0; v <= max; ++v) {
    ASSERT_EQ(s.classify(v, addr), ValueClass::kSmallValue) << v;
    ASSERT_EQ(s.decompress(*s.compress(v, addr), addr), v);
  }
  for (std::uint32_t v = max + 1; v <= max + 64; ++v) {
    ASSERT_NE(s.classify(v, addr), ValueClass::kSmallValue) << v;
  }
}

TEST_P(BoundarySweep, NegativeSmallValueEdge) {
  const Scheme s = scheme();
  const std::int32_t min = s.small_min();
  const std::uint32_t addr = 0xdead'0000u;
  for (std::int32_t v = min; v < min + 64; ++v) {
    const std::uint32_t bits = static_cast<std::uint32_t>(v);
    ASSERT_EQ(s.classify(bits, addr), ValueClass::kSmallValue) << v;
    ASSERT_EQ(s.decompress(*s.compress(bits, addr), addr), bits);
  }
  for (std::int32_t v = min - 64; v < min; ++v) {
    ASSERT_NE(s.classify(static_cast<std::uint32_t>(v), addr),
              ValueClass::kSmallValue)
        << v;
  }
}

TEST_P(BoundarySweep, PointerChunkEdge) {
  const Scheme s = scheme();
  const std::uint32_t chunk = 1u << s.payload_bits();
  const std::uint32_t addr = (0x4000'0000u & ~(chunk - 1)) | 0x10u;
  // Values in the same aligned chunk as addr: pointers (or small — either
  // way compressible); the first value past the chunk boundary that isn't
  // sign-extension small must be incompressible.
  const std::uint32_t base = addr & ~(chunk - 1);
  for (std::uint32_t off = 0; off < 64; ++off) {
    ASSERT_TRUE(s.is_compressible(base + off, addr)) << off;
    ASSERT_EQ(s.decompress(*s.compress(base + off, addr), addr), base + off);
  }
  for (std::uint32_t off = 0; off < 64; ++off) {
    const std::uint32_t outside = base + chunk + off;
    ASSERT_EQ(s.classify(outside, addr), ValueClass::kIncompressible) << off;
  }
}

TEST_P(BoundarySweep, ZeroAndMinusOne) {
  const Scheme s = scheme();
  for (std::uint32_t addr : {0x0u, 0x1000'0000u, 0xffff'fff0u}) {
    EXPECT_EQ(s.classify(0u, addr), ValueClass::kSmallValue);
    EXPECT_EQ(s.classify(0xffff'ffffu, addr), ValueClass::kSmallValue);
    EXPECT_EQ(s.decompress(*s.compress(0u, addr), addr), 0u);
    EXPECT_EQ(s.decompress(*s.compress(0xffff'ffffu, addr), addr), 0xffff'ffffu);
  }
}

TEST_P(BoundarySweep, CompressedFormFitsWidth) {
  const Scheme s = scheme();
  const std::uint32_t addr = 0x1000'0000u;
  // Every small value...
  const std::uint32_t small_span =
      std::min<std::uint32_t>(static_cast<std::uint32_t>(s.small_max()), 4096);
  for (std::uint32_t v = 0; v <= small_span; ++v) {
    const auto cw = s.compress(v, addr);
    ASSERT_TRUE(cw.has_value()) << v;
    ASSERT_LT(cw->bits, 1u << s.compressed_bits());
  }
  // ...and every pointer within the chunk produces an in-width form.
  const std::uint32_t chunk = 1u << s.payload_bits();
  for (std::uint32_t off = 0; off < std::min<std::uint32_t>(chunk, 4096); ++off) {
    const auto cw = s.compress(addr + off, addr);
    ASSERT_TRUE(cw.has_value()) << off;
    ASSERT_LT(cw->bits, 1u << s.compressed_bits());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BoundarySweep, ::testing::Values(8u, 12u, 16u, 20u, 24u),
                         [](const auto& info) {
                           return "bits" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cpc::compress
