// TraceCache disk spill tier (sim/sweep_runner.hpp): blobs evicted from the
// in-memory compressed tier land in CPC_TRACE_SPILL_DIR, reload bit-exactly
// across cache instances (CRC-verified), corrupt files are quarantined
// instead of trusted, and a size cap evicts oldest-first.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sim/sweep_runner.hpp"
#include "workload/workloads.hpp"

namespace cpc {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kOps = 5000;
constexpr std::uint64_t kSeed = 42;

/// A fresh, empty spill directory under the test tmp dir.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

const workload::Workload& treeadd() {
  return workload::find_workload("olden.treeadd");
}

bool traces_identical(const cpu::Trace& a, const cpu::Trace& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(cpu::MicroOp)) == 0);
}

std::vector<fs::path> files_with_extension(const fs::path& dir,
                                           const std::string& ext) {
  std::vector<fs::path> out;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ext) out.push_back(entry.path());
  }
  return out;
}

// Every cache below gets a 1-byte memory budget, forcing traces straight
// through the decoded and compressed tiers and out to disk.

TEST(TraceSpill, RoundTripAcrossInstancesIsBitExact) {
  const fs::path dir = fresh_dir("spill_roundtrip");
  const cpu::Trace reference = workload::generate(treeadd(), {kOps, kSeed});

  {
    sim::TraceCache cache(1, {dir.string(), 0});
    const auto trace = cache.get(treeadd(), kOps, kSeed);
    ASSERT_TRUE(trace != nullptr);
    EXPECT_TRUE(traces_identical(*trace, reference));
    const sim::TraceCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.spill_writes, 1u);
    EXPECT_GT(stats.spill_bytes, 0u);
  }
  ASSERT_EQ(files_with_extension(dir, ".spill").size(), 1u);

  // A brand-new cache (think: daemon restart) must serve the same key from
  // disk — spill_hits, not misses — and the reload must be bit-exact.
  sim::TraceCache reborn(1, {dir.string(), 0});
  const auto trace = reborn.get(treeadd(), kOps, kSeed);
  ASSERT_TRUE(trace != nullptr);
  EXPECT_TRUE(traces_identical(*trace, reference));
  const sim::TraceCache::Stats stats = reborn.stats();
  EXPECT_EQ(stats.spill_hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.spill_quarantined, 0u);
}

TEST(TraceSpill, CorruptFileIsQuarantinedNotTrusted) {
  const fs::path dir = fresh_dir("spill_corrupt");
  const cpu::Trace reference = workload::generate(treeadd(), {kOps, kSeed});
  {
    sim::TraceCache cache(1, {dir.string(), 0});
    (void)cache.get(treeadd(), kOps, kSeed);
  }
  const std::vector<fs::path> spills = files_with_extension(dir, ".spill");
  ASSERT_EQ(spills.size(), 1u);

  // Flip one byte in the middle of the blob: the stored CRC no longer
  // matches, so the loader must refuse the file.
  {
    std::fstream f(spills[0], std::ios::in | std::ios::out | std::ios::binary);
    const std::uint64_t size = fs::file_size(spills[0]);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
  }

  sim::TraceCache cache(1, {dir.string(), 0});
  const auto trace = cache.get(treeadd(), kOps, kSeed);
  ASSERT_TRUE(trace != nullptr);
  // The corrupt blob was discarded and the trace regenerated — identical
  // data, honest counters, and the bad file set aside for inspection.
  EXPECT_TRUE(traces_identical(*trace, reference));
  const sim::TraceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.spill_quarantined, 1u);
  EXPECT_EQ(stats.spill_hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(files_with_extension(dir, ".quarantined").size(), 1u);
  // The regenerated blob re-spills under a fresh sequence number; the
  // quarantined original must not have been resurrected.
  const std::vector<fs::path> respilled = files_with_extension(dir, ".spill");
  ASSERT_EQ(respilled.size(), 1u);
  EXPECT_NE(respilled[0].filename().string()[0], '0');
  EXPECT_EQ(stats.spill_writes, 1u);
}

TEST(TraceSpill, CapEvictsOldestFirstAndDropsOversizedBlobs) {
  // Measure real spill-file sizes first (compression ratios are not worth
  // predicting in a test), then replay against caps derived from them.
  const fs::path probe = fresh_dir("spill_probe");
  {
    sim::TraceCache cache(1, {probe.string(), 0});
    (void)cache.get(treeadd(), kOps, kSeed);
    (void)cache.get(treeadd(), kOps, kSeed + 1);
  }
  const std::vector<fs::path> spilled = files_with_extension(probe, ".spill");
  ASSERT_EQ(spilled.size(), 2u);
  std::uint64_t first_size = 0, second_size = 0;
  for (const fs::path& p : spilled) {
    // Filenames are <seq>-<hash>.spill; seq 0 sorts first.
    (p.filename().string()[0] == '0' ? first_size : second_size) =
        fs::file_size(p);
  }
  ASSERT_GT(first_size, 0u);
  ASSERT_GT(second_size, 0u);

  // Cap that holds either blob but not both: the second spill must evict
  // the first (oldest) file, never itself.
  {
    const fs::path dir = fresh_dir("spill_cap");
    sim::TraceCache cache(1, {dir.string(), first_size + second_size - 1});
    (void)cache.get(treeadd(), kOps, kSeed);
    (void)cache.get(treeadd(), kOps, kSeed + 1);
    const sim::TraceCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.spill_writes, 2u);
    EXPECT_EQ(stats.spill_drops, 1u);
    EXPECT_EQ(stats.spill_bytes, second_size);
    const std::vector<fs::path> left = files_with_extension(dir, ".spill");
    ASSERT_EQ(left.size(), 1u);
    // The survivor is the newer write (seq 1).
    EXPECT_EQ(left[0].filename().string()[0], '1');
  }

  // Cap smaller than any blob: nothing may be written at all.
  {
    const fs::path dir = fresh_dir("spill_toosmall");
    sim::TraceCache cache(1, {dir.string(), 16});
    (void)cache.get(treeadd(), kOps, kSeed);
    const sim::TraceCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.spill_writes, 0u);
    EXPECT_EQ(stats.spill_drops, 1u);
    EXPECT_TRUE(files_with_extension(dir, ".spill").empty());
  }
}

TEST(TraceSpill, SurvivingEntriesFlushToDiskOnDestruction) {
  // An ample budget means nothing spills under pressure — but a dying cache
  // (sweep finished, shard worker exiting) must still donate its blobs to
  // the disk tier, or a daemon's next submission regenerates everything.
  const fs::path dir = fresh_dir("spill_flush");
  const cpu::Trace reference = workload::generate(treeadd(), {kOps, kSeed});
  {
    sim::TraceCache cache(256ull << 20, {dir.string(), 0});
    (void)cache.get(treeadd(), kOps, kSeed);
    const sim::TraceCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.spill_writes, 0u);  // no pressure: nothing spilled yet
  }
  ASSERT_EQ(files_with_extension(dir, ".spill").size(), 1u);

  {
    sim::TraceCache reborn(256ull << 20, {dir.string(), 0});
    const auto trace = reborn.get(treeadd(), kOps, kSeed);
    ASSERT_TRUE(trace != nullptr);
    EXPECT_TRUE(traces_identical(*trace, reference));
    const sim::TraceCache::Stats stats = reborn.stats();
    EXPECT_EQ(stats.spill_hits, 1u);
    EXPECT_EQ(stats.misses, 0u);
  }
  // The reloaded entry was already on disk: dying again must not duplicate.
  EXPECT_EQ(files_with_extension(dir, ".spill").size(), 1u);
}

TEST(TraceSpill, DisabledTierTouchesNoDisk) {
  sim::TraceCache cache(1, {std::string(), 0});
  const auto trace = cache.get(treeadd(), kOps, kSeed);
  ASSERT_TRUE(trace != nullptr);
  const sim::TraceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.spill_writes, 0u);
  EXPECT_EQ(stats.spill_bytes, 0u);
}

}  // namespace
}  // namespace cpc
