// Timing-model tests for the out-of-order core: issue width, dependence
// serialisation, functional-unit limits, memory ports, branch mispredict
// stalls, I-cache stalls, store/load ordering and the ready-queue statistic.

#include <gtest/gtest.h>

#include <vector>

#include "cache/baseline_hierarchy.hpp"
#include "cpu/branch_predictor.hpp"
#include "cpu/icache.hpp"
#include "cpu/micro_op.hpp"
#include "cpu/ooo_core.hpp"

namespace cpc::cpu {
namespace {

MicroOp make_op(OpKind kind, std::uint32_t pc, std::uint8_t dep1 = 0,
                std::uint8_t dep2 = 0) {
  MicroOp op;
  op.kind = kind;
  op.pc = pc;
  op.dep1 = dep1;
  op.dep2 = dep2;
  return op;
}

/// All ops share one I-cache line unless stated otherwise.
Trace alu_trace(std::size_t n, std::uint8_t dep = 0) {
  Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back(make_op(OpKind::kIntAlu, 0x1000 + (i % 8) * 4, dep));
  }
  return t;
}

CoreStats run(const Trace& t, CoreConfig cfg = {}) {
  auto h = cache::BaselineHierarchy::make_bc();
  OooCore core(cfg, h);
  return core.run(t);
}

TEST(OooCore, IndependentAluOpsReachIssueWidth) {
  const CoreStats s = run(alu_trace(4000));
  EXPECT_EQ(s.committed, 4000u);
  // 4-wide machine on independent single-cycle ops: IPC close to 4.
  EXPECT_GT(s.ipc(), 3.0);
}

TEST(OooCore, DependenceChainSerialises) {
  const CoreStats s = run(alu_trace(2000, /*dep=*/1));
  // Every op waits for its predecessor: >= 1 cycle per op.
  EXPECT_GE(s.cycles, 2000u);
  EXPECT_LT(s.ipc(), 1.1);
}

TEST(OooCore, SingleMultiplierLimitsThroughput) {
  Trace t;
  for (int i = 0; i < 1000; ++i) t.push_back(make_op(OpKind::kIntMul, 0x1000));
  const CoreStats s = run(t);
  EXPECT_GE(s.cycles, 1000u) << "1 mult/div unit: at most one multiply per cycle";
}

TEST(OooCore, DivLatencyDominates) {
  Trace t;
  for (int i = 0; i < 100; ++i) t.push_back(make_op(OpKind::kIntDiv, 0x1000, 1));
  const CoreStats s = run(t);
  CoreConfig cfg;
  EXPECT_GE(s.cycles, 100u * cfg.lat_int_div);
}

TEST(OooCore, TwoMemoryPortsLimitLoads) {
  Trace t;
  for (int i = 0; i < 1000; ++i) {
    MicroOp op = make_op(OpKind::kLoad, 0x1000);
    op.addr = 0x1000'0000u + (i % 8) * 4;  // same cache line: all hits
    t.push_back(op);
  }
  // Warm the line first so every load is a 1-cycle hit.
  auto h = cache::BaselineHierarchy::make_bc();
  std::uint32_t v = 0;
  h.read(0x1000'0000u, v);
  OooCore core({}, h);
  const CoreStats s = core.run(t);
  EXPECT_GE(s.cycles, 500u) << "2 ports: at most 2 loads per cycle";
  EXPECT_LE(s.cycles, 560u);
}

TEST(OooCore, LoadMissStallsDependents) {
  Trace t;
  MicroOp load = make_op(OpKind::kLoad, 0x1000);
  load.addr = 0x1000'0000u;
  t.push_back(load);
  t.push_back(make_op(OpKind::kIntAlu, 0x1004, 1));  // depends on the load
  const CoreStats s = run(t);
  EXPECT_GE(s.cycles, 100u) << "cold load takes the full memory latency";
}

TEST(OooCore, IndependentMissesOverlap) {
  // Two misses to different L2 lines issued back to back should overlap,
  // costing far less than 2 * 100 cycles.
  Trace t;
  for (int i = 0; i < 2; ++i) {
    MicroOp load = make_op(OpKind::kLoad, 0x1000);
    load.addr = 0x1000'0000u + i * 256;
    t.push_back(load);
  }
  const CoreStats s = run(t);
  EXPECT_LT(s.cycles, 140u);
}

TEST(OooCore, StoreThenLoadSameAddressForwardsInOrder) {
  Trace t;
  MicroOp store = make_op(OpKind::kStore, 0x1000);
  store.addr = 0x1000'0000u;
  store.value = 0xabcdu;
  t.push_back(store);
  MicroOp load = make_op(OpKind::kLoad, 0x1004);
  load.addr = 0x1000'0000u;
  load.value = 0xabcdu;  // expected value
  t.push_back(load);
  const CoreStats s = run(t);
  EXPECT_EQ(s.value_mismatches, 0u)
      << "same-address memory ops must execute in program order";
}

TEST(OooCore, InterleavedStoreLoadStreamStaysConsistent) {
  Trace t;
  std::uint32_t shadow[64] = {};
  std::uint32_t lcg = 5;
  for (int i = 0; i < 5000; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    const std::uint32_t slot = lcg % 64;
    const std::uint32_t addr = 0x1000'0000u + slot * 4;
    if (lcg & 1u) {
      MicroOp op = make_op(OpKind::kStore, 0x1000 + (i % 16) * 4);
      op.addr = addr;
      op.value = lcg;
      shadow[slot] = lcg;
      t.push_back(op);
    } else {
      MicroOp op = make_op(OpKind::kLoad, 0x1000 + (i % 16) * 4);
      op.addr = addr;
      op.value = shadow[slot];
      t.push_back(op);
    }
  }
  const CoreStats s = run(t);
  EXPECT_EQ(s.value_mismatches, 0u);
}

TEST(OooCore, MispredictedBranchesCostCycles) {
  // Alternating outcomes defeat the bimodal predictor; a well-predicted
  // loop branch (always taken) runs much faster.
  auto make_branch_trace = [](bool alternate) {
    Trace t;
    for (int i = 0; i < 2000; ++i) {
      t.push_back(make_op(OpKind::kIntAlu, 0x1000));
      MicroOp br = make_op(OpKind::kBranch, 0x1004);
      const bool taken = alternate ? (i & 1) != 0 : true;
      br.flags = taken ? MicroOp::kFlagTaken : std::uint8_t{0};
      t.push_back(br);
    }
    return t;
  };
  const CoreStats alternating = run(make_branch_trace(true));
  const CoreStats steady = run(make_branch_trace(false));
  EXPECT_GT(alternating.mispredicts, steady.mispredicts * 4);
  EXPECT_GT(alternating.cycles, steady.cycles);
}

TEST(OooCore, IcacheMissesStallFetch) {
  // Ops strided across many distinct I-cache lines vs one hot line.
  Trace cold, hot;
  for (int i = 0; i < 2000; ++i) {
    cold.push_back(make_op(OpKind::kIntAlu, 0x1'0000u + (i % 512) * 64));
    hot.push_back(make_op(OpKind::kIntAlu, 0x1'0000u + (i % 8) * 4));
  }
  const CoreStats s_cold = run(cold);
  const CoreStats s_hot = run(hot);
  EXPECT_GT(s_cold.icache_misses, 100u);
  EXPECT_GT(s_cold.cycles, s_hot.cycles * 2);
}

TEST(OooCore, ReadyQueueTrackedDuringMissCycles) {
  Trace t;
  MicroOp load = make_op(OpKind::kLoad, 0x1000);
  load.addr = 0x1000'0000u;
  t.push_back(load);
  // Plenty of independent work available while the miss is outstanding.
  for (int i = 0; i < 200; ++i) t.push_back(make_op(OpKind::kIntAlu, 0x1004));
  const CoreStats s = run(t);
  EXPECT_GT(s.miss_cycles, 0u);
  EXPECT_GT(s.avg_ready_queue_in_miss_cycles(), 0.0)
      << "independent ops should be ready while the miss is pending";
}

TEST(OooCore, EmptyTraceTerminates) {
  const CoreStats s = run(Trace{});
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.committed, 0u);
}

TEST(OooCore, CommitsEveryOpExactlyOnce) {
  const CoreStats s = run(alu_trace(12345));
  EXPECT_EQ(s.committed, 12345u);
}

// ---- predictor and I-cache units -------------------------------------------

TEST(BimodalPredictor, LearnsASteadyDirection) {
  BimodalPredictor p(64);
  for (int i = 0; i < 4; ++i) p.update(0x40, true);
  EXPECT_TRUE(p.predict(0x40));
  for (int i = 0; i < 4; ++i) p.update(0x40, false);
  EXPECT_FALSE(p.predict(0x40));
}

TEST(BimodalPredictor, HysteresisSurvivesOneFlip) {
  BimodalPredictor p(64);
  for (int i = 0; i < 4; ++i) p.update(0x40, true);
  p.update(0x40, false);  // one not-taken
  EXPECT_TRUE(p.predict(0x40)) << "2-bit counter needs two flips to change";
}

TEST(BimodalPredictor, DistinctPcsUseDistinctCounters) {
  BimodalPredictor p(64);
  for (int i = 0; i < 4; ++i) p.update(0x40, true);
  for (int i = 0; i < 4; ++i) p.update(0x44, false);
  EXPECT_TRUE(p.predict(0x40));
  EXPECT_FALSE(p.predict(0x44));
}

TEST(InstructionCache, MissThenHit) {
  InstructionCache ic;
  EXPECT_FALSE(ic.access(0x1000));
  EXPECT_TRUE(ic.access(0x1000));
  EXPECT_TRUE(ic.access(0x103c));  // same 64-byte line
  EXPECT_EQ(ic.misses(), 1u);
  EXPECT_EQ(ic.hits(), 2u);
}

TEST(InstructionCache, ConflictingLinesEvict) {
  InstructionCache ic({8 * 1024, 64, 1});
  EXPECT_FALSE(ic.access(0x0000));
  EXPECT_FALSE(ic.access(0x2000));  // same set in an 8K direct-mapped cache
  EXPECT_FALSE(ic.access(0x0000)) << "original line was evicted";
}

}  // namespace
}  // namespace cpc::cpu
