#!/bin/sh
# End-to-end check of the cpc_* tools' exit-code contract (tools/cli_util.hpp):
#   0 = success, 2 = usage error, 3 = bad input, 4 = invariant violation.
# Usage: test_exit_codes.sh <dir-with-tool-binaries>
set -u

BIN="${1:?usage: test_exit_codes.sh <tool-dir>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILURES=0

expect() {
  # expect <wanted-code> <label> <cmd...>
  wanted="$1"; label="$2"; shift 2
  "$@" >"$TMP/stdout" 2>"$TMP/stderr"
  got=$?
  if [ "$got" -ne "$wanted" ]; then
    echo "FAIL: $label: expected exit $wanted, got $got" >&2
    sed 's/^/  stderr: /' "$TMP/stderr" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $label (exit $got)"
  fi
}

# --- usage errors (2) --------------------------------------------------------
expect 2 "cpc_run without arguments"      "$BIN/cpc_run"
expect 2 "cpc_run unknown flag"           "$BIN/cpc_run" --bogus trace
expect 2 "cpc_tracegen without arguments" "$BIN/cpc_tracegen"
expect 2 "cpc_analyze without arguments"  "$BIN/cpc_analyze"

# --- bad input (3) -----------------------------------------------------------
printf 'NOT_A_TRACE_AT_ALL_123456789012345678901234' > "$TMP/garbage.cpctrace"
expect 3 "cpc_run garbage trace"     "$BIN/cpc_run" "$TMP/garbage.cpctrace"
expect 3 "cpc_run missing trace"     "$BIN/cpc_run" "$TMP/nonexistent.cpctrace"
expect 3 "cpc_analyze garbage trace" "$BIN/cpc_analyze" "$TMP/garbage.cpctrace"
expect 3 "cpc_tracegen unknown workload" \
  "$BIN/cpc_tracegen" no.such.workload "$TMP/out.cpctrace"

# A real trace but an unknown configuration name.
expect 0 "cpc_tracegen writes a trace" \
  "$BIN/cpc_tracegen" olden.treeadd "$TMP/t.cpctrace" 2000
expect 3 "cpc_run unknown config"         "$BIN/cpc_run" "$TMP/t.cpctrace" NOPE
expect 3 "cpc_run sweep unknown config"   "$BIN/cpc_run" --sweep "$TMP/t.cpctrace" NOPE

# A trace whose header claims more ops than the file holds.
cp "$TMP/t.cpctrace" "$TMP/lying.cpctrace"
printf '\377\377\377\377' | dd of="$TMP/lying.cpctrace" bs=1 seek=16 conv=notrunc 2>/dev/null
expect 3 "cpc_run hostile op count" "$BIN/cpc_run" "$TMP/lying.cpctrace"

# --- invariant violation (4) -------------------------------------------------
expect 4 "cpc_faultcamp --trip-invariant" "$BIN/cpc_faultcamp" --trip-invariant

# --- success (0) -------------------------------------------------------------
expect 0 "cpc_run replay"       "$BIN/cpc_run" "$TMP/t.cpctrace" CPP
expect 0 "cpc_run contained sweep" \
  "$BIN/cpc_run" --sweep --contain --journal "$TMP/sweep.journal" "$TMP/t.cpctrace" BC,CPP
expect 0 "cpc_run sweep resumes from journal" \
  "$BIN/cpc_run" --sweep --contain --journal "$TMP/sweep.journal" "$TMP/t.cpctrace" BC,CPP
expect 0 "cpc_analyze"          "$BIN/cpc_analyze" "$TMP/t.cpctrace"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES exit-code check(s) failed" >&2
  exit 1
fi
echo "all exit-code checks passed"
