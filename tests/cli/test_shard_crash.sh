#!/bin/sh
# Crash matrix for process-sharded sweeps (sim/shard_supervisor.hpp): every
# CPC_CRASH_JOB mode (segv, abort, exit3, hang, oom) must be contained —
# the sweep exits 0 and its deterministic CSV columns are byte-identical to
# the serial run — and a SIGKILLed *supervisor* must resume from its journal.
# Usage: test_shard_crash.sh <dir-with-tool-binaries>
set -u

BIN="${1:?usage: test_shard_crash.sh <tool-dir>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILURES=0
CONFIGS="BC,BCC,HAC,BCP,CPP"

fail() {
  echo "FAIL: $1" >&2
  [ -f "$TMP/stderr" ] && sed 's/^/  stderr: /' "$TMP/stderr" >&2
  FAILURES=$((FAILURES + 1))
}

# The timing columns (wall_seconds, ops_per_sec) legitimately differ between
# runs; everything before them must not.
deterministic_csv() { cut -d, -f1-6 "$1"; }

"$BIN/cpc_tracegen" olden.treeadd "$TMP/t.cpctrace" 60000 >/dev/null 2>&1 \
  || { echo "FAIL: cpc_tracegen" >&2; exit 1; }

# --- serial baseline ---------------------------------------------------------
"$BIN/cpc_run" --sweep "$TMP/t.cpctrace" "$CONFIGS" \
  >"$TMP/serial.csv" 2>"$TMP/stderr" || { fail "serial sweep"; exit 1; }

# --- clean sharded run is bit-identical --------------------------------------
"$BIN/cpc_run" --sweep --procs 3 "$TMP/t.cpctrace" "$CONFIGS" \
  >"$TMP/sharded.csv" 2>"$TMP/stderr" || fail "clean --procs 3 sweep"
if ! deterministic_csv "$TMP/serial.csv" >"$TMP/a"; then fail "cut serial"; fi
deterministic_csv "$TMP/sharded.csv" >"$TMP/b"
cmp -s "$TMP/a" "$TMP/b" || fail "clean sharded CSV differs from serial"
echo "ok: clean --procs 3 matches serial"

# --- the five crash modes ----------------------------------------------------
# Job 2 of the 5-config grid dies on its first attempt; the retried attempt
# must complete and the merged output must still match the serial run.
for mode in segv abort exit3 hang oom; do
  case "$mode" in
    hang) extra_env="CPC_SHARD_SILENCE_MS=1500" ;;
    oom)  extra_env="CPC_SHARD_RLIMIT_MB=192" ;;
    *)    extra_env="" ;;
  esac
  if env CPC_CRASH_JOB="2:$mode" ${extra_env:+$extra_env} \
      "$BIN/cpc_run" --sweep --procs 3 "$TMP/t.cpctrace" "$CONFIGS" \
      >"$TMP/crash.csv" 2>"$TMP/stderr"; then
    deterministic_csv "$TMP/crash.csv" >"$TMP/b"
    if cmp -s "$TMP/a" "$TMP/b"; then
      echo "ok: crash mode $mode contained, output identical"
    else
      fail "crash mode $mode: CSV differs from serial"
    fi
    grep -q "shard worker died" "$TMP/stderr" \
      || fail "crash mode $mode: no worker death reported on stderr"
  else
    fail "crash mode $mode: sweep exited non-zero"
  fi
done

# --- killed supervisor resumes from its journal ------------------------------
# SIGKILL the whole sharded run shortly after it starts; whatever was
# journaled before the kill restores, the rest re-runs, and the final CSV is
# still identical to serial. (If the run won the race and finished, the
# resume pass restores everything — the assertion holds either way.)
"$BIN/cpc_run" --sweep --procs 2 --journal "$TMP/resume.journal" \
  "$TMP/t.cpctrace" "$CONFIGS" >/dev/null 2>&1 &
SUPERVISOR=$!
sleep 0.2
kill -9 "$SUPERVISOR" 2>/dev/null
wait "$SUPERVISOR" 2>/dev/null
"$BIN/cpc_run" --sweep --procs 2 --journal "$TMP/resume.journal" \
  "$TMP/t.cpctrace" "$CONFIGS" >"$TMP/resumed.csv" 2>"$TMP/stderr" \
  || fail "journal resume pass exited non-zero"
deterministic_csv "$TMP/resumed.csv" >"$TMP/b"
cmp -s "$TMP/a" "$TMP/b" || fail "resumed CSV differs from serial"
echo "ok: supervisor kill + journal resume"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES shard-crash check(s) failed" >&2
  exit 1
fi
echo "all shard-crash checks passed"
