#!/bin/sh
# End-to-end matrix for the sweep service (tools/cpc_serve.cpp):
#   1. four concurrent clients against a --procs 2 daemon each stream a CSV
#      bit-identical (deterministic columns) to a serial cpc_run sweep
#   2. a client SIGKILLed mid-stream gets its sweep cancelled; the daemon
#      survives and serves the next submission normally
#   3. with --queue-max 1, a third simultaneous submission is shed with an
#      explicit reply (client exit 1, "shed" on stderr)
#   4. SIGTERM drains: daemon exits 0, removes its socket, leaks no workers
#   5. a SIGKILLed daemon restarted on the same --state-dir resumes from the
#      journal; a reconnecting client ends with the full bit-identical CSV
# Usage: test_serve.sh <dir-with-tool-binaries>
set -u

BIN="${1:?usage: test_serve.sh <tool-dir>}"
TMP="$(mktemp -d)"
FAILURES=0
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

deterministic_csv() { cut -d, -f1-6 "$1"; }

# Polls for a predicate command up to ~15s.
wait_for() {
  i=0
  while [ "$i" -lt 150 ]; do
    if "$@" 2>/dev/null; then return 0; fi
    sleep 0.1
    i=$((i + 1))
  done
  return 1
}

socket_ready() { [ -S "$1" ]; }
log_contains() { grep -q "$2" "$1"; }

start_daemon() {  # start_daemon <log> <args...>
  log="$1"; shift
  "$BIN/cpc_serve" "$@" >"$log" 2>&1 &
  DAEMON_PID=$!
}

"$BIN/cpc_tracegen" olden.treeadd "$TMP/t.cpctrace" 60000 >/dev/null 2>&1 \
  || { echo "FAIL: cpc_tracegen" >&2; exit 1; }
# A deliberately slow grid (25 jobs over a 5M-op trace) for the tests that
# need a sweep still in flight when something is killed.
"$BIN/cpc_tracegen" olden.treeadd "$TMP/long.cpctrace" 5000000 >/dev/null 2>&1 \
  || { echo "FAIL: cpc_tracegen (long)" >&2; exit 1; }
ALLCFG="BC,BCC,HAC,BCP,CPP"
LONGCFG="$ALLCFG,$ALLCFG,$ALLCFG,$ALLCFG,$ALLCFG"

"$BIN/cpc_run" --sweep "$TMP/t.cpctrace" "$ALLCFG" >"$TMP/serial.csv" 2>/dev/null \
  || { echo "FAIL: serial baseline"; exit 1; }
"$BIN/cpc_run" --sweep "$TMP/long.cpctrace" "$LONGCFG" >"$TMP/serial_long.csv" 2>/dev/null \
  || { echo "FAIL: serial long baseline"; exit 1; }
deterministic_csv "$TMP/serial.csv" >"$TMP/expect"
deterministic_csv "$TMP/serial_long.csv" >"$TMP/expect_long"

# --- 1. four concurrent clients, sharded daemon ------------------------------
SOCK="$TMP/serve.sock"
start_daemon "$TMP/serve1.log" --socket "$SOCK" --procs 2 --state-dir "$TMP/state1"
wait_for socket_ready "$SOCK" || fail "daemon socket never appeared"

for i in 1 2 3 4; do
  "$BIN/cpc_client" --socket "$SOCK" --id "con$i" --quiet \
    "$TMP/t.cpctrace" "$ALLCFG" >"$TMP/con$i.csv" 2>"$TMP/con$i.err" &
  eval "CPID$i=\$!"
done
for i in 1 2 3 4; do
  eval "pid=\$CPID$i"
  wait "$pid" || fail "concurrent client $i exited nonzero"
  deterministic_csv "$TMP/con$i.csv" >"$TMP/got"
  cmp -s "$TMP/expect" "$TMP/got" \
    || fail "concurrent client $i CSV differs from serial"
done
echo "ok: 4 concurrent clients bit-identical to serial"

# --- 2. client killed mid-stream: sweep cancelled, daemon survives -----------
"$BIN/cpc_client" --socket "$SOCK" --id doomed --quiet \
  "$TMP/long.cpctrace" "$LONGCFG" >"$TMP/doomed.csv" 2>/dev/null &
DOOMED=$!
sleep 1
kill -9 "$DOOMED" 2>/dev/null
wait "$DOOMED" 2>/dev/null
wait_for log_contains "$TMP/serve1.log" "cancelled doomed" \
  || fail "daemon never cancelled the orphaned sweep"
"$BIN/cpc_client" --socket "$SOCK" --id after-kill --quiet \
  "$TMP/t.cpctrace" "$ALLCFG" >"$TMP/after.csv" 2>"$TMP/after.err" \
  || fail "submission after client kill failed"
deterministic_csv "$TMP/after.csv" >"$TMP/got"
cmp -s "$TMP/expect" "$TMP/got" || fail "post-kill CSV differs from serial"
echo "ok: orphaned sweep cancelled, daemon kept serving"

# Drain daemon 1 (also exercised, with leak checks, in step 4).
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || fail "daemon 1 drain exited nonzero"
DAEMON_PID=""

# --- 3. load shedding at --queue-max 1 ---------------------------------------
SOCK2="$TMP/serve2.sock"
start_daemon "$TMP/serve2.log" --socket "$SOCK2" --procs 2 --queue-max 1 \
  --state-dir "$TMP/state2"
wait_for socket_ready "$SOCK2" || fail "daemon 2 socket never appeared"

"$BIN/cpc_client" --socket "$SOCK2" --id busy --quiet \
  "$TMP/long.cpctrace" "$LONGCFG" >/dev/null 2>&1 &
BUSY=$!
wait_for log_contains "$TMP/serve2.log" "running busy" \
  || fail "busy sweep never started"
"$BIN/cpc_client" --socket "$SOCK2" --id queued --quiet \
  "$TMP/long.cpctrace" "$LONGCFG" >/dev/null 2>&1 &
QUEUED=$!
wait_for log_contains "$TMP/serve2.log" "accepted queued" \
  || fail "second submission never queued"
if "$BIN/cpc_client" --socket "$SOCK2" --id shedme --quiet \
    "$TMP/t.cpctrace" "$ALLCFG" >/dev/null 2>"$TMP/shed.err"; then
  fail "third simultaneous submission was not shed"
else
  grep -qi "shed" "$TMP/shed.err" || fail "no shed notice on client stderr"
fi
echo "ok: queue-max 1 sheds the overflow submission"

# --- 3b. a shed resubmission must not cancel its in-flight predecessor -------
# The queue is still full of *other* work (queued), so resubmitting the
# running id is refused — but the refusal must leave the in-flight busy
# sweep running, not cancel it first and then shed the replacement.
if "$BIN/cpc_client" --socket "$SOCK2" --id busy --quiet \
    "$TMP/t.cpctrace" "$ALLCFG" >/dev/null 2>"$TMP/reshed.err"; then
  fail "resubmission of the running id while full was not shed"
else
  grep -qi "shed" "$TMP/reshed.err" || fail "no shed notice on resubmission"
fi
sleep 2
grep -q "cancelled busy" "$TMP/serve2.log" \
  && fail "shed resubmission cancelled its in-flight predecessor"
echo "ok: shed resubmission left the in-flight sweep running"

kill -9 "$BUSY" "$QUEUED" 2>/dev/null
wait "$BUSY" 2>/dev/null
wait "$QUEUED" 2>/dev/null

# --- 4. SIGTERM drain: exit 0, socket gone, no leaked workers ----------------
wait_for log_contains "$TMP/serve2.log" "cancelled busy" \
  || fail "daemon 2 never cancelled after client kills"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
RC=$?
DAEMON_PID=""
[ "$RC" -eq 0 ] || fail "drain exit code $RC (want 0)"
[ -S "$SOCK2" ] && fail "drained daemon left its socket behind"
LEAKED="$(pgrep -f "cpc_serve.*$TMP" 2>/dev/null | wc -l)"
[ "$LEAKED" -eq 0 ] || fail "$LEAKED cpc_serve process(es) leaked past drain"
echo "ok: SIGTERM drain clean (exit 0, no leaked processes)"

# --- 5. SIGKILL + restart: journal resume, client stream still bit-exact -----
SOCK3="$TMP/serve3.sock"
start_daemon "$TMP/serve3.log" --socket "$SOCK3" --state-dir "$TMP/state3"
wait_for socket_ready "$SOCK3" || fail "daemon 3 socket never appeared"
"$BIN/cpc_client" --socket "$SOCK3" --id phoenix --quiet \
  --retries 8 --backoff-ms 200 \
  "$TMP/long.cpctrace" "$LONGCFG" >"$TMP/phoenix.csv" 2>"$TMP/phoenix.err" &
PHOENIX=$!
# Let at least one result land in the journal, then murder the daemon.
first_rows() { [ "$(wc -l <"$TMP/phoenix.csv")" -ge 2 ]; }
wait_for first_rows || fail "no streamed rows before daemon kill"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null
sleep 0.5
start_daemon "$TMP/serve3b.log" --socket "$SOCK3" --state-dir "$TMP/state3"
wait_for socket_ready "$SOCK3" || fail "restarted daemon socket never appeared"
wait "$PHOENIX" || fail "client across daemon restart exited nonzero"
deterministic_csv "$TMP/phoenix.csv" >"$TMP/got"
cmp -s "$TMP/expect_long" "$TMP/got" \
  || fail "post-restart CSV differs from serial long baseline"
grep -q "restored" "$TMP/serve3b.log" "$TMP/phoenix.err" 2>/dev/null || true
echo "ok: SIGKILL + restart resumed from the journal, stream bit-exact"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || fail "daemon 3 drain exited nonzero"
DAEMON_PID=""

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES serve check(s) failed" >&2
  exit 1
fi
echo "all serve checks passed"
