#!/bin/sh
# End-to-end check of cpc_bench's exit-code contract (bench/cpc_bench.cpp):
#   0 = success / gate passed, 1 = performance regression, 2 = usage error,
#   3 = bad input, 4 = invariant violation.
# Usage: test_bench_cli.sh <path-to-cpc_bench>
set -u

BENCH="${1:?usage: test_bench_cli.sh <cpc_bench>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILURES=0

expect() {
  # expect <wanted-code> <label> <cmd...>
  wanted="$1"; label="$2"; shift 2
  "$@" >"$TMP/stdout" 2>"$TMP/stderr"
  got=$?
  if [ "$got" -ne "$wanted" ]; then
    echo "FAIL: $label: expected exit $wanted, got $got" >&2
    sed 's/^/  stderr: /' "$TMP/stderr" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $label (exit $got)"
  fi
}

# --- usage errors (2) --------------------------------------------------------
expect 2 "unknown flag" "$BENCH" --bogus
expect 0 "--help"       "$BENCH" --help

# --- bad input (3) -----------------------------------------------------------
expect 3 "flag missing its value"  "$BENCH" --ops
expect 3 "non-numeric --ops"       "$BENCH" --ops banana
expect 3 "non-positive --handicap" "$BENCH" --handicap 0
expect 3 "missing baseline" \
  "$BENCH" --check "$TMP/no-such-baseline.json" --ops 2000 \
           --workloads olden.treeadd --repeats 1 --corpus "$TMP/absent"
printf 'not json at all' > "$TMP/garbage.json"
expect 3 "malformed baseline" \
  "$BENCH" --check "$TMP/garbage.json" --ops 2000 \
           --workloads olden.treeadd --repeats 1 --corpus "$TMP/absent"
expect 3 "unknown workload" \
  "$BENCH" --ops 2000 --workloads no.such.workload --repeats 1 \
           --corpus "$TMP/absent"

# --- invariant violation (4) -------------------------------------------------
expect 4 "--trip-invariant" "$BENCH" --trip-invariant

# --- success (0) and regression (1) ------------------------------------------
# A real (small) measurement that clears the gate's noise floor, written as
# the baseline; the workloads are cheap pointer kernels so this stays fast.
expect 0 "measurement writes a report" \
  "$BENCH" --ops 300000 --workloads olden.treeadd,olden.health \
           --repeats 1 --jobs 1 --corpus "$TMP/absent" \
           --out "$TMP/baseline.json"
expect 0 "self-gate passes" \
  "$BENCH" --ops 300000 --workloads olden.treeadd,olden.health \
           --repeats 1 --jobs 1 --corpus "$TMP/absent" \
           --check "$TMP/baseline.json" --min-ratio 0.2
# --handicap divides the measured ops/sec before gating; a 100x handicap is
# an injected regression no floor tolerates — the gate must fire.
expect 1 "handicapped run fails the gate" \
  "$BENCH" --ops 300000 --workloads olden.treeadd,olden.health \
           --repeats 1 --jobs 1 --corpus "$TMP/absent" \
           --check "$TMP/baseline.json" --min-ratio 0.85 --handicap 100

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES cpc_bench exit-code check(s) failed" >&2
  exit 1
fi
echo "cpc_bench exit-code contract holds"
