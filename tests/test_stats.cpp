// Tests for the stats/table utilities every bench binary uses.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/counters.hpp"
#include "stats/table.hpp"

namespace cpc::stats {
namespace {

TEST(Means, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Means, MeanSkipsNan) {
  EXPECT_DOUBLE_EQ(mean({1.0, std::nan(""), 3.0}), 2.0);
}

TEST(Means, MeanOfEmptyIsNan) {
  EXPECT_TRUE(std::isnan(mean({})));
  EXPECT_TRUE(std::isnan(mean({std::nan("")})));
}

TEST(Means, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({1.0, 4.0}), 2.0);
  EXPECT_NEAR(geomean({2.0, 8.0, 4.0}), 4.0, 1e-12);
}

TEST(Means, GeomeanSkipsNonPositive) {
  EXPECT_DOUBLE_EQ(geomean({-5.0, 0.0, 4.0, 1.0}), 2.0);
}

TEST(Table, StoresCellsByRowAndColumn) {
  Table t("title", {"a", "b"});
  t.add_row("r0", {1.0, 2.0});
  t.add_row("r1", {3.0, 4.0});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_DOUBLE_EQ(t.cell(1, 0), 3.0);
  EXPECT_EQ(t.row_label(1), "r1");
  EXPECT_EQ(t.column_label(1), "b");
}

TEST(Table, ShortRowsArePaddedWithNan) {
  Table t("t", {"a", "b", "c"});
  t.add_row("r", {1.0});
  EXPECT_TRUE(std::isnan(t.cell(0, 2)));
}

TEST(Table, MeanRowAveragesColumns) {
  Table t("t", {"a", "b"});
  t.add_row("r0", {1.0, 10.0});
  t.add_row("r1", {3.0, 30.0});
  t.add_mean_row();
  EXPECT_DOUBLE_EQ(t.cell(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.cell(2, 1), 20.0);
  EXPECT_EQ(t.row_label(2), "average");
}

TEST(Table, GeomeanRow) {
  Table t("t", {"a"});
  t.add_row("r0", {2.0});
  t.add_row("r1", {8.0});
  t.add_geomean_row("gm");
  EXPECT_DOUBLE_EQ(t.cell(2, 0), 4.0);
}

TEST(Table, AsciiContainsLabelsAndValues) {
  Table t("my title", {"col"});
  t.add_row("row", {1.25});
  const std::string ascii = t.to_ascii(2);
  EXPECT_NE(ascii.find("my title"), std::string::npos);
  EXPECT_NE(ascii.find("row"), std::string::npos);
  EXPECT_NE(ascii.find("col"), std::string::npos);
  EXPECT_NE(ascii.find("1.25"), std::string::npos);
}

TEST(Table, AsciiRendersNanAsDash) {
  Table t("t", {"a", "b"});
  t.add_row("r", {1.0});
  EXPECT_NE(t.to_ascii().find('-'), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t("t", {"a", "b"});
  t.add_row("r", {1.0, 2.5});
  const std::string csv = t.to_csv(1);
  EXPECT_EQ(csv, "benchmark,a,b\nr,1.0,2.5\n");
}

TEST(Table, CsvEmptyCellForNan) {
  Table t("t", {"a", "b"});
  t.add_row("r", {1.0});
  EXPECT_EQ(t.to_csv(0), "benchmark,a,b\nr,1,\n");
}

TEST(CounterSet, AddAndGet) {
  CounterSet c;
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("missing"), 0u);
}

TEST(CounterSet, ToStringSortedByName) {
  CounterSet c;
  c.add("zeta", 1);
  c.add("alpha", 2);
  EXPECT_EQ(c.to_string(), "alpha=2\nzeta=1\n");
}

TEST(CounterSet, ResetClears) {
  CounterSet c;
  c.add("x");
  c.reset();
  EXPECT_EQ(c.get("x"), 0u);
  EXPECT_TRUE(c.all().empty());
}

}  // namespace
}  // namespace cpc::stats
