// Property tests over all 14 workload kernels: determinism, sequential
// trace consistency (every load matches the last store), realistic op
// mixes, and value-compressibility diversity (the precondition for Fig. 3).

#include <gtest/gtest.h>

#include <unordered_map>

#include "compress/classification_stats.hpp"
#include "workload/workloads.hpp"

namespace cpc::workload {
namespace {

class WorkloadSuite : public ::testing::TestWithParam<Workload> {
 protected:
  static constexpr std::uint64_t kOps = 120'000;
  cpu::Trace make_trace(std::uint64_t seed = 0x5eed) const {
    return generate(GetParam(), {kOps, seed});
  }
};

TEST_P(WorkloadSuite, ProducesRequestedTraceLength) {
  const cpu::Trace t = make_trace();
  EXPECT_GE(t.size(), kOps);
  // Kernels may overshoot while unwinding, but not by much.
  EXPECT_LE(t.size(), kOps * 3 / 2);
}

TEST_P(WorkloadSuite, DeterministicForSameSeed) {
  const cpu::Trace a = make_trace(7);
  const cpu::Trace b = make_trace(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].pc, b[i].pc);
    ASSERT_EQ(a[i].addr, b[i].addr);
    ASSERT_EQ(a[i].value, b[i].value);
    ASSERT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind));
  }
}

TEST_P(WorkloadSuite, DifferentSeedsDiffer) {
  const cpu::Trace a = make_trace(1);
  const cpu::Trace b = make_trace(2);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].addr != b[i].addr || a[i].value != b[i].value;
  }
  EXPECT_TRUE(differs);
}

TEST_P(WorkloadSuite, TraceIsSequentiallyConsistent) {
  // The property the whole replay methodology rests on: played back in
  // program order against a flat memory, every load sees the value of the
  // latest prior store (or zero).
  const cpu::Trace t = make_trace();
  std::unordered_map<std::uint32_t, std::uint32_t> memory;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const cpu::MicroOp& op = t[i];
    if (op.kind == cpu::OpKind::kStore) {
      memory[op.addr & ~3u] = op.value;
    } else if (op.kind == cpu::OpKind::kLoad) {
      const auto it = memory.find(op.addr & ~3u);
      ASSERT_EQ(op.value, it == memory.end() ? 0u : it->second)
          << GetParam().name << " op " << i;
    }
  }
}

TEST_P(WorkloadSuite, DependenceDistancesAreValid) {
  const cpu::Trace t = make_trace();
  for (std::size_t i = 0; i < t.size(); ++i) {
    ASSERT_LE(t[i].dep1, i);
    ASSERT_LE(t[i].dep2, i);
  }
}

TEST_P(WorkloadSuite, RealisticOperationMix) {
  const cpu::Trace t = make_trace();
  std::uint64_t mem = 0, branch = 0;
  for (const cpu::MicroOp& op : t) {
    if (cpu::is_memory_op(op.kind)) ++mem;
    if (op.kind == cpu::OpKind::kBranch) ++branch;
  }
  const double mem_frac = static_cast<double>(mem) / static_cast<double>(t.size());
  EXPECT_GT(mem_frac, 0.15) << "memory-starved trace cannot exercise the caches";
  EXPECT_LT(mem_frac, 0.85);
  EXPECT_GT(branch, t.size() / 200) << "traces need branches for the predictor";
}

TEST_P(WorkloadSuite, TouchesBothCompressibleAndIncompressibleValues) {
  const cpu::Trace t = make_trace();
  compress::ClassificationStats stats;
  for (const cpu::MicroOp& op : t) {
    if (cpu::is_memory_op(op.kind)) stats.record(op.value, op.addr);
  }
  ASSERT_GT(stats.total(), 0u);
  EXPECT_GT(stats.compressible_fraction(), 0.05) << GetParam().name;
  // No kernel should be 100% compressible — real programs never are.
  EXPECT_LT(stats.compressible_fraction(), 0.999) << GetParam().name;
}

TEST_P(WorkloadSuite, WorkingSetExceedsL1) {
  const cpu::Trace t = make_trace();
  std::unordered_map<std::uint32_t, bool> lines;
  for (const cpu::MicroOp& op : t) {
    if (cpu::is_memory_op(op.kind)) lines[op.addr / 64] = true;
  }
  EXPECT_GT(lines.size() * 64, 8u * 1024) << "footprint smaller than L1";
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadSuite, ::testing::ValuesIn(all_workloads()),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

TEST(WorkloadRegistry, FourteenBenchmarksInThreeSuites) {
  const auto& all = all_workloads();
  EXPECT_EQ(all.size(), 14u);
  std::uint32_t olden = 0, spec95 = 0, spec2000 = 0;
  for (const Workload& w : all) {
    if (w.suite == "Olden") ++olden;
    if (w.suite == "SPECint95") ++spec95;
    if (w.suite == "SPECint2000") ++spec2000;
  }
  EXPECT_EQ(olden, 8u);
  EXPECT_EQ(spec95, 3u);
  EXPECT_EQ(spec2000, 3u);
}

TEST(WorkloadRegistry, FindByName) {
  EXPECT_EQ(find_workload("olden.health").name, "olden.health");
  EXPECT_THROW(find_workload("nope"), std::out_of_range);
}

}  // namespace
}  // namespace cpc::workload
