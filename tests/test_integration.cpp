// Integration tests: every workload replayed through every configuration
// must return bit-exact load values and leave all structural invariants
// intact; plus the paper-level relationships the experiment driver relies
// on (BC == BCC timing, importance math, environment parsing).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <tuple>

#include "cache/line_compression_hierarchy.hpp"
#include "cache/pseudo_assoc_hierarchy.hpp"
#include "cache/victim_hierarchy.hpp"
#include "sim/experiment.hpp"

namespace cpc::sim {
namespace {

using IntegrationParam = std::tuple<workload::Workload, ConfigKind>;

class EveryWorkloadOnEveryConfig : public ::testing::TestWithParam<IntegrationParam> {};

TEST_P(EveryWorkloadOnEveryConfig, BitExactReplayAndInvariants) {
  const auto& [wl, kind] = GetParam();
  const cpu::Trace trace = workload::generate(wl, {60'000, 0x5eed});
  auto hierarchy = make_hierarchy(kind);
  const RunResult r = run_trace_on(trace, *hierarchy);
  EXPECT_EQ(r.core.value_mismatches, 0u)
      << wl.name << " on " << config_name(kind) << " served stale data";
  EXPECT_NO_THROW(hierarchy->validate());
  EXPECT_EQ(r.core.committed, trace.size());
  EXPECT_GT(r.core.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EveryWorkloadOnEveryConfig,
    ::testing::Combine(::testing::ValuesIn(workload::all_workloads()),
                       ::testing::ValuesIn(kAllConfigs)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param).name + "_" +
                         config_name(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

// The related-work comparators (PAC, VC, LCC) must be functionally exact
// caches too: same bit-exact replay requirement over every workload.
using ComparatorParam = std::tuple<workload::Workload, std::string>;

class EveryWorkloadOnComparators : public ::testing::TestWithParam<ComparatorParam> {
 protected:
  static std::unique_ptr<cache::MemoryHierarchy> make(const std::string& which) {
    if (which == "PAC") return std::make_unique<cache::PseudoAssocHierarchy>();
    if (which == "VC") return std::make_unique<cache::VictimHierarchy>();
    return std::make_unique<cache::LineCompressionHierarchy>();
  }
};

TEST_P(EveryWorkloadOnComparators, BitExactReplay) {
  const auto& [wl, which] = GetParam();
  const cpu::Trace trace = workload::generate(wl, {60'000, 0x5eed});
  auto hierarchy = make(which);
  const RunResult r = run_trace_on(trace, *hierarchy);
  EXPECT_EQ(r.core.value_mismatches, 0u) << wl.name << " on " << which;
  EXPECT_NO_THROW(hierarchy->validate());
  EXPECT_EQ(r.core.committed, trace.size());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EveryWorkloadOnComparators,
    ::testing::Combine(::testing::ValuesIn(workload::all_workloads()),
                       ::testing::Values("PAC", "VC", "LCC")),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param).name + "_" + std::get<1>(info.param);
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

TEST(Experiment, ConfigNames) {
  EXPECT_EQ(config_name(ConfigKind::kBC), "BC");
  EXPECT_EQ(config_name(ConfigKind::kBCC), "BCC");
  EXPECT_EQ(config_name(ConfigKind::kHAC), "HAC");
  EXPECT_EQ(config_name(ConfigKind::kBCP), "BCP");
  EXPECT_EQ(config_name(ConfigKind::kCPP), "CPP");
  for (ConfigKind k : kAllConfigs) {
    EXPECT_EQ(make_hierarchy(k)->name(), config_name(k));
  }
}

TEST(Experiment, BccMatchesBcTimingButNotTraffic) {
  // Paper section 4.1: "BC and BCC have the same performance since BCC only
  // changes the format in which the data is stored and transmitted."
  const auto trace = workload::generate(workload::find_workload("olden.treeadd"),
                                        {80'000, 0x5eed});
  const RunResult bc = run_trace(trace, ConfigKind::kBC);
  const RunResult bcc = run_trace(trace, ConfigKind::kBCC);
  EXPECT_EQ(bc.core.cycles, bcc.core.cycles);
  EXPECT_EQ(bc.hierarchy.l1_misses, bcc.hierarchy.l1_misses);
  EXPECT_EQ(bc.hierarchy.l2_misses, bcc.hierarchy.l2_misses);
  EXPECT_LT(bcc.traffic_words(), bc.traffic_words());
}

TEST(Experiment, CppPrefetchesWithoutTrafficExplosion) {
  // The headline claim is about the average (Fig. 10: CPP ≈ 90% of BC);
  // individual benchmarks may pay a little extra when stores turn
  // compressible words incompressible (section 4.2). Bound the worst case
  // well below prefetching's +80% while requiring real prefetch activity.
  const auto trace = workload::generate(workload::find_workload("olden.treeadd"),
                                        {80'000, 0x5eed});
  const RunResult bc = run_trace(trace, ConfigKind::kBC);
  const RunResult cpp = run_trace(trace, ConfigKind::kCPP);
  EXPECT_LE(cpp.traffic_words(), bc.traffic_words() * 1.25);
  EXPECT_LT(cpp.hierarchy.mem_fetch_lines, bc.hierarchy.mem_fetch_lines)
      << "packed affiliated words should save demand fetches";
  EXPECT_GT(cpp.hierarchy.l1_affiliated_hits + cpp.hierarchy.l2_affiliated_hits, 0u);
  EXPECT_LE(cpp.core.cycles, bc.core.cycles);
}

TEST(Experiment, CppTrafficBelowBaselineOnAverage) {
  // Fig. 10's average-level claim across a representative subset.
  double bc_total = 0.0, cpp_total = 0.0;
  for (const char* name :
       {"olden.health", "olden.treeadd", "olden.mst", "spec2000.181.mcf"}) {
    const auto trace = workload::generate(workload::find_workload(name),
                                          {80'000, 0x5eed});
    bc_total += run_trace(trace, ConfigKind::kBC).traffic_words();
    cpp_total += run_trace(trace, ConfigKind::kCPP).traffic_words();
  }
  EXPECT_LT(cpp_total, bc_total);
}

TEST(Experiment, BcpPrefetchesWithExtraTraffic) {
  const auto trace = workload::generate(workload::find_workload("olden.health"),
                                        {80'000, 0x5eed});
  const RunResult bc = run_trace(trace, ConfigKind::kBC);
  const RunResult bcp = run_trace(trace, ConfigKind::kBCP);
  EXPECT_GT(bcp.traffic_words(), bc.traffic_words());
  EXPECT_LT(bcp.hierarchy.l1_misses, bc.hierarchy.l1_misses);
}

TEST(Experiment, HalvedPenaltyNeverSlowsDown) {
  const auto trace = workload::generate(workload::find_workload("olden.mst"),
                                        {60'000, 0x5eed});
  for (ConfigKind k : kAllConfigs) {
    const ImportanceResult imp = miss_importance(trace, k);
    EXPECT_GE(imp.s_overall, 1.0) << config_name(k);
    EXPECT_GE(imp.fraction_enhanced, 0.0);
    EXPECT_LE(imp.fraction_enhanced, 1.0);
  }
}

TEST(Experiment, ImportanceFormulaMatchesAmdahl) {
  // Fraction = S_enh (1 - 1/S_overall) / (S_enh - 1); with S_enh = 2 and
  // S_overall = 4/3, Fraction = 0.5.
  const double s_overall = 4.0 / 3.0;
  const double fraction = 2.0 * (1.0 - 1.0 / s_overall) / (2.0 - 1.0);
  EXPECT_NEAR(fraction, 0.5, 1e-12);
}

TEST(Experiment, LatencyHalvingHelper) {
  cache::LatencyConfig normal;
  const cache::LatencyConfig half = normal.halved_miss_penalty();
  EXPECT_EQ(half.l1_hit, normal.l1_hit) << "hit latency is not a miss penalty";
  EXPECT_EQ(half.l2_hit, normal.l2_hit / 2);
  EXPECT_EQ(half.memory, normal.memory / 2);
}

TEST(BenchOptionsTest, ReadsEnvironment) {
  setenv("CPC_TRACE_OPS", "12345", 1);
  setenv("CPC_WORKLOADS", "olden.mst,spec95.130.li", 1);
  setenv("CPC_SEED", "99", 1);
  const BenchOptions opts = BenchOptions::from_env();
  EXPECT_EQ(opts.trace_ops, 12345u);
  EXPECT_EQ(opts.seed, 99u);
  ASSERT_EQ(opts.workloads.size(), 2u);
  EXPECT_EQ(opts.workloads[0].name, "olden.mst");
  EXPECT_EQ(opts.workloads[1].name, "spec95.130.li");
  unsetenv("CPC_TRACE_OPS");
  unsetenv("CPC_WORKLOADS");
  unsetenv("CPC_SEED");
}

TEST(BenchOptionsTest, DefaultsToAllWorkloads) {
  unsetenv("CPC_WORKLOADS");
  EXPECT_EQ(BenchOptions::from_env().workloads.size(), 14u);
}

}  // namespace
}  // namespace cpc::sim
