// BenchMeter: the BENCH_<n>.json schema must round-trip through its own
// JSON model, reject other schema versions while ignoring unknown keys
// (annotation keys in committed baselines are legal), keep every
// non-timing field bit-deterministic across runs, and gate regressions.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/bench_meter.hpp"
#include "sim/ipc.hpp"

namespace cpc {
namespace {

/// A small but real report: one workload, every config, two repeats.
/// ~15k simulated ops keeps the whole suite comfortably sub-second.
sim::BenchReport tiny_report() {
  sim::BenchRunOptions options;
  options.trace_ops = 3000;
  options.seed = 0xbead;
  options.repeats = 2;
  options.threads = 1;
  options.mode = "quick";
  options.workloads = {"olden.treeadd"};
  options.corpus_dir = "";  // skip the corpus suite: not present under ctest
  return sim::run_bench_suites(options);
}

TEST(BenchJson, ReportRoundTripsThroughItsOwnModel) {
  const sim::BenchReport report = tiny_report();
  ASSERT_FALSE(report.suites.empty());
  ASSERT_FALSE(report.suites[0].jobs.empty());

  const std::string text = report.to_json().dump();
  const sim::BenchReport back =
      sim::BenchReport::from_json(sim::JsonValue::parse(text));

  EXPECT_EQ(back.schema_version, report.schema_version);
  EXPECT_EQ(back.mode, report.mode);
  EXPECT_EQ(back.threads, report.threads);
  EXPECT_EQ(back.repeats, report.repeats);
  ASSERT_EQ(back.suites.size(), report.suites.size());
  for (std::size_t s = 0; s < report.suites.size(); ++s) {
    const sim::BenchSuiteResult& a = report.suites[s];
    const sim::BenchSuiteResult& b = back.suites[s];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.committed_total, a.committed_total);
    EXPECT_EQ(b.repeat_ops_per_second.size(), a.repeat_ops_per_second.size());
    ASSERT_EQ(b.jobs.size(), a.jobs.size());
    for (std::size_t j = 0; j < a.jobs.size(); ++j) {
      EXPECT_EQ(b.jobs[j].workload, a.jobs[j].workload);
      EXPECT_EQ(b.jobs[j].config, a.jobs[j].config);
      EXPECT_EQ(b.jobs[j].trace_ops, a.jobs[j].trace_ops);
      EXPECT_EQ(b.jobs[j].seed, a.jobs[j].seed);
      EXPECT_EQ(b.jobs[j].committed, a.jobs[j].committed);
      EXPECT_EQ(b.jobs[j].cycles, a.jobs[j].cycles);
      EXPECT_EQ(b.jobs[j].l1_misses, a.jobs[j].l1_misses);
      EXPECT_EQ(b.jobs[j].l2_misses, a.jobs[j].l2_misses);
      EXPECT_EQ(b.jobs[j].traffic_half_units, a.jobs[j].traffic_half_units);
      EXPECT_EQ(b.jobs[j].fingerprint, a.jobs[j].fingerprint);
    }
  }
  // The dump itself must be stable: serialize → parse → serialize is a
  // fixed point (this is what makes committed baselines diffable).
  EXPECT_EQ(back.to_json().dump(), text);
}

TEST(BenchJson, RejectsOtherSchemaVersions) {
  sim::BenchReport report;  // empty shell is enough to serialize
  sim::JsonValue root = report.to_json();
  root.set("schema_version",
           sim::JsonValue::integer(sim::kBenchSchemaVersion + 1));
  EXPECT_THROW(sim::BenchReport::from_json(root), sim::JsonError);
}

TEST(BenchJson, IgnoresUnknownKeys) {
  const sim::BenchReport report = tiny_report();
  sim::JsonValue root = report.to_json();
  // Annotation keys like the committed baseline's pre-optimization block
  // must not break readers.
  sim::JsonValue note = sim::JsonValue::object();
  note.set("ops_per_second", sim::JsonValue::number(1.0e6));
  root.set("pre_optimization", note);
  root.set("comment", sim::JsonValue::string("extra keys are legal"));
  const sim::BenchReport back = sim::BenchReport::from_json(root);
  EXPECT_EQ(back.suites.size(), report.suites.size());
}

TEST(BenchJson, MalformedDocumentsThrow) {
  EXPECT_THROW(sim::JsonValue::parse("{"), sim::JsonError);
  EXPECT_THROW(sim::JsonValue::parse("{} trailing"), sim::JsonError);
  EXPECT_THROW(sim::BenchReport::from_json(sim::JsonValue::parse("[1,2]")),
               sim::JsonError);
}

TEST(BenchDeterminism, NonTimingFieldsIdenticalAcrossRuns) {
  sim::BenchReport first = tiny_report();
  sim::BenchReport second = tiny_report();
  // Timing differs run to run; everything else must not.
  first.clear_timing_fields();
  second.clear_timing_fields();
  EXPECT_EQ(first.to_json().dump(), second.to_json().dump());
}

TEST(BenchDeterminism, ClearTimingFieldsZeroesOnlyTimingClassFields) {
  sim::BenchReport report = tiny_report();
  const std::uint64_t committed = report.suites[0].committed_total;
  const std::uint64_t fingerprint = report.suites[0].jobs[0].fingerprint;
  report.clear_timing_fields();
  EXPECT_EQ(report.suites[0].committed_total, committed);
  EXPECT_EQ(report.suites[0].jobs[0].fingerprint, fingerprint);
  EXPECT_EQ(report.rss_peak_bytes, 0u);
  for (const sim::BenchSuiteResult& suite : report.suites) {
    EXPECT_EQ(suite.wall_seconds, 0.0);
    EXPECT_EQ(suite.ops_per_second, 0.0);
    EXPECT_TRUE(suite.repeat_ops_per_second.empty());
    for (const sim::BenchJobRecord& job : suite.jobs) {
      EXPECT_EQ(job.wall_seconds, 0.0);
      EXPECT_EQ(job.ops_per_second, 0.0);
    }
  }
}

/// Builds a one-suite report with the given per-repeat ops/sec and a wall
/// time safely above the gate's noise floor.
sim::BenchReport synthetic(std::vector<double> repeats) {
  sim::BenchReport report;
  sim::BenchSuiteResult suite;
  suite.name = "kernels";
  suite.committed_total = 1'000'000;
  suite.wall_seconds = 10.0;
  suite.ops_per_second = repeats.front();
  suite.repeat_ops_per_second = std::move(repeats);
  report.suites.push_back(std::move(suite));
  return report;
}

TEST(BenchGate, PassesAtParityAndFailsBelowTheFloor) {
  const sim::BenchReport baseline = synthetic({100.0, 110.0, 120.0});

  const sim::GateResult parity =
      sim::perf_gate(baseline, synthetic({100.0, 110.0, 120.0}), 0.85);
  EXPECT_TRUE(parity.ok);
  EXPECT_NEAR(parity.worst_ratio, 1.0, 1e-12);

  // Median 55 vs 110: a 2x slowdown (exactly what --handicap 2 simulates)
  // must trip an 0.85 floor.
  const sim::GateResult slow =
      sim::perf_gate(baseline, synthetic({55.0, 50.0, 60.0}), 0.85);
  EXPECT_FALSE(slow.ok);
  EXPECT_NEAR(slow.worst_ratio, 0.5, 1e-12);

  // The gate compares medians, so one noisy repeat must not fail it.
  const sim::GateResult noisy =
      sim::perf_gate(baseline, synthetic({30.0, 105.0, 115.0}), 0.85);
  EXPECT_TRUE(noisy.ok);
}

TEST(BenchGate, ShortSuitesAreInformationalOnly) {
  sim::BenchReport baseline = synthetic({100.0});
  baseline.suites[0].wall_seconds = sim::kGateNoiseFloorSeconds / 10.0;
  // A huge "regression" on a microscopic suite is timer noise, not signal.
  const sim::GateResult gate =
      sim::perf_gate(baseline, synthetic({1.0}), 0.85);
  EXPECT_TRUE(gate.ok);
}

TEST(BenchMeter, StopwatchIsMonotonic) {
  const sim::Stopwatch timer;
  const double t0 = timer.seconds();
  const double t1 = timer.seconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GE(t1, t0);
}

TEST(BenchMeter, PeakRssIncludesReapedChildren) {
  // Sharded sweeps do their allocating in fork()ed workers; a peak_rss that
  // only read RUSAGE_SELF under-reported every --procs run. Spawn a child
  // that demonstrably touches ~128 MiB, reap it, and require the meter to
  // see at least most of that (fold-in happens at wait() time).
  if (!sim::ipc::process_isolation_supported()) {
    GTEST_SKIP() << "no fork() on this platform";
  }
  constexpr std::uint64_t kBlock = 128ull << 20;
  sim::ipc::ChildProcess child =
      sim::ipc::spawn_worker({}, [](int /*write_fd*/) {
        // Touch every page so the pages are actually resident; the
        // deliberate leak is irrelevant — the child _exit()s right after.
        volatile char* block = new char[kBlock];
        for (std::uint64_t i = 0; i < kBlock; i += 4096) {
          block[i] = static_cast<char>(i);
        }
      });
  ASSERT_TRUE(child.valid());
  const sim::ipc::ExitStatus status = sim::ipc::wait_blocking(child);
  sim::ipc::close_fd(child.read_fd);
  ASSERT_TRUE(status.clean());
  // Generous slack: allocator/sanitizer overhead differs, but a meter that
  // missed the child entirely would report this process's few tens of MiB.
  EXPECT_GE(sim::peak_rss_bytes(), 100ull << 20);
}

}  // namespace
}  // namespace cpc
