// Unit tests for the lint library's C++ lexer (tools/lint/lexer.cpp):
// the corner cases that sank the regex engine — raw strings, line
// splices, block comments with embedded `/*` — must produce the right
// token stream and the right stripped view.

#include "lint/lexer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cpc::lint {
namespace {

std::vector<std::string> texts(const LexOutput& out) {
  std::vector<std::string> result;
  for (const auto& tok : out.tokens) result.push_back(tok.text);
  return result;
}

TEST(LintLexer, RawStringBodyIsOpaque) {
  // Everything between the matched delimiters is literal text: the `//`,
  // the bare `"`, and the decoy `)"` must not end the string, start a
  // comment, or emit tokens. (The body stays free of CPC-L001-banned
  // names: the legacy engine can't see through raw strings — the very
  // bug this lexer fixes — and the zero-diff gate holds it to the token
  // engine's output on the real tree.)
  const auto out = lex({R"cpp(auto s = R"ban(opaque() // " )" )ban";)cpp",
                        "next();"});
  const std::vector<std::string> expect = {"auto", "s",    "=", "", ";",
                                           "next", "(",    ")", ";"};
  EXPECT_EQ(texts(out), expect);
  ASSERT_EQ(out.tokens[3].kind, TokKind::kString);
  EXPECT_EQ(out.tokens[3].line, 1u);
  EXPECT_EQ(out.tokens[5].line, 2u);
}

TEST(LintLexer, RawStringSpansLines) {
  const auto out = lex({"auto s = R\"(line one", "line two)\";", "after();"});
  const std::vector<std::string> expect = {"auto", "s", "=",     "",  ";",
                                           "after", "(", ")", ";"};
  EXPECT_EQ(texts(out), expect);
  // The string token carries its opening line; code resumes on line 3.
  EXPECT_EQ(out.tokens[3].line, 1u);
  EXPECT_EQ(out.tokens[5].line, 3u);
  // The stripped view keeps one entry per physical line with the body
  // emptied, so line-local checks never see the literal's contents.
  ASSERT_EQ(out.stripped.size(), 3u);
  EXPECT_EQ(out.stripped[1].find("line two"), std::string::npos);
}

TEST(LintLexer, LineSpliceJoinsTokens) {
  // A backslash-newline splice glues the halves into one identifier.
  const auto out = lex({"int ab\\", "cd = 3;"});
  const std::vector<std::string> expect = {"int", "abcd", "=", "3", ";"};
  EXPECT_EQ(texts(out), expect);
  EXPECT_EQ(out.tokens[1].line, 1u);
}

TEST(LintLexer, SplicedDirectiveStaysPreprocessor) {
  // The continuation line of a spliced #define is still directive
  // territory: its tokens must carry pp so structural consumers skip it.
  const auto out = lex({"#define BODY(x) \\", "  do_thing(x)", "real();"});
  for (const auto& tok : out.tokens) {
    if (tok.line <= 2) {
      EXPECT_TRUE(tok.pp) << tok.text;
    } else {
      EXPECT_FALSE(tok.pp) << tok.text;
    }
  }
}

TEST(LintLexer, BlockCommentsDoNotNest) {
  // Per the language, `/*` inside a block comment is plain text: the
  // comment ends at the FIRST `*/`, and what follows is live code.
  const auto out = lex({"/* outer /* inner */ after();"});
  const std::vector<std::string> expect = {"after", "(", ")", ";"};
  EXPECT_EQ(texts(out), expect);
}

TEST(LintLexer, MultiLineBlockCommentStripsEveryLine) {
  const auto out = lex({"before(); /* one", "two std::rand()", "three */ tail();"});
  const std::vector<std::string> expect = {"before", "(",    ")", ";",
                                           "tail",   "(",    ")", ";"};
  EXPECT_EQ(texts(out), expect);
  ASSERT_EQ(out.stripped.size(), 3u);
  EXPECT_EQ(out.stripped[1].find("rand"), std::string::npos);
  EXPECT_EQ(out.tokens[4].line, 3u);
}

TEST(LintLexer, DigitSeparatorsStayOneNumber) {
  const auto out = lex({"auto n = 0x1234'5678 + 1'000'000;"});
  const std::vector<std::string> expect = {"auto", "n",         "=",
                                           "0x1234'5678", "+", "1'000'000", ";"};
  EXPECT_EQ(texts(out), expect);
  EXPECT_EQ(out.tokens[3].kind, TokKind::kNumber);
}

TEST(LintLexer, CharLiteralIsNotAStringOpener) {
  // '"' must not open a string: the following identifier is live code.
  const auto out = lex({"char q = '\"'; live();"});
  const std::vector<std::string> expect = {"char", "q", "=", "", ";",
                                           "live", "(", ")", ";"};
  EXPECT_EQ(texts(out), expect);
  EXPECT_EQ(out.tokens[3].kind, TokKind::kCharLit);
}

TEST(LintLexer, ScopeAndArrowAreSingleTokens) {
  const auto out = lex({"a::b->c;"});
  const std::vector<std::string> expect = {"a", "::", "b", "->", "c", ";"};
  EXPECT_EQ(texts(out), expect);
}

}  // namespace
}  // namespace cpc::lint
