// The quiescent-cycle fast-forward in OooCore::run (ooo_core.cpp) claims to
// be an exact closed-form replay of the cycles it skips. This suite keeps
// that claim executable: for every paper configuration and a spread of
// workloads, a run with the fast-forward disabled (the reference
// cycle-by-cycle loop, CoreConfig::disable_cycle_skip) must produce the
// same value for every core counter and every hierarchy statistic.

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>

#include "sim/experiment.hpp"
#include "workload/workloads.hpp"

namespace cpc {
namespace {

void expect_identical_runs(const sim::RunResult& fast,
                           const sim::RunResult& reference) {
  // Core counters — cycles first: it is the one the skip manipulates.
  EXPECT_EQ(fast.core.cycles, reference.core.cycles);
  EXPECT_EQ(fast.core.committed, reference.core.committed);
  EXPECT_EQ(fast.core.loads, reference.core.loads);
  EXPECT_EQ(fast.core.stores, reference.core.stores);
  EXPECT_EQ(fast.core.branches, reference.core.branches);
  EXPECT_EQ(fast.core.mispredicts, reference.core.mispredicts);
  EXPECT_EQ(fast.core.icache_misses, reference.core.icache_misses);
  EXPECT_EQ(fast.core.value_mismatches, reference.core.value_mismatches);
  EXPECT_EQ(fast.core.wrongpath_loads, reference.core.wrongpath_loads);
  EXPECT_EQ(fast.core.wrongpath_stores_squashed,
            reference.core.wrongpath_stores_squashed);
  // The per-cycle accumulators are the subtle part: the skip credits them
  // in closed form instead of iterating.
  EXPECT_EQ(fast.core.miss_cycles, reference.core.miss_cycles);
  EXPECT_EQ(fast.core.ready_sum_miss_cycles,
            reference.core.ready_sum_miss_cycles);
  EXPECT_EQ(fast.core.ready_sum_all_cycles,
            reference.core.ready_sum_all_cycles);
  EXPECT_EQ(fast.core.ops_depending_on_miss,
            reference.core.ops_depending_on_miss);
  // Hierarchy statistics: the skip must not change what the caches see.
  EXPECT_EQ(fast.hierarchy.l1_misses, reference.hierarchy.l1_misses);
  EXPECT_EQ(fast.hierarchy.l2_misses, reference.hierarchy.l2_misses);
  EXPECT_EQ(fast.hierarchy.traffic.half_units(),
            reference.hierarchy.traffic.half_units());
}

TEST(CoreFastForward, EquivalentToReferenceLoopOnEveryConfig) {
  // Pointer-chasing workloads have long memory stalls (many skippable
  // quiescent cycles); the gzip kernel exercises the steady-state path.
  for (const char* name :
       {"olden.treeadd", "olden.health", "spec2000.164.gzip"}) {
    const workload::Workload& wl = workload::find_workload(name);
    workload::WorkloadParams params;
    params.target_ops = 20'000;
    params.seed = 0x5eed;
    const cpu::Trace trace = workload::generate(wl, params);
    for (sim::ConfigKind kind : sim::kAllConfigs) {
      SCOPED_TRACE(std::string(name) + " / " + sim::config_name(kind));
      cpu::CoreConfig fast_config;
      ASSERT_FALSE(fast_config.disable_cycle_skip);  // default = optimized
      cpu::CoreConfig reference_config;
      reference_config.disable_cycle_skip = true;

      const sim::RunResult fast = sim::run_trace(trace, kind, fast_config);
      const sim::RunResult reference =
          sim::run_trace(trace, kind, reference_config);
      expect_identical_runs(fast, reference);
      // The fast-forward must actually engage on stall-heavy traces —
      // otherwise this suite proves nothing. Committed ops per cycle being
      // finite guarantees cycles > 0; equality above did the real work.
      ASSERT_GT(fast.core.cycles, 0u);
    }
  }
}

TEST(CoreFastForward, DisabledPathIsStillDeterministic) {
  const workload::Workload& wl = workload::find_workload("olden.treeadd");
  workload::WorkloadParams params;
  params.target_ops = 10'000;
  params.seed = 7;
  const cpu::Trace trace = workload::generate(wl, params);
  cpu::CoreConfig reference_config;
  reference_config.disable_cycle_skip = true;
  const sim::RunResult a =
      sim::run_trace(trace, sim::ConfigKind::kCPP, reference_config);
  const sim::RunResult b =
      sim::run_trace(trace, sim::ConfigKind::kCPP, reference_config);
  expect_identical_runs(a, b);
}

}  // namespace
}  // namespace cpc
