// Unit tests for the compression cache internals: CompressedLine flags and
// CppCache placement/merge/demotion/promotion (paper sections 3.1, 3.3).

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "core/cpp_cache.hpp"

namespace cpc::core {
namespace {

using compress::kPaperScheme;

// --- CompressedLine ---------------------------------------------------------

TEST(CompressedLine, StartsEmpty) {
  CompressedLine line(16);
  EXPECT_EQ(line.pa_mask(), 0u);
  EXPECT_EQ(line.aa_mask(), 0u);
  EXPECT_FALSE(line.valid);
  EXPECT_TRUE(line.slot_free_for_affiliated(0));
}

TEST(CompressedLine, SetPrimaryWordTracksCompression) {
  CompressedLine line(16);
  line.line_addr = 0x40'0000;  // heap line
  const std::uint32_t addr = 0x1000'0000;
  EXPECT_FALSE(line.set_primary_word(0, 5, addr, kPaperScheme));
  EXPECT_TRUE(line.has_primary(0));
  EXPECT_TRUE(line.primary_compressed(0));

  // Compressed -> uncompressed transition is reported.
  EXPECT_TRUE(line.set_primary_word(0, 0x4000'0000u, addr, kPaperScheme));
  EXPECT_FALSE(line.primary_compressed(0));

  // Uncompressed -> uncompressed is not a transition.
  EXPECT_FALSE(line.set_primary_word(0, 0x5000'0000u, addr, kPaperScheme));
}

TEST(CompressedLine, SlotFreeRules) {
  CompressedLine line(16);
  const std::uint32_t addr = 0x1000'0000;
  line.set_primary_word(0, 0x4000'0000u, addr, kPaperScheme);  // uncompressed
  EXPECT_FALSE(line.slot_free_for_affiliated(0));
  line.set_primary_word(1, 7u, addr + 4, kPaperScheme);  // compressed
  EXPECT_TRUE(line.slot_free_for_affiliated(1));
  line.set_affiliated_word(1, compress::CompressedWord{3});
  EXPECT_FALSE(line.slot_free_for_affiliated(1));  // occupied now
  line.drop_affiliated_word(1);
  EXPECT_TRUE(line.slot_free_for_affiliated(1));
}

// --- CppCache ---------------------------------------------------------------

class CollectingSink final : public WritebackSink {
 public:
  struct Record {
    std::uint32_t line_addr;
    std::uint32_t mask;
    std::vector<std::uint32_t> words;
  };
  void writeback(std::uint32_t line_addr, std::uint32_t mask,
                 std::span<const std::uint32_t> words) override {
    records.push_back({line_addr, mask, {words.begin(), words.end()}});
  }
  std::vector<Record> records;
};

// 512-byte direct-mapped cache with 64-byte lines: 8 sets.
cache::CacheGeometry tiny_geo() { return {512, 64, 1}; }

// Heap-region line addresses: line L covers bytes [L*64, L*64+63].
constexpr std::uint32_t kLineA = 0x0400'0000u;      // set 0 (even)
constexpr std::uint32_t kBuddyA = kLineA ^ 1u;      // set 1

IncomingLine full_line(const CppCache& c, std::uint32_t line_addr, std::uint32_t seed) {
  IncomingLine in;
  in.line_addr = line_addr;
  const std::uint32_t n = c.geometry().words_per_line();
  in.words.assign(n, 0);
  in.aff_words.assign(n, 0);
  in.present = 0xffffu;
  for (std::uint32_t i = 0; i < n; ++i) in.words[i] = seed + i;  // small values
  return in;
}

TEST(CppCache, InstallAndFindPrimary) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  c.install(full_line(c, kLineA, 10), sink);
  CompressedLine* line = c.find_primary(kLineA);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->pa_mask(), 0xffffu);
  EXPECT_EQ(line->primary_word(3), 13u);
  EXPECT_FALSE(line->dirty);
  EXPECT_TRUE(sink.records.empty());
  c.validate();
}

TEST(CppCache, InstallWithAffiliatedHalf) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  IncomingLine in = full_line(c, kLineA, 10);
  // Pack two affiliated words (compressed small values).
  for (std::uint32_t i : {2u, 5u}) {
    in.aff_present |= 1u << i;
    in.aff_words[i] = kPaperScheme.compress(100 + i, c.word_addr(kBuddyA, i))->bits;
  }
  c.install(in, sink);

  EXPECT_NE(c.find_affiliated_host(kBuddyA), nullptr);
  std::uint32_t v = 0;
  EXPECT_TRUE(c.peek_word(kBuddyA, 2, v));
  EXPECT_EQ(v, 102u);
  EXPECT_TRUE(c.peek_word(kBuddyA, 5, v));
  EXPECT_EQ(v, 105u);
  EXPECT_FALSE(c.peek_word(kBuddyA, 3, v)) << "absent affiliated word must miss";
  c.validate();
}

TEST(CppCache, PrefetchedHalfDiscardedWhenLineResident) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  c.install(full_line(c, kBuddyA, 50), sink);  // buddy already primary

  IncomingLine in = full_line(c, kLineA, 10);
  in.aff_present = 1u << 0;
  in.aff_words[0] = kPaperScheme.compress(1, c.word_addr(kBuddyA, 0))->bits;
  c.install(in, sink);

  // The prefetched copy must have been discarded: one copy rule.
  EXPECT_EQ(c.find_primary(kLineA)->aa_mask(), 0u);
  std::uint32_t v = 0;
  EXPECT_TRUE(c.peek_word(kBuddyA, 0, v));
  EXPECT_EQ(v, 50u) << "primary copy wins";
  c.validate();
}

TEST(CppCache, MergePreservesDirtyWords) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  IncomingLine partial = full_line(c, kLineA, 10);
  partial.present = 0x00ffu;  // lower half only
  c.install(partial, sink);

  CompressedLine* line = c.find_primary(kLineA);
  c.write_primary_word(*line, 0, 777u);  // dirty word 0

  IncomingLine rest = full_line(c, kLineA, 900);  // all words, different data
  c.install(rest, sink);

  line = c.find_primary(kLineA);
  EXPECT_EQ(line->pa_mask(), 0xffffu);
  EXPECT_EQ(line->primary_word(0), 777u) << "merge must not clobber dirty data";
  EXPECT_EQ(line->primary_word(3), 13u) << "already-present words stay";
  EXPECT_EQ(line->primary_word(12), 912u) << "missing words are filled";
  EXPECT_TRUE(line->dirty);
  c.validate();
}

TEST(CppCache, EvictionWritesBackDirtyAndDemotes) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  c.install(full_line(c, kBuddyA, 50), sink);  // buddy primary at set 1
  c.install(full_line(c, kLineA, 10), sink);   // victim-to-be at set 0
  c.write_primary_word(*c.find_primary(kLineA), 4, 4444u);

  // Conflicting line in set 0 evicts kLineA.
  const std::uint32_t conflict = kLineA + 8;  // 8 sets => same set 0
  c.install(full_line(c, conflict, 70), sink);

  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].line_addr, kLineA);
  EXPECT_EQ(sink.records[0].mask, 0xffffu);
  EXPECT_EQ(sink.records[0].words[4], 4444u);

  // A clean partial copy was demoted into the buddy's physical line.
  EXPECT_EQ(c.find_primary(kLineA), nullptr);
  std::uint32_t v = 0;
  EXPECT_TRUE(c.peek_word(kLineA, 0, v));
  EXPECT_EQ(v, 10u);
  EXPECT_TRUE(c.peek_word(kLineA, 4, v));
  EXPECT_EQ(v, 4444u) << "demoted copy reflects the written-back data";
  EXPECT_GT(c.demotions(), 0u);
  c.validate();
}

TEST(CppCache, CleanEvictionDoesNotWriteBack) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  c.install(full_line(c, kLineA, 10), sink);
  c.install(full_line(c, kLineA + 8, 70), sink);
  EXPECT_TRUE(sink.records.empty());
}

TEST(CppCache, DemotionSkipsIncompressibleWords) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  c.install(full_line(c, kBuddyA, 50), sink);
  IncomingLine in = full_line(c, kLineA, 10);
  in.words[7] = 0x7654'3210u;  // incompressible at this address
  c.install(in, sink);
  c.install(full_line(c, kLineA + 8, 70), sink);  // evict kLineA

  std::uint32_t v = 0;
  EXPECT_TRUE(c.peek_word(kLineA, 0, v));
  EXPECT_FALSE(c.peek_word(kLineA, 7, v))
      << "incompressible words cannot be kept in a half-slot";
  c.validate();
}

TEST(CppCache, DemotionRequiresBuddyResident) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  c.install(full_line(c, kLineA, 10), sink);   // buddy NOT resident
  c.install(full_line(c, kLineA + 8, 70), sink);
  std::uint32_t v = 0;
  EXPECT_FALSE(c.peek_word(kLineA, 0, v)) << "no affiliated place without buddy";
}

TEST(CppCache, PromoteMovesAffiliatedToPrimary) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  IncomingLine in = full_line(c, kLineA, 10);
  in.aff_present = (1u << 1) | (1u << 9);
  in.aff_words[1] = kPaperScheme.compress(201, c.word_addr(kBuddyA, 1))->bits;
  in.aff_words[9] = kPaperScheme.compress(209, c.word_addr(kBuddyA, 9))->bits;
  c.install(in, sink);

  CompressedLine& promoted = c.promote(kBuddyA, sink);
  EXPECT_EQ(promoted.line_addr, kBuddyA);
  EXPECT_EQ(promoted.pa_mask(), (1u << 1) | (1u << 9));
  EXPECT_EQ(promoted.primary_word(1), 201u);
  EXPECT_FALSE(promoted.dirty);
  EXPECT_EQ(c.find_primary(kLineA)->aa_mask(), 0u) << "source copy cleared";
  EXPECT_EQ(c.promotions(), 1u);
  c.validate();
}

TEST(CppCache, IncompressibleWriteEvictsAffiliatedWord) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  IncomingLine in = full_line(c, kLineA, 10);
  in.aff_present = 1u << 3;
  in.aff_words[3] = kPaperScheme.compress(33, c.word_addr(kBuddyA, 3))->bits;
  c.install(in, sink);

  CompressedLine* line = c.find_primary(kLineA);
  ASSERT_TRUE(line->has_affiliated(3));
  c.write_primary_word(*line, 3, 0x6000'0000u);  // now needs the full slot
  EXPECT_FALSE(line->has_affiliated(3)) << "conflicting affiliated word evicted";
  EXPECT_EQ(c.affiliated_word_evictions(), 1u);
  // Other slots unaffected.
  EXPECT_TRUE(line->has_primary(3));
  c.validate();
}

TEST(CppCache, CompressibleWriteKeepsAffiliatedWord) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  IncomingLine in = full_line(c, kLineA, 10);
  in.aff_present = 1u << 3;
  in.aff_words[3] = kPaperScheme.compress(33, c.word_addr(kBuddyA, 3))->bits;
  c.install(in, sink);

  CompressedLine* line = c.find_primary(kLineA);
  c.write_primary_word(*line, 3, 42u);  // still compressible
  EXPECT_TRUE(line->has_affiliated(3));
  c.validate();
}

TEST(CppCache, AffiliationDisabledNeverPacks) {
  CppCache c(tiny_geo(), kPaperScheme, cache::kAffiliationMask,
             /*affiliation_enabled=*/false);
  CollectingSink sink;
  c.install(full_line(c, kBuddyA, 50), sink);
  c.install(full_line(c, kLineA, 10), sink);
  c.install(full_line(c, kLineA + 8, 70), sink);  // evict kLineA
  std::uint32_t v = 0;
  EXPECT_FALSE(c.peek_word(kLineA, 0, v));
  EXPECT_EQ(c.demotions(), 0u);
}

TEST(CppCache, ValidateCatchesCorruptedAaBit) {
  CppCache c(tiny_geo(), kPaperScheme);
  CollectingSink sink;
  IncomingLine in = full_line(c, kLineA, 10);
  in.words[6] = 0x7000'0001u;  // incompressible primary word
  c.install(in, sink);
  CompressedLine* line = c.find_primary(kLineA);
  // Corrupt: force an affiliated word over the uncompressed slot.
  line->set_affiliated_word(6, compress::CompressedWord{1});
  EXPECT_THROW(c.validate(), InvariantViolation);
}

}  // namespace
}  // namespace cpc::core
