// Behavioural tests for the BC/BCC/HAC and BCP hierarchies: latencies,
// miss accounting, write-back correctness, traffic metering, and the
// prefetch-buffer coherence hazards.

#include <gtest/gtest.h>

#include "cache/baseline_hierarchy.hpp"
#include "cache/prefetch_hierarchy.hpp"

namespace cpc::cache {
namespace {

// Default geometry: L1 8K DM 64B, L2 64K 2-way 128B; latencies 1/10/100.

TEST(BaselineHierarchy, ColdReadMissesBothLevels) {
  auto h = BaselineHierarchy::make_bc();
  std::uint32_t v = 0;
  const AccessResult r = h.read(0x1000'0000u, v);
  EXPECT_TRUE(r.l1_miss);
  EXPECT_TRUE(r.l2_miss);
  EXPECT_EQ(r.latency, 100u);
  EXPECT_EQ(v, 0u);  // unwritten memory reads zero
}

TEST(BaselineHierarchy, SecondReadHitsL1) {
  auto h = BaselineHierarchy::make_bc();
  std::uint32_t v = 0;
  h.read(0x1000'0000u, v);
  const AccessResult r = h.read(0x1000'0004u, v);  // same line
  EXPECT_FALSE(r.l1_miss);
  EXPECT_EQ(r.latency, 1u);
  EXPECT_EQ(h.stats().l1_misses, 1u);
}

TEST(BaselineHierarchy, L2HitAfterL1Eviction) {
  auto h = BaselineHierarchy::make_bc();
  std::uint32_t v = 0;
  const std::uint32_t a = 0x1000'0000u;
  const std::uint32_t conflict = a + 8 * 1024;  // same L1 set, same L2 set? different L2 line
  h.read(a, v);
  h.read(conflict, v);  // evicts `a` from L1 (direct mapped)
  const AccessResult r = h.read(a, v);
  EXPECT_TRUE(r.l1_miss);
  EXPECT_FALSE(r.l2_miss) << "line must still be resident in the 64K L2";
  EXPECT_EQ(r.latency, 10u);
}

TEST(BaselineHierarchy, WriteReadRoundTrip) {
  auto h = BaselineHierarchy::make_bc();
  h.write(0x1000'0040u, 0xdeadbeefu);
  std::uint32_t v = 0;
  h.read(0x1000'0040u, v);
  EXPECT_EQ(v, 0xdeadbeefu);
}

TEST(BaselineHierarchy, DirtyDataSurvivesEvictionChain) {
  auto h = BaselineHierarchy::make_bc();
  const std::uint32_t addr = 0x1000'0000u;
  h.write(addr, 1234u);
  // Thrash both levels with > 64K of distinct lines mapping over everything.
  std::uint32_t sink = 0;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    h.read(0x2000'0000u + i * 64, sink);
  }
  std::uint32_t v = 0;
  h.read(addr, v);
  EXPECT_EQ(v, 1234u) << "dirty write lost during write-back chain";
  EXPECT_GT(h.stats().mem_writebacks, 0u);
}

TEST(BaselineHierarchy, TrafficCountsFullLinesUncompressed) {
  auto h = BaselineHierarchy::make_bc();
  std::uint32_t v = 0;
  h.read(0x1000'0000u, v);  // one L2 line from memory
  EXPECT_DOUBLE_EQ(h.stats().traffic.words(), 32.0);
}

TEST(BaselineHierarchy, BccTrafficHalvesForCompressibleData) {
  auto h = BaselineHierarchy::make_bcc();
  std::uint32_t v = 0;
  h.read(0x1000'0000u, v);  // all-zero line: fully compressible
  EXPECT_DOUBLE_EQ(h.stats().traffic.words(), 16.0);
}

TEST(BaselineHierarchy, BccTimingIdenticalToBc) {
  auto bc = BaselineHierarchy::make_bc();
  auto bcc = BaselineHierarchy::make_bcc();
  std::uint32_t v1 = 0, v2 = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const std::uint32_t addr = 0x1000'0000u + (i * 1664525u % 0x40000u & ~3u);
    if (i % 3 == 0) {
      bc.write(addr, i);
      bcc.write(addr, i);
    } else {
      const AccessResult r1 = bc.read(addr, v1);
      const AccessResult r2 = bcc.read(addr, v2);
      ASSERT_EQ(r1.latency, r2.latency);
      ASSERT_EQ(v1, v2);
    }
  }
  EXPECT_EQ(bc.stats().l1_misses, bcc.stats().l1_misses);
  EXPECT_EQ(bc.stats().l2_misses, bcc.stats().l2_misses);
  EXPECT_LT(bcc.stats().traffic.words(), bc.stats().traffic.words());
}

TEST(BaselineHierarchy, HacUsesDoubledAssociativity) {
  auto h = BaselineHierarchy::make_hac();
  EXPECT_EQ(h.config().l1.ways, 2u);
  EXPECT_EQ(h.config().l2.ways, 4u);
  // Two L1-conflicting lines coexist in the 2-way L1.
  std::uint32_t v = 0;
  h.read(0x1000'0000u, v);
  h.read(0x1000'0000u + 4 * 1024, v);  // same set in 4K-per-way L1
  EXPECT_EQ(h.read(0x1000'0000u, v).latency, 1u);
}

TEST(BaselineHierarchy, StatsCountReadsAndWrites) {
  auto h = BaselineHierarchy::make_bc();
  std::uint32_t v = 0;
  h.read(0x100u, v);
  h.write(0x200u, 1u);
  h.write(0x300u, 2u);
  EXPECT_EQ(h.stats().reads, 1u);
  EXPECT_EQ(h.stats().writes, 2u);
}

// ---- BCP ------------------------------------------------------------------

TEST(PrefetchHierarchy, NextLinePrefetchHitIsNotAMiss) {
  PrefetchHierarchy h;
  std::uint32_t v = 0;
  h.read(0x1000'0000u, v);  // miss; prefetches line at +64
  const AccessResult r = h.read(0x1000'0040u, v);
  EXPECT_FALSE(r.l1_miss) << "prefetch-buffer hit must not count as a miss";
  EXPECT_EQ(r.served_by, ServedBy::kL1PrefetchBuffer);
  EXPECT_EQ(r.latency, 1u);
  EXPECT_EQ(h.stats().l1_pbuf_hits, 1u);
  EXPECT_EQ(h.stats().l1_misses, 1u);
}

TEST(PrefetchHierarchy, PrefetchGeneratesMemoryTraffic) {
  PrefetchHierarchy h;
  auto bc = BaselineHierarchy::make_bc();
  std::uint32_t v = 0;
  // A single cold read: BCP fetches the demand L2 line AND prefetches the
  // next L2 line (L2-level) — the L1-level prefetch of +64 stays within the
  // same fetched L2 line.
  h.read(0x1000'0000u, v);
  bc.read(0x1000'0000u, v);
  EXPECT_GT(h.stats().traffic.words(), bc.stats().traffic.words());
  EXPECT_GT(h.stats().prefetch_lines, 0u);
}

TEST(PrefetchHierarchy, BufferCapacityIsEnforced) {
  PrefetchHierarchy h(kBaselineConfig, 2, 4);
  EXPECT_EQ(h.l1_buffer().capacity(), 2u);
  EXPECT_EQ(h.l2_buffer().capacity(), 4u);
  std::uint32_t v = 0;
  // Many scattered misses cycle lines through the small buffers.
  for (std::uint32_t i = 0; i < 64; ++i) h.read(0x1000'0000u + i * 8192, v);
  EXPECT_LE(h.l1_buffer().size(), 2u);
  EXPECT_LE(h.l2_buffer().size(), 4u);
}

TEST(PrefetchHierarchy, WriteToPrefetchedLineMovesItIntoCache) {
  PrefetchHierarchy h;
  std::uint32_t v = 0;
  h.read(0x1000'0000u, v);             // prefetches +64 into the L1 buffer
  h.write(0x1000'0044u, 0xabcdu);      // write hits the buffered line
  EXPECT_EQ(h.stats().l1_pbuf_hits, 1u);
  EXPECT_FALSE(h.l1_buffer().contains(h.config().l1.line_of(0x1000'0040u)));
  h.read(0x1000'0044u, v);
  EXPECT_EQ(v, 0xabcdu);
}

TEST(PrefetchHierarchy, WritebackKeepsL2BufferCopyCoherent) {
  // Hazard: a dirty L1 line is written back while its L2 line sits in the
  // L2 prefetch buffer; the buffered copy must not serve stale data later.
  PrefetchHierarchy h;
  std::uint32_t v = 0;
  const std::uint32_t addr = 0x1000'0000u;
  h.write(addr, 0x1111u);
  // Force an L2 demand miss on the previous L2 line so addr's L2 line gets
  // prefetched into the L2 buffer... then evict the dirty L1 line.
  // Simpler: thrash L1 and L2 so the writeback goes somewhere, then re-read.
  for (std::uint32_t i = 0; i < 8192; ++i) h.read(0x3000'0000u + i * 64, v);
  h.read(addr, v);
  EXPECT_EQ(v, 0x1111u);
}

TEST(PrefetchHierarchy, RandomizedReadYourWrites) {
  PrefetchHierarchy h;
  std::uint32_t lcg = 12345;
  std::unordered_map<std::uint32_t, std::uint32_t> reference;
  std::uint32_t v = 0;
  for (int i = 0; i < 60'000; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    const std::uint32_t addr = 0x1000'0000u + (lcg % 0x80000u & ~3u);
    if ((lcg >> 28) < 6) {
      h.write(addr, lcg);
      reference[addr] = lcg;
    } else {
      h.read(addr, v);
      const auto it = reference.find(addr);
      ASSERT_EQ(v, it == reference.end() ? 0u : it->second) << "at addr " << addr;
    }
  }
}

}  // namespace
}  // namespace cpc::cache
