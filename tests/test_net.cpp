// net/protocol.hpp + net/socket.hpp: message and job-spec codecs must
// round-trip exactly and reject truncation/foreign versions/unknown kinds;
// the config grammar and deadline layering are shared with cpc_run; and a
// framed message must survive a real Unix-socket hop end to end.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "sim/experiment.hpp"
#include "sim/ipc.hpp"

namespace cpc {
namespace {

net::Message sample_message() {
  net::Message msg;
  msg.kind = net::MsgKind::kResult;
  msg.id = "sweep-7";
  msg.a = 3;
  msg.b = 0xdeadbeefcafe;
  msg.text = "ok 3 CPP 0.5 1e6";
  return msg;
}

TEST(NetProtocol, MessageRoundTripsExactly) {
  const net::Message msg = sample_message();
  net::Message back;
  ASSERT_TRUE(net::decode_message(net::encode_message(msg), back));
  EXPECT_EQ(back.kind, msg.kind);
  EXPECT_EQ(back.id, msg.id);
  EXPECT_EQ(back.a, msg.a);
  EXPECT_EQ(back.b, msg.b);
  EXPECT_EQ(back.text, msg.text);
}

TEST(NetProtocol, DecodeRejectsDamage) {
  const std::string wire = net::encode_message(sample_message());
  net::Message out;
  // Truncation at every prefix length must fail, never read past the end.
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(net::decode_message(wire.substr(0, n), out)) << n;
  }
  // Trailing garbage is corruption, not padding.
  EXPECT_FALSE(net::decode_message(wire + "x", out));
  // A foreign protocol version is refused outright (first u64 of the wire).
  std::string foreign = wire;
  foreign[0] = static_cast<char>(foreign[0] ^ 0x40);
  EXPECT_FALSE(net::decode_message(foreign, out));
  // An out-of-range message kind (second u64) is refused.
  std::string bad_kind = wire;
  bad_kind[8] = static_cast<char>(0x7f);
  EXPECT_FALSE(net::decode_message(bad_kind, out));
}

TEST(NetProtocol, JobSpecRoundTripsExactly) {
  net::JobSpec spec;
  spec.trace_path = "/data/t.cpctrace";
  spec.workload = "olden.treeadd";
  spec.trace_ops = 60000;
  spec.seed = 0x5eed;
  spec.configs = "BC,CPP";
  spec.codecs = "paper,fpc";
  spec.deadline_ms = 1500;
  net::JobSpec back;
  ASSERT_TRUE(net::decode_job_spec(net::encode_job_spec(spec), back));
  EXPECT_EQ(back.trace_path, spec.trace_path);
  EXPECT_EQ(back.workload, spec.workload);
  EXPECT_EQ(back.trace_ops, spec.trace_ops);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.configs, spec.configs);
  EXPECT_EQ(back.codecs, spec.codecs);
  EXPECT_EQ(back.deadline_ms, spec.deadline_ms);

  const std::string wire = net::encode_job_spec(spec);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(net::decode_job_spec(wire.substr(0, n), back)) << n;
  }
  EXPECT_FALSE(net::decode_job_spec(wire + "x", back));
}

TEST(NetProtocol, ConfigGrammarMatchesCpcRun) {
  EXPECT_EQ(net::parse_config_list("all").size(), 5u);
  EXPECT_EQ(net::parse_config_list("").size(), 5u);
  const std::vector<sim::ConfigKind> pair = net::parse_config_list("BC,CPP");
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0], sim::ConfigKind::kBC);
  EXPECT_EQ(pair[1], sim::ConfigKind::kCPP);
  EXPECT_THROW(net::parse_config_list("BC,XYZ"), std::invalid_argument);
  EXPECT_THROW(net::parse_config_list(","), std::invalid_argument);
}

TEST(NetProtocol, CodecGrammarMatchesCpcRun) {
  // Empty means the paper codec only — NOT "all": a spec or CLI invocation
  // that never mentions codecs must keep its exact pre-codec meaning.
  const std::vector<compress::CodecKind> legacy = net::parse_codec_list("");
  ASSERT_EQ(legacy.size(), 1u);
  EXPECT_EQ(legacy[0], compress::CodecKind::kPaper);

  EXPECT_EQ(net::parse_codec_list("all").size(), compress::kCodecKindCount);
  const std::vector<compress::CodecKind> pair =
      net::parse_codec_list("fpc,wkdm");
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0], compress::CodecKind::kFpc);
  EXPECT_EQ(pair[1], compress::CodecKind::kWkdm);
  EXPECT_THROW(net::parse_codec_list("fpc,xyz"), std::invalid_argument);
  EXPECT_THROW(net::parse_codec_list(","), std::invalid_argument);
}

TEST(NetProtocol, JobGridCountsTheCross) {
  const net::JobGrid grid = net::parse_job_grid("BC,CPP", "all");
  EXPECT_EQ(grid.configs.size(), 2u);
  EXPECT_EQ(grid.codecs.size(), compress::kCodecKindCount);
  EXPECT_EQ(grid.job_count(), 2u * compress::kCodecKindCount);
  // Either grammar error surfaces through the combined parser.
  EXPECT_THROW(net::parse_job_grid("XYZ", "paper"), std::invalid_argument);
  EXPECT_THROW(net::parse_job_grid("BC", "nope"), std::invalid_argument);
}

TEST(NetProtocol, DeadlineLayersOnEnvironment) {
  EXPECT_EQ(net::effective_deadline_ms(0, 0), 0u);       // both unlimited
  EXPECT_EQ(net::effective_deadline_ms(500, 0), 500u);   // request only
  EXPECT_EQ(net::effective_deadline_ms(0, 700), 700u);   // env only
  EXPECT_EQ(net::effective_deadline_ms(500, 700), 500u); // tighter wins
  EXPECT_EQ(net::effective_deadline_ms(900, 700), 700u);
}

TEST(NetSocket, FramedMessageSurvivesAUnixSocketHop) {
  if (!net::sockets_supported()) {
    GTEST_SKIP() << "no AF_UNIX on this platform";
  }
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "net_hop.sock").string();
  const int listen_fd = net::listen_unix(path, 4);
  ASSERT_GE(listen_fd, 0);
  const int client_fd = net::connect_unix(path);
  ASSERT_GE(client_fd, 0);
  int server_fd = -1;
  for (int spin = 0; spin < 200 && server_fd < 0; ++spin) {
    server_fd = net::accept_client(listen_fd);
    if (server_fd < 0) sim::ipc::sleep_ms(5);
  }
  ASSERT_GE(server_fd, 0);

  // Client → server: one framed message, pushed through the blocking side.
  const net::Message msg = sample_message();
  const std::string wire = net::frame_message(msg);
  std::size_t off = 0;
  while (off < wire.size()) {
    const long n = net::write_socket(client_fd, wire.data() + off,
                                     wire.size() - off);
    ASSERT_GE(n, 0);
    off += static_cast<std::size_t>(n);
  }

  // Server side: nonblocking reads feed the shared frame decoder.
  sim::ipc::FrameDecoder decoder;
  sim::ipc::Frame frame;
  char buffer[256];
  bool got_frame = false;
  for (int spin = 0; spin < 200 && !got_frame; ++spin) {
    const long n = net::read_socket(server_fd, buffer, sizeof(buffer));
    ASSERT_GE(n, 0) << "peer closed unexpectedly";
    if (n == 0) {
      sim::ipc::sleep_ms(5);
      continue;
    }
    decoder.feed(buffer, static_cast<std::size_t>(n));
    got_frame =
        decoder.next(frame) != sim::ipc::FrameDecoder::Status::kNeedMore;
  }
  ASSERT_TRUE(got_frame);
  ASSERT_EQ(frame.type, sim::ipc::FrameType::kBlob);
  net::Message back;
  ASSERT_TRUE(net::decode_message(frame.payload, back));
  EXPECT_EQ(back.id, msg.id);
  EXPECT_EQ(back.text, msg.text);

  // Closing the client surfaces as EOF (-1) on the server side.
  int fd = client_fd;
  net::close_socket(fd);
  long n = 0;
  for (int spin = 0; spin < 200; ++spin) {
    n = net::read_socket(server_fd, buffer, sizeof(buffer));
    if (n != 0) break;
    sim::ipc::sleep_ms(5);
  }
  EXPECT_LT(n, 0);

  fd = server_fd;
  net::close_socket(fd);
  fd = listen_fd;
  net::close_socket(fd);
  net::unlink_socket(path);
}

}  // namespace
}  // namespace cpc
