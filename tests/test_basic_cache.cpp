// Tests for the conventional set-associative cache and the prefetch buffer.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cache/basic_cache.hpp"
#include "cache/prefetch_buffer.hpp"

namespace cpc::cache {
namespace {

std::vector<std::uint32_t> line_data(std::uint32_t n, std::uint32_t seed) {
  std::vector<std::uint32_t> words(n);
  std::iota(words.begin(), words.end(), seed);
  return words;
}

CacheGeometry small_geo() { return {1024, 64, 2}; }  // 8 sets x 2 ways

TEST(CacheGeometry, DerivedQuantities) {
  CacheGeometry g{8 * 1024, 64, 1};
  EXPECT_EQ(g.num_lines(), 128u);
  EXPECT_EQ(g.num_sets(), 128u);
  EXPECT_EQ(g.words_per_line(), 16u);
  EXPECT_EQ(g.line_of(0x1000), 0x40u);
  EXPECT_EQ(g.word_of(0x1004), 1u);
  EXPECT_EQ(g.base_of_line(0x40), 0x1000u);
}

TEST(CacheGeometry, SetMappingWrapsAroundTag) {
  CacheGeometry g{1024, 64, 2};  // 8 sets
  EXPECT_EQ(g.set_of_line(3), 3u);
  EXPECT_EQ(g.set_of_line(11), 3u);  // same set, different tag
}

TEST(BasicCache, MissOnEmpty) {
  BasicCache c(small_geo());
  EXPECT_EQ(c.find(5), nullptr);
  EXPECT_EQ(c.valid_lines(), 0u);
}

TEST(BasicCache, FillThenFind) {
  BasicCache c(small_geo());
  const auto data = line_data(16, 100);
  const auto evicted = c.fill(5, data);
  EXPECT_FALSE(evicted.valid);
  BasicCache::Line* line = c.find(5);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(c.read_word(*line, 3), 103u);
  EXPECT_FALSE(line->dirty);
}

TEST(BasicCache, WriteMarksDirty) {
  BasicCache c(small_geo());
  c.fill(5, line_data(16, 0));
  BasicCache::Line* line = c.find(5);
  c.write_word(*line, 2, 99u);
  EXPECT_TRUE(line->dirty);
  EXPECT_EQ(c.read_word(*line, 2), 99u);
}

TEST(BasicCache, EvictsLruWay) {
  BasicCache c(small_geo());  // 8 sets, 2 ways
  c.fill(0, line_data(16, 0));   // set 0
  c.fill(8, line_data(16, 1));   // set 0, second way
  c.touch(*c.find(0));           // make line 0 MRU
  const auto evicted = c.fill(16, line_data(16, 2));  // set 0 again
  ASSERT_TRUE(evicted.valid);
  EXPECT_EQ(evicted.line_addr, 8u);  // LRU way was line 8
  EXPECT_NE(c.find(0), nullptr);
  EXPECT_EQ(c.find(8), nullptr);
  EXPECT_NE(c.find(16), nullptr);
}

TEST(BasicCache, EvictionReturnsDirtyContent) {
  BasicCache c({128, 64, 1});  // 2 sets, direct mapped
  c.fill(0, line_data(16, 10));
  c.write_word(*c.find(0), 1, 777u);
  const auto evicted = c.fill(2, line_data(16, 0));  // same set 0
  ASSERT_TRUE(evicted.valid);
  EXPECT_TRUE(evicted.dirty);
  EXPECT_EQ(evicted.line_addr, 0u);
  EXPECT_EQ(evicted.words.at(1), 777u);
}

TEST(BasicCache, PrefersInvalidWayOverEviction) {
  BasicCache c(small_geo());
  c.fill(0, line_data(16, 0));
  const auto evicted = c.fill(8, line_data(16, 1));  // same set, free way
  EXPECT_FALSE(evicted.valid);
  EXPECT_NE(c.find(0), nullptr);
  EXPECT_NE(c.find(8), nullptr);
}

TEST(BasicCache, InvalidateRemovesAndReturnsContent) {
  BasicCache c(small_geo());
  c.fill(3, line_data(16, 50));
  c.write_word(*c.find(3), 0, 123u);
  const auto out = c.invalidate(3);
  ASSERT_TRUE(out.valid);
  EXPECT_TRUE(out.dirty);
  EXPECT_EQ(out.words.at(0), 123u);
  EXPECT_EQ(c.find(3), nullptr);
  EXPECT_FALSE(c.invalidate(3).valid);  // second invalidate is a no-op
}

TEST(BasicCache, DistinctTagsSameSetCoexistUpToWays) {
  BasicCache c(small_geo());
  c.fill(1, line_data(16, 0));
  c.fill(9, line_data(16, 0));  // set 1, way 2
  EXPECT_NE(c.find(1), nullptr);
  EXPECT_NE(c.find(9), nullptr);
  EXPECT_EQ(c.valid_lines(), 2u);
}

// ---- prefetch buffer -------------------------------------------------------

TEST(PrefetchBuffer, FindThenEraseRemovesEntry) {
  PrefetchBuffer b(4, 16);
  b.insert(7, line_data(16, 0));
  EXPECT_TRUE(b.contains(7));
  const auto* e = b.find(7);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->line_addr, 7u);
  b.erase(7);
  EXPECT_FALSE(b.contains(7));
  EXPECT_EQ(b.size(), 0u);
}

TEST(PrefetchBuffer, EvictsLruWhenFull) {
  PrefetchBuffer b(2, 16);
  b.insert(1, line_data(16, 0));
  b.insert(2, line_data(16, 0));
  b.insert(3, line_data(16, 0));  // evicts 1 (LRU)
  EXPECT_FALSE(b.contains(1));
  EXPECT_TRUE(b.contains(2));
  EXPECT_TRUE(b.contains(3));
  EXPECT_EQ(b.size(), 2u);
}

TEST(PrefetchBuffer, TouchProtectsFromEviction) {
  PrefetchBuffer b(2, 16);
  b.insert(1, line_data(16, 0));
  b.insert(2, line_data(16, 0));
  b.touch(1);                     // 1 becomes MRU
  b.insert(3, line_data(16, 0));  // evicts 2
  EXPECT_TRUE(b.contains(1));
  EXPECT_FALSE(b.contains(2));
}

TEST(PrefetchBuffer, ReinsertRefreshesContent) {
  PrefetchBuffer b(2, 16);
  b.insert(1, line_data(16, 0));
  b.insert(1, line_data(16, 42));
  EXPECT_EQ(b.size(), 1u);
  ASSERT_NE(b.find(1), nullptr);
  EXPECT_EQ(b.find(1)->words.at(0), 42u);
}

TEST(PrefetchBuffer, FindMissingReturnsNull) {
  PrefetchBuffer b(2, 16);
  EXPECT_EQ(b.find(9), nullptr);
  b.erase(9);  // erasing an absent line is a no-op
  EXPECT_EQ(b.size(), 0u);
}

TEST(PrefetchBuffer, RecyclesSlotStorageAcrossEvictions) {
  PrefetchBuffer b(2, 16);
  b.insert(1, line_data(16, 1));
  b.insert(2, line_data(16, 2));
  const std::uint32_t* stable = b.find(1)->words.data();
  b.insert(3, line_data(16, 3));  // evicts 1, reusing its slot's vector
  ASSERT_NE(b.find(3), nullptr);
  EXPECT_EQ(b.find(3)->words.data(), stable);
  EXPECT_EQ(b.find(3)->words.at(0), 3u);
}

}  // namespace
}  // namespace cpc::cache
