#!/usr/bin/env bash
# Zero-diff proof for the token-engine port: the legacy regex engine
# (tools/lint/legacy.cpp, the original check bodies kept compiled-in) and
# the token engine must report byte-identical CPC-L001..L010 findings over
# the real tree and every fixture corpus. The token engine's L011..L014
# findings are filtered out before the comparison — the legacy engine
# never knew those checks.
#
# Usage: zero_diff.sh <path-to-cpc_lint> <repo-root>
set -u

lint="${1:?usage: zero_diff.sh <cpc_lint> <repo-root>}"
root="${2:?usage: zero_diff.sh <cpc_lint> <repo-root>}"
failures=0

# Findings with IDs in the ported range, stdout only, exit code ignored
# (both engines report findings on the seeded fixtures by design).
ported() {
  "$lint" --engine "$1" "${@:2}" 2>/dev/null |
    grep -E ': CPC-L0(0[1-9]|10): ' || true
}

compare() {
  local label="$1"
  shift
  local legacy_out token_out
  legacy_out="$(ported legacy "$@")"
  token_out="$(ported token "$@")"
  if [ "$legacy_out" != "$token_out" ]; then
    echo "ZERO-DIFF FAIL on $label:" >&2
    diff <(printf '%s\n' "$legacy_out") <(printf '%s\n' "$token_out") >&2
    failures=$((failures + 1))
  else
    echo "zero-diff ok: $label"
  fi
}

cd "$root" || exit 2

# The real tree — the corpus that matters.
compare "tree" src tools tests bench

# Every fixture corpus: seeded violations exercise each check's positive
# path through both engines.
for dir in tests/lint/fixtures/*/; do
  compare "${dir%/}" "$dir"
done

if [ "$failures" -ne 0 ]; then
  echo "$failures corpus(es) diverged between engines" >&2
  exit 1
fi
echo "token engine is zero-diff with the legacy engine on CPC-L001..L010"
