#!/usr/bin/env bash
# Golden-fixture harness for cpc_lint: every check ID must fire on its
# seeded-violation fixture (exit 1, correct ID in the output), stay silent
# on the clean twin (exit 0), and the waiver corpus must lint clean.
#
# Usage: run_lint_fixtures.sh <path-to-cpc_lint> <fixtures-dir>
set -u

lint="${1:?usage: run_lint_fixtures.sh <cpc_lint> <fixtures-dir>}"
fixtures="${2:?usage: run_lint_fixtures.sh <cpc_lint> <fixtures-dir>}"
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# expect_findings <id> <path>: exit 1 and the ID present in stdout.
expect_findings() {
  local id="$1" path="$2" out rc
  out="$("$lint" "$path" 2>/dev/null)"
  rc=$?
  if [ "$rc" -ne 1 ]; then
    fail "$path: expected exit 1, got $rc"
  elif ! printf '%s\n' "$out" | grep -q "$id"; then
    fail "$path: expected a $id finding, got: $out"
  fi
}

# expect_clean <path>: exit 0 and no output.
expect_clean() {
  local path="$1" out rc
  out="$("$lint" "$path" 2>/dev/null)"
  rc=$?
  if [ "$rc" -ne 0 ]; then
    fail "$path: expected exit 0, got $rc: $out"
  fi
}

for n in 01 02 03 04 05 06 07 08 09 10 11 12 13 14; do
  id="CPC-L0$n"
  dir="$fixtures/l0$n"
  [ -d "$dir" ] || { fail "missing fixture dir $dir"; continue; }
  if [ -d "$dir/bad" ]; then  # paired-tree layout (registry checks)
    expect_findings "$id" "$dir/bad"
    expect_clean "$dir/clean"
  else
    expect_findings "$id" "$dir"/src/*/bad.*
    expect_clean "$dir"/src/*/clean.*
  fi
done

# Waiver round-trip: seeded violations, all waived — must lint clean.
expect_clean "$fixtures/waiver"

# Usage errors take the distinct exit code 2.
"$lint" >/dev/null 2>&1
[ $? -eq 2 ] || fail "no-args invocation: expected exit 2"
"$lint" "$fixtures/definitely-not-a-path" >/dev/null 2>&1
[ $? -eq 2 ] || fail "missing-path invocation: expected exit 2"

if [ "$failures" -ne 0 ]; then
  echo "$failures fixture check(s) failed" >&2
  exit 1
fi
echo "all lint fixtures behaved"
