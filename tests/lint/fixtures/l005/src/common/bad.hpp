#include <vector>
#pragma once
// CPC-L005 seeded violations: #pragma once is not the first directive, and
// a using-namespace leaks into every includer.
using namespace std;

inline vector<int> leaky() { return {}; }
