#pragma once
// CPC-L005 clean twin: pragma first, namespaces used explicitly.
#include <vector>

namespace cpc::fixture {
inline std::vector<int> tidy() { return {}; }
}  // namespace cpc::fixture
