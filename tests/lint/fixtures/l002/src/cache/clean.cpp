// CPC-L002 clean twin: point lookups into unordered containers are fine,
// and ordered containers may be iterated freely.
#include <cstdint>
#include <map>
#include <unordered_map>

std::uint64_t clean_lookup(std::uint32_t key) {
  std::unordered_map<std::uint32_t, std::uint32_t> counts;
  const auto hit = counts.find(key);
  std::map<std::uint32_t, std::uint32_t> ordered;
  std::uint64_t out = hit == counts.end() ? 0 : hit->second;
  for (const auto& [k, v] : ordered) out += k + v;
  return out;
}
