// CPC-L002 seeded violations: iterating an unordered container.
#include <cstdint>
#include <unordered_map>

std::uint64_t bad_sum_in_observed_order() {
  std::unordered_map<std::uint32_t, std::uint32_t> counts;
  std::uint64_t out = 0;
  for (const auto& [key, value] : counts) {
    out = out * 31 + key + value;  // order-dependent fold
  }
  auto it = counts.begin();  // explicit iterator walk, same hazard
  (void)it;
  return out;
}
