// CPC-L001 clean twin: seeded engines and simulated time only.
#include <cstdint>
#include <random>

std::uint32_t seeded_draw(std::uint64_t seed) {
  std::mt19937_64 rng(seed);  // deterministic from its seed — allowed
  return static_cast<std::uint32_t>(rng());
}

// Identifiers merely containing banned substrings must not match.
std::uint64_t wall_time_cycles = 0;
std::uint64_t runtime(std::uint64_t cycles) { return wall_time_cycles + cycles; }
