// CPC-L001 seeded violations: wall-clock and entropy sources in src/cache/.
#include <chrono>
#include <ctime>
#include <random>

unsigned bad_entropy() {
  std::random_device device;
  return device();
}

long bad_wall_clock() {
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  const auto t1 = std::chrono::system_clock::now();
  (void)t1;
  return static_cast<long>(time(nullptr));
}
