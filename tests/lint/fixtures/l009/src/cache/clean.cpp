// CPC-L009 clean twin: identifiers that merely contain the syscall names
// (forked_path, pipeline, killer), members named like them (.kill()), and
// qualified wrappers (ipc::kill_hard) must not match.

struct Watchdog;
Watchdog& the_watchdog();
Watchdog* watchdog_ptr();

int forked_path_pipeline(int killer) {
  the_watchdog().kill();   // member .kill() is not ::kill()
  watchdog_ptr()->fork();  // member ->fork() is not ::fork()
  int pipeline = 2;        // substring 'pipe' inside an identifier
  int forkful = killer;    // substring 'fork'
  return pipeline + forkful;
}
