// CPC-L009 seeded violation: raw process management outside sim/ipc.cpp.
// (Never compiled — fixture corpus only.)

int bad_spawn_and_reap() {
  int fds[2];
  if (pipe(fds) != 0) return -1;
  const long pid = fork();
  if (pid == 0) return 0;  // child
  int status = 0;
  waitpid(static_cast<int>(pid), &status, 0);
  kill(static_cast<int>(pid), 9);
  killpg(static_cast<int>(pid), 9);
  return status;
}
