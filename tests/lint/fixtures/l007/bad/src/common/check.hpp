#pragma once
// CPC-L007 seeded violation: the enum declares kLineEcc between the two
// registry rows, so the .def next door is missing a row.

namespace cpc {
enum class Invariant {
  kGeneric,
  kLineEcc,
  kVcpMismatch,
};
}  // namespace cpc
