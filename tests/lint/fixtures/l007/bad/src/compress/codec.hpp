#pragma once
// CPC-L007 seeded violation: the enum declares kBdi between the fpc and
// wkdm rows, so codec_registry.def next door is missing a row.

namespace cpc::compress {
enum class CodecKind {
  kPaper,
  kFpc,
  kBdi,
  kWkdm,
};
}  // namespace cpc::compress
