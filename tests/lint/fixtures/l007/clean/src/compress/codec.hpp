#pragma once
// CPC-L007 clean twin: registry rows mirror the enum exactly, in order.

namespace cpc::compress {
enum class CodecKind {
  kPaper,
  kFpc,
};
}  // namespace cpc::compress
