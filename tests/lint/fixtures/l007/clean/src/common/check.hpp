#pragma once
// CPC-L007 clean twin: registry rows mirror the enum exactly, in order.

namespace cpc {
enum class Invariant {
  kGeneric,
  kLineEcc,
};
}  // namespace cpc
