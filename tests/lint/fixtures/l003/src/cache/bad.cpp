// CPC-L003 seeded violations: a non-exhaustive enum switch and an
// unwaived default.
enum class Shade { kLight, kMedium, kDark };

int missing_case(Shade shade) {
  switch (shade) {
    case Shade::kLight: return 1;
    case Shade::kMedium: return 2;
  }
  return 0;
}

int unwaived_default(Shade shade) {
  switch (shade) {
    case Shade::kLight: return 1;
    default: return 0;
  }
}
