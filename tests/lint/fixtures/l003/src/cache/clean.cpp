// CPC-L003 clean twin: exhaustive switch, and an int switch (not an enum —
// default is fine there).
enum class Tone { kLow, kHigh };

int exhaustive(Tone tone) {
  switch (tone) {
    case Tone::kLow: return 1;
    case Tone::kHigh: return 2;
  }
  return 0;  // unreachable
}

int int_switch(int v) {
  switch (v & 3) {
    case 0: return 1;
    default: return 0;
  }
}
