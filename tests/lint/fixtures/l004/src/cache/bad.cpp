// CPC-L004 seeded violations: naked std exceptions in a layer that has
// structured diagnostics, and a string-built InvariantViolation.
#include <stdexcept>

struct InvariantViolation {
  explicit InvariantViolation(const char* w) : what(w) {}
  const char* what;
};

void bad_naked_throw(bool broken) {
  if (broken) throw std::runtime_error("metadata corrupt");
  throw std::logic_error("unreachable");
}

void bad_string_violation() { throw InvariantViolation("pa/aa drift"); }
