// CPC-L004 clean twin: structured diagnostics only. (out_of_range and
// friends are not on the ban list — only runtime_error/logic_error are.)
#include <stdexcept>

struct Diagnostic {
  int invariant = 0;
  const char* site = "";
};
struct InvariantViolation {
  explicit InvariantViolation(const Diagnostic& d) : diagnostic(d) {}
  Diagnostic diagnostic;
};

void clean_structured_throw(bool broken) {
  if (broken) throw InvariantViolation(Diagnostic{1, "l1::read"});
}
