// CPC-L013 seeded violation: the read_socket status is dropped on the
// floor, so a peer hangup or short read turns into silent corruption of
// whatever the buffer happened to hold.

namespace demo {

void drain(int fd) {
  char buffer[64];
  net::read_socket(fd, buffer, sizeof(buffer));
}

}  // namespace demo
