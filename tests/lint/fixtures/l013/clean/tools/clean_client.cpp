// CPC-L013 clean twin: one status consumed by control flow, one
// explicitly discarded with a (void) cast and a rationale — both
// sanctioned shapes.

namespace demo {

void drain(int fd) {
  char buffer[64];
  if (net::read_socket(fd, buffer, sizeof(buffer)) < 0) return;
  // Best-effort farewell: the peer may already be gone, and a failed
  // write changes nothing about our own shutdown path.
  (void)net::write_socket(fd, buffer, sizeof(buffer));
}

}  // namespace demo
