// Trips kGeneric only — no test proves kDeadRow can fire.

#include "common/check.hpp"

namespace demo {

void test_generic_trips() {
  expect_raised(Invariant::kGeneric);
}

}  // namespace demo
