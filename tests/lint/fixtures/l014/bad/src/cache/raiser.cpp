// Raises kGeneric only — kDeadRow is detection logic nothing ever runs.

#include "common/check.hpp"

namespace demo {

void audit(bool ok) {
  if (!ok) raise_violation(Invariant::kGeneric);
}

}  // namespace demo
