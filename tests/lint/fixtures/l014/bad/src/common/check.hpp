#pragma once
// CPC-L014 fixture registry header: the enum and its .def stay in sync
// (so CPC-L007 is quiet); the coverage gap is that kDeadRow is neither
// raised in src/ nor tripped in tests/.

namespace demo {

enum class Invariant {
  kGeneric,
  kDeadRow,
};

}  // namespace demo
