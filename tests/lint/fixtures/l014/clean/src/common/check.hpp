#pragma once
// CPC-L014 clean twin registry header: identical enum/.def pair; every
// row is raised in src/ and tripped in tests/.

namespace demo {

enum class Invariant {
  kGeneric,
  kDeadRow,
};

}  // namespace demo
