// Raises both registry rows: live detection logic for each enumerator.

#include "common/check.hpp"

namespace demo {

void audit(bool ok, bool stale) {
  if (!ok) raise_violation(Invariant::kGeneric);
  if (stale) raise_violation(Invariant::kDeadRow);
}

}  // namespace demo
