// Trips both registry rows: every enumerator has a test proving it fires.

#include "common/check.hpp"

namespace demo {

void test_generic_trips() {
  expect_raised(Invariant::kGeneric);
}

void test_dead_row_trips() {
  expect_raised(Invariant::kDeadRow);
}

}  // namespace demo
