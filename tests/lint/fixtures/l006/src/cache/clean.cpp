// CPC-L006 clean twin: includes at or below the cache layer's rank, plus
// the documented rank-0 exception verify/fault.hpp.
#include "common/check.hpp"
#include "compress/scheme.hpp"
#include "mem/sparse_memory.hpp"
#include "verify/fault.hpp"

int clean_layering() { return 0; }
