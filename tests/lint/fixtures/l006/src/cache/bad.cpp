// CPC-L006 seeded violation: the cache layer (rank 2) reaching up into the
// sim layer (rank 5). Never compiled — only the include directive matters.
#include "sim/journal.hpp"

int bad_layering() { return 0; }
