// CPC-L010 clean twin: identifiers that merely contain the syscall names
// (socket_path, disconnect, bindings), members named like them
// (.connect()), qualified wrappers (net::listen_unix, std::bind) and the
// deliberately unmatched send()/recv() names must not match.

struct Channel;
Channel& the_channel();

int clean_socket_talk(int socket_fd) {
  the_channel().connect();     // member .connect() is not ::connect()
  net::listen_unix("x", 8);    // qualified wrapper
  auto f = std::bind(&clean_socket_talk, 0);  // std::bind is not ::bind
  int bindings = socket_fd;    // substring 'bind' inside an identifier
  int disconnect = bindings;   // substring 'connect'
  send(socket_fd, nullptr, 0); // send/recv deliberately unmatched (L010 doc)
  recv(socket_fd, nullptr, 0, 0);
  return disconnect;
}
