// CPC-L010 seeded violation: raw socket management outside src/net/.
// (Never compiled — fixture corpus only.)

int bad_socket_server() {
  const int fd = socket(1, 1, 0);
  if (bind(fd, nullptr, 0) != 0) return -1;
  if (listen(fd, 8) != 0) return -1;
  const int peer = accept(fd, nullptr, nullptr);
  setsockopt(peer, 0, 0, nullptr, 0);
  sendmsg(peer, nullptr, 0);
  recvmsg(peer, nullptr, 0);
  struct pollfd;
  poll(nullptr, 0, 50);
  return peer;
}

int bad_socket_client() {
  int pair[2];
  socketpair(1, 1, 0, pair);
  return connect(pair[0], nullptr, 0);
}
