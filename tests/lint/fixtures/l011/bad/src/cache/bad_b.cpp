// CPC-L011 seeded violation, file 2 of 2: h acquires g_b and then calls
// take_a (defined in bad_a.cpp), which acquires g_a — the reverse of f's
// g_a -> g_b order. The cross-file, interprocedural cycle g_a -> g_b ->
// g_a is the deadlock the check must name.

#include "common/mutex.hpp"

namespace demo {

void h() {
  MutexLock lock(g_b);
  take_a();
}

}  // namespace demo
