// CPC-L011 seeded violation, file 1 of 2: this translation unit
// establishes the acquisition order g_a -> g_b (f takes g_b while holding
// g_a) and defines take_a, which bad_b.cpp calls while holding g_b.

#include "common/mutex.hpp"

namespace demo {

Mutex g_a;
Mutex g_b;

void take_a() {
  MutexLock lock(g_a);
  touch_a();
}

void f() {
  MutexLock first(g_a);
  MutexLock second(g_b);
  touch_both();
}

}  // namespace demo
