// CPC-L011 clean twin, file 1 of 2: same two mutexes, same helper shape,
// but every path agrees on the order g_a before g_b.

#include "common/mutex.hpp"

namespace demo {

Mutex g_a;
Mutex g_b;

void take_b() {
  MutexLock lock(g_b);
  touch_b();
}

void f() {
  MutexLock first(g_a);
  MutexLock second(g_b);
  touch_both();
}

}  // namespace demo
