// CPC-L011 clean twin, file 2 of 2: h also takes g_a first, then reaches
// g_b through take_b — consistent with f's order, so the acquisition
// graph is acyclic.

#include "common/mutex.hpp"

namespace demo {

void h() {
  MutexLock lock(g_a);
  take_b();
}

}  // namespace demo
