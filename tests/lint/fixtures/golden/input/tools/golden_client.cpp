// Golden-output seed: one deterministic CPC-L013 finding so the pinned
// report covers a token-engine-only check alongside a ported one.

namespace demo {

void golden_drain(int fd) {
  char buffer[64];
  net::read_socket(fd, buffer, sizeof(buffer));
}

}  // namespace demo
