// Golden-output seed: one deterministic CPC-L001 finding whose rendered
// report line is pinned byte-for-byte by tests/lint/golden.expected.
#include <random>

unsigned golden_entropy() {
  std::random_device device;
  return device();
}
