// CPC-L012 clean twin: the same blocking work exists but runs on a
// dedicated executor thread — std::thread constructor arguments are not
// reachable from the poll loop, so the loop itself stays non-blocking.

#include <thread>
#include <vector>

namespace demo {

void sleep_ms(int ms);

void executor() {
  sleep_ms(50);
}

void handle_request() {
  enqueue_for_executor();
}

void serve_loop(std::vector<int>& fds) {
  std::thread worker([] { executor(); });
  while (!fds.empty()) {
    if (!poll_sockets(fds, 50)) break;
    handle_request();
  }
  worker.join();
}

}  // namespace demo
