// CPC-L012 seeded violation: serve_loop drives a poll_sockets event loop
// and reaches sleep_ms through handle_request — a blocking call on the
// loop thread stalls every connected client.

#include <vector>

namespace demo {

void sleep_ms(int ms);

void handle_request() {
  sleep_ms(50);
}

void serve_loop(std::vector<int>& fds) {
  while (!fds.empty()) {
    if (!poll_sockets(fds, 50)) return;
    handle_request();
  }
}

}  // namespace demo
