// Waiver round-trips for CPC-L012 and CPC-L013: a blocking call on the
// poll loop and a discarded status, each suppressed at the finding line.

#include <vector>

namespace demo {

void sleep_ms(int ms);

void handle_request() {
  // cpc-lint: allow(CPC-L012) — fixture: sanctioned blocking site
  sleep_ms(50);
}

void serve_loop(std::vector<int>& fds) {
  while (!fds.empty()) {
    // cpc-lint: allow(CPC-L013) — fixture: readiness flags unused here
    net::poll_sockets(fds, 50);
    handle_request();
  }
}

}  // namespace demo
