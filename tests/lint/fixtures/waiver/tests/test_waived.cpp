// Gives the waiver corpus a tests/ side so the CPC-L014 coverage closure
// actually runs over it (the check needs both ledger sides in the scan
// set), and trips the one live row.

#include "common/check.hpp"

namespace demo {

void test_generic_trips() {
  expect_raised(Invariant::kGeneric);
}

}  // namespace demo
