// Raises the waiver corpus's one live registry row so only the waived
// dead row would otherwise report.

#include "common/check.hpp"

namespace demo {

void audit(bool ok) {
  if (!ok) raise_violation(Invariant::kGeneric);
}

}  // namespace demo
