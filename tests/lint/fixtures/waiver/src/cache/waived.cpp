// Waiver round-trip: every seeded violation below carries an allow() —
// linting this file must exit 0. Both waiver placements are exercised:
// trailing on the offending line, and on the comment line directly above.
#include <chrono>  // cpc-lint: allow(CPC-L008)

// cpc-lint: allow(CPC-L006)
#include "sim/journal.hpp"

enum class Gear { kLow, kHigh };

long waived_clock() {
  const auto t0 = std::chrono::steady_clock::now();  // cpc-lint: allow(CPC-L001, CPC-L008)
  return t0.time_since_epoch().count();
}

int waived_default(Gear gear) {
  switch (gear) {
    case Gear::kLow: return 1;
    // a default here stands in for "future gears" — deliberate
    // cpc-lint: allow(CPC-L003)
    default: return 0;
  }
}

long waived_fork() {
  // a hypothetical one-off spawn outside the ipc layer — deliberate
  return fork();  // cpc-lint: allow(CPC-L009)
}

int waived_socket() {
  // a hypothetical one-off socket outside the net layer — deliberate
  return socket(1, 1, 0);  // cpc-lint: allow(CPC-L010)
}
