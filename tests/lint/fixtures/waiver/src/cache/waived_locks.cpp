// Waiver round-trip for CPC-L011: the same in-file lock-order cycle the
// l011 fixture seeds, suppressed at the reported witness (the nested
// acquisition on the lexicographically first cycle edge).

#include "common/mutex.hpp"

namespace demo {

Mutex g_a;
Mutex g_b;

void f() {
  MutexLock first(g_a);
  // cpc-lint: allow(CPC-L011) — fixture: cycle acknowledged, waived
  MutexLock second(g_b);
}

void h() {
  MutexLock first(g_b);
  // cpc-lint: allow(CPC-L011) — fixture: cycle acknowledged, waived
  MutexLock second(g_a);
}

}  // namespace demo
