#pragma once
// Waiver round-trip for CPC-L014: kDeadRow is never raised or tripped,
// but its registry row carries an in-.def waiver with an argument.

namespace demo {

enum class Invariant {
  kGeneric,
  kDeadRow,
};

}  // namespace demo
