// CPC-L008 seeded violation: ad-hoc chrono timing outside bench_meter.
#include <chrono>

double bad_elapsed_seconds() {
  // Duration arithmetic alone (no clock read, so CPC-L001 stays quiet) is
  // still a violation: all timing goes through sim::Stopwatch.
  const std::chrono::duration<double> window = std::chrono::milliseconds(250);
  return window.count();
}
