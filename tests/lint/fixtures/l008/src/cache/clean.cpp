// CPC-L008 clean twin: durations held as plain doubles; identifiers that
// merely contain "chrono" must not match.
#include <cstdint>

struct ChronologyEntry {
  double seconds = 0.0;
  std::uint64_t ops = 0;
};

double chronology_rate(const ChronologyEntry& e) {
  return e.seconds > 0.0 ? static_cast<double>(e.ops) / e.seconds : 0.0;
}
