#!/usr/bin/env bash
# Golden-output test: cpc_lint's report format — `path:line: CPC-LXXX:
# message`, sorted by (path, line, ID) — is pinned byte-for-byte against
# tests/lint/golden.expected. Any formatting drift (separator, ID style,
# ordering, trailing whitespace) fails this test; update golden.expected
# deliberately when the format is meant to change.
#
# Usage: run_lint_golden.sh <path-to-cpc_lint>
set -u

lint="${1:?usage: run_lint_golden.sh <cpc_lint>}"
case "$lint" in */*) lint="$(cd "$(dirname "$lint")" && pwd)/$(basename "$lint")" ;; esac

# Run from this script's own directory so the reported paths are stable
# relative paths regardless of build directory or invocation cwd.
cd "$(dirname "$0")" || exit 2

out="$("$lint" fixtures/golden/input 2>/dev/null)"
rc=$?
if [ "$rc" -ne 1 ]; then
  echo "FAIL: expected exit 1 on the golden corpus, got $rc" >&2
  exit 1
fi

if ! diff -u golden.expected <(printf '%s\n' "$out") >&2; then
  echo "FAIL: report format drifted from tests/lint/golden.expected" >&2
  exit 1
fi
echo "golden report format pinned"
