// Robustness layer tests: every structural invariant must be trippable and
// report a structured Diagnostic; every fault-injection strike kind must be
// detectable; the MetadataAuditor must honour its stride and catch counter
// regressions; a small campaign must come back clean.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "cache/line_compression_hierarchy.hpp"
#include "common/check.hpp"
#include "core/cpp_cache.hpp"
#include "core/cpp_hierarchy.hpp"
#include "verify/campaign.hpp"
#include "verify/fault.hpp"
#include "verify/fault_injector.hpp"
#include "verify/metadata_auditor.hpp"

namespace cpc {
namespace {

using compress::kPaperScheme;
using core::CompressedLine;
using core::CppCache;
using core::IncomingLine;

class NullSink final : public core::WritebackSink {
 public:
  void writeback(std::uint32_t, std::uint32_t,
                 std::span<const std::uint32_t>) override {}
};

cache::CacheGeometry tiny_geo() { return {512, 64, 1}; }

constexpr std::uint32_t kLineA = 0x0400'0000u;  // heap, set 0
constexpr std::uint32_t kBuddyA = kLineA ^ 1u;  // set 1

IncomingLine full_line(const CppCache& c, std::uint32_t line_addr,
                       std::uint32_t seed) {
  IncomingLine in;
  in.line_addr = line_addr;
  const std::uint32_t n = c.geometry().words_per_line();
  in.words.assign(n, 0);
  in.aff_words.assign(n, 0);
  in.present = 0xffffu;
  for (std::uint32_t i = 0; i < n; ++i) in.words[i] = seed + i;  // compressible
  return in;
}

Invariant tripped_invariant(const CppCache& cache) {
  try {
    cache.validate();
  } catch (const InvariantViolation& violation) {
    EXPECT_FALSE(violation.diagnostic().site.empty());
    return violation.diagnostic().invariant;
  }
  ADD_FAILURE() << "validate() accepted corrupted state";
  return Invariant::kGeneric;
}

// --- tripping each CppCache invariant ---------------------------------------

TEST(InvariantTrip, PayloadStrikeTripsLineEcc) {
  CppCache c(tiny_geo(), kPaperScheme);
  NullSink sink;
  c.install(full_line(c, kLineA, 10), sink);
  c.validate();
  c.find_primary(kLineA)->strike_primary_bit(3, 7);
  EXPECT_EQ(tripped_invariant(c), Invariant::kLineEcc);
}

TEST(InvariantTrip, VcpStrikeTripsVcpMismatch) {
  CppCache c(tiny_geo(), kPaperScheme);
  NullSink sink;
  IncomingLine in = full_line(c, kLineA, 10);
  in.words[4] = 0x4000'0000u;  // incompressible
  c.install(in, sink);
  c.validate();
  c.find_primary(kLineA)->strike_vcp_flag(4);  // claims word 4 is compressed
  EXPECT_EQ(tripped_invariant(c), Invariant::kVcpMismatch);
}

TEST(InvariantTrip, AaStrikeOverUncompressedWordTrips) {
  CppCache c(tiny_geo(), kPaperScheme);
  NullSink sink;
  IncomingLine in = full_line(c, kLineA, 10);
  in.words[2] = 0x4000'0000u;  // incompressible → half-slot 2 is occupied
  c.install(in, sink);
  c.validate();
  c.find_primary(kLineA)->strike_aa_flag(2);
  EXPECT_EQ(tripped_invariant(c), Invariant::kAffiliatedOverUncompressed);
}

TEST(InvariantTrip, PaStrikeIsDetected) {
  CppCache c(tiny_geo(), kPaperScheme);
  NullSink sink;
  c.install(full_line(c, kLineA, 10), sink);
  c.find_primary(kLineA)->strike_pa_flag(0);
  EXPECT_THROW(c.validate(), InvariantViolation);
}

TEST(InvariantTrip, DirtyLineWithNoWordsTripsDirtyEmpty) {
  CppCache c(tiny_geo(), kPaperScheme);
  NullSink sink;
  c.install(full_line(c, kLineA, 10), sink);
  CompressedLine* line = c.find_primary(kLineA);
  line->clear_primary();
  line->dirty = true;
  EXPECT_EQ(tripped_invariant(c), Invariant::kDirtyEmpty);
}

TEST(InvariantTrip, PrimaryPlusAffiliatedCopyTripsDoubleResidency) {
  CppCache c(tiny_geo(), kPaperScheme);
  NullSink sink;
  c.install(full_line(c, kLineA, 10), sink);
  c.install(full_line(c, kBuddyA, 20), sink);  // buddy primary resident too
  // Plant an affiliated copy of the buddy inside A's physical line: now two
  // copies of kBuddyA coexist.
  c.find_primary(kLineA)->set_affiliated_word(
      0, *kPaperScheme.compress(5, c.word_addr(kBuddyA, 0)));
  EXPECT_EQ(tripped_invariant(c), Invariant::kDoubleResidency);
}

TEST(InvariantTrip, StrikeRandomFindsTargetAndValidateCatchesEveryKind) {
  for (const verify::FaultKind kind :
       {verify::FaultKind::kPayloadBit, verify::FaultKind::kPaFlag,
        verify::FaultKind::kAaFlag, verify::FaultKind::kVcpFlag}) {
    SCOPED_TRACE(verify::fault_kind_name(kind));
    CppCache c(tiny_geo(), kPaperScheme);
    NullSink sink;
    c.install(full_line(c, kLineA, 10), sink);
    verify::FaultCommand command;
    command.kind = kind;
    command.seed = 99;
    ASSERT_TRUE(c.strike_random(command));
    EXPECT_THROW(c.validate(), InvariantViolation);
  }
}

TEST(InvariantTrip, StrikeOnEmptyCacheFindsNoTarget) {
  CppCache c(tiny_geo(), kPaperScheme);
  verify::FaultCommand command;
  command.kind = verify::FaultKind::kPayloadBit;
  EXPECT_FALSE(c.strike_random(command));
}

TEST(InvariantTrip, EvictionAuditCatchesStruckVictim) {
  // A struck line must be caught at the audit point when its content leaves
  // the cache, even if no stride audit ran in between.
  CppCache c(tiny_geo(), kPaperScheme);
  NullSink sink;
  c.install(full_line(c, kLineA, 10), sink);
  c.find_primary(kLineA)->strike_primary_bit(0, 3);
  // Same set, different tag → evicts the struck victim.
  const std::uint32_t conflicting = kLineA + 8;
  try {
    c.install(full_line(c, conflicting, 30), sink);
    FAIL() << "struck victim evicted without audit";
  } catch (const InvariantViolation& violation) {
    EXPECT_EQ(violation.diagnostic().invariant, Invariant::kLineEcc);
    EXPECT_NE(violation.diagnostic().site.find("evict"), std::string::npos);
  }
}

// --- LCC invariants ----------------------------------------------------------

TEST(InvariantTrip, LccPayloadStrikeTripsLccEcc) {
  cache::LineCompressionHierarchy lcc;
  for (std::uint32_t i = 0; i < 256; ++i) lcc.write(0x0400'0000u + i * 4, i % 9);
  lcc.validate();
  verify::FaultCommand command;
  command.kind = verify::FaultKind::kPayloadBit;
  command.seed = 7;
  ASSERT_TRUE(lcc.inject_fault(command));
  try {
    lcc.validate();
    FAIL() << "struck LCC line passed validation";
  } catch (const InvariantViolation& violation) {
    EXPECT_EQ(violation.diagnostic().invariant, Invariant::kLccLineEcc);
  }
}

TEST(InvariantTrip, LccRefusesNonPayloadFaults) {
  cache::LineCompressionHierarchy lcc;
  for (std::uint32_t i = 0; i < 64; ++i) lcc.write(0x0400'0000u + i * 4, 1);
  verify::FaultCommand command;
  command.kind = verify::FaultKind::kPaFlag;
  EXPECT_FALSE(lcc.inject_fault(command));
}

// --- hierarchy-level faults --------------------------------------------------

TEST(HierarchyFault, EveryStrikeKindAtBothLevelsIsDetected) {
  for (const std::uint8_t level : {std::uint8_t{1}, std::uint8_t{2}}) {
    for (const verify::FaultKind kind :
         {verify::FaultKind::kPayloadBit, verify::FaultKind::kPaFlag,
          verify::FaultKind::kAaFlag, verify::FaultKind::kVcpFlag}) {
      SCOPED_TRACE(std::string(verify::fault_kind_name(kind)) + " L" +
                   std::to_string(level));
      core::CppHierarchy hierarchy;
      for (std::uint32_t i = 0; i < 4096; ++i) {
        hierarchy.write(0x0400'0000u + i * 4, i % 5);
      }
      hierarchy.validate();
      verify::FaultCommand command;
      command.kind = kind;
      command.level = level;
      command.seed = 1234 + level;
      ASSERT_TRUE(hierarchy.inject_fault(command));
      EXPECT_THROW(hierarchy.validate(), InvariantViolation);
    }
  }
}

TEST(HierarchyFault, DropResponseWordTripsResponseIncomplete) {
  core::CppHierarchy hierarchy;
  // Populate well past L1 capacity (8 KiB) so re-reads miss L1 and pull
  // multi-word responses from L2.
  for (std::uint32_t i = 0; i < 8192; ++i) {
    hierarchy.write(0x0400'0000u + i * 4, i % 5);
  }
  verify::FaultCommand command;
  command.kind = verify::FaultKind::kDropResponseWord;
  command.seed = 3;
  ASSERT_TRUE(hierarchy.inject_fault(command));
  bool detected = false;
  try {
    std::uint32_t value = 0;
    for (std::uint32_t i = 0; i < 8192; ++i) {
      hierarchy.read(0x0400'0000u + i * 4, value);
    }
  } catch (const InvariantViolation& violation) {
    detected = true;
    EXPECT_EQ(violation.diagnostic().invariant, Invariant::kResponseIncomplete);
  }
  EXPECT_TRUE(detected) << "dropped response word was never flagged";
  EXPECT_EQ(hierarchy.faults_fired(), 1u);
}

TEST(HierarchyFault, DelayFillShiftsTimingOnly) {
  const auto run = [](bool delayed) {
    core::CppHierarchy hierarchy;
    if (delayed) {
      verify::FaultCommand command;
      command.kind = verify::FaultKind::kDelayFill;
      command.delay_cycles = 40;
      EXPECT_TRUE(hierarchy.inject_fault(command));
    }
    std::uint64_t latency_sum = 0;
    std::uint32_t value = 0;
    for (std::uint32_t i = 0; i < 1024; ++i) {
      latency_sum += hierarchy.write(0x0400'0000u + i * 4, i % 5).latency;
    }
    for (std::uint32_t i = 0; i < 1024; ++i) {
      latency_sum += hierarchy.read(0x0400'0000u + i * 4, value).latency;
      EXPECT_EQ(value, i % 5);  // values stay architecturally correct
    }
    hierarchy.validate();
    return latency_sum;
  };
  EXPECT_GT(run(true), run(false));
}

// --- MetadataAuditor ---------------------------------------------------------

class CountingHierarchy final : public cache::MemoryHierarchy {
 public:
  cache::AccessResult read(std::uint32_t, std::uint32_t& value) override {
    value = 0;
    ++mutable_stats().reads;
    return {};
  }
  cache::AccessResult write(std::uint32_t, std::uint32_t) override {
    ++mutable_stats().writes;
    return {};
  }
  std::string name() const override { return "counting"; }
  void validate() const override { ++validations; }

  mutable std::uint64_t validations = 0;
};

TEST(MetadataAuditor, RunsValidateEveryStrideAccesses) {
  CountingHierarchy hierarchy;
  verify::MetadataAuditor auditor(4);
  for (int i = 0; i < 12; ++i) auditor.on_access(hierarchy);
  EXPECT_EQ(hierarchy.validations, 3u);
  EXPECT_EQ(auditor.audits_run(), 3u);
}

TEST(MetadataAuditor, StrideZeroDisablesAudits) {
  CountingHierarchy hierarchy;
  verify::MetadataAuditor auditor(0);
  EXPECT_FALSE(auditor.enabled());
  for (int i = 0; i < 100; ++i) auditor.on_access(hierarchy);
  EXPECT_EQ(hierarchy.validations, 0u);
}

TEST(MetadataAuditor, StrideComesFromEnvironment) {
  ASSERT_EQ(setenv("CPC_AUDIT_STRIDE", "123", 1), 0);
  EXPECT_EQ(verify::MetadataAuditor::stride_from_env(), 123u);
  ASSERT_EQ(setenv("CPC_AUDIT_STRIDE", "0", 1), 0);
  EXPECT_EQ(verify::MetadataAuditor::stride_from_env(), 0u);
  ASSERT_EQ(unsetenv("CPC_AUDIT_STRIDE"), 0);
  EXPECT_EQ(verify::MetadataAuditor::stride_from_env(), 32768u);
}

TEST(MetadataAuditor, CounterRegressionIsCaught) {
  CountingHierarchy hierarchy;
  verify::MetadataAuditor auditor(1);
  hierarchy.mutable_stats().reads = 10;
  auditor.on_access(hierarchy);
  hierarchy.mutable_stats().reads = 5;  // counters must never run backwards
  try {
    auditor.on_access(hierarchy);
    FAIL() << "regressing counter passed the audit";
  } catch (const InvariantViolation& violation) {
    EXPECT_EQ(violation.diagnostic().invariant, Invariant::kCounterRegression);
  }
}

TEST(GuardedHierarchy, InjectsArmedFaultAtTriggerAccess) {
  auto owned = std::make_unique<core::CppHierarchy>();
  verify::GuardedHierarchy guard(std::move(owned), /*audit_stride=*/0);
  verify::FaultPlan plan;
  plan.command.kind = verify::FaultKind::kPayloadBit;
  plan.command.seed = 5;
  plan.trigger_access = 10;
  guard.arm_fault(plan);
  for (std::uint32_t i = 0; i < 9; ++i) {
    guard.write(0x0400'0000u + i * 4, i);
    EXPECT_FALSE(guard.fault_injected());
  }
  guard.write(0x0400'0000u + 40, 1);
  EXPECT_TRUE(guard.fault_injected());
  EXPECT_THROW(guard.validate(), InvariantViolation);
}

// --- fault schedule and campaign ---------------------------------------------

TEST(FaultInjector, ScheduleIsReproducibleAndCoversAllVariants) {
  const verify::FaultInjector a(42), b(42), c(43);
  const std::size_t variants = verify::FaultInjector::variants().size();
  EXPECT_GE(variants, 10u);
  bool any_seed_differs = false;
  for (std::size_t k = 0; k < variants; ++k) {
    const verify::FaultPlan pa = a.plan(k, 10'000);
    const verify::FaultPlan pb = b.plan(k, 10'000);
    EXPECT_EQ(static_cast<int>(pa.command.kind), static_cast<int>(pb.command.kind));
    EXPECT_EQ(pa.command.seed, pb.command.seed);
    EXPECT_EQ(pa.trigger_access, pb.trigger_access);
    EXPECT_GE(pa.trigger_access, 10'000u / 8);
    EXPECT_LT(pa.trigger_access, 10'000u);
    if (pa.command.seed != c.plan(k, 10'000).command.seed) any_seed_differs = true;
  }
  EXPECT_TRUE(any_seed_differs) << "master seed does not influence the schedule";
}

TEST(Campaign, SmallCampaignIsCleanAndFullyClassified) {
  verify::CampaignOptions options;
  options.workload = "olden.treeadd";
  options.faults = 12;  // ≥ one full rotation of the 10 fault variants
  options.trace_ops = 8'000;
  options.audit_stride = 512;
  const verify::CampaignResult result = verify::run_campaign(options);
  EXPECT_EQ(result.total(), 12u);
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.silent, 0u);
  EXPECT_GT(result.golden_accesses, 0u);
  EXPECT_EQ(result.masked + result.detected + result.timing_only +
                result.silent + result.not_injected,
            result.total());
  EXPECT_GT(result.detected + result.masked + result.timing_only, 0u);
  for (const verify::FaultRecord& record : result.records) {
    if (record.outcome == verify::FaultOutcome::kDetected) {
      EXPECT_FALSE(record.detection.empty());
    }
  }
}

}  // namespace
}  // namespace cpc
