// The shard-supervisor wire protocol (sim/ipc.hpp): CRC vectors, frame
// round-trips under arbitrary chunking, corruption poisoning, payload
// packers, and the POSIX process wrappers themselves.

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <string>
#include <vector>

#include "sim/ipc.hpp"

namespace cpc::sim::ipc {
namespace {

TEST(Crc32, MatchesKnownVectors) {
  // Standard IEEE 802.3 check values.
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(FrameCodec, RoundTripsEveryTypeInOneFeed) {
  FrameDecoder decoder;
  std::string stream;
  for (std::uint8_t t = 0; t < kFrameTypeCount; ++t) {
    stream += encode_frame(static_cast<FrameType>(t),
                           "payload-" + std::to_string(t));
  }
  decoder.feed(stream);
  Frame frame;
  for (std::uint8_t t = 0; t < kFrameTypeCount; ++t) {
    ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame) << int(t);
    EXPECT_EQ(frame.type, static_cast<FrameType>(t));
    EXPECT_EQ(frame.payload, "payload-" + std::to_string(t));
  }
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore);
  EXPECT_FALSE(decoder.corrupt());
}

TEST(FrameCodec, SurvivesByteAtATimeChunking) {
  const std::string stream =
      encode_frame(FrameType::kResult, "ok 3 BCP BCP 0.5 100") +
      encode_frame(FrameType::kHeartbeat, "");
  FrameDecoder decoder;
  Frame frame;
  int frames = 0;
  for (const char byte : stream) {
    decoder.feed(&byte, 1);
    while (decoder.next(frame) == FrameDecoder::Status::kFrame) ++frames;
  }
  EXPECT_EQ(frames, 2);
  EXPECT_FALSE(decoder.corrupt());
}

TEST(FrameCodec, EmptyAndLargePayloads) {
  std::string large(100'000, '\xab');
  large[12345] = 'x';
  FrameDecoder decoder;
  decoder.feed(encode_frame(FrameType::kBlob, large));
  decoder.feed(encode_frame(FrameType::kDone, ""));
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.payload, large);
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kDone);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameCodec, FlippedPayloadBitIsCorruptAndPoisons) {
  std::string stream = encode_frame(FrameType::kResult, "ok 0 a b 1 2");
  stream[stream.size() - 3] ^= 0x01;  // payload byte — CRC must catch it
  FrameDecoder decoder;
  decoder.feed(stream);
  decoder.feed(encode_frame(FrameType::kHeartbeat, ""));  // valid follower
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kCorrupt);
  EXPECT_TRUE(decoder.corrupt());
  // Poisoned forever: the valid follower frame is unreachable by design.
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kCorrupt);
}

TEST(FrameCodec, BadMagicVersionTypeAndLengthAreCorrupt) {
  const auto expect_corrupt = [](std::string stream) {
    FrameDecoder decoder;
    decoder.feed(stream);
    Frame frame;
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kCorrupt);
  };
  std::string bad_magic = encode_frame(FrameType::kHello, "x");
  bad_magic[0] = 'X';
  expect_corrupt(bad_magic);

  std::string bad_version = encode_frame(FrameType::kHello, "x");
  bad_version[4] = static_cast<char>(kWireVersion + 1);
  expect_corrupt(bad_version);

  std::string bad_type = encode_frame(FrameType::kHello, "x");
  bad_type[5] = static_cast<char>(kFrameTypeCount);
  expect_corrupt(bad_type);

  std::string bad_length = encode_frame(FrameType::kHello, "x");
  bad_length[9] = '\x7f';  // length beyond kMaxFramePayload
  expect_corrupt(bad_length);
}

TEST(PayloadPackers, RoundTripAndDetectTruncation) {
  std::string out;
  put_u64(out, 0);
  put_u64(out, 0xdeadbeefcafef00dull);
  put_string(out, "");
  put_string(out, std::string("embedded\0nul", 12));

  std::string_view in(out);
  std::uint64_t a = 1, b = 0;
  std::string s1 = "x", s2;
  ASSERT_TRUE(get_u64(in, a));
  ASSERT_TRUE(get_u64(in, b));
  ASSERT_TRUE(get_string(in, s1));
  ASSERT_TRUE(get_string(in, s2));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 0xdeadbeefcafef00dull);
  EXPECT_TRUE(s1.empty());
  EXPECT_EQ(s2, std::string("embedded\0nul", 12));
  EXPECT_TRUE(in.empty());

  // Truncated reads fail without consuming.
  std::string_view short_in = std::string_view(out).substr(0, 3);
  std::uint64_t v = 0;
  EXPECT_FALSE(get_u64(short_in, v));
  std::string s;
  EXPECT_FALSE(get_string(short_in, s));
}

TEST(ProcessWrappers, SpawnStreamsFramesAndExitsClean) {
  if (!process_isolation_supported()) GTEST_SKIP() << "no fork() here";
  ChildProcess child = spawn_worker({}, [](int write_fd) {
    EXPECT_TRUE(write_frame(write_fd, FrameType::kHello, "hi"));
    EXPECT_TRUE(write_frame(write_fd, FrameType::kDone, "bye"));
  });
  ASSERT_TRUE(child.valid());

  FrameDecoder decoder;
  char buffer[256];
  long n = 0;
  while ((n = read_some(child.read_fd, buffer, sizeof(buffer))) > 0) {
    decoder.feed(buffer, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(n, 0) << "pipe must end in EOF, not error";
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.payload, "hi");
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.payload, "bye");

  const ExitStatus status = wait_blocking(child);
  EXPECT_TRUE(status.clean());
  close_fd(child.read_fd);
  EXPECT_EQ(child.read_fd, -1);
}

TEST(ProcessWrappers, ThrowingBodyExitsWithCode86) {
  if (!process_isolation_supported()) GTEST_SKIP() << "no fork() here";
  ChildProcess child = spawn_worker(
      {}, [](int) { throw std::runtime_error("worker body exploded"); });
  ASSERT_TRUE(child.valid());
  const ExitStatus status = wait_blocking(child);
  EXPECT_TRUE(status.exited);
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.code, 86);
  close_fd(child.read_fd);
}

TEST(ProcessWrappers, KillHardReportsTheSignal) {
  if (!process_isolation_supported()) GTEST_SKIP() << "no fork() here";
  ChildProcess child = spawn_worker({}, [](int) {
    while (true) sleep_ms(50);
  });
  ASSERT_TRUE(child.valid());
  kill_hard(child);
  const ExitStatus status = wait_blocking(child);
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.code, SIGKILL);
  EXPECT_FALSE(status.clean());
  close_fd(child.read_fd);
}

TEST(ProcessWrappers, PollSeesDataAndEof) {
  if (!process_isolation_supported()) GTEST_SKIP() << "no fork() here";
  ChildProcess child = spawn_worker({}, [](int write_fd) {
    write_frame(write_fd, FrameType::kHeartbeat, "");
  });
  ASSERT_TRUE(child.valid());
  std::vector<bool> ready;
  bool got_data = false;
  for (int spins = 0; spins < 200 && !got_data; ++spins) {
    ASSERT_TRUE(poll_readable({child.read_fd}, 50, ready));
    ASSERT_EQ(ready.size(), 1u);
    got_data = ready[0];
  }
  EXPECT_TRUE(got_data) << "heartbeat never became readable";
  wait_blocking(child);
  close_fd(child.read_fd);
}

}  // namespace
}  // namespace cpc::sim::ipc
