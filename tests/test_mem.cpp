// Tests for the memory substrate: sparse memory, heap allocator, traffic
// meter.

#include <gtest/gtest.h>

#include <set>

#include "mem/heap_allocator.hpp"
#include "mem/sparse_memory.hpp"
#include "mem/traffic_meter.hpp"
#include "workload/rng.hpp"

namespace cpc::mem {
namespace {

TEST(SparseMemory, UnwrittenReadsZero) {
  SparseMemory m;
  EXPECT_EQ(m.read_word(0), 0u);
  EXPECT_EQ(m.read_word(0xffff'fffcu), 0u);
  EXPECT_EQ(m.resident_pages(), 0u);
}

TEST(SparseMemory, WriteThenRead) {
  SparseMemory m;
  m.write_word(0x1234'5678u & ~3u, 42u);
  EXPECT_EQ(m.read_word(0x1234'5678u & ~3u), 42u);
}

TEST(SparseMemory, SubwordBitsIgnored) {
  SparseMemory m;
  m.write_word(0x100, 7u);
  EXPECT_EQ(m.read_word(0x101), 7u);
  EXPECT_EQ(m.read_word(0x103), 7u);
  m.write_word(0x102, 9u);  // same word
  EXPECT_EQ(m.read_word(0x100), 9u);
}

TEST(SparseMemory, PagesAreIndependent) {
  SparseMemory m;
  m.write_word(0, 1u);
  m.write_word(SparseMemory::kPageBytes, 2u);
  EXPECT_EQ(m.read_word(0), 1u);
  EXPECT_EQ(m.read_word(SparseMemory::kPageBytes), 2u);
  EXPECT_EQ(m.resident_pages(), 2u);
}

TEST(SparseMemory, ClearDropsEverything) {
  SparseMemory m;
  m.write_word(0x40, 5u);
  m.clear();
  EXPECT_EQ(m.read_word(0x40), 0u);
  EXPECT_EQ(m.resident_pages(), 0u);
}

TEST(SparseMemory, RandomizedReadYourWrites) {
  SparseMemory m;
  workload::Rng rng(99);
  std::unordered_map<std::uint32_t, std::uint32_t> reference;
  for (int i = 0; i < 100'000; ++i) {
    const std::uint32_t addr = (static_cast<std::uint32_t>(rng.next()) & 0x00ff'fffcu);
    if (rng.chance(1, 2)) {
      const std::uint32_t v = static_cast<std::uint32_t>(rng.next());
      m.write_word(addr, v);
      reference[addr] = v;
    } else {
      const auto it = reference.find(addr);
      ASSERT_EQ(m.read_word(addr), it == reference.end() ? 0u : it->second);
    }
  }
}

TEST(SparseMemory, FillPatternIsDeterministicPerSeed) {
  SparseMemory a(0xC0FFEEu), b(0xC0FFEEu);
  for (std::uint32_t addr : {0u, 0x40u, 0x0010'0000u, 0xffff'fffcu}) {
    EXPECT_EQ(a.read_word(addr), b.read_word(addr));
    EXPECT_EQ(a.read_word(addr), fill_word_for(addr, 0xC0FFEEu));
    EXPECT_NE(a.read_word(addr), fill_word_for(addr, 0xC0FFEFu));
  }
  // Seed zero keeps the historical zero-fill behaviour.
  EXPECT_EQ(fill_word_for(0x1234u, 0u), 0u);
}

TEST(SparseMemory, NeighbourWriteDoesNotDisturbFill) {
  // Materialising a page on first write must not change what the page's
  // other words read as — the fuzzer's self-consistency depends on it.
  SparseMemory m(7u);
  const std::uint32_t before = m.read_word(0x2004u);
  m.write_word(0x2000u, 0xdeadbeefu);
  EXPECT_EQ(m.read_word(0x2004u), before);
  EXPECT_EQ(m.read_word(0x2004u), fill_word_for(0x2004u, 7u));
  EXPECT_EQ(m.read_word(0x2000u), 0xdeadbeefu);
}

TEST(SparseMemory, FingerprintIgnoresFillValuedWords) {
  SparseMemory m(42u);
  EXPECT_EQ(m.fingerprint(), 0u);
  // Writing the fill value back is indistinguishable from never writing.
  m.write_word(0x3000u, m.fill_word(0x3000u));
  EXPECT_EQ(m.fingerprint(), 0u);
  m.write_word(0x3000u, m.fill_word(0x3000u) ^ 1u);
  const std::uint64_t changed = m.fingerprint();
  EXPECT_NE(changed, 0u);
  m.write_word(0x3000u, m.fill_word(0x3000u));
  EXPECT_EQ(m.fingerprint(), 0u);
}

TEST(HeapAllocator, EightByteAlignment) {
  HeapAllocator heap;
  for (std::uint32_t size : {1u, 7u, 8u, 9u, 24u, 100u}) {
    EXPECT_EQ(heap.allocate(size) % 8u, 0u);
  }
}

TEST(HeapAllocator, DistinctNonOverlappingBlocks) {
  HeapAllocator heap;
  const std::uint32_t a = heap.allocate(16);
  const std::uint32_t b = heap.allocate(16);
  EXPECT_GE(b, a + 16u);
}

TEST(HeapAllocator, ReusesFreedBlockOfSameSize) {
  HeapAllocator heap;
  const std::uint32_t a = heap.allocate(32);
  heap.deallocate(a, 32);
  EXPECT_EQ(heap.allocate(32), a);
}

TEST(HeapAllocator, FreeListIsPerRoundedSize) {
  HeapAllocator heap;
  const std::uint32_t a = heap.allocate(16);
  heap.deallocate(a, 16);
  // 17 rounds to 24, so it must not reuse the 16-byte block.
  EXPECT_NE(heap.allocate(17), a);
  // 9..16 all round to 16 and may reuse it.
  EXPECT_EQ(heap.allocate(9), a);
}

TEST(HeapAllocator, DeterministicLayout) {
  HeapAllocator h1, h2;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(h1.allocate(16 + (i % 5) * 8), h2.allocate(16 + (i % 5) * 8));
  }
}

TEST(HeapAllocator, StartsAtConfiguredBase) {
  HeapAllocator heap(0x2000'0000u);
  EXPECT_EQ(heap.allocate(8), 0x2000'0000u);
}

TEST(TrafficMeter, UncompressedWordCostsOneWord) {
  TrafficMeter t;
  t.add_uncompressed_words(3);
  EXPECT_DOUBLE_EQ(t.words(), 3.0);
}

TEST(TrafficMeter, CompressedWordCostsHalf) {
  TrafficMeter t;
  t.add_compressed_words(3);
  EXPECT_DOUBLE_EQ(t.words(), 1.5);
}

TEST(TrafficMeter, WritebackTrackedSeparately) {
  TrafficMeter t;
  t.add_uncompressed_words(2);
  t.add_writeback_compressed_words(2);
  EXPECT_DOUBLE_EQ(t.fetch_words(), 2.0);
  EXPECT_DOUBLE_EQ(t.writeback_words(), 1.0);
  EXPECT_DOUBLE_EQ(t.words(), 3.0);
}

TEST(TrafficMeter, ResetZeroes) {
  TrafficMeter t;
  t.add_uncompressed_words(5);
  t.reset();
  EXPECT_DOUBLE_EQ(t.words(), 0.0);
}

}  // namespace
}  // namespace cpc::mem
