// Tests for the LCC comparator (line-granularity compression cache in the
// style of reference [6], contrasted with CPP in paper section 5).

#include <gtest/gtest.h>

#include <unordered_map>

#include "cache/line_compression_hierarchy.hpp"

namespace cpc::cache {
namespace {

constexpr std::uint32_t kBase = 0x1000'0000u;
constexpr std::uint32_t kConflict = kBase + 8 * 1024;   // same L1 set
constexpr std::uint32_t kConflict2 = kBase + 16 * 1024;  // same L1 set again

TEST(LineCompression, TwoCompressibleConflictingLinesShareAFrame) {
  LineCompressionHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);      // zero-filled: fully compressible
  h.read(kConflict, v);  // same set: shares the frame instead of evicting
  EXPECT_EQ(h.shared_frames(), 1u);
  EXPECT_EQ(h.read(kBase, v).latency, 1u) << "both lines resident";
  EXPECT_EQ(h.read(kConflict, v).latency, 1u);
  EXPECT_EQ(h.stats().l1_misses, 2u);
  h.validate();
}

TEST(LineCompression, IncompressibleLineTakesWholeFrame) {
  LineCompressionHierarchy h;
  h.memory().write_word(kConflict, 0x7531'9753u);  // incompressible word
  std::uint32_t v = 0;
  h.read(kBase, v);
  h.read(kConflict, v);  // cannot share: evicts kBase
  EXPECT_EQ(h.shared_frames(), 0u);
  EXPECT_TRUE(h.read(kBase, v).l1_miss);
  h.validate();
}

TEST(LineCompression, WriteBreakingCompressibilityEvictsPartner) {
  LineCompressionHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);
  h.read(kConflict, v);
  ASSERT_EQ(h.shared_frames(), 1u);
  h.write(kBase, 0x7000'0001u);  // kBase no longer fully compressible
  EXPECT_EQ(h.shared_frames(), 0u);
  EXPECT_FALSE(h.read(kBase, v).l1_miss) << "the written line stays";
  EXPECT_EQ(v, 0x7000'0001u);
  h.validate();
}

TEST(LineCompression, SharedFrameEvictsLruOnThirdLine) {
  LineCompressionHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);
  h.read(kConflict, v);
  h.read(kBase, v);        // kBase is MRU
  h.read(kConflict2, v);   // compressible: evicts LRU (kConflict)
  EXPECT_FALSE(h.read(kBase, v).l1_miss);
  EXPECT_TRUE(h.read(kConflict, v).l1_miss);
  h.validate();
}

TEST(LineCompression, NoPrefetchEver) {
  // Section 5: line-level schemes "could not exploit the saved memory
  // bandwidth for partial cache line prefetching" — the next line must
  // still miss.
  LineCompressionHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);
  EXPECT_TRUE(h.read(kBase + 64, v).l1_miss);
}

TEST(LineCompression, TrafficMeteredCompressed) {
  LineCompressionHierarchy h;
  std::uint32_t v = 0;
  h.read(kBase, v);  // all-zero L2 line: half-cost transfer
  EXPECT_DOUBLE_EQ(h.stats().traffic.words(), 16.0);
}

TEST(LineCompression, ReadYourWritesRandomized) {
  LineCompressionHierarchy h;
  std::uint32_t lcg = 7, v = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> reference;
  for (int i = 0; i < 50'000; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    const std::uint32_t addr = kBase + (lcg % 0x60000u & ~3u);
    std::uint32_t value = lcg;
    if ((lcg & 1u) == 0) value &= 0xfffu;  // mix of small and big values
    if ((lcg >> 28) < 7) {
      h.write(addr, value);
      reference[addr] = value;
    } else {
      h.read(addr, v);
      const auto it = reference.find(addr);
      ASSERT_EQ(v, it == reference.end() ? 0u : it->second);
    }
    if (i % 10'000 == 0) h.validate();
  }
  h.validate();
}

}  // namespace
}  // namespace cpc::cache
