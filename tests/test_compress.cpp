// Unit and property tests for the value-compression scheme (paper §2.1/§3.2).

#include <gtest/gtest.h>

#include <cstdint>

#include "compress/classification_stats.hpp"
#include "compress/gate_model.hpp"
#include "compress/scheme.hpp"
#include "workload/rng.hpp"

namespace cpc::compress {
namespace {

constexpr std::uint32_t kAddr = 0x1000'0040;  // a typical heap address

TEST(Scheme, PaperParameters) {
  EXPECT_EQ(kPaperScheme.compressed_bits(), 16u);
  EXPECT_EQ(kPaperScheme.payload_bits(), 15u);
  EXPECT_EQ(kPaperScheme.small_check_bits(), 18u);  // "the 18 higher order bits"
  EXPECT_EQ(kPaperScheme.prefix_bits(), 17u);       // "the 17 higher order bits"
  EXPECT_EQ(kPaperScheme.small_max(), 16383);       // "[-16384, 16383]"
  EXPECT_EQ(kPaperScheme.small_min(), -16384);
}

TEST(Scheme, ClassifiesSmallPositiveValues) {
  EXPECT_EQ(kPaperScheme.classify(0, kAddr), ValueClass::kSmallValue);
  EXPECT_EQ(kPaperScheme.classify(1, kAddr), ValueClass::kSmallValue);
  EXPECT_EQ(kPaperScheme.classify(16383, kAddr), ValueClass::kSmallValue);
}

TEST(Scheme, ClassifiesSmallNegativeValues) {
  EXPECT_EQ(kPaperScheme.classify(static_cast<std::uint32_t>(-1), kAddr),
            ValueClass::kSmallValue);
  EXPECT_EQ(kPaperScheme.classify(static_cast<std::uint32_t>(-16384), kAddr),
            ValueClass::kSmallValue);
}

TEST(Scheme, SmallValueBoundaries) {
  // 16384 needs 15 magnitude bits — no longer sign extension over bit 14.
  EXPECT_NE(kPaperScheme.classify(16384, 0xdead'0000u), ValueClass::kSmallValue);
  EXPECT_NE(kPaperScheme.classify(static_cast<std::uint32_t>(-16385), 0xdead'0000u),
            ValueClass::kSmallValue);
}

TEST(Scheme, ClassifiesPointersSharingPrefix) {
  // Value within the same 32K-aligned chunk as its own address.
  const std::uint32_t pointer = (kAddr & 0xffff'8000u) | 0x1234u;
  EXPECT_EQ(kPaperScheme.classify(pointer, kAddr), ValueClass::kPointer);
}

TEST(Scheme, RejectsPointerOutsideChunk) {
  const std::uint32_t far_pointer = kAddr + 0x10'0000u;
  EXPECT_EQ(kPaperScheme.classify(far_pointer, kAddr), ValueClass::kIncompressible);
}

TEST(Scheme, SmallValueWinsOverPointer) {
  // A small value stored at a low address satisfies both conditions; the
  // classification must still be deterministic and the decode identical.
  const std::uint32_t addr = 0x0000'1000u;
  const std::uint32_t value = 0x42;
  EXPECT_EQ(kPaperScheme.classify(value, addr), ValueClass::kSmallValue);
  const auto cw = kPaperScheme.compress(value, addr);
  ASSERT_TRUE(cw.has_value());
  EXPECT_EQ(kPaperScheme.decompress(*cw, addr), value);
}

TEST(Scheme, VtFlagDistinguishesPointerFromSmall) {
  const auto small = kPaperScheme.compress(100, kAddr);
  const auto ptr = kPaperScheme.compress((kAddr & 0xffff'8000u) | 7u, kAddr);
  ASSERT_TRUE(small && ptr);
  EXPECT_EQ(small->bits & 0x8000u, 0u);  // VT = 0: small value
  EXPECT_NE(ptr->bits & 0x8000u, 0u);    // VT = 1: pointer
}

TEST(Scheme, IncompressibleReturnsNullopt) {
  EXPECT_FALSE(kPaperScheme.compress(0x4000'0000u, kAddr).has_value());
}

TEST(Scheme, RoundTripNegativeBoundary) {
  const std::uint32_t v = static_cast<std::uint32_t>(-16384);
  const auto cw = kPaperScheme.compress(v, kAddr);
  ASSERT_TRUE(cw.has_value());
  EXPECT_EQ(kPaperScheme.decompress(*cw, kAddr), v);
}

TEST(Scheme, PointerDecompressUsesAddressPrefix) {
  const std::uint32_t pointer = (kAddr & 0xffff'8000u) | 0x7fffu;
  const auto cw = kPaperScheme.compress(pointer, kAddr);
  ASSERT_TRUE(cw.has_value());
  // Decompressing at a *different* address in the same chunk still works;
  // a different chunk would reconstruct a different pointer (by design the
  // cache always decompresses at the word's own address).
  EXPECT_EQ(kPaperScheme.decompress(*cw, kAddr + 4), pointer);
}

// ---- property sweep over schemes and random values ----------------------

class SchemeRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(SchemeRoundTrip, CompressibleValuesRoundTrip) {
  const Scheme scheme{GetParam()};
  workload::Rng rng(GetParam() * 7919u + 17u);
  std::uint64_t compressible = 0;
  for (int i = 0; i < 200'000; ++i) {
    // Mix of full-random, small-biased and pointer-biased values.
    std::uint32_t value = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t addr = static_cast<std::uint32_t>(rng.next()) & ~3u;
    switch (i % 3) {
      case 1: value &= 0xffffu; break;                      // often small
      case 2: value = (addr & ~0x7fffu) | (value & 0x7fffu); break;  // pointer-ish
      default: break;
    }
    const auto cw = scheme.compress(value, addr);
    ASSERT_EQ(cw.has_value(), scheme.is_compressible(value, addr));
    if (cw) {
      ++compressible;
      ASSERT_EQ(scheme.decompress(*cw, addr), value)
          << "value=" << value << " addr=" << addr;
      // The compressed form must fit the advertised width.
      ASSERT_LT(cw->bits, 1u << scheme.compressed_bits());
    }
  }
  EXPECT_GT(compressible, 0u);
}

TEST_P(SchemeRoundTrip, ClassificationIsExhaustiveAndExclusive) {
  const Scheme scheme{GetParam()};
  workload::Rng rng(GetParam() * 104729u + 3u);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint32_t value = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t addr = static_cast<std::uint32_t>(rng.next()) & ~3u;
    const ValueClass c = scheme.classify(value, addr);
    if (c == ValueClass::kIncompressible) {
      ASSERT_FALSE(scheme.compress(value, addr).has_value());
    } else {
      ASSERT_TRUE(scheme.compress(value, addr).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SchemeRoundTrip, ::testing::Values(8u, 12u, 16u, 20u, 24u),
                         [](const auto& info) {
                           return "bits" + std::to_string(info.param);
                         });

// ---- gate-delay model ----------------------------------------------------

TEST(GateModel, PaperDelays) {
  // "Each of the checks can be performed using log(18) = 5 levels ...
  //  extra delay ... 3 levels ... total delay is 8 gate delays."
  EXPECT_EQ(gate_tree_depth(18), 5u);
  EXPECT_EQ(compressor_gate_delay(kPaperScheme), 8u);
  EXPECT_EQ(decompressor_gate_delay(kPaperScheme), 2u);
}

TEST(GateModel, TreeDepthEdgeCases) {
  EXPECT_EQ(gate_tree_depth(1), 0u);
  EXPECT_EQ(gate_tree_depth(2), 1u);
  EXPECT_EQ(gate_tree_depth(3), 2u);
  EXPECT_EQ(gate_tree_depth(32), 5u);
  EXPECT_EQ(gate_tree_depth(33), 6u);
}

TEST(GateModel, WiderSchemesAreNotSlower) {
  // Fewer checked bits (wider payload) can only shrink the reduction tree.
  EXPECT_LE(compressor_gate_delay(Scheme{24}), compressor_gate_delay(Scheme{8}));
}

// ---- classification stats (Fig. 3 accumulator) ---------------------------

TEST(ClassificationStats, CountsByClass) {
  ClassificationStats stats;
  stats.record(5, kAddr);                                // small
  stats.record((kAddr & 0xffff'8000u) | 0x10u, kAddr);   // pointer
  stats.record(0x4000'0000u, kAddr);                     // incompressible
  EXPECT_EQ(stats.small_values(), 1u);
  EXPECT_EQ(stats.pointers(), 1u);
  EXPECT_EQ(stats.incompressible(), 1u);
  EXPECT_EQ(stats.total(), 3u);
  EXPECT_DOUBLE_EQ(stats.compressible_fraction(), 2.0 / 3.0);
}

TEST(ClassificationStats, EmptyIsZeroNotNan) {
  ClassificationStats stats;
  EXPECT_EQ(stats.total(), 0u);
  EXPECT_DOUBLE_EQ(stats.compressible_fraction(), 0.0);
}

TEST(ClassificationStats, ResetClears) {
  ClassificationStats stats;
  stats.record(5, kAddr);
  stats.reset();
  EXPECT_EQ(stats.total(), 0u);
}

}  // namespace
}  // namespace cpc::compress
