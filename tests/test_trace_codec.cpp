// Trace codec (sim/trace_codec.hpp): the compact blob the bounded
// TraceCache demotes to must round-trip every real workload trace
// bit-exactly, compress meaningfully, and reject malformed blobs instead of
// decoding garbage.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "cpu/micro_op.hpp"
#include "sim/trace_codec.hpp"
#include "workload/workloads.hpp"

namespace cpc {
namespace {

void expect_traces_equal(const cpu::Trace& a, const cpu::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("op " + std::to_string(i));
    EXPECT_EQ(a[i].pc, b[i].pc);
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].dep1, b[i].dep1);
    EXPECT_EQ(a[i].dep2, b[i].dep2);
    EXPECT_EQ(a[i].flags, b[i].flags);
  }
}

TEST(TraceCodec, RoundTripsEveryWorkloadBitExactly) {
  std::size_t total_raw = 0, total_compressed = 0;
  for (const workload::Workload& wl : workload::all_workloads()) {
    SCOPED_TRACE(wl.name);
    const cpu::Trace trace = workload::generate(wl, {4'000, 0x5eed});
    const std::vector<std::uint8_t> blob = sim::trace_codec::compress(trace);
    expect_traces_equal(trace, sim::trace_codec::decompress(blob));
    // Every workload must beat the raw 16 B/op layout (pointer-chasing
    // address streams compress worst — em3d lands near 76 %), and the
    // corpus as a whole must compress meaningfully.
    EXPECT_LT(blob.size(), trace.size() * sizeof(cpu::MicroOp))
        << "compression too weak";
    total_raw += trace.size() * sizeof(cpu::MicroOp);
    total_compressed += blob.size();
  }
  EXPECT_LT(total_compressed, total_raw * 17u / 20u)
      << "corpus-wide ratio above 85 %";
}

TEST(TraceCodec, EmptyTraceAndEdgeValues) {
  expect_traces_equal(cpu::Trace{},
                      sim::trace_codec::decompress(
                          sim::trace_codec::compress(cpu::Trace{})));

  // Extremes: wrap-around deltas, max values, unusual flags (raw escape).
  cpu::Trace trace;
  cpu::MicroOp op;
  op.pc = 0xffffffffu;
  op.addr = 0;
  op.value = 0xffffffffu;
  op.kind = cpu::OpKind::kBranch;
  op.flags = cpu::MicroOp::kFlagTaken;
  trace.push_back(op);
  op.pc = 0;  // delta wraps past zero
  op.addr = 0xffffffffu;
  op.dep1 = 255;
  op.dep2 = 1;
  op.flags = 0xff;  // unknown future flags force the raw escape path
  trace.push_back(op);
  op = cpu::MicroOp{};
  trace.push_back(op);
  expect_traces_equal(
      trace, sim::trace_codec::decompress(sim::trace_codec::compress(trace)));
}

TEST(TraceCodec, MalformedBlobsThrowInsteadOfDecodingGarbage) {
  const cpu::Trace trace = workload::generate(
      workload::find_workload("olden.treeadd"), {1'000, 0x5eed});
  const std::vector<std::uint8_t> blob = sim::trace_codec::compress(trace);

  // Truncation at any point must throw, never return a partial trace.
  std::vector<std::uint8_t> truncated(blob.begin(), blob.end() - 5);
  EXPECT_THROW(sim::trace_codec::decompress(truncated), InvariantViolation);

  // Trailing junk is corruption too — a decoder that stops early hides it.
  std::vector<std::uint8_t> padded = blob;
  padded.push_back(0x00);
  EXPECT_THROW(sim::trace_codec::decompress(padded), InvariantViolation);

  // An op count far beyond the available bytes must be rejected up front
  // (no multi-gigabyte reserve on a corrupt count).
  std::vector<std::uint8_t> huge_count = {0xff, 0xff, 0xff, 0xff, 0x7f};
  EXPECT_THROW(sim::trace_codec::decompress(huge_count), InvariantViolation);
}

}  // namespace
}  // namespace cpc
