// Differential shadow oracle + cross-config metamorphic checks + fuzzing.
//
// The lockstep five-configuration runs are the PR's core property: every
// committed load must equal the shadow golden model on BC, BCC, HAC, BCP
// and CPP, and the cross-configuration metamorphic relations (identical
// commit streams, traffic(CPP) <= traffic(BC), miss sanity, traffic-meter
// consistency) must hold on real workloads and on adversarial fuzzer
// traces alike. The fault-side tests prove the oracle earns its keep: a
// laundered payload strike that every structural audit misses is caught
// architecturally and shrinks to a committed-corpus-sized reproducer.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "cpu/micro_op.hpp"
#include "sim/experiment.hpp"
#include "verify/oracle/differential.hpp"
#include "verify/oracle/oracle_hierarchy.hpp"
#include "verify/trace_fuzzer.hpp"
#include "workload/workloads.hpp"

#ifndef CPC_CORPUS_DIR
#define CPC_CORPUS_DIR "tests/corpus"
#endif

namespace cpc {
namespace {

std::shared_ptr<const cpu::Trace> workload_trace(const char* name,
                                                 std::uint64_t ops) {
  const workload::Workload& wl = workload::find_workload(name);
  workload::WorkloadParams params;
  params.target_ops = ops;
  return std::make_shared<const cpu::Trace>(workload::generate(wl, params));
}

std::shared_ptr<const cpu::Trace> fuzz_trace(std::uint64_t seed,
                                             std::uint32_t ops) {
  verify::FuzzOptions options;
  options.seed = seed;
  options.target_ops = ops;
  return std::make_shared<const cpu::Trace>(
      verify::TraceFuzzer(options).generate());
}

std::uint64_t count_accesses(const cpu::Trace& trace) {
  std::uint64_t n = 0;
  for (const cpu::MicroOp& op : trace) {
    if (op.kind == cpu::OpKind::kLoad || op.kind == cpu::OpKind::kStore) ++n;
  }
  return n;
}

// ---- lockstep five-config equivalence ---------------------------------

TEST(Differential, FiveConfigLockstepCleanOnWorkloads) {
  for (const char* name : {"olden.treeadd", "olden.mst", "spec2000.181.mcf"}) {
    SCOPED_TRACE(name);
    // 40k ops: enough for every kernel (mcf included) to finish its
    // store-only build phase and commit loads.
    const verify::DifferentialReport report =
        verify::run_differential(workload_trace(name, 40'000));
    EXPECT_TRUE(report.clean()) << report.summary();
    ASSERT_EQ(report.outcomes.size(), 5u);
    for (const verify::ConfigOutcome& outcome : report.outcomes) {
      EXPECT_TRUE(outcome.ok) << outcome.config << ": " << outcome.failure;
      EXPECT_EQ(outcome.divergence_count, 0u);
      EXPECT_GT(outcome.committed_loads, 0u);
      EXPECT_EQ(outcome.commit_hash, report.outcomes.front().commit_hash);
    }
  }
}

TEST(Differential, FuzzerSeedsAllClean) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const verify::DifferentialReport report =
        verify::run_differential(fuzz_trace(seed, 768));
    EXPECT_TRUE(report.clean()) << "fuzz seed " << seed << ":\n"
                                << report.summary();
  }
}

// ---- cross-config property checker (pure, on mutated real outcomes) ----

class CrossConfigCheck : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = fuzz_trace(21, 1024);
    report_ = new verify::DifferentialReport(verify::run_differential(trace_));
    for (const cpu::MicroOp& op : *trace_) {
      if (op.kind == cpu::OpKind::kLoad) ++loads_;
      if (op.kind == cpu::OpKind::kStore) ++stores_;
    }
  }
  static void TearDownTestSuite() {
    delete report_;
    report_ = nullptr;
    trace_.reset();
  }

  static std::shared_ptr<const cpu::Trace> trace_;
  static verify::DifferentialReport* report_;
  static std::uint64_t loads_;
  static std::uint64_t stores_;
};

std::shared_ptr<const cpu::Trace> CrossConfigCheck::trace_;
verify::DifferentialReport* CrossConfigCheck::report_ = nullptr;
std::uint64_t CrossConfigCheck::loads_ = 0;
std::uint64_t CrossConfigCheck::stores_ = 0;

bool has_violation(const std::vector<verify::PropertyViolation>& violations,
                   verify::Property property) {
  for (const verify::PropertyViolation& violation : violations) {
    if (violation.property == property) return true;
  }
  return false;
}

TEST_F(CrossConfigCheck, RealOutcomesSatisfyEveryProperty) {
  ASSERT_TRUE(report_->clean()) << report_->summary();
  EXPECT_TRUE(
      verify::check_cross_config(report_->outcomes, loads_, stores_).empty());
}

TEST_F(CrossConfigCheck, DetectsCommitStreamDivergence) {
  std::vector<verify::ConfigOutcome> outcomes = report_->outcomes;
  outcomes.back().commit_hash ^= 1;  // CPP served some load differently
  EXPECT_TRUE(has_violation(
      verify::check_cross_config(outcomes, loads_, stores_),
      verify::Property::kCommitStreamEqual));
}

TEST_F(CrossConfigCheck, ViolationDiagnosticTripsMetamorphicProperty) {
  std::vector<verify::ConfigOutcome> outcomes = report_->outcomes;
  outcomes.back().commit_hash ^= 1;
  const std::vector<verify::PropertyViolation> violations =
      verify::check_cross_config(outcomes, loads_, stores_);
  ASSERT_FALSE(violations.empty());
  const Diagnostic diagnostic = violations.front().to_diagnostic();
  EXPECT_EQ(diagnostic.invariant, Invariant::kMetamorphicProperty);
  EXPECT_FALSE(diagnostic.site.empty());
  EXPECT_FALSE(diagnostic.detail.empty());
}

TEST_F(CrossConfigCheck, DetectsCommittedOpMismatch) {
  std::vector<verify::ConfigOutcome> outcomes = report_->outcomes;
  outcomes[2].committed_loads += 3;  // HAC dropped/duplicated commits
  EXPECT_TRUE(has_violation(
      verify::check_cross_config(outcomes, loads_, stores_),
      verify::Property::kCommittedOpsEqual));
}

TEST_F(CrossConfigCheck, DetectsBcBccTimingSplit) {
  std::vector<verify::ConfigOutcome> outcomes = report_->outcomes;
  outcomes[1].run.core.cycles += 10;  // BCC may never change timing
  EXPECT_TRUE(has_violation(
      verify::check_cross_config(outcomes, loads_, stores_),
      verify::Property::kBcBccTimingIdentical));
}

TEST_F(CrossConfigCheck, DetectsCppTrafficRegression) {
  std::vector<verify::ConfigOutcome> outcomes = report_->outcomes;
  // Inflate CPP's metered fetch traffic past BC's while its fetched-line
  // count stays at or below BC's: the Fig. 10 fetch-path claim must trip.
  ASSERT_LE(outcomes[4].run.hierarchy.mem_fetch_lines +
                outcomes[4].run.hierarchy.prefetch_lines,
            outcomes[0].run.hierarchy.mem_fetch_lines +
                outcomes[0].run.hierarchy.prefetch_lines);
  const std::uint64_t gap =
      outcomes[0].run.hierarchy.traffic.fetch_half_units() -
      outcomes[4].run.hierarchy.traffic.fetch_half_units();
  outcomes[4].run.hierarchy.traffic.add_compressed_words(gap + 2);
  EXPECT_TRUE(has_violation(
      verify::check_cross_config(outcomes, loads_, stores_),
      verify::Property::kTrafficCppLeBc));
}

TEST_F(CrossConfigCheck, DetectsMissCountInsanity) {
  std::vector<verify::ConfigOutcome> outcomes = report_->outcomes;
  outcomes[3].run.hierarchy.l2_misses =
      outcomes[3].run.hierarchy.l1_misses + 1;  // L2 demand misses > L1
  EXPECT_TRUE(has_violation(
      verify::check_cross_config(outcomes, loads_, stores_),
      verify::Property::kMissSanity));
}

TEST_F(CrossConfigCheck, DetectsRequestStreamLoss) {
  std::vector<verify::ConfigOutcome> outcomes = report_->outcomes;
  outcomes[0].run.hierarchy.reads -= 1;  // BC swallowed a request
  EXPECT_TRUE(has_violation(
      verify::check_cross_config(outcomes, loads_, stores_),
      verify::Property::kAccessCountsMatchTrace));
}

// ---- the oracle catches what structural audits cannot ------------------

// Scans small (trigger, seed) pairs exactly like `cpc_fuzz --self-check`:
// a laundered payload strike can be masked (victim word overwritten or
// evicted clean before any load), so a handful of arming points is tried.
std::optional<verify::FaultPlan> find_caught_strike(
    const std::shared_ptr<const cpu::Trace>& trace,
    verify::DifferentialOptions& options) {
  for (const std::uint64_t trigger : {8, 16, 24, 32, 48}) {
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
      verify::FaultPlan plan;
      plan.command.kind = verify::FaultKind::kPayloadBitSilent;
      plan.command.level = 1;
      plan.command.seed = seed;
      plan.trigger_access = trigger;
      options.fault = plan;
      if (verify::run_differential(trace, options).total_divergences() > 0) {
        return plan;
      }
    }
  }
  return std::nullopt;
}

TEST(Differential, OracleCatchesLaunderedPayloadStrike) {
  const auto trace = fuzz_trace(5, 4096);
  verify::DifferentialOptions options;
  options.fault_config = sim::ConfigKind::kCPP;
  const std::optional<verify::FaultPlan> plan =
      find_caught_strike(trace, options);
  ASSERT_TRUE(plan.has_value())
      << "no small-trigger laundered strike was oracle-visible";

  options.fault = plan;
  const verify::DifferentialReport report =
      verify::run_differential(trace, options);
  ASSERT_GT(report.total_divergences(), 0u);

  // Only the faulted configuration diverges, and its diagnostic is fully
  // populated: the structured record a bug report is built from.
  for (const verify::ConfigOutcome& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.ok) << outcome.config << ": " << outcome.failure;
    if (outcome.config != "CPP") {
      EXPECT_EQ(outcome.divergence_count, 0u) << outcome.config;
      continue;
    }
    ASSERT_GT(outcome.divergence_count, 0u);
    ASSERT_FALSE(outcome.divergences.empty());
    const Diagnostic& diagnostic = outcome.divergences.front();
    EXPECT_EQ(diagnostic.invariant, Invariant::kShadowDivergence);
    EXPECT_NE(diagnostic.site.find("CPP"), std::string::npos);
    EXPECT_GT(diagnostic.cycle, 0u);
    EXPECT_NE(diagnostic.detail.find("expected"), std::string::npos);
  }

  // The acceptance bar: the failure shrinks to a corpus-sized reproducer
  // that still diverges.
  verify::ShrinkStats stats;
  const cpu::Trace shrunk = verify::shrink_trace(
      *trace,
      [&](const cpu::Trace& candidate) {
        return verify::run_differential(
                   std::make_shared<const cpu::Trace>(candidate), options)
                   .total_divergences() > 0;
      },
      verify::ShrinkOptions{}, &stats);
  EXPECT_LE(count_accesses(shrunk), 64u);
  EXPECT_LT(shrunk.size(), trace->size());
  EXPECT_GT(stats.evaluations, 0u);
  EXPECT_GT(verify::run_differential(
                std::make_shared<const cpu::Trace>(shrunk), options)
                .total_divergences(),
            0u);
}

// ---- shrinker: deterministic and minimal -------------------------------

TEST(TraceShrinker, DeterministicAndMinimalOnMonotonePredicate) {
  const auto trace = fuzz_trace(7, 1024);
  // Monotone predicate independent of load values: >= 10 stores survive.
  const auto ten_stores = [](const cpu::Trace& candidate) {
    std::uint64_t stores = 0;
    for (const cpu::MicroOp& op : candidate) {
      if (op.kind == cpu::OpKind::kStore) ++stores;
    }
    return stores >= 10;
  };
  verify::ShrinkOptions options;
  options.max_evaluations = 2000;
  verify::ShrinkStats stats_a;
  const cpu::Trace a = verify::shrink_trace(*trace, ten_stores, options,
                                            &stats_a);
  verify::ShrinkStats stats_b;
  const cpu::Trace b = verify::shrink_trace(*trace, ten_stores, options,
                                            &stats_b);

  // Bit-identical across runs (same inputs, same result)...
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pc, b[i].pc);
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].value, b[i].value);
  }
  EXPECT_EQ(stats_a.evaluations, stats_b.evaluations);

  // ...and 1-minimal: exactly the 10 stores remain.
  EXPECT_TRUE(ten_stores(a));
  EXPECT_EQ(a.size(), 10u);
}

TEST(TraceShrinker, NormalizationKeepsCandidatesSelfConsistent) {
  // Shrunk traces must stay valid oracle input: every load's recorded value
  // equals what replaying the stores over the fill pattern produces, so a
  // clean differential run on the shrunk trace stays clean.
  const auto trace = fuzz_trace(13, 512);
  const cpu::Trace shrunk = verify::shrink_trace(
      *trace,
      [](const cpu::Trace& candidate) { return count_accesses(candidate) >= 8; },
      verify::ShrinkOptions{});
  EXPECT_EQ(count_accesses(shrunk), 8u);
  const verify::DifferentialReport report = verify::run_differential(
      std::make_shared<const cpu::Trace>(shrunk));
  EXPECT_TRUE(report.clean()) << report.summary();
}

// ---- wrong-path isolation (the commit-time store hook) -----------------

TEST(WrongPath, SpeculativeStoresNeverPolluteShadowOrMemory) {
  verify::DifferentialOptions options;
  options.core.wrongpath_depth = 4;
  const verify::DifferentialReport report =
      verify::run_differential(fuzz_trace(11, 2048), options);
  EXPECT_TRUE(report.clean()) << report.summary();
  std::uint64_t squashed = 0;
  std::uint64_t probes = 0;
  for (const verify::ConfigOutcome& outcome : report.outcomes) {
    squashed += outcome.run.core.wrongpath_stores_squashed;
    probes += outcome.run.core.wrongpath_loads;
    // Speculative probes are visible below the core but never commit.
    EXPECT_GT(outcome.stream_reads, outcome.committed_loads);
  }
  // The regression only bites if speculation actually happened.
  EXPECT_GT(squashed, 0u);
  EXPECT_GT(probes, 0u);
}

TEST(WrongPath, IssueTimeStoreBugIsCaughtByOracle) {
  // The conflated design this PR guards against: speculative stores writing
  // the data cache at issue. The shadow oracle (fed only by committed
  // stores) must flag the resulting architectural corruption.
  verify::DifferentialOptions options;
  options.core.wrongpath_depth = 4;
  options.core.wrongpath_stores_to_dcache = true;
  const verify::DifferentialReport report =
      verify::run_differential(fuzz_trace(11, 2048), options);
  EXPECT_GT(report.total_divergences(), 0u) << report.summary();
}

// ---- committed corpus replays ------------------------------------------

verify::DifferentialOptions repro_options(const verify::ReproCase& repro) {
  verify::DifferentialOptions options;
  options.fault = repro.fault;
  options.fault_config = repro.fault_config;
  return options;
}

TEST(Corpus, EveryCommittedReproducerReplays) {
  const std::vector<std::string> files =
      verify::list_repro_files(CPC_CORPUS_DIR);
  ASSERT_FALSE(files.empty()) << "no .repro files under " << CPC_CORPUS_DIR;
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    const verify::ReproCase repro = verify::load_repro(path);
    EXPECT_LE(count_accesses(repro.trace), 64u);
    const verify::DifferentialReport report = verify::run_differential(
        std::make_shared<const cpu::Trace>(repro.trace),
        repro_options(repro));
    if (repro.expect_divergence) {
      EXPECT_GT(report.total_divergences(), 0u)
          << "reproducer no longer diverges:\n"
          << report.summary();
    } else {
      EXPECT_TRUE(report.clean()) << report.summary();
    }
  }
}

TEST(Corpus, ReproCasesRoundTripThroughDisk) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cpc-repro-roundtrip";
  std::filesystem::remove_all(dir);

  verify::ReproCase repro;
  repro.name = "roundtrip-case";
  repro.trace = *fuzz_trace(3, 64);
  repro.expect_divergence = true;
  verify::FaultPlan plan;
  plan.command.kind = verify::FaultKind::kPayloadBitSilent;
  plan.command.level = 1;
  plan.command.seed = 9;
  plan.trigger_access = 8;
  repro.fault = plan;
  repro.fault_config = sim::ConfigKind::kCPP;
  repro.origin_seed = 3;
  repro.fill_seed = 0;
  verify::save_repro(dir.string(), repro);

  const std::vector<std::string> files = verify::list_repro_files(dir.string());
  ASSERT_EQ(files.size(), 1u);
  const verify::ReproCase loaded = verify::load_repro(files.front());
  EXPECT_EQ(loaded.name, repro.name);
  EXPECT_EQ(loaded.expect_divergence, repro.expect_divergence);
  ASSERT_TRUE(loaded.fault.has_value());
  EXPECT_EQ(loaded.fault->command.kind, plan.command.kind);
  EXPECT_EQ(loaded.fault->command.seed, plan.command.seed);
  EXPECT_EQ(loaded.fault->trigger_access, plan.trigger_access);
  EXPECT_EQ(loaded.fault_config, sim::ConfigKind::kCPP);
  ASSERT_EQ(loaded.trace.size(), repro.trace.size());
  for (std::size_t i = 0; i < loaded.trace.size(); ++i) {
    EXPECT_EQ(loaded.trace[i].pc, repro.trace[i].pc);
    EXPECT_EQ(loaded.trace[i].addr, repro.trace[i].addr);
    EXPECT_EQ(loaded.trace[i].value, repro.trace[i].value);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cpc
