// Geometry-sweep property tests for the CPP hierarchy: the protocol must
// stay functionally correct and invariant-clean for any legal cache shape,
// not just the paper's 8K/64K configuration.

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "core/cpp_hierarchy.hpp"

namespace cpc::core {
namespace {

struct Shape {
  const char* label;
  cache::CacheGeometry l1;
  cache::CacheGeometry l2;
};

const Shape kShapes[] = {
    {"paper", {8 * 1024, 64, 1}, {64 * 1024, 128, 2}},
    {"tiny", {1024, 32, 1}, {4 * 1024, 64, 2}},
    {"assoc_l1", {8 * 1024, 64, 2}, {64 * 1024, 128, 2}},
    {"wide_assoc", {16 * 1024, 64, 4}, {128 * 1024, 128, 8}},
    {"equal_lines", {4 * 1024, 64, 1}, {32 * 1024, 64, 4}},
    {"small_lines", {2 * 1024, 32, 1}, {16 * 1024, 64, 2}},
    {"big_l2_lines", {8 * 1024, 32, 1}, {64 * 1024, 128, 2}},
};

class CppGeometry : public ::testing::TestWithParam<Shape> {};

TEST_P(CppGeometry, ReadYourWritesAndInvariants) {
  const Shape& shape = GetParam();
  CppHierarchy::Options opts;
  opts.config.l1 = shape.l1;
  opts.config.l2 = shape.l2;
  CppHierarchy h(opts);

  std::uint32_t lcg = 0xc0ffee;
  std::unordered_map<std::uint32_t, std::uint32_t> reference;
  std::uint32_t v = 0;
  // Footprint scaled to ~6x the L2 so every shape sees real evictions.
  const std::uint32_t span = shape.l2.size_bytes * 6;
  for (int i = 0; i < 30'000; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    const std::uint32_t addr = 0x1000'0000u + (lcg % span & ~3u);
    std::uint32_t value = lcg;
    if ((lcg & 3u) == 0) value &= 0x1fffu;
    if ((lcg & 3u) == 1) value = (addr & ~0x7fffu) | (value & 0x7fffu);
    if ((lcg >> 28) < 6) {
      h.write(addr, value);
      reference[addr] = value;
    } else {
      h.read(addr, v);
      const auto it = reference.find(addr);
      ASSERT_EQ(v, it == reference.end() ? 0u : it->second)
          << shape.label << " at " << std::hex << addr;
    }
    if (i % 5000 == 0) ASSERT_NO_THROW(h.validate()) << shape.label;
  }
  ASSERT_NO_THROW(h.validate());
}

TEST_P(CppGeometry, SequentialStreamPrefetches) {
  const Shape& shape = GetParam();
  CppHierarchy::Options opts;
  opts.config.l1 = shape.l1;
  opts.config.l2 = shape.l2;
  CppHierarchy h(opts);

  // A sequential read sweep over zero-filled (fully compressible) memory:
  // every other line should be served from an affiliated place.
  std::uint32_t v = 0;
  for (std::uint32_t addr = 0x2000'0000u; addr < 0x2000'0000u + 64 * 1024;
       addr += shape.l1.line_bytes) {
    h.read(addr, v);
  }
  EXPECT_GT(h.stats().l1_affiliated_hits + h.stats().l2_affiliated_hits, 0u)
      << shape.label;
  h.validate();
}

INSTANTIATE_TEST_SUITE_P(Shapes, CppGeometry, ::testing::ValuesIn(kShapes),
                         [](const auto& info) { return std::string(info.param.label); });

}  // namespace
}  // namespace cpc::core
