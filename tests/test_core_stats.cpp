// Tests for the derived statistics the figure harnesses consume: the
// measured miss-dependence fraction (Fig. 14's direct counterpart), BCP
// prefetch accuracy, and the stats plumbing in RunResult.

#include <gtest/gtest.h>

#include "cache/baseline_hierarchy.hpp"
#include "cache/prefetch_hierarchy.hpp"
#include "cpu/ooo_core.hpp"
#include "sim/experiment.hpp"

namespace cpc {
namespace {

cpu::MicroOp load_op(std::uint32_t addr, std::uint32_t pc = 0x1000) {
  cpu::MicroOp op;
  op.kind = cpu::OpKind::kLoad;
  op.addr = addr;
  op.pc = pc;
  return op;
}

cpu::MicroOp alu_op(std::uint8_t dep, std::uint32_t pc = 0x1004) {
  cpu::MicroOp op;
  op.kind = cpu::OpKind::kIntAlu;
  op.dep1 = dep;
  op.pc = pc;
  return op;
}

TEST(DirectMissDependence, CountsConsumersOfMissingLoads) {
  cpu::Trace t;
  t.push_back(load_op(0x1000'0000u));  // cold: misses
  t.push_back(alu_op(1));              // depends on the missing load
  t.push_back(alu_op(0));              // independent
  auto h = cache::BaselineHierarchy::make_bc();
  cpu::OooCore core({}, h);
  const cpu::CoreStats s = core.run(t);
  EXPECT_EQ(s.ops_depending_on_miss, 1u);
  EXPECT_NEAR(s.direct_miss_dependence_fraction(), 1.0 / 3.0, 1e-12);
}

TEST(DirectMissDependence, HitsProduceNoDependents) {
  cpu::Trace t;
  t.push_back(load_op(0x1000'0000u));  // miss (cold)
  t.push_back(load_op(0x1000'0004u));  // hit (same line)
  t.push_back(alu_op(1));              // depends on the HIT load
  auto h = cache::BaselineHierarchy::make_bc();
  cpu::OooCore core({}, h);
  const cpu::CoreStats s = core.run(t);
  EXPECT_EQ(s.ops_depending_on_miss, 0u);
}

TEST(DirectMissDependence, PointerChaseIsFullyMissDependent) {
  // A chain of loads each consuming the previous one, all to distinct cold
  // lines: every load after the first directly depends on a miss.
  cpu::Trace t;
  for (int i = 0; i < 50; ++i) {
    cpu::MicroOp op = load_op(0x1000'0000u + i * 4096);
    op.dep1 = i == 0 ? 0 : 1;
    t.push_back(op);
  }
  auto h = cache::BaselineHierarchy::make_bc();
  cpu::OooCore core({}, h);
  const cpu::CoreStats s = core.run(t);
  EXPECT_EQ(s.ops_depending_on_miss, 49u);
}

TEST(PrefetchAccuracy, ComputedFromInsertsAndHits) {
  cache::PrefetchHierarchy h;
  std::uint32_t v = 0;
  h.read(0x1000'0000u, v);  // miss: inserts prefetches at both levels
  h.read(0x1000'0040u, v);  // uses the L1-level prefetch
  const cache::HierarchyStats& s = h.stats();
  EXPECT_GT(s.l1_prefetch_inserts, 0u);
  EXPECT_GT(s.prefetch_accuracy(), 0.0);
  EXPECT_LE(s.prefetch_accuracy(), 1.0);
}

TEST(PrefetchAccuracy, ZeroWhenNothingPrefetched) {
  cache::HierarchyStats s;
  EXPECT_DOUBLE_EQ(s.prefetch_accuracy(), 0.0);
}

TEST(PrefetchAccuracy, UselessPrefetchesScoreZero) {
  cache::PrefetchHierarchy h;
  std::uint32_t v = 0;
  // Stride past every prefetched successor: nothing prefetched is used.
  for (std::uint32_t i = 0; i < 32; ++i) h.read(0x1000'0000u + i * 16384, v);
  EXPECT_EQ(h.stats().l1_pbuf_hits + h.stats().l2_pbuf_hits, 0u);
  EXPECT_DOUBLE_EQ(h.stats().prefetch_accuracy(), 0.0);
  EXPECT_GT(h.stats().l1_prefetch_inserts, 0u);
}

TEST(RunResultStats, MeasuredImportancePropagates) {
  const auto trace = workload::generate(workload::find_workload("olden.treeadd"),
                                        {50'000, 0x5eed});
  const sim::ImportanceResult imp = sim::miss_importance(trace, sim::ConfigKind::kBC);
  EXPECT_GT(imp.measured_direct_fraction, 0.0);
  EXPECT_LT(imp.measured_direct_fraction, 1.0);
}

TEST(RunResultStats, MissDependenceShrinksWithPrefetching) {
  // CPP converts compressible-word misses into hits, so fewer committed ops
  // should consume a missing load's value than under BC.
  const auto trace = workload::generate(workload::find_workload("olden.treeadd"),
                                        {80'000, 0x5eed});
  const sim::RunResult bc = sim::run_trace(trace, sim::ConfigKind::kBC);
  const sim::RunResult cpp = sim::run_trace(trace, sim::ConfigKind::kCPP);
  EXPECT_LT(cpp.core.ops_depending_on_miss, bc.core.ops_depending_on_miss);
}

}  // namespace
}  // namespace cpc
