// SweepRunner: the parallel batching layer must be bit-identical to a
// serial run at any thread count, must propagate job exceptions, and must
// honour the CPC_JOBS override.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "sim/experiment.hpp"
#include "sim/job.hpp"
#include "sim/journal.hpp"
#include "sim/sweep_runner.hpp"
#include "sim/trace_codec.hpp"
#include "workload/workloads.hpp"

namespace cpc {
namespace {

// A fig10-style grid: every paper configuration over a couple of workloads.
std::vector<sim::Job> fig10_style_grid(std::uint64_t trace_ops) {
  std::vector<sim::Job> jobs;
  for (const char* name : {"olden.treeadd", "olden.health"}) {
    const workload::Workload& wl = workload::find_workload(name);
    for (sim::ConfigKind kind : sim::kAllConfigs) {
      jobs.push_back(sim::make_config_job(wl, trace_ops, 0x5eed, kind));
    }
  }
  return jobs;
}

void expect_identical(const sim::JobResult& a, const sim::JobResult& b) {
  SCOPED_TRACE("job " + std::to_string(a.index) + " (" + a.tag + ")");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.tag, b.tag);
  EXPECT_EQ(a.run.config, b.run.config);
  EXPECT_EQ(a.run.core.cycles, b.run.core.cycles);
  EXPECT_EQ(a.run.core.committed, b.run.core.committed);
  EXPECT_EQ(a.run.core.loads, b.run.core.loads);
  EXPECT_EQ(a.run.core.stores, b.run.core.stores);
  EXPECT_EQ(a.run.core.branches, b.run.core.branches);
  EXPECT_EQ(a.run.core.mispredicts, b.run.core.mispredicts);
  EXPECT_EQ(a.run.core.miss_cycles, b.run.core.miss_cycles);
  EXPECT_EQ(a.run.core.ready_sum_miss_cycles, b.run.core.ready_sum_miss_cycles);
  EXPECT_EQ(a.run.core.ready_sum_all_cycles, b.run.core.ready_sum_all_cycles);
  EXPECT_EQ(a.run.core.ops_depending_on_miss, b.run.core.ops_depending_on_miss);
  EXPECT_EQ(a.run.core.value_mismatches, b.run.core.value_mismatches);
  EXPECT_EQ(a.run.hierarchy.reads, b.run.hierarchy.reads);
  EXPECT_EQ(a.run.hierarchy.writes, b.run.hierarchy.writes);
  EXPECT_EQ(a.run.hierarchy.l1_misses, b.run.hierarchy.l1_misses);
  EXPECT_EQ(a.run.hierarchy.l2_misses, b.run.hierarchy.l2_misses);
  EXPECT_EQ(a.run.hierarchy.l1_affiliated_hits, b.run.hierarchy.l1_affiliated_hits);
  EXPECT_EQ(a.run.hierarchy.l2_affiliated_hits, b.run.hierarchy.l2_affiliated_hits);
  EXPECT_EQ(a.run.hierarchy.l1_pbuf_hits, b.run.hierarchy.l1_pbuf_hits);
  EXPECT_EQ(a.run.hierarchy.l2_pbuf_hits, b.run.hierarchy.l2_pbuf_hits);
  EXPECT_EQ(a.run.hierarchy.traffic.half_units(), b.run.hierarchy.traffic.half_units());
}

TEST(SweepRunner, ParallelRunBitIdenticalToSerial) {
  const sim::SweepRunner serial(1);
  const sim::SweepRunner parallel(4);
  const auto base = serial.run(fig10_style_grid(20'000), /*quiet=*/true);
  const auto wide = parallel.run(fig10_style_grid(20'000), /*quiet=*/true);

  ASSERT_EQ(base.size(), wide.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    expect_identical(base[i], wide[i]);
  }
}

TEST(SweepRunner, ResultsArriveInJobIndexOrder) {
  const sim::SweepRunner runner(4);
  const auto results = runner.run(fig10_style_grid(5'000), /*quiet=*/true);
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].tag,
              sim::config_name(sim::kAllConfigs[i % std::size(sim::kAllConfigs)]));
    EXPECT_NE(results[i].hierarchy, nullptr);
    EXPECT_GT(results[i].run.core.cycles, 0u);
  }
}

TEST(SweepRunner, ExternalTraceJobsSkipGeneration) {
  // Jobs carrying a pre-recorded trace replay it directly.
  const auto trace = std::make_shared<const cpu::Trace>(workload::generate(
      workload::find_workload("olden.treeadd"), {5'000, 0x5eed}));
  std::vector<sim::Job> jobs;
  for (sim::ConfigKind kind : sim::kAllConfigs) {
    sim::Job job;
    job.trace = trace;
    job.make_hierarchy = [kind] { return sim::make_hierarchy(kind); };
    job.tag = sim::config_name(kind);
    jobs.push_back(std::move(job));
  }
  const sim::SweepRunner runner(2);
  const auto results = runner.run(std::move(jobs), /*quiet=*/true);
  ASSERT_EQ(results.size(), std::size(sim::kAllConfigs));
  for (const sim::JobResult& result : results) {
    EXPECT_EQ(result.run.core.value_mismatches, 0u);
    EXPECT_GT(result.run.core.committed, 0u);
  }
}

TEST(SweepRunner, JobExceptionPropagatesAndPoolSurvives) {
  const auto trace = std::make_shared<const cpu::Trace>();
  const auto make_jobs = [&](bool poison) {
    std::vector<sim::Job> jobs;
    for (int i = 0; i < 6; ++i) {
      sim::Job job;
      job.trace = trace;
      job.tag = "job" + std::to_string(i);
      if (poison && i == 3) {
        job.make_hierarchy = []() -> std::unique_ptr<cache::MemoryHierarchy> {
          throw std::runtime_error("hierarchy construction failed");
        };
      } else {
        job.make_hierarchy = [] {
          return sim::make_hierarchy(sim::ConfigKind::kBC);
        };
      }
      jobs.push_back(std::move(job));
    }
    return jobs;
  };

  const sim::SweepRunner runner(3);
  EXPECT_THROW(
      {
        try {
          runner.run(make_jobs(/*poison=*/true), /*quiet=*/true);
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "hierarchy construction failed");
          throw;
        }
      },
      std::runtime_error);

  // The runner holds no poisoned state: a clean batch still runs.
  const auto results = runner.run(make_jobs(/*poison=*/false), /*quiet=*/true);
  EXPECT_EQ(results.size(), 6u);
}

TEST(SweepRunner, ParallelForWritesEveryIndexExactlyOnce) {
  const sim::SweepRunner runner(4);
  std::vector<int> hits(257, 0);
  std::atomic<int> calls{0};
  runner.parallel_for(hits.size(), [&](std::size_t i) {
    ++hits[i];
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 257);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(SweepRunner, CpcJobsEnvOverridesThreadCount) {
  ASSERT_EQ(setenv("CPC_JOBS", "1", 1), 0);
  EXPECT_EQ(sim::default_job_count(), 1u);
  EXPECT_EQ(sim::SweepRunner().threads(), 1u);

  ASSERT_EQ(setenv("CPC_JOBS", "7", 1), 0);
  EXPECT_EQ(sim::default_job_count(), 7u);
  EXPECT_EQ(sim::SweepRunner().threads(), 7u);

  // Explicit constructor argument wins over the environment.
  EXPECT_EQ(sim::SweepRunner(2).threads(), 2u);

  // Garbage and zero fall back to hardware concurrency (at least one).
  ASSERT_EQ(setenv("CPC_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(sim::default_job_count(), 1u);
  ASSERT_EQ(setenv("CPC_JOBS", "0", 1), 0);
  EXPECT_GE(sim::default_job_count(), 1u);

  ASSERT_EQ(unsetenv("CPC_JOBS"), 0);
  EXPECT_GE(sim::default_job_count(), 1u);
}

TEST(SweepRunner, Cpc_Jobs1_RunMatchesDefaultRun) {
  // CPC_JOBS=1 must not change results, only scheduling.
  ASSERT_EQ(setenv("CPC_JOBS", "1", 1), 0);
  const auto serial = sim::SweepRunner().run(fig10_style_grid(5'000), true);
  ASSERT_EQ(unsetenv("CPC_JOBS"), 0);
  const auto parallel = sim::SweepRunner(3).run(fig10_style_grid(5'000), true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

// --- contained execution (run_contained) ------------------------------------

std::vector<sim::Job> poisonable_grid(const std::shared_ptr<const cpu::Trace>& trace,
                                      int poison_index) {
  std::vector<sim::Job> jobs;
  for (int i = 0; i < 6; ++i) {
    sim::Job job;
    job.trace = trace;
    job.tag = "job" + std::to_string(i);
    if (i == poison_index) {
      job.make_hierarchy = []() -> std::unique_ptr<cache::MemoryHierarchy> {
        throw std::runtime_error("deliberate job failure");
      };
    } else {
      job.make_hierarchy = [] { return sim::make_hierarchy(sim::ConfigKind::kBC); };
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::shared_ptr<const cpu::Trace> small_trace(std::uint64_t ops = 3'000) {
  return std::make_shared<const cpu::Trace>(workload::generate(
      workload::find_workload("olden.treeadd"), {ops, 0x5eed}));
}

TEST(ContainedSweep, FailingJobDoesNotStopTheOthers) {
  const sim::SweepRunner runner(3);
  sim::RunOptions options;
  options.quiet = true;
  const sim::RunReport report =
      runner.run_contained(poisonable_grid(small_trace(), 3), options);

  ASSERT_EQ(report.results.size(), 6u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.failures[0].index, 3u);
  EXPECT_EQ(report.failures[0].tag, "job3");
  EXPECT_EQ(report.failures[0].what, "deliberate job failure");
  EXPECT_FALSE(report.failures[0].timed_out);
  EXPECT_EQ(report.failures[0].attempts, 1u);
  for (std::size_t i = 0; i < 6; ++i) {
    if (i == 3) {
      EXPECT_FALSE(report.results[i].ok);
    } else {
      EXPECT_TRUE(report.results[i].ok);
      EXPECT_GT(report.results[i].run.core.committed, 0u);
    }
  }
}

TEST(ContainedSweep, InvariantViolationCarriesItsDiagnostic) {
  const auto trace = small_trace();
  std::vector<sim::Job> jobs = poisonable_grid(trace, -1);
  jobs[2].make_hierarchy = []() -> std::unique_ptr<cache::MemoryHierarchy> {
    throw InvariantViolation(
        Diagnostic{Invariant::kLineEcc, "test::site", 7, 0x40, "synthetic"});
  };
  const sim::SweepRunner runner(2);
  sim::RunOptions options;
  options.quiet = true;
  const sim::RunReport report = runner.run_contained(std::move(jobs), options);
  ASSERT_EQ(report.failures.size(), 1u);
  ASSERT_TRUE(report.failures[0].diagnostic.has_value());
  EXPECT_EQ(report.failures[0].diagnostic->invariant, Invariant::kLineEcc);
  EXPECT_EQ(report.failures[0].diagnostic->site, "test::site");
}

TEST(ContainedSweep, RetryRecoversTransientFailure) {
  const auto trace = small_trace();
  auto flaky_calls = std::make_shared<std::atomic<int>>(0);
  std::vector<sim::Job> jobs = poisonable_grid(trace, -1);
  jobs[1].make_hierarchy = [flaky_calls]() -> std::unique_ptr<cache::MemoryHierarchy> {
    if (flaky_calls->fetch_add(1) == 0) {
      throw std::runtime_error("transient failure");
    }
    return sim::make_hierarchy(sim::ConfigKind::kBC);
  };
  const sim::SweepRunner runner(2);
  sim::RunOptions options;
  options.quiet = true;
  options.retries = 1;
  const sim::RunReport report = runner.run_contained(std::move(jobs), options);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(flaky_calls->load(), 2);
  EXPECT_TRUE(report.results[1].ok);
}

TEST(ContainedSweep, RetriesAreExhaustedAndCounted) {
  const sim::SweepRunner runner(2);
  sim::RunOptions options;
  options.quiet = true;
  options.retries = 2;
  const sim::RunReport report =
      runner.run_contained(poisonable_grid(small_trace(), 0), options);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].attempts, 3u);  // 1 try + 2 retries
}

// A hierarchy that sleeps on every access: wall-clock runaway for the
// watchdog test without busy-burning CPU.
class SleepyHierarchy final : public cache::MemoryHierarchy {
 public:
  cache::AccessResult read(std::uint32_t, std::uint32_t& value) override {
    value = 0;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return {};
  }
  cache::AccessResult write(std::uint32_t, std::uint32_t) override {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return {};
  }
  std::string name() const override { return "sleepy"; }
};

TEST(ContainedSweep, WatchdogCancelsRunawayJob) {
  const auto trace = small_trace(20'000);  // ~4 s at 200 µs/access, uncancelled
  std::vector<sim::Job> jobs;
  sim::Job job;
  job.trace = trace;
  job.tag = "runaway";
  job.make_hierarchy = [] {
    return std::unique_ptr<cache::MemoryHierarchy>(new SleepyHierarchy);
  };
  jobs.push_back(std::move(job));

  const sim::SweepRunner runner(1);
  sim::RunOptions options;
  options.quiet = true;
  options.job_timeout_ms = 100;
  const auto start = std::chrono::steady_clock::now();
  const sim::RunReport report = runner.run_contained(std::move(jobs), options);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_TRUE(report.failures[0].timed_out);
  EXPECT_LT(elapsed.count(), 2'000) << "watchdog reacted far too slowly";
}

TEST(ContainedSweep, RunOptionsReadTimeoutFromEnvironment) {
  ASSERT_EQ(setenv("CPC_JOB_TIMEOUT_MS", "1234", 1), 0);
  EXPECT_EQ(sim::RunOptions::from_env().job_timeout_ms, 1234u);
  ASSERT_EQ(unsetenv("CPC_JOB_TIMEOUT_MS"), 0);
  EXPECT_EQ(sim::RunOptions::from_env().job_timeout_ms, 0u);
}

TEST(ContainedSweep, JournalResumeSkipsCompletedJobsAndRetriesFailed) {
  const std::string path = ::testing::TempDir() + "/cpc_sweep_test.journal";
  std::remove(path.c_str());
  const auto trace = small_trace();

  const sim::SweepRunner runner(2);
  sim::RunOptions options;
  options.quiet = true;
  options.journal_path = path;

  // First pass: job 4 fails, the other five are journaled as ok.
  const sim::RunReport first =
      runner.run_contained(poisonable_grid(trace, 4), options);
  ASSERT_EQ(first.failures.size(), 1u);
  EXPECT_EQ(first.resumed, 0u);

  // Second pass with the poison removed: the five ok jobs are restored from
  // the journal (no recompute, null hierarchy), only job 4 runs.
  const sim::RunReport second =
      runner.run_contained(poisonable_grid(trace, -1), options);
  EXPECT_TRUE(second.all_ok());
  EXPECT_EQ(second.resumed, 5u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(second.results[i].ok);
    if (i == 4) {
      EXPECT_NE(second.results[i].hierarchy, nullptr) << "job 4 must re-run";
    } else {
      EXPECT_EQ(second.results[i].hierarchy, nullptr) << "job " << i
          << " must come from the journal";
    }
  }

  // Restored counters are bit-identical to a fresh uncontained run.
  const auto fresh = runner.run(poisonable_grid(trace, -1), /*quiet=*/true);
  for (std::size_t i = 0; i < 6; ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(second.results[i].run.core.cycles, fresh[i].run.core.cycles);
    EXPECT_EQ(second.results[i].run.core.committed, fresh[i].run.core.committed);
    EXPECT_EQ(second.results[i].run.hierarchy.l1_misses,
              fresh[i].run.hierarchy.l1_misses);
    EXPECT_EQ(second.results[i].run.hierarchy.traffic.half_units(),
              fresh[i].run.hierarchy.traffic.half_units());
  }

  // Third pass: everything restores, nothing runs.
  const sim::RunReport third =
      runner.run_contained(poisonable_grid(trace, -1), options);
  EXPECT_EQ(third.resumed, 6u);
  std::remove(path.c_str());
}

TEST(ContainedSweep, JournalFromDifferentGridRestoresNothing) {
  const std::string path = ::testing::TempDir() + "/cpc_sweep_grid.journal";
  std::remove(path.c_str());
  const auto trace = small_trace();

  const sim::SweepRunner runner(2);
  sim::RunOptions options;
  options.quiet = true;
  options.journal_path = path;
  const sim::RunReport first =
      runner.run_contained(poisonable_grid(trace, -1), options);
  EXPECT_TRUE(first.all_ok());

  // A different grid (different tags) must ignore the stale journal.
  std::vector<sim::Job> other = poisonable_grid(trace, -1);
  for (auto& job : other) job.tag += "-renamed";
  const sim::RunReport second = runner.run_contained(std::move(other), options);
  EXPECT_EQ(second.resumed, 0u);
  EXPECT_TRUE(second.all_ok());
  std::remove(path.c_str());
}

TEST(SweepJournal, FingerprintSeparatesGrids) {
  const auto trace = small_trace();
  const auto a = poisonable_grid(trace, -1);
  auto b = poisonable_grid(trace, -1);
  b[5].tag = "different";
  EXPECT_NE(sim::grid_fingerprint(a), sim::grid_fingerprint(b));
  EXPECT_EQ(sim::grid_fingerprint(a),
            sim::grid_fingerprint(poisonable_grid(trace, -1)));
}

TEST(SweepJournal, TruncatedTrailingLineIsIgnored) {
  const std::string path = ::testing::TempDir() + "/cpc_truncated.journal";
  std::remove(path.c_str());
  const auto trace = small_trace();
  const auto jobs = poisonable_grid(trace, -1);
  const std::uint64_t fp = sim::grid_fingerprint(jobs);

  const sim::SweepRunner runner(1);
  sim::RunOptions options;
  options.quiet = true;
  options.journal_path = path;
  runner.run_contained(poisonable_grid(trace, -1), options);

  // Chop the file mid-line: the journal must still restore the intact prefix.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 40u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 25));
  out.close();

  const auto restored = sim::SweepJournal::load(path, fp, jobs.size());
  EXPECT_TRUE(restored.header_matched);
  EXPECT_GE(restored.restored_ok, 1u);
  EXPECT_LT(restored.restored_ok, jobs.size());
  std::remove(path.c_str());
}

TEST(ContainedSweep, RetryHistoryPreservesTheRootCause) {
  // Regression: a job that fails differently on retry must keep the FIRST
  // attempt's error as `what` (the root cause), with every attempt in
  // `history` — the retry's message used to overwrite the original.
  const auto trace = small_trace();
  auto calls = std::make_shared<std::atomic<int>>(0);
  std::vector<sim::Job> jobs = poisonable_grid(trace, -1);
  jobs[1].make_hierarchy = [calls]() -> std::unique_ptr<cache::MemoryHierarchy> {
    if (calls->fetch_add(1) == 0) throw std::runtime_error("first cause");
    throw std::runtime_error("second cause");
  };
  const sim::SweepRunner runner(2);
  sim::RunOptions options;
  options.quiet = true;
  options.retries = 1;
  const sim::RunReport report = runner.run_contained(std::move(jobs), options);
  ASSERT_EQ(report.failures.size(), 1u);
  const sim::JobFailure& failure = report.failures[0];
  EXPECT_EQ(failure.what, "first cause");
  EXPECT_EQ(failure.attempts, 2u);
  ASSERT_EQ(failure.history.size(), 2u);
  EXPECT_EQ(failure.history[0].what, "first cause");
  EXPECT_EQ(failure.history[1].what, "second cause");
}

TEST(TraceCache, SharesOneGenerationPerKey) {
  sim::TraceCache cache;
  const workload::Workload& wl = workload::find_workload("olden.treeadd");
  const auto a = cache.get(wl, 2'000, 1);
  const auto b = cache.get(wl, 2'000, 1);
  EXPECT_EQ(a.get(), b.get());  // same instance, not a regeneration

  const auto different_seed = cache.get(wl, 2'000, 2);
  EXPECT_NE(a.get(), different_seed.get());
  const auto different_ops = cache.get(wl, 3'000, 1);
  EXPECT_NE(a.get(), different_ops.get());
}

void expect_same_trace(const cpu::Trace& a, const cpu::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].pc, b[i].pc) << "op " << i;
    ASSERT_EQ(a[i].addr, b[i].addr) << "op " << i;
    ASSERT_EQ(a[i].value, b[i].value) << "op " << i;
    ASSERT_EQ(a[i].kind, b[i].kind) << "op " << i;
  }
}

TEST(TraceCache, OverflowDemotesToCompressedTierAndDecodesOnDemand) {
  // Size the budget from the actual footprints (generators overshoot the
  // requested op count): big enough for one decoded trace plus both
  // compressed sidecars, too small for two decoded traces — so the second
  // insertion must demote the first to the compressed tier, not drop it.
  const workload::Workload& treeadd = workload::find_workload("olden.treeadd");
  const workload::Workload& health = workload::find_workload("olden.health");
  const cpu::Trace gen_tree = workload::generate(treeadd, {2'000, 1});
  const cpu::Trace gen_health = workload::generate(health, {2'000, 1});
  const std::size_t decoded_tree = gen_tree.size() * sizeof(cpu::MicroOp);
  const std::size_t decoded_health = gen_health.size() * sizeof(cpu::MicroOp);
  const std::size_t blobs = sim::trace_codec::compress(gen_tree).size() +
                            sim::trace_codec::compress(gen_health).size();
  sim::TraceCache cache(decoded_health + blobs + decoded_tree / 2);

  const auto first = cache.get(treeadd, 2'000, 1);
  cache.get(health, 2'000, 1);
  sim::TraceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_GE(stats.evictions, 1u) << "budget overflow must demote, not grow";
  EXPECT_LE(stats.decoded_bytes, cache.capacity_bytes());

  // The demoted trace is served by decoding the blob — not regenerated —
  // and must be bit-identical to the original generation.
  const auto again = cache.get(treeadd, 2'000, 1);
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u) << "a demoted entry must not regenerate";
  EXPECT_GE(stats.compressed_hits, 1u);
  expect_same_trace(*first, *again);
  expect_same_trace(*again, gen_tree);
}

TEST(TraceCache, ImpossiblyTightBudgetDropsEntriesAndRegenerates) {
  // One byte of budget: nothing fits even compressed, so entries are dropped
  // wholesale (compressed_evictions) and the next request is a fresh miss —
  // the degenerate configuration must degrade, never deadlock or grow.
  sim::TraceCache cache(/*capacity_bytes=*/1);
  const workload::Workload& wl = workload::find_workload("olden.treeadd");
  const auto a = cache.get(wl, 2'000, 1);
  const auto b = cache.get(wl, 2'000, 1);
  const sim::TraceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_GE(stats.compressed_evictions, 1u);
  expect_same_trace(*a, *b);
}

TEST(TraceCache, ZeroCapacityDisablesTheBound) {
  sim::TraceCache cache(/*capacity_bytes=*/0);
  const workload::Workload& treeadd = workload::find_workload("olden.treeadd");
  const workload::Workload& health = workload::find_workload("olden.health");
  cache.get(treeadd, 2'000, 1);
  cache.get(health, 2'000, 1);
  cache.get(treeadd, 2'000, 1);
  const sim::TraceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.compressed_evictions, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(TraceCache, CapacityComesFromTheEnvironment) {
  ASSERT_EQ(setenv("CPC_TRACE_CACHE_MB", "64", 1), 0);
  EXPECT_EQ(sim::TraceCache::capacity_from_env(), 64ull << 20);
  ASSERT_EQ(setenv("CPC_TRACE_CACHE_MB", "0", 1), 0);
  EXPECT_EQ(sim::TraceCache::capacity_from_env(), 0u);
  ASSERT_EQ(setenv("CPC_TRACE_CACHE_MB", "garbage", 1), 0);
  EXPECT_EQ(sim::TraceCache::capacity_from_env(), 512ull << 20);
  ASSERT_EQ(unsetenv("CPC_TRACE_CACHE_MB"), 0);
  EXPECT_EQ(sim::TraceCache::capacity_from_env(), 512ull << 20);
}

TEST(TraceCache, SweepReportCarriesTheCacheStats) {
  const sim::SweepRunner runner(2);
  sim::RunOptions options;
  options.quiet = true;
  const sim::RunReport report =
      runner.run_contained(fig10_style_grid(2'000), options);
  ASSERT_TRUE(report.all_ok());
  // Two workloads × five configs: two generations, eight dedup hits.
  EXPECT_EQ(report.trace_cache.misses, 2u);
  EXPECT_EQ(report.trace_cache.hits + report.trace_cache.compressed_hits, 8u);
}

}  // namespace
}  // namespace cpc
