// SweepRunner: the parallel batching layer must be bit-identical to a
// serial run at any thread count, must propagate job exceptions, and must
// honour the CPC_JOBS override.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/job.hpp"
#include "sim/sweep_runner.hpp"
#include "workload/workloads.hpp"

namespace cpc {
namespace {

// A fig10-style grid: every paper configuration over a couple of workloads.
std::vector<sim::Job> fig10_style_grid(std::uint64_t trace_ops) {
  std::vector<sim::Job> jobs;
  for (const char* name : {"olden.treeadd", "olden.health"}) {
    const workload::Workload& wl = workload::find_workload(name);
    for (sim::ConfigKind kind : sim::kAllConfigs) {
      jobs.push_back(sim::make_config_job(wl, trace_ops, 0x5eed, kind));
    }
  }
  return jobs;
}

void expect_identical(const sim::JobResult& a, const sim::JobResult& b) {
  SCOPED_TRACE("job " + std::to_string(a.index) + " (" + a.tag + ")");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.tag, b.tag);
  EXPECT_EQ(a.run.config, b.run.config);
  EXPECT_EQ(a.run.core.cycles, b.run.core.cycles);
  EXPECT_EQ(a.run.core.committed, b.run.core.committed);
  EXPECT_EQ(a.run.core.loads, b.run.core.loads);
  EXPECT_EQ(a.run.core.stores, b.run.core.stores);
  EXPECT_EQ(a.run.core.branches, b.run.core.branches);
  EXPECT_EQ(a.run.core.mispredicts, b.run.core.mispredicts);
  EXPECT_EQ(a.run.core.miss_cycles, b.run.core.miss_cycles);
  EXPECT_EQ(a.run.core.ready_sum_miss_cycles, b.run.core.ready_sum_miss_cycles);
  EXPECT_EQ(a.run.core.ready_sum_all_cycles, b.run.core.ready_sum_all_cycles);
  EXPECT_EQ(a.run.core.ops_depending_on_miss, b.run.core.ops_depending_on_miss);
  EXPECT_EQ(a.run.core.value_mismatches, b.run.core.value_mismatches);
  EXPECT_EQ(a.run.hierarchy.reads, b.run.hierarchy.reads);
  EXPECT_EQ(a.run.hierarchy.writes, b.run.hierarchy.writes);
  EXPECT_EQ(a.run.hierarchy.l1_misses, b.run.hierarchy.l1_misses);
  EXPECT_EQ(a.run.hierarchy.l2_misses, b.run.hierarchy.l2_misses);
  EXPECT_EQ(a.run.hierarchy.l1_affiliated_hits, b.run.hierarchy.l1_affiliated_hits);
  EXPECT_EQ(a.run.hierarchy.l2_affiliated_hits, b.run.hierarchy.l2_affiliated_hits);
  EXPECT_EQ(a.run.hierarchy.l1_pbuf_hits, b.run.hierarchy.l1_pbuf_hits);
  EXPECT_EQ(a.run.hierarchy.l2_pbuf_hits, b.run.hierarchy.l2_pbuf_hits);
  EXPECT_EQ(a.run.hierarchy.traffic.half_units(), b.run.hierarchy.traffic.half_units());
}

TEST(SweepRunner, ParallelRunBitIdenticalToSerial) {
  const sim::SweepRunner serial(1);
  const sim::SweepRunner parallel(4);
  const auto base = serial.run(fig10_style_grid(20'000), /*quiet=*/true);
  const auto wide = parallel.run(fig10_style_grid(20'000), /*quiet=*/true);

  ASSERT_EQ(base.size(), wide.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    expect_identical(base[i], wide[i]);
  }
}

TEST(SweepRunner, ResultsArriveInJobIndexOrder) {
  const sim::SweepRunner runner(4);
  const auto results = runner.run(fig10_style_grid(5'000), /*quiet=*/true);
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].tag,
              sim::config_name(sim::kAllConfigs[i % std::size(sim::kAllConfigs)]));
    EXPECT_NE(results[i].hierarchy, nullptr);
    EXPECT_GT(results[i].run.core.cycles, 0u);
  }
}

TEST(SweepRunner, ExternalTraceJobsSkipGeneration) {
  // Jobs carrying a pre-recorded trace replay it directly.
  const auto trace = std::make_shared<const cpu::Trace>(workload::generate(
      workload::find_workload("olden.treeadd"), {5'000, 0x5eed}));
  std::vector<sim::Job> jobs;
  for (sim::ConfigKind kind : sim::kAllConfigs) {
    sim::Job job;
    job.trace = trace;
    job.make_hierarchy = [kind] { return sim::make_hierarchy(kind); };
    job.tag = sim::config_name(kind);
    jobs.push_back(std::move(job));
  }
  const sim::SweepRunner runner(2);
  const auto results = runner.run(std::move(jobs), /*quiet=*/true);
  ASSERT_EQ(results.size(), std::size(sim::kAllConfigs));
  for (const sim::JobResult& result : results) {
    EXPECT_EQ(result.run.core.value_mismatches, 0u);
    EXPECT_GT(result.run.core.committed, 0u);
  }
}

TEST(SweepRunner, JobExceptionPropagatesAndPoolSurvives) {
  const auto trace = std::make_shared<const cpu::Trace>();
  const auto make_jobs = [&](bool poison) {
    std::vector<sim::Job> jobs;
    for (int i = 0; i < 6; ++i) {
      sim::Job job;
      job.trace = trace;
      job.tag = "job" + std::to_string(i);
      if (poison && i == 3) {
        job.make_hierarchy = []() -> std::unique_ptr<cache::MemoryHierarchy> {
          throw std::runtime_error("hierarchy construction failed");
        };
      } else {
        job.make_hierarchy = [] {
          return sim::make_hierarchy(sim::ConfigKind::kBC);
        };
      }
      jobs.push_back(std::move(job));
    }
    return jobs;
  };

  const sim::SweepRunner runner(3);
  EXPECT_THROW(
      {
        try {
          runner.run(make_jobs(/*poison=*/true), /*quiet=*/true);
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "hierarchy construction failed");
          throw;
        }
      },
      std::runtime_error);

  // The runner holds no poisoned state: a clean batch still runs.
  const auto results = runner.run(make_jobs(/*poison=*/false), /*quiet=*/true);
  EXPECT_EQ(results.size(), 6u);
}

TEST(SweepRunner, ParallelForWritesEveryIndexExactlyOnce) {
  const sim::SweepRunner runner(4);
  std::vector<int> hits(257, 0);
  std::atomic<int> calls{0};
  runner.parallel_for(hits.size(), [&](std::size_t i) {
    ++hits[i];
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 257);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(SweepRunner, CpcJobsEnvOverridesThreadCount) {
  ASSERT_EQ(setenv("CPC_JOBS", "1", 1), 0);
  EXPECT_EQ(sim::default_job_count(), 1u);
  EXPECT_EQ(sim::SweepRunner().threads(), 1u);

  ASSERT_EQ(setenv("CPC_JOBS", "7", 1), 0);
  EXPECT_EQ(sim::default_job_count(), 7u);
  EXPECT_EQ(sim::SweepRunner().threads(), 7u);

  // Explicit constructor argument wins over the environment.
  EXPECT_EQ(sim::SweepRunner(2).threads(), 2u);

  // Garbage and zero fall back to hardware concurrency (at least one).
  ASSERT_EQ(setenv("CPC_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(sim::default_job_count(), 1u);
  ASSERT_EQ(setenv("CPC_JOBS", "0", 1), 0);
  EXPECT_GE(sim::default_job_count(), 1u);

  ASSERT_EQ(unsetenv("CPC_JOBS"), 0);
  EXPECT_GE(sim::default_job_count(), 1u);
}

TEST(SweepRunner, Cpc_Jobs1_RunMatchesDefaultRun) {
  // CPC_JOBS=1 must not change results, only scheduling.
  ASSERT_EQ(setenv("CPC_JOBS", "1", 1), 0);
  const auto serial = sim::SweepRunner().run(fig10_style_grid(5'000), true);
  ASSERT_EQ(unsetenv("CPC_JOBS"), 0);
  const auto parallel = sim::SweepRunner(3).run(fig10_style_grid(5'000), true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(TraceCache, SharesOneGenerationPerKey) {
  sim::TraceCache cache;
  const workload::Workload& wl = workload::find_workload("olden.treeadd");
  const auto a = cache.get(wl, 2'000, 1);
  const auto b = cache.get(wl, 2'000, 1);
  EXPECT_EQ(a.get(), b.get());  // same instance, not a regeneration

  const auto different_seed = cache.get(wl, 2'000, 2);
  EXPECT_NE(a.get(), different_seed.get());
  const auto different_ops = cache.get(wl, 3'000, 1);
  EXPECT_NE(a.get(), different_ops.get());
}

}  // namespace
}  // namespace cpc
