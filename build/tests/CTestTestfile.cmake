# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_basic_cache[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchies[1]_include.cmake")
include("/root/repo/build/tests/test_cpp_cache[1]_include.cmake")
include("/root/repo/build/tests/test_cpp_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_ooo_core[1]_include.cmake")
include("/root/repo/build/tests/test_trace_recorder[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_characterization[1]_include.cmake")
include("/root/repo/build/tests/test_cpp_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_comparators[1]_include.cmake")
include("/root/repo/build/tests/test_line_compression[1]_include.cmake")
include("/root/repo/build/tests/test_core_stats[1]_include.cmake")
include("/root/repo/build/tests/test_compress_boundaries[1]_include.cmake")
