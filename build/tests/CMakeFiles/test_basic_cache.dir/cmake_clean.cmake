file(REMOVE_RECURSE
  "CMakeFiles/test_basic_cache.dir/test_basic_cache.cpp.o"
  "CMakeFiles/test_basic_cache.dir/test_basic_cache.cpp.o.d"
  "test_basic_cache"
  "test_basic_cache.pdb"
  "test_basic_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_basic_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
