# Empty dependencies file for test_basic_cache.
# This may be replaced when dependencies are built.
