file(REMOVE_RECURSE
  "CMakeFiles/test_line_compression.dir/test_line_compression.cpp.o"
  "CMakeFiles/test_line_compression.dir/test_line_compression.cpp.o.d"
  "test_line_compression"
  "test_line_compression.pdb"
  "test_line_compression[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_line_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
