# Empty dependencies file for test_line_compression.
# This may be replaced when dependencies are built.
