file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchies.dir/test_hierarchies.cpp.o"
  "CMakeFiles/test_hierarchies.dir/test_hierarchies.cpp.o.d"
  "test_hierarchies"
  "test_hierarchies.pdb"
  "test_hierarchies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
