# Empty compiler generated dependencies file for test_hierarchies.
# This may be replaced when dependencies are built.
