file(REMOVE_RECURSE
  "CMakeFiles/test_cpp_geometry.dir/test_cpp_geometry.cpp.o"
  "CMakeFiles/test_cpp_geometry.dir/test_cpp_geometry.cpp.o.d"
  "test_cpp_geometry"
  "test_cpp_geometry.pdb"
  "test_cpp_geometry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpp_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
