file(REMOVE_RECURSE
  "CMakeFiles/test_cpp_hierarchy.dir/test_cpp_hierarchy.cpp.o"
  "CMakeFiles/test_cpp_hierarchy.dir/test_cpp_hierarchy.cpp.o.d"
  "test_cpp_hierarchy"
  "test_cpp_hierarchy.pdb"
  "test_cpp_hierarchy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpp_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
