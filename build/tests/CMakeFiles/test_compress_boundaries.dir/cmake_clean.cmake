file(REMOVE_RECURSE
  "CMakeFiles/test_compress_boundaries.dir/test_compress_boundaries.cpp.o"
  "CMakeFiles/test_compress_boundaries.dir/test_compress_boundaries.cpp.o.d"
  "test_compress_boundaries"
  "test_compress_boundaries.pdb"
  "test_compress_boundaries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compress_boundaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
