# Empty dependencies file for test_compress_boundaries.
# This may be replaced when dependencies are built.
