file(REMOVE_RECURSE
  "CMakeFiles/test_cpp_cache.dir/test_cpp_cache.cpp.o"
  "CMakeFiles/test_cpp_cache.dir/test_cpp_cache.cpp.o.d"
  "test_cpp_cache"
  "test_cpp_cache.pdb"
  "test_cpp_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
