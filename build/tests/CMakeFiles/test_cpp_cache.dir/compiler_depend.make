# Empty compiler generated dependencies file for test_cpp_cache.
# This may be replaced when dependencies are built.
