file(REMOVE_RECURSE
  "CMakeFiles/rel_comparators.dir/rel_comparators.cpp.o"
  "CMakeFiles/rel_comparators.dir/rel_comparators.cpp.o.d"
  "rel_comparators"
  "rel_comparators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_comparators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
