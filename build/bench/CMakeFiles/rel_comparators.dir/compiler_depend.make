# Empty compiler generated dependencies file for rel_comparators.
# This may be replaced when dependencies are built.
