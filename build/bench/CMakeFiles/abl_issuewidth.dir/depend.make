# Empty dependencies file for abl_issuewidth.
# This may be replaced when dependencies are built.
