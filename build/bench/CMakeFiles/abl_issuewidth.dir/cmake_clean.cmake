file(REMOVE_RECURSE
  "CMakeFiles/abl_issuewidth.dir/abl_issuewidth.cpp.o"
  "CMakeFiles/abl_issuewidth.dir/abl_issuewidth.cpp.o.d"
  "abl_issuewidth"
  "abl_issuewidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_issuewidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
