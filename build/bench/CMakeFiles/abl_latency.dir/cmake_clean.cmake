file(REMOVE_RECURSE
  "CMakeFiles/abl_latency.dir/abl_latency.cpp.o"
  "CMakeFiles/abl_latency.dir/abl_latency.cpp.o.d"
  "abl_latency"
  "abl_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
