file(REMOVE_RECURSE
  "CMakeFiles/abl_bufsize.dir/abl_bufsize.cpp.o"
  "CMakeFiles/abl_bufsize.dir/abl_bufsize.cpp.o.d"
  "abl_bufsize"
  "abl_bufsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bufsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
