# Empty dependencies file for abl_bufsize.
# This may be replaced when dependencies are built.
