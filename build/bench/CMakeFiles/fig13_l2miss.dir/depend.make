# Empty dependencies file for fig13_l2miss.
# This may be replaced when dependencies are built.
