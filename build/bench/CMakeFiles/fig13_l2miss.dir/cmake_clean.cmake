file(REMOVE_RECURSE
  "CMakeFiles/fig13_l2miss.dir/fig13_l2miss.cpp.o"
  "CMakeFiles/fig13_l2miss.dir/fig13_l2miss.cpp.o.d"
  "fig13_l2miss"
  "fig13_l2miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_l2miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
