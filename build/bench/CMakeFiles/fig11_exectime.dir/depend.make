# Empty dependencies file for fig11_exectime.
# This may be replaced when dependencies are built.
