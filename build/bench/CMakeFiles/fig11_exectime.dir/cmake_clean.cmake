file(REMOVE_RECURSE
  "CMakeFiles/fig11_exectime.dir/fig11_exectime.cpp.o"
  "CMakeFiles/fig11_exectime.dir/fig11_exectime.cpp.o.d"
  "fig11_exectime"
  "fig11_exectime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_exectime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
