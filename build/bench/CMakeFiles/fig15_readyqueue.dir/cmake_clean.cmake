file(REMOVE_RECURSE
  "CMakeFiles/fig15_readyqueue.dir/fig15_readyqueue.cpp.o"
  "CMakeFiles/fig15_readyqueue.dir/fig15_readyqueue.cpp.o.d"
  "fig15_readyqueue"
  "fig15_readyqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_readyqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
