# Empty compiler generated dependencies file for fig15_readyqueue.
# This may be replaced when dependencies are built.
