file(REMOVE_RECURSE
  "CMakeFiles/fig09_config.dir/fig09_config.cpp.o"
  "CMakeFiles/fig09_config.dir/fig09_config.cpp.o.d"
  "fig09_config"
  "fig09_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
