file(REMOVE_RECURSE
  "CMakeFiles/fig14_importance.dir/fig14_importance.cpp.o"
  "CMakeFiles/fig14_importance.dir/fig14_importance.cpp.o.d"
  "fig14_importance"
  "fig14_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
