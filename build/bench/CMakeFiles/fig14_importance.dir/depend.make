# Empty dependencies file for fig14_importance.
# This may be replaced when dependencies are built.
