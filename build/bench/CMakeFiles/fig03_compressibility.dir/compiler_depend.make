# Empty compiler generated dependencies file for fig03_compressibility.
# This may be replaced when dependencies are built.
