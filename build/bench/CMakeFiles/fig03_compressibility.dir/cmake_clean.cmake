file(REMOVE_RECURSE
  "CMakeFiles/fig03_compressibility.dir/fig03_compressibility.cpp.o"
  "CMakeFiles/fig03_compressibility.dir/fig03_compressibility.cpp.o.d"
  "fig03_compressibility"
  "fig03_compressibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_compressibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
