# Empty compiler generated dependencies file for abl_mask.
# This may be replaced when dependencies are built.
