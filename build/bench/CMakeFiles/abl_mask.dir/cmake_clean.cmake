file(REMOVE_RECURSE
  "CMakeFiles/abl_mask.dir/abl_mask.cpp.o"
  "CMakeFiles/abl_mask.dir/abl_mask.cpp.o.d"
  "abl_mask"
  "abl_mask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
