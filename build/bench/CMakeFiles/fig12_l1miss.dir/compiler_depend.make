# Empty compiler generated dependencies file for fig12_l1miss.
# This may be replaced when dependencies are built.
