file(REMOVE_RECURSE
  "CMakeFiles/fig12_l1miss.dir/fig12_l1miss.cpp.o"
  "CMakeFiles/fig12_l1miss.dir/fig12_l1miss.cpp.o.d"
  "fig12_l1miss"
  "fig12_l1miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_l1miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
