# Empty compiler generated dependencies file for abl_levels.
# This may be replaced when dependencies are built.
