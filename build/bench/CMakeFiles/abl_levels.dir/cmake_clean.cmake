file(REMOVE_RECURSE
  "CMakeFiles/abl_levels.dir/abl_levels.cpp.o"
  "CMakeFiles/abl_levels.dir/abl_levels.cpp.o.d"
  "abl_levels"
  "abl_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
