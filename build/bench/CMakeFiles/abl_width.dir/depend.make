# Empty dependencies file for abl_width.
# This may be replaced when dependencies are built.
