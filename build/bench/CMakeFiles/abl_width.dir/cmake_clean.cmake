file(REMOVE_RECURSE
  "CMakeFiles/abl_width.dir/abl_width.cpp.o"
  "CMakeFiles/abl_width.dir/abl_width.cpp.o.d"
  "abl_width"
  "abl_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
