# Empty dependencies file for abl_missclass.
# This may be replaced when dependencies are built.
