file(REMOVE_RECURSE
  "CMakeFiles/abl_missclass.dir/abl_missclass.cpp.o"
  "CMakeFiles/abl_missclass.dir/abl_missclass.cpp.o.d"
  "abl_missclass"
  "abl_missclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_missclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
