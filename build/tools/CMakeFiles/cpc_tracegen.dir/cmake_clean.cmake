file(REMOVE_RECURSE
  "CMakeFiles/cpc_tracegen.dir/cpc_tracegen.cpp.o"
  "CMakeFiles/cpc_tracegen.dir/cpc_tracegen.cpp.o.d"
  "cpc_tracegen"
  "cpc_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpc_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
