# Empty compiler generated dependencies file for cpc_tracegen.
# This may be replaced when dependencies are built.
