# Empty compiler generated dependencies file for cpc_run.
# This may be replaced when dependencies are built.
