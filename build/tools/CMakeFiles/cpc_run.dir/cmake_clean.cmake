file(REMOVE_RECURSE
  "CMakeFiles/cpc_run.dir/cpc_run.cpp.o"
  "CMakeFiles/cpc_run.dir/cpc_run.cpp.o.d"
  "cpc_run"
  "cpc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
