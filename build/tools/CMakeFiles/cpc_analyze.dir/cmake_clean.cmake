file(REMOVE_RECURSE
  "CMakeFiles/cpc_analyze.dir/cpc_analyze.cpp.o"
  "CMakeFiles/cpc_analyze.dir/cpc_analyze.cpp.o.d"
  "cpc_analyze"
  "cpc_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpc_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
