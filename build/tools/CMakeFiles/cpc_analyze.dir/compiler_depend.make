# Empty compiler generated dependencies file for cpc_analyze.
# This may be replaced when dependencies are built.
