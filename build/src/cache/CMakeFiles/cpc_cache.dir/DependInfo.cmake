
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/baseline_hierarchy.cpp" "src/cache/CMakeFiles/cpc_cache.dir/baseline_hierarchy.cpp.o" "gcc" "src/cache/CMakeFiles/cpc_cache.dir/baseline_hierarchy.cpp.o.d"
  "/root/repo/src/cache/basic_cache.cpp" "src/cache/CMakeFiles/cpc_cache.dir/basic_cache.cpp.o" "gcc" "src/cache/CMakeFiles/cpc_cache.dir/basic_cache.cpp.o.d"
  "/root/repo/src/cache/line_compression_hierarchy.cpp" "src/cache/CMakeFiles/cpc_cache.dir/line_compression_hierarchy.cpp.o" "gcc" "src/cache/CMakeFiles/cpc_cache.dir/line_compression_hierarchy.cpp.o.d"
  "/root/repo/src/cache/prefetch_hierarchy.cpp" "src/cache/CMakeFiles/cpc_cache.dir/prefetch_hierarchy.cpp.o" "gcc" "src/cache/CMakeFiles/cpc_cache.dir/prefetch_hierarchy.cpp.o.d"
  "/root/repo/src/cache/pseudo_assoc_hierarchy.cpp" "src/cache/CMakeFiles/cpc_cache.dir/pseudo_assoc_hierarchy.cpp.o" "gcc" "src/cache/CMakeFiles/cpc_cache.dir/pseudo_assoc_hierarchy.cpp.o.d"
  "/root/repo/src/cache/victim_hierarchy.cpp" "src/cache/CMakeFiles/cpc_cache.dir/victim_hierarchy.cpp.o" "gcc" "src/cache/CMakeFiles/cpc_cache.dir/victim_hierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/cpc_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
