file(REMOVE_RECURSE
  "CMakeFiles/cpc_cache.dir/baseline_hierarchy.cpp.o"
  "CMakeFiles/cpc_cache.dir/baseline_hierarchy.cpp.o.d"
  "CMakeFiles/cpc_cache.dir/basic_cache.cpp.o"
  "CMakeFiles/cpc_cache.dir/basic_cache.cpp.o.d"
  "CMakeFiles/cpc_cache.dir/line_compression_hierarchy.cpp.o"
  "CMakeFiles/cpc_cache.dir/line_compression_hierarchy.cpp.o.d"
  "CMakeFiles/cpc_cache.dir/prefetch_hierarchy.cpp.o"
  "CMakeFiles/cpc_cache.dir/prefetch_hierarchy.cpp.o.d"
  "CMakeFiles/cpc_cache.dir/pseudo_assoc_hierarchy.cpp.o"
  "CMakeFiles/cpc_cache.dir/pseudo_assoc_hierarchy.cpp.o.d"
  "CMakeFiles/cpc_cache.dir/victim_hierarchy.cpp.o"
  "CMakeFiles/cpc_cache.dir/victim_hierarchy.cpp.o.d"
  "libcpc_cache.a"
  "libcpc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
