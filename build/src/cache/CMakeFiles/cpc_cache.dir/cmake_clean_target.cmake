file(REMOVE_RECURSE
  "libcpc_cache.a"
)
