# Empty compiler generated dependencies file for cpc_cache.
# This may be replaced when dependencies are built.
