# Empty dependencies file for cpc_analysis.
# This may be replaced when dependencies are built.
