file(REMOVE_RECURSE
  "libcpc_analysis.a"
)
