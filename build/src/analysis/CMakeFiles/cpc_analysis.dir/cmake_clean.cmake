file(REMOVE_RECURSE
  "CMakeFiles/cpc_analysis.dir/miss_classifier.cpp.o"
  "CMakeFiles/cpc_analysis.dir/miss_classifier.cpp.o.d"
  "CMakeFiles/cpc_analysis.dir/reuse_distance.cpp.o"
  "CMakeFiles/cpc_analysis.dir/reuse_distance.cpp.o.d"
  "libcpc_analysis.a"
  "libcpc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
