file(REMOVE_RECURSE
  "CMakeFiles/cpc_workload.dir/olden_graphs.cpp.o"
  "CMakeFiles/cpc_workload.dir/olden_graphs.cpp.o.d"
  "CMakeFiles/cpc_workload.dir/olden_lists.cpp.o"
  "CMakeFiles/cpc_workload.dir/olden_lists.cpp.o.d"
  "CMakeFiles/cpc_workload.dir/olden_trees.cpp.o"
  "CMakeFiles/cpc_workload.dir/olden_trees.cpp.o.d"
  "CMakeFiles/cpc_workload.dir/registry.cpp.o"
  "CMakeFiles/cpc_workload.dir/registry.cpp.o.d"
  "CMakeFiles/cpc_workload.dir/spec2000.cpp.o"
  "CMakeFiles/cpc_workload.dir/spec2000.cpp.o.d"
  "CMakeFiles/cpc_workload.dir/spec95.cpp.o"
  "CMakeFiles/cpc_workload.dir/spec95.cpp.o.d"
  "CMakeFiles/cpc_workload.dir/trace_recorder.cpp.o"
  "CMakeFiles/cpc_workload.dir/trace_recorder.cpp.o.d"
  "libcpc_workload.a"
  "libcpc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
