# Empty dependencies file for cpc_workload.
# This may be replaced when dependencies are built.
