file(REMOVE_RECURSE
  "libcpc_workload.a"
)
