
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/olden_graphs.cpp" "src/workload/CMakeFiles/cpc_workload.dir/olden_graphs.cpp.o" "gcc" "src/workload/CMakeFiles/cpc_workload.dir/olden_graphs.cpp.o.d"
  "/root/repo/src/workload/olden_lists.cpp" "src/workload/CMakeFiles/cpc_workload.dir/olden_lists.cpp.o" "gcc" "src/workload/CMakeFiles/cpc_workload.dir/olden_lists.cpp.o.d"
  "/root/repo/src/workload/olden_trees.cpp" "src/workload/CMakeFiles/cpc_workload.dir/olden_trees.cpp.o" "gcc" "src/workload/CMakeFiles/cpc_workload.dir/olden_trees.cpp.o.d"
  "/root/repo/src/workload/registry.cpp" "src/workload/CMakeFiles/cpc_workload.dir/registry.cpp.o" "gcc" "src/workload/CMakeFiles/cpc_workload.dir/registry.cpp.o.d"
  "/root/repo/src/workload/spec2000.cpp" "src/workload/CMakeFiles/cpc_workload.dir/spec2000.cpp.o" "gcc" "src/workload/CMakeFiles/cpc_workload.dir/spec2000.cpp.o.d"
  "/root/repo/src/workload/spec95.cpp" "src/workload/CMakeFiles/cpc_workload.dir/spec95.cpp.o" "gcc" "src/workload/CMakeFiles/cpc_workload.dir/spec95.cpp.o.d"
  "/root/repo/src/workload/trace_recorder.cpp" "src/workload/CMakeFiles/cpc_workload.dir/trace_recorder.cpp.o" "gcc" "src/workload/CMakeFiles/cpc_workload.dir/trace_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/cpc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cpc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/cpc_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
