file(REMOVE_RECURSE
  "libcpc_compress.a"
)
