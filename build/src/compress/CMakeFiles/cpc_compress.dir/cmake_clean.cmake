file(REMOVE_RECURSE
  "CMakeFiles/cpc_compress.dir/scheme.cpp.o"
  "CMakeFiles/cpc_compress.dir/scheme.cpp.o.d"
  "libcpc_compress.a"
  "libcpc_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpc_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
