# Empty compiler generated dependencies file for cpc_compress.
# This may be replaced when dependencies are built.
