file(REMOVE_RECURSE
  "libcpc_core.a"
)
