file(REMOVE_RECURSE
  "CMakeFiles/cpc_core.dir/cpp_cache.cpp.o"
  "CMakeFiles/cpc_core.dir/cpp_cache.cpp.o.d"
  "CMakeFiles/cpc_core.dir/cpp_hierarchy.cpp.o"
  "CMakeFiles/cpc_core.dir/cpp_hierarchy.cpp.o.d"
  "libcpc_core.a"
  "libcpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
