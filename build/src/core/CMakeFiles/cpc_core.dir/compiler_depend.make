# Empty compiler generated dependencies file for cpc_core.
# This may be replaced when dependencies are built.
