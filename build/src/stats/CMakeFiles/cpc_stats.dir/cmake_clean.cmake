file(REMOVE_RECURSE
  "CMakeFiles/cpc_stats.dir/table.cpp.o"
  "CMakeFiles/cpc_stats.dir/table.cpp.o.d"
  "libcpc_stats.a"
  "libcpc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
