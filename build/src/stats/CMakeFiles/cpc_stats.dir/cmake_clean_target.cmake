file(REMOVE_RECURSE
  "libcpc_stats.a"
)
