# Empty dependencies file for cpc_stats.
# This may be replaced when dependencies are built.
