file(REMOVE_RECURSE
  "libcpc_sim.a"
)
