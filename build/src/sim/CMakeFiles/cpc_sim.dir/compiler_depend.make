# Empty compiler generated dependencies file for cpc_sim.
# This may be replaced when dependencies are built.
