file(REMOVE_RECURSE
  "CMakeFiles/cpc_sim.dir/experiment.cpp.o"
  "CMakeFiles/cpc_sim.dir/experiment.cpp.o.d"
  "libcpc_sim.a"
  "libcpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
