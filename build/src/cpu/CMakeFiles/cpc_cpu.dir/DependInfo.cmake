
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/ooo_core.cpp" "src/cpu/CMakeFiles/cpc_cpu.dir/ooo_core.cpp.o" "gcc" "src/cpu/CMakeFiles/cpc_cpu.dir/ooo_core.cpp.o.d"
  "/root/repo/src/cpu/trace_io.cpp" "src/cpu/CMakeFiles/cpc_cpu.dir/trace_io.cpp.o" "gcc" "src/cpu/CMakeFiles/cpc_cpu.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/cpc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/cpc_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
