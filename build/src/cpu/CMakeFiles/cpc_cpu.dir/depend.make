# Empty dependencies file for cpc_cpu.
# This may be replaced when dependencies are built.
