file(REMOVE_RECURSE
  "CMakeFiles/cpc_cpu.dir/ooo_core.cpp.o"
  "CMakeFiles/cpc_cpu.dir/ooo_core.cpp.o.d"
  "CMakeFiles/cpc_cpu.dir/trace_io.cpp.o"
  "CMakeFiles/cpc_cpu.dir/trace_io.cpp.o.d"
  "libcpc_cpu.a"
  "libcpc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
