file(REMOVE_RECURSE
  "libcpc_cpu.a"
)
