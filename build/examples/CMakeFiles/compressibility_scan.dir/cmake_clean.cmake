file(REMOVE_RECURSE
  "CMakeFiles/compressibility_scan.dir/compressibility_scan.cpp.o"
  "CMakeFiles/compressibility_scan.dir/compressibility_scan.cpp.o.d"
  "compressibility_scan"
  "compressibility_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressibility_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
