# Empty dependencies file for compressibility_scan.
# This may be replaced when dependencies are built.
