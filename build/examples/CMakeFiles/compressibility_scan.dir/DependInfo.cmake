
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/compressibility_scan.cpp" "examples/CMakeFiles/compressibility_scan.dir/compressibility_scan.cpp.o" "gcc" "examples/CMakeFiles/compressibility_scan.dir/compressibility_scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cpc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cpc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cpc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cpc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/cpc_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
