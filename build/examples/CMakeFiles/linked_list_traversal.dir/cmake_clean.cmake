file(REMOVE_RECURSE
  "CMakeFiles/linked_list_traversal.dir/linked_list_traversal.cpp.o"
  "CMakeFiles/linked_list_traversal.dir/linked_list_traversal.cpp.o.d"
  "linked_list_traversal"
  "linked_list_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linked_list_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
