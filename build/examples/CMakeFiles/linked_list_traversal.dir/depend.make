# Empty dependencies file for linked_list_traversal.
# This may be replaced when dependencies are built.
