#!/bin/sh
# Short differential-fuzz smoke run for the regular test matrix:
#   1. a few seconds of property-based fuzzing must find zero divergences
#      across all five configurations;
#   2. the oracle acceptance path (--self-check) must catch a laundered
#      payload strike and shrink it to a <= 64-access reproducer.
# Usage: fuzz_smoke.sh <dir-with-cpc_fuzz> [budget-sec]
set -u

BIN="${1:?usage: fuzz_smoke.sh <tool-dir> [budget-sec]}"
BUDGET="${2:-5}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== cpc_fuzz smoke: ${BUDGET}s budget =="
if ! "$BIN/cpc_fuzz" --budget-sec "$BUDGET" --ops 1024 --out "$TMP/artifacts"; then
  echo "FAIL: fuzz run reported a divergence; artifacts:" >&2
  ls -l "$TMP/artifacts" >&2 || true
  exit 1
fi

echo "== cpc_fuzz oracle self-check =="
if ! "$BIN/cpc_fuzz" --self-check --seed 1 --ops 4096 --out "$TMP/corpus"; then
  echo "FAIL: oracle self-check did not catch/shrink the injected fault" >&2
  exit 1
fi

echo "fuzz smoke OK"
