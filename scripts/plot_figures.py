#!/usr/bin/env python3
"""Plot the reproduced figures from the CSV files the bench harnesses emit.

Usage:
    CPC_CSV=results ./build/bench/fig10_traffic     # writes results/*.csv
    python3 scripts/plot_figures.py results/        # writes results/*.png

Each CSV has a `benchmark` label column and one column per configuration,
exactly the layout of the paper's grouped-bar figures. Requires matplotlib.
"""

import csv
import pathlib
import sys


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    header, body = rows[0], rows[1:]
    labels = [r[0] for r in body]
    series = {
        name: [float(r[i]) if r[i] else float("nan") for r in body]
        for i, name in enumerate(header[1:], start=1)
    }
    return labels, series


def plot(path, out_dir):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    labels, series = load(path)
    n_groups, n_series = len(labels), len(series)
    width = 0.8 / max(n_series, 1)

    fig, ax = plt.subplots(figsize=(max(8, n_groups * 0.9), 4.5))
    for i, (name, values) in enumerate(series.items()):
        xs = [g + i * width for g in range(n_groups)]
        ax.bar(xs, values, width=width, label=name)
    ax.set_xticks([g + 0.4 - width / 2 for g in range(n_groups)])
    ax.set_xticklabels(labels, rotation=45, ha="right", fontsize=8)
    ax.set_title(path.stem.replace("_", " "))
    ax.legend(fontsize=8)
    ax.grid(axis="y", alpha=0.3)
    fig.tight_layout()
    out = out_dir / (path.stem + ".png")
    fig.savefig(out, dpi=150)
    plt.close(fig)
    print(f"wrote {out}")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    directory = pathlib.Path(sys.argv[1])
    csvs = sorted(directory.glob("*.csv"))
    if not csvs:
        print(f"no CSV files in {directory} — run benches with CPC_CSV={directory}")
        return 1
    for path in csvs:
        plot(path, directory)
    return 0


if __name__ == "__main__":
    sys.exit(main())
