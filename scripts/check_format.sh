#!/usr/bin/env bash
# clang-format dry-run over the C++ tree. Exits non-zero if any file needs
# reformatting (CI runs this as a non-blocking, advisory step).
#
#   ./scripts/check_format.sh          # check, list offending files
#   ./scripts/check_format.sh --fix    # reformat in place

set -u
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "error: clang-format not found on PATH (apt-get install clang-format)" >&2
  exit 2
fi

mapfile -t files < <(find src tests bench tools examples \
  -name '*.cpp' -o -name '*.hpp' | sort)

if [[ "${1:-}" == "--fix" ]]; then
  clang-format -i "${files[@]}"
  echo "reformatted ${#files[@]} files"
  exit 0
fi

status=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    status=1
  fi
done

if [[ $status -eq 0 ]]; then
  echo "all ${#files[@]} files clean"
fi
exit $status
