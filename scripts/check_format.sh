#!/usr/bin/env bash
# clang-format dry-run over the C++ tree. Exits non-zero if any file needs
# reformatting.
#
#   ./scripts/check_format.sh                 # check, list offending files
#   ./scripts/check_format.sh --fix           # reformat in place
#   ./scripts/check_format.sh --patch F.diff  # write a unified diff, no edits
#
# The formatter is version-pinned: Google-style output drifts between
# clang-format majors, so an unpinned check flip-flops depending on who ran
# it last. CI installs the pinned major (see .github/workflows/ci.yml); a
# different local major is an error unless CPC_FORMAT_ALLOW_ANY=1.
# Override the binary with CLANG_FORMAT=/path/to/clang-format-NN.

set -u
cd "$(dirname "$0")/.."

PINNED_MAJOR=18
CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"

if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found on PATH (apt-get install clang-format-$PINNED_MAJOR)" >&2
  exit 2
fi

major="$("$CLANG_FORMAT" --version | grep -oE '[0-9]+' | head -n1)"
if [[ "$major" != "$PINNED_MAJOR" && "${CPC_FORMAT_ALLOW_ANY:-0}" != "1" ]]; then
  echo "error: $CLANG_FORMAT is major $major, but the project pins $PINNED_MAJOR" >&2
  echo "       (set CPC_FORMAT_ALLOW_ANY=1 to run anyway — results may disagree with CI)" >&2
  exit 2
fi

mapfile -t files < <(find src tests bench tools examples \
  -name '*.cpp' -o -name '*.hpp' | sort)

if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "reformatted ${#files[@]} files"
  exit 0
fi

patch_out=""
if [[ "${1:-}" == "--patch" ]]; then
  patch_out="${2:?usage: check_format.sh --patch <output-file>}"
  : > "$patch_out"
fi

status=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    status=1
    if [[ -n "$patch_out" ]]; then
      "$CLANG_FORMAT" "$f" | diff -u --label "a/$f" --label "b/$f" "$f" - >> "$patch_out"
    fi
  fi
done

if [[ $status -eq 0 ]]; then
  echo "all ${#files[@]} files clean"
elif [[ -n "$patch_out" ]]; then
  echo "wrote fix patch to $patch_out (apply with: git apply $patch_out)"
fi
exit $status
