// The paper's motivating example (section 2.2, Figures 5 and 6): a linked
// list whose nodes hold two pointers, a small type field and one large
// value. Traversal sums the value field of nodes with a matching type.
//
// With the baseline cache every new node is a cache miss at the pointer
// load (statement (2) in the paper) — on the critical path. With CPP the
// compressible fields of the *next* node ride along in the freed half-
// slots, so the pointer/type loads hit and only the large value field can
// miss (statement (3)) — off the critical path.

#include <iostream>
#include <vector>

#include "sim/experiment.hpp"
#include "workload/rng.hpp"
#include "workload/trace_recorder.hpp"

int main() {
  using namespace cpc;
  using Val = workload::TraceRecorder::Val;

  // Node layout from Fig. 5(a): {next, prev, type, info} — 16 bytes, one
  // node per L1-line-quarter; the paper's illustration uses 16-byte lines,
  // our caches use 64-byte lines, so four nodes share a line and the
  // next-line prefetch covers the following four.
  constexpr std::uint32_t kNext = 0;
  constexpr std::uint32_t kPrev = 4;
  constexpr std::uint32_t kType = 8;
  constexpr std::uint32_t kInfo = 12;
  constexpr std::uint32_t kNodes = 20'000;  // 320 KB list

  workload::TraceRecorder recorder(1'500'000);
  workload::Rng rng(42);

  // Build the list in allocation order (as a list built by appends is).
  std::vector<std::uint32_t> nodes;
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const std::uint32_t n = recorder.alloc(16);
    nodes.push_back(n);
    recorder.block("build");
    recorder.store(Val{n + kType}, recorder.alu(rng.below(4)));  // small
    recorder.store(Val{n + kInfo},
                   recorder.alu(static_cast<std::uint32_t>(rng.next())));  // large
    recorder.store(Val{n + kPrev}, recorder.alu(prev));
    recorder.store(Val{n + kNext}, recorder.alu(0));
    if (prev != 0) recorder.store(Val{prev + kNext}, recorder.alu(n));
    prev = n;
  }

  // Fig. 5(b): sum += p->info for nodes of type T, following p->next.
  while (!recorder.done()) {
    recorder.block("traverse");
    Val p{nodes.front()};
    Val sum = recorder.alu(0);
    while (p.value != 0 && !recorder.done()) {
      recorder.block("traverse");
      Val type = recorder.load(p + kType);            // statement (4)
      const bool match = type.value == 1;
      recorder.branch(match, type);
      if (match) {
        Val info = recorder.load(p + kInfo);          // statement (3)
        sum = recorder.alu(sum.value + info.value, sum, info);
      }
      p = recorder.load(p + kNext);                   // statement (2)
    }
  }

  const cpu::Trace trace = recorder.take_trace();
  std::cout << "list traversal trace: " << trace.size() << " micro-ops, "
            << kNodes << " nodes\n\n";

  for (sim::ConfigKind kind : {sim::ConfigKind::kBC, sim::ConfigKind::kCPP}) {
    const sim::RunResult r = sim::run_trace(trace, kind);
    std::cout << r.config << ": " << r.core.cycles << " cycles, "
              << r.hierarchy.l1_misses << " L1 misses, "
              << r.hierarchy.l1_affiliated_hits << " affiliated hits, "
              << r.traffic_words() << " memory words\n";
  }
  std::cout << "\nCPP turns the pointer-chase misses into affiliated-place hits\n"
               "without moving a single extra word from memory (section 2.2).\n";
  return 0;
}
