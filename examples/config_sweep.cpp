// Sweeping cache geometry with the public API: how does CPP's advantage
// over BC change as the L1 grows? (The paper fixes 8K/64K; this example
// shows the library is not hard-wired to those sizes.)
//
//   ./examples/config_sweep [workload] [ops]

#include <cstdlib>
#include <iostream>

#include "cache/baseline_hierarchy.hpp"
#include "core/cpp_hierarchy.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace cpc;

  const std::string name = argc > 1 ? argv[1] : "olden.mst";
  const std::uint64_t ops = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300'000;
  const cpu::Trace trace = workload::generate(workload::find_workload(name), {ops, 1});
  std::cout << "workload: " << name << ", " << trace.size() << " micro-ops\n\n";

  stats::Table table("CPP speedup over BC across L1 sizes",
                     {"BC cycles", "CPP cycles", "speedup %", "CPP traffic %"});
  for (std::uint32_t l1_kb : {4u, 8u, 16u, 32u}) {
    cache::HierarchyConfig config = cache::kBaselineConfig;
    config.l1.size_bytes = l1_kb * 1024;

    cache::BaselineHierarchy bc("BC", config, cache::TransferFormat::kUncompressed);
    const sim::RunResult r_bc = sim::run_trace_on(trace, bc);

    core::CppHierarchy::Options opts;
    opts.config = config;
    core::CppHierarchy cpp(opts);
    const sim::RunResult r_cpp = sim::run_trace_on(trace, cpp);

    table.add_row("L1 " + std::to_string(l1_kb) + "K",
                  {r_bc.cycles(), r_cpp.cycles(),
                   (r_bc.cycles() / r_cpp.cycles() - 1.0) * 100.0,
                   r_cpp.traffic_words() / r_bc.traffic_words() * 100.0});
  }
  std::cout << table.to_ascii(1) << '\n';
  std::cout << "Typical result: the relative benefit of partial-line prefetching\n"
               "shrinks as L1 grows and capacity misses disappear.\n";
  return 0;
}
