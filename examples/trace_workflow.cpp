// Record-once / replay-many workflow via the library API (the same flow
// the tools/ CLIs expose): generate a trace, save it, reload it, verify the
// round-trip, analyse it, and replay it on two configurations.

#include <iostream>
#include <sstream>

#include "analysis/miss_classifier.hpp"
#include "analysis/working_set.hpp"
#include "cpu/trace_io.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace cpc;

  // 1. Record.
  const auto& wl = workload::find_workload("spec95.130.li");
  const cpu::Trace recorded = workload::generate(wl, {300'000, 7});
  std::cout << "recorded " << recorded.size() << " micro-ops of " << wl.name
            << "\n";

  // 2. Serialise + reload (to a buffer here; write_trace_file for disk).
  std::stringstream storage;
  cpu::write_trace(storage, recorded);
  const cpu::Trace trace = cpu::read_trace(storage);
  std::cout << "serialised form: " << storage.str().size() << " bytes; reload "
            << (trace.size() == recorded.size() ? "ok" : "MISMATCH") << "\n\n";

  // 3. Analyse offline — no simulation needed.
  const analysis::WorkingSet ws = analysis::measure_working_set(trace);
  analysis::MissClassifier l1(cache::kBaselineConfig.l1);
  for (const cpu::MicroOp& op : trace) {
    if (cpu::is_memory_op(op.kind)) l1.access(op.addr);
  }
  std::cout << "footprint: " << ws.footprint_bytes() / 1024 << " KiB, "
            << ws.write_fraction() * 100 << "% writes\n";
  const auto& b = l1.breakdown();
  std::cout << "L1 reference stream: " << b.miss_rate() * 100 << "% miss rate ("
            << b.compulsory << " compulsory / " << b.capacity << " capacity / "
            << b.conflict << " conflict)\n\n";

  // 4. Replay on two designs.
  for (sim::ConfigKind kind : {sim::ConfigKind::kBC, sim::ConfigKind::kCPP}) {
    const sim::RunResult r = sim::run_trace(trace, kind);
    std::cout << r.config << ": " << r.core.cycles << " cycles, IPC "
              << r.core.ipc() << ", traffic " << r.traffic_words() << " words\n";
  }
  return 0;
}
