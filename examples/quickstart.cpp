// Quickstart: generate one workload trace, replay it through all five cache
// configurations from the paper, and print the headline metrics.
//
//   ./examples/quickstart [workload] [ops]
//
// Defaults to olden.health with a 400k-op trace.

#include <cstdlib>
#include <iostream>

#include "sim/experiment.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace cpc;

  const std::string name = argc > 1 ? argv[1] : "olden.health";
  const std::uint64_t ops = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400'000;

  const workload::Workload& wl = workload::find_workload(name);
  std::cout << "workload: " << wl.name << " (" << wl.description << ")\n";
  const cpu::Trace trace = workload::generate(wl, {ops, 0x5eed});
  std::cout << "trace: " << trace.size() << " micro-ops\n\n";

  stats::Table table("five configurations (paper section 4.1)",
                     {"cycles", "IPC", "L1 misses", "L2 misses", "mem words",
                      "pbuf/affil hits"});
  double bc_cycles = 0.0;
  for (sim::ConfigKind kind : sim::kAllConfigs) {
    const sim::RunResult r = sim::run_trace(trace, kind);
    if (r.core.value_mismatches != 0) {
      std::cerr << "FUNCTIONAL BUG: " << r.core.value_mismatches
                << " load value mismatches in " << r.config << "\n";
      return 1;
    }
    if (kind == sim::ConfigKind::kBC) bc_cycles = r.cycles();
    table.add_row(r.config,
                  {r.cycles(), r.core.ipc(), r.l1_misses(), r.l2_misses(),
                   r.traffic_words(),
                   static_cast<double>(r.hierarchy.l1_pbuf_hits + r.hierarchy.l2_pbuf_hits +
                                       r.hierarchy.l1_affiliated_hits +
                                       r.hierarchy.l2_affiliated_hits)});
    std::cout << r.config << ": " << r.core.cycles << " cycles ("
              << (bc_cycles / r.cycles() - 1.0) * 100.0 << "% speedup vs BC)\n";
  }
  std::cout << '\n' << table.to_ascii(1) << '\n';
  std::cout << "All configurations returned bit-exact load values.\n";
  return 0;
}
