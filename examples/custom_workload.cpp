// Using the public API to evaluate the cache designs on *your own* memory
// access pattern: write a kernel against TraceRecorder, hand the trace to
// the experiment runner, and compare configurations.
//
// The kernel here is a toy B-tree-ish index lookup loop — deliberately not
// one of the 14 paper workloads — demonstrating the three-step recipe:
//   1. allocate structures through the recorder (real 32-bit addresses),
//   2. run the algorithm, routing loads/stores through the recorder,
//   3. replay the trace on any MemoryHierarchy.

#include <iostream>
#include <vector>

#include "sim/experiment.hpp"
#include "workload/rng.hpp"
#include "workload/trace_recorder.hpp"

int main() {
  using namespace cpc;
  using Val = workload::TraceRecorder::Val;

  workload::TraceRecorder recorder(500'000);
  workload::Rng rng(2024);

  // Step 1: a 3-level index. Inner nodes: 8 keys + 8 child pointers.
  constexpr unsigned kFanout = 8;
  auto build = [&](auto&& self, unsigned level) -> std::uint32_t {
    const std::uint32_t node = recorder.alloc(kFanout * 8);
    recorder.block("ibuild");
    for (unsigned i = 0; i < kFanout; ++i) {
      recorder.store(Val{node + i * 8}, recorder.alu(i * 1000 + rng.below(999)));
      const std::uint32_t child = level == 0 ? rng.below(1u << 14) : self(self, level - 1);
      recorder.store(Val{node + i * 8 + 4}, recorder.alu(child));
    }
    return node;
  };
  const std::uint32_t root = build(build, 3);  // 8^3 leaves-ish

  // Step 2: random probes walking root -> leaf with binary-search-ish reads.
  while (!recorder.done()) {
    recorder.block("probe");
    Val node{root};
    for (unsigned level = 0; level < 3; ++level) {
      const unsigned slot = rng.below(kFanout);
      Val key = recorder.load(node + slot * 8);
      recorder.branch(key.value > 4000, key);
      node = recorder.load(node + slot * 8 + 4);
    }
  }

  // Step 3: compare the designs.
  const cpu::Trace trace = recorder.take_trace();
  std::cout << "custom index workload: " << trace.size() << " micro-ops\n\n";
  double bc_cycles = 0.0;
  for (sim::ConfigKind kind : sim::kAllConfigs) {
    const sim::RunResult r = sim::run_trace(trace, kind);
    if (kind == sim::ConfigKind::kBC) bc_cycles = r.cycles();
    std::cout << r.config << ": " << r.core.cycles << " cycles ("
              << (bc_cycles / r.cycles()) << "x BC), traffic "
              << r.traffic_words() << " words\n";
  }
  return 0;
}
