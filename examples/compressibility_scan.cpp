// Value-compressibility scanner (the study behind paper Figure 3): classify
// every word-level memory access of a workload — or of all 14 — as a
// compressible small value, a compressible pointer, or incompressible, and
// show how the balance shifts with the compressed width.
//
//   ./examples/compressibility_scan [workload|all] [ops]

#include <cstdlib>
#include <iostream>

#include "compress/classification_stats.hpp"
#include "stats/table.hpp"
#include "workload/workloads.hpp"

int main(int argc, char** argv) {
  using namespace cpc;

  const std::string which = argc > 1 ? argv[1] : "all";
  const std::uint64_t ops = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300'000;

  std::vector<workload::Workload> selected;
  if (which == "all") {
    selected = workload::all_workloads();
  } else {
    selected.push_back(workload::find_workload(which));
  }

  stats::Table table("value classification (% of word accesses)",
                     {"small", "pointer", "incompressible", "@8-bit", "@24-bit"});
  for (const workload::Workload& wl : selected) {
    const cpu::Trace trace = workload::generate(wl, {ops, 0x5eed});
    compress::ClassificationStats paper;  // 16-bit scheme
    compress::ClassificationStats narrow{compress::Scheme{8}};
    compress::ClassificationStats wide{compress::Scheme{24}};
    for (const cpu::MicroOp& op : trace) {
      if (!cpu::is_memory_op(op.kind)) continue;
      paper.record(op.value, op.addr);
      narrow.record(op.value, op.addr);
      wide.record(op.value, op.addr);
    }
    table.add_row(wl.name, {paper.small_fraction() * 100.0,
                            paper.pointer_fraction() * 100.0,
                            (1.0 - paper.compressible_fraction()) * 100.0,
                            narrow.compressible_fraction() * 100.0,
                            wide.compressible_fraction() * 100.0});
  }
  table.add_mean_row();
  std::cout << table.to_ascii(1) << '\n';
  std::cout << "Columns 1-3 use the paper's 16-bit scheme; the last two show\n"
               "total compressibility under narrower/wider schemes (section 2.1:\n"
               "16 bits strikes the balance between coverage and slack).\n";
  return 0;
}
