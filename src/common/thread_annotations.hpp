#pragma once
// Clang thread-safety annotation macros (CPC_GUARDED_BY and friends).
//
// Under clang the annotations drive `-Wthread-safety`: lock-discipline
// mistakes — touching a CPC_GUARDED_BY member without holding its mutex,
// releasing a capability twice, calling a CPC_REQUIRES function unlocked —
// become compile errors in the CI lint job instead of fuzzer finds. Under
// GCC (the local toolchain) every macro expands to nothing, so annotated
// code builds identically everywhere.
//
// Use the cpc::Mutex / cpc::MutexLock wrappers from common/mutex.hpp rather
// than std::mutex for annotated state: libstdc++'s std::mutex carries no
// capability attributes, so the analysis cannot see std::lock_guard acquire
// anything.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define CPC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CPC_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a type to be a capability (e.g. "mutex").
#define CPC_CAPABILITY(x) CPC_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define CPC_SCOPED_CAPABILITY CPC_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define CPC_GUARDED_BY(x) CPC_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define CPC_PT_GUARDED_BY(x) CPC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function acquires the given capabilities (held on return).
#define CPC_ACQUIRE(...) CPC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the given capabilities (must be held on entry).
#define CPC_RELEASE(...) CPC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define CPC_TRY_ACQUIRE(...) \
  CPC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the given capabilities to call this function.
#define CPC_REQUIRES(...) CPC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the given capabilities (deadlock prevention).
#define CPC_EXCLUDES(...) CPC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations between capabilities.
#define CPC_ACQUIRED_BEFORE(...) \
  CPC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define CPC_ACQUIRED_AFTER(...) \
  CPC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define CPC_RETURN_CAPABILITY(x) CPC_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the discipline cannot be expressed.
#define CPC_NO_THREAD_SAFETY_ANALYSIS \
  CPC_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Documentation-only annotation for state that is deliberately unguarded
/// because it is confined to a single job/worker thread for its whole
/// lifetime (SweepRunner gives every job its own hierarchy, oracle and
/// injector instances). Expands to nothing under every compiler; exists so
/// the confinement claim is grep-able and reviewed, not implicit.
#define CPC_THREAD_CONFINED
