#pragma once
// Always-on invariant checking. Unlike assert(), these fire in every build
// type: the structural invariants of the compression cache are part of its
// contract and the property tests exercise them through release binaries.
//
// Violations carry a structured cpc::Diagnostic (which invariant, where,
// which line address, at what point of the run) so that auditors, the
// fault-injection campaign and the sweep journal can report machine-readable
// failures instead of bare strings.
//
// The Invariant enum is paired with the X-macro table in
// common/invariant_registry.def; the static_asserts below prove at compile
// time that every enumerator has a registered stable name, replacing any
// runtime "unknown id" handling.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/registry_check.hpp"

namespace cpc {

/// Identity of a guarded structural invariant. Stable ids: tools and the
/// fault-campaign journal refer to these by name. Every enumerator needs a
/// row in common/invariant_registry.def (compile-time enforced).
enum class Invariant : std::uint8_t {
  kGeneric = 0,              ///< site-specific check with no finer class
  kAffiliatedOverUncompressed,  ///< AA bit set over an uncompressed primary word
  kAffiliatedNotCompressible,   ///< affiliated word fails the compression round-trip
  kVcpMismatch,              ///< VCP flag disagrees with the compression scheme
  kDoubleResidency,          ///< line present both as primary and affiliated copy
  kDirtyEmpty,               ///< dirty line with no primary words
  kLineEcc,                  ///< per-line metadata/payload ECC mismatch
  kResponseIncomplete,       ///< partial-line response lost words in flight
  kTrafficMismatch,          ///< traffic meter disagrees with fetch-line count
  kCounterRegression,        ///< a monotonic statistic decreased between audits
  kLccSharedIncompressible,  ///< shared LCC frame holds an incompressible line
  kLccDuplicateResident,     ///< duplicate resident in an LCC frame
  kLccLineEcc,               ///< LCC resident payload ECC mismatch
  kShadowDivergence,         ///< committed load disagrees with the shadow golden model
  kMetamorphicProperty,      ///< cross-configuration metamorphic relation broken
};

/// Number of Invariant enumerators. Referencing the last enumerator keeps
/// this in lock-step with the enum; cpc_lint CPC-L007 cross-checks the full
/// enumerator list against the registry rows.
inline constexpr std::size_t kInvariantCount =
    static_cast<std::size_t>(Invariant::kMetamorphicProperty) + 1;

/// One registry row: enumerator, stable machine-readable name, summary.
struct InvariantInfo {
  Invariant id;
  const char* name;
  const char* summary;
};

/// Generated from invariant_registry.def, in enum order.
inline constexpr InvariantInfo kInvariantRegistry[] = {
#define CPC_INVARIANT_ROW(id, name, summary) {Invariant::id, name, summary},
#include "common/invariant_registry.def"
#undef CPC_INVARIANT_ROW
};

inline constexpr bool invariant_registered(Invariant id) {
  for (const InvariantInfo& row : kInvariantRegistry) {
    if (row.id == id) return true;
  }
  return false;
}

namespace detail {
inline constexpr std::size_t kInvariantRows =
    sizeof(kInvariantRegistry) / sizeof(kInvariantRegistry[0]);

inline constexpr bool invariant_rows_in_enum_order() {
  for (std::size_t i = 0; i < kInvariantRows; ++i) {
    if (static_cast<std::size_t>(kInvariantRegistry[i].id) != i) return false;
  }
  return true;
}
}  // namespace detail

static_assert(detail::kInvariantRows == kInvariantCount,
              "invariant_registry.def row count disagrees with the Invariant "
              "enum — every enumerator needs exactly one CPC_INVARIANT_ROW");
static_assert(registry::DenseRegistry<Invariant, kInvariantCount,
                                      &invariant_registered>::value,
              "invariant registry density check");
static_assert(detail::invariant_rows_in_enum_order(),
              "invariant_registry.def rows must appear in Invariant "
              "declaration order (name lookup indexes the table by value)");

const char* invariant_name(Invariant id);

/// Structured description of one invariant violation: which invariant, at
/// which site, affecting which line, observed after how many accesses. The
/// access ordinal ("cycle") is filled in by the MetadataAuditor when the
/// violation surfaces during an audited run; sites that cannot know it leave
/// it zero.
struct Diagnostic {
  Invariant invariant = Invariant::kGeneric;
  std::string site;            ///< e.g. "CppCache[L1].validate"
  std::uint64_t cycle = 0;     ///< access ordinal when known (0 = unknown)
  std::uint32_t line_addr = 0; ///< affected (primary) line address
  std::string detail;          ///< free-form human context

  std::string to_string() const;
};

class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(Diagnostic diagnostic)
      : std::logic_error(diagnostic.to_string()),
        diagnostic_(std::move(diagnostic)) {}

  const Diagnostic& diagnostic() const { return diagnostic_; }

 private:
  Diagnostic diagnostic_;
};

/// Structured check. `make` is only invoked on failure, so call sites can
/// build the Diagnostic (two strings) lazily inside hot validation loops.
template <typename MakeDiagnostic>
inline void check_diag(bool condition, MakeDiagnostic&& make) {
  if (!condition) throw InvariantViolation(std::forward<MakeDiagnostic>(make)());
}

/// Always-on structural check for conditions that compile-time analysis has
/// already made unreachable-in-practice (e.g. registry density). Throws a
/// kGeneric InvariantViolation carrying the call site; exists instead of a
/// bare string throw so even "impossible" branches report structured
/// diagnostics. CPC-L004 lints against reintroducing string throws.
#define CPC_CHECK(condition, message)                                      \
  ::cpc::check_diag((condition), [&] {                                     \
    return ::cpc::Diagnostic{::cpc::Invariant::kGeneric,                   \
                             std::string(__FILE__) + ":" +                 \
                                 std::to_string(__LINE__),                 \
                             0, 0, (message)};                             \
  })

// --- inline implementations -------------------------------------------

inline const char* invariant_name(Invariant id) {
  const auto index = static_cast<std::size_t>(id);
  // Unreachable for any real enumerator: the DenseRegistry static_assert
  // above proves a registry row exists per Invariant, so an out-of-range id
  // means the byte itself was corrupted (demoted runtime "unknown id"
  // branch — see docs/static_analysis.md).
  CPC_CHECK(index < kInvariantCount,
            "corrupt Invariant id — registry density is compile-time checked");
  return kInvariantRegistry[index].name;
}

inline std::string Diagnostic::to_string() const {
  std::string out = "invariant violation [";
  out += invariant_name(invariant);
  out += "]";
  if (!site.empty()) {
    out += " at ";
    out += site;
  }
  if (cycle != 0) {
    out += " access #";
    out += std::to_string(cycle);
  }
  if (line_addr != 0) {
    out += " line 0x";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%x", line_addr);
    out += buf;
  }
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

}  // namespace cpc
