#pragma once
// Always-on invariant checking. Unlike assert(), these fire in every build
// type: the structural invariants of the compression cache are part of its
// contract and the property tests exercise them through release binaries.

#include <stdexcept>
#include <string>

namespace cpc {

class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

inline void check(bool condition, const std::string& message) {
  if (!condition) throw InvariantViolation(message);
}

}  // namespace cpc
