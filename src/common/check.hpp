#pragma once
// Always-on invariant checking. Unlike assert(), these fire in every build
// type: the structural invariants of the compression cache are part of its
// contract and the property tests exercise them through release binaries.
//
// Violations carry a structured cpc::Diagnostic (which invariant, where,
// which line address, at what point of the run) so that auditors, the
// fault-injection campaign and the sweep journal can report machine-readable
// failures instead of bare strings.

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

namespace cpc {

/// Identity of a guarded structural invariant. Stable ids: tools and the
/// fault-campaign journal refer to these by name.
enum class Invariant : std::uint8_t {
  kGeneric = 0,              ///< legacy string-only check()
  kAffiliatedOverUncompressed,  ///< AA bit set over an uncompressed primary word
  kAffiliatedNotCompressible,   ///< affiliated word fails the compression round-trip
  kVcpMismatch,              ///< VCP flag disagrees with the compression scheme
  kDoubleResidency,          ///< line present both as primary and affiliated copy
  kDirtyEmpty,               ///< dirty line with no primary words
  kLineEcc,                  ///< per-line metadata/payload ECC mismatch
  kResponseIncomplete,       ///< partial-line response lost words in flight
  kTrafficMismatch,          ///< traffic meter disagrees with fetch-line count
  kCounterRegression,        ///< a monotonic statistic decreased between audits
  kLccSharedIncompressible,  ///< shared LCC frame holds an incompressible line
  kLccDuplicateResident,     ///< duplicate resident in an LCC frame
  kLccLineEcc,               ///< LCC resident payload ECC mismatch
  kShadowDivergence,         ///< committed load disagrees with the shadow golden model
  kMetamorphicProperty,      ///< cross-configuration metamorphic relation broken
};

const char* invariant_name(Invariant id);

/// Structured description of one invariant violation: which invariant, at
/// which site, affecting which line, observed after how many accesses. The
/// access ordinal ("cycle") is filled in by the MetadataAuditor when the
/// violation surfaces during an audited run; sites that cannot know it leave
/// it zero.
struct Diagnostic {
  Invariant invariant = Invariant::kGeneric;
  std::string site;            ///< e.g. "CppCache[L1].validate"
  std::uint64_t cycle = 0;     ///< access ordinal when known (0 = unknown)
  std::uint32_t line_addr = 0; ///< affected (primary) line address
  std::string detail;          ///< free-form human context

  std::string to_string() const;
};

class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& message)
      : std::logic_error(message) {
    diagnostic_.detail = message;
  }
  explicit InvariantViolation(Diagnostic diagnostic)
      : std::logic_error(diagnostic.to_string()),
        diagnostic_(std::move(diagnostic)) {}

  const Diagnostic& diagnostic() const { return diagnostic_; }

 private:
  Diagnostic diagnostic_;
};

inline void check(bool condition, const std::string& message) {
  if (!condition) throw InvariantViolation(message);
}

/// Structured check. `make` is only invoked on failure, so call sites can
/// build the Diagnostic (two strings) lazily inside hot validation loops.
template <typename MakeDiagnostic>
inline void check_diag(bool condition, MakeDiagnostic&& make) {
  if (!condition) throw InvariantViolation(std::forward<MakeDiagnostic>(make)());
}

// --- inline implementations -------------------------------------------

inline const char* invariant_name(Invariant id) {
  switch (id) {
    case Invariant::kGeneric: return "generic";
    case Invariant::kAffiliatedOverUncompressed: return "affiliated-over-uncompressed";
    case Invariant::kAffiliatedNotCompressible: return "affiliated-not-compressible";
    case Invariant::kVcpMismatch: return "vcp-mismatch";
    case Invariant::kDoubleResidency: return "double-residency";
    case Invariant::kDirtyEmpty: return "dirty-empty";
    case Invariant::kLineEcc: return "line-ecc";
    case Invariant::kResponseIncomplete: return "response-incomplete";
    case Invariant::kTrafficMismatch: return "traffic-mismatch";
    case Invariant::kCounterRegression: return "counter-regression";
    case Invariant::kLccSharedIncompressible: return "lcc-shared-incompressible";
    case Invariant::kLccDuplicateResident: return "lcc-duplicate-resident";
    case Invariant::kLccLineEcc: return "lcc-line-ecc";
    case Invariant::kShadowDivergence: return "shadow-divergence";
    case Invariant::kMetamorphicProperty: return "metamorphic-property";
  }
  return "?";
}

inline std::string Diagnostic::to_string() const {
  std::string out = "invariant violation [";
  out += invariant_name(invariant);
  out += "]";
  if (!site.empty()) {
    out += " at ";
    out += site;
  }
  if (cycle != 0) {
    out += " access #";
    out += std::to_string(cycle);
  }
  if (line_addr != 0) {
    out += " line 0x";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%x", line_addr);
    out += buf;
  }
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

}  // namespace cpc
