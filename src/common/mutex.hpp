#pragma once
// Annotated mutex wrappers for clang thread-safety analysis.
//
// libstdc++'s std::mutex and std::lock_guard carry no capability
// attributes, so `-Wthread-safety` cannot see them acquire anything. These
// zero-overhead wrappers re-export the same operations with the
// annotations attached; every CPC_GUARDED_BY member in the project is
// guarded by a cpc::Mutex and locked through cpc::MutexLock.
//
// CondVar wraps std::condition_variable_any so waiting takes the annotated
// Mutex directly (std::condition_variable insists on
// std::unique_lock<std::mutex>, which the analysis cannot track).

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace cpc {

/// std::mutex with capability annotations. BasicLockable, so it also works
/// as the lock argument of std::condition_variable_any.
class CPC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CPC_ACQUIRE() { mutex_.lock(); }
  void unlock() CPC_RELEASE() { mutex_.unlock(); }
  bool try_lock() CPC_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// RAII guard over cpc::Mutex (the annotated std::lock_guard).
class CPC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CPC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() CPC_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable that waits on a cpc::Mutex the caller already holds.
class CondVar {
 public:
  /// Releases `mutex` while blocked, reacquires before returning — the
  /// capability is held across the call from the analysis's point of view,
  /// matching how guarded state may be re-read right after waking.
  template <typename Rep, typename Period>
  void wait_for(Mutex& mutex, const std::chrono::duration<Rep, Period>& budget)
      CPC_REQUIRES(mutex) {
    cv_.wait_for(mutex, budget);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace cpc
