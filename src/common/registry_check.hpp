#pragma once
// Compile-time density check for X-macro registry tables.
//
// Each hand-maintained enum registry (Invariant, FaultKind, the sweep
// counters) pairs the enum with a table generated from a .def file. This
// header supplies the static_assert machinery proving the table has a row
// for *every* enumerator: deleting a row from the .def while keeping the
// enumerator fails the build, and the failing instantiation names the
// missing enumerator, e.g.
//
//   error: static assertion failed ... registry table is missing a row ...
//   note: in instantiation of 'row_present<cpc::Invariant::kVcpMismatch>'
//
// Usage (enumerators must be contiguous and start at 0):
//
//   static_assert(cpc::registry::DenseRegistry<
//                     Invariant, kInvariantCount, &invariant_registered>::value);
//
// The reverse direction — an enumerator added to the enum but not to the
// .def — is covered by the kCount size static_assert at each registry site
// plus cpc_lint check CPC-L007, which textually diffs the enum declaration
// against the .def rows.

#include <cstddef>
#include <utility>

namespace cpc::registry {

template <typename Enum, std::size_t Count, bool (*HasRow)(Enum)>
struct DenseRegistry {
  /// One instantiation per enumerator: the static_assert fires exactly for
  /// the value with no table row, and the compiler's instantiation note
  /// names it.
  template <Enum V>
  static constexpr bool row_present() {
    static_assert(HasRow(V),
                  "registry table is missing a row for the enumerator named "
                  "in the 'in instantiation of row_present<...>' note below — "
                  "restore its line in the corresponding .def file");
    return true;
  }

  template <std::size_t... Is>
  static constexpr bool check_all(std::index_sequence<Is...>) {
    return (row_present<static_cast<Enum>(Is)>() && ... && true);
  }

  static constexpr bool value = check_all(std::make_index_sequence<Count>{});
};

}  // namespace cpc::registry
