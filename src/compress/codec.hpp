#pragma once
// Pluggable word/line compression codecs behind one value-type interface.
//
// The paper's Scheme (scheme.hpp) is one point in a design space the
// related work explores from other angles: FPC's frequent-pattern prefix
// classes, BDI's base+delta arithmetic, and WK-style small-dictionary
// coding. Codec wraps all four behind a uniform contract so every
// hierarchy, bench, and verifier can be swept across a (config × codec)
// grid.
//
// Two granularities, two contracts:
//
//  * Word granularity (classify / is_compressible / classify_words /
//    compress / decompress) drives the CPP half-slot machinery. Every
//    codec's word operations are stateless, depend only on (value,
//    address), round-trip exactly, and succeed only when the encoded form
//    fits compressed_bits() — the invariants CompressedLine and CppCache
//    assume (an affiliated word must re-compress at its own address).
//  * Line granularity (compress_line) is pure accounting: the bits a real
//    implementation of the codec would emit for a whole line, split into
//    data payload and tag/flag metadata (Touché-style honest overhead
//    reporting — see docs/codecs.md). Line-level encodings may be
//    stateful within the line (WKdm's dictionary, BDI's per-line base);
//    they never feed back into cache-state decisions.
//
// Dispatch is a switch on CodecKind rather than a virtual interface: the
// paper codec's per-word tests sit on the simulator's hottest loops
// (classify_words vectorizes), and a switch hoisted outside the loop keeps
// that path byte-for-byte the Scheme code — the bench gate
// (BENCH_9.json) pins the cost of this refactor.
//
// The CodecKind enum is paired with the X-macro table in
// compress/codec_registry.def; the static_asserts below prove at compile
// time that every enumerator has a registered stable name.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "common/registry_check.hpp"
#include "compress/scheme.hpp"

namespace cpc::compress {

/// Identity of a compression codec. Stable ids: the codec-list grammar,
/// sweep CSVs and hierarchy name suffixes refer to these by name. Every
/// enumerator needs a row in compress/codec_registry.def (compile-time
/// enforced).
enum class CodecKind : std::uint8_t {
  kPaper = 0,  ///< Zhang/Gupta small-value + same-region pointer scheme
  kFpc,        ///< frequent-pattern coding, 3-bit prefix classes
  kBdi,        ///< base+delta-immediate, zero and address bases
  kWkdm,       ///< WK-style small-dictionary partial-match coding
};

/// Number of CodecKind enumerators. Referencing the last enumerator keeps
/// this in lock-step with the enum; cpc_lint CPC-L007 cross-checks the
/// full enumerator list against the registry rows.
inline constexpr std::size_t kCodecKindCount =
    static_cast<std::size_t>(CodecKind::kWkdm) + 1;

/// One registry row: enumerator, stable machine-readable name, summary.
struct CodecInfo {
  CodecKind id;
  const char* name;
  const char* summary;
};

/// Generated from codec_registry.def, in enum order.
inline constexpr CodecInfo kCodecRegistry[] = {
#define CPC_CODEC_ROW(id, name, summary) {CodecKind::id, name, summary},
#include "compress/codec_registry.def"
#undef CPC_CODEC_ROW
};

inline constexpr bool codec_registered(CodecKind id) {
  for (const CodecInfo& row : kCodecRegistry) {
    if (row.id == id) return true;
  }
  return false;
}

namespace detail {
inline constexpr std::size_t kCodecRows =
    sizeof(kCodecRegistry) / sizeof(kCodecRegistry[0]);

inline constexpr bool codec_rows_in_enum_order() {
  for (std::size_t i = 0; i < kCodecRows; ++i) {
    if (static_cast<std::size_t>(kCodecRegistry[i].id) != i) return false;
  }
  return true;
}
}  // namespace detail

static_assert(detail::kCodecRows == kCodecKindCount,
              "codec_registry.def row count disagrees with the CodecKind "
              "enum — every enumerator needs exactly one CPC_CODEC_ROW");
static_assert(registry::DenseRegistry<CodecKind, kCodecKindCount,
                                      &codec_registered>::value,
              "codec registry density check");
static_assert(detail::codec_rows_in_enum_order(),
              "codec_registry.def rows must appear in CodecKind declaration "
              "order (name lookup indexes the table by value)");

/// Stable machine-readable name ("paper", "fpc", "bdi", "wkdm").
inline constexpr const char* codec_name(CodecKind id) {
  return kCodecRegistry[static_cast<std::size_t>(id)].name;
}

/// All codecs, in registry order (grid sweeps iterate this).
inline constexpr CodecKind kAllCodecs[] = {CodecKind::kPaper, CodecKind::kFpc,
                                           CodecKind::kBdi, CodecKind::kWkdm};
static_assert(sizeof(kAllCodecs) / sizeof(kAllCodecs[0]) == kCodecKindCount);

/// Whole-line encoding cost report (compress_line). `data_bits` is the
/// payload a real implementation would emit; `tag_bits` is every metadata
/// bit that rides along — per-word prefixes/tags/selectors, dictionary
/// indices, per-line selectors and the VC-style flag array. Keeping the
/// split explicit is what makes cross-codec ratio comparisons honest about
/// overhead (Touché-style accounting).
struct LineCompression {
  std::uint32_t data_bits = 0;
  std::uint32_t tag_bits = 0;
  WordClassMasks masks;  ///< word-granularity class masks (bit i = word i)

  constexpr std::uint32_t total_bits() const { return data_bits + tag_bits; }
};

/// A concrete codec: kind + parameters. Cheap to copy (two words); every
/// operation is constexpr and allocation-free.
class Codec {
 public:
  static constexpr unsigned kWordBits = 32;
  /// The half-slot budget of the CPP physical line: a compressed word of
  /// any codec must fit these many bits to share a slot (paper Fig. 7).
  static constexpr unsigned kHalfSlotBits = 16;

  /// The paper codec with the paper's parameters.
  constexpr Codec() = default;

  /// A codec by kind; non-paper kinds use their fixed 16-bit encodings.
  constexpr explicit Codec(CodecKind kind) : kind_(kind) {}

  /// The paper codec with a non-default width (the width-ablation benches
  /// sweep 8/16/24-bit compressed forms). Deliberately implicit: a Scheme
  /// IS a paper-codec parameterization, and the pre-refactor call sites
  /// that passed a Scheme keep compiling unchanged.
  constexpr Codec(Scheme scheme)  // NOLINT(google-explicit-constructor)
      : kind_(CodecKind::kPaper), scheme_(scheme) {}

  constexpr CodecKind kind() const { return kind_; }
  constexpr const char* name() const { return codec_name(kind_); }

  /// Paper-scheme parameters. Meaningful for kPaper only; other codecs
  /// keep the default (their gate models and widths are fixed).
  constexpr const Scheme& scheme() const { return scheme_; }

  /// Total bits of one compressed word, tag bits included — the storage
  /// cost that gates half-slot packing.
  constexpr unsigned compressed_bits() const {
    return kind_ == CodecKind::kPaper ? scheme_.compressed_bits()
                                      : kHalfSlotBits;
  }

  /// Touché-style per-word metadata charge on a transferred line word
  /// (prefix/tag/selector/flag-array bits living outside the data
  /// payload): 1 VC bit (paper), 3-bit prefix (FPC), 1 base-selector bit
  /// (BDI), 2-bit tag (WKdm).
  constexpr unsigned tag_bits_per_word() const {
    switch (kind_) {
      case CodecKind::kPaper: return 1;
      case CodecKind::kFpc: return kFpcPrefixBits;
      case CodecKind::kBdi: return 1;
      case CodecKind::kWkdm: return kWkdmTagBits;
    }
    return 0;
  }

  // --- word granularity --------------------------------------------------

  constexpr ValueClass classify(std::uint32_t value,
                                std::uint32_t address) const {
    switch (kind_) {
      case CodecKind::kPaper:
        return scheme_.classify(value, address);
      case CodecKind::kFpc:
        // Every FPC word class is context-free sign extension: small.
        return fpc_word_class(value) != kFpcNoClass
                   ? ValueClass::kSmallValue
                   : ValueClass::kIncompressible;
      case CodecKind::kBdi:
        if (fits_signed(value, kBdiDeltaBits)) return ValueClass::kSmallValue;
        if (fits_signed(value - address, kBdiDeltaBits)) {
          return ValueClass::kPointer;
        }
        return ValueClass::kIncompressible;
      case CodecKind::kWkdm:
        if (wkdm_narrow(value)) return ValueClass::kSmallValue;
        if (wkdm_addr_match(value, address)) return ValueClass::kPointer;
        return ValueClass::kIncompressible;
    }
    return ValueClass::kIncompressible;
  }

  constexpr bool is_compressible(std::uint32_t value,
                                 std::uint32_t address) const {
    switch (kind_) {
      case CodecKind::kPaper:
        return scheme_.is_compressible(value, address);
      case CodecKind::kFpc:
        return fits_signed(value, kFpcMaxPayloadBits);
      case CodecKind::kBdi:
        return fits_signed(value, kBdiDeltaBits) ||
               fits_signed(value - address, kBdiDeltaBits);
      case CodecKind::kWkdm:
        return wkdm_narrow(value) || wkdm_addr_match(value, address);
    }
    return false;
  }

  /// Classifies `count` consecutive words whose first word lives at
  /// `base_addr`; `count` must be at most 32 (a cache line). The kind
  /// switch is hoisted outside the loop so each per-codec loop stays as
  /// vectorizable as the Scheme original.
  constexpr WordClassMasks classify_words(const std::uint32_t* words,
                                          std::size_t count,
                                          std::uint32_t base_addr) const {
    switch (kind_) {
      case CodecKind::kPaper:
        return scheme_.classify_words(words, count, base_addr);
      case CodecKind::kFpc: {
        WordClassMasks m;
        for (std::size_t i = 0; i < count; ++i) {
          m.small |= fits_signed_bit(words[i], kFpcMaxPayloadBits) << i;
        }
        return m;
      }
      case CodecKind::kBdi: {
        WordClassMasks m;
        for (std::size_t i = 0; i < count; ++i) {
          const std::uint32_t addr =
              base_addr + static_cast<std::uint32_t>(i) * 4;
          const std::uint32_t small = fits_signed_bit(words[i], kBdiDeltaBits);
          const std::uint32_t ptr =
              fits_signed_bit(words[i] - addr, kBdiDeltaBits);
          m.small |= small << i;
          m.pointer |= (ptr & (small ^ 1u)) << i;
        }
        return m;
      }
      case CodecKind::kWkdm: {
        WordClassMasks m;
        for (std::size_t i = 0; i < count; ++i) {
          const std::uint32_t addr =
              base_addr + static_cast<std::uint32_t>(i) * 4;
          const std::uint32_t small =
              fits_signed_bit(words[i], kWkdmLowBits);
          const std::uint32_t ptr =
              ((words[i] ^ addr) >> kWkdmLowBits) == 0 ? 1u : 0u;
          m.small |= small << i;
          m.pointer |= (ptr & (small ^ 1u)) << i;
        }
        return m;
      }
    }
    return {};
  }

  /// Compresses `value` stored at `address`; empty when incompressible.
  /// The encoded form always fits compressed_bits().
  constexpr std::optional<CompressedWord> compress(
      std::uint32_t value, std::uint32_t address) const {
    switch (kind_) {
      case CodecKind::kPaper:
        return scheme_.compress(value, address);
      case CodecKind::kFpc: {
        const unsigned cls = fpc_word_class(value);
        if (cls == kFpcNoClass) return std::nullopt;
        return CompressedWord{(cls << kFpcMaxPayloadBits) |
                              (value & ((1u << kFpcMaxPayloadBits) - 1))};
      }
      case CodecKind::kBdi: {
        if (fits_signed(value, kBdiDeltaBits)) {
          return CompressedWord{value & ((1u << kBdiDeltaBits) - 1)};
        }
        const std::uint32_t delta = value - address;
        if (fits_signed(delta, kBdiDeltaBits)) {
          return CompressedWord{(1u << kBdiDeltaBits) |
                                (delta & ((1u << kBdiDeltaBits) - 1))};
        }
        return std::nullopt;
      }
      case CodecKind::kWkdm: {
        if (value == 0) return CompressedWord{0};
        if (wkdm_narrow(value)) {
          return CompressedWord{(kWkdmTagNarrow << kWkdmTagShift) |
                                (value & kWkdmLowMask)};
        }
        if (wkdm_addr_match(value, address)) {
          return CompressedWord{(kWkdmTagAddr << kWkdmTagShift) |
                                (value & kWkdmLowMask)};
        }
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  /// Reconstructs the original word from its compressed form. `address`
  /// must be the address the word is stored at (address-based codecs
  /// borrow their prefix/base from it).
  constexpr std::uint32_t decompress(CompressedWord cw,
                                     std::uint32_t address) const {
    switch (kind_) {
      case CodecKind::kPaper:
        return scheme_.decompress(cw, address);
      case CodecKind::kFpc: {
        // Masking the class keeps a strike-corrupted encoded form (the
        // fault hooks flip stored bits freely) inside the table.
        const unsigned cls = (cw.bits >> kFpcMaxPayloadBits) & 3u;
        const std::uint32_t payload =
            cw.bits & ((1u << kFpcMaxPayloadBits) - 1);
        // Class 0 is the zero word; wider classes sign-extend their
        // payload width (the nesting makes any narrower payload correct
        // at its own width too).
        if (cls == 0) return 0;
        return sign_extend(payload, kFpcPayloadWidth[cls]);
      }
      case CodecKind::kBdi: {
        const std::uint32_t delta =
            sign_extend(cw.bits & ((1u << kBdiDeltaBits) - 1), kBdiDeltaBits);
        const std::uint32_t use_addr =
            0u - ((cw.bits >> kBdiDeltaBits) & 1u);
        return delta + (address & use_addr);
      }
      case CodecKind::kWkdm: {
        const std::uint32_t tag = cw.bits >> kWkdmTagShift;
        const std::uint32_t payload = cw.bits & kWkdmLowMask;
        if (tag == kWkdmTagZero) return 0;
        if (tag == kWkdmTagNarrow) return sign_extend(payload, kWkdmLowBits);
        return (address & ~kWkdmLowMask) | payload;
      }
    }
    return cw.bits;
  }

  // --- line granularity (accounting only) --------------------------------

  /// Bits a real implementation of this codec would emit for one line of
  /// `count` words based at `base_addr`, split into data and tag/metadata
  /// bits. See the header comment: line encodings may be stateful within
  /// the line (WKdm dictionary, BDI per-line base) and use richer pattern
  /// menus than the half-slot word forms (FPC's 16-bit classes).
  constexpr LineCompression compress_line(const std::uint32_t* words,
                                          std::size_t count,
                                          std::uint32_t base_addr) const {
    LineCompression line;
    line.masks = classify_words(words, count, base_addr);
    const std::uint32_t n = static_cast<std::uint32_t>(count);
    switch (kind_) {
      case CodecKind::kPaper: {
        // Per word: payload bits when compressed (VT rides as tag), full
        // word otherwise; plus one VC flag-array bit per word.
        std::uint32_t compressed = 0;
        for (std::size_t i = 0; i < count; ++i) {
          compressed += (line.masks.compressible() >> i) & 1u;
        }
        line.data_bits =
            compressed * scheme_.payload_bits() + (n - compressed) * kWordBits;
        line.tag_bits = compressed /* VT */ + n /* VC flags */;
        return line;
      }
      case CodecKind::kFpc: {
        // The full FPC pattern menu (3-bit prefix per word): zero, 4-bit
        // sign-extended, one byte, halfword, halfword padded with zeros,
        // two byte-extended halfwords, uncompressed.
        for (std::size_t i = 0; i < count; ++i) {
          line.data_bits += fpc_line_payload_bits(words[i]);
        }
        line.tag_bits = n * kFpcPrefixBits;
        return line;
      }
      case CodecKind::kBdi: {
        // Base+delta: one 32-bit base (the first word), per-word deltas of
        // the best feasible width from either the zero base or the line
        // base, one selector bit per word, 2-bit Δ-width selector.
        const std::uint32_t base = count > 0 ? words[0] : 0;
        std::uint32_t best = n * kWordBits;  // uncompressed fallback
        bool encoded = false;
        for (unsigned delta_bits = 8; delta_bits <= 16; delta_bits += 8) {
          bool ok = true;
          for (std::size_t i = 0; i < count && ok; ++i) {
            ok = fits_signed(words[i], delta_bits) ||
                 fits_signed(words[i] - base, delta_bits);
          }
          if (ok) {
            best = kWordBits + n * delta_bits;
            encoded = true;
            break;  // widths ascend: the first feasible one is smallest
          }
        }
        line.data_bits = best;
        line.tag_bits = encoded ? n /* base selectors */ + 2 /* Δ width */
                                : 2;
        return line;
      }
      case CodecKind::kWkdm: {
        // 16-entry direct-mapped dictionary, reset per line: zero (tag),
        // exact match (tag+index), partial high-22 match (tag+index+low
        // bits), miss (tag+full word, inserted).
        std::uint32_t dict[kWkdmDictSize] = {};
        bool used[kWkdmDictSize] = {};
        for (std::size_t i = 0; i < count; ++i) {
          const std::uint32_t v = words[i];
          if (v == 0) {
            line.tag_bits += kWkdmTagBits;
            continue;
          }
          const std::uint32_t idx = wkdm_dict_index(v);
          if (used[idx] && dict[idx] == v) {
            line.tag_bits += kWkdmTagBits + kWkdmIndexBits;
          } else if (used[idx] && ((dict[idx] ^ v) >> kWkdmLowBits) == 0) {
            line.tag_bits += kWkdmTagBits + kWkdmIndexBits;
            line.data_bits += kWkdmLowBits;
            dict[idx] = v;
          } else {
            line.tag_bits += kWkdmTagBits;
            line.data_bits += kWordBits;
            dict[idx] = v;
            used[idx] = true;
          }
        }
        return line;
      }
    }
    return line;
  }

  friend bool operator==(const Codec&, const Codec&) = default;

 private:
  // --- shared bit helpers -------------------------------------------------

  /// 1 when `value` sign-extends from its low `bits` bits (the biased
  /// range check of Scheme::small_test, generalized).
  static constexpr std::uint32_t fits_signed_bit(std::uint32_t value,
                                                 unsigned bits) {
    const std::uint32_t bias = 1u << (bits - 1);
    return ((value + bias) >> bits) == 0 ? 1u : 0u;
  }
  static constexpr bool fits_signed(std::uint32_t value, unsigned bits) {
    return fits_signed_bit(value, bits) != 0;
  }

  /// Sign-extends the low `width` bits of `bits` (width < 32).
  static constexpr std::uint32_t sign_extend(std::uint32_t bits,
                                             unsigned width) {
    const std::uint32_t sign = 0u - ((bits >> (width - 1)) & 1u);
    return (bits & ((1u << width) - 1)) | (sign << width);
  }

  // --- FPC ---------------------------------------------------------------
  // Half-slot form: 3-bit class in bits [15:13], payload in bits [12:0].
  // Word classes are the nested sign-extension widths that fit the slot:
  // zero, 4-bit, 8-bit, 13-bit. The line accounting additionally uses
  // FPC's 16-bit patterns, which cannot share a half slot.
  static constexpr unsigned kFpcPrefixBits = 3;
  static constexpr unsigned kFpcMaxPayloadBits = 13;
  static constexpr unsigned kFpcNoClass = ~0u;
  static constexpr unsigned kFpcPayloadWidth[4] = {0, 4, 8, 13};

  static constexpr unsigned fpc_word_class(std::uint32_t value) {
    if (value == 0) return 0;
    if (fits_signed(value, 4)) return 1;
    if (fits_signed(value, 8)) return 2;
    if (fits_signed(value, 13)) return 3;
    return kFpcNoClass;
  }

  /// Payload bits of the best full-menu FPC pattern for one word.
  static constexpr std::uint32_t fpc_line_payload_bits(std::uint32_t value) {
    if (value == 0) return 0;
    if (fits_signed(value, 4)) return 4;
    if (fits_signed(value, 8)) return 8;
    if (fits_signed(value, 16)) return 16;
    if ((value & 0xffffu) == 0) return 16;  // halfword padded with zeros
    if (fits_signed(value & 0xffffu, 8) && fits_signed(value >> 16, 8)) {
      return 16;  // two halfwords, each a sign-extended byte
    }
    return kWordBits;
  }

  // --- BDI ---------------------------------------------------------------
  // Half-slot form: base selector in bit 15 (0 = zero base, 1 = the word's
  // own address), 15-bit signed delta in bits [14:0]. Unlike the paper's
  // prefix match, the address base is arithmetic: it also catches pointers
  // just across an aligned-region boundary.
  static constexpr unsigned kBdiDeltaBits = 15;

  // --- WKdm --------------------------------------------------------------
  // Half-slot form: 2-bit tag in bits [15:14] (zero / narrow / address
  // partial match), 10-bit payload in bits [9:0]. The line accounting uses
  // the real dictionary.
  static constexpr unsigned kWkdmLowBits = 10;
  static constexpr std::uint32_t kWkdmLowMask = (1u << kWkdmLowBits) - 1;
  static constexpr unsigned kWkdmTagShift = 14;
  static constexpr unsigned kWkdmTagBits = 2;
  static constexpr std::uint32_t kWkdmTagZero = 0;
  static constexpr std::uint32_t kWkdmTagNarrow = 1;
  static constexpr std::uint32_t kWkdmTagAddr = 2;
  static constexpr unsigned kWkdmDictSize = 16;
  static constexpr unsigned kWkdmIndexBits = 4;

  static constexpr bool wkdm_narrow(std::uint32_t value) {
    return fits_signed(value, kWkdmLowBits);
  }
  static constexpr bool wkdm_addr_match(std::uint32_t value,
                                        std::uint32_t address) {
    return ((value ^ address) >> kWkdmLowBits) == 0;
  }
  /// Direct-mapped dictionary slot for a word: a cheap hash of its high
  /// (matchable) bits so nearby pointers spread across entries.
  static constexpr std::uint32_t wkdm_dict_index(std::uint32_t value) {
    const std::uint32_t high = value >> kWkdmLowBits;
    return (high ^ (high >> 4) ^ (high >> 9)) & (kWkdmDictSize - 1);
  }

  CodecKind kind_ = CodecKind::kPaper;
  Scheme scheme_{};
};

/// The default codec: the paper's scheme with the paper's parameters.
inline constexpr Codec kPaperCodec{};

/// Display name for a hierarchy running under `codec`: the bare base name
/// for the paper codec — existing CSV tags, journals and oracle
/// fingerprints stay bit-identical — and "<base>@<codec>" otherwise.
inline std::string codec_suffixed_name(std::string base, const Codec& codec) {
  if (codec.kind() == CodecKind::kPaper) return base;
  return base + "@" + codec.name();
}

}  // namespace cpc::compress
