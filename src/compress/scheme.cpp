#include "compress/scheme.hpp"

namespace cpc::compress {

ValueClass Scheme::classify(std::uint32_t value, std::uint32_t address) const {
  // Small value: bits [payload_bits_-1 .. 31] all equal (all-zero or all-one
  // sign extension). Equivalent to the signed value fitting payload_bits_ bits.
  const std::uint32_t sign_region = value >> (payload_bits_ - 1);
  const std::uint32_t all_ones = (1u << (kWordBits - payload_bits_ + 1)) - 1;
  if (sign_region == 0 || sign_region == all_ones) {
    return ValueClass::kSmallValue;
  }
  // Pointer: high (32 - payload_bits_) bits match those of the address.
  if ((value & prefix_mask()) == (address & prefix_mask())) {
    return ValueClass::kPointer;
  }
  return ValueClass::kIncompressible;
}

std::optional<CompressedWord> Scheme::compress(std::uint32_t value,
                                               std::uint32_t address) const {
  switch (classify(value, address)) {
    case ValueClass::kSmallValue:
      return CompressedWord{value & payload_mask()};
    case ValueClass::kPointer:
      return CompressedWord{(value & payload_mask()) | vt_mask()};
    case ValueClass::kIncompressible:
      return std::nullopt;
  }
  return std::nullopt;  // unreachable
}

std::uint32_t Scheme::decompress(CompressedWord cw, std::uint32_t address) const {
  const std::uint32_t payload = cw.bits & payload_mask();
  if ((cw.bits & vt_mask()) != 0) {
    // Pointer: borrow the prefix from the address the word lives at.
    return (address & prefix_mask()) | payload;
  }
  // Small value: replicate the sign bit (bit payload_bits_-1) upward.
  const std::uint32_t sign_bit = payload >> (payload_bits_ - 1);
  return sign_bit ? (payload | prefix_mask()) : payload;
}

}  // namespace cpc::compress
