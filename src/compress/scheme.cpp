#include "compress/scheme.hpp"

// The Scheme members are branch-free bit tests defined inline in the header
// so the per-word loops in the hierarchies vectorize. This translation unit
// holds the executable proof that they implement the paper's definition: a
// straight transcription of section 2.1's prose, compared against the
// shipped implementation over every boundary value and a pseudo-random
// sweep — at compile time, so a divergence is a build error.

namespace cpc::compress {
namespace {

/// Paper section 2.1, transcribed literally: a word is a small value when
/// bits [P-1 .. 31] are identical (pure sign extension), else a pointer
/// when its high (32 - P) bits equal the address's, else incompressible.
constexpr ValueClass reference_classify(unsigned payload_bits,
                                        std::uint32_t value,
                                        std::uint32_t address) {
  const std::uint32_t sign_region = value >> (payload_bits - 1);
  const std::uint32_t all_ones =
      (1u << (Scheme::kWordBits - payload_bits + 1)) - 1;
  if (sign_region == 0 || sign_region == all_ones) {
    return ValueClass::kSmallValue;
  }
  const std::uint32_t prefix_mask = ~((1u << payload_bits) - 1);
  if ((value & prefix_mask) == (address & prefix_mask)) {
    return ValueClass::kPointer;
  }
  return ValueClass::kIncompressible;
}

/// Reference round trip: compress per the classification, decompress by
/// sign-extending or borrowing the address prefix.
constexpr std::uint32_t reference_roundtrip(unsigned payload_bits,
                                            std::uint32_t value,
                                            std::uint32_t address) {
  const std::uint32_t payload_mask = (1u << payload_bits) - 1;
  const std::uint32_t prefix_mask = ~payload_mask;
  switch (reference_classify(payload_bits, value, address)) {
    case ValueClass::kSmallValue: {
      const std::uint32_t payload = value & payload_mask;
      const std::uint32_t sign_bit = payload >> (payload_bits - 1);
      return sign_bit ? (payload | prefix_mask) : payload;
    }
    case ValueClass::kPointer:
      return (address & prefix_mask) | (value & payload_mask);
    case ValueClass::kIncompressible:
      return value;  // stored uncompressed
  }
  return value;
}

constexpr bool agrees(unsigned compressed_bits, std::uint32_t value,
                      std::uint32_t address) {
  const Scheme s{compressed_bits};
  const unsigned payload_bits = compressed_bits - 1;
  const ValueClass ref = reference_classify(payload_bits, value, address);
  if (s.classify(value, address) != ref) return false;
  if (s.is_compressible(value, address) !=
      (ref != ValueClass::kIncompressible)) {
    return false;
  }
  const auto cw = s.compress(value, address);
  if (cw.has_value() != (ref != ValueClass::kIncompressible)) return false;
  if (cw && s.decompress(*cw, address) !=
                reference_roundtrip(payload_bits, value, address)) {
    return false;
  }
  // The batched masks must agree with the scalar path word by word.
  const WordClassMasks m = s.classify_words(&value, 1, address);
  if ((m.small != 0) != (ref == ValueClass::kSmallValue)) return false;
  if ((m.pointer != 0) != (ref == ValueClass::kPointer)) return false;
  return true;
}

constexpr bool check_scheme(unsigned compressed_bits) {
  const Scheme s{compressed_bits};
  const unsigned payload_bits = compressed_bits - 1;
  const std::uint32_t addr = 0x4ace'8000u;
  // Boundary values: around zero, the small-value range edges, the biased
  // wrap-around, and the address prefix (exact, off-by-one-payload, and
  // first-mismatching-prefix-bit neighbours).
  const std::uint32_t boundaries[] = {
      0u,
      1u,
      0xffff'ffffu,
      0x8000'0000u,
      0x7fff'ffffu,
      static_cast<std::uint32_t>(s.small_max()),
      static_cast<std::uint32_t>(s.small_max()) + 1u,
      static_cast<std::uint32_t>(s.small_min()),
      static_cast<std::uint32_t>(s.small_min()) - 1u,
      addr,
      addr + ((1u << payload_bits) - 1),
      addr + (1u << payload_bits),
      addr - 1u,
      addr ^ (1u << payload_bits),
      addr ^ 0x8000'0000u,
  };
  for (const std::uint32_t value : boundaries) {
    for (const std::uint32_t a : {addr, value, 0u, 0xffff'fffcu}) {
      if (!agrees(compressed_bits, value, a)) return false;
    }
  }
  // Pseudo-random sweep (xorshift32; any fixed seed works — the point is
  // coverage of prefixes that neither match nor sign-extend).
  std::uint32_t x = 0x9e37'79b9u;
  for (int i = 0; i < 4096; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    const std::uint32_t value = x;
    const std::uint32_t a = (x * 0x85eb'ca6bu) ^ addr;
    if (!agrees(compressed_bits, value, a)) return false;
  }
  return true;
}

// The paper's scheme plus the ablation sweep's widths.
static_assert(check_scheme(8));
static_assert(check_scheme(16));
static_assert(check_scheme(24));

}  // namespace
}  // namespace cpc::compress
