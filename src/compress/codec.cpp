#include "compress/codec.hpp"

// The Codec members are inline switch-dispatched bit tests. This
// translation unit holds the executable proof of the word-granularity
// contract every consumer of a Codec assumes (compress/codec.hpp header
// comment): for every codec, over boundary values and a pseudo-random
// sweep of (value, address) pairs — at compile time, so a divergence is a
// build error:
//
//   * compress() succeeds exactly when is_compressible() holds, and
//     classify() agrees (compressible ⇔ not kIncompressible);
//   * the encoded form fits compressed_bits() (half-slot packing);
//   * decompress(compress(v, a), a) == v (exact round trip);
//   * the word ops are address-deterministic by construction (pure
//     functions of (value, address) — nothing else to prove).
//
// The paper codec additionally must agree with Scheme bit-for-bit; that is
// free (it delegates), and scheme.cpp carries Scheme's own proof against
// the paper's prose.

namespace cpc::compress {
namespace {

constexpr bool word_contract_holds(const Codec& codec, std::uint32_t value,
                                   std::uint32_t address) {
  const bool compressible = codec.is_compressible(value, address);
  if (compressible !=
      (codec.classify(value, address) != ValueClass::kIncompressible)) {
    return false;
  }
  const std::optional<CompressedWord> cw = codec.compress(value, address);
  if (cw.has_value() != compressible) return false;
  if (!cw) return true;
  if (codec.compressed_bits() < 32 &&
      (cw->bits >> codec.compressed_bits()) != 0) {
    return false;
  }
  return codec.decompress(*cw, address) == value;
}

/// classify_words must agree with per-word classify for every lane.
constexpr bool masks_agree(const Codec& codec, const std::uint32_t* words,
                           std::size_t count, std::uint32_t base_addr) {
  const WordClassMasks m = codec.classify_words(words, count, base_addr);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t addr = base_addr + static_cast<std::uint32_t>(i) * 4;
    const ValueClass cls = codec.classify(words[i], addr);
    if (((m.small >> i) & 1u) != (cls == ValueClass::kSmallValue ? 1u : 0u)) {
      return false;
    }
    if (((m.pointer >> i) & 1u) != (cls == ValueClass::kPointer ? 1u : 0u)) {
      return false;
    }
  }
  return true;
}

constexpr std::uint32_t xorshift(std::uint32_t x) {
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return x;
}

constexpr bool check_codec(CodecKind kind) {
  const Codec codec{kind};
  // Boundary values around every codec's class edges, plus address-relative
  // probes (the address-based classes care about value - address).
  constexpr std::uint32_t kValues[] = {
      0u,          1u,          0xffffffffu, 7u,          8u,
      0xfffffff8u, 127u,        128u,        0xffffff80u, 0xfff8u,
      0x1000u,     0x0fffu,     0x3ffu,      0x400u,      0xfffffc00u,
      0x4000u,     0x3fffu,     0xffffc000u, 0x7fffu,     0x8000u,
      0x12340000u, 0x00120000u, 0xdeadbeefu, 0x7fffffffu, 0x80000000u,
  };
  constexpr std::uint32_t kAddrs[] = {0u, 0x40u, 0x8000u, 0x12340040u,
                                      0xfffffe00u};
  for (std::uint32_t value : kValues) {
    for (std::uint32_t addr : kAddrs) {
      if (!word_contract_holds(codec, value, addr)) return false;
      // Address-relative probes land on the delta/prefix class edges.
      if (!word_contract_holds(codec, addr + value, addr)) return false;
      if (!word_contract_holds(codec, addr - value, addr)) return false;
    }
  }
  // Pseudo-random sweep.
  std::uint32_t v = 0x2545f491u;
  std::uint32_t a = 0x9e3779b9u;
  std::uint32_t line[8] = {};
  for (int i = 0; i < 512; ++i) {
    v = xorshift(v);
    a = xorshift(a);
    if (!word_contract_holds(codec, v, a & ~3u)) return false;
    line[i % 8] = v;
    if (i % 8 == 7 && !masks_agree(codec, line, 8, a & ~31u)) return false;
  }
  return true;
}

static_assert(check_codec(CodecKind::kPaper));
static_assert(check_codec(CodecKind::kFpc));
static_assert(check_codec(CodecKind::kBdi));
static_assert(check_codec(CodecKind::kWkdm));

/// Line accounting sanity: a compressible line's payload beats the raw
/// size, metadata is never reported as free, and no input inflates the
/// payload past uncompressed.
constexpr bool check_line_accounting(CodecKind kind) {
  const Codec codec{kind};
  constexpr std::uint32_t zeros[8] = {};
  const LineCompression z = codec.compress_line(zeros, 8, 0x1000u);
  if (z.data_bits >= 8 * 32) return false;
  if (z.tag_bits == 0) return false;  // metadata is never free
  constexpr std::uint32_t noise[8] = {0xdeadbeefu, 0xcafef00du, 0x12345678u,
                                      0x9abcdef0u, 0x55aa55aau, 0xa5a5a5a5u,
                                      0x0f0f0f0fu, 0xf0f0f0f0u};
  const LineCompression x = codec.compress_line(noise, 8, 0x1000u);
  if (x.data_bits > 8 * 32) return false;
  return true;
}

static_assert(check_line_accounting(CodecKind::kPaper));
static_assert(check_line_accounting(CodecKind::kFpc));
static_assert(check_line_accounting(CodecKind::kBdi));
static_assert(check_line_accounting(CodecKind::kWkdm));

}  // namespace
}  // namespace cpc::compress
