#pragma once
// Value compression scheme of Zhang & Gupta (ICPP 2003), section 2.1 / 3.2.
//
// A 32-bit word is compressible when either
//   * it is a "small value": its high-order (33 - P) bits are all zeros or
//     all ones (i.e. bits [P-1 .. 31] are identical), so they are pure sign
//     extension and only the low P bits need to be kept; or
//   * it is a "pointer": its high-order (32 - P) bits equal the same bits of
//     the *address the word is stored at*, so the prefix can be borrowed from
//     the address at decompression time.
//
// With the paper's parameters (16-bit compressed form, P = 15 payload bits)
// the small-value check inspects the 18 high-order bits, the pointer check
// inspects the 17 high-order bits, small values cover [-16384, 16383] and
// pointers compress within an aligned 32K chunk.
//
// The compressed form is P payload bits plus one VT (value-type) flag bit
// stored with the value; the VC (value-compressed) flag lives outside the
// value (in the cache line's flag array, see cpc::core::CompressedLine).

#include <cstddef>
#include <cstdint>
#include <optional>

namespace cpc::compress {

/// Classification of a dynamically accessed word (paper Fig. 2 / Fig. 3).
enum class ValueClass : std::uint8_t {
  kSmallValue,      ///< high bits are sign extension; VT = 0
  kPointer,         ///< high bits match the word's own address; VT = 1
  kIncompressible,  ///< stored uncompressed; VC = 0
};

/// A word in compressed form. Only ever produced for compressible words.
/// Bit layout (for payload width P): bit P = VT, bits [0, P-1] = payload.
struct CompressedWord {
  std::uint32_t bits = 0;

  friend bool operator==(const CompressedWord&, const CompressedWord&) = default;
};

/// Per-word classification bit-masks for a run of consecutive words (FPC
/// uses the same trick: classify a whole line into per-class bit vectors,
/// then count/test with mask ops instead of a branch per word). Bit i
/// describes word i. The masks are disjoint: a word that passes both the
/// small-value and the pointer test is reported small, matching the
/// priority in Scheme::classify.
struct WordClassMasks {
  std::uint32_t small = 0;    ///< word is a small value (VT = 0)
  std::uint32_t pointer = 0;  ///< word compresses as a pointer (VT = 1)

  constexpr std::uint32_t compressible() const { return small | pointer; }
};

/// A compression scheme with a configurable compressed width.
///
/// `compressed_bits` is the total size of the compressed form including the
/// VT flag; the paper uses 16 (section 2.1: "compressing a 32 bit value down
/// to 16 bits strikes a good balance"). The ablation benches sweep 8/16/24.
class Scheme {
 public:
  static constexpr unsigned kWordBits = 32;

  /// Constructs a scheme. `compressed_bits` must be in [2, 31].
  constexpr explicit Scheme(unsigned compressed_bits = 16)
      : payload_bits_(compressed_bits - 1) {}

  constexpr unsigned compressed_bits() const { return payload_bits_ + 1; }
  constexpr unsigned payload_bits() const { return payload_bits_; }

  /// Number of high-order bits inspected by the small-value check
  /// (18 for the paper's parameters).
  constexpr unsigned small_check_bits() const { return kWordBits - payload_bits_ + 1; }

  /// Number of high-order bits shared with the address for the pointer check
  /// (17 for the paper's parameters).
  constexpr unsigned prefix_bits() const { return kWordBits - payload_bits_; }

  /// Most positive / most negative small value representable.
  constexpr std::int32_t small_max() const {
    return static_cast<std::int32_t>((1u << (payload_bits_ - 1)) - 1);
  }
  constexpr std::int32_t small_min() const { return -small_max() - 1; }

  /// Classifies `value` stored at `address` (paper checks (i)-(iii), Fig. 8a).
  /// The small-value checks win ties with the pointer check; both decodings
  /// agree whenever both conditions hold, so the priority is unobservable.
  ///
  /// Branch-free: the small-value test is the classic biased range check
  /// (value + 2^(P-1) fits in P bits, with the unsigned wrap-around landing
  /// exactly on small_min), the pointer test XORs away the shared prefix.
  /// scheme.cpp static_asserts this against a straight transcription of the
  /// paper's definition over boundary values and a pseudo-random sweep.
  constexpr ValueClass classify(std::uint32_t value, std::uint32_t address) const {
    const std::uint32_t small = small_test(value);
    const std::uint32_t ptr = pointer_test(value, address);
    // small → 0 (kSmallValue); else ptr → 1 (kPointer); else 2.
    return static_cast<ValueClass>((1u - small) * (2u - ptr));
  }

  constexpr bool is_compressible(std::uint32_t value, std::uint32_t address) const {
    return (small_test(value) | pointer_test(value, address)) != 0;
  }

  /// Classifies `count` consecutive words whose first word lives at
  /// `base_addr`, one pass, no per-word branches (the loop auto-vectorizes).
  /// `count` must be at most 32 — a cache line, not an arbitrary buffer.
  constexpr WordClassMasks classify_words(const std::uint32_t* words,
                                          std::size_t count,
                                          std::uint32_t base_addr) const {
    WordClassMasks m;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t addr = base_addr + static_cast<std::uint32_t>(i) * 4;
      const std::uint32_t small = small_test(words[i]);
      const std::uint32_t ptr = pointer_test(words[i], addr);
      m.small |= small << i;
      m.pointer |= (ptr & (small ^ 1u)) << i;
    }
    return m;
  }

  /// Compresses `value` stored at `address`; empty when incompressible.
  constexpr std::optional<CompressedWord> compress(std::uint32_t value,
                                                   std::uint32_t address) const {
    const std::uint32_t small = small_test(value);
    const std::uint32_t ptr = pointer_test(value, address);
    if ((small | ptr) == 0) return std::nullopt;
    // VT is set only for pointer-compressed words (small wins ties).
    const std::uint32_t vt = (ptr & (small ^ 1u)) << payload_bits_;
    return CompressedWord{(value & payload_mask()) | vt};
  }

  /// Reconstructs the original word from its compressed form. `address` must
  /// be the address the word is stored at (pointer prefixes are borrowed
  /// from it, paper Fig. 1a).
  constexpr std::uint32_t decompress(CompressedWord cw, std::uint32_t address) const {
    const std::uint32_t payload = cw.bits & payload_mask();
    // All-ones when VT is set: prefix comes from the address; otherwise the
    // payload's sign bit is replicated upward.
    const std::uint32_t use_addr = 0u - ((cw.bits >> payload_bits_) & 1u);
    const std::uint32_t sign = 0u - (payload >> (payload_bits_ - 1));
    return (((address & use_addr) | (sign & ~use_addr)) & prefix_mask()) | payload;
  }

  friend bool operator==(const Scheme&, const Scheme&) = default;

 private:
  constexpr std::uint32_t payload_mask() const { return (1u << payload_bits_) - 1; }
  constexpr std::uint32_t vt_mask() const { return 1u << payload_bits_; }
  constexpr std::uint32_t prefix_mask() const { return ~payload_mask(); }

  /// 1 when bits [P-1 .. 31] of `value` are all equal (sign extension).
  constexpr std::uint32_t small_test(std::uint32_t value) const {
    const std::uint32_t bias = 1u << (payload_bits_ - 1);
    return ((value + bias) >> payload_bits_) == 0 ? 1u : 0u;
  }

  /// 1 when the high (32 - P) bits of `value` match those of `address`.
  constexpr std::uint32_t pointer_test(std::uint32_t value,
                                       std::uint32_t address) const {
    return ((value ^ address) >> payload_bits_) == 0 ? 1u : 0u;
  }

  unsigned payload_bits_;
};

/// The scheme the paper evaluates: 16-bit compressed words.
inline constexpr Scheme kPaperScheme{16};

}  // namespace cpc::compress
