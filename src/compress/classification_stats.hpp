#pragma once
// Accumulator for the value-compressibility study of paper Fig. 3:
// every word-level memory access is classified as compressible small value,
// compressible pointer, or incompressible — under any codec, not just the
// paper's scheme.
//
// The line-level accumulator (record_line) additionally totals the
// whole-line encoding cost the codec reports, split into data and
// tag/metadata bits, so cross-codec compression ratios are honest about
// per-word prefixes, dictionary indices and flag arrays (Touché-style
// accounting — see docs/codecs.md).

#include <cstddef>
#include <cstdint>

#include "compress/codec.hpp"

namespace cpc::compress {

/// Counts classified word accesses; feeds bench/fig03_compressibility and
/// the per-codec comparison tables.
class ClassificationStats {
 public:
  constexpr explicit ClassificationStats(Codec codec = kPaperCodec)
      : codec_(codec) {}
  /// Width-ablation convenience: the paper codec with a custom scheme.
  constexpr explicit ClassificationStats(Scheme scheme)
      : codec_(Codec{scheme}) {}

  void record(std::uint32_t value, std::uint32_t address) {
    switch (codec_.classify(value, address)) {
      case ValueClass::kSmallValue: ++small_; break;
      case ValueClass::kPointer: ++pointer_; break;
      case ValueClass::kIncompressible: ++incompressible_; break;
    }
  }

  /// Accumulates the codec's whole-line encoding cost for one line image.
  void record_line(const std::uint32_t* words, std::size_t count,
                   std::uint32_t base_addr) {
    const LineCompression line = codec_.compress_line(words, count, base_addr);
    raw_bits_ += static_cast<std::uint64_t>(count) * Codec::kWordBits;
    data_bits_ += line.data_bits;
    tag_bits_ += line.tag_bits;
    ++lines_;
  }

  std::uint64_t small_values() const { return small_; }
  std::uint64_t pointers() const { return pointer_; }
  std::uint64_t incompressible() const { return incompressible_; }
  std::uint64_t total() const { return small_ + pointer_ + incompressible_; }

  /// Fraction of accesses that were compressible, in [0, 1]; 0 when empty.
  double compressible_fraction() const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(small_ + pointer_) / static_cast<double>(t);
  }
  double small_fraction() const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(small_) / static_cast<double>(t);
  }
  double pointer_fraction() const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(pointer_) / static_cast<double>(t);
  }

  // --- line accounting (record_line) -------------------------------------
  std::uint64_t lines() const { return lines_; }
  std::uint64_t raw_bits() const { return raw_bits_; }
  std::uint64_t data_bits() const { return data_bits_; }
  std::uint64_t tag_bits() const { return tag_bits_; }

  /// raw / (data + tag): > 1 means the codec wins after paying its own
  /// metadata; 1.0 when nothing was recorded.
  double line_compression_ratio() const {
    const std::uint64_t encoded = data_bits_ + tag_bits_;
    return encoded == 0 ? 1.0
                        : static_cast<double>(raw_bits_) /
                              static_cast<double>(encoded);
  }
  /// Fraction of the encoded stream that is tag/flag metadata, in [0, 1].
  double tag_overhead_fraction() const {
    const std::uint64_t encoded = data_bits_ + tag_bits_;
    return encoded == 0
               ? 0.0
               : static_cast<double>(tag_bits_) / static_cast<double>(encoded);
  }
  /// Mean metadata bits per recorded line; 0 when empty.
  double tag_bits_per_line() const {
    return lines_ == 0
               ? 0.0
               : static_cast<double>(tag_bits_) / static_cast<double>(lines_);
  }

  void reset() {
    small_ = pointer_ = incompressible_ = 0;
    lines_ = raw_bits_ = data_bits_ = tag_bits_ = 0;
  }

  const Codec& codec() const { return codec_; }
  const Scheme& scheme() const { return codec_.scheme(); }

 private:
  Codec codec_;
  std::uint64_t small_ = 0;
  std::uint64_t pointer_ = 0;
  std::uint64_t incompressible_ = 0;
  std::uint64_t lines_ = 0;
  std::uint64_t raw_bits_ = 0;
  std::uint64_t data_bits_ = 0;
  std::uint64_t tag_bits_ = 0;
};

}  // namespace cpc::compress
