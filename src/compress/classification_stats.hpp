#pragma once
// Accumulator for the value-compressibility study of paper Fig. 3:
// every word-level memory access is classified as compressible small value,
// compressible pointer, or incompressible.

#include <cstdint>

#include "compress/scheme.hpp"

namespace cpc::compress {

/// Counts classified word accesses; feeds bench/fig03_compressibility.
class ClassificationStats {
 public:
  constexpr explicit ClassificationStats(Scheme scheme = kPaperScheme)
      : scheme_(scheme) {}

  void record(std::uint32_t value, std::uint32_t address) {
    switch (scheme_.classify(value, address)) {
      case ValueClass::kSmallValue: ++small_; break;
      case ValueClass::kPointer: ++pointer_; break;
      case ValueClass::kIncompressible: ++incompressible_; break;
    }
  }

  std::uint64_t small_values() const { return small_; }
  std::uint64_t pointers() const { return pointer_; }
  std::uint64_t incompressible() const { return incompressible_; }
  std::uint64_t total() const { return small_ + pointer_ + incompressible_; }

  /// Fraction of accesses that were compressible, in [0, 1]; 0 when empty.
  double compressible_fraction() const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(small_ + pointer_) / static_cast<double>(t);
  }
  double small_fraction() const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(small_) / static_cast<double>(t);
  }
  double pointer_fraction() const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(pointer_) / static_cast<double>(t);
  }

  void reset() { small_ = pointer_ = incompressible_ = 0; }

  const Scheme& scheme() const { return scheme_; }

 private:
  Scheme scheme_;
  std::uint64_t small_ = 0;
  std::uint64_t pointer_ = 0;
  std::uint64_t incompressible_ = 0;
};

}  // namespace cpc::compress
