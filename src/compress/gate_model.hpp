#pragma once
// Gate-level delay model of the compressor/decompressor (paper Fig. 8).
//
// The paper argues both delays are hidden: compression happens before
// write-back (data is ready early in the pipeline), decompression overlaps
// tag matching. The model below reproduces the paper's arithmetic — a
// ceil(log2(n))-level AND/NOR reduction per parallel check plus a fixed
// priority-encode stage — so the ablation benches can report how the delay
// grows with the compressed width and confirm the "8 gate delays" figure.

#include <cstdint>

#include "compress/codec.hpp"
#include "compress/scheme.hpp"

namespace cpc::compress {

/// ceil(log2(n)) for n >= 1, the depth of a binary tree of 2-input gates.
constexpr unsigned gate_tree_depth(unsigned n) {
  unsigned depth = 0;
  unsigned span = 1;
  while (span < n) {
    span *= 2;
    ++depth;
  }
  return depth;
}

/// Gate levels needed to distinguish the three compression cases once the
/// parallel checks have resolved (paper: "extra delay ... in form of 3
/// levels of gates").
inline constexpr unsigned kPriorityLevels = 3;

/// Gate levels on the decompression path: each reconstructed high-order bit
/// is driven through a flag-enabled 2-level mux (paper Fig. 8b).
inline constexpr unsigned kDecompressLevels = 2;

/// Total compressor delay in 2-input gate levels for a scheme.
/// For the paper's scheme: ceil(log2(18)) + 3 = 5 + 3 = 8.
constexpr unsigned compressor_gate_delay(const Scheme& s) {
  return gate_tree_depth(s.small_check_bits()) + kPriorityLevels;
}

/// Total decompressor delay in 2-input gate levels (2 for any width).
constexpr unsigned decompressor_gate_delay(const Scheme&) {
  return kDecompressLevels;
}

static_assert(compressor_gate_delay(kPaperScheme) == 8,
              "paper reports a total compressor delay of 8 gate levels");
static_assert(decompressor_gate_delay(kPaperScheme) == 2);

/// Carry-lookahead adder depth for a `bits`-wide sum: generate/propagate
/// (1), a log-depth prefix tree, and the final sum stage (1).
constexpr unsigned adder_gate_levels(unsigned bits) {
  return 1 + gate_tree_depth(bits) + 1;
}

/// Per-codec compressor delay, same 2-input-gate-level arithmetic:
///  * paper — the Fig. 8 model above;
///  * FPC — the widest pattern test reduces a full 32-bit word (zero
///    detect) before the same priority encode;
///  * BDI — a 32-bit subtract (carry-lookahead) feeds a 17-bit range
///    reduction, then priority encode over the two bases;
///  * WKdm — a 22-bit comparator tree against the dictionary/address entry
///    plus priority encode across the tag classes.
constexpr unsigned compressor_gate_delay(const Codec& codec) {
  switch (codec.kind()) {
    case CodecKind::kPaper:
      return compressor_gate_delay(codec.scheme());
    case CodecKind::kFpc:
      return gate_tree_depth(Codec::kWordBits) + kPriorityLevels;
    case CodecKind::kBdi:
      return adder_gate_levels(Codec::kWordBits) + gate_tree_depth(17) +
             kPriorityLevels;
    case CodecKind::kWkdm:
      return gate_tree_depth(22) + kPriorityLevels;
  }
  return 0;
}

/// Per-codec decompressor delay: the flag-enabled mux of Fig. 8b for the
/// prefix/sign codecs, plus an adder stage for BDI's base + delta.
constexpr unsigned decompressor_gate_delay(const Codec& codec) {
  switch (codec.kind()) {
    case CodecKind::kPaper:
      return decompressor_gate_delay(codec.scheme());
    case CodecKind::kFpc:
      return kDecompressLevels + 1;  // class decode feeds the mux selects
    case CodecKind::kBdi:
      return adder_gate_levels(Codec::kWordBits);
    case CodecKind::kWkdm:
      return kDecompressLevels + 1;  // tag decode feeds the mux selects
  }
  return 0;
}

static_assert(compressor_gate_delay(kPaperCodec) == 8,
              "the paper codec must keep the paper's 8-gate-level figure");
static_assert(compressor_gate_delay(Codec{CodecKind::kFpc}) == 8);
static_assert(compressor_gate_delay(Codec{CodecKind::kBdi}) == 15);
static_assert(compressor_gate_delay(Codec{CodecKind::kWkdm}) == 8);
static_assert(decompressor_gate_delay(Codec{CodecKind::kBdi}) == 7,
              "BDI pays a full adder on the read path");

}  // namespace cpc::compress
