#pragma once
// Gate-level delay model of the compressor/decompressor (paper Fig. 8).
//
// The paper argues both delays are hidden: compression happens before
// write-back (data is ready early in the pipeline), decompression overlaps
// tag matching. The model below reproduces the paper's arithmetic — a
// ceil(log2(n))-level AND/NOR reduction per parallel check plus a fixed
// priority-encode stage — so the ablation benches can report how the delay
// grows with the compressed width and confirm the "8 gate delays" figure.

#include <cstdint>

#include "compress/scheme.hpp"

namespace cpc::compress {

/// ceil(log2(n)) for n >= 1, the depth of a binary tree of 2-input gates.
constexpr unsigned gate_tree_depth(unsigned n) {
  unsigned depth = 0;
  unsigned span = 1;
  while (span < n) {
    span *= 2;
    ++depth;
  }
  return depth;
}

/// Gate levels needed to distinguish the three compression cases once the
/// parallel checks have resolved (paper: "extra delay ... in form of 3
/// levels of gates").
inline constexpr unsigned kPriorityLevels = 3;

/// Gate levels on the decompression path: each reconstructed high-order bit
/// is driven through a flag-enabled 2-level mux (paper Fig. 8b).
inline constexpr unsigned kDecompressLevels = 2;

/// Total compressor delay in 2-input gate levels for a scheme.
/// For the paper's scheme: ceil(log2(18)) + 3 = 5 + 3 = 8.
constexpr unsigned compressor_gate_delay(const Scheme& s) {
  return gate_tree_depth(s.small_check_bits()) + kPriorityLevels;
}

/// Total decompressor delay in 2-input gate levels (2 for any width).
constexpr unsigned decompressor_gate_delay(const Scheme&) {
  return kDecompressLevels;
}

static_assert(compressor_gate_delay(kPaperScheme) == 8,
              "paper reports a total compressor delay of 8 gate levels");
static_assert(decompressor_gate_delay(kPaperScheme) == 2);

}  // namespace cpc::compress
