#pragma once
// Request/response grammar of the sweep service (tools/cpc_serve.cpp).
//
// Transport: every message travels as one sim::ipc frame of type kBlob —
// the same magic/version/CRC-guarded container the shard pipes use, so both
// directions of the socket inherit the decoder's corruption poisoning for
// free. The kBlob payload starts with a u64 message kind followed by the
// packed fields below (ipc::put_u64/put_string little-endian packing).
// Peers may also send bare kHeartbeat frames as liveness beacons; they
// carry no protocol meaning.
//
// Conversation shape:
//
//   client                          daemon
//   ------                          ------
//   kSubmit(id, spec, resume) --->
//                             <---  kAccepted(id, job_count, queue_depth)
//                              |or| kShed(reason)      — admission queue full
//                              |or| kRejected(reason)  — malformed request
//                              |or| kDraining(reason)  — SIGTERM drain active
//                             <---  kResult(id, job_index, journal-ok-line)*
//                             <---  kJobFailed(id, job_index, what)*
//                             <---  kSweepDone(id, ok_count, fail_count)
//
// Results stream incrementally, in completion order; the journal `ok` line
// payload is the exact schema-pinned wire format the resume journal and the
// shard pipes use (sim/journal.hpp), so a result can be re-sent verbatim
// from the on-disk journal after a daemon restart. A client that
// reconnects mid-stream re-sends kSubmit with resume = 1 and receives every
// journaled result again (it deduplicates by job index).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "compress/codec.hpp"
#include "sim/experiment.hpp"

namespace cpc::net {

/// Bump when any message layout below changes shape; a daemon refuses
/// messages from a different protocol version outright.
/// v2: JobSpec gained the `codecs` list (the (config × codec) grid).
inline constexpr std::uint64_t kProtocolVersion = 2;

enum class MsgKind : std::uint8_t {
  kSubmit = 0,  ///< client -> daemon: run this sweep (payload: JobSpec)
  kAccepted,    ///< daemon -> client: queued (a = job count, b = queue depth)
  kShed,        ///< daemon -> client: admission queue full, try later
  kRejected,    ///< daemon -> client: request malformed (text = reason)
  kDraining,    ///< daemon -> client: draining, refusing new work
  kResult,      ///< daemon -> client: one job done (a = index, text = ok line)
  kJobFailed,   ///< daemon -> client: one job failed (a = index, text = what)
  kSweepDone,   ///< daemon -> client: all jobs done (a = ok, b = failed)
};

/// Number of MsgKind enumerators (decoder range check).
inline constexpr std::uint64_t kMsgKindCount =
    static_cast<std::uint64_t>(MsgKind::kSweepDone) + 1;

/// What one submission asks the daemon to simulate: either a pre-recorded
/// trace file (daemon-side path — AF_UNIX means one host) or a registered
/// workload kernel, across a config list.
struct JobSpec {
  std::string trace_path;  ///< replay this .cpctrace file; "" = workload mode
  std::string workload;    ///< registered kernel name (workload mode)
  std::uint64_t trace_ops = 0;  ///< micro-ops to generate (workload mode)
  /// Generator seed (workload mode). The default matches
  /// workload::WorkloadParams / cpc_tracegen, so a seedless workload
  /// submission simulates the same trace those tools produce by default.
  std::uint64_t seed = 0x5eed;
  std::string configs;     ///< "BC,CPP", "all", ... (cpc_run grammar)
  /// Compression codecs to cross the config list with: "paper,fpc", "all",
  /// ... (cpc_run --codecs grammar); "" = paper only, the legacy grid.
  std::string codecs;
  /// Per-job wall-clock deadline in ms, layered on CPC_JOB_TIMEOUT_MS: the
  /// effective budget is the tighter of the two; 0 defers to the env.
  std::uint64_t deadline_ms = 0;
};

/// One protocol message. `a`/`b` are the kind-specific integers documented
/// on MsgKind; unused fields stay zero/empty and still round-trip.
struct Message {
  MsgKind kind = MsgKind::kShed;
  std::string id;     ///< submission id (client-chosen, daemon-echoed)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string text;   ///< reason / what / journal ok-line / encoded JobSpec
};

/// Serializes a spec (also the daemon's on-disk `<id>.req` format, so a
/// restarted daemon re-enqueues exactly what the client asked for).
std::string encode_job_spec(const JobSpec& spec);
bool decode_job_spec(std::string_view in, JobSpec& spec);

/// Message <-> kBlob payload. decode_message returns false on truncation,
/// an unknown kind, or a foreign protocol version.
std::string encode_message(const Message& message);
bool decode_message(std::string_view in, Message& message);

/// Convenience: a fully framed message, ready for write_socket.
std::string frame_message(const Message& message);

/// Parses the cpc_run config grammar ("CPP", "BC,BCC", "all", empty = all).
/// Throws std::invalid_argument naming the unknown config.
std::vector<sim::ConfigKind> parse_config_list(const std::string& csv);

/// Parses the sibling codec grammar ("paper", "fpc,bdi", "all"). An empty
/// list means the paper codec only — the pre-codec grid — so every legacy
/// spec and CLI invocation keeps its exact old meaning. Throws
/// std::invalid_argument naming the unknown codec (and, like the config
/// grammar, on all-separator input).
std::vector<compress::CodecKind> parse_codec_list(const std::string& csv);

/// The (config × codec) grid a spec asks for, flattened config-major —
/// the one expansion cpc_run, cpc_serve admission/recovery and the tests
/// all share, so every surface rejects and orders identically.
struct JobGrid {
  std::vector<sim::ConfigKind> configs;
  std::vector<compress::CodecKind> codecs;

  std::size_t job_count() const { return configs.size() * codecs.size(); }
};

/// Parses both lists of a spec at once. Throws std::invalid_argument on
/// either grammar error.
JobGrid parse_job_grid(const std::string& configs_csv,
                       const std::string& codecs_csv);

/// Builds the effective per-job watchdog budget: the tighter of the
/// request's deadline and the environment's CPC_JOB_TIMEOUT_MS (either may
/// be 0 = unlimited).
std::uint64_t effective_deadline_ms(std::uint64_t request_ms,
                                    std::uint64_t env_ms);

}  // namespace cpc::net
