#include "net/protocol.hpp"

#include <stdexcept>

#include "sim/ipc.hpp"

namespace cpc::net {

namespace {

using sim::ipc::get_string;
using sim::ipc::get_u64;
using sim::ipc::put_string;
using sim::ipc::put_u64;

}  // namespace

std::string encode_job_spec(const JobSpec& spec) {
  std::string out;
  put_string(out, spec.trace_path);
  put_string(out, spec.workload);
  put_u64(out, spec.trace_ops);
  put_u64(out, spec.seed);
  put_string(out, spec.configs);
  put_string(out, spec.codecs);
  put_u64(out, spec.deadline_ms);
  return out;
}

bool decode_job_spec(std::string_view in, JobSpec& spec) {
  JobSpec parsed;
  if (!get_string(in, parsed.trace_path)) return false;
  if (!get_string(in, parsed.workload)) return false;
  if (!get_u64(in, parsed.trace_ops)) return false;
  if (!get_u64(in, parsed.seed)) return false;
  if (!get_string(in, parsed.configs)) return false;
  if (!get_string(in, parsed.codecs)) return false;
  if (!get_u64(in, parsed.deadline_ms)) return false;
  if (!in.empty()) return false;  // trailing bytes: not a spec we wrote
  spec = std::move(parsed);
  return true;
}

std::string encode_message(const Message& message) {
  std::string out;
  put_u64(out, kProtocolVersion);
  put_u64(out, static_cast<std::uint64_t>(message.kind));
  put_string(out, message.id);
  put_u64(out, message.a);
  put_u64(out, message.b);
  put_string(out, message.text);
  return out;
}

bool decode_message(std::string_view in, Message& message) {
  std::uint64_t version = 0;
  std::uint64_t kind = 0;
  Message parsed;
  if (!get_u64(in, version) || version != kProtocolVersion) return false;
  if (!get_u64(in, kind) || kind >= kMsgKindCount) return false;
  parsed.kind = static_cast<MsgKind>(kind);
  if (!get_string(in, parsed.id)) return false;
  if (!get_u64(in, parsed.a)) return false;
  if (!get_u64(in, parsed.b)) return false;
  if (!get_string(in, parsed.text)) return false;
  if (!in.empty()) return false;
  message = std::move(parsed);
  return true;
}

std::string frame_message(const Message& message) {
  return sim::ipc::encode_frame(sim::ipc::FrameType::kBlob,
                                encode_message(message));
}

std::vector<sim::ConfigKind> parse_config_list(const std::string& csv) {
  std::vector<sim::ConfigKind> kinds;
  if (csv.empty()) {
    kinds.assign(std::begin(sim::kAllConfigs), std::end(sim::kAllConfigs));
    return kinds;
  }
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    const std::string name = csv.substr(start, end - start);
    start = end + 1;
    if (name.empty()) {
      if (comma == std::string::npos) break;
      continue;
    }
    if (name == "all") {
      kinds.insert(kinds.end(), std::begin(sim::kAllConfigs),
                   std::end(sim::kAllConfigs));
      continue;
    }
    bool found = false;
    for (sim::ConfigKind kind : sim::kAllConfigs) {
      if (sim::config_name(kind) == name) {
        kinds.push_back(kind);
        found = true;
      }
    }
    if (!found) {
      throw std::invalid_argument("unknown config '" + name +
                                  "' (want BC, BCC, HAC, BCP, CPP or all)");
    }
  }
  if (kinds.empty()) {
    // "," and friends: all-separator input must not become a zero-job sweep.
    throw std::invalid_argument(
        "empty config list (want BC, BCC, HAC, BCP, CPP or all)");
  }
  return kinds;
}

std::vector<compress::CodecKind> parse_codec_list(const std::string& csv) {
  std::vector<compress::CodecKind> kinds;
  if (csv.empty()) {
    // Unlike the config grammar, empty means "the paper codec" rather than
    // "everything": a spec that never mentions codecs is the legacy grid.
    kinds.push_back(compress::CodecKind::kPaper);
    return kinds;
  }
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    const std::string name = csv.substr(start, end - start);
    start = end + 1;
    if (name.empty()) {
      if (comma == std::string::npos) break;
      continue;
    }
    if (name == "all") {
      kinds.insert(kinds.end(), std::begin(compress::kAllCodecs),
                   std::end(compress::kAllCodecs));
      continue;
    }
    bool found = false;
    for (compress::CodecKind kind : compress::kAllCodecs) {
      if (name == compress::codec_name(kind)) {
        kinds.push_back(kind);
        found = true;
      }
    }
    if (!found) {
      throw std::invalid_argument("unknown codec '" + name +
                                  "' (want paper, fpc, bdi, wkdm or all)");
    }
  }
  if (kinds.empty()) {
    // "," and friends: all-separator input must not become a zero-job sweep.
    throw std::invalid_argument(
        "empty codec list (want paper, fpc, bdi, wkdm or all)");
  }
  return kinds;
}

JobGrid parse_job_grid(const std::string& configs_csv,
                       const std::string& codecs_csv) {
  JobGrid grid;
  grid.configs = parse_config_list(configs_csv);
  grid.codecs = parse_codec_list(codecs_csv);
  return grid;
}

std::uint64_t effective_deadline_ms(std::uint64_t request_ms,
                                    std::uint64_t env_ms) {
  if (request_ms == 0) return env_ms;
  if (env_ms == 0) return request_ms;
  return request_ms < env_ms ? request_ms : env_ms;
}

}  // namespace cpc::net
