#pragma once
// Unix-domain socket plumbing for the sweep service (tools/cpc_serve.cpp,
// tools/cpc_client.cpp). Thin POSIX wrappers, in the spirit of the process
// wrappers in sim/ipc.hpp: raw socket syscalls (socket/bind/listen/accept/
// connect) stay confined to socket.cpp — cpc_lint CPC-L010 bans them
// everywhere else — so fd hygiene, EINTR retries, SIGPIPE suppression and
// non-blocking semantics are solved exactly once.
//
// Byte streams over these fds carry sim::ipc frames (the same CRC-guarded
// length-prefixed format the shard pipes use); the request/response grammar
// on top lives in net/protocol.hpp.
//
// On platforms without AF_UNIX every entry point degrades to "unsupported"
// (sockets_supported() == false) exactly like ipc::process_isolation_
// supported().

#include <cstddef>
#include <string>
#include <vector>

namespace cpc::net {

/// True when AF_UNIX sockets are available (and cpc_serve can serve).
bool sockets_supported();

/// Creates, binds and listens on a Unix-domain socket at `path`. A stale
/// socket file from a dead daemon is unlinked first. The returned fd is
/// non-blocking. Returns -1 with an errno line on stderr.
int listen_unix(const std::string& path, int backlog);

/// Connects to the daemon at `path`. Blocking; the fd stays blocking (the
/// client's writes are sequential). Returns -1 silently — callers retry
/// with backoff, and a missing daemon is an expected state.
int connect_unix(const std::string& path);

/// Accepts one pending client off a listen_unix() fd. The returned fd is
/// non-blocking. Returns -1 when nothing is pending (or on error).
int accept_client(int listen_fd);

/// Reads once. Returns bytes read (> 0), 0 when a non-blocking fd has no
/// data right now (EAGAIN), and -1 on EOF or a hard error — for a stream
/// socket both mean "this peer is finished". EINTR is retried.
long read_socket(int fd, char* buffer, std::size_t size);

/// Writes once (MSG_NOSIGNAL — a dead peer is a return value, never a
/// SIGPIPE). Returns bytes written (>= 0; 0 when the send buffer is full on
/// a non-blocking fd) or -1 on EPIPE/hard error. EINTR is retried.
long write_socket(int fd, const char* buffer, std::size_t size);

/// One fd of a poll_sockets() set. `want_write` asks for writability (an
/// outbox is pending); the three outputs are filled by the call.
struct PollFd {
  int fd = -1;
  bool want_write = false;
  bool readable = false;
  bool writable = false;
  bool hangup = false;  ///< peer closed (POLLHUP/POLLERR)
};

/// poll(2) over the set, up to `timeout_ms`. Returns false on a hard poll
/// error (EINTR counts as "nothing ready", matching ipc::poll_readable).
bool poll_sockets(std::vector<PollFd>& fds, int timeout_ms);

/// close(2) if open, then marks the fd invalid.
void close_socket(int& fd);

/// unlink(2) for the socket path on daemon shutdown; missing file is fine.
void unlink_socket(const std::string& path);

}  // namespace cpc::net
