#include "net/socket.hpp"

#include <cerrno>
#include <cstring>
#include <iostream>

#if defined(__unix__) || defined(__APPLE__)
#define CPC_NET_POSIX 1
#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace cpc::net {

#if defined(CPC_NET_POSIX)

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Fills `addr` from `path`; false when the path overflows sun_path (the
/// AF_UNIX hard limit, ~107 bytes).
bool make_address(const std::string& path, sockaddr_un& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return false;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool sockets_supported() { return true; }

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr;
  if (!make_address(path, addr)) {
    std::cerr << "listen_unix: socket path too long: " << path << "\n";
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "listen_unix: socket failed: " << std::strerror(errno) << "\n";
    return -1;
  }
  // A daemon that died without cleanup leaves the socket file behind; the
  // bind would fail with EADDRINUSE forever. Unlinking is safe: a *live*
  // daemon holds the listening fd, not the name, and two daemons on one
  // path is an operator error either way.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::cerr << "listen_unix: bind(" << path
              << ") failed: " << std::strerror(errno) << "\n";
    int doomed = fd;
    close_socket(doomed);
    return -1;
  }
  if (::listen(fd, backlog) != 0 || !set_nonblocking(fd)) {
    std::cerr << "listen_unix: listen(" << path
              << ") failed: " << std::strerror(errno) << "\n";
    int doomed = fd;
    close_socket(doomed);
    ::unlink(path.c_str());
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr;
  if (!make_address(path, addr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    int doomed = fd;
    close_socket(doomed);
    return -1;
  }
  // A client must see a dead daemon as a write error, never a SIGPIPE
  // (write_socket uses MSG_NOSIGNAL, but belt and braces for any raw write).
  std::signal(SIGPIPE, SIG_IGN);
  return fd;
}

int accept_client(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      if (!set_nonblocking(fd)) {
        int doomed = fd;
        close_socket(doomed);
        return -1;
      }
      return fd;
    }
    if (errno == EINTR) continue;
    return -1;  // EAGAIN (nothing pending) or a hard error
  }
}

long read_socket(int fd, char* buffer, std::size_t size) {
  while (true) {
    const ssize_t n = ::recv(fd, buffer, size, 0);
    if (n > 0) return static_cast<long>(n);
    if (n == 0) return -1;  // orderly EOF: the peer is finished
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

long write_socket(int fd, const char* buffer, std::size_t size) {
  while (true) {
    const ssize_t n = ::send(fd, buffer, size, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;  // EPIPE et al: the peer is gone
  }
}

bool poll_sockets(std::vector<PollFd>& fds, int timeout_ms) {
  std::vector<struct pollfd> polls;
  polls.reserve(fds.size());
  for (const PollFd& item : fds) {
    short events = POLLIN;
    if (item.want_write) events |= POLLOUT;
    polls.push_back({item.fd, events, 0});
  }
  const int r =
      ::poll(polls.data(), static_cast<nfds_t>(polls.size()), timeout_ms);
  for (PollFd& item : fds) {
    item.readable = item.writable = item.hangup = false;
  }
  if (r < 0) return errno == EINTR;  // interrupted counts as "nothing ready"
  for (std::size_t i = 0; i < polls.size(); ++i) {
    fds[i].readable = (polls[i].revents & POLLIN) != 0;
    fds[i].writable = (polls[i].revents & POLLOUT) != 0;
    fds[i].hangup = (polls[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
  }
  return true;
}

void close_socket(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

void unlink_socket(const std::string& path) { ::unlink(path.c_str()); }

#else  // !CPC_NET_POSIX — every entry point degrades to "unsupported"

bool sockets_supported() { return false; }
int listen_unix(const std::string&, int) { return -1; }
int connect_unix(const std::string&) { return -1; }
int accept_client(int) { return -1; }
long read_socket(int, char*, std::size_t) { return -1; }
long write_socket(int, const char*, std::size_t) { return -1; }
bool poll_sockets(std::vector<PollFd>& fds, int) {
  for (PollFd& item : fds) {
    item.readable = item.writable = item.hangup = false;
  }
  return false;
}
void close_socket(int& fd) { fd = -1; }
void unlink_socket(const std::string&) {}

#endif  // CPC_NET_POSIX

}  // namespace cpc::net
