#include "verify/campaign.hpp"

#include <memory>
#include <stdexcept>

#include "core/cpp_hierarchy.hpp"
#include "cpu/ooo_core.hpp"
#include "verify/fault_injector.hpp"
#include "workload/workloads.hpp"

namespace cpc::verify {

const char* fault_outcome_name(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::kMasked: return "masked";
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kTimingOnly: return "timing-only";
    case FaultOutcome::kSilent: return "silent";
    case FaultOutcome::kNotInjected: return "not-injected";
  }
  return "?";
}

namespace {

/// Everything one run leaves behind that the classification compares.
struct RunImage {
  cpu::CoreStats core;
  cache::HierarchyStats hierarchy;
  std::uint64_t memory_fingerprint = 0;
  bool fault_injected = false;
  bool violation = false;
  std::string violation_text;
};

RunImage run_once(std::span<const cpu::MicroOp> trace,
                  const CampaignOptions& options, const FaultPlan* plan) {
  auto cpp = std::make_unique<core::CppHierarchy>();
  core::CppHierarchy* raw = cpp.get();
  GuardedHierarchy guard(std::move(cpp), options.audit_stride);
  if (plan != nullptr) guard.arm_fault(*plan);

  RunImage image;
  try {
    cpu::OooCore core(cpu::CoreConfig{}, guard);
    image.core = core.run(trace);
    // End-of-run audit: full structural walk plus counter monotonicity —
    // catches strikes still resident when the trace ends.
    MetadataAuditor final_audit(/*stride=*/1);
    final_audit.audit_now(guard.inner());
  } catch (const InvariantViolation& violation) {
    image.violation = true;
    image.violation_text = violation.what();
  }
  image.hierarchy = guard.stats();
  image.memory_fingerprint = raw->memory().fingerprint();
  image.fault_injected = guard.fault_injected();
  return image;
}

bool architecturally_equal(const RunImage& golden, const RunImage& faulted) {
  return faulted.core.committed == golden.core.committed &&
         faulted.core.value_mismatches == 0 &&
         faulted.memory_fingerprint == golden.memory_fingerprint;
}

bool bit_identical(const RunImage& golden, const RunImage& faulted) {
  const cache::HierarchyStats& a = golden.hierarchy;
  const cache::HierarchyStats& b = faulted.hierarchy;
  return faulted.core.cycles == golden.core.cycles &&
         a.l1_misses == b.l1_misses && a.l2_misses == b.l2_misses &&
         a.l1_affiliated_hits == b.l1_affiliated_hits &&
         a.l2_affiliated_hits == b.l2_affiliated_hits &&
         a.mem_fetch_lines == b.mem_fetch_lines &&
         a.mem_writebacks == b.mem_writebacks &&
         a.partial_promotions == b.partial_promotions &&
         a.affiliated_demotions == b.affiliated_demotions &&
         a.traffic.fetch_half_units() == b.traffic.fetch_half_units() &&
         a.traffic.writeback_half_units() == b.traffic.writeback_half_units();
}

FaultOutcome classify(const RunImage& golden, const RunImage& faulted) {
  if (faulted.violation) return FaultOutcome::kDetected;
  if (!faulted.fault_injected) return FaultOutcome::kNotInjected;
  if (!architecturally_equal(golden, faulted)) return FaultOutcome::kSilent;
  if (bit_identical(golden, faulted)) return FaultOutcome::kMasked;
  return FaultOutcome::kTimingOnly;
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& options) {
  const workload::Workload& wl = workload::find_workload(options.workload);
  const cpu::Trace trace =
      workload::generate(wl, {options.trace_ops, options.workload_seed});

  const RunImage golden = run_once(trace, options, nullptr);
  if (golden.violation) {
    throw std::runtime_error("golden run failed validation for " +
                             options.workload + ": " + golden.violation_text);
  }
  if (golden.core.value_mismatches != 0) {
    throw std::runtime_error("golden run has value mismatches for " +
                             options.workload);
  }

  CampaignResult result;
  result.workload = options.workload;
  result.golden_cycles = golden.core.cycles;
  result.golden_accesses = golden.hierarchy.reads + golden.hierarchy.writes;

  FaultInjector injector(options.master_seed);
  for (std::size_t k = 0; k < options.faults; ++k) {
    const FaultPlan plan = injector.plan(k, result.golden_accesses);
    const RunImage faulted = run_once(trace, options, &plan);

    FaultRecord record;
    record.index = k;
    record.command = plan.command;
    record.trigger_access = plan.trigger_access;
    record.outcome = classify(golden, faulted);
    record.detection = faulted.violation_text;
    result.records.push_back(std::move(record));

    switch (result.records.back().outcome) {
      case FaultOutcome::kMasked: ++result.masked; break;
      case FaultOutcome::kDetected: ++result.detected; break;
      case FaultOutcome::kTimingOnly: ++result.timing_only; break;
      case FaultOutcome::kSilent: ++result.silent; break;
      case FaultOutcome::kNotInjected: ++result.not_injected; break;
    }
  }
  return result;
}

}  // namespace cpc::verify
