#include "verify/trace_fuzzer.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "compress/scheme.hpp"
#include "cpu/trace_io.hpp"
#include "verify/fault.hpp"

namespace cpc::verify {

namespace {

/// 32K-region size the paper's pointer compression keys on
/// (prefix_bits = 17 with the 16-bit scheme → aligned 32K chunks).
constexpr std::uint32_t kRegionBytes =
    1u << (32 - compress::kPaperScheme.prefix_bits());

constexpr std::uint32_t align_word(std::uint32_t addr) { return addr & ~3u; }

}  // namespace

TraceFuzzer::TraceFuzzer(const FuzzOptions& options)
    : options_(options),
      rng_state_(options.seed ? options.seed : 0x9e3779b97f4a7c15ull),
      image_(options.fill_seed) {}

std::uint64_t TraceFuzzer::rng() {
  // xorshift64* (same family as workload::Rng; kept local so fuzzer streams
  // never couple to workload-generator changes).
  std::uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return x * 0x2545F4914F6CDD1Dull;
}

std::uint32_t TraceFuzzer::rng_below(std::uint32_t bound) {
  return bound == 0 ? 0 : static_cast<std::uint32_t>(rng() % bound);
}

std::uint32_t TraceFuzzer::next_pc() {
  const std::uint32_t pc = pc_base_ + 4 * pc_slot_;
  ++pc_slot_;
  return pc;
}

std::uint8_t TraceFuzzer::distance_to(std::uint64_t producer) const {
  if (producer == kNone) return 0;
  const std::uint64_t distance = trace_.size() - producer;
  return distance <= cpu::kMaxDepDistance ? static_cast<std::uint8_t>(distance)
                                          : 0;
}

std::uint64_t TraceFuzzer::emit_load(std::uint32_t addr, std::uint64_t producer) {
  cpu::MicroOp op;
  op.pc = next_pc();
  op.addr = align_word(addr);
  op.value = image_.read_word(op.addr);
  op.kind = cpu::OpKind::kLoad;
  op.dep1 = distance_to(producer);
  trace_.push_back(op);
  return trace_.size() - 1;
}

void TraceFuzzer::emit_store(std::uint32_t addr, std::uint32_t value,
                             std::uint64_t producer) {
  cpu::MicroOp op;
  op.pc = next_pc();
  op.addr = align_word(addr);
  op.value = value;
  op.kind = cpu::OpKind::kStore;
  op.dep1 = distance_to(producer);
  image_.write_word(op.addr, value);
  trace_.push_back(op);
}

void TraceFuzzer::emit_branch(bool taken) {
  cpu::MicroOp op;
  op.pc = next_pc();
  // Backward target inside the current block: loop-shaped control flow so
  // the predictor and I-side see realistic reuse.
  const std::uint32_t back = 4 * (1 + rng_below(16));
  op.addr = op.pc > back ? op.pc - back : op.pc + 8;
  op.kind = cpu::OpKind::kBranch;
  if (taken) op.flags |= cpu::MicroOp::kFlagTaken;
  trace_.push_back(op);
}

void TraceFuzzer::emit_alu() {
  cpu::MicroOp op;
  op.pc = next_pc();
  op.kind = cpu::OpKind::kIntAlu;
  op.dep1 = trace_.empty() ? 0 : 1;
  trace_.push_back(op);
}

std::uint32_t TraceFuzzer::boundary_value(std::uint32_t addr) {
  const auto scheme = compress::kPaperScheme;
  switch (rng_below(8)) {
    case 0:  // just-compressible / just-incompressible positive small values
      return static_cast<std::uint32_t>(scheme.small_max() -
                                        static_cast<std::int32_t>(rng_below(3)) +
                                        static_cast<std::int32_t>(rng_below(5)));
    case 1:  // straddle the negative boundary
      return static_cast<std::uint32_t>(scheme.small_min() +
                                        static_cast<std::int32_t>(rng_below(3)) -
                                        static_cast<std::int32_t>(rng_below(5)));
    case 2:  // pointer into the word's own 32K region (compressible)
      return (align_word(addr) & ~(kRegionBytes - 1)) |
             align_word(rng_below(kRegionBytes));
    case 3:  // pointer one region over (prefix mismatch → incompressible)
      return ((align_word(addr) + kRegionBytes) & ~(kRegionBytes - 1)) |
             align_word(rng_below(kRegionBytes));
    case 4:
      return 0;
    case 5:
      return 0xFFFF'FFFFu;
    case 6:  // sign-extension edge: all ones below the check, then flip one
      return static_cast<std::uint32_t>(-1) << rng_below(20);
    default:
      return static_cast<std::uint32_t>(rng());
  }
}

void TraceFuzzer::seg_boundary_values() {
  // A dense array hammered with words that sit on the compressibility
  // boundary, so VCP flags flip between writes to the same word.
  const std::uint32_t base =
      0x0010'0000u + 0x2000u * rng_below(64);
  const std::uint32_t words = 64 + rng_below(192);
  const std::uint32_t burst = 24 + rng_below(40);
  std::uint64_t last_load = kNone;
  for (std::uint32_t i = 0; i < burst; ++i) {
    const std::uint32_t addr = base + 4 * rng_below(words);
    if (rng_below(3) == 0) {
      last_load = emit_load(addr, last_load);
    } else {
      emit_store(addr, boundary_value(addr), last_load);
    }
    if (rng_below(8) == 0) emit_branch(rng_below(2) != 0);
  }
}

void TraceFuzzer::seg_pointer_chain() {
  // Linked nodes parked a few words either side of 32K-region edges: the
  // next-pointers alternate between same-region (compressible) and
  // cross-region (incompressible) prefixes as the chase hops boundaries.
  const std::uint32_t chain_base =
      0x0200'0000u + kRegionBytes * rng_below(32);
  const std::uint32_t nodes = 6 + rng_below(10);
  std::vector<std::uint32_t> node_addr(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    const std::uint32_t edge = chain_base + (i + 1) * kRegionBytes;
    const std::int32_t jitter = 4 * (static_cast<std::int32_t>(rng_below(8)) - 4);
    node_addr[i] = static_cast<std::uint32_t>(static_cast<std::int64_t>(edge) + jitter);
  }
  for (std::uint32_t i = 0; i + 1 < nodes; ++i) {
    emit_store(node_addr[i], node_addr[i + 1]);
  }
  emit_store(node_addr[nodes - 1], node_addr[0]);
  // Chase it: each load depends on the previous (serial pointer chase).
  std::uint64_t last = kNone;
  const std::uint32_t hops = nodes + rng_below(2 * nodes);
  for (std::uint32_t hop = 0; hop < hops; ++hop) {
    last = emit_load(node_addr[hop % nodes], last);
    if (rng_below(6) == 0) emit_branch(true);
  }
}

void TraceFuzzer::seg_ping_pong() {
  // Primary/affiliated ping-pong: the CPP hierarchy pairs L2 line X with
  // X^1 (byte address ^ 0x80 for 128-byte lines). Alternating accesses
  // exercise affiliated prefetch, PA/AA flag churn, and affiliated hits.
  const std::uint32_t primary =
      (0x0300'0000u + 0x100u * rng_below(4096)) & ~0x7Fu;
  const std::uint32_t affiliated = primary ^ 0x80u;
  const std::uint32_t rounds = 16 + rng_below(32);
  std::uint64_t last_load = kNone;
  for (std::uint32_t i = 0; i < rounds; ++i) {
    const std::uint32_t side = (i & 1) ? affiliated : primary;
    const std::uint32_t addr = side + 4 * rng_below(32);
    if (rng_below(4) == 0) {
      emit_store(addr, boundary_value(addr), last_load);
    } else {
      last_load = emit_load(addr, kNone);
    }
    if (rng_below(10) == 0) emit_alu();
  }
}

void TraceFuzzer::seg_conflict_storm() {
  // Dirty-eviction storm: walk more same-set lines than the associativity
  // holds, storing boundary values so every eviction writes back a line
  // whose compressed size the caches must re-derive.
  const std::uint32_t set_offset = 0x80u * rng_below(64);
  const std::uint32_t base = 0x0400'0000u + set_offset;
  const std::uint32_t ways = 6 + rng_below(8);  // > any config's assoc
  const std::uint32_t rounds = 2 + rng_below(3);
  for (std::uint32_t r = 0; r < rounds; ++r) {
    for (std::uint32_t w = 0; w < ways; ++w) {
      const std::uint32_t line = base + w * kRegionBytes;  // same set, L1+L2
      const std::uint32_t addr = line + 4 * rng_below(32);
      emit_store(addr, boundary_value(addr));
      if (rng_below(3) == 0) emit_load(line + 4 * rng_below(32));
    }
    emit_branch(r + 1 < rounds);
  }
}

void TraceFuzzer::seg_affiliated_rmw() {
  // Read-modify-write races on both halves of an affiliated pair: a load
  // feeds a store to the *other* line, so stale affiliated copies would be
  // observed architecturally if eviction/update logic mishandled them.
  const std::uint32_t primary =
      (0x0500'0000u + 0x200u * rng_below(2048)) & ~0x7Fu;
  const std::uint32_t affiliated = primary ^ 0x80u;
  const std::uint32_t rounds = 12 + rng_below(20);
  for (std::uint32_t i = 0; i < rounds; ++i) {
    const std::uint32_t src = (i & 1) ? affiliated : primary;
    const std::uint32_t dst = (i & 1) ? primary : affiliated;
    const std::uint32_t off = 4 * rng_below(32);
    const std::uint64_t loaded = emit_load(src + off);
    // The new value rides the loaded one's compressibility boundary.
    emit_store(dst + off, image_.read_word(align_word(src + off)) + 1,
               loaded);
    if (rng_below(5) == 0) emit_branch(rng_below(2) != 0);
  }
}

cpu::Trace TraceFuzzer::generate() {
  trace_.clear();
  image_ = mem::SparseMemory(options_.fill_seed);
  pc_slot_ = 0;
  std::uint32_t segment = 0;
  while (trace_.size() < options_.target_ops) {
    // Fresh code block per segment: distinct PCs per strategy burst.
    pc_base_ = 0x0001'0000u + 0x1000u * (segment++ & 0xFFFu);
    pc_slot_ = 0;
    switch (rng_below(5)) {
      case 0: seg_boundary_values(); break;
      case 1: seg_pointer_chain(); break;
      case 2: seg_ping_pong(); break;
      case 3: seg_conflict_storm(); break;
      default: seg_affiliated_rmw(); break;
    }
    if (rng_below(3) == 0) emit_alu();
  }
  trace_.resize(options_.target_ops);
  cpu::Trace out;
  out.swap(trace_);
  normalize_trace(out, options_.fill_seed);  // resize may have orphaned deps
  return out;
}

void normalize_trace(cpu::Trace& trace, std::uint32_t fill_seed) {
  mem::SparseMemory image(fill_seed);
  for (cpu::MicroOp& op : trace) {
    if (op.kind == cpu::OpKind::kLoad) {
      op.addr = align_word(op.addr);
      op.value = image.read_word(op.addr);
    } else if (op.kind == cpu::OpKind::kStore) {
      op.addr = align_word(op.addr);
      image.write_word(op.addr, op.value);
    }
  }
}

namespace {

/// Removes [begin, begin+count), remapping producer distances across the
/// gap (edges into the removed range are dropped) and re-normalising load
/// values so the candidate stays architecturally self-consistent.
cpu::Trace remove_range(const cpu::Trace& trace, std::size_t begin,
                        std::size_t count, std::uint32_t fill_seed) {
  constexpr std::size_t kGone = ~std::size_t{0};
  std::vector<std::size_t> new_index(trace.size(), kGone);
  cpu::Trace out;
  out.reserve(trace.size() - count);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i >= begin && i < begin + count) continue;
    new_index[i] = out.size();
    out.push_back(trace[i]);
  }
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (new_index[i] == kGone) continue;
    cpu::MicroOp& op = out[new_index[i]];
    const auto remap = [&](std::uint8_t dep) -> std::uint8_t {
      if (dep == 0 || dep > i) return dep;  // none / pre-trace: already ready
      const std::size_t producer = i - dep;
      if (new_index[producer] == kGone) return 0;
      const std::size_t distance = new_index[i] - new_index[producer];
      return distance <= cpu::kMaxDepDistance
                 ? static_cast<std::uint8_t>(distance)
                 : 0;
    };
    op.dep1 = remap(op.dep1);
    op.dep2 = remap(op.dep2);
  }
  normalize_trace(out, fill_seed);
  return out;
}

}  // namespace

cpu::Trace shrink_trace(cpu::Trace failing,
                        const std::function<bool(const cpu::Trace&)>& still_fails,
                        const ShrinkOptions& options, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;
  s = ShrinkStats{};
  if (failing.empty()) return failing;

  const auto eval = [&](const cpu::Trace& candidate) {
    ++s.evaluations;
    return still_fails(candidate);
  };
  const auto budget_left = [&] { return s.evaluations < options.max_evaluations; };

  // Phase 1: shortest failing prefix, by binary search. (The predicate need
  // not be monotone in prefix length; this is the standard heuristic and the
  // ddmin pass below cleans up whatever it misses.)
  std::size_t lo = 1;
  std::size_t hi = failing.size();
  while (lo < hi && budget_left()) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (eval(remove_range(failing, mid, failing.size() - mid,
                          options.fill_seed))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (hi < failing.size()) {
    cpu::Trace prefix =
        remove_range(failing, hi, failing.size() - hi, options.fill_seed);
    if (eval(prefix)) failing = std::move(prefix);
  }

  // Phase 2: delta-debugging chunk removal, halving the chunk size until a
  // full single-op pass removes nothing.
  std::size_t chunk = std::max<std::size_t>(1, failing.size() / 2);
  while (budget_left()) {
    ++s.rounds;
    bool removed_any = false;
    for (std::size_t begin = 0; begin < failing.size() && budget_left();) {
      const std::size_t count = std::min(chunk, failing.size() - begin);
      if (count == failing.size()) break;  // never try the empty trace
      cpu::Trace candidate =
          remove_range(failing, begin, count, options.fill_seed);
      if (eval(candidate)) {
        failing = std::move(candidate);
        removed_any = true;  // same begin now addresses the next chunk
      } else {
        begin += count;
      }
    }
    if (chunk > 1) {
      chunk /= 2;
    } else if (!removed_any) {
      break;
    }
  }
  return failing;
}

namespace {

namespace fs = std::filesystem;

sim::ConfigKind parse_config(const std::string& name) {
  for (sim::ConfigKind kind : sim::kAllConfigs) {
    if (sim::config_name(kind) == name) return kind;
  }
  throw std::runtime_error("repro: unknown config '" + name + "'");
}

FaultKind parse_fault_kind(const std::string& name) {
  for (FaultKind kind :
       {FaultKind::kPayloadBit, FaultKind::kPayloadBitSilent,
        FaultKind::kPaFlag, FaultKind::kAaFlag, FaultKind::kVcpFlag,
        FaultKind::kDropResponseWord, FaultKind::kDelayFill}) {
    if (fault_kind_name(kind) == name) return kind;
  }
  throw std::runtime_error("repro: unknown fault kind '" + name + "'");
}

}  // namespace

void save_repro(const std::string& dir, const ReproCase& repro) {
  fs::create_directories(dir);
  const fs::path trace_path = fs::path(dir) / (repro.name + ".cpctrace");
  cpu::write_trace_file(trace_path.string(), repro.trace);

  const fs::path repro_path = fs::path(dir) / (repro.name + ".repro");
  std::ofstream out(repro_path);
  if (!out) {
    throw std::runtime_error("repro: cannot write " + repro_path.string());
  }
  out << "cpc-repro v1\n";
  out << "name " << repro.name << '\n';
  out << "trace " << repro.name << ".cpctrace\n";
  out << "expect " << (repro.expect_divergence ? "divergence" : "clean")
      << '\n';
  out << "origin-seed " << repro.origin_seed << '\n';
  out << "fill-seed " << repro.fill_seed << '\n';
  if (repro.fault) {
    out << "fault " << fault_kind_name(repro.fault->command.kind)
        << " level=" << repro.fault->command.level
        << " seed=" << repro.fault->command.seed
        << " delay=" << repro.fault->command.delay_cycles
        << " trigger=" << repro.fault->trigger_access
        << " config=" << sim::config_name(repro.fault_config) << '\n';
  }
  if (!out.flush()) {
    throw std::runtime_error("repro: short write to " + repro_path.string());
  }
}

ReproCase load_repro(const std::string& repro_path) {
  std::ifstream in(repro_path);
  if (!in) throw std::runtime_error("repro: cannot open " + repro_path);
  std::string header;
  std::getline(in, header);
  if (header != "cpc-repro v1") {
    throw std::runtime_error("repro: bad header in " + repro_path);
  }

  ReproCase repro;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "name") {
      fields >> repro.name;
    } else if (key == "trace") {
      std::string rel;
      fields >> rel;
      repro.trace_path = (fs::path(repro_path).parent_path() / rel).string();
    } else if (key == "expect") {
      std::string what;
      fields >> what;
      if (what != "divergence" && what != "clean") {
        throw std::runtime_error("repro: bad expect '" + what + "'");
      }
      repro.expect_divergence = what == "divergence";
    } else if (key == "origin-seed") {
      fields >> repro.origin_seed;
    } else if (key == "fill-seed") {
      fields >> repro.fill_seed;
    } else if (key == "fault") {
      std::string kind_name;
      fields >> kind_name;
      FaultPlan plan;
      plan.command.kind = parse_fault_kind(kind_name);
      std::string attr;
      while (fields >> attr) {
        const std::size_t eq = attr.find('=');
        if (eq == std::string::npos) {
          throw std::runtime_error("repro: bad fault attribute '" + attr + "'");
        }
        const std::string k = attr.substr(0, eq);
        const std::string v = attr.substr(eq + 1);
        if (k == "level") {
          plan.command.level = std::stoi(v);
        } else if (k == "seed") {
          plan.command.seed = std::stoull(v);
        } else if (k == "delay") {
          plan.command.delay_cycles =
              static_cast<unsigned>(std::stoul(v));
        } else if (k == "trigger") {
          plan.trigger_access = std::stoull(v);
        } else if (k == "config") {
          repro.fault_config = parse_config(v);
        } else {
          throw std::runtime_error("repro: unknown fault attribute '" + k + "'");
        }
      }
      repro.fault = plan;
    } else {
      throw std::runtime_error("repro: unknown key '" + key + "' in " +
                               repro_path);
    }
    if (fields.fail() && !fields.eof()) {
      throw std::runtime_error("repro: malformed line '" + line + "'");
    }
  }
  if (repro.trace_path.empty()) {
    throw std::runtime_error("repro: missing trace line in " + repro_path);
  }
  repro.trace = cpu::read_trace_file(repro.trace_path);
  return repro;
}

std::vector<std::string> list_repro_files(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".repro") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace cpc::verify
