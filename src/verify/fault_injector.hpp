#pragma once
// Seeded fault-schedule generation for the injection campaign.
//
// A FaultInjector turns (master_seed, fault index k) into a reproducible
// FaultPlan: which FaultKind, which cache level, the per-fault entropy seed
// the target selection consumes, and the access ordinal the fault triggers
// at. Campaigns rotate through all supported fault variants so every K
// consecutive faults cover the whole fault model.

#include <cstdint>
#include <vector>

#include "common/thread_annotations.hpp"
#include "verify/fault.hpp"
#include "verify/metadata_auditor.hpp"

namespace cpc::verify {

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t master_seed) : master_seed_(master_seed) {}

  /// The rotation of fault variants a campaign cycles through: every strike
  /// kind at both levels, plus the in-flight drop and delay faults.
  static const std::vector<FaultCommand>& variants();

  /// The k-th fault command: variant k mod |variants|, with a per-fault
  /// seed derived from (master_seed, k).
  FaultCommand command(std::size_t k) const;

  /// The k-th fault plan. The trigger access is placed pseudo-randomly in
  /// [warmup, total_accesses), where warmup skips the first eighth of the
  /// run so the caches hold state worth corrupting.
  FaultPlan plan(std::size_t k, std::uint64_t total_accesses) const;

  std::uint64_t master_seed() const { return master_seed_; }

 private:
  std::uint64_t fault_seed(std::size_t k, std::uint64_t salt) const;

  // Campaign state is immutable after construction (plans are pure
  // functions of master_seed_ and k), so an injector may be shared across
  // worker threads read-only; per-run mutation lives in GuardedHierarchy,
  // which SweepRunner confines to one worker.
  CPC_THREAD_CONFINED std::uint64_t master_seed_;
};

}  // namespace cpc::verify
