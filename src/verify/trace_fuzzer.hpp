#pragma once
// Seeded property-based trace fuzzing for the differential oracle.
//
// TraceFuzzer generates adversarial micro-op workloads aimed squarely at
// the compression cache's hard cases (paper §2–3): small values straddling
// the compressibility boundary, pointer chains hopping across 32K-region
// edges, primary/affiliated ping-pong, dirty-eviction storms on a single
// cache set, and read-modify-write races on affiliated copies. Traces are
// generated against an internal SparseMemory image (same CPC_MEM_FILL fill
// pattern as every hierarchy), so every load carries the architecturally
// correct expected value — the traces are self-checking by construction
// and valid input for any MemoryHierarchy.
//
// shrink_trace() is the automatic minimiser: binary-search the shortest
// failing prefix, then delta-debug chunks away, re-normalising load values
// after every candidate edit so candidates stay self-consistent. Shrunk
// divergences become permanent regression cases (tests/corpus/) via the
// ReproCase save/load helpers.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cpu/micro_op.hpp"
#include "mem/sparse_memory.hpp"
#include "sim/experiment.hpp"
#include "verify/metadata_auditor.hpp"

namespace cpc::verify {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint32_t target_ops = 4096;
  /// Fill pattern the generated loads assume; must match the hierarchies'
  /// (it defaults to CPC_MEM_FILL exactly like theirs do).
  std::uint32_t fill_seed = mem::fill_seed_from_env();
};

class TraceFuzzer {
 public:
  explicit TraceFuzzer(const FuzzOptions& options);

  /// Generates one adversarial, self-consistent trace.
  cpu::Trace generate();

 private:
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};

  // Strategy segments (each emits a bounded burst of ops).
  void seg_boundary_values();
  void seg_pointer_chain();
  void seg_ping_pong();
  void seg_conflict_storm();
  void seg_affiliated_rmw();

  std::uint64_t emit_load(std::uint32_t addr, std::uint64_t producer = kNone);
  void emit_store(std::uint32_t addr, std::uint32_t value,
                  std::uint64_t producer = kNone);
  void emit_branch(bool taken);
  void emit_alu();
  std::uint8_t distance_to(std::uint64_t producer) const;
  std::uint32_t next_pc();
  std::uint32_t boundary_value(std::uint32_t addr);

  FuzzOptions options_;
  std::uint64_t rng_state_;
  std::uint64_t rng();
  std::uint32_t rng_below(std::uint32_t bound);

  cpu::Trace trace_;
  mem::SparseMemory image_;
  std::uint32_t pc_base_ = 0x0001'0000;
  std::uint32_t pc_slot_ = 0;
};

/// Rewrites every load's expected value by replaying the trace's stores
/// through a fresh fill-patterned image. After any structural edit
/// (removal, reordering) this restores self-consistency.
void normalize_trace(cpu::Trace& trace,
                     std::uint32_t fill_seed = mem::fill_seed_from_env());

struct ShrinkOptions {
  /// Predicate-evaluation budget; shrinking stops when exhausted.
  std::size_t max_evaluations = 500;
  std::uint32_t fill_seed = mem::fill_seed_from_env();
};

struct ShrinkStats {
  std::size_t evaluations = 0;
  std::size_t rounds = 0;
};

/// Minimises `failing` while `still_fails` holds: first a binary search
/// for the shortest failing prefix, then delta-debugging chunk removal.
/// Deterministic: the same inputs always shrink to the same trace.
cpu::Trace shrink_trace(cpu::Trace failing,
                        const std::function<bool(const cpu::Trace&)>& still_fails,
                        const ShrinkOptions& options = {},
                        ShrinkStats* stats = nullptr);

/// One committed regression case: a minimal trace plus the conditions
/// (optional armed fault) under which the differential oracle must react.
struct ReproCase {
  std::string name;
  std::string trace_path;  ///< resolved, next to the .repro file
  cpu::Trace trace;
  /// True: the oracle must report a divergence (fault reproducers).
  /// False: the differential run must be clean (fixed-bug reproducers).
  bool expect_divergence = false;
  std::optional<FaultPlan> fault;
  sim::ConfigKind fault_config = sim::ConfigKind::kCPP;
  std::uint64_t origin_seed = 0;
  std::uint32_t fill_seed = 0;
};

/// Writes `<dir>/<name>.cpctrace` + `<dir>/<name>.repro`.
void save_repro(const std::string& dir, const ReproCase& repro);

/// Loads a `.repro` sidecar and its trace. Throws std::runtime_error on a
/// malformed file.
ReproCase load_repro(const std::string& repro_path);

/// All `.repro` files under `dir`, sorted by name (empty when the
/// directory does not exist).
std::vector<std::string> list_repro_files(const std::string& dir);

}  // namespace cpc::verify
