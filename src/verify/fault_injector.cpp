#include "verify/fault_injector.hpp"

namespace cpc::verify {

const std::vector<FaultCommand>& FaultInjector::variants() {
  // Generated from fault_registry.def so the rotation cannot drift from the
  // fault model: every in_rotation row contributes its L1 variant (plus the
  // L2 variant for strike kinds), in registry order. Rows with
  // in_rotation=false (kPayloadBitSilent) are the documented exclusions.
  static const std::vector<FaultCommand> kVariants = [] {
    std::vector<FaultCommand> rotation;
    for (const FaultKindInfo& row : kFaultRegistry) {
      if (!row.in_rotation) continue;
      rotation.push_back({row.kind, 1, 0, row.delay_cycles});
      if (row.strikes_level2) {
        rotation.push_back({row.kind, 2, 0, row.delay_cycles});
      }
    }
    return rotation;
  }();
  return kVariants;
}

std::uint64_t FaultInjector::fault_seed(std::size_t k, std::uint64_t salt) const {
  // splitmix64 over (master_seed, k, salt): independent faults get
  // independent target-selection entropy.
  std::uint64_t x = master_seed_ + 0x9e3779b97f4a7c15ull * (k + 1) + salt;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

FaultCommand FaultInjector::command(std::size_t k) const {
  FaultCommand cmd = variants()[k % variants().size()];
  cmd.seed = fault_seed(k, /*salt=*/1);
  return cmd;
}

FaultPlan FaultInjector::plan(std::size_t k, std::uint64_t total_accesses) const {
  FaultPlan plan;
  plan.command = command(k);
  const std::uint64_t warmup = total_accesses / 8;
  const std::uint64_t span = total_accesses > warmup ? total_accesses - warmup : 1;
  plan.trigger_access = warmup + fault_seed(k, /*salt=*/2) % span;
  return plan;
}

}  // namespace cpc::verify
