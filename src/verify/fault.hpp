#pragma once
// Fault model for the robustness campaign (tools/cpc_faultcamp). A
// FaultCommand describes one hardware-style fault a hierarchy should
// inflict on itself: a bit flip in a stored payload word, a flipped
// PA/AA/VCP metadata flag, a word dropped from a partial-line response in
// flight, or a delayed fill. Hierarchies that support injection override
// cache::MemoryHierarchy::inject_fault; the default implementation refuses
// every command, so fault hooks are zero-cost for uninstrumented designs.
//
// This header is dependency-free on purpose: it is included from
// cache/hierarchy.hpp, below every concrete cache implementation.

#include <cstdint>

namespace cpc::verify {

enum class FaultKind : std::uint8_t {
  kPayloadBit,        ///< flip one bit of a stored (primary) payload word
  /// Flip one payload bit AND recompute the line ECC over the corrupted
  /// state — the model of an undetectable array fault (multi-bit upset
  /// matching the codeword, or buggy ECC-update logic). No structural audit
  /// can see it; only the differential shadow oracle (verify/oracle/) can,
  /// which is why it is excluded from FaultInjector::variants() — the
  /// audit-based campaign would rightly classify it as silent.
  kPayloadBitSilent,
  kPaFlag,            ///< flip one PA (primary availability) flag bit
  kAaFlag,            ///< flip one AA (affiliated availability) flag bit
  kVcpFlag,           ///< flip one VCP (value compressed) flag bit
  kDropResponseWord,  ///< drop a non-demanded word from the next partial-line response
  kDelayFill,         ///< add latency to the next memory fill
};

inline const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPayloadBit: return "payload-bit";
    case FaultKind::kPayloadBitSilent: return "payload-bit-silent";
    case FaultKind::kPaFlag: return "pa-flag";
    case FaultKind::kAaFlag: return "aa-flag";
    case FaultKind::kVcpFlag: return "vcp-flag";
    case FaultKind::kDropResponseWord: return "drop-response-word";
    case FaultKind::kDelayFill: return "delay-fill";
  }
  return "?";
}

/// One injectable fault. `seed` supplies all the entropy target selection
/// needs (which line, which word, which bit), so a command is reproducible.
struct FaultCommand {
  FaultKind kind = FaultKind::kPayloadBit;
  int level = 1;                ///< 1 = L1, 2 = L2 (strike kinds only)
  std::uint64_t seed = 0;       ///< target-selection entropy
  unsigned delay_cycles = 50;   ///< kDelayFill magnitude
};

}  // namespace cpc::verify
