#pragma once
// Fault model for the robustness campaign (tools/cpc_faultcamp). A
// FaultCommand describes one hardware-style fault a hierarchy should
// inflict on itself: a bit flip in a stored payload word, a flipped
// PA/AA/VCP metadata flag, a word dropped from a partial-line response in
// flight, or a delayed fill. Hierarchies that support injection override
// cache::MemoryHierarchy::inject_fault; the default implementation refuses
// every command, so fault hooks are zero-cost for uninstrumented designs.
//
// The FaultKind enum is paired with the X-macro table in
// verify/fault_registry.def: stable names, campaign-rotation membership and
// the level-2 strike flag live there, and the static_asserts below keep the
// table dense — a new fault kind cannot ship without an explicit
// rotation/exclusion decision.
//
// This header is dependency-free on the rest of the tree on purpose (the
// common/ headers it pulls are leaf utilities): it is included from
// cache/hierarchy.hpp, below every concrete cache implementation.

#include <cstddef>
#include <cstdint>

#include "common/registry_check.hpp"

namespace cpc::verify {

enum class FaultKind : std::uint8_t {
  kPayloadBit,        ///< flip one bit of a stored (primary) payload word
  /// Flip one payload bit AND recompute the line ECC over the corrupted
  /// state — the model of an undetectable array fault (multi-bit upset
  /// matching the codeword, or buggy ECC-update logic). No structural audit
  /// can see it; only the differential shadow oracle (verify/oracle/) can,
  /// which is why its registry row says in_rotation=false — the audit-based
  /// campaign would rightly classify it as silent.
  kPayloadBitSilent,
  kPaFlag,            ///< flip one PA (primary availability) flag bit
  kAaFlag,            ///< flip one AA (affiliated availability) flag bit
  kVcpFlag,           ///< flip one VCP (value compressed) flag bit
  kDropResponseWord,  ///< drop a non-demanded word from the next partial-line response
  kDelayFill,         ///< add latency to the next memory fill
};

/// Number of FaultKind enumerators (kept in lock-step by referencing the
/// last one; cpc_lint CPC-L007 cross-checks the full list).
inline constexpr std::size_t kFaultKindCount =
    static_cast<std::size_t>(FaultKind::kDelayFill) + 1;

/// One registry row: see fault_registry.def for column semantics.
struct FaultKindInfo {
  FaultKind kind;
  const char* name;
  bool strikes_level2;
  bool in_rotation;
  unsigned delay_cycles;
};

/// Generated from fault_registry.def, in enum order.
inline constexpr FaultKindInfo kFaultRegistry[] = {
#define CPC_FAULT_ROW(kind, name, l2, rotation, delay) \
  {FaultKind::kind, name, l2, rotation, delay},
#include "verify/fault_registry.def"
#undef CPC_FAULT_ROW
};

inline constexpr bool fault_kind_registered(FaultKind kind) {
  for (const FaultKindInfo& row : kFaultRegistry) {
    if (row.kind == kind) return true;
  }
  return false;
}

namespace detail {
inline constexpr std::size_t kFaultRows =
    sizeof(kFaultRegistry) / sizeof(kFaultRegistry[0]);

inline constexpr bool fault_rows_in_enum_order() {
  for (std::size_t i = 0; i < kFaultRows; ++i) {
    if (static_cast<std::size_t>(kFaultRegistry[i].kind) != i) return false;
  }
  return true;
}
}  // namespace detail

static_assert(detail::kFaultRows == kFaultKindCount,
              "fault_registry.def row count disagrees with the FaultKind "
              "enum — every enumerator needs exactly one CPC_FAULT_ROW");
static_assert(registry::DenseRegistry<FaultKind, kFaultKindCount,
                                      &fault_kind_registered>::value,
              "fault registry density check");
static_assert(detail::fault_rows_in_enum_order(),
              "fault_registry.def rows must appear in FaultKind declaration "
              "order (name lookup indexes the table by value)");

inline const char* fault_kind_name(FaultKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  // Unreachable for any real enumerator (registry density is compile-time
  // checked); "?" survives only for a corrupted byte, and this header must
  // stay exception-free for the cache layer.
  return index < kFaultKindCount ? kFaultRegistry[index].name : "?";
}

/// One injectable fault. `seed` supplies all the entropy target selection
/// needs (which line, which word, which bit), so a command is reproducible.
struct FaultCommand {
  FaultKind kind = FaultKind::kPayloadBit;
  int level = 1;                ///< 1 = L1, 2 = L2 (strike kinds only)
  std::uint64_t seed = 0;       ///< target-selection entropy
  unsigned delay_cycles = 50;   ///< kDelayFill magnitude
};

}  // namespace cpc::verify
