#pragma once
// Always-on metadata auditing (robustness layer).
//
// MetadataAuditor walks a hierarchy's structural invariants every N-th
// access: the per-line checks the hierarchy's validate() implements (VCP
// consistency, affiliated-word gating, per-line ECC, traffic-meter
// cross-checks) plus cross-audit counter monotonicity. N comes from
// CPC_AUDIT_STRIDE (default 32768; 0 disables the stride audits, leaving
// only the hierarchy's own internal audit points active).
//
// GuardedHierarchy is the decorator the simulation driver wraps every
// hierarchy in: it forwards read/write to the wrapped hierarchy, feeds the
// auditor, and optionally injects one planned FaultCommand at a chosen
// access ordinal (the campaign's injection mechanism).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "cache/hierarchy.hpp"
#include "common/check.hpp"
#include "verify/fault.hpp"

namespace cpc::verify {

class MetadataAuditor {
 public:
  /// Reads CPC_AUDIT_STRIDE; default 32768, 0 = stride audits off.
  static std::uint64_t stride_from_env();

  explicit MetadataAuditor(std::uint64_t stride) : stride_(stride) {}
  MetadataAuditor() : MetadataAuditor(stride_from_env()) {}

  std::uint64_t stride() const { return stride_; }
  std::uint64_t audits_run() const { return audits_; }
  bool enabled() const { return stride_ != 0; }

  /// Called once per access. Every stride-th call runs the hierarchy's full
  /// validate() walk and checks counter monotonicity since the last audit.
  /// Throws cpc::InvariantViolation (with Diagnostic) on corruption.
  void on_access(const cache::MemoryHierarchy& hierarchy);

  /// One immediate audit regardless of stride (end-of-run hook).
  void audit_now(const cache::MemoryHierarchy& hierarchy);

 private:
  /// Snapshot of the audited counters, generated from
  /// verify/monotonic_counters.def (plus the traffic half-unit total, which
  /// is a TrafficMeter method rather than a plain field).
  struct CounterSnapshot {
#define CPC_MONOTONIC_COUNTER(field) std::uint64_t field = 0;
#include "verify/monotonic_counters.def"
#undef CPC_MONOTONIC_COUNTER
    std::uint64_t traffic_half_units = 0;
  };

  /// Registry rows, counted. The sizeof pin below proves every snapshot
  /// field has a registry row: add a field without a row (or vice versa)
  /// and the build fails here instead of the counter silently escaping the
  /// audit at runtime.
  static constexpr std::size_t kMonotonicCounters = 0
#define CPC_MONOTONIC_COUNTER(field) +1
#include "verify/monotonic_counters.def"
#undef CPC_MONOTONIC_COUNTER
      ;
  static_assert(sizeof(CounterSnapshot) ==
                    (kMonotonicCounters + 1) * sizeof(std::uint64_t),
                "CounterSnapshot and verify/monotonic_counters.def drifted — "
                "every audited counter needs exactly one registry row");

  void check_monotonic(const cache::MemoryHierarchy& hierarchy);

  std::uint64_t stride_;
  std::uint64_t accesses_ = 0;
  std::uint64_t audits_ = 0;
  CounterSnapshot last_;
};

/// One planned fault: inject `command` once the wrapped hierarchy has seen
/// `trigger_access` accesses. Strike faults may find no resident target on
/// the first attempt (e.g. an empty cache set); the guard re-arms every
/// access until the injection lands.
struct FaultPlan {
  FaultCommand command;
  std::uint64_t trigger_access = 0;
};

class GuardedHierarchy : public cache::MemoryHierarchy {
 public:
  explicit GuardedHierarchy(std::unique_ptr<cache::MemoryHierarchy> inner,
                            std::uint64_t audit_stride = MetadataAuditor::stride_from_env())
      : owned_(std::move(inner)), inner_(owned_.get()), auditor_(audit_stride) {}

  /// Non-owning wrap: guards a hierarchy someone else keeps alive (the
  /// simulation driver's run_trace_on path).
  explicit GuardedHierarchy(cache::MemoryHierarchy& inner,
                            std::uint64_t audit_stride = MetadataAuditor::stride_from_env())
      : inner_(&inner), auditor_(audit_stride) {}

  cache::AccessResult read(std::uint32_t addr, std::uint32_t& value) override {
    pre_access();
    const cache::AccessResult r = inner_->read(addr, value);
    auditor_.on_access(*inner_);
    return r;
  }
  cache::AccessResult write(std::uint32_t addr, std::uint32_t value) override {
    pre_access();
    const cache::AccessResult r = inner_->write(addr, value);
    auditor_.on_access(*inner_);
    return r;
  }

  std::string name() const override { return inner_->name(); }
  void validate() const override { inner_->validate(); }
  bool inject_fault(const FaultCommand& command) override {
    return inner_->inject_fault(command);
  }
  const cache::HierarchyStats& stats() const override { return inner_->stats(); }

  void arm_fault(FaultPlan plan) { plan_ = plan; }
  bool fault_injected() const { return injected_; }

  cache::MemoryHierarchy& inner() { return *inner_; }
  const cache::MemoryHierarchy& inner() const { return *inner_; }
  const MetadataAuditor& auditor() const { return auditor_; }

 private:
  void pre_access() {
    ++access_no_;
    if (plan_ && !injected_ && access_no_ >= plan_->trigger_access) {
      injected_ = inner_->inject_fault(plan_->command);
    }
  }

  std::unique_ptr<cache::MemoryHierarchy> owned_;
  cache::MemoryHierarchy* inner_;
  MetadataAuditor auditor_;
  std::optional<FaultPlan> plan_;
  bool injected_ = false;
  std::uint64_t access_no_ = 0;
};

}  // namespace cpc::verify
