#include "verify/oracle/oracle_hierarchy.hpp"

#include <cstdio>

namespace cpc::verify {

namespace {
std::uint64_t mix_commit(std::uint64_t h, std::uint64_t ordinal,
                         std::uint32_t addr, std::uint32_t value) {
  h ^= ordinal + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  std::uint64_t x = (static_cast<std::uint64_t>(addr) << 32) | value;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 31;
  return h ^ x;
}
}  // namespace

void OracleHierarchy::on_store_commit(std::uint64_t ordinal, std::uint32_t addr,
                                      std::uint32_t value) {
  shadow_.commit_store(addr, value);
  commit_hash_ = mix_commit(commit_hash_, ordinal, addr, value);
}

void OracleHierarchy::on_load_commit(std::uint64_t ordinal, std::uint32_t addr,
                                     std::uint32_t value) {
  ++committed_loads_;
  commit_hash_ = mix_commit(commit_hash_, ordinal, addr, value);
  if (shadow_.check_load(addr, value)) return;

  ++divergence_count_;
  if (divergences_.size() >= options_.max_recorded && !options_.throw_on_divergence) {
    return;
  }
  const std::uint32_t expected = shadow_.expected(addr);
  char detail[128];
  std::snprintf(detail, sizeof(detail),
                "commit #%llu load 0x%08x: expected 0x%08x, got 0x%08x",
                static_cast<unsigned long long>(ordinal), addr, expected, value);
  Diagnostic diagnostic;
  diagnostic.invariant = Invariant::kShadowDivergence;
  diagnostic.site = "OracleHierarchy(" + inner_->name() + ")";
  diagnostic.cycle = ordinal + 1;  // 1-based: Diagnostic treats 0 as unknown
  diagnostic.line_addr = addr;
  diagnostic.detail = detail;
  if (options_.throw_on_divergence) throw InvariantViolation(std::move(diagnostic));
  divergences_.push_back(std::move(diagnostic));
}

}  // namespace cpc::verify
