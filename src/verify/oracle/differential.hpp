#pragma once
// DifferentialRunner: drives one trace through all five paper
// configurations (BC, BCC, HAC, BCP, CPP) in lockstep via sim::SweepRunner,
// each wrapped in an OracleHierarchy over a GuardedHierarchy, and then
// enforces the cross-configuration metamorphic properties the paper's
// argument rests on (PAPER.md §3–4): compression and partial prefetching
// may change traffic and timing, never a loaded value.
//
// Per-configuration checks (the oracle): every committed load equals the
// shadow golden model; zero trace value mismatches.
//
// Cross-configuration metamorphic relations:
//   * identical committed-op counts and commit-stream hashes everywhere;
//   * request counts match the trace's load/store population;
//   * BC and BCC are timing-identical (the paper: "same performance",
//     compression only changes metered traffic);
//   * traffic(BCC) ≤ traffic(BC) always, and fetch-traffic(CPP) ≤
//     fetch-traffic(BC) whenever CPP demand-fetches no more lines (Fig. 10;
//     write-back totals are a figure-level result, not an invariant —
//     buddy-conflict evictions can invert them on store-heavy phases);
//   * miss-count sanity (L2 demand misses never exceed L1 misses, misses
//     never exceed accesses);
//   * TrafficMeter vs per-level counter consistency (uncompressed configs
//     meter exactly 2 half-units per word per fetched line; compressed
//     configs never more).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "compress/codec.hpp"
#include "cpu/core_config.hpp"
#include "cpu/micro_op.hpp"
#include "sim/experiment.hpp"
#include "verify/metadata_auditor.hpp"

namespace cpc::verify {

/// Cross-configuration metamorphic properties the runner enforces.
enum class Property : std::uint8_t {
  kCommittedOpsEqual,     ///< all configs commit the same op counts
  kCommitStreamEqual,     ///< all configs hash the same commit stream
  kAccessCountsMatchTrace,///< hierarchy reads/writes match the trace population
  kBcBccTimingIdentical,  ///< BC and BCC agree on cycles and miss counters
  kTrafficBccLeBc,        ///< compressed transfers never cost more than BC
  kTrafficCppLeBc,        ///< Fig. 10 fetch-path claim (see check_cross_config)
  kMissSanity,            ///< miss counters respect structural bounds
  kTrafficMeterConsistent,///< TrafficMeter agrees with fetched-line counters
};

const char* property_name(Property property);

struct PropertyViolation {
  Property property;
  std::string detail;

  Diagnostic to_diagnostic() const;
};

/// What one configuration's run left behind.
struct ConfigOutcome {
  std::string config;
  sim::RunResult run;
  bool ok = false;            ///< the job completed (false: see `failure`)
  std::string failure;        ///< exception text when the job died
  std::vector<Diagnostic> divergences;  ///< recorded shadow divergences
  std::uint64_t divergence_count = 0;   ///< total (may exceed recorded cap)
  std::uint64_t commit_hash = 0;
  std::uint64_t committed_loads = 0;
  std::uint64_t committed_stores = 0;
  std::uint64_t stream_reads = 0;
  std::uint64_t stream_writes = 0;
};

struct DifferentialOptions {
  cpu::CoreConfig core{};
  /// Metadata-audit stride inside each configuration; 0 (default) leaves
  /// divergence detection to the oracle alone, which keeps fault-catching
  /// attributable to the shadow model in tests.
  std::uint64_t audit_stride = 0;
  /// SweepRunner thread count (0 = CPC_JOBS / hardware concurrency).
  unsigned jobs = 0;
  /// Optional fault to arm on `fault_config` (acceptance/fuzz self-check).
  std::optional<FaultPlan> fault;
  sim::ConfigKind fault_config = sim::ConfigKind::kCPP;
  /// Compression codec every configuration runs under. The metamorphic
  /// relations are codec-independent (any codec's compressed word costs at
  /// most an uncompressed one, and compression never changes a loaded
  /// value), so the whole oracle reruns per codec. Outcome tags stay the
  /// bare config names — the property checker keys on them.
  compress::Codec codec = compress::kPaperCodec;
  bool quiet = true;
};

struct DifferentialReport {
  std::vector<ConfigOutcome> outcomes;  ///< sim::kAllConfigs order
  std::vector<PropertyViolation> violations;

  std::uint64_t total_divergences() const;
  std::uint64_t value_mismatches() const;
  bool all_ran() const;
  /// The property the whole PR enforces: every config ran, zero shadow
  /// divergences, zero trace mismatches, every metamorphic relation holds.
  bool clean() const;
  std::string summary() const;
};

/// Runs the trace through all five configurations and checks everything.
DifferentialReport run_differential(std::shared_ptr<const cpu::Trace> trace,
                                    const DifferentialOptions& options = {});

/// The pure cross-config property checker (separated for direct testing).
/// `trace_loads`/`trace_stores` are the trace's memory-op population;
/// `wrongpath` tells the checker speculative probes may inflate request
/// counts past the trace population.
std::vector<PropertyViolation> check_cross_config(
    const std::vector<ConfigOutcome>& outcomes, std::uint64_t trace_loads,
    std::uint64_t trace_stores, bool wrongpath = false);

}  // namespace cpc::verify
