#pragma once
// OracleHierarchy: the differential shadow oracle, a MemoryHierarchy
// decorator (alongside verify::GuardedHierarchy) that proves functional
// equivalence continuously. It forwards the CPU's request stream to the
// wrapped hierarchy untouched — speculative and wrong-path requests
// included — and registers as the core's CommitObserver so the shadow
// golden model is updated only by *architecturally committed* stores and
// consulted only for *committed* loads. Every committed load the hierarchy
// answered differently from the flat shadow store becomes a structured
// cpc::Diagnostic (kShadowDivergence) carrying the commit ordinal, the
// word address, expected and actual word, and the configuration name.
//
// sim::run_trace_on recognises the decorator and wires the commit hook
// automatically, so `run_trace_on(trace, oracle)` is all a caller needs.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/check.hpp"
#include "common/thread_annotations.hpp"
#include "cpu/commit_observer.hpp"
#include "verify/oracle/shadow_memory.hpp"

namespace cpc::verify {

class OracleHierarchy final : public cache::MemoryHierarchy,
                              public cpu::CommitObserver {
 public:
  struct Options {
    /// Throw InvariantViolation at the first divergence instead of
    /// collecting. Collection (the default) lets a differential run report
    /// the full divergence picture for shrinking.
    bool throw_on_divergence = false;
    /// Collected-divergence cap; further divergences only bump the count.
    std::size_t max_recorded = 16;
    /// Shadow fill seed; defaults to CPC_MEM_FILL like every SparseMemory.
    std::uint32_t fill_seed = mem::fill_seed_from_env();
  };

  explicit OracleHierarchy(std::unique_ptr<cache::MemoryHierarchy> inner)
      : OracleHierarchy(std::move(inner), Options{}) {}
  OracleHierarchy(std::unique_ptr<cache::MemoryHierarchy> inner,
                  Options options)
      : owned_(std::move(inner)),
        inner_(owned_.get()),
        options_(options),
        shadow_(options.fill_seed) {}

  /// Non-owning wrap: oracle-checks a hierarchy someone else keeps alive.
  explicit OracleHierarchy(cache::MemoryHierarchy& inner)
      : OracleHierarchy(inner, Options{}) {}
  OracleHierarchy(cache::MemoryHierarchy& inner, Options options)
      : inner_(&inner), options_(options), shadow_(options.fill_seed) {}

  // --- MemoryHierarchy (pure forwarding; the oracle never reorders,
  // filters or observes values here — commit is the only sample point) ----
  cache::AccessResult read(std::uint32_t addr, std::uint32_t& value) override {
    ++stream_reads_;
    return inner_->read(addr, value);
  }
  cache::AccessResult write(std::uint32_t addr, std::uint32_t value) override {
    ++stream_writes_;
    return inner_->write(addr, value);
  }
  std::string name() const override { return inner_->name(); }
  void validate() const override { inner_->validate(); }
  bool inject_fault(const FaultCommand& command) override {
    return inner_->inject_fault(command);
  }
  const cache::HierarchyStats& stats() const override { return inner_->stats(); }

  // --- CommitObserver ---------------------------------------------------
  void on_load_commit(std::uint64_t ordinal, std::uint32_t addr,
                      std::uint32_t value) override;
  void on_store_commit(std::uint64_t ordinal, std::uint32_t addr,
                       std::uint32_t value) override;

  // --- oracle state -----------------------------------------------------
  const ShadowMemory& shadow() const { return shadow_; }
  const std::vector<Diagnostic>& divergences() const { return divergences_; }
  std::uint64_t divergence_count() const { return divergence_count_; }
  bool clean() const { return divergence_count_ == 0; }

  /// Rolling hash over the committed load stream (ordinal, addr, value) —
  /// equal across two configurations iff they served every committed load
  /// identically, the cross-config metamorphic anchor.
  std::uint64_t commit_hash() const { return commit_hash_; }

  std::uint64_t committed_loads() const { return committed_loads_; }
  std::uint64_t committed_stores() const { return shadow_.stores(); }

  /// Request-stream counts as seen below the core (includes speculative
  /// wrong-path traffic the commit counters never see).
  std::uint64_t stream_reads() const { return stream_reads_; }
  std::uint64_t stream_writes() const { return stream_writes_; }

  cache::MemoryHierarchy& inner() { return *inner_; }
  const cache::MemoryHierarchy& inner() const { return *inner_; }

 private:
  std::unique_ptr<cache::MemoryHierarchy> owned_;
  cache::MemoryHierarchy* inner_;
  Options options_;

  // Commit-stream state is deliberately lock-free: SweepRunner confines each
  // oracle (like the hierarchy it wraps) to the single worker thread running
  // its job, so these buffers are never shared. CPC_THREAD_CONFINED records
  // that claim; anything cross-thread must instead be CPC_GUARDED_BY a
  // cpc::Mutex and proven by the clang -Wthread-safety build.
  CPC_THREAD_CONFINED ShadowMemory shadow_;
  CPC_THREAD_CONFINED std::vector<Diagnostic> divergences_;
  CPC_THREAD_CONFINED std::uint64_t divergence_count_ = 0;
  CPC_THREAD_CONFINED std::uint64_t committed_loads_ = 0;
  CPC_THREAD_CONFINED std::uint64_t commit_hash_ = 0x9e3779b97f4a7c15ull;
  CPC_THREAD_CONFINED std::uint64_t stream_reads_ = 0;
  CPC_THREAD_CONFINED std::uint64_t stream_writes_ = 0;
};

}  // namespace cpc::verify
