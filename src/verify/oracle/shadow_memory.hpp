#pragma once
// ShadowMemory: the flat functional golden model behind the differential
// oracle. It is the simplest possible memory — a sparse word store updated
// on every committed store, read on every committed load — so any cache
// configuration whose loads disagree with it has, by definition, corrupted
// architectural state. The shadow shares SparseMemory's deterministic fill
// pattern (CPC_MEM_FILL), so first-touch loads agree with the hierarchy's
// backing store without the shadow ever seeing a fill.

#include <cstdint>

#include "mem/sparse_memory.hpp"

namespace cpc::verify {

class ShadowMemory {
 public:
  /// Fill seed defaults to CPC_MEM_FILL, matching every hierarchy's
  /// backing SparseMemory in the same process.
  ShadowMemory() = default;
  explicit ShadowMemory(std::uint32_t fill_seed) : image_(fill_seed) {}

  /// Applies one committed store.
  void commit_store(std::uint32_t addr, std::uint32_t value) {
    image_.write_word(addr, value);
    ++stores_;
  }

  /// The architecturally correct word at `addr` right now.
  std::uint32_t expected(std::uint32_t addr) const {
    return image_.read_word(addr);
  }

  /// Checks one committed load; returns true when the hierarchy's value
  /// matches the golden model.
  bool check_load(std::uint32_t addr, std::uint32_t value) const {
    return image_.read_word(addr) == value;
  }

  std::uint64_t stores() const { return stores_; }
  std::uint32_t fill_seed() const { return image_.fill_seed(); }
  const mem::SparseMemory& image() const { return image_; }

 private:
  mem::SparseMemory image_;
  std::uint64_t stores_ = 0;
};

}  // namespace cpc::verify
