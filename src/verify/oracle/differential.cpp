#include "verify/oracle/differential.hpp"

#include <sstream>

#include "cache/config.hpp"
#include "sim/job.hpp"
#include "sim/sweep_runner.hpp"
#include "verify/oracle/oracle_hierarchy.hpp"

namespace cpc::verify {

const char* property_name(Property property) {
  switch (property) {
    case Property::kCommittedOpsEqual: return "committed-ops-equal";
    case Property::kCommitStreamEqual: return "commit-stream-equal";
    case Property::kAccessCountsMatchTrace: return "access-counts-match-trace";
    case Property::kBcBccTimingIdentical: return "bc-bcc-timing-identical";
    case Property::kTrafficBccLeBc: return "traffic-bcc-le-bc";
    case Property::kTrafficCppLeBc: return "traffic-cpp-le-bc";
    case Property::kMissSanity: return "miss-sanity";
    case Property::kTrafficMeterConsistent: return "traffic-meter-consistent";
  }
  return "?";
}

Diagnostic PropertyViolation::to_diagnostic() const {
  Diagnostic diagnostic;
  diagnostic.invariant = Invariant::kMetamorphicProperty;
  diagnostic.site = property_name(property);
  diagnostic.detail = detail;
  return diagnostic;
}

namespace {

const ConfigOutcome* find_config(const std::vector<ConfigOutcome>& outcomes,
                                 const std::string& name) {
  for (const ConfigOutcome& outcome : outcomes) {
    if (outcome.config == name && outcome.ok) return &outcome;
  }
  return nullptr;
}

void violate(std::vector<PropertyViolation>& out, Property property,
             std::string detail) {
  out.push_back(PropertyViolation{property, std::move(detail)});
}

}  // namespace

std::vector<PropertyViolation> check_cross_config(
    const std::vector<ConfigOutcome>& outcomes, std::uint64_t trace_loads,
    std::uint64_t trace_stores, bool wrongpath) {
  std::vector<PropertyViolation> violations;

  const ConfigOutcome* reference = nullptr;
  for (const ConfigOutcome& outcome : outcomes) {
    if (outcome.ok) {
      reference = &outcome;
      break;
    }
  }
  if (reference == nullptr) return violations;  // nothing ran; nothing to relate

  for (const ConfigOutcome& outcome : outcomes) {
    if (!outcome.ok) continue;
    const cache::HierarchyStats& h = outcome.run.hierarchy;

    // Committed architectural stream identical everywhere.
    if (outcome.run.core.committed != reference->run.core.committed ||
        outcome.committed_loads != reference->committed_loads ||
        outcome.committed_stores != reference->committed_stores) {
      violate(violations, Property::kCommittedOpsEqual,
              outcome.config + " committed " +
                  std::to_string(outcome.run.core.committed) + " ops / " +
                  std::to_string(outcome.committed_loads) + " loads / " +
                  std::to_string(outcome.committed_stores) + " stores vs " +
                  reference->config + "'s " +
                  std::to_string(reference->run.core.committed) + "/" +
                  std::to_string(reference->committed_loads) + "/" +
                  std::to_string(reference->committed_stores));
    }
    if (outcome.commit_hash != reference->commit_hash) {
      violate(violations, Property::kCommitStreamEqual,
              outcome.config + " commit-stream hash differs from " +
                  reference->config +
                  " — some committed load or store diverged");
    }

    // The hierarchy saw exactly the trace's memory ops (plus speculative
    // probes when wrong-path modelling is on, which only ever add reads).
    const std::uint64_t expected_reads =
        trace_loads + outcome.run.core.wrongpath_loads;
    if (h.reads != expected_reads ||
        (!wrongpath && h.writes != trace_stores) ||
        (wrongpath && h.writes < trace_stores)) {
      violate(violations, Property::kAccessCountsMatchTrace,
              outcome.config + " saw " + std::to_string(h.reads) + " reads / " +
                  std::to_string(h.writes) + " writes; trace has " +
                  std::to_string(trace_loads) + " loads / " +
                  std::to_string(trace_stores) + " stores");
    }

    // Structural miss-count sanity.
    if (h.l1_misses > h.accesses() || h.l2_misses > h.l1_misses) {
      violate(violations, Property::kMissSanity,
              outcome.config + ": l1_misses=" + std::to_string(h.l1_misses) +
                  " l2_misses=" + std::to_string(h.l2_misses) +
                  " accesses=" + std::to_string(h.accesses()));
    }

    // TrafficMeter vs fetched-line counters. Every configuration moves
    // whole L2 lines on a demand fetch (and BCP on prefetch fetches);
    // uncompressed-transfer configs meter exactly two half-units per word,
    // compressed ones never more than that.
    const std::uint64_t line_words = cache::kBaselineConfig.l2.words_per_line();
    const std::uint64_t fetched_lines = h.mem_fetch_lines + h.prefetch_lines;
    const std::uint64_t uncompressed_half = 2 * line_words * fetched_lines;
    const bool compressed_transfers =
        outcome.config == "BCC" || outcome.config == "CPP";
    const std::uint64_t fetch_half = h.traffic.fetch_half_units();
    const bool meter_ok = compressed_transfers
                              ? fetch_half <= uncompressed_half
                              : fetch_half == uncompressed_half;
    if (!meter_ok) {
      violate(violations, Property::kTrafficMeterConsistent,
              outcome.config + ": fetch traffic " + std::to_string(fetch_half) +
                  " half-units vs " + std::to_string(fetched_lines) +
                  " fetched lines (bound " + std::to_string(uncompressed_half) +
                  ")");
    }
  }

  // BC vs BCC: same caches, same timing; only the metered traffic differs.
  const ConfigOutcome* bc = find_config(outcomes, "BC");
  const ConfigOutcome* bcc = find_config(outcomes, "BCC");
  if (bc != nullptr && bcc != nullptr) {
    const cache::HierarchyStats& a = bc->run.hierarchy;
    const cache::HierarchyStats& b = bcc->run.hierarchy;
    if (bc->run.core.cycles != bcc->run.core.cycles ||
        a.l1_misses != b.l1_misses || a.l2_misses != b.l2_misses ||
        a.mem_fetch_lines != b.mem_fetch_lines ||
        a.mem_writebacks != b.mem_writebacks) {
      violate(violations, Property::kBcBccTimingIdentical,
              "BC(" + std::to_string(bc->run.core.cycles) + " cycles, " +
                  std::to_string(a.l1_misses) + "/" +
                  std::to_string(a.l2_misses) + " misses) vs BCC(" +
                  std::to_string(bcc->run.core.cycles) + " cycles, " +
                  std::to_string(b.l1_misses) + "/" +
                  std::to_string(b.l2_misses) + " misses)");
    }
    if (b.traffic.half_units() > a.traffic.half_units()) {
      violate(violations, Property::kTrafficBccLeBc,
              "BCC moved " + std::to_string(b.traffic.half_units()) +
                  " half-units vs BC's " +
                  std::to_string(a.traffic.half_units()));
    }
  }

  // The paper's headline claim (Fig. 10), as the fetch-path guarantee the
  // construction actually provides: prefetched affiliated words only ride
  // in bus slots compression freed, so whenever CPP demand-fetches no more
  // lines than BC it cannot move more fetch traffic either. Total traffic
  // including write-backs is an empirical figure-level result, not an
  // invariant: buddy lines share a frame in the compression cache, and a
  // store-heavy phase (e.g. the mcf arc-build) evicts dirty primaries that
  // BC's conventional indexing keeps resident — this runner found exactly
  // that inversion, see docs/differential_testing.md.
  const ConfigOutcome* cpp = find_config(outcomes, "CPP");
  if (bc != nullptr && cpp != nullptr) {
    const cache::HierarchyStats& a = bc->run.hierarchy;
    const cache::HierarchyStats& c = cpp->run.hierarchy;
    const std::uint64_t bc_lines = a.mem_fetch_lines + a.prefetch_lines;
    const std::uint64_t cpp_lines = c.mem_fetch_lines + c.prefetch_lines;
    if (cpp_lines <= bc_lines &&
        c.traffic.fetch_half_units() > a.traffic.fetch_half_units()) {
      violate(violations, Property::kTrafficCppLeBc,
              "CPP fetched " + std::to_string(c.traffic.fetch_half_units()) +
                  " half-units over " + std::to_string(cpp_lines) +
                  " lines vs BC's " +
                  std::to_string(a.traffic.fetch_half_units()) + " over " +
                  std::to_string(bc_lines));
    }
  }

  return violations;
}

std::uint64_t DifferentialReport::total_divergences() const {
  std::uint64_t total = 0;
  for (const ConfigOutcome& outcome : outcomes) total += outcome.divergence_count;
  return total;
}

std::uint64_t DifferentialReport::value_mismatches() const {
  std::uint64_t total = 0;
  for (const ConfigOutcome& outcome : outcomes) {
    total += outcome.run.core.value_mismatches;
  }
  return total;
}

bool DifferentialReport::all_ran() const {
  for (const ConfigOutcome& outcome : outcomes) {
    if (!outcome.ok) return false;
  }
  return !outcomes.empty();
}

bool DifferentialReport::clean() const {
  return all_ran() && total_divergences() == 0 && value_mismatches() == 0 &&
         violations.empty();
}

std::string DifferentialReport::summary() const {
  std::ostringstream out;
  out << "differential: " << (clean() ? "CLEAN" : "DIVERGED") << '\n';
  for (const ConfigOutcome& outcome : outcomes) {
    out << "  " << outcome.config << ": ";
    if (!outcome.ok) {
      out << "FAILED — " << outcome.failure << '\n';
      continue;
    }
    out << outcome.run.core.cycles << " cycles, "
        << outcome.run.hierarchy.l1_misses << " L1 misses, "
        << outcome.run.traffic_words() << " mem words, "
        << outcome.divergence_count << " divergences, "
        << outcome.run.core.value_mismatches << " mismatches\n";
    for (const Diagnostic& diagnostic : outcome.divergences) {
      out << "    " << diagnostic.to_string() << '\n';
    }
  }
  for (const PropertyViolation& violation : violations) {
    out << "  property " << property_name(violation.property) << ": "
        << violation.detail << '\n';
  }
  return out.str();
}

DifferentialReport run_differential(std::shared_ptr<const cpu::Trace> trace,
                                    const DifferentialOptions& options) {
  std::uint64_t trace_loads = 0;
  std::uint64_t trace_stores = 0;
  for (const cpu::MicroOp& op : *trace) {
    if (op.kind == cpu::OpKind::kLoad) ++trace_loads;
    if (op.kind == cpu::OpKind::kStore) ++trace_stores;
  }

  std::vector<sim::Job> jobs;
  for (sim::ConfigKind kind : sim::kAllConfigs) {
    sim::Job job;
    job.trace = trace;
    job.core_config = options.core;
    job.tag = sim::config_name(kind);
    const bool arm = options.fault && kind == options.fault_config;
    const std::uint64_t stride = options.audit_stride;
    const std::optional<FaultPlan> plan =
        arm ? options.fault : std::optional<FaultPlan>{};
    const compress::Codec codec = options.codec;
    job.make_hierarchy = [kind, stride, plan, codec] {
      // Guard first (metadata audits + fault arming), oracle outermost so
      // run_trace_on wires the commit hook and skips re-guarding.
      auto guard = std::make_unique<GuardedHierarchy>(
          sim::make_hierarchy(kind, codec), stride);
      if (plan) guard->arm_fault(*plan);
      return std::make_unique<OracleHierarchy>(std::move(guard));
    };
    jobs.push_back(std::move(job));
  }

  sim::RunOptions run_options;
  run_options.quiet = options.quiet;
  const sim::SweepRunner runner(options.jobs);
  sim::RunReport sweep = runner.run_contained(std::move(jobs), run_options);

  DifferentialReport report;
  for (sim::JobResult& result : sweep.results) {
    ConfigOutcome outcome;
    outcome.config = result.tag;
    outcome.run = result.run;
    outcome.ok = result.ok;
    if (auto* oracle =
            dynamic_cast<OracleHierarchy*>(result.hierarchy.get())) {
      outcome.divergences = oracle->divergences();
      outcome.divergence_count = oracle->divergence_count();
      outcome.commit_hash = oracle->commit_hash();
      outcome.committed_loads = oracle->committed_loads();
      outcome.committed_stores = oracle->committed_stores();
      outcome.stream_reads = oracle->stream_reads();
      outcome.stream_writes = oracle->stream_writes();
    }
    report.outcomes.push_back(std::move(outcome));
  }
  for (const sim::JobFailure& failure : sweep.failures) {
    report.outcomes[failure.index].failure = failure.what;
  }

  const bool wrongpath = options.core.wrongpath_depth > 0;
  report.violations =
      check_cross_config(report.outcomes, trace_loads, trace_stores, wrongpath);
  return report;
}

}  // namespace cpc::verify
