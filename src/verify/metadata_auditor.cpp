#include "verify/metadata_auditor.hpp"

#include <cstdlib>

namespace cpc::verify {

std::uint64_t MetadataAuditor::stride_from_env() {
  if (const char* env = std::getenv("CPC_AUDIT_STRIDE")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 32768;
}

void MetadataAuditor::on_access(const cache::MemoryHierarchy& hierarchy) {
  ++accesses_;
  if (stride_ == 0 || accesses_ % stride_ != 0) return;
  audit_now(hierarchy);
}

void MetadataAuditor::audit_now(const cache::MemoryHierarchy& hierarchy) {
  ++audits_;
  try {
    hierarchy.validate();
  } catch (const InvariantViolation& violation) {
    // Stamp the access ordinal the violation surfaced at when the site
    // could not know it.
    Diagnostic diagnostic = violation.diagnostic();
    if (diagnostic.cycle == 0) diagnostic.cycle = accesses_;
    throw InvariantViolation(std::move(diagnostic));
  }
  check_monotonic(hierarchy);
}

void MetadataAuditor::check_monotonic(const cache::MemoryHierarchy& hierarchy) {
  const cache::HierarchyStats& s = hierarchy.stats();
  CounterSnapshot now;
#define CPC_MONOTONIC_COUNTER(field) now.field = s.field;
#include "verify/monotonic_counters.def"
#undef CPC_MONOTONIC_COUNTER
  now.traffic_half_units = s.traffic.half_units();

  const auto monotonic = [&](std::uint64_t before, std::uint64_t after,
                             const char* counter) {
    check_diag(after >= before, [&] {
      return Diagnostic{Invariant::kCounterRegression,
                        hierarchy.name() + "::audit", accesses_, 0,
                        std::string(counter) + " decreased between audits (" +
                            std::to_string(before) + " -> " +
                            std::to_string(after) + ")"};
    });
  };
  // Every snapshotted counter is audited by construction: the list below is
  // the same X-macro expansion that defines CounterSnapshot, and the sizeof
  // static_assert in the header pins the two together. The historical
  // "unknown counter" escape is therefore compile-time dead; CPC_CHECK
  // documents the residual assumption instead of re-deriving it at runtime.
  CPC_CHECK(sizeof(CounterSnapshot) ==
                (kMonotonicCounters + 1) * sizeof(std::uint64_t),
            "CounterSnapshot layout drifted from monotonic_counters.def "
            "(statically asserted in metadata_auditor.hpp)");
#define CPC_MONOTONIC_COUNTER(field) monotonic(last_.field, now.field, #field);
#include "verify/monotonic_counters.def"
#undef CPC_MONOTONIC_COUNTER
  monotonic(last_.traffic_half_units, now.traffic_half_units,
            "traffic half-units");
  last_ = now;
}

}  // namespace cpc::verify
