#include "verify/metadata_auditor.hpp"

#include <cstdlib>

namespace cpc::verify {

std::uint64_t MetadataAuditor::stride_from_env() {
  if (const char* env = std::getenv("CPC_AUDIT_STRIDE")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 32768;
}

void MetadataAuditor::on_access(const cache::MemoryHierarchy& hierarchy) {
  ++accesses_;
  if (stride_ == 0 || accesses_ % stride_ != 0) return;
  audit_now(hierarchy);
}

void MetadataAuditor::audit_now(const cache::MemoryHierarchy& hierarchy) {
  ++audits_;
  try {
    hierarchy.validate();
  } catch (const InvariantViolation& violation) {
    // Stamp the access ordinal the violation surfaced at when the site
    // could not know it.
    Diagnostic diagnostic = violation.diagnostic();
    if (diagnostic.cycle == 0) diagnostic.cycle = accesses_;
    throw InvariantViolation(std::move(diagnostic));
  }
  check_monotonic(hierarchy);
}

void MetadataAuditor::check_monotonic(const cache::MemoryHierarchy& hierarchy) {
  const cache::HierarchyStats& s = hierarchy.stats();
  const CounterSnapshot now{s.reads,      s.writes,          s.l1_misses,
                            s.l2_misses,  s.mem_fetch_lines, s.traffic.half_units()};
  const auto monotonic = [&](std::uint64_t before, std::uint64_t after,
                             const char* counter) {
    check_diag(after >= before, [&] {
      return Diagnostic{Invariant::kCounterRegression,
                        hierarchy.name() + "::audit", accesses_, 0,
                        std::string(counter) + " decreased between audits (" +
                            std::to_string(before) + " -> " +
                            std::to_string(after) + ")"};
    });
  };
  monotonic(last_.reads, now.reads, "reads");
  monotonic(last_.writes, now.writes, "writes");
  monotonic(last_.l1_misses, now.l1_misses, "l1_misses");
  monotonic(last_.l2_misses, now.l2_misses, "l2_misses");
  monotonic(last_.mem_fetch_lines, now.mem_fetch_lines, "mem_fetch_lines");
  monotonic(last_.traffic_half_units, now.traffic_half_units, "traffic half-units");
  last_ = now;
}

}  // namespace cpc::verify
