#pragma once
// Fault-injection campaign driver (tools/cpc_faultcamp).
//
// For one workload: run a fault-free *golden* simulation, then K seeded
// faulted runs, each injecting exactly one FaultCommand at a pseudo-random
// point of the run. Every fault must end in one of the benign buckets:
//
//   masked      — bit-identical stats and final memory image vs golden
//   detected    — an audit threw InvariantViolation (structural or ECC)
//   timing-only — kDelayFill faults: architecturally identical (same
//                 committed ops, zero value mismatches, same memory image,
//                 audits clean) but perf counters legitimately shifted,
//                 because a late fill reorders issue
//   not-injected— the strike found no resident target line the entire run
//                 (counted separately; reported, never hidden)
//
// The one failure bucket is *silent*: corrupted data reached the
// architectural state (a load returned a wrong value, memory image diverged)
// without any audit firing. A campaign is clean iff silent == 0.

#include <cstdint>
#include <string>
#include <vector>

#include "verify/fault.hpp"
#include "verify/metadata_auditor.hpp"

namespace cpc::verify {

enum class FaultOutcome : std::uint8_t {
  kMasked,
  kDetected,
  kTimingOnly,
  kSilent,
  kNotInjected,
};

const char* fault_outcome_name(FaultOutcome outcome);

struct CampaignOptions {
  std::string workload = "olden.treeadd";
  std::size_t faults = 70;           ///< faulted runs per workload
  std::uint64_t trace_ops = 60'000;  ///< trace length
  std::uint64_t workload_seed = 0x5eed;
  std::uint64_t master_seed = 0xfa017ca3;  ///< fault-schedule seed
  std::uint64_t audit_stride = 4096;        ///< MetadataAuditor stride
};

struct FaultRecord {
  std::size_t index = 0;
  FaultCommand command;
  std::uint64_t trigger_access = 0;
  FaultOutcome outcome = FaultOutcome::kNotInjected;
  std::string detection;  ///< diagnostic text when detected
};

struct CampaignResult {
  std::string workload;
  std::uint64_t golden_cycles = 0;
  std::uint64_t golden_accesses = 0;
  std::size_t masked = 0;
  std::size_t detected = 0;
  std::size_t timing_only = 0;
  std::size_t silent = 0;
  std::size_t not_injected = 0;
  std::vector<FaultRecord> records;

  std::size_t total() const { return records.size(); }
  /// No silent corruption: the property the campaign asserts.
  bool clean() const { return silent == 0; }
};

/// Runs one campaign. Throws std::runtime_error when the golden run itself
/// fails validation (the campaign cannot classify against a broken golden).
CampaignResult run_campaign(const CampaignOptions& options);

}  // namespace cpc::verify
