#include "stats/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

namespace cpc::stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::string format_cell(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}
}  // namespace

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::string label, std::vector<double> cells) {
  cells.resize(columns_.size(), kNaN);
  labels_.push_back(std::move(label));
  cells_.push_back(std::move(cells));
}

void Table::add_mean_row(std::string label) {
  std::vector<double> row;
  row.reserve(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) row.push_back(mean(column_values(c)));
  add_row(std::move(label), std::move(row));
}

void Table::add_geomean_row(std::string label) {
  std::vector<double> row;
  row.reserve(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) row.push_back(geomean(column_values(c)));
  add_row(std::move(label), std::move(row));
}

double Table::cell(std::size_t row, std::size_t col) const {
  return cells_.at(row).at(col);
}

std::vector<double> Table::column_values(std::size_t col) const {
  std::vector<double> out;
  out.reserve(cells_.size());
  for (const auto& row : cells_) out.push_back(row.at(col));
  return out;
}

std::string Table::to_ascii(int precision) const {
  // Compute column widths: label column then data columns.
  std::size_t label_width = 0;
  for (const auto& l : labels_) label_width = std::max(label_width, l.size());
  label_width = std::max(label_width, std::size_t{4});

  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (std::size_t r = 0; r < rows(); ++r) {
      widths[c] = std::max(widths[c], format_cell(cells_[r][c], precision).size());
    }
  }

  std::ostringstream os;
  os << title_ << '\n';
  os << std::left << std::setw(static_cast<int>(label_width)) << "" << "  ";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::right << std::setw(static_cast<int>(widths[c])) << columns_[c]
       << (c + 1 < columns_.size() ? "  " : "");
  }
  os << '\n';
  for (std::size_t r = 0; r < rows(); ++r) {
    os << std::left << std::setw(static_cast<int>(label_width)) << labels_[r] << "  ";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << std::right << std::setw(static_cast<int>(widths[c]))
         << format_cell(cells_[r][c], precision)
         << (c + 1 < columns_.size() ? "  " : "");
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::to_csv(int precision) const {
  std::ostringstream os;
  os << "benchmark";
  for (const auto& c : columns_) os << ',' << c;
  os << '\n';
  for (std::size_t r = 0; r < rows(); ++r) {
    os << labels_[r];
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << ',';
      if (!std::isnan(cells_[r][c])) {
        os << std::fixed << std::setprecision(precision) << cells_[r][c];
      }
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_ascii();
}

double mean(const std::vector<double>& values) {
  double sum = 0.0;
  std::size_t n = 0;
  for (double v : values) {
    if (!std::isnan(v)) {
      sum += v;
      ++n;
    }
  }
  return n == 0 ? kNaN : sum / static_cast<double>(n);
}

double geomean(const std::vector<double>& values) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double v : values) {
    if (!std::isnan(v) && v > 0.0) {
      log_sum += std::log(v);
      ++n;
    }
  }
  return n == 0 ? kNaN : std::exp(log_sum / static_cast<double>(n));
}

}  // namespace cpc::stats
