#pragma once
// Named 64-bit event counters shared by the cache and CPU models.
// Deliberately tiny: the simulators own strongly-typed stats structs; this
// registry exists for ad-hoc instrumentation and debug dumps.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace cpc::stats {

/// An ordered bag of named monotonically increasing counters.
class CounterSet {
 public:
  void add(std::string_view name, std::uint64_t delta = 1) {
    counters_[std::string(name)] += delta;
  }

  std::uint64_t get(std::string_view name) const {
    auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0 : it->second;
  }

  void reset() { counters_.clear(); }

  const std::map<std::string, std::uint64_t>& all() const { return counters_; }

  /// "name=value" lines, sorted by name.
  std::string to_string() const {
    std::string out;
    for (const auto& [name, value] : counters_) {
      out += name;
      out += '=';
      out += std::to_string(value);
      out += '\n';
    }
    return out;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace cpc::stats
