#pragma once
// Minimal result-table builder used by the bench harnesses to print the
// paper's figures as aligned ASCII tables and CSV. Rows are benchmarks,
// columns are cache configurations (or value classes, etc.).

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace cpc::stats {

/// A rectangular table of doubles with row/column labels.
/// Cells are stored row-major; missing cells render as "-".
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Appends a row; `cells` shorter than the column count is padded with NaN.
  void add_row(std::string label, std::vector<double> cells);

  /// Appends a summary row holding the arithmetic mean of each column
  /// (ignoring NaN cells), labelled `label`.
  void add_mean_row(std::string label = "average");

  /// Appends a summary row holding the geometric mean of each column
  /// (ignoring NaN and non-positive cells), labelled `label`.
  void add_geomean_row(std::string label = "geomean");

  std::size_t rows() const { return labels_.size(); }
  std::size_t columns() const { return columns_.size(); }
  double cell(std::size_t row, std::size_t col) const;
  const std::string& row_label(std::size_t row) const { return labels_.at(row); }
  const std::string& column_label(std::size_t col) const { return columns_.at(col); }
  const std::string& title() const { return title_; }

  /// Renders an aligned ASCII table. `precision` controls digits after the
  /// decimal point.
  std::string to_ascii(int precision = 3) const;

  /// Renders RFC-4180-ish CSV (title omitted; header row of column labels).
  std::string to_csv(int precision = 6) const;

 private:
  std::vector<double> column_values(std::size_t col) const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::string> labels_;
  std::vector<std::vector<double>> cells_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

/// Arithmetic mean of `values`, NaN entries skipped; NaN when empty.
double mean(const std::vector<double>& values);

/// Geometric mean of the positive entries of `values`; NaN when none.
double geomean(const std::vector<double>& values);

}  // namespace cpc::stats
