#pragma once
// One level of the CPP compression cache (paper section 3).
//
// Placement: a line L may reside in its *primary* location (the set a
// conventional cache maps it to) or packed, in compressed form, into the
// free half-slots of the physical line whose primary tag is L ^ mask (its
// *affiliated* location). At most one copy exists at a time.
//
// This class owns placement, lookup, partial fills, victim demotion and
// write promotion; the enclosing CppHierarchy owns the inter-level protocol
// and traffic metering. Dirty data leaving the cache is handed to a
// WritebackSink.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "compress/codec.hpp"
#include "core/compressed_line.hpp"
#include "verify/fault.hpp"

namespace cpc::core {

/// Receives dirty words evicted from a CppCache. `mask` flags which entries
/// of `words` are valid; `words` is indexed by word offset within the line.
class WritebackSink {
 public:
  virtual ~WritebackSink() = default;
  virtual void writeback(std::uint32_t line_addr, std::uint32_t mask,
                         std::span<const std::uint32_t> words) = 0;
};

/// Fixed-capacity word buffer for line images moving between levels. Lines
/// are at most 32 words (the flag masks are 32 bits wide), so the storage
/// lives inline — building or copying a line image never allocates, which
/// matters because one IncomingLine is materialised per cache miss.
class LineWords {
 public:
  void assign(std::uint32_t n, std::uint32_t value) {
    size_ = n;
    for (std::uint32_t i = 0; i < n; ++i) data_[i] = value;
  }
  std::uint32_t size() const { return size_; }
  std::uint32_t& operator[](std::size_t i) { return data_[i]; }
  std::uint32_t operator[](std::size_t i) const { return data_[i]; }
  std::uint32_t* data() { return data_.data(); }
  const std::uint32_t* data() const { return data_.data(); }

 private:
  std::array<std::uint32_t, 32> data_{};
  std::uint32_t size_ = 0;
};

/// A (possibly partial) line image moving into a CppCache: the primary
/// line's available words plus the prefetched compressible words of its
/// affiliated line.
struct IncomingLine {
  std::uint32_t line_addr = 0;
  std::uint32_t present = 0;  ///< mask over primary words
  LineWords words;  ///< full line size; valid where `present`
  std::uint32_t aff_present = 0;  ///< mask over affiliated (line_addr ^ mask) words
  LineWords aff_words;  ///< compressed forms; valid where `aff_present`
};

class CppCache {
 public:
  /// `affiliation_enabled = false` turns the level into a plain partial-line
  /// cache: no affiliated packing, demotion, or affiliated hits (used by the
  /// per-level ablation).
  /// `label` names this level in diagnostics ("L1", "L2").
  CppCache(cache::CacheGeometry geometry, compress::Codec codec,
           std::uint32_t affiliation_mask = cache::kAffiliationMask,
           bool affiliation_enabled = true, std::string label = "CppCache");

  const cache::CacheGeometry& geometry() const { return geo_; }
  const compress::Codec& codec() const { return codec_; }
  std::uint32_t affiliation_mask() const { return mask_; }

  std::uint32_t buddy_of(std::uint32_t line_addr) const { return line_addr ^ mask_; }

  /// Byte address of word i of line `line_addr`.
  std::uint32_t word_addr(std::uint32_t line_addr, std::uint32_t i) const {
    return geo_.base_of_line(line_addr) + i * 4;
  }

  /// Resident physical line whose primary tag is `line_addr`, or nullptr.
  CompressedLine* find_primary(std::uint32_t line_addr);
  const CompressedLine* find_primary(std::uint32_t line_addr) const;

  /// Physical line currently hosting an affiliated copy of `line_addr`
  /// (i.e. the primary-resident buddy with at least one AA bit), or nullptr.
  CompressedLine* find_affiliated_host(std::uint32_t line_addr);
  const CompressedLine* find_affiliated_host(std::uint32_t line_addr) const;

  void touch(CompressedLine& line) { line.last_use = ++clock_; }

  /// Reads the current value of word i of line `line_addr` if any copy
  /// (primary or affiliated) holds it. Returns false when absent.
  bool peek_word(std::uint32_t line_addr, std::uint32_t i, std::uint32_t& value) const;

  /// Installs (or merges) `incoming` as a primary line. Existing dirty words
  /// are never overwritten by the merge; the prefetched affiliated half is
  /// discarded if that line is already resident; a valid victim is written
  /// back via `sink` when dirty and then demoted into its affiliated place
  /// when its buddy is primary-resident. Returns the installed line.
  CompressedLine& install(const IncomingLine& incoming, WritebackSink& sink);

  /// Moves the affiliated copy of `line_addr` into its primary place (the
  /// paper's write-promotion, section 3.3). Requires an affiliated copy to
  /// exist. Returns the promoted (partial, clean) primary line.
  CompressedLine& promote(std::uint32_t line_addr, WritebackSink& sink);

  /// Writes `value` into primary word i (write-validate: the word need not
  /// be present beforehand). Handles the compressible→incompressible
  /// transition by evicting the conflicting affiliated word (clean, so it is
  /// simply dropped). Marks the line dirty.
  void write_primary_word(CompressedLine& line, std::uint32_t i, std::uint32_t value);

  /// Packs the compressible words of a (clean) line image into the free
  /// half-slots of the buddy's physical line, if the buddy is primary
  /// resident. Returns the number of words packed.
  std::uint32_t demote_into_affiliated(std::uint32_t line_addr, std::uint32_t mask,
                                       std::span<const std::uint32_t> words);

  /// Audits `host` and then drops its affiliated words. Callers outside the
  /// cache must use this instead of CompressedLine::drop_all_affiliated(),
  /// which resets the line ECC from current state and would silently launder
  /// a prior strike on the outgoing copy.
  void drop_affiliated_copy(CompressedLine& host);

  /// Checks the structural invariants and per-line ECC of every resident
  /// line; throws cpc::InvariantViolation carrying a Diagnostic.
  void validate() const;

  /// Inflicts a strike-type fault (payload bit or PA/AA/VCP flag flip) on a
  /// pseudo-randomly chosen resident line, bypassing ECC maintenance.
  /// Returns false when no suitable target line is resident.
  bool strike_random(const verify::FaultCommand& command);

  /// Counters the hierarchy exposes.
  std::uint64_t demotions() const { return demotions_; }
  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t affiliated_word_evictions() const { return aff_word_evictions_; }

 private:
  CompressedLine& victim_way(std::uint32_t set);

  /// Always-on ECC audit of a line whose content is about to leave the
  /// cache (eviction write-back, demotion, promotion): the last moment a
  /// strike can be caught before it propagates.
  void audit_line(const CompressedLine& line, const char* stage) const;

  /// Structural + ECC checks for one resident line.
  void validate_line(const CompressedLine& line) const;

  cache::CacheGeometry geo_;
  compress::Codec codec_;
  std::uint32_t mask_;
  bool affiliation_enabled_;
  std::string label_;
  std::vector<CompressedLine> lines_;  // sets * ways
  std::uint64_t clock_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t promotions_ = 0;
  std::uint64_t aff_word_evictions_ = 0;
};

}  // namespace cpc::core
