#include "core/cpp_cache.hpp"

#include <array>
#include <cassert>
#include <random>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace cpc::core {

CppCache::CppCache(cache::CacheGeometry geometry, compress::Codec codec,
                   std::uint32_t affiliation_mask, bool affiliation_enabled,
                   std::string label)
    : geo_(geometry),
      codec_(codec),
      mask_(affiliation_mask),
      affiliation_enabled_(affiliation_enabled),
      label_(std::move(label)) {
  assert(geo_.words_per_line() <= 32 && "flag masks are 32 bits wide");
  assert(geo_.num_sets() >= 2 && "affiliation needs at least two sets");
  lines_.reserve(static_cast<std::size_t>(geo_.num_sets()) * geo_.ways);
  for (std::uint32_t i = 0; i < geo_.num_sets() * geo_.ways; ++i) {
    lines_.emplace_back(geo_.words_per_line());
  }
}

CompressedLine* CppCache::find_primary(std::uint32_t line_addr) {
  const std::uint32_t set = geo_.set_of_line(line_addr);
  for (std::uint32_t w = 0; w < geo_.ways; ++w) {
    CompressedLine& line = lines_[static_cast<std::size_t>(set) * geo_.ways + w];
    if (line.valid && line.line_addr == line_addr) return &line;
  }
  return nullptr;
}

const CompressedLine* CppCache::find_primary(std::uint32_t line_addr) const {
  return const_cast<CppCache*>(this)->find_primary(line_addr);
}

CompressedLine* CppCache::find_affiliated_host(std::uint32_t line_addr) {
  CompressedLine* buddy = find_primary(buddy_of(line_addr));
  return (buddy != nullptr && buddy->aa_mask() != 0) ? buddy : nullptr;
}

const CompressedLine* CppCache::find_affiliated_host(std::uint32_t line_addr) const {
  return const_cast<CppCache*>(this)->find_affiliated_host(line_addr);
}

bool CppCache::peek_word(std::uint32_t line_addr, std::uint32_t i,
                         std::uint32_t& value) const {
  if (const CompressedLine* p = find_primary(line_addr); p && p->has_primary(i)) {
    value = p->primary_word(i);
    return true;
  }
  if (const CompressedLine* h = find_affiliated_host(line_addr); h && h->has_affiliated(i)) {
    value = codec_.decompress(h->affiliated_word(i), word_addr(line_addr, i));
    return true;
  }
  return false;
}

CompressedLine& CppCache::victim_way(std::uint32_t set) {
  CompressedLine* victim = nullptr;
  for (std::uint32_t w = 0; w < geo_.ways; ++w) {
    CompressedLine& line = lines_[static_cast<std::size_t>(set) * geo_.ways + w];
    if (!line.valid) return line;
    if (victim == nullptr || line.last_use < victim->last_use) victim = &line;
  }
  return *victim;
}

CompressedLine& CppCache::install(const IncomingLine& incoming, WritebackSink& sink) {
  const std::uint32_t L = incoming.line_addr;
  const std::uint32_t n = geo_.words_per_line();
  assert(incoming.words.size() == n && incoming.aff_words.size() == n);

  // Case 1: L already primary-resident — merge the missing words only, so
  // locally dirty words are never clobbered by (possibly older) lower-level
  // data.
  if (CompressedLine* line = find_primary(L)) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (((incoming.present >> i) & 1u) && !line->has_primary(i)) {
        line->set_primary_word(i, incoming.words[i], word_addr(L, i), codec_);
        // An incompressible merged word claims the whole slot: the primary
        // line has priority, so a prefetched affiliated word there is
        // evicted (clean — simply dropped).
        if (!line->primary_compressed(i) && line->has_affiliated(i)) {
          line->drop_affiliated_word(i);
          ++aff_word_evictions_;
        }
      }
    }
    // Merge prefetched affiliated words into still-free slots, unless the
    // affiliated line is resident as a primary line somewhere.
    if (find_primary(buddy_of(L)) == nullptr) {
      for (std::uint32_t i = 0; i < n; ++i) {
        if (((incoming.aff_present >> i) & 1u) && line->slot_free_for_affiliated(i)) {
          line->set_affiliated_word(i, compress::CompressedWord{incoming.aff_words[i]});
        }
      }
    }
    touch(*line);
    return *line;
  }

  // Case 2: fresh install. First fold in any affiliated copy of L (it is
  // clean and consistent with the level below, so it can only widen
  // coverage), then drop it — a line lives in one place at a time.
  IncomingLine merged = incoming;
  if (CompressedLine* host = find_affiliated_host(L)) {
    audit_line(*host, "fold-affiliated");
    for (std::uint32_t i = 0; i < n; ++i) {
      if (host->has_affiliated(i) && !((merged.present >> i) & 1u)) {
        merged.words[i] = codec_.decompress(host->affiliated_word(i), word_addr(L, i));
        merged.present |= 1u << i;
      }
    }
    host->drop_all_affiliated();
  }

  // Evict the victim: write back dirty words, then try to keep a clean
  // partial copy in the victim's affiliated place (section 3.3).
  CompressedLine& slot = victim_way(geo_.set_of_line(L));
  if (slot.valid) {
    audit_line(slot, "evict");
    // One snapshot of the victim's primary words serves both the dirty
    // write-back and the demotion attempt.
    std::array<std::uint32_t, 32> kept{};
    for (std::uint32_t i = 0; i < n; ++i) {
      if (slot.has_primary(i)) kept[i] = slot.primary_word(i);
    }
    const std::span<const std::uint32_t> kept_span(kept.data(), n);
    if (slot.dirty && slot.pa_mask() != 0) {
      sink.writeback(slot.line_addr, slot.pa_mask(), kept_span);
    }
    const std::uint32_t victim_addr = slot.line_addr;
    const std::uint32_t victim_mask = slot.pa_mask();
    // Invalidate before demotion so the demoted copy is the only copy.
    slot.valid = false;
    slot.reset_content();
    demote_into_affiliated(victim_addr, victim_mask, kept_span);
  }

  slot.valid = true;
  slot.line_addr = L;
  slot.reset_content();
  slot.valid = true;  // reset_content leaves valid untouched; be explicit anyway

  for (std::uint32_t i = 0; i < n; ++i) {
    if ((merged.present >> i) & 1u) {
      slot.set_primary_word(i, merged.words[i], word_addr(L, i), codec_);
    }
  }
  slot.dirty = false;  // set_primary_word never dirties; fills are clean

  // Attach the prefetched affiliated half unless that line is already
  // resident in its primary place ("the prefetched affiliated line is
  // discarded if it is already in the cache", section 3.3).
  if (find_primary(buddy_of(L)) == nullptr) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (((merged.aff_present >> i) & 1u) && slot.slot_free_for_affiliated(i)) {
        slot.set_affiliated_word(i, compress::CompressedWord{merged.aff_words[i]});
      }
    }
  }
  touch(slot);
  return slot;
}

CompressedLine& CppCache::promote(std::uint32_t line_addr, WritebackSink& sink) {
  CompressedLine* host = find_affiliated_host(line_addr);
  assert(host != nullptr && "promote requires an affiliated copy");
  audit_line(*host, "promote");
  const std::uint32_t n = geo_.words_per_line();

  IncomingLine img;
  img.line_addr = line_addr;
  img.words.assign(n, 0);
  img.aff_words.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (host->has_affiliated(i)) {
      img.words[i] = codec_.decompress(host->affiliated_word(i), word_addr(line_addr, i));
      img.present |= 1u << i;
    }
  }
  host->drop_all_affiliated();
  ++promotions_;
  return install(img, sink);
}

void CppCache::write_primary_word(CompressedLine& line, std::uint32_t i,
                                  std::uint32_t value) {
  const std::uint32_t addr = word_addr(line.line_addr, i);
  const bool lost_compression = line.set_primary_word(i, value, addr, codec_);
  // An uncompressed primary word needs the whole slot: the affiliated word
  // sharing it is evicted (it is clean, so it is simply dropped). The paper
  // gives priority to the primary line's words (section 3.3).
  if ((lost_compression || !line.primary_compressed(i)) && line.has_affiliated(i)) {
    line.drop_affiliated_word(i);
    ++aff_word_evictions_;
  }
  line.dirty = true;
}

std::uint32_t CppCache::demote_into_affiliated(std::uint32_t line_addr,
                                               std::uint32_t mask,
                                               std::span<const std::uint32_t> words) {
  if (!affiliation_enabled_) return 0;
  CompressedLine* buddy = find_primary(buddy_of(line_addr));
  if (buddy == nullptr) return 0;
  std::uint32_t packed = 0;
  for (std::uint32_t i = 0; i < geo_.words_per_line(); ++i) {
    if (!((mask >> i) & 1u) || !buddy->slot_free_for_affiliated(i)) continue;
    const auto cw = codec_.compress(words[i], word_addr(line_addr, i));
    if (!cw) continue;  // incompressible words cannot live in a half-slot
    buddy->set_affiliated_word(i, *cw);
    ++packed;
  }
  if (packed > 0) ++demotions_;
  return packed;
}

void CppCache::drop_affiliated_copy(CompressedLine& host) {
  audit_line(host, "drop-affiliated");
  host.drop_all_affiliated();
}

void CppCache::validate_line(const CompressedLine& line) const {
  const std::uint32_t n = geo_.words_per_line();
  const auto diag = [&](Invariant inv, std::string detail) {
    return Diagnostic{inv, label_ + "::validate", clock_, line.line_addr,
                      std::move(detail)};
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    if (line.has_affiliated(i)) {
      // AA[i] requires a free primary half-slot.
      check_diag(!line.has_primary(i) || line.primary_compressed(i), [&] {
        return diag(Invariant::kAffiliatedOverUncompressed,
                    "AA bit set over an uncompressed primary word " +
                        std::to_string(i));
      });
      // An affiliated word is stored compressed, so it must decompress to
      // a value that is itself compressible at its address.
      const std::uint32_t aff_addr = word_addr(buddy_of(line.line_addr), i);
      const std::uint32_t value = codec_.decompress(line.affiliated_word(i), aff_addr);
      check_diag(codec_.is_compressible(value, aff_addr), [&] {
        return diag(Invariant::kAffiliatedNotCompressible,
                    "affiliated word " + std::to_string(i) +
                        " does not round-trip through compression");
      });
    }
    if (line.has_primary(i) && line.primary_compressed(i)) {
      check_diag(
          codec_.is_compressible(line.primary_word(i), word_addr(line.line_addr, i)),
          [&] {
            return diag(Invariant::kVcpMismatch,
                        "VCP flag disagrees with the compression scheme at word " +
                            std::to_string(i));
          });
    }
  }
  // At most one copy of any line: if this line's buddy is primary
  // resident, this line must not also carry affiliated content for it.
  if (line.aa_mask() != 0) {
    check_diag(find_primary(buddy_of(line.line_addr)) == nullptr, [&] {
      return diag(Invariant::kDoubleResidency,
                  "line present both as primary and as affiliated copy (buddy " +
                      std::to_string(buddy_of(line.line_addr)) + ")");
    });
  }
  if (line.dirty) {
    check_diag(line.pa_mask() != 0, [&] {
      return diag(Invariant::kDirtyEmpty, "dirty line with no primary words");
    });
  }
  // Last, so a structural corruption reports its specific invariant above
  // and a pure payload strike still trips here.
  check_diag(line.ecc_ok(), [&] {
    return diag(Invariant::kLineEcc, "line ECC mismatch over flags+payload");
  });
}

void CppCache::validate() const {
  for (const CompressedLine& line : lines_) {
    if (line.valid) validate_line(line);
  }
}

void CppCache::audit_line(const CompressedLine& line, const char* stage) const {
  check_diag(line.ecc_ok(), [&] {
    return Diagnostic{Invariant::kLineEcc, label_ + "::" + stage, clock_,
                      line.line_addr,
                      "line ECC mismatch on content leaving the cache"};
  });
}

bool CppCache::strike_random(const verify::FaultCommand& command) {
  std::mt19937_64 rng(command.seed);
  // Collect candidate lines; payload strikes need at least one stored word.
  std::vector<CompressedLine*> targets;
  for (CompressedLine& line : lines_) {
    if (!line.valid) continue;
    if (command.kind == verify::FaultKind::kPayloadBit && line.pa_mask() == 0) {
      continue;
    }
    if (command.kind == verify::FaultKind::kPayloadBitSilent &&
        (line.pa_mask() & ~line.vcp_mask()) == 0) {
      // The silent strike targets uncompressed primary words only, so the
      // corrupted line satisfies every structural invariant afterwards.
      continue;
    }
    targets.push_back(&line);
  }
  if (targets.empty()) return false;
  CompressedLine& line = *targets[rng() % targets.size()];
  const std::uint32_t n = geo_.words_per_line();
  switch (command.kind) {
    case verify::FaultKind::kPayloadBit: {
      std::vector<std::uint32_t> words;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (line.has_primary(i)) words.push_back(i);
      }
      line.strike_primary_bit(words[rng() % words.size()],
                              static_cast<unsigned>(rng() % 32));
      return true;
    }
    case verify::FaultKind::kPayloadBitSilent: {
      std::vector<std::uint32_t> words;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (line.has_primary(i) && !line.primary_compressed(i)) words.push_back(i);
      }
      line.strike_primary_bit(words[rng() % words.size()],
                              static_cast<unsigned>(rng() % 32));
      line.launder_ecc();
      return true;
    }
    case verify::FaultKind::kPaFlag:
      line.strike_pa_flag(rng() % n);
      return true;
    case verify::FaultKind::kAaFlag:
      line.strike_aa_flag(rng() % n);
      return true;
    case verify::FaultKind::kVcpFlag:
      line.strike_vcp_flag(rng() % n);
      return true;
    case verify::FaultKind::kDropResponseWord:
    case verify::FaultKind::kDelayFill:
      return false;  // drop/delay faults live in the hierarchy, not the array
  }
  return false;  // unreachable: the switch above is exhaustive
}

}  // namespace cpc::core
