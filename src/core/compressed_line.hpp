#pragma once
// One physical cache line of the compression cache (paper Fig. 7).
//
// A physical line can hold content from two cache lines: the *primary* line
// (the line a conventional cache would map here) and its *affiliated* line
// (line address = primary ^ mask). Per-word flags:
//
//   PA  (primary availability)   — word i of the primary line is present
//   AA  (affiliated availability)— word i of the affiliated line is present
//   VCP (value compressed, primary) — primary word i is stored compressed,
//        freeing the half-slot the affiliated word i occupies
//
// An affiliated word is necessarily compressible (it is stored in 16-bit
// form) and may only occupy slot i when the primary word there is itself
// compressed or absent. The simulator stores primary words uncompressed for
// convenience; VCP records what the hardware layout would be, which is what
// gates affiliated packing.
//
// Metadata/payload ECC: every line carries a 32-bit check word folded over
// the PA/AA/VCP masks and the stored word contents, maintained
// *incrementally* by each legitimate mutator (the model of a hardware ECC
// codeword written alongside the data). The fault-injection strike hooks
// below flip stored bits without touching the check word — exactly what a
// particle strike does to an array — so any later audit, eviction or
// writeback that calls ecc_ok() detects the corruption. Incremental (rather
// than recomputed) maintenance matters: recomputing after an unrelated
// legitimate write would launder a pre-existing strike into a "valid"
// codeword.

#include <cstdint>
#include <vector>

#include "compress/codec.hpp"

namespace cpc::core {

class CompressedLine {
 public:
  CompressedLine() { ecc_ = ecc_over_current_state(); }
  explicit CompressedLine(std::uint32_t words_per_line)
      : primary_(words_per_line, 0), affiliated_(words_per_line, 0) {
    ecc_ = ecc_over_current_state();
  }

  bool valid = false;
  bool dirty = false;  ///< applies to primary content; affiliated copies are clean
  std::uint32_t line_addr = 0;  ///< primary line address
  std::uint64_t last_use = 0;

  std::uint32_t words_per_line() const {
    return static_cast<std::uint32_t>(primary_.size());
  }

  // --- flag accessors -------------------------------------------------
  bool has_primary(std::uint32_t i) const { return (pa_ >> i) & 1u; }
  bool has_affiliated(std::uint32_t i) const { return (aa_ >> i) & 1u; }
  bool primary_compressed(std::uint32_t i) const { return (vcp_ >> i) & 1u; }

  std::uint32_t pa_mask() const { return pa_; }
  std::uint32_t aa_mask() const { return aa_; }
  std::uint32_t vcp_mask() const { return vcp_; }

  /// True when slot i can accept an affiliated word: no affiliated word yet
  /// and the primary half-slot is free (word compressed or absent).
  bool slot_free_for_affiliated(std::uint32_t i) const {
    return !has_affiliated(i) && (!has_primary(i) || primary_compressed(i));
  }

  // --- primary content -------------------------------------------------
  std::uint32_t primary_word(std::uint32_t i) const { return primary_[i]; }

  /// Installs/overwrites primary word i with `value` stored at `addr`,
  /// recomputing VCP. Returns true when the word transitioned from
  /// compressed to uncompressed storage (the transition of section 3.3).
  bool set_primary_word(std::uint32_t i, std::uint32_t value, std::uint32_t addr,
                        const compress::Codec& codec) {
    const std::uint32_t bit = 1u << i;
    const bool was_present = (pa_ & bit) != 0;
    const bool was_compressed = was_present && (vcp_ & bit) != 0;
    if (was_present) ecc_ ^= mix(primary_[i], kPrimarySalt + i);
    primary_[i] = value;
    const bool now_compressed = codec.is_compressible(value, addr);
    // Incremental flag maintenance: XOR-ing the whole flag fold out and back
    // in cancels every unchanged contribution, so only the PA/VCP terms that
    // actually move are folded — this is the hottest mutator in the CPP
    // fill/write-back path.
    const std::uint32_t new_pa = pa_ | bit;
    const std::uint32_t new_vcp = now_compressed ? (vcp_ | bit) : (vcp_ & ~bit);
    if (new_pa != pa_) {
      ecc_ ^= mix(pa_, kPaSalt) ^ mix(new_pa, kPaSalt);
      pa_ = new_pa;
    }
    if (new_vcp != vcp_) {
      ecc_ ^= mix(vcp_, kVcpSalt) ^ mix(new_vcp, kVcpSalt);
      vcp_ = new_vcp;
    }
    ecc_ ^= mix(value, kPrimarySalt + i);
    return was_compressed && !now_compressed;
  }

  /// Wipes the primary half. Resets the ECC over the remaining (affiliated)
  /// content — callers audit the outgoing content first (CppCache checks
  /// victim lines before eviction), so this cannot launder a strike.
  void clear_primary() {
    pa_ = 0;
    vcp_ = 0;
    dirty = false;
    ecc_ = ecc_over_current_state();
  }

  // --- affiliated content ----------------------------------------------
  compress::CompressedWord affiliated_word(std::uint32_t i) const {
    return compress::CompressedWord{affiliated_[i]};
  }

  void set_affiliated_word(std::uint32_t i, compress::CompressedWord cw) {
    const std::uint32_t bit = 1u << i;
    if ((aa_ & bit) != 0) ecc_ ^= mix(affiliated_[i], kAffiliatedSalt + i);
    affiliated_[i] = cw.bits;
    if ((aa_ & bit) == 0) {
      // Only the AA contribution of the flag fold moves (see
      // set_primary_word for the cancellation argument).
      ecc_ ^= mix(aa_, kAaSalt);
      aa_ |= bit;
      ecc_ ^= mix(aa_, kAaSalt);
    }
    ecc_ ^= mix(cw.bits, kAffiliatedSalt + i);
  }

  void drop_affiliated_word(std::uint32_t i) {
    if (!has_affiliated(i)) return;
    ecc_ ^= mix(affiliated_[i], kAffiliatedSalt + i);
    ecc_ ^= mix(aa_, kAaSalt);
    aa_ &= ~(1u << i);
    ecc_ ^= mix(aa_, kAaSalt);
  }

  void drop_all_affiliated() {
    aa_ = 0;
    ecc_ = ecc_over_current_state();
  }

  /// Wipes both halves at once (a fresh install into an audited slot).
  /// Equivalent to clear_primary() + drop_all_affiliated(): with every flag
  /// zeroed the ECC fold degenerates to flag_ecc(), so no per-word loop.
  void reset_content() {
    pa_ = 0;
    aa_ = 0;
    vcp_ = 0;
    dirty = false;
    ecc_ = flag_ecc();
  }

  // --- metadata/payload ECC ---------------------------------------------
  /// True when the stored check word matches the current flags and content.
  bool ecc_ok() const { return ecc_ == ecc_over_current_state(); }

  // --- fault-injection strike hooks --------------------------------------
  // Model a particle strike on the data / flag arrays: the stored bit flips
  // but the ECC codeword is left stale, so audits detect the corruption.
  // Only verify::FaultCommand handling should call these.
  void strike_primary_bit(std::uint32_t i, unsigned bit) {
    primary_[i] ^= 1u << bit;
  }
  void strike_affiliated_bit(std::uint32_t i, unsigned bit) {
    affiliated_[i] ^= 1u << bit;
  }
  void strike_pa_flag(std::uint32_t i) { pa_ ^= 1u << i; }
  void strike_aa_flag(std::uint32_t i) { aa_ ^= 1u << i; }
  void strike_vcp_flag(std::uint32_t i) { vcp_ ^= 1u << i; }
  /// Rewrites the check word over the *current* (possibly struck) state —
  /// the FaultKind::kPayloadBitSilent model of corruption the codeword
  /// cannot witness. Every ecc_ok() audit passes afterwards; only the
  /// architectural shadow oracle can catch what this hides.
  void launder_ecc() { ecc_ = ecc_over_current_state(); }

 private:
  static constexpr std::uint32_t kPaSalt = 1;
  static constexpr std::uint32_t kAaSalt = 2;
  static constexpr std::uint32_t kVcpSalt = 3;
  static constexpr std::uint32_t kPrimarySalt = 16;
  static constexpr std::uint32_t kAffiliatedSalt = 64;

  /// Cheap diffusion: bijective in `v` for fixed salt, so any single-bit
  /// change of a contributing field changes the fold.
  static constexpr std::uint32_t mix(std::uint32_t v, std::uint32_t salt) {
    std::uint32_t x = v + salt * 0x9e3779b9u;
    x *= 0x85ebca6bu;
    x ^= x >> 15;
    return x;
  }

  std::uint32_t flag_ecc() const {
    return mix(pa_, kPaSalt) ^ mix(aa_, kAaSalt) ^ mix(vcp_, kVcpSalt);
  }

  std::uint32_t ecc_over_current_state() const {
    std::uint32_t e = flag_ecc();
    for (std::uint32_t i = 0; i < primary_.size(); ++i) {
      if (has_primary(i)) e ^= mix(primary_[i], kPrimarySalt + i);
      if (has_affiliated(i)) e ^= mix(affiliated_[i], kAffiliatedSalt + i);
    }
    return e;
  }

  std::uint32_t pa_ = 0;
  std::uint32_t aa_ = 0;
  std::uint32_t vcp_ = 0;
  std::uint32_t ecc_ = 0;
  std::vector<std::uint32_t> primary_;  // uncompressed primary values
  // Compressed affiliated values; 16 bits for the paper's scheme, stored in
  // 32-bit slots so the width-ablation schemes (up to 24 bits) fit too.
  std::vector<std::uint32_t> affiliated_;
};

}  // namespace cpc::core
