#pragma once
// One physical cache line of the compression cache (paper Fig. 7).
//
// A physical line can hold content from two cache lines: the *primary* line
// (the line a conventional cache would map here) and its *affiliated* line
// (line address = primary ^ mask). Per-word flags:
//
//   PA  (primary availability)   — word i of the primary line is present
//   AA  (affiliated availability)— word i of the affiliated line is present
//   VCP (value compressed, primary) — primary word i is stored compressed,
//        freeing the half-slot the affiliated word i occupies
//
// An affiliated word is necessarily compressible (it is stored in 16-bit
// form) and may only occupy slot i when the primary word there is itself
// compressed or absent. The simulator stores primary words uncompressed for
// convenience; VCP records what the hardware layout would be, which is what
// gates affiliated packing.

#include <cstdint>
#include <vector>

#include "compress/scheme.hpp"

namespace cpc::core {

class CompressedLine {
 public:
  CompressedLine() = default;
  explicit CompressedLine(std::uint32_t words_per_line)
      : primary_(words_per_line, 0), affiliated_(words_per_line, 0) {}

  bool valid = false;
  bool dirty = false;  ///< applies to primary content; affiliated copies are clean
  std::uint32_t line_addr = 0;  ///< primary line address
  std::uint64_t last_use = 0;

  std::uint32_t words_per_line() const {
    return static_cast<std::uint32_t>(primary_.size());
  }

  // --- flag accessors -------------------------------------------------
  bool has_primary(std::uint32_t i) const { return (pa_ >> i) & 1u; }
  bool has_affiliated(std::uint32_t i) const { return (aa_ >> i) & 1u; }
  bool primary_compressed(std::uint32_t i) const { return (vcp_ >> i) & 1u; }

  std::uint32_t pa_mask() const { return pa_; }
  std::uint32_t aa_mask() const { return aa_; }
  std::uint32_t vcp_mask() const { return vcp_; }

  /// True when slot i can accept an affiliated word: no affiliated word yet
  /// and the primary half-slot is free (word compressed or absent).
  bool slot_free_for_affiliated(std::uint32_t i) const {
    return !has_affiliated(i) && (!has_primary(i) || primary_compressed(i));
  }

  // --- primary content -------------------------------------------------
  std::uint32_t primary_word(std::uint32_t i) const { return primary_[i]; }

  /// Installs/overwrites primary word i with `value` stored at `addr`,
  /// recomputing VCP. Returns true when the word transitioned from
  /// compressed to uncompressed storage (the transition of section 3.3).
  bool set_primary_word(std::uint32_t i, std::uint32_t value, std::uint32_t addr,
                        const compress::Scheme& scheme) {
    const bool was_compressed = has_primary(i) && primary_compressed(i);
    primary_[i] = value;
    pa_ |= 1u << i;
    const bool now_compressed = scheme.is_compressible(value, addr);
    if (now_compressed) {
      vcp_ |= 1u << i;
    } else {
      vcp_ &= ~(1u << i);
    }
    return was_compressed && !now_compressed;
  }

  void clear_primary() {
    pa_ = 0;
    vcp_ = 0;
    dirty = false;
  }

  // --- affiliated content ----------------------------------------------
  compress::CompressedWord affiliated_word(std::uint32_t i) const {
    return compress::CompressedWord{affiliated_[i]};
  }

  void set_affiliated_word(std::uint32_t i, compress::CompressedWord cw) {
    affiliated_[i] = cw.bits;
    aa_ |= 1u << i;
  }

  void drop_affiliated_word(std::uint32_t i) { aa_ &= ~(1u << i); }
  void drop_all_affiliated() { aa_ = 0; }

 private:
  std::uint32_t pa_ = 0;
  std::uint32_t aa_ = 0;
  std::uint32_t vcp_ = 0;
  std::vector<std::uint32_t> primary_;  // uncompressed primary values
  // Compressed affiliated values; 16 bits for the paper's scheme, stored in
  // 32-bit slots so the width-ablation schemes (up to 24 bits) fit too.
  std::vector<std::uint32_t> affiliated_;
};

}  // namespace cpc::core
