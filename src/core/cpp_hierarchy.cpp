#include "core/cpp_hierarchy.hpp"

#include <array>
#include <bit>
#include <cassert>
#include <random>

#include "common/check.hpp"

namespace cpc::core {

namespace {
/// All-ones mask over `n` words (n <= 32).
constexpr std::uint32_t full_mask(std::uint32_t n) {
  return n >= 32 ? 0xffff'ffffu : (1u << n) - 1u;
}
}  // namespace

CppHierarchy::CppHierarchy(Options options)
    : options_(std::move(options)),
      l1_(options_.config.l1, options_.codec, options_.affiliation_mask,
          options_.prefetch_l1, "L1"),
      l2_(options_.config.l2, options_.codec, options_.affiliation_mask,
          options_.prefetch_l2, "L2"),
      l1_sink_(*this),
      l2_sink_(*this) {}

CppHierarchy::L2View CppHierarchy::l2_view(std::uint32_t l2_line) const {
  L2View view;
  if (const CompressedLine* p = l2_.find_primary(l2_line)) {
    view.primary = p;
    view.avail = p->pa_mask();
    return view;
  }
  if (const CompressedLine* h = l2_.find_affiliated_host(l2_line)) {
    view.aff_host = h;
    view.avail = h->aa_mask();
  }
  return view;
}

std::uint32_t CppHierarchy::l2_view_word(const L2View& view, std::uint32_t l2_line,
                                         std::uint32_t i) const {
  assert((view.avail >> i) & 1u);
  if (view.primary != nullptr) return view.primary->primary_word(i);
  return options_.codec.decompress(view.aff_host->affiliated_word(i),
                                    l2_.word_addr(l2_line, i));
}

CppHierarchy::L2View CppHierarchy::ensure_l2_word(std::uint32_t addr,
                                                  cache::AccessResult& result) {
  const std::uint32_t q = options_.config.l2.line_of(addr);
  const std::uint32_t wq = options_.config.l2.word_of(addr);
  const std::uint32_t n2 = options_.config.l2.words_per_line();

  if (CompressedLine* p = l2_.find_primary(q); p && p->has_primary(wq)) {
    l2_.touch(*p);
    result.served_by = cache::ServedBy::kL2;
    result.latency = options_.config.latency.l2_hit;
    return l2_view(q);
  }
  if (CompressedLine* h = l2_.find_affiliated_host(q); h && h->has_affiliated(wq)) {
    l2_.touch(*h);
    ++stats_.l2_affiliated_hits;
    result.served_by = cache::ServedBy::kL2Affiliated;
    result.latency = options_.config.latency.l2_hit + options_.config.latency.affiliated_extra;
    return l2_view(q);
  }

  // L2 miss: fetch the full primary line from memory. The bus transfer costs
  // exactly one uncompressed L2 line; the affiliated line's compressible
  // words travel in the compression slack for free (section 3.3).
  result.l2_miss = true;
  result.served_by = cache::ServedBy::kMemory;
  result.latency = options_.config.latency.memory;
  if (delay_armed_) {
    // Armed kDelayFill: the fill completes late but completely. Purely a
    // timing fault — the campaign classifies it as timing-only.
    result.latency += delay_cycles_;
    delay_armed_ = false;
    ++faults_fired_;
  }
  ++stats_.l2_misses;
  ++stats_.mem_fetch_lines;

  IncomingLine in;
  in.line_addr = q;
  in.words.assign(n2, 0);
  in.aff_words.assign(n2, 0);
  in.present = full_mask(n2);
  const std::uint32_t base = options_.config.l2.base_of_line(q);
  memory_.read_words(base, n2, in.words.data());
  stats_.traffic.add_uncompressed_words(n2);

  if (options_.prefetch_l2) {
    const std::uint32_t buddy = l2_.buddy_of(q);
    std::array<std::uint32_t, 32> aff{};
    memory_.read_words(options_.config.l2.base_of_line(buddy), n2, aff.data());
    for (std::uint32_t i = 0; i < n2; ++i) {
      // A half-slot frees up only where the primary word is compressible.
      if (!options_.codec.is_compressible(in.words[i], l2_.word_addr(q, i))) continue;
      const std::uint32_t aff_addr = l2_.word_addr(buddy, i);
      const auto cw = options_.codec.compress(aff[i], aff_addr);
      if (!cw) continue;
      in.aff_present |= 1u << i;
      in.aff_words[i] = cw->bits;
    }
  }
  l2_.install(in, l2_sink_);
  return l2_view(q);
}

IncomingLine CppHierarchy::l2_request_word(std::uint32_t addr,
                                           cache::AccessResult& result) {
  const L2View view = ensure_l2_word(addr, result);
  const std::uint32_t q = options_.config.l2.line_of(addr);
  const std::uint32_t l1_line = options_.config.l1.line_of(addr);
  const std::uint32_t n1 = options_.config.l1.words_per_line();
  // Word offset of the L1 half-line within the L2 line.
  const std::uint32_t offset =
      options_.config.l2.word_of(options_.config.l1.base_of_line(l1_line));

  IncomingLine resp;
  resp.line_addr = l1_line;
  resp.words.assign(n1, 0);
  resp.aff_words.assign(n1, 0);
  for (std::uint32_t i = 0; i < n1; ++i) {
    const std::uint32_t qi = offset + i;
    if ((view.avail >> qi) & 1u) {
      resp.words[i] = l2_view_word(view, q, qi);
      resp.present |= 1u << i;
    }
  }
  assert((resp.present >> options_.config.l1.word_of(addr)) & 1u);
  // The response must carry every word the L2 view makes available to this
  // half-line window — the fill-path completeness check the hardware would
  // do against the response's word-valid vector.
  const std::uint32_t expected = resp.present;

  if (drop_armed_) {
    // Armed kDropResponseWord: lose one non-demanded word of the response in
    // flight. If the response carries only the demanded word, the fault
    // stays armed for the next wider response.
    const std::uint32_t demanded = options_.config.l1.word_of(addr);
    std::uint32_t candidates = resp.present & ~(1u << demanded);
    if (candidates != 0) {
      std::mt19937_64 rng(drop_seed_);
      std::uint32_t pick = static_cast<std::uint32_t>(rng() % std::popcount(candidates));
      std::uint32_t bit = 0;
      for (std::uint32_t i = 0; i < n1; ++i) {
        if (!((candidates >> i) & 1u)) continue;
        if (pick-- == 0) {
          bit = i;
          break;
        }
      }
      resp.present &= ~(1u << bit);
      drop_armed_ = false;
      ++faults_fired_;
    }
  }

  check_diag(resp.present == expected, [&] {
    return Diagnostic{Invariant::kResponseIncomplete, name() + "::l2_response",
                      stats_.accesses(), l1_line,
                      "partial-line response is missing words the L2 view holds"};
  });

  if (options_.prefetch_l1) {
    // Pack the compressible words of the L1 affiliated line. With the
    // paper's mask (0x1) this is the other half of the same L2 line; with
    // ablation masks it may live in a different L2 line — pack only if that
    // line is resident (no extra traffic is ever spent on prefetching).
    const std::uint32_t aff_line = l1_.buddy_of(l1_line);
    const std::uint32_t aff_q = options_.config.l2.line_of(
        options_.config.l1.base_of_line(aff_line));
    const L2View aff_view = aff_q == q ? view : l2_view(aff_q);
    if (aff_view.resident()) {
      const std::uint32_t aff_offset =
          options_.config.l2.word_of(options_.config.l1.base_of_line(aff_line));
      for (std::uint32_t i = 0; i < n1; ++i) {
        const std::uint32_t qa = aff_offset + i;
        if (!((aff_view.avail >> qa) & 1u)) continue;
        // Pairing rule (section 3.3): an affiliated word travels only when
        // it is compressible and the corresponding primary word leaves the
        // half-slot free (compressible or absent).
        if ((resp.present >> i) & 1u) {
          if (!options_.codec.is_compressible(resp.words[i], l1_.word_addr(l1_line, i))) {
            continue;
          }
        }
        const std::uint32_t aff_addr = l1_.word_addr(aff_line, i);
        const auto cw =
            options_.codec.compress(l2_view_word(aff_view, aff_q, qa), aff_addr);
        if (!cw) continue;
        resp.aff_present |= 1u << i;
        resp.aff_words[i] = cw->bits;
      }
    }
  }
  return resp;
}

void CppHierarchy::accept_l1_writeback(std::uint32_t l1_line, std::uint32_t mask,
                                       std::span<const std::uint32_t> words) {
  ++stats_.l1_writebacks;
  const std::uint32_t base = options_.config.l1.base_of_line(l1_line);
  const std::uint32_t q = options_.config.l2.line_of(base);
  const std::uint32_t offset = options_.config.l2.word_of(base);
  const std::uint32_t n1 = options_.config.l1.words_per_line();

  CompressedLine* line = l2_.find_primary(q);
  if (line == nullptr) {
    // The line may exist as a clean prefetched affiliated copy. If the copy
    // plus the written-back words cover the whole line, promoting costs no
    // more than the write-allocate fill a conventional L2 performs — and
    // saves the memory write-back. A *sparse* copy is dropped instead:
    // promoting it would evict a (typically full, hot) primary line to make
    // room for mostly-absent data, which measurably hurts low-
    // compressibility programs.
    if (CompressedLine* host = l2_.find_affiliated_host(q)) {
      const std::uint32_t n2 = options_.config.l2.words_per_line();
      const std::uint32_t coverage = host->aa_mask() | (mask << offset);
      if (coverage == full_mask(n2)) {
        line = &l2_.promote(q, l2_sink_);
        ++stats_.partial_promotions;
      } else {
        // Audited drop: a plain drop_all_affiliated() would reset the line
        // ECC and launder any strike on the outgoing copy.
        l2_.drop_affiliated_copy(*host);
      }
    }
  }
  if (line != nullptr) {
    // Merge without touching LRU state: a write-back is not a demand
    // reference (matches the baseline hierarchy's behaviour).
    for (std::uint32_t i = 0; i < n1; ++i) {
      if ((mask >> i) & 1u) l2_.write_primary_word(*line, offset + i, words[i]);
    }
    return;
  }
  // Not resident at L2: non-allocating write-back straight to memory,
  // transferred in compressed form.
  ++stats_.mem_writebacks;
  write_back_words(base, n1, mask, words);
}

void CppHierarchy::writeback_to_memory(std::uint32_t l2_line, std::uint32_t mask,
                                       std::span<const std::uint32_t> words) {
  ++stats_.mem_writebacks;
  write_back_words(options_.config.l2.base_of_line(l2_line),
                   options_.config.l2.words_per_line(), mask, words);
}

void CppHierarchy::write_back_words(std::uint32_t base, std::uint32_t n,
                                    std::uint32_t mask,
                                    std::span<const std::uint32_t> words) {
  if (mask == 0) return;
  memory_.write_words(base, n, mask, words.data());
  // Classify the line in one branch-free pass; masked-out lanes are computed
  // and discarded, which is cheaper than a test per word.
  const std::uint32_t compressible =
      options_.codec.classify_words(words.data(), n, base).compressible() & mask;
  const auto nc = static_cast<std::uint32_t>(std::popcount(compressible));
  stats_.traffic.add_writeback_compressed_words(nc);
  stats_.traffic.add_writeback_uncompressed_words(
      static_cast<std::uint32_t>(std::popcount(mask)) - nc);
}

CompressedLine& CppHierarchy::fill_l1_line(std::uint32_t addr,
                                           cache::AccessResult& result) {
  const IncomingLine resp = l2_request_word(addr, result);
  CompressedLine& line = l1_.install(resp, l1_sink_);
  assert(line.has_primary(options_.config.l1.word_of(addr)));
  return line;
}

cache::AccessResult CppHierarchy::read(std::uint32_t addr, std::uint32_t& value) {
  ++stats_.reads;
  cache::AccessResult result;
  const std::uint32_t l1_line = options_.config.l1.line_of(addr);
  const std::uint32_t w = options_.config.l1.word_of(addr);

  if (CompressedLine* p = l1_.find_primary(l1_line); p && p->has_primary(w)) {
    l1_.touch(*p);
    value = p->primary_word(w);
    result.latency = options_.config.latency.l1_hit;
    result.served_by = cache::ServedBy::kL1;
    return result;
  }
  if (CompressedLine* h = l1_.find_affiliated_host(l1_line); h && h->has_affiliated(w)) {
    // Affiliated hit: data returns one cycle later; reads do not promote.
    l1_.touch(*h);
    value = options_.codec.decompress(h->affiliated_word(w), addr & ~3u);
    ++stats_.l1_affiliated_hits;
    result.latency = options_.config.latency.l1_hit + options_.config.latency.affiliated_extra;
    result.served_by = cache::ServedBy::kL1Affiliated;
    return result;
  }

  result.l1_miss = true;
  ++stats_.l1_misses;
  CompressedLine& line = fill_l1_line(addr, result);
  value = line.primary_word(w);
  return result;
}

cache::AccessResult CppHierarchy::write(std::uint32_t addr, std::uint32_t value) {
  ++stats_.writes;
  cache::AccessResult result;
  const std::uint32_t l1_line = options_.config.l1.line_of(addr);
  const std::uint32_t w = options_.config.l1.word_of(addr);

  if (CompressedLine* p = l1_.find_primary(l1_line)) {
    // Hit, or write-validate of a missing word in a resident partial line
    // (the per-word PA bits make the merge unambiguous).
    l1_.touch(*p);
    l1_.write_primary_word(*p, w, value);
    result.latency = options_.config.latency.l1_hit;
    result.served_by = cache::ServedBy::kL1;
    return result;
  }
  if (CompressedLine* h = l1_.find_affiliated_host(l1_line); h && h->has_affiliated(w)) {
    // Write hit in the affiliated place: bring the line to its primary
    // place, then update (section 3.3). Handles the incompressible-value
    // case too — write_primary_word re-derives VCP.
    CompressedLine& promoted = l1_.promote(l1_line, l1_sink_);
    ++stats_.partial_promotions;
    l1_.write_primary_word(promoted, w, value);
    result.latency = options_.config.latency.l1_hit + options_.config.latency.affiliated_extra;
    result.served_by = cache::ServedBy::kL1Affiliated;
    return result;
  }

  // Write miss: word-based fetch, then update (write-allocate).
  result.l1_miss = true;
  ++stats_.l1_misses;
  CompressedLine& line = fill_l1_line(addr, result);
  l1_.write_primary_word(line, w, value);
  return result;
}

bool CppHierarchy::inject_fault(const verify::FaultCommand& command) {
  switch (command.kind) {
    case verify::FaultKind::kDropResponseWord:
      drop_armed_ = true;
      drop_seed_ = command.seed;
      return true;
    case verify::FaultKind::kDelayFill:
      delay_armed_ = true;
      delay_cycles_ = command.delay_cycles;
      return true;
    case verify::FaultKind::kPayloadBit:
    case verify::FaultKind::kPayloadBitSilent:
    case verify::FaultKind::kPaFlag:
    case verify::FaultKind::kAaFlag:
    case verify::FaultKind::kVcpFlag:
      return (command.level == 2 ? l2_ : l1_).strike_random(command);
  }
  return false;  // unreachable: the switch above is exhaustive
}

void CppHierarchy::validate() const {
  l1_.validate();
  l2_.validate();
  // Paper section 3.3 fetch accounting: every L2 miss moves exactly one
  // uncompressed L2 line over the bus (the affiliated words ride in the
  // compression slack for free), so fetch traffic is a pure function of the
  // miss count. A divergence means a counter or the metering is corrupted.
  const std::uint64_t n2 = options_.config.l2.words_per_line();
  check_diag(
      stats_.traffic.fetch_half_units() == 2 * n2 * stats_.mem_fetch_lines, [&] {
        return Diagnostic{Invariant::kTrafficMismatch, name() + "::validate",
                          stats_.accesses(), 0,
                          "fetch traffic (" +
                              std::to_string(stats_.traffic.fetch_half_units()) +
                              " half-units) disagrees with " +
                              std::to_string(stats_.mem_fetch_lines) +
                              " line fetches of " + std::to_string(n2) + " words"};
      });
}

}  // namespace cpc::core
