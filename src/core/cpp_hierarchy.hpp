#pragma once
// CPP: the paper's compression-enabled partial-cache-line-prefetching
// hierarchy (sections 3.1–3.3).
//
//  * CPU ↔ L1: both the primary and the affiliated location are probed; an
//    affiliated hit costs one extra cycle; a write hit in the affiliated
//    location promotes the line to its primary place.
//  * L1 ↔ L2: requests are word-based; an L2 hit returns the available words
//    of the enclosing L1-sized half-line plus the compressible words of the
//    other half (the L1 affiliated line — both halves share one L2 line).
//  * L2 ↔ memory: a miss fetches the full L2 line (full line bandwidth) and
//    the compressible words of the L2 affiliated line ride along in the
//    compression slack, so the bus cost equals one uncompressed line.
//
// Dirty evictions write back through the levels; a written-back line may
// leave a clean partial copy in its affiliated place (demotion).

#include <cstdint>
#include <string>

#include "cache/config.hpp"
#include "cache/hierarchy.hpp"
#include "compress/codec.hpp"
#include "core/cpp_cache.hpp"
#include "mem/sparse_memory.hpp"

namespace cpc::core {

class CppHierarchy : public cache::MemoryHierarchy {
 public:
  struct Options {
    cache::HierarchyConfig config = cache::kBaselineConfig;
    compress::Codec codec = compress::kPaperCodec;
    std::uint32_t affiliation_mask = cache::kAffiliationMask;
    bool prefetch_l1 = true;  ///< pack affiliated words at the L1 level
    bool prefetch_l2 = true;  ///< pack affiliated words at the L2 level
    std::string name = "CPP";
  };

  CppHierarchy() : CppHierarchy(Options{}) {}
  explicit CppHierarchy(Options options);

  cache::AccessResult read(std::uint32_t addr, std::uint32_t& value) override;
  cache::AccessResult write(std::uint32_t addr, std::uint32_t value) override;
  std::string name() const override { return options_.name; }
  void validate() const override;

  /// Strike faults land immediately in the addressed level; drop/delay
  /// faults arm a one-shot trigger consumed by the next qualifying
  /// response/fill. Returns false when a strike found no resident target.
  bool inject_fault(const verify::FaultCommand& command) override;

  /// Number of armed drop/delay faults that have actually fired.
  std::uint64_t faults_fired() const { return faults_fired_; }

  const CppCache& l1() const { return l1_; }
  const CppCache& l2() const { return l2_; }
  mem::SparseMemory& memory() { return memory_; }
  const Options& options() const { return options_; }

 private:
  // Write-back sinks connecting the levels.
  class L1Sink final : public WritebackSink {
   public:
    explicit L1Sink(CppHierarchy& h) : h_(h) {}
    void writeback(std::uint32_t line_addr, std::uint32_t mask,
                   std::span<const std::uint32_t> words) override {
      h_.accept_l1_writeback(line_addr, mask, words);
    }

   private:
    CppHierarchy& h_;
  };
  class L2Sink final : public WritebackSink {
   public:
    explicit L2Sink(CppHierarchy& h) : h_(h) {}
    void writeback(std::uint32_t line_addr, std::uint32_t mask,
                   std::span<const std::uint32_t> words) override {
      h_.writeback_to_memory(line_addr, mask, words);
    }

   private:
    CppHierarchy& h_;
  };

  /// Word-availability view of one L2 line (primary or affiliated copy).
  struct L2View {
    const CompressedLine* primary = nullptr;
    const CompressedLine* aff_host = nullptr;  // buddy line hosting the copy
    std::uint32_t avail = 0;
    bool resident() const { return primary != nullptr || aff_host != nullptr; }
  };
  L2View l2_view(std::uint32_t l2_line) const;
  std::uint32_t l2_view_word(const L2View& view, std::uint32_t l2_line,
                             std::uint32_t i) const;

  /// Serves a word-based request from L1: ensures the word is available at
  /// the L2 level (fetching from memory on a miss) and builds the partial
  /// L1 line response. Sets latency / miss flags in `result`.
  IncomingLine l2_request_word(std::uint32_t addr, cache::AccessResult& result);

  /// Ensures the word at `addr` is available in L2; returns its view.
  L2View ensure_l2_word(std::uint32_t addr, cache::AccessResult& result);

  void accept_l1_writeback(std::uint32_t l1_line, std::uint32_t mask,
                           std::span<const std::uint32_t> words);
  void writeback_to_memory(std::uint32_t l2_line, std::uint32_t mask,
                           std::span<const std::uint32_t> words);

  /// Writes the masked words of a line image (based at `base`, `n` words
  /// long) to memory and meters them as write-back traffic, classifying the
  /// whole line in one batched pass instead of a branch per word.
  void write_back_words(std::uint32_t base, std::uint32_t n, std::uint32_t mask,
                        std::span<const std::uint32_t> words);

  /// Ensures the L1 line containing `addr` is primary resident with the
  /// requested word present; used by both the read and the write miss paths.
  CompressedLine& fill_l1_line(std::uint32_t addr, cache::AccessResult& result);

  Options options_;
  CppCache l1_;
  CppCache l2_;
  mem::SparseMemory memory_;
  L1Sink l1_sink_;
  L2Sink l2_sink_;

  // One-shot armed faults (kDropResponseWord / kDelayFill).
  bool drop_armed_ = false;
  std::uint64_t drop_seed_ = 0;
  bool delay_armed_ = false;
  unsigned delay_cycles_ = 0;
  std::uint64_t faults_fired_ = 0;
};

}  // namespace cpc::core
