#pragma once
// SweepRunner — the parallel batching layer every figure/ablation harness
// and `cpc_run --sweep` executes through. A fixed-size std::thread pool
// drains a job vector; each job simulates on its own hierarchy/core
// instances (isolated counters), and results are delivered in job-index
// order, so an N-thread sweep is bit-identical to the serial run.
//
// Thread count resolution, in priority order:
//   explicit constructor argument > CPC_JOBS env var > hardware_concurrency.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/mutex.hpp"
#include "cpu/micro_op.hpp"
#include "sim/job.hpp"
#include "workload/workloads.hpp"

namespace cpc::sim {

/// Thread count from the CPC_JOBS environment variable when it parses to a
/// positive integer, otherwise std::thread::hardware_concurrency (min 1).
unsigned default_job_count();

/// Deduplicates trace generation across the jobs of one sweep: jobs sharing
/// a (workload, ops, seed) key block on one generation instead of each
/// regenerating the trace. Thread-safe.
///
/// Memory is bounded (ZipCache-style tiered store): decoded traces live
/// in an LRU tier charged at 16 bytes/op; when the byte budget overflows,
/// the least-recently-used decoded trace is demoted to a compact
/// delta-varint blob (sim/trace_codec.hpp) and decoded on demand at its
/// next hit; if the budget still overflows, whole LRU blobs are dropped and
/// their traces regenerate from the workload on the next request. The
/// budget comes from CPC_TRACE_CACHE_MB (default 512 MiB; 0 = unbounded,
/// which also skips the compression pass entirely).
///
/// An optional third tier spills the compressed blobs to disk before they
/// are dropped (CPC_TRACE_SPILL_DIR; size-capped via CPC_TRACE_SPILL_MB):
/// a spilled blob reloads CRC-verified instead of regenerating, so a
/// long-lived daemon degrades to disk reads instead of recompute-thrash. A
/// spill file that fails verification is quarantined (renamed aside), never
/// trusted. The directory may be shared by the forked workers of one
/// sharded sweep — files are written via atomic rename and every reader
/// verifies, so a racing delete is just a miss.
class TraceCache {
 public:
  /// Counters a sweep reports (RunReport::trace_cache). Byte fields are the
  /// tiers' footprints when the snapshot was taken, not cumulative totals.
  struct Stats {
    std::uint64_t hits = 0;             ///< served from the decoded tier
    std::uint64_t compressed_hits = 0;  ///< decoded on demand from tier 2
    std::uint64_t misses = 0;           ///< full workload generation
    std::uint64_t evictions = 0;        ///< decoded → compressed demotions
    std::uint64_t compressed_evictions = 0;  ///< entries dropped entirely
    std::uint64_t decoded_bytes = 0;
    std::uint64_t compressed_bytes = 0;
    std::uint64_t spill_writes = 0;  ///< blobs written to the disk tier
    std::uint64_t spill_hits = 0;    ///< blobs reloaded instead of regenerated
    std::uint64_t spill_bytes = 0;   ///< disk-tier footprint (gauge, not sum)
    std::uint64_t spill_drops = 0;   ///< blobs evicted from disk (or too big)
    std::uint64_t spill_quarantined = 0;  ///< corrupt files renamed aside

    /// Accumulates `other` (sharded sweeps sum their workers' stats).
    /// `spill_bytes` is the exception: caches sharing a spill dir all see
    /// the same directory, so merge takes the max instead of summing.
    void merge(const Stats& other);
  };

  /// Disk spill tier shape; an empty `dir` disables the tier.
  struct SpillConfig {
    std::string dir;
    std::uint64_t capacity_bytes = 0;  ///< 0 = uncapped directory
  };

  /// Budget from CPC_TRACE_CACHE_MB: a parseable value is MiB (0 disables
  /// the bound), anything else falls back to the 512 MiB default.
  static std::uint64_t capacity_from_env();

  /// Spill tier from CPC_TRACE_SPILL_DIR (unset/empty = no spill tier) and
  /// CPC_TRACE_SPILL_MB (unset/unparseable = uncapped).
  static SpillConfig spill_from_env();

  TraceCache();  ///< capacity_from_env() + spill_from_env()
  explicit TraceCache(std::uint64_t capacity_bytes);
  TraceCache(std::uint64_t capacity_bytes, SpillConfig spill);
  /// Flushes surviving compressed blobs to the spill tier (when one is
  /// configured) so the next cache instance reloads instead of regenerating.
  ~TraceCache();

  std::shared_ptr<const cpu::Trace> get(const workload::Workload& workload,
                                        std::uint64_t trace_ops,
                                        std::uint64_t seed);

  Stats stats() const;
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry;
  /// One file of the disk tier this instance knows about.
  struct SpillFile {
    std::uint64_t key_hash = 0;
    std::uint64_t seq = 0;  ///< write order; lowest-seq files evict first
    std::uint64_t bytes = 0;
    std::string path;
  };

  Entry* find_locked(const workload::Workload& workload,
                     std::uint64_t trace_ops, std::uint64_t seed)
      CPC_REQUIRES(mutex_);
  /// Demotes/drops LRU entries until the two tiers fit the budget; dropped
  /// blobs are offered to the disk tier first.
  void enforce_budget_locked() CPC_REQUIRES(mutex_);
  /// Rebuilds the disk-tier index from the directory (constructor).
  void scan_spill_dir();
  /// Writes one blob to the disk tier (atomic rename), evicting oldest
  /// files past the cap. No-op when the key is already on disk.
  void spill_store_locked(std::uint64_t key_hash,
                          const std::vector<std::uint8_t>& blob)
      CPC_REQUIRES(mutex_);
  /// Index lookup (path copy out so the file read happens unlocked).
  bool spill_lookup_locked(std::uint64_t key_hash, std::string& path)
      CPC_REQUIRES(mutex_);
  /// Verifies + decompresses a spill file read outside the lock; on any
  /// mismatch quarantines it (rename to `.quarantined`) and returns null.
  std::shared_ptr<const std::vector<std::uint8_t>> spill_load(
      std::uint64_t key_hash, const std::string& path);
  /// Drops `path` from the index (racing delete / quarantine).
  void spill_forget_locked(const std::string& path) CPC_REQUIRES(mutex_);

  const std::uint64_t capacity_bytes_;
  const SpillConfig spill_;
  mutable Mutex mutex_;
  std::uint64_t tick_ CPC_GUARDED_BY(mutex_) = 0;  ///< LRU clock
  std::uint64_t spill_seq_ CPC_GUARDED_BY(mutex_) = 0;
  Stats stats_ CPC_GUARDED_BY(mutex_);
  /// Keyed dedup table. Only the table itself is guarded: each Entry's
  /// shared_future is internally synchronized, so waiting on a generation
  /// in flight happens outside the lock.
  std::vector<std::unique_ptr<Entry>> entries_ CPC_GUARDED_BY(mutex_);
  std::vector<SpillFile> spill_index_ CPC_GUARDED_BY(mutex_);
};

/// One failed job of a contained sweep (SweepRunner::run_contained).
///
/// The primary fields report the FIRST failing attempt — the root cause.
/// A job that trips the watchdog and then fails its retry differently must
/// not have the original cause overwritten by the retry's error; the full
/// per-attempt record lives in `history`.
struct JobFailure {
  /// One failing attempt of this job, in attempt order.
  struct Attempt {
    std::string what;
    bool timed_out = false;  ///< the watchdog cancelled this attempt
    /// Set when this attempt died on an InvariantViolation.
    std::optional<Diagnostic> diagnostic;
  };

  std::size_t index = 0;
  std::string tag;
  std::string what;  ///< first failing attempt's exception text (root cause)
  /// Set when the first failing attempt was an InvariantViolation
  /// (structured identity of the tripped invariant).
  std::optional<Diagnostic> diagnostic;
  bool timed_out = false;  ///< the watchdog cancelled the first attempt
  unsigned attempts = 1;   ///< total attempts consumed (1 + retries used)
  std::vector<Attempt> history;  ///< every failing attempt, in order
};

/// Policy knobs for run_contained.
struct RunOptions {
  bool quiet = false;
  /// Extra attempts per failing job before it is recorded as failed.
  unsigned retries = 0;
  /// Wall-clock budget per job attempt, in milliseconds; 0 disables the
  /// watchdog. The watchdog raises the job's cooperative cancel flag — the
  /// simulation throws SimulationCancelled at its next poll; no thread is
  /// ever killed.
  std::uint64_t job_timeout_ms = 0;
  /// Checkpoint/resume journal path; empty disables journaling. A journal
  /// written by the same grid restores completed jobs (null hierarchy) and
  /// re-runs the rest.
  std::string journal_path;
  /// Streaming hooks for incremental consumers (the cpc_serve daemon):
  /// invoked once per job as it settles, in completion order, with calls
  /// serialized (never concurrently). on_result also fires for
  /// journal-restored jobs, so a resumed consumer still sees every result.
  /// Sharded runs invoke these in the supervisor process only. Empty =
  /// disabled.
  std::function<void(const JobResult&)> on_result;
  std::function<void(const JobFailure&)> on_failure;
  /// Cooperative sweep-level cancel (a disconnected client's orphaned
  /// submission): when non-null and set, jobs not yet started are recorded
  /// as "sweep cancelled" failures, the running job's cooperative cancel
  /// flag is raised (in-process) or its worker killed (sharded), and the
  /// sweep returns early. Completed results stay valid and journaled.
  const std::atomic<bool>* cancel = nullptr;

  /// Reads CPC_JOB_TIMEOUT_MS (and nothing else) on top of the defaults.
  static RunOptions from_env();
};

/// Outcome of a contained sweep: one result slot per job (failed slots keep
/// `ok == false`), plus the failure list in job-index order.
struct RunReport {
  std::vector<JobResult> results;
  std::vector<JobFailure> failures;
  std::size_t resumed = 0;  ///< jobs restored from the journal, not re-run
  /// Trace-cache behaviour of the sweep (sharded runs sum their workers').
  TraceCache::Stats trace_cache;
  /// Worker respawns a sharded run consumed (0 for in-process sweeps).
  unsigned worker_restarts = 0;
  /// Largest worker-process maxrss a sharded run observed over the ipc
  /// channel (0 for in-process sweeps).
  std::uint64_t worker_rss_peak_bytes = 0;
  bool all_ok() const { return failures.empty(); }
};

class SweepRunner {
 public:
  /// `threads` = 0 resolves via default_job_count().
  explicit SweepRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Runs `fn(0) .. fn(count - 1)` across the pool. Each index is executed
  /// exactly once; `fn` must only write state owned by its index. If any
  /// invocation throws, the exception thrown by the lowest index is
  /// rethrown here after all workers have drained (later jobs may be
  /// skipped once a failure is recorded).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) const;

  /// Executes every job and returns results in job-index order, regardless
  /// of thread count or completion order. Traces are generated at most once
  /// per (workload, ops, seed) via an internal TraceCache. Progress lines go
  /// to stderr unless `quiet` is set.
  std::vector<JobResult> run(std::vector<Job> jobs, bool quiet = false) const;

  /// Fault-contained variant of run(): a throwing job is recorded as a
  /// JobFailure (optionally after per-job retries) and the sweep continues;
  /// a watchdog cancels attempts exceeding the per-job wall-clock budget;
  /// completed jobs are checkpointed to the journal so a killed sweep
  /// resumes where it left off. Unlike run(), never throws for job errors.
  RunReport run_contained(std::vector<Job> jobs,
                          const RunOptions& options = {}) const;

  /// Process-sharded variant of run_contained(): the grid is partitioned
  /// across forked worker processes supervised for crashes, hangs and OOM
  /// kills (sim/shard_supervisor.hpp — defined there, next to the
  /// supervisor it delegates to). Merged output is bit-identical to the
  /// serial run; falls back to run_contained when process isolation is
  /// unavailable or one process is requested.
  RunReport run_sharded(std::vector<Job> jobs,
                        const struct ShardOptions& options) const;

 private:
  unsigned threads_;
};

}  // namespace cpc::sim
