#pragma once
// SweepRunner — the parallel batching layer every figure/ablation harness
// and `cpc_run --sweep` executes through. A fixed-size std::thread pool
// drains a job vector; each job simulates on its own hierarchy/core
// instances (isolated counters), and results are delivered in job-index
// order, so an N-thread sweep is bit-identical to the serial run.
//
// Thread count resolution, in priority order:
//   explicit constructor argument > CPC_JOBS env var > hardware_concurrency.

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cpu/micro_op.hpp"
#include "sim/job.hpp"
#include "workload/workloads.hpp"

namespace cpc::sim {

/// Thread count from the CPC_JOBS environment variable when it parses to a
/// positive integer, otherwise std::thread::hardware_concurrency (min 1).
unsigned default_job_count();

/// Deduplicates trace generation across the jobs of one sweep: jobs sharing
/// a (workload, ops, seed) key block on one generation instead of each
/// regenerating the trace. Thread-safe.
class TraceCache {
 public:
  TraceCache();
  ~TraceCache();  // out-of-line: Entry is incomplete here

  std::shared_ptr<const cpu::Trace> get(const workload::Workload& workload,
                                        std::uint64_t trace_ops,
                                        std::uint64_t seed);

 private:
  struct Entry;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

class SweepRunner {
 public:
  /// `threads` = 0 resolves via default_job_count().
  explicit SweepRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Runs `fn(0) .. fn(count - 1)` across the pool. Each index is executed
  /// exactly once; `fn` must only write state owned by its index. If any
  /// invocation throws, the exception thrown by the lowest index is
  /// rethrown here after all workers have drained (later jobs may be
  /// skipped once a failure is recorded).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) const;

  /// Executes every job and returns results in job-index order, regardless
  /// of thread count or completion order. Traces are generated at most once
  /// per (workload, ops, seed) via an internal TraceCache. Progress lines go
  /// to stderr unless `quiet` is set.
  std::vector<JobResult> run(std::vector<Job> jobs, bool quiet = false) const;

 private:
  unsigned threads_;
};

}  // namespace cpc::sim
