#include "sim/trace_codec.hpp"

#include <cstring>

#include "common/check.hpp"

namespace cpc::sim::trace_codec {

namespace {

// Header byte layout. The low nibble holds the OpKind (9 enumerators fit
// with room to spare); kRawEscape marks an op stored as its raw 16 bytes —
// taken when the flags field carries bits this codec does not model, so a
// future MicroOp flag can never be silently dropped.
constexpr std::uint8_t kKindMask = 0x0f;
constexpr std::uint8_t kRawEscape = 0x0f;
constexpr std::uint8_t kBitTaken = 0x10;
constexpr std::uint8_t kBitDep1 = 0x20;
constexpr std::uint8_t kBitDep2 = 0x40;
constexpr std::uint8_t kBitValue = 0x80;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint32_t zigzag(std::uint32_t delta) {
  const auto s = static_cast<std::int32_t>(delta);
  return (static_cast<std::uint32_t>(s) << 1) ^
         static_cast<std::uint32_t>(s >> 31);
}

std::uint32_t unzigzag(std::uint32_t z) {
  return (z >> 1) ^ (~(z & 1u) + 1u);
}

/// Blob cursor with hard bounds checks; every read validates before
/// touching memory.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  std::uint8_t byte() {
    CPC_CHECK(pos < size, "trace codec: truncated blob (header byte)");
    return data[pos++];
  }

  std::uint64_t varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      CPC_CHECK(pos < size && shift < 64,
                "trace codec: truncated or overlong varint");
      const std::uint8_t b = data[pos++];
      value |= static_cast<std::uint64_t>(b & 0x7fu) << shift;
      if ((b & 0x80u) == 0) return value;
      shift += 7;
    }
  }

  void raw(void* out, std::size_t n) {
    CPC_CHECK(pos + n <= size, "trace codec: truncated raw escape");
    std::memcpy(out, data + pos, n);
    pos += n;
  }
};

}  // namespace

std::vector<std::uint8_t> compress(const cpu::Trace& trace) {
  std::vector<std::uint8_t> out;
  out.reserve(trace.size() * 5 + 10);  // typical: ~4-5 bytes/op
  put_varint(out, trace.size());
  std::uint32_t prev_pc = 0;
  std::uint32_t prev_addr = 0;
  for (const cpu::MicroOp& op : trace) {
    const std::uint8_t extra_flags =
        static_cast<std::uint8_t>(op.flags & ~cpu::MicroOp::kFlagTaken);
    if (extra_flags != 0 ||
        static_cast<std::uint8_t>(op.kind) >= kRawEscape) {
      out.push_back(kRawEscape);
      const std::size_t at = out.size();
      out.resize(at + sizeof(cpu::MicroOp));
      std::memcpy(out.data() + at, &op, sizeof(cpu::MicroOp));
    } else {
      std::uint8_t header = static_cast<std::uint8_t>(op.kind);
      if ((op.flags & cpu::MicroOp::kFlagTaken) != 0) header |= kBitTaken;
      if (op.dep1 != 0) header |= kBitDep1;
      if (op.dep2 != 0) header |= kBitDep2;
      if (op.value != 0) header |= kBitValue;
      out.push_back(header);
      put_varint(out, zigzag(op.pc - prev_pc));
      put_varint(out, zigzag(op.addr - prev_addr));
      if (op.value != 0) put_varint(out, op.value);
      if (op.dep1 != 0) out.push_back(op.dep1);
      if (op.dep2 != 0) out.push_back(op.dep2);
    }
    prev_pc = op.pc;
    prev_addr = op.addr;
  }
  out.shrink_to_fit();
  return out;
}

cpu::Trace decompress(const std::vector<std::uint8_t>& blob) {
  Reader in{blob.data(), blob.size()};
  const std::uint64_t count = in.varint();
  // A count implying more bytes than the blob could possibly hold (one
  // header byte minimum per op) is corruption, not a big trace.
  CPC_CHECK(count <= blob.size(),
            "trace codec: op count exceeds blob capacity");
  cpu::Trace trace;
  trace.reserve(count);
  std::uint32_t prev_pc = 0;
  std::uint32_t prev_addr = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t header = in.byte();
    cpu::MicroOp op;
    if ((header & kKindMask) == kRawEscape) {
      in.raw(&op, sizeof(cpu::MicroOp));
    } else {
      op.kind = static_cast<cpu::OpKind>(header & kKindMask);
      op.flags = (header & kBitTaken) != 0 ? cpu::MicroOp::kFlagTaken
                                           : std::uint8_t{0};
      op.pc = prev_pc + unzigzag(static_cast<std::uint32_t>(in.varint()));
      op.addr = prev_addr + unzigzag(static_cast<std::uint32_t>(in.varint()));
      op.value = (header & kBitValue) != 0
                     ? static_cast<std::uint32_t>(in.varint())
                     : 0;
      op.dep1 = (header & kBitDep1) != 0 ? in.byte() : std::uint8_t{0};
      op.dep2 = (header & kBitDep2) != 0 ? in.byte() : std::uint8_t{0};
    }
    prev_pc = op.pc;
    prev_addr = op.addr;
    trace.push_back(op);
  }
  CPC_CHECK(in.pos == in.size, "trace codec: trailing bytes after last op");
  return trace;
}

}  // namespace cpc::sim::trace_codec
