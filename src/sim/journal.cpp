#include "sim/journal.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cpc::sim {

namespace {

constexpr char kMagic[] = "cpc-sweep-journal";
constexpr char kVersion[] = "v1";

void fnv1a(std::uint64_t& hash, std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
}

void fnv1a_u64(std::uint64_t& hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= 0x100000001b3ull;
  }
}

/// Percent-escapes spaces, newlines, '%' and empty strings so every field
/// is one non-empty whitespace-free token.
std::string escape(std::string_view s) {
  if (s.empty()) return "%-";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t' || c == '%') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view s) {
  if (s == "%-") return "";
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(std::stoi(std::string(s.substr(i + 1, 2)), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// The counters an `ok` line serializes, in order. Kept in one place so the
/// writer and the parser cannot drift.
std::vector<std::uint64_t> pack_counters(const JobResult& r) {
  const cpu::CoreStats& c = r.run.core;
  const cache::HierarchyStats& h = r.run.hierarchy;
  return {
      c.cycles,        c.committed,      c.loads,
      c.stores,        c.branches,       c.mispredicts,
      c.icache_misses, c.value_mismatches, c.miss_cycles,
      c.ready_sum_miss_cycles, c.ready_sum_all_cycles, c.ops_depending_on_miss,
      h.reads,         h.writes,         h.l1_misses,
      h.l2_misses,     h.l1_affiliated_hits, h.l2_affiliated_hits,
      h.l1_pbuf_hits,  h.l2_pbuf_hits,   h.l1_writebacks,
      h.mem_writebacks, h.mem_fetch_lines, h.prefetch_lines,
      h.l1_prefetch_inserts, h.l2_prefetch_inserts, h.partial_promotions,
      h.affiliated_demotions, h.traffic.fetch_half_units(),
      h.traffic.writeback_half_units(),
  };
}

void unpack_counters(const std::vector<std::uint64_t>& v, JobResult& r) {
  cpu::CoreStats& c = r.run.core;
  cache::HierarchyStats& h = r.run.hierarchy;
  std::size_t i = 0;
  c.cycles = v[i++]; c.committed = v[i++]; c.loads = v[i++];
  c.stores = v[i++]; c.branches = v[i++]; c.mispredicts = v[i++];
  c.icache_misses = v[i++]; c.value_mismatches = v[i++]; c.miss_cycles = v[i++];
  c.ready_sum_miss_cycles = v[i++]; c.ready_sum_all_cycles = v[i++];
  c.ops_depending_on_miss = v[i++];
  h.reads = v[i++]; h.writes = v[i++]; h.l1_misses = v[i++];
  h.l2_misses = v[i++]; h.l1_affiliated_hits = v[i++]; h.l2_affiliated_hits = v[i++];
  h.l1_pbuf_hits = v[i++]; h.l2_pbuf_hits = v[i++]; h.l1_writebacks = v[i++];
  h.mem_writebacks = v[i++]; h.mem_fetch_lines = v[i++]; h.prefetch_lines = v[i++];
  h.l1_prefetch_inserts = v[i++]; h.l2_prefetch_inserts = v[i++];
  h.partial_promotions = v[i++]; h.affiliated_demotions = v[i++];
  const std::uint64_t fetch_half = v[i++];
  const std::uint64_t wb_half = v[i++];
  h.traffic.restore(fetch_half, wb_half);
}

constexpr std::size_t kCounterCount = 30;

std::string header_line(std::uint64_t fingerprint, std::size_t jobs) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %s grid=%016llx jobs=%zu", kMagic, kVersion,
                static_cast<unsigned long long>(fingerprint), jobs);
  return buf;
}

}  // namespace

std::uint64_t grid_fingerprint(const std::vector<Job>& jobs) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  fnv1a_u64(hash, jobs.size());
  for (const Job& job : jobs) {
    fnv1a(hash, job.tag);
    fnv1a(hash, job.workload.name);
    fnv1a_u64(hash, job.trace_ops);
    fnv1a_u64(hash, job.seed);
    fnv1a_u64(hash, job.trace ? job.trace->size() : 0);
  }
  return hash;
}

SweepJournal::Restored SweepJournal::load(const std::string& path,
                                          std::uint64_t fingerprint,
                                          std::size_t jobs) {
  Restored restored;
  restored.results.resize(jobs);

  std::ifstream in(path);
  if (!in) return restored;
  std::string line;
  if (!std::getline(in, line) || line != header_line(fingerprint, jobs)) {
    return restored;  // foreign or mismatched journal: restore nothing
  }
  restored.header_matched = true;

  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string kind;
    std::size_t index = 0;
    if (!(fields >> kind >> index) || index >= jobs) continue;
    if (kind == "fail") {
      // Last-wins: a trailing failure re-opens the job for the resumed run.
      restored.results[index].reset();
      continue;
    }
    if (kind != "ok") continue;
    std::string tag, config;
    JobResult result;
    if (!(fields >> tag >> config >> result.wall_seconds >> result.ops_per_second)) {
      continue;  // truncated line (the process died mid-write)
    }
    std::vector<std::uint64_t> counters(kCounterCount);
    bool complete = true;
    for (std::uint64_t& counter : counters) {
      if (!(fields >> counter)) {
        complete = false;
        break;
      }
    }
    if (!complete) continue;
    result.index = index;
    result.tag = unescape(tag);
    result.run.config = unescape(config);
    unpack_counters(counters, result);
    result.ok = true;
    restored.results[index] = std::move(result);
  }
  restored.restored_ok = 0;
  for (const auto& slot : restored.results) {
    if (slot) ++restored.restored_ok;
  }
  return restored;
}

SweepJournal::SweepJournal(const std::string& path, std::uint64_t fingerprint,
                           std::size_t jobs, bool append) {
  out_.open(path, append ? (std::ios::out | std::ios::app)
                         : (std::ios::out | std::ios::trunc));
  if (!out_) throw std::runtime_error("cannot open sweep journal: " + path);
  if (!append) out_ << header_line(fingerprint, jobs) << '\n' << std::flush;
}

void SweepJournal::record_ok(const JobResult& result) {
  std::ostringstream line;
  line << "ok " << result.index << ' ' << escape(result.tag) << ' '
       << escape(result.run.config) << ' ' << result.wall_seconds << ' '
       << result.ops_per_second;
  for (const std::uint64_t counter : pack_counters(result)) line << ' ' << counter;
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line.str() << '\n' << std::flush;
}

void SweepJournal::record_failure(std::size_t index, const std::string& what) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << "fail " << index << ' ' << escape(what) << '\n' << std::flush;
}

}  // namespace cpc::sim
