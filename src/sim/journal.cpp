#include "sim/journal.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cpc::sim {

namespace {

constexpr char kMagic[] = "cpc-sweep-journal";
constexpr char kVersion[] = "v1";

void fnv1a(std::uint64_t& hash, std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
}

void fnv1a_u64(std::uint64_t& hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= 0x100000001b3ull;
  }
}

/// Percent-escapes spaces, newlines, '%' and empty strings so every field
/// is one non-empty whitespace-free token.
std::string escape(std::string_view s) {
  if (s.empty()) return "%-";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t' || c == '%') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view s) {
  if (s == "%-") return "";
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(std::stoi(std::string(s.substr(i + 1, 2)), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Scalar counters per `ok` line, counted from the registry, plus the
/// TrafficMeter half-unit pair appended by hand.
constexpr std::size_t kScalarCounters = 0
#define CPC_SWEEP_COUNTER(group, field) +1
#include "sim/sweep_counters.def"
#undef CPC_SWEEP_COUNTER
    ;
constexpr std::size_t kCounterCount = kScalarCounters + 2;

// The wire format is versioned: journals written before a registry change
// must not half-parse under the new layout. If this assert fires you
// changed sweep_counters.def — bump kVersion alongside it.
static_assert(kCounterCount == 30,
              "sweep journal wire format changed (sim/sweep_counters.def) — "
              "bump kVersion and update this pin");

/// The counters an `ok` line serializes, in registry order. Writer and
/// parser expand the same X-macro list, so the two cannot drift.
std::vector<std::uint64_t> pack_counters(const JobResult& r) {
  const cpu::CoreStats& core = r.run.core;
  const cache::HierarchyStats& hier = r.run.hierarchy;
  return {
#define CPC_SWEEP_COUNTER(group, field) group.field,
#include "sim/sweep_counters.def"
#undef CPC_SWEEP_COUNTER
      hier.traffic.fetch_half_units(),
      hier.traffic.writeback_half_units(),
  };
}

void unpack_counters(const std::vector<std::uint64_t>& v, JobResult& r) {
  cpu::CoreStats& core = r.run.core;
  cache::HierarchyStats& hier = r.run.hierarchy;
  std::size_t i = 0;
#define CPC_SWEEP_COUNTER(group, field) group.field = v[i++];
#include "sim/sweep_counters.def"
#undef CPC_SWEEP_COUNTER
  const std::uint64_t fetch_half = v[i++];
  const std::uint64_t wb_half = v[i++];
  hier.traffic.restore(fetch_half, wb_half);
}

std::string header_line(std::uint64_t fingerprint, std::size_t jobs) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %s grid=%016llx jobs=%zu", kMagic, kVersion,
                static_cast<unsigned long long>(fingerprint), jobs);
  return buf;
}

}  // namespace

std::string encode_ok_line(const JobResult& result) {
  std::ostringstream line;
  line << "ok " << result.index << ' ' << escape(result.tag) << ' '
       << escape(result.run.config) << ' ' << result.wall_seconds << ' '
       << result.ops_per_second;
  for (const std::uint64_t counter : pack_counters(result)) {
    line << ' ' << counter;
  }
  return line.str();
}

std::string encode_fail_line(std::size_t index, const std::string& what) {
  std::ostringstream line;
  line << "fail " << index << ' ' << escape(what);
  return line.str();
}

JournalEntry decode_journal_line(const std::string& line, std::size_t jobs) {
  JournalEntry entry;
  std::istringstream fields(line);
  std::string kind;
  std::size_t index = 0;
  if (!(fields >> kind >> index) || index >= jobs) return entry;
  entry.index = index;
  if (kind == "fail") {
    std::string what;
    fields >> what;  // an empty `what` still decodes (escaped as %-)
    entry.what = unescape(what);
    entry.kind = JournalEntry::Kind::kFail;
    return entry;
  }
  if (kind != "ok") return entry;
  std::string tag, config;
  JobResult result;
  if (!(fields >> tag >> config >> result.wall_seconds >>
        result.ops_per_second)) {
    return entry;  // truncated line (the process died mid-write)
  }
  std::vector<std::uint64_t> counters(kCounterCount);
  for (std::uint64_t& counter : counters) {
    if (!(fields >> counter)) return entry;
  }
  result.index = index;
  result.tag = unescape(tag);
  result.run.config = unescape(config);
  unpack_counters(counters, result);
  result.ok = true;
  entry.result = std::move(result);
  entry.kind = JournalEntry::Kind::kOk;
  return entry;
}

std::uint64_t grid_fingerprint(const std::vector<Job>& jobs) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  fnv1a_u64(hash, jobs.size());
  for (const Job& job : jobs) {
    fnv1a(hash, job.tag);
    fnv1a(hash, job.workload.name);
    fnv1a_u64(hash, job.trace_ops);
    fnv1a_u64(hash, job.seed);
    fnv1a_u64(hash, job.trace ? job.trace->size() : 0);
  }
  return hash;
}

SweepJournal::Restored SweepJournal::load(const std::string& path,
                                          std::uint64_t fingerprint,
                                          std::size_t jobs) {
  Restored restored;
  restored.results.resize(jobs);

  std::ifstream in(path);
  if (!in) return restored;
  std::string line;
  if (!std::getline(in, line) || line != header_line(fingerprint, jobs)) {
    return restored;  // foreign or mismatched journal: restore nothing
  }
  restored.header_matched = true;

  while (std::getline(in, line)) {
    JournalEntry entry = decode_journal_line(line, jobs);
    switch (entry.kind) {
      case JournalEntry::Kind::kOk:
        restored.results[entry.index] = std::move(entry.result);
        break;
      case JournalEntry::Kind::kFail:
        // Last-wins: a trailing failure re-opens the job for the resumed run.
        restored.results[entry.index].reset();
        break;
      case JournalEntry::Kind::kMalformed:
        break;  // truncated tail or foreign text — ignore
    }
  }
  restored.restored_ok = 0;
  for (const auto& slot : restored.results) {
    if (slot) ++restored.restored_ok;
  }
  return restored;
}

SweepJournal::SweepJournal(const std::string& path, std::uint64_t fingerprint,
                           std::size_t jobs, bool append) {
  // The journal is not shared until the constructor returns; the lock keeps
  // the thread-safety analysis's view of out_ uniform instead of waiving it.
  const MutexLock lock(mutex_);
  out_.open(path, append ? (std::ios::out | std::ios::app)
                         : (std::ios::out | std::ios::trunc));
  if (!out_) throw std::runtime_error("cannot open sweep journal: " + path);
  if (!append) out_ << header_line(fingerprint, jobs) << '\n' << std::flush;
}

void SweepJournal::record_ok(const JobResult& result) {
  const std::string line = encode_ok_line(result);
  const MutexLock lock(mutex_);
  out_ << line << '\n' << std::flush;
}

void SweepJournal::record_failure(std::size_t index, const std::string& what) {
  const std::string line = encode_fail_line(index, what);
  const MutexLock lock(mutex_);
  out_ << line << '\n' << std::flush;
}

}  // namespace cpc::sim
