#pragma once
// BenchMeter — the project's one sanctioned wall-clock timing module and the
// engine behind `cpc_bench` (bench/cpc_bench.cpp).
//
// Everything here exists to keep performance measurement centralized and the
// emitted trajectory files (`BENCH_<n>.json`) diffable:
//
//   * Stopwatch / peak_rss_bytes() — the only places the repository reads a
//     clock or the allocator high-water mark. CPC-L008 (tools/cpc_lint.cpp)
//     bans direct std::chrono use everywhere else in src/, tools/ and
//     bench/, so timing cannot leak into simulation results.
//   * JsonValue — a minimal ordered JSON document model (std-only writer and
//     recursive-descent parser) for the schema-versioned benchmark reports.
//   * BenchReport — the `BENCH_<n>.json` schema: per-suite, per-job records
//     whose non-timing fields (committed ops, cycles, a fingerprint over
//     every sweep counter) are bit-deterministic across runs; only
//     `wall_seconds` / `ops_per_second` / `peak_rss_bytes` vary, so two runs
//     of the harness diff cleanly.
//   * run_bench_suites() — replays the kernel suite and the committed fuzz
//     corpus through SweepRunner and fills a BenchReport.
//   * perf_gate() — the CI regression rule: current ops/sec must stay above
//     `min_ratio` x baseline ops/sec per suite (median across repeats).

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "sim/experiment.hpp"
#include "sim/job.hpp"

namespace cpc::sim {

// ---------------------------------------------------------------------------
// Timing primitives (the sanctioned clock)
// ---------------------------------------------------------------------------

/// Monotonic wall-clock stopwatch. The ONLY way repository code outside the
/// sweep watchdog may measure elapsed real time (CPC-L008).
class Stopwatch {
 public:
  Stopwatch();           ///< starts running
  void restart();        ///< resets the origin to now
  double seconds() const;  ///< elapsed seconds since construction/restart

 private:
  std::uint64_t origin_ns_ = 0;
};

/// Peak resident set size in bytes: the largest single process in this
/// process's tree — max of getrusage(RUSAGE_SELF) and RUSAGE_CHILDREN
/// ru_maxrss, so fork()ed shard workers (--procs) are counted, not just the
/// supervisor. 0 where the platform does not report it.
std::uint64_t peak_rss_bytes();

// ---------------------------------------------------------------------------
// Minimal JSON document model
// ---------------------------------------------------------------------------

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Ordered JSON value: objects preserve insertion order so emitted reports
/// are stable byte-for-byte. Numbers are stored as doubles plus an exact
/// unsigned-integer sidecar so 64-bit counters round-trip losslessly.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue integer(std::uint64_t u);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool as_bool() const;
  double as_double() const;
  std::uint64_t as_u64() const;  ///< exact when emitted via integer()
  const std::string& as_string() const;

  // Array access.
  std::size_t size() const;
  const JsonValue& at(std::size_t index) const;
  void push_back(JsonValue v);

  // Object access. `get` throws JsonError naming the missing key;
  // `find` returns nullptr.
  const JsonValue& get(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;
  void set(const std::string& key, JsonValue v);

  /// Serializes with 2-space indentation and a trailing newline at the top
  /// level, so emitted files are stable and diff-friendly.
  std::string dump() const;

  /// Parses a complete JSON document; trailing garbage is an error.
  static JsonValue parse(const std::string& text);

 private:
  void dump_to(std::string& out, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t exact_ = 0;
  bool has_exact_ = false;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

// ---------------------------------------------------------------------------
// Benchmark report schema
// ---------------------------------------------------------------------------

/// Bump when the JSON layout changes shape. Readers reject other versions.
inline constexpr std::uint32_t kBenchSchemaVersion = 1;

/// Order-sensitive FNV-1a hash over every scalar sweep counter of a run
/// (the sim/sweep_counters.def wire order plus the traffic half-units).
/// Identical across thread counts and machines for a correct simulator —
/// this is what "oracle-verified bit-identical" pins in a trajectory file.
std::uint64_t stats_fingerprint(const RunResult& run);

/// One (workload x config) simulation inside a suite.
struct BenchJobRecord {
  std::string workload;  ///< workload name, or corpus trace stem
  std::string config;    ///< "BC".."CPP"
  // Deterministic fields.
  std::uint64_t trace_ops = 0;
  std::uint64_t seed = 0;
  std::uint64_t committed = 0;
  std::uint64_t cycles = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t traffic_half_units = 0;
  std::uint64_t fingerprint = 0;  ///< stats_fingerprint() of the run
  // Timing fields (excluded from determinism comparisons).
  double wall_seconds = 0.0;
  double ops_per_second = 0.0;
};

/// One suite: the kernel sweep or the corpus replay.
struct BenchSuiteResult {
  std::string name;
  std::vector<BenchJobRecord> jobs;
  std::uint64_t committed_total = 0;   ///< deterministic
  double wall_seconds = 0.0;           ///< timing: sum of job sim times
  double ops_per_second = 0.0;         ///< timing: committed_total / wall
  /// Timing: ops/sec of every repeat (index 0 = the recorded jobs above);
  /// the gate compares medians of these.
  std::vector<double> repeat_ops_per_second;

  double median_ops_per_second() const;
};

struct BenchReport {
  std::uint32_t schema_version = kBenchSchemaVersion;
  std::string mode;  ///< "full" or "quick"
  unsigned threads = 1;
  unsigned repeats = 1;
  std::vector<BenchSuiteResult> suites;
  std::uint64_t rss_peak_bytes = 0;  ///< timing-class field

  const BenchSuiteResult* find_suite(const std::string& name) const;

  JsonValue to_json() const;
  /// Throws JsonError on schema-version or shape mismatch.
  static BenchReport from_json(const JsonValue& root);

  /// Zeroes every timing-class field (wall_seconds, ops_per_second,
  /// repeat lists, RSS) in place. Two runs of the same suite must dump()
  /// identical JSON after this — the determinism contract the tests pin.
  void clear_timing_fields();
};

// ---------------------------------------------------------------------------
// Suite execution
// ---------------------------------------------------------------------------

struct BenchRunOptions {
  std::uint64_t trace_ops = 300'000;  ///< per-workload kernel trace length
  std::uint64_t seed = 0x5eed;
  unsigned repeats = 1;     ///< run each suite this many times (median gates)
  unsigned threads = 1;     ///< SweepRunner thread count (0 = default)
  /// Process-sharded execution (sim/shard_supervisor.hpp): > 0 runs each
  /// suite across this many supervised worker processes. Deterministic
  /// fields (fingerprints included) stay bit-identical to threaded runs;
  /// timing-class fields differ as usual. 0 = in-process.
  unsigned procs = 0;
  bool quiet = true;
  std::string mode = "full";
  /// Compression codecs to cross with the five paper configurations: every
  /// suite input runs once per (config, codec) cell, config-major. Empty
  /// (the default) means the paper codec alone, which keeps every job
  /// record — tags, fingerprints, ordering — bit-identical to pre-codec
  /// reports, so committed BENCH_<n>.json baselines stay comparable.
  std::vector<compress::CodecKind> codecs;
  /// Workload filter (names); empty = every registered kernel.
  std::vector<std::string> workloads;
  /// Directory holding the committed fuzz corpus (*.cpctrace). Empty or
  /// missing directory skips the corpus suite.
  std::string corpus_dir = "tests/corpus";
};

/// Runs the kernel suite (and, when available, the corpus suite) and
/// returns the filled report. Simulation results are checked for value
/// mismatches; a corrupt hierarchy throws InvariantViolation.
BenchReport run_bench_suites(const BenchRunOptions& options);

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

/// Suites whose baseline measured less wall time than this are too short to
/// time meaningfully (the committed fuzz corpus is a few hundred ops); the
/// gate reports them informationally instead of failing on timer noise.
inline constexpr double kGateNoiseFloorSeconds = 0.05;

struct GateResult {
  bool ok = true;
  /// Worst current/baseline median-ops-per-second ratio across the suites
  /// both reports contain (+inf when nothing is comparable).
  double worst_ratio = 0.0;
  /// Human-readable per-suite lines (ratio, pass/fail, fingerprint drift).
  std::vector<std::string> lines;
};

/// Compares `current` against `baseline`: every suite present in both must
/// keep median ops/sec >= min_ratio x the baseline's. Deterministic-field
/// drift (changed fingerprints) is reported in `lines` but does not fail
/// the gate — perf and correctness are gated by different jobs.
GateResult perf_gate(const BenchReport& baseline, const BenchReport& current,
                     double min_ratio);

}  // namespace cpc::sim
