#pragma once
// Supervisor <-> worker plumbing for process-sharded sweeps
// (sim/shard_supervisor.hpp). Two layers live here:
//
//   * A length-prefixed, CRC-guarded, schema-versioned frame protocol for
//     the result pipe. Every frame is
//
//       magic 'CPCF' (u32 LE) | version (u8) | type (u8) |
//       payload length (u32 LE) | crc32(payload) (u32 LE) | payload bytes
//
//     so a reader can resynchronise deterministically: a bad magic, unknown
//     version/type, oversized length or CRC mismatch marks the stream
//     corrupt (the supervisor treats that as a worker crash). The payload
//     of result frames reuses the sweep-journal line format (sim/journal.hpp),
//     which carries its own counter-schema pin.
//
//   * Thin POSIX process wrappers (fork + pipe + waitpid + kill +
//     setrlimit(RLIMIT_AS) + poll) so raw process syscalls stay confined to
//     ipc.cpp — cpc_lint CPC-L009 bans them everywhere else. On platforms
//     without fork() the wrappers report process_isolation_supported() ==
//     false and sharded execution falls back to in-process containment.
//
// Nothing here touches std::chrono (CPC-L008): sleeping goes through
// nanosleep and elapsed time is the caller's sim::Stopwatch.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace cpc::sim::ipc {

// ---------------------------------------------------------------------------
// Frame protocol
// ---------------------------------------------------------------------------

/// Bump when the frame header or any payload layout changes shape; a
/// supervisor refuses frames from a different version outright.
inline constexpr std::uint8_t kWireVersion = 1;

/// 'CPCF' little-endian.
inline constexpr std::uint32_t kFrameMagic = 0x46435043u;

/// Upper bound on one frame's payload. Generously above any journal line or
/// failure record; a length field beyond this is corruption, not data.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

enum class FrameType : std::uint8_t {
  kHello = 0,   ///< worker came up (payload: u64 shard id)
  kJobStart,    ///< worker begins a job (payload: u64 job index)
  kHeartbeat,   ///< liveness beacon, empty payload
  kResult,      ///< one completed job (payload: journal `ok` line)
  kFailure,     ///< one contained job failure (payload: packed JobFailure)
  kDone,        ///< slice finished (payload: packed TraceCache stats)
  kBlob,        ///< tool-defined payload (cpc_faultcamp campaign records)
};

/// Number of FrameType enumerators (decoder range check).
inline constexpr std::uint8_t kFrameTypeCount =
    static_cast<std::uint8_t>(FrameType::kBlob) + 1;

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `bytes`.
std::uint32_t crc32(std::string_view bytes);

/// Serializes one frame (header + payload) into a byte string.
std::string encode_frame(FrameType type, std::string_view payload);

/// Writes one frame to `fd`, retrying on EINTR and short writes. Returns
/// false when the pipe is gone (EPIPE — the reader died) or on any other
/// write error; callers treat that as "supervisor lost", not fatal.
bool write_frame(int fd, FrameType type, std::string_view payload);

/// Incremental frame parser over an arbitrary chunking of the byte stream.
class FrameDecoder {
 public:
  enum class Status : std::uint8_t {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< one frame extracted into the out-parameter
    kCorrupt,   ///< stream violated the protocol; decoder is poisoned
  };

  void feed(const char* data, std::size_t size);
  void feed(std::string_view bytes) { feed(bytes.data(), bytes.size()); }

  /// Extracts the next complete frame. Once kCorrupt is returned every
  /// subsequent call returns kCorrupt — a sheared stream cannot be trusted
  /// again.
  Status next(Frame& out);

  bool corrupt() const { return corrupt_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< bytes of buffer_ already parsed
  bool corrupt_ = false;
};

// ---------------------------------------------------------------------------
// Payload packing (little-endian, length-prefixed strings)
// ---------------------------------------------------------------------------

void put_u64(std::string& out, std::uint64_t value);
void put_string(std::string& out, std::string_view value);

/// Consuming readers: advance `in` past the field. Return false (leaving
/// the output untouched) when the payload is truncated.
bool get_u64(std::string_view& in, std::uint64_t& value);
bool get_string(std::string_view& in, std::string& value);

// ---------------------------------------------------------------------------
// Process wrappers (POSIX; no-ops reporting unsupported elsewhere)
// ---------------------------------------------------------------------------

/// True when fork/pipe/waitpid are available (and therefore run_sharded can
/// actually shard). Sanitized builds still support isolation — only the
/// address-space rlimit fence is skipped there.
bool process_isolation_supported();

/// How a child ended.
struct ExitStatus {
  bool exited = false;    ///< normal termination (code below)
  bool signaled = false;  ///< killed by a signal (code = signal number)
  int code = 0;
  bool clean() const { return exited && code == 0; }
};

struct SpawnOptions {
  /// setrlimit(RLIMIT_AS) soft cap applied inside the child, in MiB.
  /// 0 leaves the limit untouched. Ignored (with a one-line stderr note)
  /// under AddressSanitizer, whose shadow mappings need the full address
  /// space.
  std::uint64_t rlimit_as_mb = 0;
};

/// A forked worker and the read end of its result pipe.
struct ChildProcess {
  long pid = -1;
  int read_fd = -1;
  bool valid() const { return pid > 0; }
};

/// Forks a worker. The child closes the read end, applies SpawnOptions,
/// runs `body(write_fd)` and _exit(0)s (or _exit(86) if body throws — the
/// child must never run the parent's atexit/stack unwinding). The parent
/// closes the write end and returns the child handle; an invalid handle
/// means fork/pipe failed (errno text on stderr).
ChildProcess spawn_worker(const SpawnOptions& options,
                          const std::function<void(int write_fd)>& body);

/// Non-blocking reap. Returns true once the child has been collected (at
/// which point `child.pid` is invalidated so it cannot be waited twice).
bool try_wait(ChildProcess& child, ExitStatus& status);

/// Blocking reap (EINTR-safe). Invalidates `child.pid`.
ExitStatus wait_blocking(ChildProcess& child);

/// SIGKILL. Safe to call on an already-dead (but unreaped) child.
void kill_hard(const ChildProcess& child);

/// EINTR-safe read(2). Returns bytes read, 0 at EOF, -1 on error.
long read_some(int fd, char* buffer, std::size_t size);

/// Waits up to `timeout_ms` for any of `fds` to become readable (or hung
/// up). `ready` is resized to match `fds`; ready[i] is true when fds[i]
/// has data or EOF pending. Returns false on poll error.
bool poll_readable(const std::vector<int>& fds, int timeout_ms,
                   std::vector<bool>& ready);

/// nanosleep-based millisecond sleep (EINTR-resumed).
void sleep_ms(std::uint64_t ms);

/// close(2) if open, then marks the fd invalid.
void close_fd(int& fd);

}  // namespace cpc::sim::ipc
