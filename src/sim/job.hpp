#pragma once
// Job descriptions for the parallel sweep engine. A Job is one complete
// simulation: a (hierarchy, workload, seed, op count) tuple plus the core
// configuration driving it. Jobs are self-contained — the hierarchy is
// constructed inside the worker thread that executes the job, so every job
// owns isolated statistics and two runs of the same job are bit-identical.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cache/hierarchy.hpp"
#include "cpu/core_config.hpp"
#include "cpu/micro_op.hpp"
#include "sim/experiment.hpp"
#include "workload/workloads.hpp"

namespace cpc::sim {

/// Builds a fresh hierarchy for one job. Called on the worker thread, once
/// per job, so the returned instance's counters belong to that job alone.
using HierarchyFactory =
    std::function<std::unique_ptr<cache::MemoryHierarchy>()>;

/// One simulation job of a sweep grid.
struct Job {
  /// Workload to generate the input trace from. Ignored when `trace` is set.
  workload::Workload workload{};
  std::uint64_t trace_ops = 0;  ///< micro-ops to generate
  std::uint64_t seed = 0;       ///< workload-generator seed

  /// Pre-recorded trace to replay instead of generating one (cpc_run --sweep,
  /// tests). Shared, never mutated.
  std::shared_ptr<const cpu::Trace> trace;

  HierarchyFactory make_hierarchy;
  cpu::CoreConfig core_config{};

  /// Free-form label carried into the result ("CPP", "mask 0x2", ...).
  std::string tag;
};

/// Outcome of one job, in the grid order the jobs were submitted.
struct JobResult {
  std::size_t index = 0;  ///< position in the submitted job vector
  std::string tag;
  RunResult run;
  /// True once the job completed (set by SweepRunner; false for the
  /// placeholder slots of failed jobs in a contained sweep).
  bool ok = false;

  /// The hierarchy the job ran on, kept alive so harnesses can read
  /// implementation-specific counters (victim hits, shared frames, ...).
  /// Null for results restored from a sweep journal.
  std::unique_ptr<cache::MemoryHierarchy> hierarchy;

  double wall_seconds = 0.0;   ///< simulation time, excluding trace generation
  double ops_per_second = 0.0; ///< committed micro-ops per wall-clock second
};

/// Job for one of the five paper configurations (section 4.1).
inline Job make_config_job(const workload::Workload& workload,
                           std::uint64_t trace_ops, std::uint64_t seed,
                           ConfigKind kind,
                           const cpu::CoreConfig& core_config = {},
                           const cache::LatencyConfig& latency = {}) {
  Job job;
  job.workload = workload;
  job.trace_ops = trace_ops;
  job.seed = seed;
  job.make_hierarchy = [kind, latency] { return make_hierarchy(kind, latency); };
  job.core_config = core_config;
  job.tag = config_name(kind);
  return job;
}

/// Job for one (config, codec) cell of a codec-comparison grid. Under the
/// paper codec the tag and hierarchy are exactly make_config_job's, so
/// mixed grids keep legacy journal fingerprints for the paper column.
inline Job make_config_codec_job(const workload::Workload& workload,
                                 std::uint64_t trace_ops, std::uint64_t seed,
                                 ConfigKind kind, compress::Codec codec,
                                 const cpu::CoreConfig& core_config = {},
                                 const cache::LatencyConfig& latency = {}) {
  Job job;
  job.workload = workload;
  job.trace_ops = trace_ops;
  job.seed = seed;
  job.make_hierarchy = [kind, codec, latency] {
    return make_hierarchy(kind, codec, latency);
  };
  job.core_config = core_config;
  job.tag = config_codec_tag(kind, codec);
  return job;
}

}  // namespace cpc::sim
