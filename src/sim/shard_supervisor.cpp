#include "sim/shard_supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "sim/bench_meter.hpp"
#include "sim/ipc.hpp"
#include "sim/journal.hpp"

namespace cpc::sim {

namespace {

// ---------------------------------------------------------------------------
// Wire payloads (on top of ipc frames)
// ---------------------------------------------------------------------------

/// kDone payload: the worker's trace-cache counters (spill tier included)
/// followed by its own peak RSS, so the supervisor can report the largest
/// worker of the run (RunReport::worker_rss_peak_bytes).
std::string encode_done_payload(const TraceCache::Stats& stats,
                                std::uint64_t rss_bytes) {
  std::string out;
  ipc::put_u64(out, stats.hits);
  ipc::put_u64(out, stats.compressed_hits);
  ipc::put_u64(out, stats.misses);
  ipc::put_u64(out, stats.evictions);
  ipc::put_u64(out, stats.compressed_evictions);
  ipc::put_u64(out, stats.decoded_bytes);
  ipc::put_u64(out, stats.compressed_bytes);
  ipc::put_u64(out, stats.spill_writes);
  ipc::put_u64(out, stats.spill_hits);
  ipc::put_u64(out, stats.spill_bytes);
  ipc::put_u64(out, stats.spill_drops);
  ipc::put_u64(out, stats.spill_quarantined);
  ipc::put_u64(out, rss_bytes);
  return out;
}

bool decode_done_payload(std::string_view in, TraceCache::Stats& stats,
                         std::uint64_t& rss_bytes) {
  return ipc::get_u64(in, stats.hits) &&
         ipc::get_u64(in, stats.compressed_hits) &&
         ipc::get_u64(in, stats.misses) && ipc::get_u64(in, stats.evictions) &&
         ipc::get_u64(in, stats.compressed_evictions) &&
         ipc::get_u64(in, stats.decoded_bytes) &&
         ipc::get_u64(in, stats.compressed_bytes) &&
         ipc::get_u64(in, stats.spill_writes) &&
         ipc::get_u64(in, stats.spill_hits) &&
         ipc::get_u64(in, stats.spill_bytes) &&
         ipc::get_u64(in, stats.spill_drops) &&
         ipc::get_u64(in, stats.spill_quarantined) &&
         ipc::get_u64(in, rss_bytes);
}

std::string encode_failure_payload(const JobFailure& failure) {
  std::string out;
  ipc::put_u64(out, failure.index);
  ipc::put_string(out, failure.tag);
  ipc::put_u64(out, failure.attempts);
  ipc::put_u64(out, failure.history.size());
  for (const JobFailure::Attempt& attempt : failure.history) {
    ipc::put_string(out, attempt.what);
    ipc::put_u64(out, attempt.timed_out ? 1 : 0);
    ipc::put_u64(out, attempt.diagnostic ? 1 : 0);
    if (attempt.diagnostic) {
      ipc::put_u64(out, static_cast<std::uint64_t>(
                            attempt.diagnostic->invariant));
      ipc::put_string(out, attempt.diagnostic->site);
      ipc::put_u64(out, attempt.diagnostic->cycle);
      ipc::put_u64(out, attempt.diagnostic->line_addr);
      ipc::put_string(out, attempt.diagnostic->detail);
    }
  }
  return out;
}

bool decode_failure_payload(std::string_view in, JobFailure& failure) {
  std::uint64_t index = 0, attempts = 0, history_size = 0;
  if (!ipc::get_u64(in, index) || !ipc::get_string(in, failure.tag) ||
      !ipc::get_u64(in, attempts) || !ipc::get_u64(in, history_size)) {
    return false;
  }
  failure.index = static_cast<std::size_t>(index);
  failure.attempts = static_cast<unsigned>(attempts);
  if (history_size > 1024) return false;  // corrupt length, not data
  failure.history.clear();
  for (std::uint64_t i = 0; i < history_size; ++i) {
    JobFailure::Attempt attempt;
    std::uint64_t timed_out = 0, has_diagnostic = 0;
    if (!ipc::get_string(in, attempt.what) || !ipc::get_u64(in, timed_out) ||
        !ipc::get_u64(in, has_diagnostic)) {
      return false;
    }
    attempt.timed_out = timed_out != 0;
    if (has_diagnostic != 0) {
      Diagnostic diagnostic;
      std::uint64_t invariant = 0, cycle = 0, line_addr = 0;
      if (!ipc::get_u64(in, invariant) ||
          !ipc::get_string(in, diagnostic.site) ||
          !ipc::get_u64(in, cycle) || !ipc::get_u64(in, line_addr) ||
          !ipc::get_string(in, diagnostic.detail)) {
        return false;
      }
      diagnostic.invariant = invariant < kInvariantCount
                                 ? static_cast<Invariant>(invariant)
                                 : Invariant::kGeneric;
      diagnostic.cycle = cycle;
      diagnostic.line_addr = static_cast<std::uint32_t>(line_addr);
      attempt.diagnostic = std::move(diagnostic);
    }
    failure.history.push_back(std::move(attempt));
  }
  if (!failure.history.empty()) {
    const JobFailure::Attempt& first = failure.history.front();
    failure.what = first.what;
    failure.timed_out = first.timed_out;
    failure.diagnostic = first.diagnostic;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Crash injection (CPC_CRASH_JOB=<index>:<mode>)
// ---------------------------------------------------------------------------

enum class CrashMode : std::uint8_t {
  kNone,
  kSegv,
  kAbort,
  kOom,
  kHang,
  kExit3,
};

struct CrashPlan {
  std::size_t job_index = 0;
  CrashMode mode = CrashMode::kNone;
};

CrashPlan parse_crash_plan() {
  CrashPlan plan;
  const char* env = std::getenv("CPC_CRASH_JOB");
  if (env == nullptr) return plan;
  const std::string spec(env);
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    std::cerr << "warning: ignoring malformed CPC_CRASH_JOB='" << spec
              << "' (want <index>:<mode>)\n";
    return plan;
  }
  char* end = nullptr;
  const unsigned long long index = std::strtoull(spec.c_str(), &end, 10);
  if (end != spec.c_str() + colon) {
    std::cerr << "warning: ignoring malformed CPC_CRASH_JOB index in '"
              << spec << "'\n";
    return plan;
  }
  const std::string mode = spec.substr(colon + 1);
  if (mode == "segv") {
    plan.mode = CrashMode::kSegv;
  } else if (mode == "abort") {
    plan.mode = CrashMode::kAbort;
  } else if (mode == "oom") {
    plan.mode = CrashMode::kOom;
  } else if (mode == "hang") {
    plan.mode = CrashMode::kHang;
  } else if (mode == "exit3") {
    plan.mode = CrashMode::kExit3;
  } else {
    std::cerr << "warning: unknown CPC_CRASH_JOB mode '" << mode
              << "' (want segv|abort|oom|hang|exit3)\n";
    return plan;
  }
  plan.job_index = static_cast<std::size_t>(index);
  return plan;
}

/// Allocation loop that lets bad_alloc escape a noexcept frame: terminate()
/// raises SIGABRT, which is exactly the "worker OOM-killed" shape the
/// supervisor must contain. With an RLIMIT_AS fence the loop dies early; on
/// unfenced builds the bounded loop ends in an impossible single allocation
/// so the crash stays deterministic without exhausting the host.
[[noreturn]] void crash_oom() noexcept {
  std::vector<char*> leaked;
  constexpr std::size_t kBlock = 64u << 20;
  for (int i = 0; i < 8; ++i) {  // <= 512 MiB of real pressure
    char* block = new char[kBlock];
    std::memset(block, 0xab, kBlock);
    leaked.push_back(block);
  }
  char* impossible = new char[(1ull << 62)];
  leaked.push_back(impossible);
  std::abort();  // unreachable: one of the allocations above must throw
}

/// Dies per the plan when this (job, first process attempt) matches. The
/// hook only fires on process_attempt == 0 so the retried job completes —
/// the containment path under test is "crash once, recover".
void maybe_crash(const CrashPlan& plan, std::size_t job_index,
                 unsigned process_attempt, std::atomic<bool>& heartbeats) {
  if (plan.mode == CrashMode::kNone) return;
  if (plan.job_index != job_index || process_attempt != 0) return;
  switch (plan.mode) {
    case CrashMode::kNone:
      return;
    case CrashMode::kSegv: {
      volatile int* null_pointer = nullptr;
      *null_pointer = 1;
      return;
    }
    case CrashMode::kAbort:
      std::abort();
    case CrashMode::kOom:
      crash_oom();
    case CrashMode::kHang:
      // Stop heartbeating and freeze: only the supervisor's silence
      // watchdog (SIGKILL) can end this worker.
      heartbeats.store(false, std::memory_order_relaxed);
      while (true) ipc::sleep_ms(1000);
    case CrashMode::kExit3:
      std::_Exit(3);
  }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// One unit of shard work: which job, and how many workers already died
/// while running it (the crash-retry counter).
struct ShardTask {
  std::size_t job_index = 0;
  unsigned process_attempt = 0;
};

/// Runs one shard slice inside the forked child. Jobs are reached through
/// the fork-inherited address space — only results cross the pipe.
void worker_body(int write_fd, std::uint64_t shard_id,
                 const std::vector<Job>& jobs,
                 const std::vector<ShardTask>& tasks,
                 const ShardOptions& options) {
  Mutex write_mutex;
  std::atomic<bool> stop{false};
  std::atomic<bool> heartbeats{true};
  std::atomic<bool> supervisor_gone{false};
  const auto send = [&](ipc::FrameType type, std::string_view payload) {
    const MutexLock lock(write_mutex);
    if (!ipc::write_frame(write_fd, type, payload)) {
      supervisor_gone.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  };

  {
    std::string hello;
    ipc::put_u64(hello, shard_id);
    send(ipc::FrameType::kHello, hello);
  }
  std::thread beater([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ipc::sleep_ms(options.heartbeat_ms);
      if (stop.load(std::memory_order_relaxed)) return;
      if (!heartbeats.load(std::memory_order_relaxed)) continue;
      if (!send(ipc::FrameType::kHeartbeat, {})) return;
    }
  });

  const CrashPlan crash_plan = parse_crash_plan();
  TraceCache traces;  // shared across the slice; bounded via CPC_TRACE_CACHE_MB
  const SweepRunner runner(1);  // process parallelism supersedes threads
  // Deliberately NOT forwarded: streaming callbacks (they belong to the
  // supervisor process) and the sweep cancel pointer (fork gave this child
  // a copy-on-write snapshot of the flag that the supervisor can never
  // flip; cancellation reaches workers as SIGKILL instead).
  RunOptions per_job;
  per_job.quiet = true;
  per_job.retries = options.run.retries;
  per_job.job_timeout_ms = options.run.job_timeout_ms;

  for (const ShardTask& task : tasks) {
    if (supervisor_gone.load(std::memory_order_relaxed)) break;
    {
      std::string start;
      ipc::put_u64(start, task.job_index);
      if (!send(ipc::FrameType::kJobStart, start)) break;
    }
    maybe_crash(crash_plan, task.job_index, task.process_attempt, heartbeats);

    Job job = jobs[task.job_index];
    JobFailure failure;
    failure.index = task.job_index;
    failure.tag = job.tag;
    try {
      // Pre-resolve through the worker-wide cache so a slice with repeated
      // (workload, ops, seed) keys generates each trace once.
      if (!job.trace) {
        job.trace = traces.get(job.workload, job.trace_ops, job.seed);
      }
    } catch (const std::exception& error) {
      JobFailure::Attempt attempt;
      attempt.what = std::string("trace generation failed: ") + error.what();
      failure.history.push_back(attempt);
      failure.what = attempt.what;
      failure.attempts = 1;
      send(ipc::FrameType::kFailure, encode_failure_payload(failure));
      continue;
    }

    std::vector<Job> single;
    single.push_back(std::move(job));
    RunReport report = runner.run_contained(std::move(single), per_job);
    if (report.failures.empty() && report.results.size() == 1 &&
        report.results[0].ok) {
      JobResult& result = report.results[0];
      result.index = task.job_index;
      send(ipc::FrameType::kResult, encode_ok_line(result));
    } else {
      if (!report.failures.empty()) failure = std::move(report.failures[0]);
      failure.index = task.job_index;
      if (failure.tag.empty()) failure.tag = jobs[task.job_index].tag;
      send(ipc::FrameType::kFailure, encode_failure_payload(failure));
    }
  }

  send(ipc::FrameType::kDone,
       encode_done_payload(traces.stats(), peak_rss_bytes()));
  stop.store(true, std::memory_order_relaxed);
  beater.join();
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

struct WorkerState {
  ipc::ChildProcess child;
  ipc::FrameDecoder decoder;
  std::vector<ShardTask> tasks;
  std::set<std::size_t> finished;  ///< job indices this worker reported
  std::optional<ShardTask> in_flight;
  Stopwatch silence;    ///< since the last frame of any kind
  Stopwatch job_clock;  ///< since the last kJobStart
  bool done_seen = false;
  bool alive = false;
};

std::string describe_exit(const ipc::ExitStatus& status) {
  if (status.signaled) {
    std::string name = "signal " + std::to_string(status.code);
    if (status.code == SIGKILL) name += " (SIGKILL)";
    if (status.code == SIGSEGV) name += " (SIGSEGV)";
    if (status.code == SIGABRT) name += " (SIGABRT)";
    return name;
  }
  if (status.exited) return "exit code " + std::to_string(status.code);
  return "unknown termination";
}

}  // namespace

ShardOptions ShardOptions::from_env() {
  ShardOptions options;
  options.run = RunOptions::from_env();
  const auto parse_u64 = [](const char* env, std::uint64_t& out,
                            std::uint64_t max) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && value <= max) {
      out = value;
      return true;
    }
    return false;
  };
  if (const char* env = std::getenv("CPC_PROCS")) {
    std::uint64_t value = 0;
    if (parse_u64(env, value, 4096)) {
      options.procs = static_cast<unsigned>(value);
    } else {
      std::cerr << "warning: ignoring unparseable CPC_PROCS='" << env << "'\n";
    }
  }
  if (const char* env = std::getenv("CPC_SHARD_RLIMIT_MB")) {
    if (!parse_u64(env, options.rlimit_as_mb, 1ull << 24)) {
      std::cerr << "warning: ignoring unparseable CPC_SHARD_RLIMIT_MB='" << env
                << "'\n";
    }
  }
  if (const char* env = std::getenv("CPC_SHARD_SILENCE_MS")) {
    if (!parse_u64(env, options.silence_budget_ms, 1ull << 32)) {
      std::cerr << "warning: ignoring unparseable CPC_SHARD_SILENCE_MS='"
                << env << "'\n";
    }
  }
  return options;
}

ShardSupervisor::ShardSupervisor(ShardOptions options)
    : options_(std::move(options)) {}

RunReport ShardSupervisor::run(std::vector<Job> jobs) const {
  const ShardOptions& options = options_;
  unsigned procs = options.procs == 0 ? default_job_count() : options.procs;
  if (!jobs.empty()) {
    procs = static_cast<unsigned>(
        std::min<std::size_t>(procs, jobs.size()));
  }
  if (procs <= 1 || !ipc::process_isolation_supported()) {
    // Degraded mode: same containment semantics, one address space.
    return SweepRunner().run_contained(std::move(jobs), options.run);
  }

  RunReport report;
  report.results.resize(jobs.size());
  std::vector<bool> done(jobs.size(), false);

  // Journal restore — byte-compatible with run_contained's, so a sweep
  // started in-process can resume sharded and vice versa.
  std::unique_ptr<SweepJournal> journal;
  if (!options.run.journal_path.empty()) {
    const std::uint64_t fingerprint = grid_fingerprint(jobs);
    SweepJournal::Restored prior = SweepJournal::load(
        options.run.journal_path, fingerprint, jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (prior.results[i]) {
        report.results[i] = std::move(*prior.results[i]);
        done[i] = true;
      }
    }
    report.resumed = prior.restored_ok;
    journal = std::make_unique<SweepJournal>(
        options.run.journal_path, fingerprint, jobs.size(),
        /*append=*/prior.header_matched);
    if (!options.run.quiet && report.resumed > 0) {
      std::cerr << "  resuming: " << report.resumed << "/" << jobs.size()
                << " jobs restored from " << options.run.journal_path << "\n";
    }
  }

  // Restored jobs replay through the streaming hook (same contract as
  // run_contained) before any worker spawns.
  if (options.run.on_result) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (done[i]) options.run.on_result(report.results[i]);
    }
  }

  std::vector<ShardTask> pending;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!done[i]) pending.push_back({i, 0});
  }

  std::deque<WorkerState> workers;
  std::uint64_t next_shard_id = 0;
  const auto spawn = [&](std::vector<ShardTask> tasks) {
    workers.emplace_back();
    WorkerState& w = workers.back();
    w.tasks = std::move(tasks);
    const std::uint64_t shard_id = next_shard_id++;
    ipc::SpawnOptions spawn_options;
    spawn_options.rlimit_as_mb = options.rlimit_as_mb;
    // The child reads jobs/tasks/options through the fork-inherited
    // address space; only result frames flow back through the pipe.
    w.child = ipc::spawn_worker(spawn_options, [&](int write_fd) {
      worker_body(write_fd, shard_id, jobs, w.tasks, options);
    });
    w.alive = w.child.valid();
    w.silence.restart();
    if (!w.alive && !options.run.quiet) {
      std::cerr << "  shard " << shard_id << ": spawn failed\n";
    }
  };

  // Initial round-robin partition. Sequential job indices land on
  // different workers, spreading each workload's configs across shards.
  for (unsigned p = 0; p < procs; ++p) {
    std::vector<ShardTask> slice;
    for (std::size_t i = p; i < pending.size(); i += procs) {
      slice.push_back(pending[i]);
    }
    if (!slice.empty()) spawn(std::move(slice));
  }

  std::size_t completed = report.resumed;
  const std::size_t total = jobs.size();
  unsigned restarts_used = 0;

  const auto record_failure = [&](JobFailure failure) {
    if (done[failure.index]) return;
    done[failure.index] = true;
    ++completed;
    if (journal) journal->record_failure(failure.index, failure.what);
    if (options.run.on_failure) options.run.on_failure(failure);
    if (!options.run.quiet) {
      std::cerr << "  [" << completed << "/" << total << "] job "
                << failure.index << " ("
                << (failure.tag.empty() ? "untagged" : failure.tag)
                << ") FAILED after " << failure.attempts
                << " attempt(s): " << failure.what << "\n";
    }
    report.failures.push_back(std::move(failure));
  };

  const auto record_result = [&](JobResult result) {
    if (done[result.index]) return;
    const std::size_t index = result.index;
    done[index] = true;
    ++completed;
    if (journal) journal->record_ok(result);
    if (options.run.on_result) options.run.on_result(result);
    if (!options.run.quiet) {
      const std::string& name = jobs[index].workload.name;
      std::cerr << "  [" << completed << "/" << total << "] "
                << (name.empty() ? "<trace>" : name) << "/"
                << result.run.config << ": " << result.run.core.cycles
                << " cycles (" << result.wall_seconds << "s)\n";
    }
    report.results[index] = std::move(result);
  };

  // Worker death: keep its finished jobs, charge the in-flight job one
  // crash attempt, re-shard the rest onto a replacement (budget allowing).
  const auto handle_death = [&](WorkerState& w, const ipc::ExitStatus& status,
                                const std::string& reason) {
    ipc::close_fd(w.child.read_fd);
    w.alive = false;
    std::vector<ShardTask> requeue;
    for (const ShardTask& task : w.tasks) {
      if (w.finished.count(task.job_index) || done[task.job_index]) continue;
      ShardTask next = task;
      if (w.in_flight && w.in_flight->job_index == task.job_index) {
        next.process_attempt = w.in_flight->process_attempt + 1;
        if (next.process_attempt > options.crash_retries) {
          JobFailure failure;
          failure.index = task.job_index;
          failure.tag = jobs[task.job_index].tag;
          JobFailure::Attempt attempt;
          attempt.what = "worker died (" + describe_exit(status) +
                         (reason.empty() ? "" : ", " + reason) +
                         ") while running this job";
          failure.history.assign(next.process_attempt, attempt);
          failure.what = attempt.what;
          failure.attempts = next.process_attempt;
          record_failure(std::move(failure));
          continue;
        }
      }
      requeue.push_back(next);
    }
    w.in_flight.reset();
    const bool clean = status.clean() && w.done_seen;
    if (!clean && !options.run.quiet) {
      std::cerr << "  shard worker died: " << describe_exit(status)
                << (reason.empty() ? "" : " — " + reason) << ", "
                << requeue.size() << " job(s) re-sharded\n";
    }
    if (requeue.empty()) return;
    if (restarts_used >= options.restart_budget) {
      for (const ShardTask& task : requeue) {
        JobFailure failure;
        failure.index = task.job_index;
        failure.tag = jobs[task.job_index].tag;
        JobFailure::Attempt attempt;
        attempt.what = "worker restart budget exhausted (" +
                       std::to_string(options.restart_budget) +
                       " respawns) — job not re-run";
        failure.history.push_back(attempt);
        failure.what = attempt.what;
        failure.attempts = 1;
        record_failure(std::move(failure));
      }
      return;
    }
    // Deterministic, jitter-free exponential backoff: respawn r waits
    // base << r (capped). Identical inputs replay identically.
    const std::uint64_t backoff = std::min<std::uint64_t>(
        options.backoff_base_ms << std::min(restarts_used, 5u), 2000);
    ipc::sleep_ms(backoff);
    ++restarts_used;
    spawn(std::move(requeue));
  };

  const auto handle_frames = [&](WorkerState& w) {
    ipc::Frame frame;
    while (true) {
      const ipc::FrameDecoder::Status status = w.decoder.next(frame);
      if (status == ipc::FrameDecoder::Status::kNeedMore) return true;
      if (status == ipc::FrameDecoder::Status::kCorrupt) return false;
      switch (frame.type) {
        case ipc::FrameType::kHello:
        case ipc::FrameType::kHeartbeat:
        case ipc::FrameType::kBlob:
          break;  // liveness only (kBlob is tool-level, never in sweeps)
        case ipc::FrameType::kJobStart: {
          std::string_view payload(frame.payload);
          std::uint64_t index = 0;
          if (!ipc::get_u64(payload, index)) return false;
          for (const ShardTask& task : w.tasks) {
            if (task.job_index == index) {
              w.in_flight = task;
              break;
            }
          }
          w.job_clock.restart();
          break;
        }
        case ipc::FrameType::kResult: {
          JournalEntry entry =
              decode_journal_line(frame.payload, jobs.size());
          if (entry.kind != JournalEntry::Kind::kOk) return false;
          w.finished.insert(entry.index);
          if (w.in_flight && w.in_flight->job_index == entry.index) {
            w.in_flight.reset();
          }
          record_result(std::move(entry.result));
          break;
        }
        case ipc::FrameType::kFailure: {
          JobFailure failure;
          if (!decode_failure_payload(frame.payload, failure)) return false;
          if (failure.index >= jobs.size()) return false;
          w.finished.insert(failure.index);
          if (w.in_flight && w.in_flight->job_index == failure.index) {
            w.in_flight.reset();
          }
          record_failure(std::move(failure));
          break;
        }
        case ipc::FrameType::kDone: {
          TraceCache::Stats stats;
          std::uint64_t rss_bytes = 0;
          if (!decode_done_payload(frame.payload, stats, rss_bytes)) {
            return false;
          }
          report.trace_cache.merge(stats);
          report.worker_rss_peak_bytes =
              std::max(report.worker_rss_peak_bytes, rss_bytes);
          w.done_seen = true;
          break;
        }
      }
    }
  };

  std::vector<int> fds;
  std::vector<std::size_t> fd_worker;
  std::vector<bool> ready;
  char buffer[4096];
  bool cancelled = false;
  while (true) {
    // Sweep-level cancel (the cpc_serve client vanished): the results so
    // far are journaled and valid; everything still running is abandoned by
    // killing the workers outright.
    if (!cancelled && options.run.cancel != nullptr &&
        options.run.cancel->load(std::memory_order_relaxed)) {
      cancelled = true;
      for (WorkerState& w : workers) {
        if (!w.alive) continue;
        ipc::kill_hard(w.child);
        // Reap only: the worker was just SIGKILLed, so its exit status
        // carries no information the journal doesn't already have.
        (void)ipc::wait_blocking(w.child);
        ipc::close_fd(w.child.read_fd);
        w.alive = false;
      }
      break;
    }
    fds.clear();
    fd_worker.clear();
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (workers[i].alive) {
        fds.push_back(workers[i].child.read_fd);
        fd_worker.push_back(i);
      }
    }
    if (fds.empty()) break;
    ipc::poll_readable(fds, 20, ready);

    for (std::size_t slot = 0; slot < fds.size(); ++slot) {
      if (!ready[slot]) continue;
      WorkerState& w = workers[fd_worker[slot]];
      if (!w.alive) continue;
      const long n = ipc::read_some(w.child.read_fd, buffer, sizeof(buffer));
      if (n > 0) {
        w.silence.restart();
        w.decoder.feed(buffer, static_cast<std::size_t>(n));
        if (!handle_frames(w)) {
          // Protocol corruption: the stream cannot be trusted; treat the
          // worker as crashed.
          ipc::kill_hard(w.child);
          const ipc::ExitStatus status = ipc::wait_blocking(w.child);
          handle_death(w, status, "corrupt result stream");
        }
      } else {
        // EOF (or read error): the worker is gone; classify via waitpid.
        const ipc::ExitStatus status = ipc::wait_blocking(w.child);
        handle_death(w, status, "");
      }
    }

    for (std::size_t i = 0; i < workers.size(); ++i) {
      WorkerState& w = workers[i];
      if (!w.alive) continue;
      const auto ms = [](const Stopwatch& clock) {
        return static_cast<std::uint64_t>(clock.seconds() * 1000.0);
      };
      if (options.silence_budget_ms > 0 &&
          ms(w.silence) > options.silence_budget_ms) {
        ipc::kill_hard(w.child);
        const ipc::ExitStatus status = ipc::wait_blocking(w.child);
        handle_death(w, status,
                     "no frames for " + std::to_string(ms(w.silence)) +
                         "ms (hung)");
        continue;
      }
      if (options.run.job_timeout_ms > 0 && w.in_flight &&
          ms(w.job_clock) >
              options.run.job_timeout_ms + options.kill_grace_ms) {
        ipc::kill_hard(w.child);
        const ipc::ExitStatus status = ipc::wait_blocking(w.child);
        handle_death(w, status,
                     "job exceeded wall-clock budget and the grace period");
      }
    }
  }

  // Safety net: a job neither reported nor requeued (sweep cancelled, or a
  // spawn failure with an exhausted budget) must still surface — zero
  // silently-lost jobs. Cancelled jobs are not journaled as failures by
  // this path being after the loop — record_failure journals them, which
  // is harmless: fail lines never restore, so a resume re-runs them.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (done[i]) continue;
    JobFailure failure;
    failure.index = i;
    failure.tag = jobs[i].tag;
    JobFailure::Attempt attempt;
    attempt.what = cancelled
                       ? "sweep cancelled before this job completed"
                       : "job was never executed (worker spawn failed)";
    failure.history.push_back(attempt);
    failure.what = attempt.what;
    record_failure(std::move(failure));
  }

  std::sort(report.failures.begin(), report.failures.end(),
            [](const JobFailure& a, const JobFailure& b) {
              return a.index < b.index;
            });
  report.worker_restarts = restarts_used;
  return report;
}

RunReport SweepRunner::run_sharded(std::vector<Job> jobs,
                                   const ShardOptions& options) const {
  return ShardSupervisor(options).run(std::move(jobs));
}

}  // namespace cpc::sim
