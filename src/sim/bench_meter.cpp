#include "sim/bench_meter.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <iterator>
#include <limits>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "cpu/trace_io.hpp"
#include "sim/shard_supervisor.hpp"
#include "sim/sweep_runner.hpp"

namespace cpc::sim {

// ---------------------------------------------------------------------------
// Timing primitives
// ---------------------------------------------------------------------------

namespace {
std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Stopwatch::Stopwatch() : origin_ns_(monotonic_ns()) {}

void Stopwatch::restart() { origin_ns_ = monotonic_ns(); }

double Stopwatch::seconds() const {
  return static_cast<double>(monotonic_ns() - origin_ns_) * 1e-9;
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  const auto maxrss_bytes = [](int who) -> std::uint64_t {
    struct rusage usage {};
    if (getrusage(who, &usage) != 0) return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
  };
  // RUSAGE_CHILDREN carries the largest maxrss among reaped children — the
  // fork()ed shard workers of a --procs sweep, which RUSAGE_SELF never sees.
  // The honest high-water mark of the process tree (largest single process)
  // is the max of the two; serial runs have no children and are unchanged.
  return std::max(maxrss_bytes(RUSAGE_SELF), maxrss_bytes(RUSAGE_CHILDREN));
#else
  return 0;
#endif
}

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::integer(std::uint64_t u) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = static_cast<double>(u);
  v.exact_ = u;
  v.has_exact_ = true;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonError("JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) throw JsonError("JSON value is not a number");
  return num_;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber) throw JsonError("JSON value is not a number");
  if (has_exact_) return exact_;
  if (num_ < 0 || std::floor(num_) != num_) {
    throw JsonError("JSON number is not an unsigned integer");
  }
  return static_cast<std::uint64_t>(num_);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw JsonError("JSON value is not a string");
  return str_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  throw JsonError("JSON value has no size");
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (kind_ != Kind::kArray) throw JsonError("JSON value is not an array");
  if (index >= arr_.size()) throw JsonError("JSON array index out of range");
  return arr_[index];
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) throw JsonError("JSON value is not an array");
  arr_.push_back(std::move(v));
}

const JsonValue& JsonValue::get(const std::string& key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) throw JsonError("missing JSON key '" + key + "'");
  return *found;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) throw JsonError("JSON value is not an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ != Kind::kObject) throw JsonError("JSON value is not an object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d, std::uint64_t exact,
                 bool has_exact) {
  char buf[40];
  if (has_exact) {
    auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), exact);
    (void)ec;
    out.append(buf, p);
    return;
  }
  if (!std::isfinite(d)) {
    out += "0";  // JSON has no inf/nan; timing fields never legitimately are
    return;
  }
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), d);  // shortest form
  (void)ec;
  out.append(buf, p);
}

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: dump_number(out, num_, exact_, has_exact_); return;
    case Kind::kString: dump_string(out, str_); return;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      // Arrays of scalars print inline; arrays with any composite print one
      // element per line (keeps job lists readable, repeat lists compact).
      const bool inline_ok =
          std::all_of(arr_.begin(), arr_.end(), [](const JsonValue& v) {
            return v.kind_ != Kind::kArray && v.kind_ != Kind::kObject;
          });
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        if (inline_ok) {
          if (i > 0) out += ' ';
        } else {
          out += '\n';
          indent(out, depth + 1);
        }
        arr_[i].dump_to(out, depth + 1);
      }
      if (!inline_ok) {
        out += '\n';
        indent(out, depth);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        out += '\n';
        indent(out, depth + 1);
        dump_string(out, obj_[i].first);
        out += ": ";
        obj_[i].second.dump_to(out, depth + 1);
      }
      out += '\n';
      indent(out, depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

// --- parser ----------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            // Reports only ever emit \u00XX control escapes; decode the
            // basic-multilingual-plane scalar as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a number");
    const std::string token = text_.substr(start, pos_ - start);
    if (integral && token[0] != '-') {
      std::uint64_t exact = 0;
      const auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), exact);
      if (ec == std::errc{} && p == token.data() + token.size()) {
        return JsonValue::integer(exact);
      }
    }
    double d = 0.0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc{} || p != token.data() + token.size()) {
      fail("malformed number '" + token + "'");
    }
    return JsonValue::number(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

std::uint64_t stats_fingerprint(const RunResult& run) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const cpu::CoreStats& core = run.core;
  const cache::HierarchyStats& hier = run.hierarchy;
#define CPC_SWEEP_COUNTER(group, field) fold(group.field);
#include "sim/sweep_counters.def"
#undef CPC_SWEEP_COUNTER
  fold(hier.traffic.fetch_half_units());
  fold(hier.traffic.writeback_half_units());
  return h;
}

// ---------------------------------------------------------------------------
// Report <-> JSON
// ---------------------------------------------------------------------------

namespace {

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_hex64(const std::string& s) {
  if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X')) {
    throw JsonError("expected 0x-prefixed fingerprint, got '" + s + "'");
  }
  std::uint64_t v = 0;
  const auto [p, ec] =
      std::from_chars(s.data() + 2, s.data() + s.size(), v, 16);
  if (ec != std::errc{} || p != s.data() + s.size()) {
    throw JsonError("malformed fingerprint '" + s + "'");
  }
  return v;
}

}  // namespace

double BenchSuiteResult::median_ops_per_second() const {
  if (repeat_ops_per_second.empty()) return ops_per_second;
  std::vector<double> sorted = repeat_ops_per_second;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

const BenchSuiteResult* BenchReport::find_suite(const std::string& name) const {
  for (const BenchSuiteResult& suite : suites) {
    if (suite.name == name) return &suite;
  }
  return nullptr;
}

JsonValue BenchReport::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("schema_version", JsonValue::integer(schema_version));
  root.set("mode", JsonValue::string(mode));
  root.set("threads", JsonValue::integer(threads));
  root.set("repeats", JsonValue::integer(repeats));
  root.set("rss_peak_bytes", JsonValue::integer(rss_peak_bytes));
  JsonValue suite_array = JsonValue::array();
  for (const BenchSuiteResult& suite : suites) {
    JsonValue s = JsonValue::object();
    s.set("name", JsonValue::string(suite.name));
    s.set("committed_total", JsonValue::integer(suite.committed_total));
    s.set("wall_seconds", JsonValue::number(suite.wall_seconds));
    s.set("ops_per_second", JsonValue::number(suite.ops_per_second));
    JsonValue repeats_arr = JsonValue::array();
    for (const double r : suite.repeat_ops_per_second) {
      repeats_arr.push_back(JsonValue::number(r));
    }
    s.set("repeat_ops_per_second", std::move(repeats_arr));
    JsonValue jobs_arr = JsonValue::array();
    for (const BenchJobRecord& job : suite.jobs) {
      JsonValue j = JsonValue::object();
      j.set("workload", JsonValue::string(job.workload));
      j.set("config", JsonValue::string(job.config));
      j.set("trace_ops", JsonValue::integer(job.trace_ops));
      j.set("seed", JsonValue::integer(job.seed));
      j.set("committed", JsonValue::integer(job.committed));
      j.set("cycles", JsonValue::integer(job.cycles));
      j.set("l1_misses", JsonValue::integer(job.l1_misses));
      j.set("l2_misses", JsonValue::integer(job.l2_misses));
      j.set("traffic_half_units", JsonValue::integer(job.traffic_half_units));
      j.set("fingerprint", JsonValue::string(hex64(job.fingerprint)));
      j.set("wall_seconds", JsonValue::number(job.wall_seconds));
      j.set("ops_per_second", JsonValue::number(job.ops_per_second));
      jobs_arr.push_back(std::move(j));
    }
    s.set("jobs", std::move(jobs_arr));
    suite_array.push_back(std::move(s));
  }
  root.set("suites", std::move(suite_array));
  return root;
}

BenchReport BenchReport::from_json(const JsonValue& root) {
  BenchReport report;
  const std::uint64_t version = root.get("schema_version").as_u64();
  if (version != kBenchSchemaVersion) {
    throw JsonError("unsupported benchmark schema version " +
                    std::to_string(version) + " (this build reads version " +
                    std::to_string(kBenchSchemaVersion) + ")");
  }
  report.schema_version = static_cast<std::uint32_t>(version);
  report.mode = root.get("mode").as_string();
  report.threads = static_cast<unsigned>(root.get("threads").as_u64());
  report.repeats = static_cast<unsigned>(root.get("repeats").as_u64());
  report.rss_peak_bytes = root.get("rss_peak_bytes").as_u64();
  const JsonValue& suite_array = root.get("suites");
  for (std::size_t i = 0; i < suite_array.size(); ++i) {
    const JsonValue& s = suite_array.at(i);
    BenchSuiteResult suite;
    suite.name = s.get("name").as_string();
    suite.committed_total = s.get("committed_total").as_u64();
    suite.wall_seconds = s.get("wall_seconds").as_double();
    suite.ops_per_second = s.get("ops_per_second").as_double();
    const JsonValue& repeats_arr = s.get("repeat_ops_per_second");
    for (std::size_t r = 0; r < repeats_arr.size(); ++r) {
      suite.repeat_ops_per_second.push_back(repeats_arr.at(r).as_double());
    }
    const JsonValue& jobs_arr = s.get("jobs");
    for (std::size_t j = 0; j < jobs_arr.size(); ++j) {
      const JsonValue& jv = jobs_arr.at(j);
      BenchJobRecord job;
      job.workload = jv.get("workload").as_string();
      job.config = jv.get("config").as_string();
      job.trace_ops = jv.get("trace_ops").as_u64();
      job.seed = jv.get("seed").as_u64();
      job.committed = jv.get("committed").as_u64();
      job.cycles = jv.get("cycles").as_u64();
      job.l1_misses = jv.get("l1_misses").as_u64();
      job.l2_misses = jv.get("l2_misses").as_u64();
      job.traffic_half_units = jv.get("traffic_half_units").as_u64();
      job.fingerprint = parse_hex64(jv.get("fingerprint").as_string());
      job.wall_seconds = jv.get("wall_seconds").as_double();
      job.ops_per_second = jv.get("ops_per_second").as_double();
      suite.jobs.push_back(std::move(job));
    }
    report.suites.push_back(std::move(suite));
  }
  return report;
}

void BenchReport::clear_timing_fields() {
  rss_peak_bytes = 0;
  for (BenchSuiteResult& suite : suites) {
    suite.wall_seconds = 0.0;
    suite.ops_per_second = 0.0;
    suite.repeat_ops_per_second.clear();
    for (BenchJobRecord& job : suite.jobs) {
      job.wall_seconds = 0.0;
      job.ops_per_second = 0.0;
    }
  }
}

// ---------------------------------------------------------------------------
// Suite execution
// ---------------------------------------------------------------------------

namespace {

struct SuitePlan {
  std::string name;
  /// Job identities: (display name, trace, seed) per workload; each is
  /// crossed with the five paper configurations.
  struct Input {
    std::string display;
    std::shared_ptr<const cpu::Trace> trace;
    std::uint64_t seed = 0;
  };
  std::vector<Input> inputs;
};

std::vector<Job> plan_jobs(const SuitePlan& plan,
                           const std::vector<compress::CodecKind>& codecs) {
  std::vector<Job> jobs;
  jobs.reserve(plan.inputs.size() * std::size(kAllConfigs) * codecs.size());
  for (const SuitePlan::Input& input : plan.inputs) {
    // Config-major, codec-minor — the same cell order as net::JobGrid and
    // the cpc_run / cpc_serve sweep executors.
    for (const ConfigKind kind : kAllConfigs) {
      for (const compress::CodecKind codec_kind : codecs) {
        const compress::Codec codec{codec_kind};
        Job job;
        job.trace = input.trace;
        job.trace_ops = input.trace->size();
        job.seed = input.seed;
        job.make_hierarchy = [kind, codec] {
          return make_hierarchy(kind, codec);
        };
        job.tag = config_codec_tag(kind, codec);
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

/// Runs one repeat of a suite and appends/validates its records.
void run_suite_once(const SweepRunner& runner, const SuitePlan& plan,
                    const std::vector<compress::CodecKind>& codecs,
                    BenchSuiteResult& suite, bool first_repeat, bool quiet,
                    unsigned procs) {
  std::vector<JobResult> results;
  if (procs > 0) {
    ShardOptions shard = ShardOptions::from_env();
    shard.procs = procs;
    shard.run.quiet = quiet;
    RunReport report = runner.run_sharded(plan_jobs(plan, codecs), shard);
    if (!report.failures.empty()) {
      // The benchmark contract is run()'s: any job failure is fatal.
      const JobFailure& failure = report.failures.front();
      throw std::runtime_error("sharded benchmark job " +
                               std::to_string(failure.index) + " (" +
                               failure.tag + ") failed: " + failure.what);
    }
    results = std::move(report.results);
  } else {
    results = runner.run(plan_jobs(plan, codecs), quiet);
  }

  std::uint64_t committed = 0;
  double wall = 0.0;
  const std::size_t per_input = std::size(kAllConfigs) * codecs.size();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResult& result = results[i];
    if (result.run.core.value_mismatches != 0) {
      throw std::runtime_error("benchmark run produced load-value mismatches in " +
                               plan.inputs[i / per_input].display + "/" +
                               result.tag);
    }
    committed += result.run.core.committed;
    wall += result.wall_seconds;

    BenchJobRecord record;
    record.workload = plan.inputs[i / per_input].display;
    // The grid-cell tag, not the hierarchy name: uncompressed configs keep
    // bare names under every codec, but their report rows must still be
    // distinguishable per cell. Under the paper codec the tag IS the
    // hierarchy name, so legacy reports are unchanged byte for byte.
    record.config = result.tag;
    record.trace_ops = plan.inputs[i / per_input].trace->size();
    record.seed = plan.inputs[i / per_input].seed;
    record.committed = result.run.core.committed;
    record.cycles = result.run.core.cycles;
    record.l1_misses = result.run.hierarchy.l1_misses;
    record.l2_misses = result.run.hierarchy.l2_misses;
    record.traffic_half_units = result.run.hierarchy.traffic.half_units();
    record.fingerprint = stats_fingerprint(result.run);
    record.wall_seconds = result.wall_seconds;
    record.ops_per_second = result.ops_per_second;

    if (first_repeat) {
      suite.jobs.push_back(std::move(record));
    } else {
      // Later repeats must reproduce every deterministic field bit-exactly —
      // a free cross-check that the simulator stayed deterministic.
      const BenchJobRecord& expect = suite.jobs[i];
      if (expect.fingerprint != record.fingerprint ||
          expect.committed != record.committed ||
          expect.cycles != record.cycles) {
        throw std::runtime_error(
            "non-deterministic simulation between benchmark repeats: " +
            record.workload + "/" + record.config);
      }
    }
  }
  if (first_repeat) suite.committed_total = committed;
  if (first_repeat) {
    suite.wall_seconds = wall;
    suite.ops_per_second =
        wall > 0.0 ? static_cast<double>(committed) / wall : 0.0;
  }
  suite.repeat_ops_per_second.push_back(
      wall > 0.0 ? static_cast<double>(committed) / wall : 0.0);
}

SuitePlan plan_kernel_suite(const BenchRunOptions& options) {
  SuitePlan plan;
  plan.name = "kernels";
  std::vector<workload::Workload> workloads;
  if (options.workloads.empty()) {
    workloads = workload::all_workloads();
  } else {
    for (const std::string& name : options.workloads) {
      workloads.push_back(workload::find_workload(name));
    }
  }
  for (const workload::Workload& wl : workloads) {
    SuitePlan::Input input;
    input.display = wl.name;
    input.seed = options.seed;
    input.trace = std::make_shared<const cpu::Trace>(
        workload::generate(wl, {options.trace_ops, options.seed}));
    plan.inputs.push_back(std::move(input));
  }
  return plan;
}

std::optional<SuitePlan> plan_corpus_suite(const BenchRunOptions& options) {
  namespace fs = std::filesystem;
  if (options.corpus_dir.empty()) return std::nullopt;
  std::error_code ec;
  if (!fs::is_directory(options.corpus_dir, ec)) return std::nullopt;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(options.corpus_dir, ec)) {
    if (entry.path().extension() == ".cpctrace") paths.push_back(entry.path());
  }
  if (ec || paths.empty()) return std::nullopt;
  std::sort(paths.begin(), paths.end());

  SuitePlan plan;
  plan.name = "corpus";
  for (const fs::path& path : paths) {
    SuitePlan::Input input;
    input.display = path.stem().string();
    input.seed = 0;
    input.trace = std::make_shared<const cpu::Trace>(
        cpu::read_trace_file(path.string()));
    plan.inputs.push_back(std::move(input));
  }
  return plan;
}

}  // namespace

BenchReport run_bench_suites(const BenchRunOptions& options) {
  BenchReport report;
  report.mode = options.mode;
  report.repeats = options.repeats == 0 ? 1 : options.repeats;

  const SweepRunner runner(options.threads);
  report.threads = runner.threads();

  std::vector<compress::CodecKind> codecs = options.codecs;
  if (codecs.empty()) codecs.push_back(compress::CodecKind::kPaper);

  std::vector<SuitePlan> plans;
  plans.push_back(plan_kernel_suite(options));
  if (std::optional<SuitePlan> corpus = plan_corpus_suite(options)) {
    plans.push_back(std::move(*corpus));
  } else if (!options.quiet) {
    std::cerr << "cpc_bench: no corpus at '" << options.corpus_dir
              << "' — skipping the corpus suite\n";
  }

  for (const SuitePlan& plan : plans) {
    BenchSuiteResult suite;
    suite.name = plan.name;
    for (unsigned repeat = 0; repeat < report.repeats; ++repeat) {
      if (!options.quiet) {
        std::cerr << "suite " << plan.name << ": repeat " << (repeat + 1) << "/"
                  << report.repeats << "\n";
      }
      run_suite_once(runner, plan, codecs, suite, repeat == 0, options.quiet,
                     options.procs);
    }
    report.suites.push_back(std::move(suite));
  }

  report.rss_peak_bytes = peak_rss_bytes();
  return report;
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

GateResult perf_gate(const BenchReport& baseline, const BenchReport& current,
                     double min_ratio) {
  GateResult gate;
  gate.worst_ratio = std::numeric_limits<double>::infinity();
  for (const BenchSuiteResult& base : baseline.suites) {
    const BenchSuiteResult* cur = current.find_suite(base.name);
    std::ostringstream line;
    line.precision(3);
    if (cur == nullptr) {
      line << base.name << ": MISSING from current report";
      gate.ok = false;
      gate.lines.push_back(line.str());
      continue;
    }
    const double base_ops = base.median_ops_per_second();
    const double cur_ops = cur->median_ops_per_second();
    if (base_ops <= 0.0) {
      line << base.name << ": baseline has no ops/sec — skipped";
      gate.lines.push_back(line.str());
      continue;
    }
    if (base.wall_seconds < kGateNoiseFloorSeconds) {
      line << base.name << ": baseline ran " << base.wall_seconds
           << "s, under the " << kGateNoiseFloorSeconds
           << "s noise floor — informational only";
      gate.lines.push_back(line.str());
      continue;
    }
    const double ratio = cur_ops / base_ops;
    gate.worst_ratio = std::min(gate.worst_ratio, ratio);
    const bool pass = ratio >= min_ratio;
    line << base.name << ": " << cur_ops << " ops/s vs baseline " << base_ops
         << " (" << ratio << "x, floor " << min_ratio << "x) "
         << (pass ? "PASS" : "FAIL");
    gate.lines.push_back(line.str());
    if (!pass) gate.ok = false;

    // Deterministic-field drift is informational: a behaviour-changing
    // commit re-blesses the baseline, the perf gate only guards speed.
    std::size_t drifted = 0;
    std::map<std::pair<std::string, std::string>, std::uint64_t> expected;
    for (const BenchJobRecord& job : base.jobs) {
      expected[{job.workload, job.config}] = job.fingerprint;
    }
    for (const BenchJobRecord& job : cur->jobs) {
      const auto it = expected.find({job.workload, job.config});
      if (it != expected.end() && it->second != job.fingerprint) ++drifted;
    }
    if (drifted > 0) {
      line.str("");
      gate.lines.push_back(base.name + ": " + std::to_string(drifted) +
                           " job fingerprint(s) drifted from the baseline — "
                           "simulation behaviour changed; re-bless with "
                           "cpc_bench --out if intended");
    }
  }
  if (gate.lines.empty()) {
    gate.lines.push_back("no comparable suites between baseline and current");
    gate.ok = false;
  }
  return gate;
}

}  // namespace cpc::sim
