#include "sim/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <future>
#include <iostream>
#include <list>
#include <thread>
#include <utility>

#include "sim/bench_meter.hpp"
#include "sim/journal.hpp"
#include "sim/trace_codec.hpp"

namespace cpc::sim {

unsigned default_job_count() {
  if (const char* env = std::getenv("CPC_JOBS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 4096) {
      return static_cast<unsigned>(value);
    }
    std::cerr << "warning: ignoring unparseable CPC_JOBS='" << env << "'\n";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct TraceCache::Entry {
  std::string name;
  std::uint64_t trace_ops = 0;
  std::uint64_t seed = 0;
  std::uint64_t last_use = 0;  ///< LRU clock value of the latest touch
  /// Decoded tier: null while generating or after demotion.
  std::shared_ptr<const cpu::Trace> decoded;
  /// Compressed tier: built once at generation time in bounded caches and
  /// kept until the whole entry is dropped. Shared so an on-demand decode
  /// can read the blob outside the lock while an eviction races it.
  std::shared_ptr<const std::vector<std::uint8_t>> compressed;
  /// In-flight generation; co-requesters wait here.
  std::shared_future<std::shared_ptr<const cpu::Trace>> future;
};

std::uint64_t TraceCache::capacity_from_env() {
  constexpr std::uint64_t kDefaultBytes = 512ull << 20;
  constexpr std::uint64_t kMaxMb = 1ull << 24;  // 16 TiB: shift cannot wrap
  if (const char* env = std::getenv("CPC_TRACE_CACHE_MB")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && value <= kMaxMb) {
      return static_cast<std::uint64_t>(value) << 20;  // 0 = unbounded
    }
    std::cerr << "warning: ignoring unparseable CPC_TRACE_CACHE_MB='" << env
              << "'\n";
  }
  return kDefaultBytes;
}

TraceCache::TraceCache() : TraceCache(capacity_from_env()) {}
TraceCache::TraceCache(std::uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}
TraceCache::~TraceCache() = default;

void TraceCache::Stats::merge(const Stats& other) {
  hits += other.hits;
  compressed_hits += other.compressed_hits;
  misses += other.misses;
  evictions += other.evictions;
  compressed_evictions += other.compressed_evictions;
  decoded_bytes += other.decoded_bytes;
  compressed_bytes += other.compressed_bytes;
}

TraceCache::Stats TraceCache::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

TraceCache::Entry* TraceCache::find_locked(const workload::Workload& workload,
                                           std::uint64_t trace_ops,
                                           std::uint64_t seed) {
  for (const auto& entry : entries_) {
    if (entry->name == workload.name && entry->trace_ops == trace_ops &&
        entry->seed == seed) {
      return entry.get();
    }
  }
  return nullptr;
}

void TraceCache::enforce_budget_locked() {
  if (capacity_bytes_ == 0) return;
  // Demotions first — cheap, the compressed sidecar already exists. The
  // entry just touched carries the newest tick, so it is demoted last.
  while (stats_.decoded_bytes + stats_.compressed_bytes > capacity_bytes_) {
    Entry* victim = nullptr;
    for (const auto& entry : entries_) {
      if (!entry->decoded) continue;
      if (victim == nullptr || entry->last_use < victim->last_use) {
        victim = entry.get();
      }
    }
    if (victim == nullptr) break;  // nothing left to demote
    stats_.decoded_bytes -=
        victim->decoded->size() * sizeof(cpu::MicroOp);
    victim->decoded.reset();
    ++stats_.evictions;
  }
  // Still over (the blobs alone exceed the cap): drop whole LRU entries;
  // their traces regenerate from the workload on the next request.
  while (stats_.compressed_bytes > capacity_bytes_) {
    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& entry = *entries_[i];
      if (entry.decoded || !entry.compressed) continue;  // hot or in flight
      if (victim == entries_.size() ||
          entry.last_use < entries_[victim]->last_use) {
        victim = i;
      }
    }
    if (victim == entries_.size()) break;
    stats_.compressed_bytes -= entries_[victim]->compressed->size();
    ++stats_.compressed_evictions;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
}

std::shared_ptr<const cpu::Trace> TraceCache::get(
    const workload::Workload& workload, std::uint64_t trace_ops,
    std::uint64_t seed) {
  std::promise<std::shared_ptr<const cpu::Trace>> promise;
  std::shared_future<std::shared_ptr<const cpu::Trace>> in_flight;
  std::shared_ptr<const std::vector<std::uint8_t>> blob;
  {
    const MutexLock lock(mutex_);
    ++tick_;
    if (Entry* entry = find_locked(workload, trace_ops, seed)) {
      entry->last_use = tick_;
      if (entry->decoded) {
        ++stats_.hits;
        return entry->decoded;
      }
      if (entry->compressed) {
        ++stats_.compressed_hits;
        blob = entry->compressed;  // decode on demand, outside the lock
      } else {
        ++stats_.hits;  // generation in flight; join it below
        in_flight = entry->future;
      }
    } else {
      ++stats_.misses;
      auto fresh = std::make_unique<Entry>();
      fresh->name = workload.name;
      fresh->trace_ops = trace_ops;
      fresh->seed = seed;
      fresh->last_use = tick_;
      fresh->future = promise.get_future().share();
      entries_.push_back(std::move(fresh));
    }
  }
  if (in_flight.valid()) return in_flight.get();  // wait outside the lock
  if (blob) {
    auto trace =
        std::make_shared<const cpu::Trace>(trace_codec::decompress(*blob));
    const MutexLock lock(mutex_);
    if (Entry* entry = find_locked(workload, trace_ops, seed)) {
      if (!entry->decoded) {  // promote (a racing decode may have won)
        entry->decoded = trace;
        stats_.decoded_bytes += trace->size() * sizeof(cpu::MicroOp);
        enforce_budget_locked();
      }
      entry->last_use = tick_;
    }
    return trace;
  }
  // First requester generates outside the lock; co-waiters block on the
  // shared_future instead of regenerating.
  try {
    auto trace = std::make_shared<const cpu::Trace>(
        workload::generate(workload, {trace_ops, seed}));
    std::shared_ptr<const std::vector<std::uint8_t>> compressed;
    if (capacity_bytes_ != 0) {
      compressed = std::make_shared<const std::vector<std::uint8_t>>(
          trace_codec::compress(*trace));
    }
    {
      const MutexLock lock(mutex_);
      if (Entry* entry = find_locked(workload, trace_ops, seed)) {
        entry->decoded = trace;
        entry->compressed = std::move(compressed);
        entry->last_use = tick_;
        stats_.decoded_bytes += trace->size() * sizeof(cpu::MicroOp);
        if (entry->compressed) {
          stats_.compressed_bytes += entry->compressed->size();
        }
        enforce_budget_locked();
      }
    }
    promise.set_value(trace);
    return trace;
  } catch (...) {
    promise.set_exception(std::current_exception());
    throw;
  }
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads == 0 ? default_job_count() : threads) {}

void SweepRunner::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(count);

  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (failed.load(std::memory_order_relaxed)) continue;  // drain remaining
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t pool_size =
      std::min<std::size_t>(threads_, count);
  if (pool_size <= 1) {
    worker();  // strictly serial on the calling thread (CPC_JOBS=1)
  } else {
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

namespace {

/// One background thread that raises per-job cancel flags when their
/// wall-clock deadline passes. Jobs register/deregister around each
/// attempt; the simulation notices the flag cooperatively.
///
/// Shared state (the deadline list and the stop flag) is CPC_GUARDED_BY the
/// watchdog mutex; the clang thread-safety build proves every touch happens
/// under it. The cancel flags themselves are atomics owned by the jobs.
class Watchdog {
 public:
  explicit Watchdog(std::chrono::milliseconds budget) : budget_(budget) {
    if (budget_.count() > 0) thread_ = std::thread([this] { loop(); });
  }

  ~Watchdog() {
    {
      const MutexLock lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  bool enabled() const { return budget_.count() > 0; }

  class Scope {
   public:
    Scope(Watchdog& dog, std::atomic<bool>* flag) : dog_(dog) {
      if (dog_.enabled()) {
        const MutexLock lock(dog_.mutex_);
        it_ = dog_.entries_.insert(
            dog_.entries_.end(),
            {std::chrono::steady_clock::now() + dog_.budget_, flag});
        armed_ = true;
      }
    }
    ~Scope() {
      if (armed_) {
        const MutexLock lock(dog_.mutex_);
        dog_.entries_.erase(it_);
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Watchdog& dog_;
    std::list<std::pair<std::chrono::steady_clock::time_point,
                        std::atomic<bool>*>>::iterator it_;
    bool armed_ = false;
  };

 private:
  void loop() {
    const MutexLock lock(mutex_);
    while (!stop_) {
      cv_.wait_for(mutex_, std::chrono::milliseconds(10));
      const auto now = std::chrono::steady_clock::now();
      for (auto& [deadline, flag] : entries_) {
        if (now >= deadline) flag->store(true, std::memory_order_relaxed);
      }
    }
  }

  std::chrono::milliseconds budget_;
  Mutex mutex_;
  CondVar cv_;
  std::list<std::pair<std::chrono::steady_clock::time_point, std::atomic<bool>*>>
      entries_ CPC_GUARDED_BY(mutex_);
  bool stop_ CPC_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

/// The body both run() and run_contained() share: one complete simulation
/// of jobs[i] into results-slot `out`.
void execute_job(const Job& job, std::size_t i, TraceCache& traces,
                 JobResult& out) {
  out.index = i;
  out.tag = job.tag;
  const std::shared_ptr<const cpu::Trace> trace =
      job.trace ? job.trace : traces.get(job.workload, job.trace_ops, job.seed);

  auto hierarchy = job.make_hierarchy();
  const Stopwatch timer;
  out.run = run_trace_on(*trace, *hierarchy, job.core_config);
  out.wall_seconds = timer.seconds();
  out.ops_per_second =
      out.wall_seconds > 0.0
          ? static_cast<double>(out.run.core.committed) / out.wall_seconds
          : 0.0;
  out.hierarchy = std::move(hierarchy);
  out.ok = true;
}

}  // namespace

RunOptions RunOptions::from_env() {
  RunOptions options;
  if (const char* env = std::getenv("CPC_JOB_TIMEOUT_MS")) {
    options.job_timeout_ms = std::strtoull(env, nullptr, 10);
  }
  return options;
}

std::vector<JobResult> SweepRunner::run(std::vector<Job> jobs,
                                        bool quiet) const {
  std::vector<JobResult> results(jobs.size());
  TraceCache traces;
  std::atomic<std::size_t> completed{0};
  Mutex log_mutex;

  parallel_for(jobs.size(), [&](std::size_t i) {
    const Job& job = jobs[i];
    JobResult& out = results[i];
    execute_job(job, i, traces, out);

    const std::size_t done = completed.fetch_add(1) + 1;
    if (!quiet) {
      const MutexLock lock(log_mutex);
      std::cerr << "  [" << done << "/" << jobs.size() << "] "
                << (job.workload.name.empty() ? "<trace>" : job.workload.name)
                << "/" << out.run.config << ": " << out.run.core.cycles
                << " cycles (" << out.wall_seconds << "s)\n";
    }
  });
  return results;
}

RunReport SweepRunner::run_contained(std::vector<Job> jobs,
                                     const RunOptions& options) const {
  RunReport report;
  report.results.resize(jobs.size());

  // Journal restore: completed jobs of a previous (killed) invocation of
  // the same grid are taken as-is and never re-simulated.
  std::vector<bool> restored(jobs.size(), false);
  std::unique_ptr<SweepJournal> journal;
  if (!options.journal_path.empty()) {
    const std::uint64_t fingerprint = grid_fingerprint(jobs);
    SweepJournal::Restored prior =
        SweepJournal::load(options.journal_path, fingerprint, jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (prior.results[i]) {
        report.results[i] = std::move(*prior.results[i]);
        restored[i] = true;
      }
    }
    report.resumed = prior.restored_ok;
    journal = std::make_unique<SweepJournal>(options.journal_path, fingerprint,
                                             jobs.size(),
                                             /*append=*/prior.header_matched);
    if (!options.quiet && report.resumed > 0) {
      std::cerr << "  resuming: " << report.resumed << "/" << jobs.size()
                << " jobs restored from " << options.journal_path << "\n";
    }
  }

  TraceCache traces;
  Watchdog watchdog(std::chrono::milliseconds(options.job_timeout_ms));
  std::atomic<std::size_t> completed{static_cast<std::size_t>(report.resumed)};
  Mutex log_mutex;
  Mutex failures_mutex;

  parallel_for(jobs.size(), [&](std::size_t i) {
    if (restored[i]) return;
    const Job& job = jobs[i];
    JobResult& out = report.results[i];

    JobFailure failure;
    failure.index = i;
    failure.tag = job.tag;
    const unsigned attempts = 1 + options.retries;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
      JobFailure::Attempt record;
      std::atomic<bool> cancel{false};
      Job guarded = job;  // per-attempt cancel wiring; the job stays const
      guarded.core_config.cancel = watchdog.enabled() ? &cancel : nullptr;
      try {
        const Watchdog::Scope scope(watchdog, &cancel);
        out = JobResult{};  // retries must not inherit a partial result
        execute_job(guarded, i, traces, out);
        break;
      } catch (const InvariantViolation& violation) {
        record.what = violation.what();
        record.diagnostic = violation.diagnostic();
      } catch (const cpu::SimulationCancelled& cancelled) {
        record.what = cancelled.what();
        record.timed_out = true;
      } catch (const std::exception& error) {
        record.what = error.what();
      } catch (...) {
        record.what = "unknown exception";
      }
      // Every failing attempt is appended; the primary fields below report
      // the first one, so a retry that fails differently (e.g. watchdog
      // trip, then a clean error) cannot overwrite the root cause.
      failure.history.push_back(std::move(record));
    }
    if (!out.ok && !failure.history.empty()) {
      const JobFailure::Attempt& first = failure.history.front();
      failure.what = first.what;
      failure.timed_out = first.timed_out;
      failure.diagnostic = first.diagnostic;
      failure.attempts = static_cast<unsigned>(failure.history.size());
    }

    const std::size_t done = completed.fetch_add(1) + 1;
    if (out.ok) {
      if (journal) journal->record_ok(out);
      if (!options.quiet) {
        const MutexLock lock(log_mutex);
        std::cerr << "  [" << done << "/" << jobs.size() << "] "
                  << (job.workload.name.empty() ? "<trace>" : job.workload.name)
                  << "/" << out.run.config << ": " << out.run.core.cycles
                  << " cycles (" << out.wall_seconds << "s)\n";
      }
    } else {
      if (journal) journal->record_failure(i, failure.what);
      if (!options.quiet) {
        const MutexLock lock(log_mutex);
        std::cerr << "  [" << done << "/" << jobs.size() << "] job " << i << " ("
                  << (failure.tag.empty() ? "untagged" : failure.tag)
                  << ") FAILED after " << failure.attempts
                  << " attempt(s): " << failure.what << "\n";
      }
      const MutexLock lock(failures_mutex);
      report.failures.push_back(std::move(failure));
    }
  });

  std::sort(report.failures.begin(), report.failures.end(),
            [](const JobFailure& a, const JobFailure& b) { return a.index < b.index; });
  report.trace_cache = traces.stats();
  return report;
}

}  // namespace cpc::sim
