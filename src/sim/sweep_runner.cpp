#include "sim/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <exception>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <list>
#include <thread>
#include <utility>

#include "sim/bench_meter.hpp"
#include "sim/ipc.hpp"
#include "sim/journal.hpp"
#include "sim/trace_codec.hpp"

namespace cpc::sim {

unsigned default_job_count() {
  if (const char* env = std::getenv("CPC_JOBS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 4096) {
      return static_cast<unsigned>(value);
    }
    std::cerr << "warning: ignoring unparseable CPC_JOBS='" << env << "'\n";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct TraceCache::Entry {
  std::string name;
  std::uint64_t trace_ops = 0;
  std::uint64_t seed = 0;
  std::uint64_t last_use = 0;  ///< LRU clock value of the latest touch
  /// Decoded tier: null while generating or after demotion.
  std::shared_ptr<const cpu::Trace> decoded;
  /// Compressed tier: built once at generation time in bounded caches and
  /// kept until the whole entry is dropped. Shared so an on-demand decode
  /// can read the blob outside the lock while an eviction races it.
  std::shared_ptr<const std::vector<std::uint8_t>> compressed;
  /// In-flight generation; co-requesters wait here.
  std::shared_future<std::shared_ptr<const cpu::Trace>> future;
};

std::uint64_t TraceCache::capacity_from_env() {
  constexpr std::uint64_t kDefaultBytes = 512ull << 20;
  constexpr std::uint64_t kMaxMb = 1ull << 24;  // 16 TiB: shift cannot wrap
  if (const char* env = std::getenv("CPC_TRACE_CACHE_MB")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && value <= kMaxMb) {
      return static_cast<std::uint64_t>(value) << 20;  // 0 = unbounded
    }
    std::cerr << "warning: ignoring unparseable CPC_TRACE_CACHE_MB='" << env
              << "'\n";
  }
  return kDefaultBytes;
}

TraceCache::SpillConfig TraceCache::spill_from_env() {
  SpillConfig spill;
  if (const char* env = std::getenv("CPC_TRACE_SPILL_DIR")) {
    spill.dir = env;
  }
  if (spill.dir.empty()) return spill;
  if (const char* env = std::getenv("CPC_TRACE_SPILL_MB")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    constexpr std::uint64_t kMaxMb = 1ull << 24;  // 16 TiB: shift cannot wrap
    if (end != env && *end == '\0' && value <= kMaxMb) {
      spill.capacity_bytes = static_cast<std::uint64_t>(value) << 20;
    } else {
      std::cerr << "warning: ignoring unparseable CPC_TRACE_SPILL_MB='" << env
                << "'\n";
    }
  }
  return spill;
}

TraceCache::TraceCache() : TraceCache(capacity_from_env(), spill_from_env()) {}
TraceCache::TraceCache(std::uint64_t capacity_bytes)
    : TraceCache(capacity_bytes, SpillConfig{}) {}
TraceCache::TraceCache(std::uint64_t capacity_bytes, SpillConfig spill)
    : capacity_bytes_(capacity_bytes), spill_(std::move(spill)) {
  if (!spill_.dir.empty()) scan_spill_dir();
}
void TraceCache::Stats::merge(const Stats& other) {
  hits += other.hits;
  compressed_hits += other.compressed_hits;
  misses += other.misses;
  evictions += other.evictions;
  compressed_evictions += other.compressed_evictions;
  decoded_bytes += other.decoded_bytes;
  compressed_bytes += other.compressed_bytes;
  spill_writes += other.spill_writes;
  spill_hits += other.spill_hits;
  // A gauge, not a counter: every cache sharing CPC_TRACE_SPILL_DIR (shard
  // workers, supervisor) observes the same directory footprint, so summing
  // would over-report it once per worker.
  spill_bytes = std::max(spill_bytes, other.spill_bytes);
  spill_drops += other.spill_drops;
  spill_quarantined += other.spill_quarantined;
}

TraceCache::Stats TraceCache::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Disk spill tier
//
// File layout: "CPCS" magic, version byte, then (key hash, blob size, blob
// CRC32) as little-endian u64 fields, then the trace_codec blob. Every
// reload re-verifies all three before the blob is trusted; a mismatch
// quarantines the file (renamed `.quarantined`) instead of deleting it, so
// a corrupt blob stays available for post-mortem. Files are named
// `<seq>-<hash16>.spill` — the monotonic sequence number doubles as the
// eviction order (oldest write evicts first), deliberately avoiding mtime
// so no wall clock is read (CPC-L001/L008).
// ---------------------------------------------------------------------------

namespace {

constexpr char kSpillMagic[4] = {'C', 'P', 'C', 'S'};
constexpr char kSpillVersion = 1;

/// FNV-1a over the cache key; names the spill file and is embedded in it.
std::uint64_t spill_key_hash(const std::string& name, std::uint64_t trace_ops,
                             std::uint64_t seed) {
  std::uint64_t hash = 14695981039346656037ull;
  const auto mix_byte = [&hash](unsigned char byte) {
    hash ^= byte;
    hash *= 1099511628211ull;
  };
  for (const char c : name) mix_byte(static_cast<unsigned char>(c));
  mix_byte(0xff);  // separator: the name can never collide into the ints
  for (int shift = 0; shift < 64; shift += 8) {
    mix_byte(static_cast<unsigned char>((trace_ops >> shift) & 0xff));
  }
  for (int shift = 0; shift < 64; shift += 8) {
    mix_byte(static_cast<unsigned char>((seed >> shift) & 0xff));
  }
  return hash;
}

std::string spill_hash_hex(std::uint64_t hash) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  return hex;
}

/// Parses `<seq>-<hash16>.spill`; false for any other file name.
bool parse_spill_name(const std::string& name, std::uint64_t& seq,
                      std::uint64_t& hash) {
  const std::string suffix = ".spill";
  if (name.size() < suffix.size() + 18 ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::size_t dash = name.find('-');
  if (dash == std::string::npos ||
      name.size() - suffix.size() - (dash + 1) != 16) {
    return false;
  }
  char* end = nullptr;
  seq = std::strtoull(name.c_str(), &end, 10);
  if (end != name.c_str() + dash) return false;
  hash = std::strtoull(name.c_str() + dash + 1, &end, 16);
  return end == name.c_str() + name.size() - suffix.size();
}

}  // namespace

void TraceCache::scan_spill_dir() {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(spill_.dir, ec);
  if (ec) {
    std::cerr << "warning: cannot create trace spill dir '" << spill_.dir
              << "': " << ec.message() << "\n";
    return;
  }
  std::vector<SpillFile> found;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(spill_.dir, ec)) {
    if (ec) break;
    std::error_code file_ec;
    if (!entry.is_regular_file(file_ec)) continue;
    SpillFile file;
    if (!parse_spill_name(entry.path().filename().string(), file.seq,
                          file.key_hash)) {
      continue;  // .tmp leftovers, .quarantined files, strangers
    }
    file.bytes = static_cast<std::uint64_t>(entry.file_size(file_ec));
    if (file_ec) continue;
    file.path = entry.path().string();
    found.push_back(std::move(file));
  }
  // Oldest first, so a duplicated key (two sharded writers racing) keeps
  // its first copy and the index rebuild is deterministic.
  std::sort(found.begin(), found.end(),
            [](const SpillFile& a, const SpillFile& b) { return a.seq < b.seq; });
  const MutexLock lock(mutex_);
  for (SpillFile& file : found) {
    bool duplicate = false;
    for (const SpillFile& have : spill_index_) {
      if (have.key_hash == file.key_hash) {
        duplicate = true;
        break;
      }
    }
    spill_seq_ = std::max(spill_seq_, file.seq + 1);
    if (duplicate) continue;
    stats_.spill_bytes += file.bytes;
    spill_index_.push_back(std::move(file));
  }
}

TraceCache::~TraceCache() {
  // A dying cache donates its surviving blobs to the disk tier: every sweep
  // gets a fresh TraceCache (and every shard worker its own), so without
  // this flush a long-lived daemon would only spill under memory pressure
  // and each new submission would regenerate every trace from scratch. The
  // store below dedups against keys already on disk and respects the cap.
  const MutexLock lock(mutex_);
  if (spill_.dir.empty()) return;
  for (const auto& entry : entries_) {
    if (!entry->compressed) continue;
    spill_store_locked(
        spill_key_hash(entry->name, entry->trace_ops, entry->seed),
        *entry->compressed);
  }
}

void TraceCache::spill_store_locked(std::uint64_t key_hash,
                                    const std::vector<std::uint8_t>& blob) {
  if (spill_.dir.empty()) return;
  for (const SpillFile& have : spill_index_) {
    if (have.key_hash == key_hash) return;  // already on disk (deterministic)
  }
  std::string payload;
  payload.append(kSpillMagic, sizeof(kSpillMagic));
  payload.push_back(kSpillVersion);
  ipc::put_u64(payload, key_hash);
  ipc::put_u64(payload, blob.size());
  ipc::put_u64(payload, ipc::crc32(std::string_view(
                            reinterpret_cast<const char*>(blob.data()),
                            blob.size())));
  payload.append(reinterpret_cast<const char*>(blob.data()), blob.size());

  const std::uint64_t cap = spill_.capacity_bytes;
  if (cap != 0 && payload.size() > cap) {
    ++stats_.spill_drops;  // a blob the whole tier cannot hold
    return;
  }
  // Evict oldest writes until the new file fits the cap.
  namespace fs = std::filesystem;
  while (cap != 0 && !spill_index_.empty() &&
         stats_.spill_bytes + payload.size() > cap) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < spill_index_.size(); ++i) {
      if (spill_index_[i].seq < spill_index_[victim].seq) victim = i;
    }
    std::error_code ec;
    fs::remove(spill_index_[victim].path, ec);
    stats_.spill_bytes -= spill_index_[victim].bytes;
    ++stats_.spill_drops;
    spill_index_.erase(spill_index_.begin() +
                       static_cast<std::ptrdiff_t>(victim));
  }

  SpillFile file;
  file.key_hash = key_hash;
  file.seq = spill_seq_++;
  file.bytes = payload.size();
  file.path = spill_.dir + "/" + std::to_string(file.seq) + "-" +
              spill_hash_hex(key_hash) + ".spill";
  // Write-then-rename: a reader (this process or a sibling shard worker
  // sharing the directory) never sees a half-written file.
  const std::string tmp = file.path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out.good()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      ++stats_.spill_drops;
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, file.path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    ++stats_.spill_drops;
    return;
  }
  stats_.spill_bytes += file.bytes;
  ++stats_.spill_writes;
  spill_index_.push_back(std::move(file));
}

bool TraceCache::spill_lookup_locked(std::uint64_t key_hash,
                                     std::string& path) {
  for (const SpillFile& file : spill_index_) {
    if (file.key_hash == key_hash) {
      path = file.path;
      return true;
    }
  }
  return false;
}

void TraceCache::spill_forget_locked(const std::string& path) {
  for (std::size_t i = 0; i < spill_index_.size(); ++i) {
    if (spill_index_[i].path == path) {
      stats_.spill_bytes -= spill_index_[i].bytes;
      spill_index_.erase(spill_index_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::shared_ptr<const std::vector<std::uint8_t>> TraceCache::spill_load(
    std::uint64_t key_hash, const std::string& path) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      // Racing delete by a sibling process (or cap eviction): an ordinary
      // miss, not corruption.
      const MutexLock lock(mutex_);
      spill_forget_locked(path);
      return nullptr;
    }
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const auto quarantine = [&] {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::rename(path, path + ".quarantined", ec);
    const MutexLock lock(mutex_);
    spill_forget_locked(path);
    ++stats_.spill_quarantined;
    std::cerr << "warning: quarantined corrupt trace spill file " << path
              << "\n";
    return nullptr;
  };
  if (bytes.size() < sizeof(kSpillMagic) + 1 ||
      std::memcmp(bytes.data(), kSpillMagic, sizeof(kSpillMagic)) != 0 ||
      bytes[sizeof(kSpillMagic)] != kSpillVersion) {
    return quarantine();
  }
  std::string_view in(bytes);
  in.remove_prefix(sizeof(kSpillMagic) + 1);
  std::uint64_t stored_hash = 0, blob_size = 0, blob_crc = 0;
  if (!ipc::get_u64(in, stored_hash) || !ipc::get_u64(in, blob_size) ||
      !ipc::get_u64(in, blob_crc) || stored_hash != key_hash ||
      blob_size != in.size() || ipc::crc32(in) != blob_crc) {
    return quarantine();
  }
  return std::make_shared<const std::vector<std::uint8_t>>(
      reinterpret_cast<const std::uint8_t*>(in.data()),
      reinterpret_cast<const std::uint8_t*>(in.data()) + in.size());
}

TraceCache::Entry* TraceCache::find_locked(const workload::Workload& workload,
                                           std::uint64_t trace_ops,
                                           std::uint64_t seed) {
  for (const auto& entry : entries_) {
    if (entry->name == workload.name && entry->trace_ops == trace_ops &&
        entry->seed == seed) {
      return entry.get();
    }
  }
  return nullptr;
}

void TraceCache::enforce_budget_locked() {
  if (capacity_bytes_ == 0) return;
  // Demotions first — cheap, the compressed sidecar already exists. The
  // entry just touched carries the newest tick, so it is demoted last.
  while (stats_.decoded_bytes + stats_.compressed_bytes > capacity_bytes_) {
    Entry* victim = nullptr;
    for (const auto& entry : entries_) {
      if (!entry->decoded) continue;
      if (victim == nullptr || entry->last_use < victim->last_use) {
        victim = entry.get();
      }
    }
    if (victim == nullptr) break;  // nothing left to demote
    stats_.decoded_bytes -=
        victim->decoded->size() * sizeof(cpu::MicroOp);
    victim->decoded.reset();
    ++stats_.evictions;
  }
  // Still over (the blobs alone exceed the cap): drop whole LRU entries.
  // With a spill tier the dropped blob goes to disk first and reloads
  // CRC-verified on the next request; without one it regenerates from the
  // workload.
  while (stats_.compressed_bytes > capacity_bytes_) {
    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& entry = *entries_[i];
      if (entry.decoded || !entry.compressed) continue;  // hot or in flight
      if (victim == entries_.size() ||
          entry.last_use < entries_[victim]->last_use) {
        victim = i;
      }
    }
    if (victim == entries_.size()) break;
    if (!spill_.dir.empty()) {
      const Entry& doomed = *entries_[victim];
      spill_store_locked(
          spill_key_hash(doomed.name, doomed.trace_ops, doomed.seed),
          *doomed.compressed);
    }
    stats_.compressed_bytes -= entries_[victim]->compressed->size();
    ++stats_.compressed_evictions;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
}

std::shared_ptr<const cpu::Trace> TraceCache::get(
    const workload::Workload& workload, std::uint64_t trace_ops,
    std::uint64_t seed) {
  std::promise<std::shared_ptr<const cpu::Trace>> promise;
  std::shared_future<std::shared_ptr<const cpu::Trace>> in_flight;
  std::shared_ptr<const std::vector<std::uint8_t>> blob;
  const std::uint64_t key_hash =
      spill_.dir.empty() ? 0 : spill_key_hash(workload.name, trace_ops, seed);
  std::string spilled_path;
  bool try_spill = false;
  {
    const MutexLock lock(mutex_);
    ++tick_;
    if (Entry* entry = find_locked(workload, trace_ops, seed)) {
      entry->last_use = tick_;
      if (entry->decoded) {
        ++stats_.hits;
        return entry->decoded;
      }
      if (entry->compressed) {
        ++stats_.compressed_hits;
        blob = entry->compressed;  // decode on demand, outside the lock
      } else {
        ++stats_.hits;  // generation in flight; join it below
        in_flight = entry->future;
      }
    } else {
      ++stats_.misses;
      auto fresh = std::make_unique<Entry>();
      fresh->name = workload.name;
      fresh->trace_ops = trace_ops;
      fresh->seed = seed;
      fresh->last_use = tick_;
      fresh->future = promise.get_future().share();
      entries_.push_back(std::move(fresh));
      if (!spill_.dir.empty()) {
        try_spill = spill_lookup_locked(key_hash, spilled_path);
      }
    }
  }
  if (in_flight.valid()) return in_flight.get();  // wait outside the lock
  if (blob) {
    auto trace =
        std::make_shared<const cpu::Trace>(trace_codec::decompress(*blob));
    const MutexLock lock(mutex_);
    if (Entry* entry = find_locked(workload, trace_ops, seed)) {
      if (!entry->decoded) {  // promote (a racing decode may have won)
        entry->decoded = trace;
        stats_.decoded_bytes += trace->size() * sizeof(cpu::MicroOp);
        enforce_budget_locked();
      }
      entry->last_use = tick_;
    }
    return trace;
  }
  // First requester resolves outside the lock; co-waiters block on the
  // shared_future instead of regenerating. A spilled blob is tried first —
  // on any verification or decode failure the file is quarantined and the
  // trace regenerates from the workload as if the spill never existed.
  if (try_spill) {
    if (auto candidate = spill_load(key_hash, spilled_path)) {
      try {
        auto trace = std::make_shared<const cpu::Trace>(
            trace_codec::decompress(*candidate));
        {
          const MutexLock lock(mutex_);
          // A spill hit is not a miss: the registration above charged one.
          --stats_.misses;
          ++stats_.spill_hits;
          if (Entry* entry = find_locked(workload, trace_ops, seed)) {
            entry->decoded = trace;
            if (capacity_bytes_ != 0) entry->compressed = candidate;
            entry->last_use = tick_;
            stats_.decoded_bytes += trace->size() * sizeof(cpu::MicroOp);
            if (entry->compressed) {
              stats_.compressed_bytes += entry->compressed->size();
            }
            enforce_budget_locked();
          }
        }
        promise.set_value(trace);
        return trace;
      } catch (const std::exception&) {
        // The header and CRC matched but the blob does not decode: treat
        // exactly like any other corruption.
        namespace fs = std::filesystem;
        std::error_code ec;
        fs::rename(spilled_path, spilled_path + ".quarantined", ec);
        const MutexLock lock(mutex_);
        spill_forget_locked(spilled_path);
        ++stats_.spill_quarantined;
        std::cerr << "warning: quarantined undecodable trace spill file "
                  << spilled_path << "\n";
      }
    }
  }
  try {
    auto trace = std::make_shared<const cpu::Trace>(
        workload::generate(workload, {trace_ops, seed}));
    std::shared_ptr<const std::vector<std::uint8_t>> compressed;
    if (capacity_bytes_ != 0) {
      compressed = std::make_shared<const std::vector<std::uint8_t>>(
          trace_codec::compress(*trace));
    }
    {
      const MutexLock lock(mutex_);
      if (Entry* entry = find_locked(workload, trace_ops, seed)) {
        entry->decoded = trace;
        entry->compressed = std::move(compressed);
        entry->last_use = tick_;
        stats_.decoded_bytes += trace->size() * sizeof(cpu::MicroOp);
        if (entry->compressed) {
          stats_.compressed_bytes += entry->compressed->size();
        }
        enforce_budget_locked();
      }
    }
    promise.set_value(trace);
    return trace;
  } catch (...) {
    promise.set_exception(std::current_exception());
    throw;
  }
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads == 0 ? default_job_count() : threads) {}

void SweepRunner::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(count);

  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (failed.load(std::memory_order_relaxed)) continue;  // drain remaining
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t pool_size =
      std::min<std::size_t>(threads_, count);
  if (pool_size <= 1) {
    worker();  // strictly serial on the calling thread (CPC_JOBS=1)
  } else {
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

namespace {

/// One background thread that raises per-job cancel flags when their
/// wall-clock deadline passes — or all at once when the sweep-level cancel
/// (a disconnected cpc_serve client) fires. Jobs register/deregister around
/// each attempt; the simulation notices the flag cooperatively.
///
/// Shared state (the deadline list and the stop flag) is CPC_GUARDED_BY the
/// watchdog mutex; the clang thread-safety build proves every touch happens
/// under it. The cancel flags themselves are atomics owned by the jobs.
class Watchdog {
 public:
  Watchdog(std::chrono::milliseconds budget,
           const std::atomic<bool>* sweep_cancel)
      : budget_(budget), sweep_cancel_(sweep_cancel) {
    if (enabled()) thread_ = std::thread([this] { loop(); });
  }

  ~Watchdog() {
    {
      const MutexLock lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  bool enabled() const {
    return budget_.count() > 0 || sweep_cancel_ != nullptr;
  }

  class Scope {
   public:
    Scope(Watchdog& dog, std::atomic<bool>* flag) : dog_(dog) {
      if (dog_.enabled()) {
        // No per-job budget means no deadline: only a sweep cancel can
        // raise the flag.
        const auto deadline =
            dog_.budget_.count() > 0
                ? std::chrono::steady_clock::now() + dog_.budget_
                : std::chrono::steady_clock::time_point::max();
        const MutexLock lock(dog_.mutex_);
        it_ = dog_.entries_.insert(dog_.entries_.end(), {deadline, flag});
        armed_ = true;
      }
    }
    ~Scope() {
      if (armed_) {
        const MutexLock lock(dog_.mutex_);
        dog_.entries_.erase(it_);
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Watchdog& dog_;
    std::list<std::pair<std::chrono::steady_clock::time_point,
                        std::atomic<bool>*>>::iterator it_;
    bool armed_ = false;
  };

 private:
  void loop() {
    const MutexLock lock(mutex_);
    while (!stop_) {
      cv_.wait_for(mutex_, std::chrono::milliseconds(10));
      const bool cancel_all =
          sweep_cancel_ != nullptr &&
          sweep_cancel_->load(std::memory_order_relaxed);
      const auto now = std::chrono::steady_clock::now();
      for (auto& [deadline, flag] : entries_) {
        if (cancel_all || now >= deadline) {
          flag->store(true, std::memory_order_relaxed);
        }
      }
    }
  }

  std::chrono::milliseconds budget_;
  const std::atomic<bool>* sweep_cancel_;
  Mutex mutex_;
  CondVar cv_;
  std::list<std::pair<std::chrono::steady_clock::time_point, std::atomic<bool>*>>
      entries_ CPC_GUARDED_BY(mutex_);
  bool stop_ CPC_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

/// The body both run() and run_contained() share: one complete simulation
/// of jobs[i] into results-slot `out`.
void execute_job(const Job& job, std::size_t i, TraceCache& traces,
                 JobResult& out) {
  out.index = i;
  out.tag = job.tag;
  const std::shared_ptr<const cpu::Trace> trace =
      job.trace ? job.trace : traces.get(job.workload, job.trace_ops, job.seed);

  auto hierarchy = job.make_hierarchy();
  const Stopwatch timer;
  out.run = run_trace_on(*trace, *hierarchy, job.core_config);
  out.wall_seconds = timer.seconds();
  out.ops_per_second =
      out.wall_seconds > 0.0
          ? static_cast<double>(out.run.core.committed) / out.wall_seconds
          : 0.0;
  out.hierarchy = std::move(hierarchy);
  out.ok = true;
}

}  // namespace

RunOptions RunOptions::from_env() {
  RunOptions options;
  if (const char* env = std::getenv("CPC_JOB_TIMEOUT_MS")) {
    options.job_timeout_ms = std::strtoull(env, nullptr, 10);
  }
  return options;
}

std::vector<JobResult> SweepRunner::run(std::vector<Job> jobs,
                                        bool quiet) const {
  std::vector<JobResult> results(jobs.size());
  TraceCache traces;
  std::atomic<std::size_t> completed{0};
  Mutex log_mutex;

  parallel_for(jobs.size(), [&](std::size_t i) {
    const Job& job = jobs[i];
    JobResult& out = results[i];
    execute_job(job, i, traces, out);

    const std::size_t done = completed.fetch_add(1) + 1;
    if (!quiet) {
      const MutexLock lock(log_mutex);
      std::cerr << "  [" << done << "/" << jobs.size() << "] "
                << (job.workload.name.empty() ? "<trace>" : job.workload.name)
                << "/" << out.run.config << ": " << out.run.core.cycles
                << " cycles (" << out.wall_seconds << "s)\n";
    }
  });
  return results;
}

RunReport SweepRunner::run_contained(std::vector<Job> jobs,
                                     const RunOptions& options) const {
  RunReport report;
  report.results.resize(jobs.size());

  // Journal restore: completed jobs of a previous (killed) invocation of
  // the same grid are taken as-is and never re-simulated.
  std::vector<bool> restored(jobs.size(), false);
  std::unique_ptr<SweepJournal> journal;
  if (!options.journal_path.empty()) {
    const std::uint64_t fingerprint = grid_fingerprint(jobs);
    SweepJournal::Restored prior =
        SweepJournal::load(options.journal_path, fingerprint, jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (prior.results[i]) {
        report.results[i] = std::move(*prior.results[i]);
        restored[i] = true;
      }
    }
    report.resumed = prior.restored_ok;
    journal = std::make_unique<SweepJournal>(options.journal_path, fingerprint,
                                             jobs.size(),
                                             /*append=*/prior.header_matched);
    if (!options.quiet && report.resumed > 0) {
      std::cerr << "  resuming: " << report.resumed << "/" << jobs.size()
                << " jobs restored from " << options.journal_path << "\n";
    }
  }

  TraceCache traces;
  Watchdog watchdog(std::chrono::milliseconds(options.job_timeout_ms),
                    options.cancel);
  std::atomic<std::size_t> completed{static_cast<std::size_t>(report.resumed)};
  Mutex log_mutex;
  Mutex failures_mutex;
  Mutex callback_mutex;
  const auto notify_result = [&](const JobResult& result) {
    if (!options.on_result) return;
    const MutexLock lock(callback_mutex);
    options.on_result(result);
  };
  const auto notify_failure = [&](const JobFailure& failure) {
    if (!options.on_failure) return;
    const MutexLock lock(callback_mutex);
    options.on_failure(failure);
  };
  const auto sweep_cancelled = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  // A resumed consumer still sees every result: replay the restored ones
  // through the streaming hook before any fresh job runs.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (restored[i]) notify_result(report.results[i]);
  }

  parallel_for(jobs.size(), [&](std::size_t i) {
    if (restored[i]) return;
    const Job& job = jobs[i];
    JobResult& out = report.results[i];

    if (sweep_cancelled()) {
      // Not journaled: a resume of this grid re-runs the cancelled jobs.
      JobFailure failure;
      failure.index = i;
      failure.tag = job.tag;
      JobFailure::Attempt attempt;
      attempt.what = "sweep cancelled before this job started";
      failure.history.push_back(attempt);
      failure.what = attempt.what;
      failure.attempts = 0;
      notify_failure(failure);
      const MutexLock lock(failures_mutex);
      report.failures.push_back(std::move(failure));
      return;
    }

    JobFailure failure;
    failure.index = i;
    failure.tag = job.tag;
    const unsigned attempts = 1 + options.retries;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
      JobFailure::Attempt record;
      std::atomic<bool> cancel{false};
      Job guarded = job;  // per-attempt cancel wiring; the job stays const
      guarded.core_config.cancel = watchdog.enabled() ? &cancel : nullptr;
      try {
        const Watchdog::Scope scope(watchdog, &cancel);
        out = JobResult{};  // retries must not inherit a partial result
        execute_job(guarded, i, traces, out);
        break;
      } catch (const InvariantViolation& violation) {
        record.what = violation.what();
        record.diagnostic = violation.diagnostic();
      } catch (const cpu::SimulationCancelled& cancelled) {
        if (sweep_cancelled()) {
          record.what = "sweep cancelled";  // the client left, not a timeout
        } else {
          record.what = cancelled.what();
          record.timed_out = true;
        }
      } catch (const std::exception& error) {
        record.what = error.what();
      } catch (...) {
        record.what = "unknown exception";
      }
      // Every failing attempt is appended; the primary fields below report
      // the first one, so a retry that fails differently (e.g. watchdog
      // trip, then a clean error) cannot overwrite the root cause.
      failure.history.push_back(std::move(record));
      if (sweep_cancelled()) break;  // retries cannot outlive the sweep
    }
    if (!out.ok && !failure.history.empty()) {
      const JobFailure::Attempt& first = failure.history.front();
      failure.what = first.what;
      failure.timed_out = first.timed_out;
      failure.diagnostic = first.diagnostic;
      failure.attempts = static_cast<unsigned>(failure.history.size());
    }

    const std::size_t done = completed.fetch_add(1) + 1;
    if (out.ok) {
      if (journal) journal->record_ok(out);
      notify_result(out);
      if (!options.quiet) {
        const MutexLock lock(log_mutex);
        std::cerr << "  [" << done << "/" << jobs.size() << "] "
                  << (job.workload.name.empty() ? "<trace>" : job.workload.name)
                  << "/" << out.run.config << ": " << out.run.core.cycles
                  << " cycles (" << out.wall_seconds << "s)\n";
      }
    } else {
      if (journal) journal->record_failure(i, failure.what);
      notify_failure(failure);
      if (!options.quiet) {
        const MutexLock lock(log_mutex);
        std::cerr << "  [" << done << "/" << jobs.size() << "] job " << i << " ("
                  << (failure.tag.empty() ? "untagged" : failure.tag)
                  << ") FAILED after " << failure.attempts
                  << " attempt(s): " << failure.what << "\n";
      }
      const MutexLock lock(failures_mutex);
      report.failures.push_back(std::move(failure));
    }
  });

  std::sort(report.failures.begin(), report.failures.end(),
            [](const JobFailure& a, const JobFailure& b) { return a.index < b.index; });
  report.trace_cache = traces.stats();
  return report;
}

}  // namespace cpc::sim
