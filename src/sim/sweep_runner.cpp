#include "sim/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <future>
#include <iostream>
#include <thread>
#include <utility>

namespace cpc::sim {

unsigned default_job_count() {
  if (const char* env = std::getenv("CPC_JOBS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 4096) {
      return static_cast<unsigned>(value);
    }
    std::cerr << "warning: ignoring unparseable CPC_JOBS='" << env << "'\n";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct TraceCache::Entry {
  std::string name;
  std::uint64_t trace_ops;
  std::uint64_t seed;
  std::shared_future<std::shared_ptr<const cpu::Trace>> future;
};

TraceCache::TraceCache() = default;
TraceCache::~TraceCache() = default;

std::shared_ptr<const cpu::Trace> TraceCache::get(
    const workload::Workload& workload, std::uint64_t trace_ops,
    std::uint64_t seed) {
  std::promise<std::shared_ptr<const cpu::Trace>> promise;
  std::shared_future<std::shared_ptr<const cpu::Trace>> existing;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : entries_) {
      if (entry->name == workload.name && entry->trace_ops == trace_ops &&
          entry->seed == seed) {
        existing = entry->future;
        break;
      }
    }
    if (!existing.valid()) {
      auto entry = std::make_unique<Entry>();
      entry->name = workload.name;
      entry->trace_ops = trace_ops;
      entry->seed = seed;
      entry->future = promise.get_future().share();
      entries_.push_back(std::move(entry));
    }
  }
  if (existing.valid()) return existing.get();  // wait outside the lock
  // First requester generates outside the lock; co-waiters block on the
  // shared_future instead of regenerating.
  try {
    auto trace = std::make_shared<const cpu::Trace>(
        workload::generate(workload, {trace_ops, seed}));
    promise.set_value(trace);
    return trace;
  } catch (...) {
    promise.set_exception(std::current_exception());
    throw;
  }
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads == 0 ? default_job_count() : threads) {}

void SweepRunner::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(count);

  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (failed.load(std::memory_order_relaxed)) continue;  // drain remaining
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t pool_size =
      std::min<std::size_t>(threads_, count);
  if (pool_size <= 1) {
    worker();  // strictly serial on the calling thread (CPC_JOBS=1)
  } else {
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::vector<JobResult> SweepRunner::run(std::vector<Job> jobs,
                                        bool quiet) const {
  std::vector<JobResult> results(jobs.size());
  TraceCache traces;
  std::atomic<std::size_t> completed{0};
  std::mutex log_mutex;

  parallel_for(jobs.size(), [&](std::size_t i) {
    const Job& job = jobs[i];
    JobResult& out = results[i];
    out.index = i;
    out.tag = job.tag;

    const std::shared_ptr<const cpu::Trace> trace =
        job.trace ? job.trace : traces.get(job.workload, job.trace_ops, job.seed);

    auto hierarchy = job.make_hierarchy();
    const auto start = std::chrono::steady_clock::now();
    out.run = run_trace_on(*trace, *hierarchy, job.core_config);
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    out.ops_per_second =
        out.wall_seconds > 0.0
            ? static_cast<double>(out.run.core.committed) / out.wall_seconds
            : 0.0;
    out.hierarchy = std::move(hierarchy);

    const std::size_t done = completed.fetch_add(1) + 1;
    if (!quiet) {
      std::lock_guard<std::mutex> lock(log_mutex);
      std::cerr << "  [" << done << "/" << jobs.size() << "] "
                << (job.workload.name.empty() ? "<trace>" : job.workload.name)
                << "/" << out.run.config << ": " << out.run.core.cycles
                << " cycles (" << out.wall_seconds << "s)\n";
    }
  });
  return results;
}

}  // namespace cpc::sim
