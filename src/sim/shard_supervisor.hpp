#pragma once
// ShardSupervisor — process-sharded sweep execution with crash isolation.
//
// run_contained (sim/sweep_runner.hpp) contains C++ exceptions; it cannot
// contain process death (segfault, OOM kill, runaway allocation, a hard
// hang). The supervisor adds that boundary: the job grid is partitioned
// round-robin across N fork()ed workers, each worker simulates its slice
// in-process (reusing the containment/retry/watchdog machinery on
// single-job grids) and streams per-job results back over a CRC-guarded
// frame pipe (sim/ipc.hpp) whose result payloads are journal `ok` lines —
// the same schema-pinned wire format the resume journal uses.
//
// Supervision, per worker:
//   * heartbeat frames every `heartbeat_ms`; any frame refreshes the
//     silence clock, and a worker silent for `silence_budget_ms` is
//     SIGKILLed (catches hard hangs that cooperative cancellation cannot).
//   * when `run.job_timeout_ms` is set, a job running past the budget plus
//     `kill_grace_ms` is SIGKILLed too — the in-worker watchdog gets the
//     grace window to cancel cooperatively first.
//   * setrlimit(RLIMIT_AS) fences runaway allocations to the worker
//     (`rlimit_as_mb`; skipped under AddressSanitizer).
//
// A worker that dies by any signal is contained: its completed jobs are
// kept, the job it was running is retried up to `crash_retries` times
// (then recorded as a JobFailure naming the signal), its remaining jobs
// are re-sharded onto a replacement worker, and respawns draw from a
// bounded `restart_budget` with deterministic exponential backoff (no
// jitter — reseeding is jitterless so a re-run of a crashed job replays
// the identical simulation). Results merge in job-index order, so N-process
// output is bit-identical to the serial run; the journal makes a killed
// *supervisor* resumable exactly like run_contained.
//
// Crash-path testing: CPC_CRASH_JOB=<index>:<mode> makes the worker that
// picks up job <index> die deterministically on its first attempt —
// modes segv, abort, oom, hang, exit3 (docs/robustness.md).

#include <cstdint>
#include <vector>

#include "sim/sweep_runner.hpp"

namespace cpc::sim {

/// Policy knobs for process-sharded sweeps. Defaults are production-safe;
/// tests tighten the clocks via the environment.
struct ShardOptions {
  /// Worker process count; 0 resolves like CPC_JOBS (default_job_count).
  /// 1 (or an unsupported platform) degrades to in-process run_contained.
  unsigned procs = 0;

  /// Per-job containment policy, applied inside each worker (retries,
  /// cooperative watchdog, quiet) and to the supervisor-side journal.
  RunOptions run;

  /// RLIMIT_AS soft cap per worker in MiB; 0 = no fence.
  std::uint64_t rlimit_as_mb = 0;

  /// Worker heartbeat period.
  std::uint64_t heartbeat_ms = 50;

  /// A worker producing no frame for this long is presumed hung and
  /// SIGKILLed. Must comfortably exceed heartbeat_ms plus the longest
  /// uninterruptible stretch (trace generation).
  std::uint64_t silence_budget_ms = 30'000;

  /// Grace on top of run.job_timeout_ms before the supervisor SIGKILLs a
  /// worker whose in-process watchdog failed to cancel the job.
  std::uint64_t kill_grace_ms = 2'000;

  /// Total worker respawns allowed across the sweep. Once exhausted, the
  /// dead worker's unfinished jobs are recorded as failures.
  unsigned restart_budget = 8;

  /// Times a job whose worker died mid-run is retried (in a fresh worker)
  /// before being recorded as failed. Distinct from run.retries, which
  /// handles in-process exceptions.
  unsigned crash_retries = 1;

  /// Deterministic backoff before respawn r: backoff_base_ms << r, capped
  /// at 2s. No jitter — restarts must be reproducible.
  std::uint64_t backoff_base_ms = 50;

  /// Reads CPC_PROCS, CPC_SHARD_RLIMIT_MB and CPC_SHARD_SILENCE_MS on top
  /// of RunOptions::from_env().
  static ShardOptions from_env();
};

class ShardSupervisor {
 public:
  explicit ShardSupervisor(ShardOptions options);

  /// Executes the grid across worker processes and returns the merged
  /// report (results in job-index order, failures sorted, trace-cache
  /// stats summed across workers, worker_restarts counted). Never throws
  /// for job or worker failures; throws only for supervisor-level errors
  /// (unopenable journal).
  RunReport run(std::vector<Job> jobs) const;

 private:
  ShardOptions options_;
};

}  // namespace cpc::sim
