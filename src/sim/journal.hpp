#pragma once
// Checkpoint/resume journal for contained sweeps (SweepRunner::run_contained).
//
// A journal is a line-oriented text file:
//
//   cpc-sweep-journal v1 grid=<hex64> jobs=<N>
//   ok <index> <tag> <config> <wall_seconds> <ops_per_second> <counters...>
//   fail <index> <what>
//
// The header's grid fingerprint hashes every job's identity (tag, workload,
// ops, seed, pre-supplied trace length), so a journal is only replayed
// against the sweep that wrote it. Entries are append-only and last-wins
// per job index: a killed sweep leaves a valid prefix, the resumed sweep
// skips every job with a final `ok` entry and re-runs the rest (including
// jobs whose last entry is `fail`). Strings are percent-escaped so tags and
// error texts cannot break the line format.

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "sim/job.hpp"

namespace cpc::sim {

/// Order-sensitive FNV-1a hash over the identity of every job in the grid.
std::uint64_t grid_fingerprint(const std::vector<Job>& jobs);

/// One parsed journal body line. The same line grammar doubles as the
/// payload of sharded-sweep result frames (sim/ipc.hpp kResult), so the
/// counter schema is pinned in exactly one place (the kCounterCount
/// static_assert in journal.cpp).
struct JournalEntry {
  enum class Kind : std::uint8_t {
    kOk,         ///< complete `ok` record; `result` is valid
    kFail,       ///< `fail` record; `index`/`what` are valid
    kMalformed,  ///< truncated or foreign line — skip it
  };
  Kind kind = Kind::kMalformed;
  std::size_t index = 0;
  JobResult result;  ///< restored statistics; hierarchy is always null
  std::string what;
};

/// Serializes one completed job as a journal `ok` line (no newline).
std::string encode_ok_line(const JobResult& result);

/// Serializes one failure as a journal `fail` line (no newline).
std::string encode_fail_line(std::size_t index, const std::string& what);

/// Parses one body line. `jobs` bounds the index: entries at or beyond it
/// decode as kMalformed (a journal can never resurrect an out-of-grid job).
JournalEntry decode_journal_line(const std::string& line, std::size_t jobs);

class SweepJournal {
 public:
  struct Restored {
    /// results[i] is set iff the journal's final entry for job i is `ok`.
    /// Restored results carry full statistics but a null hierarchy pointer.
    std::vector<std::optional<JobResult>> results;
    std::size_t restored_ok = 0;
    bool header_matched = false;  ///< file existed with the right grid/jobs
  };

  /// Parses `path` if it exists. A missing file, foreign header, or
  /// mismatched grid fingerprint restores nothing (the journal will be
  /// rewritten from scratch). Truncated trailing lines are ignored.
  static Restored load(const std::string& path, std::uint64_t fingerprint,
                       std::size_t jobs);

  /// Opens the journal for writing. `append` continues a matched journal
  /// (resume); otherwise the file is truncated and a fresh header written.
  /// Throws std::runtime_error when the file cannot be opened.
  SweepJournal(const std::string& path, std::uint64_t fingerprint,
               std::size_t jobs, bool append);

  /// Thread-safe, flushed per entry so a killed process loses at most the
  /// entry being written.
  void record_ok(const JobResult& result);
  void record_failure(std::size_t index, const std::string& what);

 private:
  Mutex mutex_;
  /// Entry lines are composed off-lock and appended under mutex_, so
  /// concurrent record_* calls from pool workers cannot interleave bytes.
  std::ofstream out_ CPC_GUARDED_BY(mutex_);
};

}  // namespace cpc::sim
