#include "sim/ipc.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <iostream>

#if defined(__unix__) || defined(__APPLE__)
#define CPC_IPC_POSIX 1
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <time.h>  // nanosleep (timespec); no wall-clock reads here
#include <unistd.h>
#endif

// The RLIMIT_AS fence is incompatible with AddressSanitizer's shadow
// mappings (ASan reserves terabytes of virtual address space up front), so
// sanitized builds keep isolation but skip the fence.
#if defined(__SANITIZE_ADDRESS__)
#define CPC_IPC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CPC_IPC_ASAN 1
#endif
#endif

namespace cpc::sim::ipc {

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
  }
}

std::uint32_t read_u32(const char* bytes) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

/// magic(4) + version(1) + type(1) + length(4) + crc(4).
constexpr std::size_t kHeaderBytes = 14;

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  std::uint32_t crc = 0xffffffffu;
  for (const char c : bytes) {
    crc = kCrcTable[(crc ^ static_cast<unsigned char>(c)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.append(payload);
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  if (corrupt_) return;
  // Reclaim parsed prefix before growing, so long streams stay O(frame).
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  if (corrupt_) return Status::kCorrupt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return Status::kNeedMore;
  const char* head = buffer_.data() + consumed_;
  const std::uint32_t magic = read_u32(head);
  const auto version = static_cast<std::uint8_t>(head[4]);
  const auto type = static_cast<std::uint8_t>(head[5]);
  const std::uint32_t length = read_u32(head + 6);
  const std::uint32_t crc = read_u32(head + 10);
  if (magic != kFrameMagic || version != kWireVersion ||
      type >= kFrameTypeCount || length > kMaxFramePayload) {
    corrupt_ = true;
    return Status::kCorrupt;
  }
  if (available < kHeaderBytes + length) return Status::kNeedMore;
  const std::string_view payload(head + kHeaderBytes, length);
  if (crc32(payload) != crc) {
    corrupt_ = true;
    return Status::kCorrupt;
  }
  out.type = static_cast<FrameType>(type);
  out.payload.assign(payload);
  consumed_ += kHeaderBytes + length;
  return Status::kFrame;
}

// ---------------------------------------------------------------------------
// Payload packing
// ---------------------------------------------------------------------------

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
  }
}

void put_string(std::string& out, std::string_view value) {
  put_u64(out, value.size());
  out.append(value);
}

bool get_u64(std::string_view& in, std::uint64_t& value) {
  if (in.size() < 8) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  in.remove_prefix(8);
  value = v;
  return true;
}

bool get_string(std::string_view& in, std::string& value) {
  std::uint64_t size = 0;
  std::string_view probe = in;
  if (!get_u64(probe, size)) return false;
  if (probe.size() < size) return false;
  value.assign(probe.substr(0, size));
  in = probe.substr(size);
  return true;
}

// ---------------------------------------------------------------------------
// Process wrappers
// ---------------------------------------------------------------------------

#if defined(CPC_IPC_POSIX)

bool process_isolation_supported() { return true; }

bool write_frame(int fd, FrameType type, std::string_view payload) {
  const std::string frame = encode_frame(type, payload);
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE et al: the supervisor is gone
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

void apply_rlimit(std::uint64_t rlimit_as_mb) {
  if (rlimit_as_mb == 0) return;
#if defined(CPC_IPC_ASAN)
  std::fprintf(stderr,
               "note: skipping RLIMIT_AS fence (%llu MiB) under "
               "AddressSanitizer\n",
               static_cast<unsigned long long>(rlimit_as_mb));
#else
  struct rlimit limit;
  if (::getrlimit(RLIMIT_AS, &limit) != 0) return;
  const rlim_t cap = static_cast<rlim_t>(rlimit_as_mb) << 20;
  limit.rlim_cur =
      limit.rlim_max == RLIM_INFINITY ? cap : std::min(cap, limit.rlim_max);
  ::setrlimit(RLIMIT_AS, &limit);
#endif
}

}  // namespace

ChildProcess spawn_worker(const SpawnOptions& options,
                          const std::function<void(int write_fd)>& body) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    std::cerr << "spawn_worker: pipe failed: " << std::strerror(errno) << "\n";
    return {};
  }
  const long pid = ::fork();
  if (pid < 0) {
    std::cerr << "spawn_worker: fork failed: " << std::strerror(errno) << "\n";
    ::close(fds[0]);
    ::close(fds[1]);
    return {};
  }
  if (pid == 0) {
    // Child. A dead supervisor must surface as a write error, not SIGPIPE.
    ::close(fds[0]);
    std::signal(SIGPIPE, SIG_IGN);
    apply_rlimit(options.rlimit_as_mb);
    try {
      body(fds[1]);
    } catch (...) {
      // Never unwind into the parent's state; the supervisor sees the
      // nonzero exit and requeues the worker's unfinished jobs.
      ::_exit(86);
    }
    ::_exit(0);
  }
  ::close(fds[1]);
  ChildProcess child;
  child.pid = pid;
  child.read_fd = fds[0];
  return child;
}

namespace {

ExitStatus decode_wait_status(int status) {
  ExitStatus out;
  if (WIFEXITED(status)) {
    out.exited = true;
    out.code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.signaled = true;
    out.code = WTERMSIG(status);
  }
  return out;
}

}  // namespace

bool try_wait(ChildProcess& child, ExitStatus& status) {
  if (!child.valid()) return false;
  int raw = 0;
  const long r = ::waitpid(static_cast<pid_t>(child.pid), &raw, WNOHANG);
  if (r <= 0) return false;  // still running (or EINTR — caller re-polls)
  status = decode_wait_status(raw);
  child.pid = -1;
  return true;
}

ExitStatus wait_blocking(ChildProcess& child) {
  if (!child.valid()) return {};
  int raw = 0;
  while (::waitpid(static_cast<pid_t>(child.pid), &raw, 0) < 0) {
    if (errno != EINTR) return {};
  }
  child.pid = -1;
  return decode_wait_status(raw);
}

void kill_hard(const ChildProcess& child) {
  if (child.valid()) ::kill(static_cast<pid_t>(child.pid), SIGKILL);
}

long read_some(int fd, char* buffer, std::size_t size) {
  while (true) {
    const ssize_t n = ::read(fd, buffer, size);
    if (n >= 0) return static_cast<long>(n);
    if (errno != EINTR) return -1;
  }
}

bool poll_readable(const std::vector<int>& fds, int timeout_ms,
                   std::vector<bool>& ready) {
  ready.assign(fds.size(), false);
  std::vector<struct pollfd> polls;
  polls.reserve(fds.size());
  for (const int fd : fds) {
    polls.push_back({fd, POLLIN, 0});
  }
  const int r = ::poll(polls.data(), static_cast<nfds_t>(polls.size()),
                       timeout_ms);
  if (r < 0) return errno == EINTR;  // interrupted counts as "nothing ready"
  for (std::size_t i = 0; i < polls.size(); ++i) {
    ready[i] = (polls[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
  }
  return true;
}

void sleep_ms(std::uint64_t ms) {
  struct timespec request;
  request.tv_sec = static_cast<time_t>(ms / 1000);
  request.tv_nsec = static_cast<long>((ms % 1000) * 1'000'000);
  while (::nanosleep(&request, &request) != 0 && errno == EINTR) {
  }
}

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

#else  // !CPC_IPC_POSIX — every entry point degrades to "unsupported"

bool process_isolation_supported() { return false; }

bool write_frame(int, FrameType, std::string_view) { return false; }

ChildProcess spawn_worker(const SpawnOptions&,
                          const std::function<void(int)>&) {
  return {};
}

bool try_wait(ChildProcess&, ExitStatus&) { return false; }
ExitStatus wait_blocking(ChildProcess&) { return {}; }
void kill_hard(const ChildProcess&) {}
long read_some(int, char*, std::size_t) { return -1; }

bool poll_readable(const std::vector<int>& fds, int, std::vector<bool>& ready) {
  ready.assign(fds.size(), false);
  return false;
}

void sleep_ms(std::uint64_t) {}
void close_fd(int& fd) { fd = -1; }

#endif  // CPC_IPC_POSIX

}  // namespace cpc::sim::ipc
