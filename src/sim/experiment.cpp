#include "sim/experiment.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "cache/baseline_hierarchy.hpp"
#include "cache/prefetch_hierarchy.hpp"
#include "core/cpp_hierarchy.hpp"
// The experiment factory is where the sim layer deliberately reaches up into
// verify/ to offer audited/oracle hierarchy wrappers — the one sanctioned
// inversion of the sim(5) < verify(6) layering.
// cpc-lint: allow(CPC-L006)
#include "verify/metadata_auditor.hpp"
// cpc-lint: allow(CPC-L006)
#include "verify/oracle/oracle_hierarchy.hpp"

namespace cpc::sim {

std::string config_name(ConfigKind kind) {
  switch (kind) {
    case ConfigKind::kBC: return "BC";
    case ConfigKind::kBCC: return "BCC";
    case ConfigKind::kHAC: return "HAC";
    case ConfigKind::kBCP: return "BCP";
    case ConfigKind::kCPP: return "CPP";
  }
  return "?";
}

std::unique_ptr<cache::MemoryHierarchy> make_hierarchy(
    ConfigKind kind, const cache::LatencyConfig& latency) {
  return make_hierarchy(kind, compress::kPaperCodec, latency);
}

std::unique_ptr<cache::MemoryHierarchy> make_hierarchy(
    ConfigKind kind, compress::Codec codec,
    const cache::LatencyConfig& latency) {
  cache::HierarchyConfig base = cache::kBaselineConfig;
  base.latency = latency;
  cache::HierarchyConfig hac = cache::kHigherAssocConfig;
  hac.latency = latency;

  switch (kind) {
    case ConfigKind::kBC:
      // Uncompressed transfers: the codec cannot change behaviour, so BC
      // keeps its bare name in every grid cell (it is the normalisation
      // baseline the figures divide by).
      return std::make_unique<cache::BaselineHierarchy>(
          "BC", base, cache::TransferFormat::kUncompressed, codec);
    case ConfigKind::kBCC:
      return std::make_unique<cache::BaselineHierarchy>(
          compress::codec_suffixed_name("BCC", codec), base,
          cache::TransferFormat::kCompressed, codec);
    case ConfigKind::kHAC:
      return std::make_unique<cache::BaselineHierarchy>(
          "HAC", hac, cache::TransferFormat::kUncompressed, codec);
    case ConfigKind::kBCP:
      return std::make_unique<cache::PrefetchHierarchy>(base);
    case ConfigKind::kCPP: {
      core::CppHierarchy::Options opts;
      opts.config = base;
      opts.codec = codec;
      opts.name = compress::codec_suffixed_name("CPP", codec);
      return std::make_unique<core::CppHierarchy>(opts);
    }
  }
  throw std::logic_error("unreachable config kind");
}

std::string config_codec_tag(ConfigKind kind, compress::Codec codec) {
  return compress::codec_suffixed_name(config_name(kind), codec);
}

RunResult run_trace_on(std::span<const cpu::MicroOp> trace,
                       cache::MemoryHierarchy& hierarchy,
                       const cpu::CoreConfig& core_config) {
  RunResult result;
  result.config = hierarchy.name();

  // Shadow oracle: when the caller hands us an OracleHierarchy, thread its
  // commit hook through the core so the golden model sees architectural
  // commits only (never speculative or wrong-path requests).
  cpu::CoreConfig config = core_config;
  cache::MemoryHierarchy* audit_root = &hierarchy;
  if (auto* oracle = dynamic_cast<verify::OracleHierarchy*>(&hierarchy)) {
    if (config.commit_observer == nullptr) config.commit_observer = oracle;
    audit_root = &oracle->inner();  // the oracle may already wrap a guard
  }

  const std::uint64_t stride = verify::MetadataAuditor::stride_from_env();
  if (stride != 0 &&
      dynamic_cast<verify::GuardedHierarchy*>(audit_root) == nullptr) {
    // Always-on metadata audits: every simulation runs under the auditor
    // unless CPC_AUDIT_STRIDE=0 (or the caller already wrapped the
    // hierarchy, e.g. the fault campaign or a differential run).
    verify::GuardedHierarchy guard(hierarchy, stride);
    cpu::OooCore core(config, guard);
    result.core = core.run(trace);
  } else {
    cpu::OooCore core(config, hierarchy);
    result.core = core.run(trace);
  }
  // End-of-run structural audit: cheap relative to a whole run and catches
  // corruption that surfaced after the last stride audit.
  hierarchy.validate();
  result.hierarchy = hierarchy.stats();
  return result;
}

RunResult run_trace(std::span<const cpu::MicroOp> trace, ConfigKind kind,
                    const cpu::CoreConfig& core_config,
                    const cache::LatencyConfig& latency) {
  auto hierarchy = make_hierarchy(kind, latency);
  return run_trace_on(trace, *hierarchy, core_config);
}

ImportanceResult miss_importance(std::span<const cpu::MicroOp> trace, ConfigKind kind,
                                 const cpu::CoreConfig& core_config) {
  const cache::LatencyConfig normal{};
  const RunResult slow = run_trace(trace, kind, core_config, normal);
  const RunResult fast =
      run_trace(trace, kind, core_config, normal.halved_miss_penalty());

  ImportanceResult out;
  out.s_overall = slow.cycles() / fast.cycles();
  constexpr double kSEnhanced = 2.0;  // miss penalty halved
  out.fraction_enhanced =
      kSEnhanced * (1.0 - 1.0 / out.s_overall) / (kSEnhanced - 1.0);
  out.measured_direct_fraction = slow.core.direct_miss_dependence_fraction();
  return out;
}

BenchOptions BenchOptions::from_env() {
  BenchOptions opts;
  if (const char* ops = std::getenv("CPC_TRACE_OPS")) {
    opts.trace_ops = std::strtoull(ops, nullptr, 10);
  }
  if (const char* seed = std::getenv("CPC_SEED")) {
    opts.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* filter = std::getenv("CPC_WORKLOADS")) {
    std::stringstream ss{std::string(filter)};
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (!name.empty()) opts.workloads.push_back(workload::find_workload(name));
    }
  } else {
    opts.workloads = workload::all_workloads();
  }
  return opts;
}

}  // namespace cpc::sim
