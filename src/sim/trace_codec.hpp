#pragma once
// Compact in-RAM encoding of micro-op traces for the bounded TraceCache's
// compressed tier (sim/sweep_runner.hpp). Kernel traces are dense delta
// streams — consecutive pcs and effective addresses differ by small strides,
// most ops carry no value and short dependence distances — so a per-op
// header byte plus zigzag-varint deltas compresses them 3-6x. This is the
// ZipCache-style "compressed RAM tier": entries demoted from the decoded
// tier keep their bytes here and are decoded on demand instead of being
// regenerated from the workload.
//
// The format is an internal cache representation, not a wire format: blobs
// never leave the process and carry no version header. Round-trip fidelity
// is absolute — decompress(compress(t)) == t bit-for-bit, with a raw-escape
// path for any op whose flags a future MicroOp revision may add.

#include <cstdint>
#include <vector>

#include "cpu/micro_op.hpp"

namespace cpc::sim::trace_codec {

/// Encodes `trace` into a self-describing blob (leading varint op count).
std::vector<std::uint8_t> compress(const cpu::Trace& trace);

/// Exact inverse of compress(). Throws InvariantViolation (kGeneric) on a
/// truncated or malformed blob — cache memory corrupting is an invariant
/// failure, not an input error.
cpu::Trace decompress(const std::vector<std::uint8_t>& blob);

}  // namespace cpc::sim::trace_codec
