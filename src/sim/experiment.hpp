#pragma once
// Experiment driver: builds the paper's five cache configurations, replays
// workload traces through them on the out-of-order core, and packages the
// statistics the figures report. Every bench binary is a thin wrapper over
// this header.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "cache/hierarchy.hpp"
#include "compress/codec.hpp"
#include "cpu/core_config.hpp"
#include "cpu/micro_op.hpp"
#include "cpu/ooo_core.hpp"
#include "workload/workloads.hpp"

namespace cpc::sim {

/// The five configurations of section 4.1, in the order the figures plot.
enum class ConfigKind { kBC, kBCC, kHAC, kBCP, kCPP };

inline constexpr ConfigKind kAllConfigs[] = {ConfigKind::kBC, ConfigKind::kBCC,
                                             ConfigKind::kHAC, ConfigKind::kBCP,
                                             ConfigKind::kCPP};

std::string config_name(ConfigKind kind);

/// Builds a fresh hierarchy of the given kind with the given latencies.
std::unique_ptr<cache::MemoryHierarchy> make_hierarchy(
    ConfigKind kind, const cache::LatencyConfig& latency = {});

/// Builds a hierarchy of the given kind running under `codec`. With the
/// paper codec this is byte-identical to the overload above (legacy names,
/// legacy behaviour); other codecs name themselves "<config>@<codec>".
/// BC/HAC/BCP meter uncompressed transfers, so the codec only changes
/// their tag — they still run so a (config × codec) grid stays rectangular.
std::unique_ptr<cache::MemoryHierarchy> make_hierarchy(
    ConfigKind kind, compress::Codec codec,
    const cache::LatencyConfig& latency = {});

/// Sweep tag of a (config, codec) cell: the bare config name under the
/// paper codec (pre-refactor CSVs and journals stay bit-identical),
/// "<config>@<codec>" otherwise.
std::string config_codec_tag(ConfigKind kind, compress::Codec codec);

/// One complete simulation of a trace on one configuration.
struct RunResult {
  std::string config;
  cpu::CoreStats core;
  cache::HierarchyStats hierarchy;

  double cycles() const { return static_cast<double>(core.cycles); }
  double traffic_words() const { return hierarchy.traffic.words(); }
  double l1_misses() const { return static_cast<double>(hierarchy.l1_misses); }
  double l2_misses() const { return static_cast<double>(hierarchy.l2_misses); }
};

RunResult run_trace(std::span<const cpu::MicroOp> trace, ConfigKind kind,
                    const cpu::CoreConfig& core_config = {},
                    const cache::LatencyConfig& latency = {});

/// Runs a trace on an externally constructed hierarchy (used by the
/// ablation benches, which tweak CppHierarchy::Options directly).
RunResult run_trace_on(std::span<const cpu::MicroOp> trace,
                       cache::MemoryHierarchy& hierarchy,
                       const cpu::CoreConfig& core_config = {});

/// Fig. 14: the miss-importance parameter. Runs the trace twice — once with
/// the paper's latencies and once with miss penalties halved — and applies
///   Fraction_enhanced = S_enh * (1 - 1/S_overall) / (S_enh - 1),  S_enh = 2.
struct ImportanceResult {
  double s_overall = 1.0;
  double fraction_enhanced = 0.0;
  /// Directly measured fraction of committed ops consuming an L1-missing
  /// load's result (free in our simulator; the paper could only estimate
  /// this through the Amdahl construction above).
  double measured_direct_fraction = 0.0;
};
ImportanceResult miss_importance(std::span<const cpu::MicroOp> trace, ConfigKind kind,
                                 const cpu::CoreConfig& core_config = {});

/// Benchmark-selection and sizing knobs shared by all bench binaries.
/// Reads environment variables:
///   CPC_TRACE_OPS   — micro-ops per workload trace (default 600000)
///   CPC_WORKLOADS   — comma-separated name filter (default: all 14)
///   CPC_SEED        — RNG seed for the workload generators
struct BenchOptions {
  std::uint64_t trace_ops = 600'000;
  std::uint64_t seed = 0x5eed;
  std::vector<workload::Workload> workloads;

  static BenchOptions from_env();
  workload::WorkloadParams params() const { return {trace_ops, seed}; }
};

}  // namespace cpc::sim
