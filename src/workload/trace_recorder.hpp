#pragma once
// TraceRecorder: the bridge between workload kernels and the micro-op IR.
//
// Kernels execute *concretely* against a simulated 32-bit address space: a
// load really reads the simulated memory, a store really writes it, and
// pointers are real heap addresses handed out by the deterministic
// allocator. Every access therefore carries the genuine 32-bit value whose
// compressibility the caches later test — the property the whole paper
// rests on is emergent, not sampled.
//
// Dependences are carried by `Val` handles: the handle remembers which op
// produced the value, and ops consuming a handle get a producer edge.
// Address arithmetic on a handle (`ptr + 8`) keeps the dependence, so
// pointer-chasing loops yield the honest serial chains that make their
// cache misses expensive (paper section 2.2 / Fig. 14).

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cpu/micro_op.hpp"
#include "mem/heap_allocator.hpp"
#include "mem/sparse_memory.hpp"

namespace cpc::workload {

class TraceRecorder {
 public:
  static constexpr std::uint64_t kConstant = ~std::uint64_t{0};

  /// A value plus the trace position of the op that produced it
  /// (kConstant for values with no producer, e.g. literals).
  struct Val {
    std::uint32_t value;
    std::uint64_t producer;

    Val() : value(0), producer(kConstant) {}
    Val(std::uint32_t v) : value(v), producer(kConstant) {}  // NOLINT: implicit by design
    Val(std::uint32_t v, std::uint64_t p) : value(v), producer(p) {}

    /// Address arithmetic preserves the dependence.
    friend Val operator+(Val a, std::uint32_t k) { return {a.value + k, a.producer}; }
  };

  explicit TraceRecorder(std::uint64_t max_ops = 1'000'000) : max_ops_(max_ops) {
    block("entry");
  }

  // --- trace budget ----------------------------------------------------
  bool done() const { return trace_.size() >= max_ops_; }
  std::uint64_t ops() const { return trace_.size(); }
  std::uint64_t max_ops() const { return max_ops_; }

  // --- code layout -----------------------------------------------------
  /// Switches the current PC to the named basic block (allocated on first
  /// use). Re-entering a block replays the same PCs, which is what gives
  /// the I-cache and the bimodal predictor loop-shaped behaviour.
  void block(std::string_view name);

  // --- data layout -----------------------------------------------------
  /// Allocates heap storage; the returned address is a plain (ready) value.
  std::uint32_t alloc(std::uint32_t bytes) { return heap_.allocate(bytes); }
  void free(std::uint32_t addr, std::uint32_t bytes) { heap_.deallocate(addr, bytes); }

  /// Allocates zero-initialised static storage in the global segment.
  std::uint32_t static_data(std::uint32_t bytes) {
    const std::uint32_t addr = static_next_;
    static_next_ += (bytes + 7u) & ~7u;
    return addr;
  }

  // --- memory ops --------------------------------------------------------
  Val load(Val addr);
  void store(Val addr, Val value);

  // --- compute ops ---------------------------------------------------------
  /// Emits an integer ALU op producing `result` from up to two producers.
  Val alu(std::uint32_t result, Val a = {}, Val b = {});
  Val mul(std::uint32_t result, Val a = {}, Val b = {});
  Val div(std::uint32_t result, Val a = {}, Val b = {});
  /// FP ops: `result_bits` is the raw bit pattern (usually incompressible).
  Val fp_alu(std::uint32_t result_bits, Val a = {}, Val b = {});
  Val fp_mul(std::uint32_t result_bits, Val a = {}, Val b = {});

  /// Emits a conditional branch with the actual outcome `taken`.
  void branch(bool taken, Val cond = {});

  // --- results -----------------------------------------------------------
  const cpu::Trace& trace() const { return trace_; }
  cpu::Trace take_trace() { return std::move(trace_); }
  const mem::SparseMemory& memory() const { return vm_; }
  mem::HeapAllocator& heap() { return heap_; }

 private:
  std::uint8_t dep_of(const Val& v) const;
  Val emit(cpu::OpKind kind, std::uint32_t addr, std::uint32_t value, Val a, Val b,
           std::uint8_t flags = 0);
  void advance_pc();

  static constexpr std::uint32_t kCodeBase = 0x0001'0000;
  static constexpr std::uint32_t kBlockCapacityOps = 256;

  std::uint64_t max_ops_;
  cpu::Trace trace_;
  mem::SparseMemory vm_;
  mem::HeapAllocator heap_;
  std::uint32_t static_next_ = mem::kGlobalBase;

  std::unordered_map<std::string, std::uint32_t> block_bases_;
  std::uint32_t next_block_base_ = kCodeBase;
  std::uint32_t pc_ = kCodeBase;
  std::uint32_t block_base_ = kCodeBase;
};

}  // namespace cpc::workload
