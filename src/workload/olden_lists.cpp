// Olden-like linked-structure kernels: health and mst.
//
// health is the paper's poster child (section 4.3 singles it out as a case
// where CPP beats BCP): a hierarchy of villages whose patient lists are
// traversed and spliced every simulation step — next-pointer chases with
// small status/count fields, exactly the structure of Fig. 5.

#include <vector>

#include "workload/rng.hpp"
#include "workload/workloads.hpp"

namespace cpc::workload {

using Val = TraceRecorder::Val;

void kernel_health(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x43a17ull);

  // Village: {child[4], wait_head, num_waiting, seed, pad} — 32 bytes.
  constexpr std::uint32_t kChild0 = 0;
  constexpr std::uint32_t kWaitHead = 16;
  constexpr std::uint32_t kNumWaiting = 20;
  // Patient: {next, remaining_time, hops, id} — 16 bytes.
  constexpr std::uint32_t kNext = 0;
  constexpr std::uint32_t kTime = 4;
  constexpr std::uint32_t kHops = 8;
  constexpr std::uint32_t kId = 12;

  std::vector<std::uint32_t> villages;
  auto build = [&](auto&& self, unsigned depth) -> std::uint32_t {
    const std::uint32_t v = R.alloc(32);
    villages.push_back(v);
    R.block("vbuild");
    R.store(Val{v + kWaitHead}, R.alu(0));
    R.store(Val{v + kNumWaiting}, R.alu(0));
    for (unsigned c = 0; c < 4; ++c) {
      const std::uint32_t child = depth == 0 ? 0u : self(self, depth - 1);
      R.block("vbuild");
      R.store(Val{v + kChild0 + c * 4}, R.alu(child));
    }
    return v;
  };
  // 1365 villages (depth 5) for full-size runs, 341 for small test budgets.
  const std::uint32_t root = build(build, params.target_ops >= 400'000 ? 5 : 4);

  // Seed every village with a few patients (list push-front).
  std::uint32_t next_id = 1;
  auto add_patient = [&](std::uint32_t village) {
    const std::uint32_t p = R.alloc(16);
    R.block("admit");
    Val head = R.load(Val{village + kWaitHead});
    R.store(Val{p + kNext}, head);
    R.store(Val{p + kTime}, R.alu(rng.range(1, 12)));
    R.store(Val{p + kHops}, R.alu(0));
    R.store(Val{p + kId}, R.alu(next_id++));
    R.store(Val{village + kWaitHead}, R.alu(p));
    Val n = R.load(Val{village + kNumWaiting});
    R.store(Val{village + kNumWaiting}, R.alu(n.value + 1, n));
  };
  for (std::uint32_t v : villages) {
    for (unsigned i = 0, n = rng.range(2, 10); i < n; ++i) add_patient(v);
  }

  // Simulation steps: walk every village's waiting list; decrement patient
  // timers; a patient whose timer expires is unlinked and either discharged
  // (freed) or transferred to a random village's list.
  while (!R.done()) {
    for (std::uint32_t v : villages) {
      if (R.done()) break;
      R.block("step");
      Val prev_addr = Val{v + kWaitHead};  // address of the link we came from
      Val cur = R.load(prev_addr);
      R.branch(cur.value != 0, cur);
      while (cur.value != 0 && !R.done()) {
        R.block("visit");
        Val next = R.load(cur + kNext);
        Val time = R.load(cur + kTime);
        const bool expired = static_cast<std::int32_t>(time.value) <= 1;
        R.branch(expired, time);
        if (expired) {
          // Unlink.
          R.store(prev_addr, next);
          Val n = R.load(Val{v + kNumWaiting});
          R.store(Val{v + kNumWaiting}, R.alu(n.value - 1, n));
          if (rng.chance(1, 3)) {
            R.free(cur.value, 16);  // discharged
          } else {
            // Transfer to another village: push-front there.
            const std::uint32_t dst = villages[rng.below(
                static_cast<std::uint32_t>(villages.size()))];
            R.block("transfer");
            Val hops = R.load(cur + kHops);
            R.store(cur + kHops, R.alu(hops.value + 1, hops));
            Val dhead = R.load(Val{dst + kWaitHead});
            R.store(cur + kNext, dhead);
            R.store(cur + kTime, R.alu(rng.range(1, 12)));
            R.store(Val{dst + kWaitHead}, cur);
            Val dn = R.load(Val{dst + kNumWaiting});
            R.store(Val{dst + kNumWaiting}, R.alu(dn.value + 1, dn));
          }
        } else {
          R.store(cur + kTime, R.alu(time.value - 1, time));
          prev_addr = cur + kNext;
        }
        cur = next;
      }
      // Occasionally admit a new patient, keeping the population stable.
      if (rng.chance(1, 4)) add_patient(v);
    }

    // Assessment sweep (health's check() phase): a read-only walk over a
    // random subtree's waiting lists, accumulating hop statistics.
    const std::uint32_t start = rng.below(static_cast<std::uint32_t>(villages.size()));
    Val total = R.alu(0);
    for (std::uint32_t k = 0; k < 64 && !R.done(); ++k) {
      const std::uint32_t v = villages[(start + k) % villages.size()];
      R.block("assess");
      Val cur = R.load(Val{v + kWaitHead});
      R.branch(cur.value != 0, cur);
      while (cur.value != 0 && !R.done()) {
        R.block("assess");
        Val hops = R.load(cur + kHops);
        total = R.alu(total.value + hops.value, total, hops);
        cur = R.load(cur + kNext);
      }
    }
    R.block("assess");
    R.store(Val{root + kNumWaiting}, total);
  }
}

void kernel_mst(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x357ull);

  // Vertices in one array: {mindist, in_tree, pad, pad} — 16 bytes each.
  // Edge weights live in per-vertex chained hash tables, as in Olden's mst:
  // HashEntry {key_vertex, weight, next} — 16 bytes.
  constexpr std::uint32_t kMindist = 0;
  constexpr std::uint32_t kInTree = 4;
  constexpr std::uint32_t kHashBuckets = 32;

  // Build cost ≈ 75 ops/vertex (bucket init + 8 hash entries).
  const std::uint32_t num_vertices = params.scaled_units(75, 192, 640);
  const std::uint32_t vbase = R.alloc(num_vertices * 16);
  // Per-vertex bucket arrays.
  std::vector<std::uint32_t> buckets(num_vertices);
  for (std::uint32_t v = 0; v < num_vertices; ++v) {
    buckets[v] = R.alloc(kHashBuckets * 4);
    R.block("hinit");
    for (std::uint32_t b = 0; b < kHashBuckets; ++b) {
      R.store(Val{buckets[v] + b * 4}, R.alu(0));
    }
    R.store(Val{vbase + v * 16 + kMindist}, R.alu(0x7fffu));
    R.store(Val{vbase + v * 16 + kInTree}, R.alu(0));
  }
  // Sparse random weights: ~8 entries per vertex. As in Olden's HashInsert,
  // the chain is searched for the key before a new entry is linked in.
  for (std::uint32_t v = 0; v < num_vertices; ++v) {
    for (unsigned e = 0; e < 8; ++e) {
      const std::uint32_t u = rng.below(num_vertices);
      if (u == v) continue;
      const std::uint32_t b = u % kHashBuckets;
      R.block("hadd");
      Val head = R.load(Val{buckets[v] + b * 4});
      Val probe = head;
      bool exists = false;
      while (probe.value != 0 && !R.done()) {
        R.block("hprobe");
        Val k = R.load(probe + 0);
        R.branch(k.value == u, k);
        if (k.value == u) {
          exists = true;
          break;
        }
        probe = R.load(probe + 8);
      }
      if (exists) continue;
      const std::uint32_t entry = R.alloc(16);
      R.block("hadd");
      R.store(Val{entry + 0}, R.alu(u));
      R.store(Val{entry + 4}, R.alu(rng.range(1, 4096)));
      R.store(Val{entry + 8}, head);
      R.store(Val{buckets[v] + b * 4}, R.alu(entry));
    }
  }

  // Hash lookup: chase the chain for `key` in vertex v's table.
  auto hash_lookup = [&](std::uint32_t v, std::uint32_t key) -> Val {
    R.block("hlookup");
    Val cur = R.load(Val{buckets[v] + (key % kHashBuckets) * 4});
    R.branch(cur.value != 0, cur);
    while (cur.value != 0 && !R.done()) {
      R.block("hchase");
      Val k = R.load(cur + 0);
      R.branch(k.value == key, k);
      if (k.value == key) return R.load(cur + 4);
      cur = R.load(cur + 8);
    }
    return R.alu(0x7fffu);  // no edge: "infinite" weight
  };

  // Prim/Blue-rule growth, restarted until the op budget is used.
  while (!R.done()) {
    for (std::uint32_t v = 0; v < num_vertices; ++v) {
      R.block("reset");
      R.store(Val{vbase + v * 16 + kInTree}, R.alu(0));
      R.store(Val{vbase + v * 16 + kMindist}, R.alu(0x7fffu));
      if (R.done()) return;
    }
    std::uint32_t current = 0;
    for (std::uint32_t step = 1; step < num_vertices && !R.done(); ++step) {
      R.block("grow");
      R.store(Val{vbase + current * 16 + kInTree}, R.alu(1));
      std::uint32_t best = 0;
      std::uint32_t best_dist = ~0u;
      // Blue rule: relax every out-of-tree vertex against `current`.
      for (std::uint32_t v = 0; v < num_vertices && !R.done(); ++v) {
        R.block("relax");
        Val in_tree = R.load(Val{vbase + v * 16 + kInTree});
        R.branch(in_tree.value != 0, in_tree);
        if (in_tree.value != 0) continue;
        Val w = hash_lookup(v, current);
        R.block("relax2");
        Val dist = R.load(Val{vbase + v * 16 + kMindist});
        const bool closer = w.value < dist.value;
        R.branch(closer, w);
        if (closer) R.store(Val{vbase + v * 16 + kMindist}, w);
        const std::uint32_t d = closer ? w.value : dist.value;
        if (d < best_dist) {
          best_dist = d;
          best = v;
        }
      }
      current = best;
    }
  }
}

}  // namespace cpc::workload
