#pragma once
// The 14-program benchmark suite mirroring the paper's selection from
// Olden, SPECint95 and SPECint2000 (section 4.1). Each kernel reproduces
// the dominant data structures and access patterns of its namesake; see
// DESIGN.md section 2 for the substitution rationale.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cpu/micro_op.hpp"
#include "workload/trace_recorder.hpp"

namespace cpc::workload {

struct WorkloadParams {
  std::uint64_t target_ops = 1'000'000;  ///< trace length budget
  std::uint64_t seed = 0x5eed;

  /// Sizes a data structure so that building it (at ~`ops_per_unit` trace
  /// ops per element) consumes roughly a third of the op budget, clamped to
  /// [lo, hi]. Keeps small test traces from being all build phase while
  /// full-size runs get paper-scale footprints.
  std::uint32_t scaled_units(std::uint64_t ops_per_unit, std::uint32_t lo,
                             std::uint32_t hi) const {
    const std::uint64_t units = target_ops / (3 * ops_per_unit);
    if (units < lo) return lo;
    if (units > hi) return hi;
    return static_cast<std::uint32_t>(units);
  }
};

using KernelFn = void (*)(TraceRecorder&, const WorkloadParams&);

struct Workload {
  std::string name;   ///< e.g. "olden.treeadd"
  std::string suite;  ///< "Olden", "SPECint95", "SPECint2000"
  std::string description;
  KernelFn kernel;
};

// Olden-like kernels (pointer-intensive dynamic data structures).
void kernel_bisort(TraceRecorder&, const WorkloadParams&);
void kernel_em3d(TraceRecorder&, const WorkloadParams&);
void kernel_health(TraceRecorder&, const WorkloadParams&);
void kernel_mst(TraceRecorder&, const WorkloadParams&);
void kernel_perimeter(TraceRecorder&, const WorkloadParams&);
void kernel_power(TraceRecorder&, const WorkloadParams&);
void kernel_treeadd(TraceRecorder&, const WorkloadParams&);
void kernel_tsp(TraceRecorder&, const WorkloadParams&);

// SPECint95-like kernels.
void kernel_go(TraceRecorder&, const WorkloadParams&);
void kernel_li(TraceRecorder&, const WorkloadParams&);
void kernel_m88ksim(TraceRecorder&, const WorkloadParams&);

// SPECint2000-like kernels.
void kernel_gzip(TraceRecorder&, const WorkloadParams&);
void kernel_mcf(TraceRecorder&, const WorkloadParams&);
void kernel_twolf(TraceRecorder&, const WorkloadParams&);

/// All 14 workloads in the order the paper's figures list them.
const std::vector<Workload>& all_workloads();

/// Finds a workload by name; throws std::out_of_range when unknown.
const Workload& find_workload(std::string_view name);

/// Runs a kernel and returns its trace.
cpu::Trace generate(const Workload& workload, const WorkloadParams& params);

}  // namespace cpc::workload
