#include "workload/trace_recorder.hpp"

namespace cpc::workload {

void TraceRecorder::block(std::string_view name) {
  auto [it, inserted] = block_bases_.try_emplace(std::string(name), next_block_base_);
  if (inserted) next_block_base_ += kBlockCapacityOps * 4;
  block_base_ = it->second;
  pc_ = block_base_;
}

void TraceRecorder::advance_pc() {
  pc_ += 4;
  // Wrap within the block so arbitrarily long straight-line stretches keep a
  // bounded I-cache footprint, like an unrolled loop body.
  if (pc_ >= block_base_ + kBlockCapacityOps * 4) pc_ = block_base_;
}

std::uint8_t TraceRecorder::dep_of(const Val& v) const {
  if (v.producer == kConstant) return 0;
  const std::uint64_t dist = trace_.size() - v.producer;
  if (dist == 0 || dist > cpu::kMaxDepDistance) return 0;
  return static_cast<std::uint8_t>(dist);
}

TraceRecorder::Val TraceRecorder::emit(cpu::OpKind kind, std::uint32_t addr,
                                       std::uint32_t value, Val a, Val b,
                                       std::uint8_t flags) {
  cpu::MicroOp op;
  op.pc = pc_;
  op.addr = addr;
  op.value = value;
  op.kind = kind;
  op.dep1 = dep_of(a);
  op.dep2 = dep_of(b);
  op.flags = flags;
  trace_.push_back(op);
  advance_pc();
  return Val{value, trace_.size() - 1};
}

TraceRecorder::Val TraceRecorder::load(Val addr) {
  const std::uint32_t v = vm_.read_word(addr.value);
  return emit(cpu::OpKind::kLoad, addr.value, v, addr, {});
}

void TraceRecorder::store(Val addr, Val value) {
  vm_.write_word(addr.value, value.value);
  emit(cpu::OpKind::kStore, addr.value, value.value, addr, value);
}

TraceRecorder::Val TraceRecorder::alu(std::uint32_t result, Val a, Val b) {
  return emit(cpu::OpKind::kIntAlu, 0, result, a, b);
}

TraceRecorder::Val TraceRecorder::mul(std::uint32_t result, Val a, Val b) {
  return emit(cpu::OpKind::kIntMul, 0, result, a, b);
}

TraceRecorder::Val TraceRecorder::div(std::uint32_t result, Val a, Val b) {
  return emit(cpu::OpKind::kIntDiv, 0, result, a, b);
}

TraceRecorder::Val TraceRecorder::fp_alu(std::uint32_t result_bits, Val a, Val b) {
  return emit(cpu::OpKind::kFpAlu, 0, result_bits, a, b);
}

TraceRecorder::Val TraceRecorder::fp_mul(std::uint32_t result_bits, Val a, Val b) {
  return emit(cpu::OpKind::kFpMul, 0, result_bits, a, b);
}

void TraceRecorder::branch(bool cond_taken, Val cond) {
  emit(cpu::OpKind::kBranch, 0, 0, cond, {},
       cond_taken ? cpu::MicroOp::kFlagTaken : std::uint8_t{0});
}

}  // namespace cpc::workload
