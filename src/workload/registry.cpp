#include <stdexcept>

#include "workload/workloads.hpp"

namespace cpc::workload {

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> workloads = {
      {"olden.bisort", "Olden", "binary-tree bitonic sort with value swaps",
       &kernel_bisort},
      {"olden.em3d", "Olden", "bipartite E/H-node electromagnetic relaxation",
       &kernel_em3d},
      {"olden.health", "Olden", "hierarchical village patient-list simulation",
       &kernel_health},
      {"olden.mst", "Olden", "Prim MST with per-vertex chained hash tables",
       &kernel_mst},
      {"olden.perimeter", "Olden", "quadtree perimeter traversal", &kernel_perimeter},
      {"olden.power", "Olden", "multiway-tree power-flow optimisation", &kernel_power},
      {"olden.treeadd", "Olden", "recursive binary-tree sum", &kernel_treeadd},
      {"olden.tsp", "Olden", "cheapest-insertion tour construction", &kernel_tsp},
      {"spec95.099.go", "SPECint95", "board scans and liberty flood fill", &kernel_go},
      {"spec95.124.m88ksim", "SPECint95", "table-driven CPU simulator loop",
       &kernel_m88ksim},
      {"spec95.130.li", "SPECint95", "cons-cell Lisp expression evaluator", &kernel_li},
      {"spec2000.164.gzip", "SPECint2000", "LZ77 hash-chain match search", &kernel_gzip},
      {"spec2000.181.mcf", "SPECint2000", "network-simplex arc pricing sweeps",
       &kernel_mcf},
      {"spec2000.300.twolf", "SPECint2000", "standard-cell placement pair swaps",
       &kernel_twolf},
  };
  return workloads;
}

const Workload& find_workload(std::string_view name) {
  for (const Workload& w : all_workloads()) {
    if (w.name == name) return w;
  }
  throw std::out_of_range("unknown workload: " + std::string(name));
}

cpu::Trace generate(const Workload& workload, const WorkloadParams& params) {
  TraceRecorder recorder(params.target_ops);
  workload.kernel(recorder, params);
  return recorder.take_trace();
}

}  // namespace cpc::workload
