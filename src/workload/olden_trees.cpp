// Olden-like tree kernels: treeadd, bisort, perimeter.
//
// All three build real trees on the simulated heap and traverse them with
// dependence-carrying pointer loads, reproducing the access patterns the
// Olden suite is known for: depth-first pointer chasing over nodes whose
// fields are a mix of compressible pointers/small values and (occasionally)
// incompressible payloads.

#include "workload/rng.hpp"
#include "workload/workloads.hpp"

namespace cpc::workload {

using Val = TraceRecorder::Val;

namespace {

// treeadd node layout: {left, right, value, pad} — 16 bytes.
constexpr std::uint32_t kLeft = 0;
constexpr std::uint32_t kRight = 4;
constexpr std::uint32_t kValue = 8;

constexpr std::uint32_t kPad = 12;

std::uint32_t build_binary_tree(TraceRecorder& R, Rng& rng, unsigned depth,
                                bool random_values) {
  const std::uint32_t node = R.alloc(16);
  R.block("build");
  const std::uint32_t value = random_values ? rng.below(1u << 20) : 1u;
  R.store(Val{node + kValue}, R.alu(value));
  // The fourth word carries metadata/garbage in the C original — an
  // arbitrary bit pattern, typically incompressible.
  R.store(Val{node + kPad}, R.alu(static_cast<std::uint32_t>(rng.next())));
  if (depth == 0) {
    R.store(Val{node + kLeft}, R.alu(0));
    R.store(Val{node + kRight}, R.alu(0));
  } else {
    const std::uint32_t l = build_binary_tree(R, rng, depth - 1, random_values);
    const std::uint32_t r = build_binary_tree(R, rng, depth - 1, random_values);
    R.block("build");
    R.store(Val{node + kLeft}, R.alu(l));
    R.store(Val{node + kRight}, R.alu(r));
  }
  return node;
}

/// Tree depth whose build phase (~10 ops/node) fits the op budget, between
/// 2^10-1 nodes (16 KB, still beyond L1) and 2^15-1 nodes (512 KB, beyond L2).
unsigned scaled_tree_depth(const WorkloadParams& params) {
  const std::uint32_t nodes = params.scaled_units(10, 1 << 10, 1 << 15);
  unsigned depth = 9;
  while ((2u << (depth + 1)) - 1 <= nodes && depth < 14) ++depth;
  return depth;
}

}  // namespace

void kernel_treeadd(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x7eeaddull);
  const unsigned depth = scaled_tree_depth(params);
  const std::uint32_t root = build_binary_tree(R, rng, depth, /*random_values=*/false);

  // Recursive sum, exactly treeadd's TreeAdd().
  auto sum = [&R](auto&& self, Val node) -> Val {
    R.block("sum");
    Val left = R.load(node + kLeft);
    Val right = R.load(node + kRight);
    Val value = R.load(node + kValue);
    R.branch(left.value != 0, left);
    Val acc = value;
    if (left.value != 0 && !R.done()) {
      Val sl = self(self, left);
      acc = R.alu(acc.value + sl.value, acc, sl);
    }
    if (right.value != 0 && !R.done()) {
      Val sr = self(self, right);
      acc = R.alu(acc.value + sr.value, acc, sr);
    }
    return acc;
  };

  while (!R.done()) {
    R.block("pass");
    sum(sum, Val{root});
  }
}

void kernel_bisort(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0xb150f7ull);
  const unsigned depth = scaled_tree_depth(params);
  const std::uint32_t root = build_binary_tree(R, rng, depth, /*random_values=*/true);

  // Bimerge-style pass: walk the tree, conditionally swapping the value
  // fields of each node's children (compare-and-swap over pointers).
  auto bimerge = [&R](auto&& self, Val node, bool direction) -> void {
    R.block("bimerge");
    Val left = R.load(node + kLeft);
    Val right = R.load(node + kRight);
    R.branch(left.value != 0, left);
    if (left.value == 0 || right.value == 0 || R.done()) return;
    Val lv = R.load(left + kValue);
    Val rv = R.load(right + kValue);
    const bool swap = (lv.value > rv.value) == direction;
    R.branch(swap, R.alu(lv.value - rv.value, lv, rv));
    if (swap) {
      R.store(left + kValue, rv);
      R.store(right + kValue, lv);
    }
    self(self, left, direction);
    self(self, right, !direction);
  };

  bool dir = true;
  while (!R.done()) {
    R.block("sortpass");
    bimerge(bimerge, Val{root}, dir);
    dir = !dir;
  }
}

void kernel_perimeter(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x9e21ull);
  // Quadtree node: {children[4], type, pad} — 24 bytes. type: 0 = white
  // leaf, 1 = black leaf, 2 = inner.
  constexpr std::uint32_t kChild0 = 0;
  constexpr std::uint32_t kType = 16;

  constexpr std::uint32_t kArea = 20;
  const unsigned max_depth = params.target_ops >= 400'000 ? 8 : 6;
  auto build = [&](auto&& self, unsigned depth) -> std::uint32_t {
    const std::uint32_t node = R.alloc(24);
    R.block("qbuild");
    // Top levels always split (a map's coarse quadrants are never uniform);
    // deeper regions become leaves with probability 1/4 per level.
    const bool leaf = depth == 0 || (depth + 4 <= max_depth && rng.chance(1, 4));
    R.store(Val{node + kType}, R.alu(leaf ? rng.below(2) : 2u));
    // Leaves carry an FP area payload — incompressible bits.
    R.store(Val{node + kArea}, R.alu(leaf ? static_cast<std::uint32_t>(rng.next()) : 0u));
    for (unsigned c = 0; c < 4; ++c) {
      const std::uint32_t child = leaf ? 0u : self(self, depth - 1);
      R.block("qbuild");
      R.store(Val{node + kChild0 + c * 4}, R.alu(child));
    }
    return node;
  };
  const std::uint32_t root = build(build, max_depth);

  // Perimeter walk: count exposed edges of black leaves.
  auto walk = [&R](auto&& self, Val node) -> Val {
    R.block("qwalk");
    Val type = R.load(node + kType);
    R.branch(type.value == 2, type);
    if (type.value != 2) {
      // Leaf: contributes 4 * black.
      return R.alu(type.value * 4, type);
    }
    Val perim = R.alu(0);
    for (unsigned c = 0; c < 4 && !R.done(); ++c) {
      R.block("qwalk");
      Val child = R.load(node + kChild0 + c * 4);
      Val p = self(self, child);
      perim = R.alu(perim.value + p.value, perim, p);
    }
    return perim;
  };

  while (!R.done()) {
    R.block("qpass");
    walk(walk, Val{root});
  }
}

}  // namespace cpc::workload
