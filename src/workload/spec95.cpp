// SPECint95-like kernels: go (099.go), li (130.li), m88ksim (124.m88ksim).
//
//  * go     — board arrays of small values, neighbourhood scans and
//             flood-fill liberty counting: array-indexed loads/stores of
//             highly compressible values with branchy control.
//  * li     — a cons-cell Lisp evaluator: deep car/cdr pointer chasing over
//             an arena of 16-byte cells with small type tags (the paper's
//             section 4.4 discusses 130.li explicitly).
//  * m88ksim — a table-driven CPU simulator: sequential instruction image
//             fetch, decode-table pointer lookups, register-file updates.

#include <vector>

#include "workload/rng.hpp"
#include "workload/workloads.hpp"

namespace cpc::workload {

using Val = TraceRecorder::Val;

void kernel_go(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x60ull);

  constexpr std::uint32_t kSize = 19;
  constexpr std::uint32_t kPoints = kSize * kSize;
  // Several board-sized arrays of words, as go keeps (board, liberties,
  // group ids, scratch marks) — ~6 KB of hot small-valued arrays plus a
  // history of positions that pushes the footprint past L2.
  const std::uint32_t board = R.static_data(kPoints * 4);
  const std::uint32_t libs = R.static_data(kPoints * 4);
  const std::uint32_t marks = R.static_data(kPoints * 4);
  constexpr std::uint32_t kHistory = 160;
  const std::uint32_t history = R.alloc(kHistory * kPoints * 4);
  // Zobrist-style position hashes: full-width incompressible words, as go's
  // superko detection keeps.
  const std::uint32_t hashes = R.static_data(kHistory * 4);

  R.block("ginit");
  for (std::uint32_t p = 0; p < kPoints; ++p) {
    R.store(Val{board + p * 4}, R.alu(0));
    R.store(Val{libs + p * 4}, R.alu(0));
    R.store(Val{marks + p * 4}, R.alu(0));
  }

  const std::int32_t kDirs[4] = {1, -1, static_cast<std::int32_t>(kSize),
                                 -static_cast<std::int32_t>(kSize)};
  std::uint32_t move_number = 0;

  while (!R.done()) {
    // Play a pseudo-move: claim a random empty point for the side to move.
    const std::uint32_t point = rng.below(kPoints);
    const std::uint32_t colour = 1 + (move_number & 1);
    R.block("gmove");
    Val occupied = R.load(Val{board + point * 4});
    R.branch(occupied.value != 0, occupied);
    if (occupied.value == 0) {
      R.store(Val{board + point * 4}, R.alu(colour));
    }

    // Liberty scan around the point: branchy neighbourhood reads.
    Val liberty_count = R.alu(0);
    for (std::int32_t d : kDirs) {
      const std::int64_t q = static_cast<std::int64_t>(point) + d;
      if (q < 0 || q >= kPoints) continue;
      R.block("glibs");
      Val neighbor = R.load(Val{board + static_cast<std::uint32_t>(q) * 4});
      R.branch(neighbor.value == 0, neighbor);
      liberty_count =
          R.alu(liberty_count.value + (neighbor.value == 0 ? 1 : 0), liberty_count, neighbor);
    }
    R.store(Val{libs + point * 4}, liberty_count);

    // Small flood-fill over the group using the marks array.
    std::vector<std::uint32_t> stack{point};
    unsigned steps = 0;
    while (!stack.empty() && steps < 24 && !R.done()) {
      const std::uint32_t p = stack.back();
      stack.pop_back();
      ++steps;
      R.block("gfill");
      Val mark = R.load(Val{marks + p * 4});
      R.branch(mark.value == move_number, mark);
      if (mark.value == (move_number & 0xffff)) continue;
      R.store(Val{marks + p * 4}, R.alu(move_number & 0xffff));
      for (std::int32_t d : kDirs) {
        const std::int64_t q = static_cast<std::int64_t>(p) + d;
        if (q < 0 || q >= kPoints) continue;
        Val c = R.load(Val{board + static_cast<std::uint32_t>(q) * 4});
        if (c.value == colour) stack.push_back(static_cast<std::uint32_t>(q));
      }
    }

    // Record the position into the history ring, accumulating an
    // incremental evaluation score along the way.
    const std::uint32_t slot = (move_number % kHistory) * kPoints;
    R.block("ghist");
    Val score = R.alu(0);
    for (std::uint32_t p = 0; p < kPoints && !R.done(); p += 8) {
      Val b = R.load(Val{board + p * 4});
      R.store(Val{history + (slot + p) * 4}, b);
      score = R.alu(score.value + b.value * (p & 7), score, b);
      score = R.alu(score.value ^ (score.value >> 3), score);
    }
    // Record the position hash for superko checks.
    R.store(Val{hashes + (move_number % kHistory) * 4},
            R.alu(static_cast<std::uint32_t>(rng.next()), score));
    Val prev_hash = R.load(Val{hashes + ((move_number + kHistory - 1) % kHistory) * 4});
    R.branch(prev_hash.value == score.value, prev_hash);
    ++move_number;
    // Occasionally clear the board (new game).
    if (move_number % 300 == 0) {
      R.block("gclear");
      for (std::uint32_t p = 0; p < kPoints && !R.done(); ++p) {
        R.store(Val{board + p * 4}, R.alu(0));
      }
    }
  }
}

void kernel_li(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x115bull);

  // Cons cell: {car, cdr, type, pad} — 16 bytes. type: 0 = pair,
  // 1 = fixnum (car holds the small integer), 2 = symbol (car holds a
  // pointer into the symbol table).
  constexpr std::uint32_t kCar = 0;
  constexpr std::uint32_t kCdr = 4;
  constexpr std::uint32_t kType = 8;

  const std::uint32_t kSymbols = 256;
  const std::uint32_t symtab = R.static_data(kSymbols * 8);

  auto cons = [&](Val car, Val cdr, std::uint32_t type) -> std::uint32_t {
    const std::uint32_t cell = R.alloc(16);
    R.block("cons");
    R.store(Val{cell + kCar}, car);
    R.store(Val{cell + kCdr}, cdr);
    R.store(Val{cell + kType}, R.alu(type));
    return cell;
  };

  // Build a forest of random expressions: lists of fixnums/symbols with
  // nested sublists, ~24K cells ≈ 384 KB of arena.
  auto build_expr = [&](auto&& self, unsigned depth) -> std::uint32_t {
    const unsigned len = rng.range(2, 6);
    std::uint32_t list = 0;
    for (unsigned i = 0; i < len; ++i) {
      std::uint32_t elem;
      if (depth > 0 && rng.chance(1, 3)) {
        elem = self(self, depth - 1);
        list = cons(Val{elem}, Val{list}, 0);
      } else if (rng.chance(1, 2)) {
        list = cons(R.alu(rng.below(1000)), Val{list}, 1);
      } else {
        list = cons(R.alu(symtab + rng.below(kSymbols) * 8), Val{list}, 2);
      }
      (void)elem;
    }
    return list;
  };
  // Arena sized to the op budget: each expression costs ~110 trace ops to
  // build (≈26 cells at 4 ops plus recursion overhead).
  const std::uint32_t num_exprs = params.scaled_units(110, 120, 1500);
  std::vector<std::uint32_t> exprs;
  for (std::uint32_t i = 0; i < num_exprs; ++i) {
    exprs.push_back(build_expr(build_expr, 3));
  }

  // Evaluator: walk an expression summing fixnums, dereferencing symbols,
  // recursing into sublists — car/cdr/type chases with branches on the tag.
  auto eval = [&](auto&& self, Val cell) -> Val {
    Val acc = R.alu(0);
    while (cell.value != 0 && !R.done()) {
      R.block("eval");
      Val type = R.load(cell + kType);
      Val car = R.load(cell + kCar);
      R.branch(type.value == 0, type);
      if (type.value == 0 && car.value != 0) {
        Val sub = self(self, car);
        acc = R.alu(acc.value + sub.value, acc, sub);
      } else if (type.value == 1) {
        acc = R.alu(acc.value + car.value, acc, car);
      } else if (type.value == 2) {
        Val bound = R.load(car);  // symbol value slot
        acc = R.alu(acc.value + bound.value, acc, bound);
      }
      cell = R.load(cell + kCdr);
    }
    return acc;
  };

  while (!R.done()) {
    const std::uint32_t e = exprs[rng.below(static_cast<std::uint32_t>(exprs.size()))];
    R.block("repl");
    Val result = eval(eval, Val{e});
    // Bind the result to a random symbol (stores into the symbol table).
    R.store(Val{symtab + rng.below(kSymbols) * 8}, result);
  }
}

void kernel_m88ksim(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x88000ull);

  // Simulated target state: an instruction image, a register file, a data
  // segment, and a decode table mapping opcodes to handler descriptors.
  // Image up to 192 KB, sized to the op budget (2 trace ops per image word).
  const std::uint32_t kImageWords = params.scaled_units(2, 8 * 1024, 48 * 1024);
  const std::uint32_t kDataWords = kImageWords / 3;
  constexpr std::uint32_t kOpcodes = 64;

  const std::uint32_t image = R.alloc(kImageWords * 4);
  const std::uint32_t data = R.alloc(kDataWords * 4);
  const std::uint32_t regs = R.static_data(32 * 4);
  const std::uint32_t decode = R.static_data(kOpcodes * 16);
  // Handler descriptor: {handler_ptr, class, latency, pad}.
  const std::uint32_t handlers = R.static_data(kOpcodes * 8);

  R.block("minit");
  for (std::uint32_t op = 0; op < kOpcodes; ++op) {
    R.store(Val{decode + op * 16 + 0}, R.alu(handlers + op * 8));
    R.store(Val{decode + op * 16 + 4}, R.alu(op % 4));
    R.store(Val{decode + op * 16 + 8}, R.alu(1 + op % 3));
  }
  for (std::uint32_t r = 0; r < 32; ++r) R.store(Val{regs + r * 4}, R.alu(r));
  // Synthesised target instructions: opcode in the top bits keeps many
  // encodings incompressible, like real RISC instruction words.
  for (std::uint32_t i = 0; i < kImageWords; ++i) {
    const std::uint32_t encoded =
        (rng.below(kOpcodes) << 26) | rng.below(1u << 16) | (rng.below(32) << 21);
    R.block("mload");
    R.store(Val{image + i * 4}, R.alu(encoded));
    if (R.done()) return;
  }

  // Fetch-decode-dispatch-execute loop.
  std::uint32_t target_pc = 0;
  while (!R.done()) {
    R.block("mfetch");
    Val instr = R.load(Val{image + (target_pc % kImageWords) * 4});
    const std::uint32_t opcode = instr.value >> 26;
    Val op_field = R.alu(opcode, instr);
    Val entry = R.load(Val{decode + opcode * 16 + 0, op_field.producer});
    Val op_class = R.load(Val{decode + opcode * 16 + 4, op_field.producer});
    (void)entry;

    const std::uint32_t rs = (instr.value >> 21) & 31;
    const std::uint32_t rd = instr.value & 31;
    R.block("mexec");
    Val a = R.load(Val{regs + rs * 4});
    R.branch((op_class.value & 1) != 0, op_class);
    switch (op_class.value & 3) {
      case 0: {  // ALU
        Val r0 = R.alu(a.value + instr.value, a, instr);
        R.store(Val{regs + rd * 4}, r0);
        break;
      }
      case 1: {  // load from the simulated data segment
        const std::uint32_t ea = (a.value + instr.value) % kDataWords;
        Val v = R.load(Val{data + ea * 4, a.producer});
        R.store(Val{regs + rd * 4}, v);
        break;
      }
      case 2: {  // store to the simulated data segment
        const std::uint32_t ea = (a.value ^ instr.value) % kDataWords;
        R.store(Val{data + ea * 4, a.producer}, R.alu(rd + 1, a));
        break;
      }
      default: {  // multiply
        Val r1 = R.mul(a.value * 3, a, instr);
        R.store(Val{regs + rd * 4}, r1);
        break;
      }
    }
    // Mostly sequential PC with occasional taken branches.
    if (rng.chance(1, 6)) {
      target_pc = rng.below(kImageWords);
      R.branch(true, instr);
    } else {
      ++target_pc;
      R.branch(false, instr);
    }
  }
}

}  // namespace cpc::workload
