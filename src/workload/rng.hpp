#pragma once
// Small deterministic RNG (xorshift64*) for workload generation. Kernels
// must not depend on std::rand or platform RNGs: traces have to be
// bit-identical across runs and platforms so experiments are reproducible.

#include <cstdint>

namespace cpc::workload {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}

  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint32_t below(std::uint32_t bound) {
    return static_cast<std::uint32_t>(next() % bound);
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint32_t range(std::uint32_t lo, std::uint32_t hi) {
    return lo + below(hi - lo + 1);
  }

  bool chance(std::uint32_t numerator, std::uint32_t denominator) {
    return below(denominator) < numerator;
  }

  /// Raw bits of a double in [0,1) truncated to 32 — a typical
  /// incompressible FP payload word.
  std::uint32_t fp_bits() { return static_cast<std::uint32_t>(next() >> 16) | 0x3f00'0000u; }

 private:
  std::uint64_t state_;
};

}  // namespace cpc::workload
