// SPECint2000-like kernels: gzip (164), mcf (181), twolf (300).
//
//  * gzip  — LZ77 hash-chain match search over a sliding window: byte
//            values and chain indices are small (highly compressible).
//  * mcf   — network-simplex pricing sweeps over arc structs holding
//            node pointers, large costs and small flows.
//  * twolf — standard-cell placement with random pair swaps and net-cost
//            evaluation; scattered accesses with heavy conflict misses
//            (the paper singles twolf out as a case where CPP beats BCP).

#include <vector>

#include "workload/rng.hpp"
#include "workload/workloads.hpp"

namespace cpc::workload {

using Val = TraceRecorder::Val;

void kernel_gzip(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x621bull);

  constexpr std::uint32_t kWindow = 32 * 1024;  // bytes, stored one per word
  constexpr std::uint32_t kHashSize = 4096;

  const std::uint32_t window = R.alloc(kWindow * 4);
  const std::uint32_t head = R.alloc(kHashSize * 4);
  const std::uint32_t prev = R.alloc(kWindow * 4);
  const std::uint32_t output = R.alloc(kWindow * 4);

  R.block("zinit");
  for (std::uint32_t h = 0; h < kHashSize; ++h) {
    R.store(Val{head + h * 4}, R.alu(0));
  }

  std::uint32_t pos = 0;
  std::uint32_t out_pos = 0;
  // Skewed byte distribution (text-like) so matches actually occur.
  auto next_byte = [&rng]() -> std::uint32_t {
    return rng.chance(3, 4) ? rng.below(32) + 64 : rng.below(256);
  };

  while (!R.done()) {
    // Deflate step: insert current position into the hash chain, then walk
    // the chain comparing window bytes to find the longest match.
    const std::uint32_t b0 = next_byte();
    R.block("zstep");
    Val byte_val = R.alu(b0);
    R.store(Val{window + (pos % kWindow) * 4}, byte_val);
    const std::uint32_t h = (b0 * 33 + pos * 7) % kHashSize;
    Val chain = R.load(Val{head + h * 4});
    R.store(Val{prev + (pos % kWindow) * 4}, chain);
    R.store(Val{head + h * 4}, R.alu(pos % kWindow, byte_val));

    std::uint32_t match_len = 0;
    Val cursor = chain;
    for (unsigned probes = 0; probes < 8 && cursor.value != 0 && !R.done(); ++probes) {
      R.block("zmatch");
      Val candidate = R.load(Val{window + (cursor.value % kWindow) * 4, cursor.producer});
      const bool matches = candidate.value == b0;
      R.branch(matches, candidate);
      if (matches) ++match_len;
      cursor = R.load(Val{prev + (cursor.value % kWindow) * 4, cursor.producer});
    }

    // Emit literal or (length, distance) token: small values.
    R.block("zemit");
    if (match_len >= 2) {
      R.store(Val{output + (out_pos % kWindow) * 4}, R.alu(match_len));
      R.store(Val{output + ((out_pos + 1) % kWindow) * 4},
              R.alu(pos % kWindow));
      out_pos += 2;
    } else {
      R.store(Val{output + (out_pos % kWindow) * 4}, byte_val);
      ++out_pos;
    }
    // Rolling CRC of the stream — a full-width, incompressible word, as in
    // gzip's crc32 accumulator.
    if (pos % 16 == 0) {
      R.store(Val{output + ((out_pos + 2) % kWindow) * 4},
              R.alu(static_cast<std::uint32_t>(rng.next()), byte_val));
    }
    // End-of-block flush (deflate emits blocks): reset a stripe of the
    // hash heads, a burst of sequential small-value stores.
    if (pos % 8192 == 8191) {
      R.block("zflush");
      const std::uint32_t stripe = (pos / 8192) % 8 * (kHashSize / 8);
      for (std::uint32_t i = 0; i < kHashSize / 8 && !R.done(); ++i) {
        R.store(Val{head + (stripe + i) * 4}, R.alu(0));
      }
    }
    ++pos;
  }
}

void kernel_mcf(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x3cfull);

  // Node: {potential, first_arc, depth, pad} — 16 bytes.
  // Arc: {cost, tail, head, flow, ident, next_out} — 24 bytes.
  constexpr std::uint32_t kPotential = 0;
  constexpr std::uint32_t kACost = 0;
  constexpr std::uint32_t kATail = 4;
  constexpr std::uint32_t kAHead = 8;
  constexpr std::uint32_t kAFlow = 12;
  constexpr std::uint32_t kAIdent = 16;

  // Arcs sized to the op budget (6 build ops each); up to 192 KB of arcs.
  const std::uint32_t num_arcs = params.scaled_units(6, 2048, 8192);
  const std::uint32_t num_nodes = num_arcs / 8;
  const std::uint32_t nodes = R.alloc(num_nodes * 16);
  const std::uint32_t arcs = R.alloc(num_arcs * 24);

  R.block("minit");
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    // Potentials are large dual values — mostly incompressible.
    R.store(Val{nodes + n * 16 + kPotential}, R.alu(rng.next() & 0x3fff'ffffu));
  }
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    const std::uint32_t base = arcs + a * 24;
    R.block("ainit");
    R.store(Val{base + kACost}, R.alu(rng.below(1u << 24)));
    R.store(Val{base + kATail}, R.alu(nodes + rng.below(num_nodes) * 16));
    R.store(Val{base + kAHead}, R.alu(nodes + rng.below(num_nodes) * 16));
    R.store(Val{base + kAFlow}, R.alu(0));
    R.store(Val{base + kAIdent}, R.alu(rng.below(3)));
    if (R.done()) return;
  }

  // Pricing sweeps (primal_bea_mpp): scan all arcs sequentially, computing
  // the reduced cost via the endpoint potentials, and update the flow on
  // the few violating arcs.
  while (!R.done()) {
    for (std::uint32_t a = 0; a < num_arcs && !R.done(); ++a) {
      const std::uint32_t base = arcs + a * 24;
      R.block("price");
      Val ident = R.load(Val{base + kAIdent});
      R.branch(ident.value != 0, ident);
      if (ident.value == 0) continue;
      Val cost = R.load(Val{base + kACost});
      Val tail = R.load(Val{base + kATail});
      Val head_ptr = R.load(Val{base + kAHead});
      Val pot_tail = R.load(tail + kPotential);
      Val pot_head = R.load(head_ptr + kPotential);
      const std::uint32_t red =
          cost.value + pot_tail.value - pot_head.value;
      Val red_cost = R.alu(red, pot_tail, pot_head);
      const bool violating = (red & 0x8000'0000u) != 0;
      R.branch(violating, red_cost);
      if (violating) {
        Val flow = R.load(Val{base + kAFlow});
        R.store(Val{base + kAFlow}, R.alu(flow.value + 1, flow, red_cost));
        // Push the dual change to the head node.
        R.store(head_ptr + kPotential, R.alu(pot_head.value + 13, pot_head));
      }
    }
  }
}

void kernel_twolf(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x2a01full);

  // Cell: {x, y, pin_head, cost} — 16 bytes.
  // Pin: {cell_ptr, net_id, next_on_net, offset} — 16 bytes; pins of one
  // net form a linked list.
  constexpr std::uint32_t kX = 0;
  constexpr std::uint32_t kY = 4;
  constexpr std::uint32_t kPinHead = 8;
  constexpr std::uint32_t kPCell = 0;
  constexpr std::uint32_t kPNext = 8;

  // ~3 build ops per cell plus ~16 per net; sized to the op budget.
  const std::uint32_t num_cells = params.scaled_units(12, 1024, 4096);
  const std::uint32_t num_nets = num_cells / 2;
  const std::uint32_t cells = R.alloc(num_cells * 16);
  std::vector<std::uint32_t> net_heads(num_nets, 0);

  R.block("tinit");
  for (std::uint32_t c = 0; c < num_cells; ++c) {
    R.store(Val{cells + c * 16 + kX}, R.alu(rng.below(1000)));
    R.store(Val{cells + c * 16 + kY}, R.alu(rng.below(1000)));
    R.store(Val{cells + c * 16 + kPinHead}, R.alu(0));
    if (R.done()) return;
  }
  // 3-5 pins per net, randomly attached to cells.
  for (std::uint32_t n = 0; n < num_nets; ++n) {
    const unsigned pins = rng.range(3, 5);
    for (unsigned p = 0; p < pins; ++p) {
      const std::uint32_t pin = R.alloc(16);
      const std::uint32_t cell = cells + rng.below(num_cells) * 16;
      R.block("tpin");
      R.store(Val{pin + kPCell}, R.alu(cell));
      R.store(Val{pin + 4}, R.alu(n));
      R.store(Val{pin + kPNext}, R.alu(net_heads[n]));
      R.store(Val{pin + 12}, R.alu(rng.below(8)));
      net_heads[n] = pin;
    }
  }

  // Net half-perimeter cost: walk the pin list, loading each pin's cell
  // coordinates (scattered pointer dereferences).
  auto net_cost = [&](std::uint32_t net) -> Val {
    Val lo_x = R.alu(~0u), hi_x = R.alu(0);
    Val cur{net_heads[net]};
    while (cur.value != 0 && !R.done()) {
      R.block("tcost");
      Val cell = R.load(cur + kPCell);
      Val x = R.load(cell + kX);
      Val y = R.load(cell + kY);
      lo_x = R.alu(x.value < lo_x.value ? x.value : lo_x.value, lo_x, x);
      hi_x = R.alu(x.value + y.value > hi_x.value ? x.value + y.value : hi_x.value,
                   hi_x, y);
      cur = R.load(cur + kPNext);
      R.branch(cur.value != 0, cur);
    }
    return R.alu(hi_x.value - lo_x.value, hi_x, lo_x);
  };

  // Simulated-annealing-ish pair swaps.
  while (!R.done()) {
    const std::uint32_t a = cells + rng.below(num_cells) * 16;
    const std::uint32_t b = cells + rng.below(num_cells) * 16;
    const std::uint32_t net_a = rng.below(num_nets);
    const std::uint32_t net_b = rng.below(num_nets);
    R.block("tswap");
    Val old_cost_a = net_cost(net_a);
    Val old_cost_b = net_cost(net_b);
    Val ax = R.load(Val{a + kX});
    Val ay = R.load(Val{a + kY});
    Val bx = R.load(Val{b + kX});
    Val by = R.load(Val{b + kY});
    const bool accept =
        rng.chance(1, 2) || old_cost_a.value + old_cost_b.value > 900;
    R.branch(accept, old_cost_a);
    if (accept) {
      R.block("tcommit");
      R.store(Val{a + kX}, bx);
      R.store(Val{a + kY}, by);
      R.store(Val{b + kX}, ax);
      R.store(Val{b + kY}, ay);
    }
  }
}

}  // namespace cpc::workload
