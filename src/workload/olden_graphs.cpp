// Olden-like graph/FP kernels: em3d, power, tsp.
//
// These mix pointer chasing with floating-point payloads whose raw bit
// patterns are incompressible, diluting the value compressibility the way
// the paper's Fig. 3 shows for FP-leaning programs.

#include <vector>

#include "workload/rng.hpp"
#include "workload/workloads.hpp"

namespace cpc::workload {

using Val = TraceRecorder::Val;

void kernel_em3d(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0xe3dull);

  // Node: {value(fp), from_count, from_array, coeff_array, next} — 24 bytes.
  constexpr std::uint32_t kNValue = 0;
  constexpr std::uint32_t kFromCount = 4;
  constexpr std::uint32_t kFromArr = 8;
  constexpr std::uint32_t kCoeffArr = 12;
  constexpr std::uint32_t kNNext = 16;
  constexpr unsigned kDegree = 4;

  // Build cost ≈ 32 ops/node (allocation + wiring); two sides.
  const std::uint32_t nodes_per_side = params.scaled_units(64, 400, 2400);
  auto build_side = [&](std::vector<std::uint32_t>& side) {
    std::uint32_t head = 0;
    for (std::uint32_t i = 0; i < nodes_per_side; ++i) {
      const std::uint32_t n = R.alloc(24);
      side.push_back(n);
      R.block("ebuild");
      R.store(Val{n + kNValue}, R.fp_alu(rng.fp_bits()));
      R.store(Val{n + kFromCount}, R.alu(kDegree));
      R.store(Val{n + kNNext}, R.alu(head));
      head = n;
    }
  };
  std::vector<std::uint32_t> e_nodes, h_nodes;
  build_side(e_nodes);
  build_side(h_nodes);

  auto wire = [&](const std::vector<std::uint32_t>& from,
                  const std::vector<std::uint32_t>& to) {
    for (std::uint32_t n : to) {
      const std::uint32_t froms = R.alloc(kDegree * 4);
      const std::uint32_t coeffs = R.alloc(kDegree * 4);
      R.block("ewire");
      R.store(Val{n + kFromArr}, R.alu(froms));
      R.store(Val{n + kCoeffArr}, R.alu(coeffs));
      for (unsigned d = 0; d < kDegree; ++d) {
        R.store(Val{froms + d * 4},
                R.alu(from[rng.below(nodes_per_side)]));
        R.store(Val{coeffs + d * 4}, R.fp_alu(rng.fp_bits()));
      }
    }
  };
  wire(h_nodes, e_nodes);
  wire(e_nodes, h_nodes);

  // Relaxation: value -= coeff[i] * from[i]->value for every node, walking
  // each side's linked list (em3d's compute_nodes()).
  auto relax_side = [&](std::uint32_t head) {
    R.block("erelax");
    Val cur{head};
    while (cur.value != 0 && !R.done()) {
      R.block("erelax");
      Val value = R.load(cur + kNValue);
      Val froms = R.load(cur + kFromArr);
      Val coeffs = R.load(cur + kCoeffArr);
      Val acc = value;
      for (unsigned d = 0; d < kDegree; ++d) {
        Val neighbor = R.load(froms + d * 4);
        Val nv = R.load(neighbor + kNValue);
        Val coeff = R.load(coeffs + d * 4);
        Val prod = R.fp_mul(rng.fp_bits(), nv, coeff);
        acc = R.fp_alu(rng.fp_bits(), acc, prod);
      }
      R.store(cur + kNValue, acc);
      cur = R.load(cur + kNNext);
      R.branch(cur.value != 0, cur);
    }
  };

  while (!R.done()) {
    relax_side(e_nodes.back());
    relax_side(h_nodes.back());
  }
}

void kernel_power(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x90e4ull);

  // Three-level tree as in Olden's power: root → laterals → branches →
  // leaves. Leaf: {demand_p(fp), demand_q(fp), pi, pad} — 16 bytes.
  // Inner: {child[10], total_p(fp), total_q(fp)} — 48 bytes.
  constexpr unsigned kFanout = 10;
  constexpr std::uint32_t kChild0 = 0;
  constexpr std::uint32_t kTotalP = 40;
  constexpr std::uint32_t kTotalQ = 44;

  auto build = [&](auto&& self, unsigned level) -> std::uint32_t {
    if (level == 0) {
      const std::uint32_t leaf = R.alloc(16);
      R.block("pbuild");
      R.store(Val{leaf + 0}, R.fp_alu(rng.fp_bits()));
      R.store(Val{leaf + 4}, R.fp_alu(rng.fp_bits()));
      R.store(Val{leaf + 8}, R.alu(rng.below(100)));
      return leaf;
    }
    const std::uint32_t node = R.alloc(48);
    R.block("pbuild");
    for (unsigned c = 0; c < kFanout; ++c) {
      const std::uint32_t child = self(self, level - 1);
      R.block("pbuild");
      R.store(Val{node + kChild0 + c * 4}, R.alu(child));
    }
    R.store(Val{node + kTotalP}, R.fp_alu(rng.fp_bits()));
    R.store(Val{node + kTotalQ}, R.fp_alu(rng.fp_bits()));
    return node;
  };
  // Four levels (11K nodes, ~250 KB) at full scale; three for test budgets.
  const unsigned levels = params.target_ops >= 200'000 ? 4 : 3;
  const std::uint32_t root = build(build, levels);

  // Upward demand aggregation followed by a downward price update.
  auto compute = [&](auto&& self, Val node, unsigned level) -> Val {
    R.block("pcompute");
    if (level == 0) {
      Val p = R.load(node + 0);
      Val q = R.load(node + 4);
      Val sum = R.fp_alu(rng.fp_bits(), p, q);
      // Clamp check on the leaf demand (power's optimisation constraint).
      const bool over_limit = (sum.value & 0xffu) > 200u;
      R.branch(over_limit, sum);
      R.store(node + 8, R.alu(rng.below(100), sum));
      return sum;
    }
    Val acc = R.fp_alu(rng.fp_bits());
    for (unsigned c = 0; c < kFanout && !R.done(); ++c) {
      R.block("pcompute");
      Val child = R.load(node + kChild0 + c * 4);
      Val s = self(self, child, level - 1);
      acc = R.fp_alu(rng.fp_bits(), acc, s);
    }
    R.store(node + kTotalP, acc);
    R.store(node + kTotalQ, R.fp_mul(rng.fp_bits(), acc));
    return acc;
  };

  while (!R.done()) {
    R.block("ppass");
    compute(compute, Val{root}, levels);
  }
}

void kernel_tsp(TraceRecorder& R, const WorkloadParams& params) {
  Rng rng(params.seed ^ 0x75bull);

  // City: {x(fp), y(fp), next, prev} — 16 bytes, doubly linked tour.
  constexpr std::uint32_t kX = 0;
  constexpr std::uint32_t kY = 4;
  constexpr std::uint32_t kNext = 8;
  constexpr std::uint32_t kPrev = 12;

  auto new_city = [&]() -> std::uint32_t {
    const std::uint32_t c = R.alloc(16);
    R.block("cnew");
    R.store(Val{c + kX}, R.fp_alu(rng.fp_bits()));
    R.store(Val{c + kY}, R.fp_alu(rng.fp_bits()));
    return c;
  };

  // Seed the tour with enough cities that a scan far exceeds the L2
  // capacity (8192 cities * 16 B = 128 KB of cities alone).
  const std::uint32_t kSeedCities = params.scaled_units(8, 1024, 8192);
  std::uint32_t first = new_city();
  std::uint32_t prev = first;
  for (std::uint32_t i = 1; i < kSeedCities; ++i) {
    const std::uint32_t c = new_city();
    R.block("cinit");
    R.store(Val{prev + kNext}, R.alu(c));
    R.store(Val{c + kPrev}, R.alu(prev));
    prev = c;
  }
  R.block("cinit");
  R.store(Val{prev + kNext}, R.alu(first));
  R.store(Val{first + kPrev}, R.alu(prev));
  std::uint32_t tour_head = first;
  std::uint32_t tour_len = kSeedCities;

  // Cheapest-insertion: walk the whole tour computing an FP cost for each
  // edge, then splice the new city after the best position.
  while (!R.done()) {
    const std::uint32_t city = new_city();
    Val cx = R.load(Val{city + kX});
    Val cy = R.load(Val{city + kY});

    Val best{tour_head};
    std::uint32_t best_metric = ~0u;
    Val cur{tour_head};
    for (std::uint32_t i = 0; i < tour_len && !R.done(); ++i) {
      R.block("cscan");
      Val x = R.load(cur + kX);
      Val y = R.load(cur + kY);
      Val dx = R.fp_alu(rng.fp_bits(), x, cx);
      Val dy = R.fp_alu(rng.fp_bits(), y, cy);
      Val d2 = R.fp_mul(rng.fp_bits(), dx, dy);
      const std::uint32_t metric = d2.value ^ (d2.value >> 7);
      R.branch(metric < best_metric, d2);
      if (metric < best_metric) {
        best_metric = metric;
        best = cur;
      }
      cur = R.load(cur + kNext);
    }

    // Splice city after `best`.
    R.block("csplice");
    Val succ = R.load(best + kNext);
    R.store(Val{city + kNext}, succ);
    R.store(Val{city + kPrev}, best);
    R.store(best + kNext, Val{city});
    R.store(succ + kPrev, Val{city});
    ++tour_len;

    // 2-opt-style improvement pass (tsp's tour optimisation): walk a
    // window of the tour and conditionally exchange a city with its
    // successor when the local FP cost says so.
    Val cur2{tour_head};
    for (std::uint32_t i = 0; i < tour_len / 8 && !R.done(); ++i) {
      R.block("c2opt");
      Val next = R.load(cur2 + kNext);
      Val x1 = R.load(cur2 + kX);
      Val x2 = R.load(next + kX);
      Val gain = R.fp_alu(rng.fp_bits(), x1, x2);
      const bool swap = (gain.value & 7u) == 0;
      R.branch(swap, gain);
      if (swap && next.value != tour_head && cur2.value != next.value) {
        // Exchange coordinates (cheaper than relinking, same traffic shape).
        Val y1 = R.load(cur2 + kY);
        Val y2 = R.load(next + kY);
        R.store(cur2 + kX, x2);
        R.store(cur2 + kY, y2);
        R.store(next + kX, x1);
        R.store(next + kY, y1);
      }
      cur2 = next;
    }
  }
}

}  // namespace cpc::workload
