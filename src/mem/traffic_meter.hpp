#pragma once
// Memory-traffic accounting for the L2 <-> memory interface (paper Fig. 10).
//
// The paper measures traffic in words moved over the memory bus, where two
// compressed (16-bit) words share one 32-bit bus slot. To keep the count
// exact we meter in *half-word units*: an uncompressed word costs 2 units,
// a compressed word costs 1 unit.

#include <cstdint>

namespace cpc::mem {

class TrafficMeter {
 public:
  /// One full uncompressed 32-bit word moved over the bus.
  void add_uncompressed_words(std::uint64_t n = 1) { fetch_half_units_ += 2 * n; }

  /// One compressed 16-bit word moved over the bus (half a slot).
  void add_compressed_words(std::uint64_t n = 1) { fetch_half_units_ += n; }

  /// Write-back traffic uses the same costing but is tracked separately so
  /// benches can report the split.
  void add_writeback_uncompressed_words(std::uint64_t n = 1) { wb_half_units_ += 2 * n; }
  void add_writeback_compressed_words(std::uint64_t n = 1) { wb_half_units_ += n; }

  /// Total traffic in 32-bit word units (fetch + write-back).
  double words() const {
    return static_cast<double>(fetch_half_units_ + wb_half_units_) / 2.0;
  }
  double fetch_words() const { return static_cast<double>(fetch_half_units_) / 2.0; }
  double writeback_words() const { return static_cast<double>(wb_half_units_) / 2.0; }

  std::uint64_t half_units() const { return fetch_half_units_ + wb_half_units_; }
  std::uint64_t fetch_half_units() const { return fetch_half_units_; }
  std::uint64_t writeback_half_units() const { return wb_half_units_; }

  void reset() { fetch_half_units_ = wb_half_units_ = 0; }

  /// Restores exact counts (sweep-journal resume).
  void restore(std::uint64_t fetch_half_units, std::uint64_t wb_half_units) {
    fetch_half_units_ = fetch_half_units;
    wb_half_units_ = wb_half_units;
  }

  /// Accumulates another meter's counts (multi-seed aggregation).
  void merge(const TrafficMeter& other) {
    fetch_half_units_ += other.fetch_half_units_;
    wb_half_units_ += other.wb_half_units_;
  }

 private:
  std::uint64_t fetch_half_units_ = 0;
  std::uint64_t wb_half_units_ = 0;
};

}  // namespace cpc::mem
