#pragma once
// Deterministic heap allocator over the simulated 32-bit address space.
//
// Workload kernels allocate their data structures through this allocator so
// that pointer values stored into the heap are *real* 32-bit addresses.
// Whether two pointers share a 17-bit prefix — the property the paper's
// pointer compression exploits — is then an emergent property of allocation
// order and object size, exactly as with a real malloc. The allocator is a
// bump allocator with an optional per-size free list (malloc-like reuse),
// 8-byte alignment (matching the cache-conscious allocators the paper cites
// [10, 11]), and a deterministic layout for reproducible traces.

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cpc::mem {

/// Default start of the simulated heap; chosen away from zero so null
/// pointers are never valid objects, and not 32K-aligned-degenerate.
inline constexpr std::uint32_t kDefaultHeapBase = 0x1000'0000;

/// Base of the simulated global/static data segment used by kernels.
inline constexpr std::uint32_t kGlobalBase = 0x0040'0000;

/// Base of the simulated stack segment (grows down).
inline constexpr std::uint32_t kStackBase = 0x7fff'0000;

class HeapAllocator {
 public:
  explicit HeapAllocator(std::uint32_t base = kDefaultHeapBase) : next_(base), base_(base) {}

  /// Allocates `bytes` (rounded up to 8-byte granularity); returns the
  /// simulated address. Reuses freed blocks of the same rounded size in
  /// LIFO order, like a segregated free list.
  std::uint32_t allocate(std::uint32_t bytes) {
    const std::uint32_t size = round_up(bytes);
    auto it = free_lists_.find(size);
    if (it != free_lists_.end() && !it->second.empty()) {
      const std::uint32_t addr = it->second.back();
      it->second.pop_back();
      return addr;
    }
    const std::uint32_t addr = next_;
    assert(addr + size > addr && "simulated heap exhausted");
    next_ += size;
    ++live_;
    return addr;
  }

  /// Returns a block to the free list. `bytes` must match the allocation
  /// request size (as with sized deallocation).
  void deallocate(std::uint32_t addr, std::uint32_t bytes) {
    free_lists_[round_up(bytes)].push_back(addr);
  }

  std::uint32_t bytes_reserved() const { return next_ - base_; }
  std::uint32_t high_water() const { return next_; }
  std::uint64_t blocks_allocated() const { return live_; }

 private:
  static constexpr std::uint32_t round_up(std::uint32_t bytes) {
    return (bytes + 7u) & ~7u;
  }

  std::uint32_t next_;
  std::uint32_t base_;
  std::uint64_t live_ = 0;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> free_lists_;
};

}  // namespace cpc::mem
