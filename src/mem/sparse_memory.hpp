#pragma once
// Sparse word-addressable 32-bit physical/virtual memory.
//
// Used both as the simulated main memory behind the cache hierarchy (which
// always holds uncompressed words, paper section 3.1) and as the scratch
// address space the workload kernels materialise their heaps in while
// generating traces.

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace cpc::mem {

/// Word-granular sparse memory over the full 32-bit address space.
/// Unwritten locations read as zero. Addresses are byte addresses; word
/// accesses are 4-byte aligned (the low two bits are ignored, matching the
/// word-level access model the paper's study uses).
class SparseMemory {
 public:
  static constexpr std::uint32_t kPageBytes = 4096;
  static constexpr std::uint32_t kWordsPerPage = kPageBytes / 4;

  std::uint32_t read_word(std::uint32_t addr) const {
    const Page* page = find_page(addr);
    return page == nullptr ? 0 : page->words[word_index(addr)];
  }

  void write_word(std::uint32_t addr, std::uint32_t value) {
    touch_page(addr).words[word_index(addr)] = value;
  }

  /// Number of pages that have been written at least once.
  std::size_t resident_pages() const { return pages_.size(); }

  void clear() { pages_.clear(); }

 private:
  struct Page {
    std::uint32_t words[kWordsPerPage] = {};
  };

  static constexpr std::uint32_t page_number(std::uint32_t addr) {
    return addr / kPageBytes;
  }
  static constexpr std::uint32_t word_index(std::uint32_t addr) {
    return (addr % kPageBytes) / 4;
  }

  const Page* find_page(std::uint32_t addr) const {
    auto it = pages_.find(page_number(addr));
    return it == pages_.end() ? nullptr : it->second.get();
  }

  Page& touch_page(std::uint32_t addr) {
    auto& slot = pages_[page_number(addr)];
    if (!slot) slot = std::make_unique<Page>();
    return *slot;
  }

  std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
};

}  // namespace cpc::mem
