#pragma once
// Sparse word-addressable 32-bit physical/virtual memory.
//
// Used both as the simulated main memory behind the cache hierarchy (which
// always holds uncompressed words, paper section 3.1) and as the scratch
// address space the workload kernels materialise their heaps in while
// generating traces.

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace cpc::mem {

/// Word-granular sparse memory over the full 32-bit address space.
/// Unwritten locations read as zero. Addresses are byte addresses; word
/// accesses are 4-byte aligned (the low two bits are ignored, matching the
/// word-level access model the paper's study uses).
class SparseMemory {
 public:
  static constexpr std::uint32_t kPageBytes = 4096;
  static constexpr std::uint32_t kWordsPerPage = kPageBytes / 4;

  std::uint32_t read_word(std::uint32_t addr) const {
    const Page* page = find_page(addr);
    return page == nullptr ? 0 : page->words[word_index(addr)];
  }

  void write_word(std::uint32_t addr, std::uint32_t value) {
    touch_page(addr).words[word_index(addr)] = value;
  }

  /// Number of pages that have been written at least once.
  std::size_t resident_pages() const { return pages_.size(); }

  /// Order-independent hash over all nonzero words (zero words are
  /// indistinguishable from unwritten locations by construction). Used by
  /// the fault campaign to compare a faulted run's final memory image
  /// against the golden run's.
  std::uint64_t fingerprint() const {
    std::uint64_t fp = 0;
    for (const auto& [page_no, page] : pages_) {
      const std::uint32_t base = page_no * kPageBytes;
      for (std::uint32_t i = 0; i < kWordsPerPage; ++i) {
        const std::uint32_t v = page->words[i];
        if (v == 0) continue;
        std::uint64_t x = (static_cast<std::uint64_t>(base + i * 4) << 32) | v;
        x *= 0x9e3779b97f4a7c15ull;
        x ^= x >> 29;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 32;
        fp += x;  // addition commutes: page iteration order cannot matter
      }
    }
    return fp;
  }

  void clear() { pages_.clear(); }

 private:
  struct Page {
    std::uint32_t words[kWordsPerPage] = {};
  };

  static constexpr std::uint32_t page_number(std::uint32_t addr) {
    return addr / kPageBytes;
  }
  static constexpr std::uint32_t word_index(std::uint32_t addr) {
    return (addr % kPageBytes) / 4;
  }

  const Page* find_page(std::uint32_t addr) const {
    auto it = pages_.find(page_number(addr));
    return it == pages_.end() ? nullptr : it->second.get();
  }

  Page& touch_page(std::uint32_t addr) {
    auto& slot = pages_[page_number(addr)];
    if (!slot) slot = std::make_unique<Page>();
    return *slot;
  }

  std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
};

}  // namespace cpc::mem
