#pragma once
// Sparse word-addressable 32-bit physical/virtual memory.
//
// Used both as the simulated main memory behind the cache hierarchy (which
// always holds uncompressed words, paper section 3.1) and as the scratch
// address space the workload kernels materialise their heaps in while
// generating traces.
//
// First-touch contents are governed by a deterministic fill pattern: with
// fill seed 0 (the default) unwritten locations read as zero; with a
// nonzero seed they read as a seeded hash of their address. The seed comes
// from the CPC_MEM_FILL environment variable unless a constructor argument
// overrides it, so every SparseMemory in a process — workload scratch
// space, hierarchy backing store, shadow golden model — agrees on what an
// untouched word contains. That agreement is what makes differential runs
// and journal resumes bit-reproducible even when a trace reads memory it
// never wrote.

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <unordered_map>

namespace cpc::mem {

/// Fill seed from CPC_MEM_FILL (parsed once per process). Unset, empty or
/// unparseable values mean 0 — the historical zero-fill behaviour.
inline std::uint32_t fill_seed_from_env() {
  static const std::uint32_t seed = [] {
    const char* env = std::getenv("CPC_MEM_FILL");
    if (env == nullptr || *env == '\0') return 0u;
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 0);
    return (end != env && *end == '\0') ? static_cast<std::uint32_t>(value) : 0u;
  }();
  return seed;
}

/// The word an unwritten location reads as under `seed`. Pure function of
/// (address, seed): the shadow oracle and the trace fuzzer recompute it
/// independently of any SparseMemory instance.
constexpr std::uint32_t fill_word_for(std::uint32_t addr, std::uint32_t seed) {
  if (seed == 0) return 0;
  std::uint64_t x = (static_cast<std::uint64_t>(seed) << 32) | (addr & ~3u);
  x *= 0x9e3779b97f4a7c15ull;
  x ^= x >> 31;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 29;
  return static_cast<std::uint32_t>(x);
}

/// Word-granular sparse memory over the full 32-bit address space.
/// Unwritten locations read as the fill pattern (zero by default).
/// Addresses are byte addresses; word accesses are 4-byte aligned (the low
/// two bits are ignored, matching the word-level access model the paper's
/// study uses).
class SparseMemory {
 public:
  static constexpr std::uint32_t kPageBytes = 4096;
  static constexpr std::uint32_t kWordsPerPage = kPageBytes / 4;

  SparseMemory() : fill_seed_(fill_seed_from_env()) {}
  explicit SparseMemory(std::uint32_t fill_seed) : fill_seed_(fill_seed) {}

  std::uint32_t fill_seed() const { return fill_seed_; }
  std::uint32_t fill_word(std::uint32_t addr) const {
    return fill_word_for(addr, fill_seed_);
  }

  std::uint32_t read_word(std::uint32_t addr) const {
    const Page* page = find_page(addr);
    return page == nullptr ? fill_word(addr) : page->words[word_index(addr)];
  }

  void write_word(std::uint32_t addr, std::uint32_t value) {
    touch_page(addr).words[word_index(addr)] = value;
  }

  /// Number of pages that have been written at least once.
  std::size_t resident_pages() const { return pages_.size(); }

  /// Order-independent hash over all words differing from the fill pattern
  /// (fill-valued words are indistinguishable from unwritten locations by
  /// construction). Used by the fault campaign to compare a faulted run's
  /// final memory image against the golden run's.
  std::uint64_t fingerprint() const {
    std::uint64_t fp = 0;
    // cpc-lint: allow(CPC-L002) — the per-word mix is summed, and addition
    // commutes, so the unordered page iteration order cannot reach the result.
    for (const auto& [page_no, page] : pages_) {
      const std::uint32_t base = page_no * kPageBytes;
      for (std::uint32_t i = 0; i < kWordsPerPage; ++i) {
        const std::uint32_t v = page->words[i];
        if (v == fill_word(base + i * 4)) continue;
        std::uint64_t x = (static_cast<std::uint64_t>(base + i * 4) << 32) | v;
        x *= 0x9e3779b97f4a7c15ull;
        x ^= x >> 29;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 32;
        fp += x;  // addition commutes: page iteration order cannot matter
      }
    }
    return fp;
  }

  void clear() { pages_.clear(); }

 private:
  struct Page {
    std::uint32_t words[kWordsPerPage] = {};
  };

  static constexpr std::uint32_t page_number(std::uint32_t addr) {
    return addr / kPageBytes;
  }
  static constexpr std::uint32_t word_index(std::uint32_t addr) {
    return (addr % kPageBytes) / 4;
  }

  const Page* find_page(std::uint32_t addr) const {
    auto it = pages_.find(page_number(addr));
    return it == pages_.end() ? nullptr : it->second.get();
  }

  Page& touch_page(std::uint32_t addr) {
    auto& slot = pages_[page_number(addr)];
    if (!slot) {
      slot = std::make_unique<Page>();
      if (fill_seed_ != 0) {
        // A fresh page starts as the fill pattern, so a word is never
        // observed to change value just because a neighbour was written.
        const std::uint32_t base = page_number(addr) * kPageBytes;
        for (std::uint32_t i = 0; i < kWordsPerPage; ++i) {
          slot->words[i] = fill_word(base + i * 4);
        }
      }
    }
    return *slot;
  }

  std::uint32_t fill_seed_;
  std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
};

}  // namespace cpc::mem
