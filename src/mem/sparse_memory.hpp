#pragma once
// Sparse word-addressable 32-bit physical/virtual memory.
//
// Used both as the simulated main memory behind the cache hierarchy (which
// always holds uncompressed words, paper section 3.1) and as the scratch
// address space the workload kernels materialise their heaps in while
// generating traces.
//
// First-touch contents are governed by a deterministic fill pattern: with
// fill seed 0 (the default) unwritten locations read as zero; with a
// nonzero seed they read as a seeded hash of their address. The seed comes
// from the CPC_MEM_FILL environment variable unless a constructor argument
// overrides it, so every SparseMemory in a process — workload scratch
// space, hierarchy backing store, shadow golden model — agrees on what an
// untouched word contains. That agreement is what makes differential runs
// and journal resumes bit-reproducible even when a trace reads memory it
// never wrote.

#include <array>
#include <cstdint>
#include <cstdlib>
#include <memory>

namespace cpc::mem {

/// Fill seed from CPC_MEM_FILL (parsed once per process). Unset, empty or
/// unparseable values mean 0 — the historical zero-fill behaviour.
inline std::uint32_t fill_seed_from_env() {
  static const std::uint32_t seed = [] {
    const char* env = std::getenv("CPC_MEM_FILL");
    if (env == nullptr || *env == '\0') return 0u;
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 0);
    return (end != env && *end == '\0') ? static_cast<std::uint32_t>(value) : 0u;
  }();
  return seed;
}

/// The word an unwritten location reads as under `seed`. Pure function of
/// (address, seed): the shadow oracle and the trace fuzzer recompute it
/// independently of any SparseMemory instance.
constexpr std::uint32_t fill_word_for(std::uint32_t addr, std::uint32_t seed) {
  if (seed == 0) return 0;
  std::uint64_t x = (static_cast<std::uint64_t>(seed) << 32) | (addr & ~3u);
  x *= 0x9e3779b97f4a7c15ull;
  x ^= x >> 31;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 29;
  return static_cast<std::uint32_t>(x);
}

/// Word-granular sparse memory over the full 32-bit address space.
/// Unwritten locations read as the fill pattern (zero by default).
/// Addresses are byte addresses; word accesses are 4-byte aligned (the low
/// two bits are ignored, matching the word-level access model the paper's
/// study uses).
///
/// Storage is a flat two-level page table: the 20-bit page number splits
/// into a 10-bit root index and a 10-bit leaf index, so a lookup is two
/// pointer hops with no hashing and no probe sequence — and iteration is
/// naturally address-ordered, which keeps fingerprint() deterministic
/// without leaning on "addition commutes" arguments.
class SparseMemory {
 public:
  static constexpr std::uint32_t kPageBytes = 4096;
  static constexpr std::uint32_t kWordsPerPage = kPageBytes / 4;
  static constexpr std::uint32_t kRootEntries = 1024;  // high 10 page bits
  static constexpr std::uint32_t kLeafEntries = 1024;  // low 10 page bits

  SparseMemory() : fill_seed_(fill_seed_from_env()) {}
  explicit SparseMemory(std::uint32_t fill_seed) : fill_seed_(fill_seed) {}

  std::uint32_t fill_seed() const { return fill_seed_; }
  std::uint32_t fill_word(std::uint32_t addr) const {
    return fill_word_for(addr, fill_seed_);
  }

  std::uint32_t read_word(std::uint32_t addr) const {
    const Page* page = find_page(addr);
    return page == nullptr ? fill_word(addr) : page->words[word_index(addr)];
  }

  void write_word(std::uint32_t addr, std::uint32_t value) {
    touch_page(addr).words[word_index(addr)] = value;
  }

  /// Bulk read of `n` consecutive words starting at `addr`. Equivalent to
  /// `n` read_word() calls, but the page-table walk is hoisted to once per
  /// page instead of once per word — cache-line fills are the hot caller.
  void read_words(std::uint32_t addr, std::uint32_t n, std::uint32_t* out) const {
    std::uint32_t i = 0;
    while (i < n) {
      const std::uint32_t a = addr + i * 4;
      const std::uint32_t w = word_index(a);
      const std::uint32_t left_in_page = kWordsPerPage - w;
      const std::uint32_t chunk = n - i < left_in_page ? n - i : left_in_page;
      if (const Page* page = find_page(a)) {
        for (std::uint32_t k = 0; k < chunk; ++k) out[i + k] = page->words[w + k];
      } else {
        for (std::uint32_t k = 0; k < chunk; ++k) out[i + k] = fill_word(a + k * 4);
      }
      i += chunk;
    }
  }

  /// Bulk write of the masked words among `n` consecutive words starting at
  /// `addr` (bit i of `mask` selects word i, n <= 32). Equivalent to one
  /// write_word() per set mask bit, with the page-table walk hoisted to once
  /// per touched page — line write-backs are the hot caller.
  void write_words(std::uint32_t addr, std::uint32_t n, std::uint32_t mask,
                   const std::uint32_t* in) {
    std::uint32_t i = 0;
    while (i < n) {
      const std::uint32_t a = addr + i * 4;
      const std::uint32_t w = word_index(a);
      const std::uint32_t left_in_page = kWordsPerPage - w;
      const std::uint32_t chunk = n - i < left_in_page ? n - i : left_in_page;
      const std::uint32_t chunk_mask =
          (chunk >= 32 ? ~0u : (1u << chunk) - 1u) & (mask >> i);
      if (chunk_mask != 0) {
        Page& page = touch_page(a);
        for (std::uint32_t k = 0; k < chunk; ++k) {
          if ((chunk_mask >> k) & 1u) page.words[w + k] = in[i + k];
        }
      }
      i += chunk;
    }
  }

  /// Unmasked convenience overload: writes all `n` words (n <= 32).
  void write_words(std::uint32_t addr, std::uint32_t n, const std::uint32_t* in) {
    write_words(addr, n, n >= 32 ? 0xffff'ffffu : (1u << n) - 1u, in);
  }

  /// Number of pages that have been written at least once.
  std::size_t resident_pages() const { return resident_pages_; }

  /// Hash over all words differing from the fill pattern (fill-valued words
  /// are indistinguishable from unwritten locations by construction). The
  /// page table iterates in address order, and the per-word mix is summed
  /// (addition commutes), so the value matches the historical
  /// unordered-container implementation bit for bit. Used by the fault
  /// campaign to compare a faulted run's final memory image against the
  /// golden run's.
  std::uint64_t fingerprint() const {
    std::uint64_t fp = 0;
    for (std::uint32_t r = 0; r < kRootEntries; ++r) {
      const Leaf* leaf = root_[r].get();
      if (leaf == nullptr) continue;
      for (std::uint32_t l = 0; l < kLeafEntries; ++l) {
        const Page* page = leaf->pages[l].get();
        if (page == nullptr) continue;
        const std::uint32_t base = (r * kLeafEntries + l) * kPageBytes;
        for (std::uint32_t i = 0; i < kWordsPerPage; ++i) {
          const std::uint32_t v = page->words[i];
          if (v == fill_word(base + i * 4)) continue;
          std::uint64_t x = (static_cast<std::uint64_t>(base + i * 4) << 32) | v;
          x *= 0x9e3779b97f4a7c15ull;
          x ^= x >> 29;
          x *= 0xbf58476d1ce4e5b9ull;
          x ^= x >> 32;
          fp += x;
        }
      }
    }
    return fp;
  }

  void clear() {
    for (auto& leaf : root_) leaf.reset();
    resident_pages_ = 0;
  }

 private:
  struct Page {
    std::uint32_t words[kWordsPerPage] = {};
  };
  struct Leaf {
    std::array<std::unique_ptr<Page>, kLeafEntries> pages;
  };

  static constexpr std::uint32_t page_number(std::uint32_t addr) {
    return addr / kPageBytes;
  }
  static constexpr std::uint32_t word_index(std::uint32_t addr) {
    return (addr % kPageBytes) / 4;
  }
  static constexpr std::uint32_t root_index(std::uint32_t addr) {
    return page_number(addr) / kLeafEntries;
  }
  static constexpr std::uint32_t leaf_index(std::uint32_t addr) {
    return page_number(addr) % kLeafEntries;
  }

  const Page* find_page(std::uint32_t addr) const {
    const Leaf* leaf = root_[root_index(addr)].get();
    return leaf == nullptr ? nullptr : leaf->pages[leaf_index(addr)].get();
  }

  Page& touch_page(std::uint32_t addr) {
    std::unique_ptr<Leaf>& leaf = root_[root_index(addr)];
    if (!leaf) leaf = std::make_unique<Leaf>();
    std::unique_ptr<Page>& slot = leaf->pages[leaf_index(addr)];
    if (!slot) {
      slot = std::make_unique<Page>();
      ++resident_pages_;
      if (fill_seed_ != 0) {
        // A fresh page starts as the fill pattern, so a word is never
        // observed to change value just because a neighbour was written.
        const std::uint32_t base = page_number(addr) * kPageBytes;
        for (std::uint32_t i = 0; i < kWordsPerPage; ++i) {
          slot->words[i] = fill_word(base + i * 4);
        }
      }
    }
    return *slot;
  }

  std::uint32_t fill_seed_;
  std::array<std::unique_ptr<Leaf>, kRootEntries> root_;
  std::size_t resident_pages_ = 0;
};

}  // namespace cpc::mem
