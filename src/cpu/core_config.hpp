#pragma once
// Baseline processor parameters (paper Fig. 9): a four-issue out-of-order
// superscalar. Window size is not listed in Fig. 9; we use SimpleScalar
// 3.0's default RUU size of 16 (the paper's 8-entry LD/ST queue is also the
// SimpleScalar default, suggesting the defaults were kept).

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "cache/config.hpp"

namespace cpc::cpu {

class CommitObserver;  // cpu/commit_observer.hpp

/// Thrown by OooCore::run when the cooperative cancel flag below is raised
/// (sweep watchdog timeouts). Derives from runtime_error so containment
/// layers can report it like any other job failure.
class SimulationCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CoreConfig {
  /// When non-null, polled periodically by OooCore::run; raising the flag
  /// makes the run throw SimulationCancelled within a bounded number of
  /// simulated cycles. Used by the sweep watchdog — the simulation threads
  /// stay joinable instead of being killed.
  const std::atomic<bool>* cancel = nullptr;

  /// When non-null, notified at in-order commit of every load and store
  /// (cpu/commit_observer.hpp). This is the architectural hook the shadow
  /// oracle hangs off; sim::run_trace_on wires it automatically when the
  /// hierarchy is an OracleHierarchy.
  CommitObserver* commit_observer = nullptr;

  /// Wrong-path modelling: probes issued per mispredicted branch while
  /// fetch is stalled on the redirect (0 = off, the default). Wrong-path
  /// *loads* really access the data cache — they perturb LRU state, miss
  /// counters and traffic like real speculative execution does, but their
  /// micro-ops never commit. Wrong-path *stores* are squashed in the store
  /// queue: they never reach the data cache and never notify the commit
  /// observer (matching hardware, where stores drain at commit only).
  unsigned wrongpath_depth = 0;

  /// TEST ONLY — models the conflated issue-time store path a naive
  /// simulator has, where speculative stores write the data cache directly.
  /// The wrong-path regression test enables this to prove the shadow
  /// oracle catches the resulting architectural corruption.
  bool wrongpath_stores_to_dcache = false;

  unsigned fetch_width = 4;
  unsigned issue_width = 4;
  unsigned commit_width = 4;
  unsigned ifq_size = 16;    ///< Fig. 9: "IFQ size: 16 instr."
  unsigned window_size = 16; ///< SimpleScalar RUU default
  unsigned lsq_size = 8;     ///< Fig. 9: "LD/ST Queue: 8 entry"

  // Functional units (Fig. 9): 4 ALUs, 1 Mult/Div, 2 Mem ports,
  // 4 FALU, 1 FMult/FDiv. Units are pipelined with fixed latencies.
  unsigned int_alu_units = 4;
  unsigned int_mult_units = 1;
  unsigned mem_ports = 2;
  unsigned fp_alu_units = 4;
  unsigned fp_mult_units = 1;

  unsigned lat_int_alu = 1;
  unsigned lat_int_mult = 3;
  unsigned lat_int_div = 20;
  unsigned lat_fp_alu = 2;
  unsigned lat_fp_mult = 4;
  unsigned lat_fp_div = 12;
  unsigned lat_branch = 1;

  unsigned icache_hit_latency = 1;    ///< Fig. 9
  unsigned icache_miss_latency = 10;  ///< Fig. 9
  cache::CacheGeometry icache{8 * 1024, 64, 1};

  std::uint32_t bimod_entries = 2048;

  /// Disables the quiescent-cycle fast-forward in OooCore::run, forcing the
  /// reference cycle-by-cycle loop. The fast-forward is provably equivalent
  /// (tests/test_core_fastforward.cpp runs both paths and compares every
  /// counter); this escape hatch exists so that proof stays executable.
  bool disable_cycle_skip = false;
};

}  // namespace cpc::cpu
