#include "cpu/ooo_core.hpp"

#include <algorithm>
#include <cassert>

#include "cpu/commit_observer.hpp"

namespace cpc::cpu {

namespace {
constexpr std::uint64_t kPending = ~std::uint64_t{0};
constexpr std::uint64_t kNobody = ~std::uint64_t{0};

/// Deterministic wrong-path effective address: a hash of the mispredicted
/// branch's site, its (not-taken) target and a per-run salt. Word-aligned.
std::uint32_t wrongpath_addr(std::uint32_t pc, std::uint32_t target,
                             std::uint32_t salt) {
  std::uint32_t x = pc ^ (target << 1) ^ (salt * 0x9e3779b9u);
  x ^= x >> 16;
  x *= 0x7feb352du;
  x ^= x >> 15;
  x *= 0x846ca68bu;
  x ^= x >> 16;
  return x & ~3u;
}
}  // namespace

OooCore::OooCore(CoreConfig config, cache::MemoryHierarchy& dcache)
    : cfg_(config),
      dcache_(dcache),
      predictor_(config.bimod_entries),
      icache_(config.icache),
      done_ring_(kRingSize, 0),
      who_ring_(kRingSize, kNobody),
      missed_ring_(kRingSize, false) {
  assert(cfg_.window_size + cfg_.ifq_size + kMaxDepDistance < kRingSize);
}

void OooCore::issue_wrongpath_probes(std::uint32_t pc, std::uint32_t target,
                                     CoreStats& stats) {
  // Probe pattern (deterministic per mispredict): even probes walk the data
  // just past the most recently fetched memory op — the structures the
  // squashed code would have kept touching — odd ones hash far away.
  // Probes 0,1 (mod 4) are loads, 2,3 are stores. None of them ever
  // commits or notifies the commit observer.
  for (unsigned k = 0; k < cfg_.wrongpath_depth; ++k) {
    const std::uint32_t addr =
        (k & 1u) ? wrongpath_addr(pc, target, wrongpath_salt_ + k)
                 : (wrongpath_data_anchor_ + 4u * (k >> 1)) & ~3u;
    if ((k & 2u) == 0) {
      std::uint32_t ignored = 0;
      dcache_.read(addr, ignored);  // speculative load: real cache pollution
      ++stats.wrongpath_loads;
    } else {
      // Speculative stores die in the store queue; they must never write
      // the data cache. The test-only escape hatch below models the buggy
      // conflated design the shadow oracle exists to catch.
      if (cfg_.wrongpath_stores_to_dcache) {
        dcache_.write(addr, wrongpath_addr(pc, target, wrongpath_salt_ + 77u + k));
      }
      ++stats.wrongpath_stores_squashed;
    }
  }
  wrongpath_salt_ += cfg_.wrongpath_depth;
}

void OooCore::record_dispatch(std::uint64_t idx) {
  done_ring_[idx % kRingSize] = kPending;
  who_ring_[idx % kRingSize] = idx;
  missed_ring_[idx % kRingSize] = false;
}

void OooCore::record_done(std::uint64_t idx, std::uint64_t done) {
  assert(who_ring_[idx % kRingSize] == idx);
  done_ring_[idx % kRingSize] = done;
}

bool OooCore::producer_done(std::uint64_t producer, std::uint64_t cycle) const {
  if (who_ring_[producer % kRingSize] != producer) {
    return true;  // producer left the tracked span long ago — surely complete
  }
  const std::uint64_t done = done_ring_[producer % kRingSize];
  return done != kPending && done <= cycle;
}

bool OooCore::deps_ready(const MicroOp& op, std::uint64_t idx, std::uint64_t cycle) const {
  if (op.dep1 != 0 && op.dep1 <= idx && !producer_done(idx - op.dep1, cycle)) return false;
  if (op.dep2 != 0 && op.dep2 <= idx && !producer_done(idx - op.dep2, cycle)) return false;
  return true;
}

bool OooCore::memory_order_clear(std::span<const MicroOp> trace,
                                 std::size_t window_pos) const {
  // Perfect disambiguation: only an older, not-yet-issued memory op to the
  // same word blocks this one.
  const std::uint32_t word = trace[window_[window_pos].idx].addr & ~3u;
  for (std::size_t i = 0; i < window_pos; ++i) {
    const WindowEntry& e = window_[i];
    if (e.issued) continue;
    const MicroOp& other = trace[e.idx];
    if (is_memory_op(other.kind) && (other.addr & ~3u) == word) return false;
  }
  return true;
}

CoreStats OooCore::run(std::span<const MicroOp> trace) {
  CoreStats stats;
  std::uint64_t cycle = 0;
  std::uint64_t fetch_index = 0;
  std::uint64_t committed = 0;
  std::uint64_t lsq_used = 0;
  std::uint64_t fetch_blocked_until = 0;  // I-cache miss stall
  std::uint64_t redirect_op = kNobody;    // mispredicted branch blocking fetch

  window_.clear();
  ifq_.clear();
  outstanding_miss_ends_.clear();
  wrongpath_salt_ = 0;
  wrongpath_data_anchor_ = 0;

  while (committed < trace.size()) {
    // Cooperative cancellation (sweep watchdog): cheap mask test, polled
    // every 256 cycles so a hung configuration still reacts promptly.
    if ((cycle & 255u) == 0 && cfg_.cancel != nullptr &&
        cfg_.cancel->load(std::memory_order_relaxed)) {
      throw SimulationCancelled("simulation cancelled at cycle " +
                                std::to_string(cycle));
    }

    // ---- commit (in order) ------------------------------------------
    unsigned committed_now = 0;
    while (!window_.empty() && committed_now < cfg_.commit_width) {
      WindowEntry& head = window_.front();
      if (!head.issued || head.done_cycle > cycle) break;
      if (cfg_.commit_observer != nullptr) {
        const MicroOp& op = trace[head.idx];
        if (op.kind == OpKind::kLoad) {
          cfg_.commit_observer->on_load_commit(head.idx, op.addr & ~3u,
                                               head.loaded_value);
        } else if (op.kind == OpKind::kStore) {
          cfg_.commit_observer->on_store_commit(head.idx, op.addr & ~3u,
                                                op.value);
        }
      }
      if (head.in_lsq) --lsq_used;
      window_.pop_front();
      ++committed;
      ++committed_now;
    }

    // ---- issue (oldest first) ----------------------------------------
    unsigned issued_now = 0;
    unsigned int_alu_used = 0, int_mult_used = 0, mem_used = 0;
    unsigned fp_alu_used = 0, fp_mult_used = 0;
    for (std::size_t i = 0; i < window_.size() && issued_now < cfg_.issue_width; ++i) {
      WindowEntry& e = window_[i];
      if (e.issued) continue;
      const MicroOp& op = trace[e.idx];
      if (!deps_ready(op, e.idx, cycle)) continue;

      unsigned latency = 0;
      switch (op.kind) {
        case OpKind::kIntAlu:
          if (int_alu_used == cfg_.int_alu_units) continue;
          ++int_alu_used;
          latency = cfg_.lat_int_alu;
          break;
        case OpKind::kIntMul:
          if (int_mult_used == cfg_.int_mult_units) continue;
          ++int_mult_used;
          latency = cfg_.lat_int_mult;
          break;
        case OpKind::kIntDiv:
          if (int_mult_used == cfg_.int_mult_units) continue;
          ++int_mult_used;
          latency = cfg_.lat_int_div;
          break;
        case OpKind::kFpAlu:
          if (fp_alu_used == cfg_.fp_alu_units) continue;
          ++fp_alu_used;
          latency = cfg_.lat_fp_alu;
          break;
        case OpKind::kFpMul:
          if (fp_mult_used == cfg_.fp_mult_units) continue;
          ++fp_mult_used;
          latency = cfg_.lat_fp_mult;
          break;
        case OpKind::kFpDiv:
          if (fp_mult_used == cfg_.fp_mult_units) continue;
          ++fp_mult_used;
          latency = cfg_.lat_fp_div;
          break;
        case OpKind::kBranch:
          latency = cfg_.lat_branch;
          break;
        case OpKind::kLoad:
        case OpKind::kStore: {
          if (mem_used == cfg_.mem_ports) continue;
          if (!memory_order_clear(trace, i)) continue;
          ++mem_used;
          if (op.kind == OpKind::kLoad) {
            std::uint32_t value = 0;
            const cache::AccessResult r = dcache_.read(op.addr, value);
            if (value != op.value) ++stats.value_mismatches;
            e.loaded_value = value;  // reported to the observer at commit
            latency = r.latency;
            if (r.l1_miss) {
              outstanding_miss_ends_.push_back(cycle + latency);
              missed_ring_[e.idx % kRingSize] = true;
            }
          } else {
            dcache_.write(op.addr, op.value);
            latency = 1;  // stores retire through the write buffer
          }
          break;
        }
      }

      e.issued = true;
      e.done_cycle = cycle + latency;
      record_done(e.idx, e.done_cycle);
      ++issued_now;

      // Measured miss importance (Fig. 14): does this op directly consume
      // the result of an L1-missing load?
      const auto produced_by_miss = [this, &e](std::uint8_t dep) {
        if (dep == 0 || dep > e.idx) return false;
        const std::uint64_t producer = e.idx - dep;
        return who_ring_[producer % kRingSize] == producer &&
               missed_ring_[producer % kRingSize];
      };
      if (produced_by_miss(op.dep1) || produced_by_miss(op.dep2)) {
        ++stats.ops_depending_on_miss;
      }
    }

    // ---- dispatch IFQ → window ----------------------------------------
    while (!ifq_.empty() && window_.size() < cfg_.window_size) {
      const std::uint64_t idx = ifq_.front();
      const bool mem = is_memory_op(trace[idx].kind);
      if (mem && lsq_used == cfg_.lsq_size) break;
      ifq_.pop_front();
      if (mem) ++lsq_used;
      window_.push_back(WindowEntry{idx, false, mem, 0});
      record_dispatch(idx);
    }

    // ---- fetch ---------------------------------------------------------
    if (redirect_op != kNobody && producer_done(redirect_op, cycle)) {
      redirect_op = kNobody;  // mispredicted branch resolved; fetch resumes
    }
    if (redirect_op == kNobody && cycle >= fetch_blocked_until) {
      unsigned fetched = 0;
      while (fetched < cfg_.fetch_width && ifq_.size() < cfg_.ifq_size &&
             fetch_index < trace.size()) {
        const MicroOp& op = trace[fetch_index];
        if (!icache_.access(op.pc)) {
          ++stats.icache_misses;
          fetch_blocked_until = cycle + cfg_.icache_miss_latency;
          break;
        }
        if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) {
          wrongpath_data_anchor_ = op.addr;
        }
        if (op.kind == OpKind::kBranch) {
          ++stats.branches;
          const bool predicted = predictor_.predict(op.pc);
          predictor_.update(op.pc, op.branch_taken());
          if (predicted != op.branch_taken()) {
            ++stats.mispredicts;
            redirect_op = fetch_index;  // fetch stalls until this resolves
            if (cfg_.wrongpath_depth > 0) {
              issue_wrongpath_probes(op.pc, op.addr, stats);
            }
            ifq_.push_back(fetch_index);
            ++fetch_index;
            ++fetched;
            break;
          }
        }
        ifq_.push_back(fetch_index);
        ++fetch_index;
        ++fetched;
      }
    }

    // ---- per-cycle statistics ------------------------------------------
    std::erase_if(outstanding_miss_ends_,
                  [cycle](std::uint64_t end) { return end <= cycle; });
    std::uint64_t ready = 0;
    for (std::size_t i = 0; i < window_.size(); ++i) {
      const WindowEntry& e = window_[i];
      if (!e.issued && deps_ready(trace[e.idx], e.idx, cycle)) ++ready;
    }
    stats.ready_sum_all_cycles += ready;
    if (!outstanding_miss_ends_.empty()) {
      ++stats.miss_cycles;
      stats.ready_sum_miss_cycles += ready;
    }

    ++cycle;
  }

  stats.cycles = cycle;
  stats.committed = committed;
  stats.loads = dcache_.stats().reads;
  stats.stores = dcache_.stats().writes;
  return stats;
}

}  // namespace cpc::cpu
