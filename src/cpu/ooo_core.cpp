#include "cpu/ooo_core.hpp"

#include <algorithm>
#include <cassert>

#include "cpu/commit_observer.hpp"

namespace cpc::cpu {

namespace {
constexpr std::uint64_t kPending = ~std::uint64_t{0};
constexpr std::uint64_t kNobody = ~std::uint64_t{0};
constexpr std::uint64_t kPendingCycle = ~std::uint64_t{0};

/// Deterministic wrong-path effective address: a hash of the mispredicted
/// branch's site, its (not-taken) target and a per-run salt. Word-aligned.
std::uint32_t wrongpath_addr(std::uint32_t pc, std::uint32_t target,
                             std::uint32_t salt) {
  std::uint32_t x = pc ^ (target << 1) ^ (salt * 0x9e3779b9u);
  x ^= x >> 16;
  x *= 0x7feb352du;
  x ^= x >> 15;
  x *= 0x846ca68bu;
  x ^= x >> 16;
  return x & ~3u;
}
}  // namespace

OooCore::OooCore(CoreConfig config, cache::MemoryHierarchy& dcache)
    : cfg_(config),
      dcache_(dcache),
      predictor_(config.bimod_entries),
      icache_(config.icache),
      done_ring_(kRingSize, 0),
      who_ring_(kRingSize, kNobody),
      missed_ring_(kRingSize, 0),
      issued_ring_(kRingSize, 0),
      ready_at_ring_(kRingSize, 0),
      loaded_ring_(kRingSize, 0) {
  assert(cfg_.window_size + cfg_.ifq_size + kMaxDepDistance < kRingSize);
}

void OooCore::issue_wrongpath_probes(std::uint32_t pc, std::uint32_t target,
                                     CoreStats& stats) {
  // Probe pattern (deterministic per mispredict): even probes walk the data
  // just past the most recently fetched memory op — the structures the
  // squashed code would have kept touching — odd ones hash far away.
  // Probes 0,1 (mod 4) are loads, 2,3 are stores. None of them ever
  // commits or notifies the commit observer.
  for (unsigned k = 0; k < cfg_.wrongpath_depth; ++k) {
    const std::uint32_t addr =
        (k & 1u) ? wrongpath_addr(pc, target, wrongpath_salt_ + k)
                 : (wrongpath_data_anchor_ + 4u * (k >> 1)) & ~3u;
    if ((k & 2u) == 0) {
      std::uint32_t ignored = 0;
      dcache_.read(addr, ignored);  // speculative load: real cache pollution
      ++stats.wrongpath_loads;
    } else {
      // Speculative stores die in the store queue; they must never write
      // the data cache. The test-only escape hatch below models the buggy
      // conflated design the shadow oracle exists to catch.
      if (cfg_.wrongpath_stores_to_dcache) {
        dcache_.write(addr, wrongpath_addr(pc, target, wrongpath_salt_ + 77u + k));
      }
      ++stats.wrongpath_stores_squashed;
    }
  }
  wrongpath_salt_ += cfg_.wrongpath_depth;
}

void OooCore::record_dispatch(std::uint64_t idx) {
  const std::size_t slot = idx & kRingMask;
  done_ring_[slot] = kPending;
  who_ring_[slot] = idx;
  missed_ring_[slot] = 0;
  issued_ring_[slot] = 0;
  ready_at_ring_[slot] = kPendingCycle;
  loaded_ring_[slot] = 0;
}

void OooCore::record_done(std::uint64_t idx, std::uint64_t done) {
  assert(who_ring_[idx & kRingMask] == idx);
  done_ring_[idx & kRingMask] = done;
}

bool OooCore::producer_done(std::uint64_t producer, std::uint64_t cycle) const {
  if (who_ring_[producer & kRingMask] != producer) {
    return true;  // producer left the tracked span long ago — surely complete
  }
  const std::uint64_t done = done_ring_[producer & kRingMask];
  return done != kPending && done <= cycle;
}

bool OooCore::memory_order_clear(std::span<const MicroOp> trace,
                                 std::uint64_t first_unissued,
                                 std::uint64_t idx) const {
  // Perfect disambiguation: only an older, not-yet-issued memory op to the
  // same word blocks this one. Window entries below first_unissued have all
  // issued, so the scan starts there.
  const std::uint32_t word = trace[idx].addr & ~3u;
  for (std::uint64_t i = first_unissued; i < idx; ++i) {
    if (issued_ring_[i & kRingMask]) continue;
    const MicroOp& other = trace[i];
    if (is_memory_op(other.kind) && (other.addr & ~3u) == word) return false;
  }
  return true;
}

std::uint64_t OooCore::compute_ready_at(const MicroOp& op,
                                        std::uint64_t idx) const {
  std::uint64_t ready_at = 0;
  for (const std::uint8_t dep : {op.dep1, op.dep2}) {
    if (dep == 0 || dep > idx) continue;
    const std::uint64_t producer = idx - dep;
    if (who_ring_[producer & kRingMask] != producer) continue;  // long gone
    const std::uint64_t done = done_ring_[producer & kRingMask];
    if (done == kPending) return kPendingCycle;
    ready_at = std::max(ready_at, done);
  }
  return ready_at;
}

std::uint64_t OooCore::next_event_cycle(std::span<const MicroOp> trace,
                                        std::uint64_t cycle,
                                        std::uint64_t commit_idx,
                                        std::uint64_t first_unissued,
                                        std::uint64_t disp_idx,
                                        std::uint64_t fetch_idx,
                                        std::uint64_t fetch_blocked_until,
                                        std::uint64_t redirect_op) const {
  std::uint64_t next = kNobody;

  // Commit: the head entry completes.
  if (commit_idx < disp_idx && issued_ring_[commit_idx & kRingMask]) {
    next = std::min(next, done_ring_[commit_idx & kRingMask]);
  }

  // Issue: a stalled entry's producers complete. An entry whose producer is
  // itself unissued cannot become ready before that producer issues — which
  // cannot happen before one of the events collected here fires — so such
  // entries contribute no candidate of their own. Entries that are already
  // ready but blocked (memory ordering) likewise wait on a collected event.
  for (std::uint64_t idx = first_unissued; idx < disp_idx; ++idx) {
    const std::size_t slot = idx & kRingMask;
    if (issued_ring_[slot]) continue;
    std::uint64_t ready_at = ready_at_ring_[slot];
    if (ready_at == kPendingCycle) ready_at = compute_ready_at(trace[idx], idx);
    if (ready_at != kPendingCycle && ready_at > cycle) {
      next = std::min(next, ready_at);
    }
  }

  // Fetch resumes (only meaningful while the IFQ has room and trace
  // remains). A pending redirect whose branch has not even issued yet is
  // covered by the issue events above.
  if (fetch_idx - disp_idx < cfg_.ifq_size && fetch_idx < trace.size()) {
    std::uint64_t resume = fetch_blocked_until;
    bool known = true;
    if (redirect_op != kNobody) {
      if (who_ring_[redirect_op & kRingMask] == redirect_op) {
        const std::uint64_t done = done_ring_[redirect_op & kRingMask];
        if (done == kPending) {
          known = false;
        } else {
          resume = std::max(resume, done);
        }
      }
      // Slot mismatch: producer_done() treats the redirect as resolved, so
      // fetch is gated by fetch_blocked_until alone.
    }
    if (known) next = std::min(next, std::max(resume, cycle + 1));
  }

  return next;
}

CoreStats OooCore::run(std::span<const MicroOp> trace) {
  CoreStats stats;
  std::uint64_t cycle = 0;
  // Ops flow through the pipeline strictly in trace order, so the window
  // and the IFQ always hold consecutive trace indices:
  //   window = [commit_idx, disp_idx),   IFQ = [disp_idx, fetch_idx).
  // Per-op state (issued flag, completion cycle, loaded value, ...) lives
  // in the SoA rings, indexed by trace position.
  std::uint64_t commit_idx = 0;
  std::uint64_t disp_idx = 0;
  std::uint64_t fetch_idx = 0;
  std::uint64_t first_unissued = 0;  // all window entries below have issued
  std::uint64_t lsq_used = 0;
  std::uint64_t fetch_blocked_until = 0;  // I-cache miss stall
  std::uint64_t redirect_op = kNobody;    // mispredicted branch blocking fetch

  max_miss_end_ = 0;
  wrongpath_salt_ = 0;
  wrongpath_data_anchor_ = 0;

  while (commit_idx < trace.size()) {
    // Cooperative cancellation (sweep watchdog): cheap mask test, polled
    // every 256 cycles so a hung configuration still reacts promptly.
    if ((cycle & 255u) == 0 && cfg_.cancel != nullptr &&
        cfg_.cancel->load(std::memory_order_relaxed)) {
      throw SimulationCancelled("simulation cancelled at cycle " +
                                std::to_string(cycle));
    }

    // ---- commit (in order) ------------------------------------------
    unsigned committed_now = 0;
    while (commit_idx < disp_idx && committed_now < cfg_.commit_width) {
      const std::size_t slot = commit_idx & kRingMask;
      if (!issued_ring_[slot] || done_ring_[slot] > cycle) break;
      const MicroOp& op = trace[commit_idx];
      if (cfg_.commit_observer != nullptr) {
        if (op.kind == OpKind::kLoad) {
          cfg_.commit_observer->on_load_commit(commit_idx, op.addr & ~3u,
                                               loaded_ring_[slot]);
        } else if (op.kind == OpKind::kStore) {
          cfg_.commit_observer->on_store_commit(commit_idx, op.addr & ~3u,
                                                op.value);
        }
      }
      if (is_memory_op(op.kind)) --lsq_used;
      ++commit_idx;
      ++committed_now;
    }

    // ---- issue (oldest first) + ready census --------------------------
    // One fused scan does both the issue stage and the Fig. 15 ready-queue
    // census the reference model took from a second whole-window pass: a
    // ready entry either issues now (then it is not "ready at end of
    // cycle") or stays blocked and is counted. Entries dispatched later
    // this cycle are appended to the census after the dispatch stage.
    // Everything below first_unissued has issued; start the scan there.
    first_unissued = std::max(first_unissued, commit_idx);
    while (first_unissued < disp_idx &&
           issued_ring_[first_unissued & kRingMask]) {
      ++first_unissued;
    }
    std::uint64_t ready = 0;  // ready-but-unissued, as of end of cycle
    unsigned issued_now = 0;
    unsigned int_alu_used = 0, int_mult_used = 0, mem_used = 0;
    unsigned fp_alu_used = 0, fp_mult_used = 0;
    for (std::uint64_t idx = first_unissued; idx < disp_idx; ++idx) {
      const std::size_t slot = idx & kRingMask;
      if (issued_ring_[slot]) continue;
      const MicroOp& op = trace[idx];
      // Producer completion times are fixed at their issue, so the cycle an
      // entry becomes ready is computed once and memoized; until every
      // producer has issued it stays kPendingCycle and is re-derived.
      std::uint64_t ready_at = ready_at_ring_[slot];
      if (ready_at == kPendingCycle) {
        ready_at = compute_ready_at(op, idx);
        ready_at_ring_[slot] = ready_at;
      }
      if (ready_at > cycle) continue;
      if (issued_now == cfg_.issue_width) {
        ++ready;  // past the issue width: can only wait
        continue;
      }

      unsigned latency = 0;
      switch (op.kind) {
        case OpKind::kIntAlu:
          if (int_alu_used == cfg_.int_alu_units) { ++ready; continue; }
          ++int_alu_used;
          latency = cfg_.lat_int_alu;
          break;
        case OpKind::kIntMul:
          if (int_mult_used == cfg_.int_mult_units) { ++ready; continue; }
          ++int_mult_used;
          latency = cfg_.lat_int_mult;
          break;
        case OpKind::kIntDiv:
          if (int_mult_used == cfg_.int_mult_units) { ++ready; continue; }
          ++int_mult_used;
          latency = cfg_.lat_int_div;
          break;
        case OpKind::kFpAlu:
          if (fp_alu_used == cfg_.fp_alu_units) { ++ready; continue; }
          ++fp_alu_used;
          latency = cfg_.lat_fp_alu;
          break;
        case OpKind::kFpMul:
          if (fp_mult_used == cfg_.fp_mult_units) { ++ready; continue; }
          ++fp_mult_used;
          latency = cfg_.lat_fp_mult;
          break;
        case OpKind::kFpDiv:
          if (fp_mult_used == cfg_.fp_mult_units) { ++ready; continue; }
          ++fp_mult_used;
          latency = cfg_.lat_fp_div;
          break;
        case OpKind::kBranch:
          latency = cfg_.lat_branch;
          break;
        case OpKind::kLoad:
        case OpKind::kStore: {
          if (mem_used == cfg_.mem_ports ||
              !memory_order_clear(trace, first_unissued, idx)) {
            ++ready;
            continue;
          }
          ++mem_used;
          if (op.kind == OpKind::kLoad) {
            std::uint32_t value = 0;
            const cache::AccessResult r = dcache_.read(op.addr, value);
            if (value != op.value) ++stats.value_mismatches;
            loaded_ring_[slot] = value;  // reported to the observer at commit
            latency = r.latency;
            if (r.l1_miss) {
              max_miss_end_ = std::max(max_miss_end_, cycle + latency);
              missed_ring_[slot] = 1;
            }
          } else {
            dcache_.write(op.addr, op.value);
            latency = 1;  // stores retire through the write buffer
          }
          break;
        }
      }

      issued_ring_[slot] = 1;
      record_done(idx, cycle + latency);
      ++issued_now;

      // Measured miss importance (Fig. 14): does this op directly consume
      // the result of an L1-missing load?
      const auto produced_by_miss = [this, idx](std::uint8_t dep) {
        if (dep == 0 || dep > idx) return false;
        const std::uint64_t producer = idx - dep;
        return who_ring_[producer & kRingMask] == producer &&
               missed_ring_[producer & kRingMask] != 0;
      };
      if (produced_by_miss(op.dep1) || produced_by_miss(op.dep2)) {
        ++stats.ops_depending_on_miss;
      }
    }

    // ---- dispatch IFQ → window ----------------------------------------
    unsigned dispatched = 0;
    while (disp_idx < fetch_idx && disp_idx - commit_idx < cfg_.window_size) {
      const bool mem = is_memory_op(trace[disp_idx].kind);
      if (mem && lsq_used == cfg_.lsq_size) break;
      if (mem) ++lsq_used;
      record_dispatch(disp_idx);
      // Freshly dispatched entries are part of this cycle's ready census
      // (they dispatch after the issue stage, so they cannot issue yet).
      const std::uint64_t ready_at = compute_ready_at(trace[disp_idx], disp_idx);
      ready_at_ring_[disp_idx & kRingMask] = ready_at;
      if (ready_at <= cycle) ++ready;
      ++disp_idx;
      ++dispatched;
    }

    // ---- fetch ---------------------------------------------------------
    if (redirect_op != kNobody && producer_done(redirect_op, cycle)) {
      redirect_op = kNobody;  // mispredicted branch resolved; fetch resumes
    }
    unsigned fetched = 0;
    if (redirect_op == kNobody && cycle >= fetch_blocked_until) {
      while (fetched < cfg_.fetch_width && fetch_idx - disp_idx < cfg_.ifq_size &&
             fetch_idx < trace.size()) {
        const MicroOp& op = trace[fetch_idx];
        if (!icache_.access(op.pc)) {
          ++stats.icache_misses;
          fetch_blocked_until = cycle + cfg_.icache_miss_latency;
          break;
        }
        if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) {
          wrongpath_data_anchor_ = op.addr;
        }
        if (op.kind == OpKind::kBranch) {
          ++stats.branches;
          const bool predicted = predictor_.predict(op.pc);
          predictor_.update(op.pc, op.branch_taken());
          if (predicted != op.branch_taken()) {
            ++stats.mispredicts;
            redirect_op = fetch_idx;  // fetch stalls until this resolves
            if (cfg_.wrongpath_depth > 0) {
              issue_wrongpath_probes(op.pc, op.addr, stats);
            }
            ++fetch_idx;
            ++fetched;
            break;
          }
        }
        ++fetch_idx;
        ++fetched;
      }
    }

    // ---- per-cycle statistics ------------------------------------------
    stats.ready_sum_all_cycles += ready;
    if (max_miss_end_ > cycle) {  // some L1 miss is still outstanding
      ++stats.miss_cycles;
      stats.ready_sum_miss_cycles += ready;
    }

    // ---- quiescent-cycle fast-forward ----------------------------------
    // A cycle that committed, issued, dispatched and fetched nothing leaves
    // every piece of pipeline state untouched except the cycle counter:
    // readiness is frozen (the first producer completion is itself one of
    // the events below), so the cycles up to the next event would each
    // re-derive exactly the statistics just computed. Jump there directly,
    // crediting the skipped span in closed form. The reference path
    // (disable_cycle_skip) and tests/test_core_fastforward.cpp keep this
    // equivalence executable rather than argued.
    if (committed_now == 0 && issued_now == 0 && dispatched == 0 &&
        fetched == 0 && !cfg_.disable_cycle_skip) {
      const std::uint64_t next =
          next_event_cycle(trace, cycle, commit_idx, first_unissued, disp_idx,
                           fetch_idx, fetch_blocked_until, redirect_op);
      if (next != kNobody && next > cycle + 1) {
        const std::uint64_t span = next - cycle - 1;  // cycles skipped
        stats.ready_sum_all_cycles += ready * span;
        // Miss-shadow cycles within the span: those before max_miss_end_.
        const std::uint64_t miss_span =
            max_miss_end_ > cycle + 1
                ? std::min(span, max_miss_end_ - cycle - 1)
                : 0;
        stats.miss_cycles += miss_span;
        stats.ready_sum_miss_cycles += ready * miss_span;
        cycle = next;
        continue;
      }
    }

    ++cycle;
  }

  stats.cycles = cycle;
  stats.committed = commit_idx;
  stats.loads = dcache_.stats().reads;
  stats.stores = dcache_.stats().writes;
  return stats;
}

}  // namespace cpc::cpu
