#pragma once
// CommitObserver: the architectural commit hook of the out-of-order core.
//
// The timing model sends stores to the data cache at *issue* (they retire
// through the write buffer and never stall the pipeline), so anything that
// snoops the hierarchy's request stream sees speculative activity: requests
// are issued out of program order and — when wrong-path modelling is on —
// include probes for micro-ops that are squashed and never commit. The
// shadow-memory oracle must track *architectural* state only, so OooCore
// notifies an observer at in-order commit instead: stores update the golden
// model exactly once, in program order, and loads are checked against it
// with every older store already applied.

#include <cstdint>

namespace cpc::cpu {

class CommitObserver {
 public:
  virtual ~CommitObserver() = default;

  /// A load committed. `ordinal` is the op's trace index, `addr` the
  /// word-aligned effective address, `value` the word the hierarchy
  /// returned when the load issued. All older stores have already been
  /// delivered through on_store_commit.
  virtual void on_load_commit(std::uint64_t ordinal, std::uint32_t addr,
                              std::uint32_t value) = 0;

  /// A store committed. Wrong-path (squashed) stores are never reported.
  virtual void on_store_commit(std::uint64_t ordinal, std::uint32_t addr,
                               std::uint32_t value) = 0;
};

}  // namespace cpc::cpu
