#pragma once
// Tag-only direct-mapped instruction cache. Instruction *data* never matters
// to the experiments (the trace carries decoded micro-ops); only the
// hit/miss timing does (paper Fig. 9: I-cache hit 1 cycle, miss 10 cycles).

#include <cstdint>
#include <vector>

#include "cache/config.hpp"

namespace cpc::cpu {

class InstructionCache {
 public:
  explicit InstructionCache(cache::CacheGeometry geometry = {8 * 1024, 64, 1})
      : geo_(geometry), tags_(geo_.num_lines(), kInvalid) {}

  /// Accesses the line holding `pc`; returns true on hit. A miss installs
  /// the line (the caller charges the miss latency).
  bool access(std::uint32_t pc) {
    const std::uint32_t line = geo_.line_of(pc);
    const std::uint32_t set = geo_.set_of_line(line);
    if (tags_[set] == line) {
      ++hits_;
      return true;
    }
    tags_[set] = line;
    ++misses_;
    return false;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  static constexpr std::uint32_t kInvalid = 0xffff'ffffu;

  cache::CacheGeometry geo_;
  std::vector<std::uint32_t> tags_;  // direct-mapped: one tag per set
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cpc::cpu
