#include "cpu/trace_io.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace cpc::cpu {

namespace {

constexpr std::size_t kOpBytes = 16;

// On little-endian hosts the MicroOp memory image IS the wire record (the
// static_asserts in micro_op.hpp pin the layout), so encode/decode are a
// straight memcpy per batch. Big-endian hosts take the per-field path.
constexpr bool kWireLayoutMatches =
    std::endian::native == std::endian::little && sizeof(MicroOp) == kOpBytes;

void put_u32(char* p, std::uint32_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint8_t>(p[0]) | (static_cast<std::uint8_t>(p[1]) << 8) |
         (static_cast<std::uint8_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24);
}

void put_u64(char* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const char* p) {
  return get_u32(p) | (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  char header[24];
  std::memcpy(header, kTraceMagic, 8);
  put_u32(header + 8, kTraceVersion);
  put_u32(header + 12, 0);
  put_u64(header + 16, trace.size());
  out.write(header, sizeof(header));

  if constexpr (kWireLayoutMatches) {
    // Bulk encode: the op array is already in wire format.
    out.write(reinterpret_cast<const char*>(trace.data()),
              static_cast<std::streamsize>(trace.size() * kOpBytes));
  } else {
    // Buffered per-field encode, 4096 ops at a time.
    std::array<char, 4096 * kOpBytes> buffer;
    std::size_t filled = 0;
    for (const MicroOp& op : trace) {
      char* p = buffer.data() + filled;
      put_u32(p + 0, op.pc);
      put_u32(p + 4, op.addr);
      put_u32(p + 8, op.value);
      p[12] = static_cast<char>(op.kind);
      p[13] = static_cast<char>(op.dep1);
      p[14] = static_cast<char>(op.dep2);
      p[15] = static_cast<char>(op.flags);
      filled += kOpBytes;
      if (filled == buffer.size()) {
        out.write(buffer.data(), static_cast<std::streamsize>(filled));
        filled = 0;
      }
    }
    if (filled > 0) out.write(buffer.data(), static_cast<std::streamsize>(filled));
  }
  if (!out) throw TraceIoError("trace write failed");
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw TraceIoError("cannot open for writing: " + path);
  write_trace(out, trace);
}

Trace read_trace(std::istream& in) {
  char header[24];
  in.read(header, sizeof(header));
  if (!in || in.gcount() != sizeof(header)) {
    throw TraceIoError("truncated trace header");
  }
  if (std::memcmp(header, kTraceMagic, 8) != 0) {
    throw TraceIoError("bad trace magic");
  }
  const std::uint32_t version = get_u32(header + 8);
  if (version != kTraceVersion) {
    throw TraceIoError("unsupported trace version " + std::to_string(version));
  }
  if (get_u32(header + 12) != 0) {
    throw TraceIoError("nonzero reserved header field");
  }
  const std::uint64_t count = get_u64(header + 16);

  // Hostile-header guard: never trust `count` for allocation. When the
  // stream is seekable, a count whose encoded size exceeds the bytes
  // actually present is rejected up front (the division form is
  // overflow-safe for any 64-bit count). Unseekable streams fall back to a
  // capped reserve — a lying count then costs at most one modest
  // allocation before the truncation check below fires.
  std::uint64_t known_remaining = 0;
  bool seekable = false;
  const std::istream::pos_type here = in.tellg();
  if (here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    if (end != std::istream::pos_type(-1)) {
      seekable = true;
      known_remaining = static_cast<std::uint64_t>(end - here);
      in.seekg(here);
    } else {
      in.clear();
      in.seekg(here);
    }
  } else {
    in.clear();
  }
  if (seekable && count > known_remaining / kOpBytes) {
    throw TraceIoError("op count " + std::to_string(count) +
                       " exceeds stream size (" +
                       std::to_string(known_remaining / kOpBytes) +
                       " ops of payload)");
  }

  constexpr std::uint64_t kUnseekableReserveCap = 1u << 20;
  Trace trace;
  trace.reserve(static_cast<std::size_t>(
      seekable ? count : std::min<std::uint64_t>(count, kUnseekableReserveCap)));
  std::array<char, 4096 * kOpBytes> buffer;
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::size_t batch =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, 4096));
    in.read(buffer.data(), static_cast<std::streamsize>(batch * kOpBytes));
    if (!in || in.gcount() != static_cast<std::streamsize>(batch * kOpBytes)) {
      throw TraceIoError("truncated trace body");
    }
    if constexpr (kWireLayoutMatches) {
      // Bulk decode, then validate kinds in a separate branch-light scan
      // (the only field with unrepresentable wire values).
      const std::size_t first = trace.size();
      trace.resize(first + batch);
      std::memcpy(trace.data() + first, buffer.data(), batch * kOpBytes);
      for (std::size_t i = 0; i < batch; ++i) {
        if (static_cast<std::uint8_t>(trace[first + i].kind) >
            static_cast<std::uint8_t>(OpKind::kBranch)) {
          throw TraceIoError("corrupt op kind");
        }
      }
    } else {
      for (std::size_t i = 0; i < batch; ++i) {
        const char* p = buffer.data() + i * kOpBytes;
        MicroOp op;
        op.pc = get_u32(p + 0);
        op.addr = get_u32(p + 4);
        op.value = get_u32(p + 8);
        op.kind = static_cast<OpKind>(static_cast<std::uint8_t>(p[12]));
        if (static_cast<std::uint8_t>(p[12]) > static_cast<std::uint8_t>(OpKind::kBranch)) {
          throw TraceIoError("corrupt op kind");
        }
        op.dep1 = static_cast<std::uint8_t>(p[13]);
        op.dep2 = static_cast<std::uint8_t>(p[14]);
        op.flags = static_cast<std::uint8_t>(p[15]);
        trace.push_back(op);
      }
    }
    remaining -= batch;
  }
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceIoError("cannot open for reading: " + path);
  return read_trace(in);
}

}  // namespace cpc::cpu
