#pragma once
// The micro-op trace IR the workload kernels emit and the out-of-order core
// consumes. Each op carries explicit producer edges as backward distances in
// program order, the real effective address and 32-bit value for memory
// ops, and the actual outcome for branches — everything the paper's
// experiments observe (dependence-limited throughput, the memory reference
// stream, branch behaviour) without committing to a concrete ISA encoding.

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace cpc::cpu {

enum class OpKind : std::uint8_t {
  kIntAlu,
  kIntMul,
  kIntDiv,
  kFpAlu,
  kFpMul,
  kFpDiv,
  kLoad,
  kStore,
  kBranch,
};

constexpr bool is_memory_op(OpKind k) { return k == OpKind::kLoad || k == OpKind::kStore; }

struct MicroOp {
  std::uint32_t pc = 0;     ///< instruction address (drives I-cache + predictor)
  std::uint32_t addr = 0;   ///< memory ops: effective address; branches: target
  std::uint32_t value = 0;  ///< memory ops: the value read/written
  OpKind kind = OpKind::kIntAlu;
  std::uint8_t dep1 = 0;  ///< backward distance to first producer; 0 = none
  std::uint8_t dep2 = 0;  ///< backward distance to second producer; 0 = none
  std::uint8_t flags = 0;

  static constexpr std::uint8_t kFlagTaken = 1u << 0;  ///< branch outcome

  bool branch_taken() const { return (flags & kFlagTaken) != 0; }
};

// The in-memory layout is pinned to the 16-byte .cpctrace wire record
// (cpu/trace_io.hpp): pc, addr, value as u32 at offsets 0/4/8, then kind,
// dep1, dep2, flags as single bytes at 12..15, no padding. trace_io relies
// on this to bulk-memcpy whole batches on little-endian hosts; if a field
// is added or reordered, these fire and the trace format must be versioned.
static_assert(std::is_trivially_copyable_v<MicroOp>);
static_assert(sizeof(MicroOp) == 16);
static_assert(offsetof(MicroOp, pc) == 0);
static_assert(offsetof(MicroOp, addr) == 4);
static_assert(offsetof(MicroOp, value) == 8);
static_assert(offsetof(MicroOp, kind) == 12);
static_assert(offsetof(MicroOp, dep1) == 13);
static_assert(offsetof(MicroOp, dep2) == 14);
static_assert(offsetof(MicroOp, flags) == 15);

using Trace = std::vector<MicroOp>;

/// Maximum representable producer distance; recorders clamp longer edges to
/// zero (a producer ≥256 ops back has long since completed in a 16-entry
/// window, so the edge carries no timing information).
inline constexpr std::uint32_t kMaxDepDistance = 255;

}  // namespace cpc::cpu
