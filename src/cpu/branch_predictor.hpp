#pragma once
// Bimodal branch predictor (paper Fig. 9: "Branch Predictor: Bimod") — a
// table of 2-bit saturating counters indexed by the branch PC.

#include <cstdint>
#include <vector>

namespace cpc::cpu {

class BimodalPredictor {
 public:
  explicit BimodalPredictor(std::uint32_t entries = 2048)
      : counters_(entries, kWeaklyTaken) {}

  bool predict(std::uint32_t pc) const { return counters_[index(pc)] >= kWeaklyTaken; }

  void update(std::uint32_t pc, bool taken) {
    std::uint8_t& c = counters_[index(pc)];
    if (taken) {
      if (c < kStronglyTaken) ++c;
    } else {
      if (c > kStronglyNotTaken) --c;
    }
  }

  std::size_t entries() const { return counters_.size(); }

 private:
  static constexpr std::uint8_t kStronglyNotTaken = 0;
  static constexpr std::uint8_t kWeaklyTaken = 2;
  static constexpr std::uint8_t kStronglyTaken = 3;

  std::size_t index(std::uint32_t pc) const { return (pc >> 2) % counters_.size(); }

  std::vector<std::uint8_t> counters_;
};

}  // namespace cpc::cpu
