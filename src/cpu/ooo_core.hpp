#pragma once
// Simplified SimpleScalar-style out-of-order core (paper Fig. 9).
//
// Trace-driven timing model: fetch (I-cache + bimodal predictor) → dispatch
// into a small instruction window with an 8-entry load/store queue → issue
// (oldest-first, limited by issue width, functional units and memory ports,
// with producer edges taken from the trace) → in-order commit.
//
// Memory disambiguation is perfect (addresses come from the trace): memory
// ops to the same word issue in program order, everything else issues out of
// order. Stores update the data cache at issue and never stall the pipeline;
// loads complete after the hierarchy's reported latency and, when they miss,
// are tracked as outstanding misses for the ready-queue statistic the
// paper's Fig. 15 reports.

#include <cstdint>
#include <span>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cpu/branch_predictor.hpp"
#include "cpu/core_config.hpp"
#include "cpu/icache.hpp"
#include "cpu/micro_op.hpp"

namespace cpc::cpu {

struct CoreStats {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t icache_misses = 0;
  /// Loads whose value from the hierarchy differed from the trace value —
  /// always zero for a correct hierarchy (checked by the integration tests).
  std::uint64_t value_mismatches = 0;

  // Wrong-path modelling (CoreConfig::wrongpath_depth): speculative probes
  // issued in the shadow of mispredicted branches. Loads reach the data
  // cache; stores are squashed in the store queue and never do.
  std::uint64_t wrongpath_loads = 0;
  std::uint64_t wrongpath_stores_squashed = 0;

  // Ready-queue statistics (paper Fig. 15): ready-to-issue ops per cycle,
  // accumulated separately for cycles with at least one outstanding miss.
  std::uint64_t miss_cycles = 0;
  std::uint64_t ready_sum_miss_cycles = 0;
  std::uint64_t ready_sum_all_cycles = 0;

  /// Ops with a direct producer edge to a load that missed L1 — the
  /// *measured* counterpart of the paper's Amdahl-estimated miss-importance
  /// parameter (Fig. 14): how many instructions the misses directly block.
  std::uint64_t ops_depending_on_miss = 0;

  double direct_miss_dependence_fraction() const {
    return committed == 0 ? 0.0
                          : static_cast<double>(ops_depending_on_miss) /
                                static_cast<double>(committed);
  }

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(committed) / static_cast<double>(cycles);
  }
  double avg_ready_queue_in_miss_cycles() const {
    return miss_cycles == 0 ? 0.0
                            : static_cast<double>(ready_sum_miss_cycles) /
                                  static_cast<double>(miss_cycles);
  }
  double mispredict_rate() const {
    return branches == 0 ? 0.0
                         : static_cast<double>(mispredicts) / static_cast<double>(branches);
  }
};

class OooCore {
 public:
  /// The core drives `dcache` for every load/store; the hierarchy's own
  /// stats accumulate alongside the core's timing stats.
  OooCore(CoreConfig config, cache::MemoryHierarchy& dcache);

  /// Simulates the trace to completion and returns the timing statistics.
  CoreStats run(std::span<const MicroOp> trace);

 private:
  /// Issues the wrong-path probes a mispredicted branch at `pc` shadows.
  void issue_wrongpath_probes(std::uint32_t pc, std::uint32_t target,
                              CoreStats& stats);

  bool producer_done(std::uint64_t producer, std::uint64_t cycle) const;
  bool memory_order_clear(std::span<const MicroOp> trace,
                          std::uint64_t first_unissued, std::uint64_t idx) const;

  /// The cycle at which `op`'s producers are all complete (0 when already
  /// complete), or kPendingCycle while a producer has not issued yet and
  /// the answer is unknowable. Once every producer has issued the result is
  /// final and is memoized in ready_at_ring_.
  std::uint64_t compute_ready_at(const MicroOp& op, std::uint64_t idx) const;

  void record_dispatch(std::uint64_t idx);
  void record_done(std::uint64_t idx, std::uint64_t done);

  /// Earliest future cycle at which a quiescent pipeline (no commit, issue,
  /// dispatch or fetch this cycle) can make progress again, or kNobodyIdx
  /// when no event is in sight. See the fast-forward block in run().
  std::uint64_t next_event_cycle(std::span<const MicroOp> trace,
                                 std::uint64_t cycle, std::uint64_t commit_idx,
                                 std::uint64_t first_unissued,
                                 std::uint64_t disp_idx, std::uint64_t fetch_idx,
                                 std::uint64_t fetch_blocked_until,
                                 std::uint64_t redirect_op) const;

  CoreConfig cfg_;
  cache::MemoryHierarchy& dcache_;
  BimodalPredictor predictor_;
  InstructionCache icache_;

  // Per-op pipeline state lives in rings indexed by trace position (SoA:
  // one array per field instead of a deque of structs). Ops are fetched,
  // dispatched and committed strictly in trace order, so the window and IFQ
  // always hold CONSECUTIVE trace indices and reduce to three cursors in
  // run(); the rings are sized far beyond the maximum dependence distance
  // plus in-flight span, so a slot is never reused while a consumer may
  // still ask about it.
  static constexpr std::size_t kRingSize = 1024;  // power of two
  static constexpr std::uint64_t kRingMask = kRingSize - 1;
  std::vector<std::uint64_t> done_ring_;   // completion cycle (kPending)
  std::vector<std::uint64_t> who_ring_;    // trace index occupying the slot
  std::vector<std::uint8_t> missed_ring_;  // producer was an L1-missing load
  std::vector<std::uint8_t> issued_ring_;  // left the scheduler
  std::vector<std::uint64_t> ready_at_ring_;  // compute_ready_at memo
  std::vector<std::uint32_t> loaded_ring_; // loads: word the hierarchy returned

  /// Latest completion cycle of any L1-missing load issued so far. A miss is
  /// outstanding at cycle c exactly when this exceeds c, which is all the
  /// Fig. 15 statistics need — no per-miss list required.
  std::uint64_t max_miss_end_ = 0;

  std::uint32_t wrongpath_salt_ = 0;  // decorrelates successive mispredicts
  std::uint32_t wrongpath_data_anchor_ = 0;  // last fetched memory-op address
};

}  // namespace cpc::cpu
