#pragma once
// Simplified SimpleScalar-style out-of-order core (paper Fig. 9).
//
// Trace-driven timing model: fetch (I-cache + bimodal predictor) → dispatch
// into a small instruction window with an 8-entry load/store queue → issue
// (oldest-first, limited by issue width, functional units and memory ports,
// with producer edges taken from the trace) → in-order commit.
//
// Memory disambiguation is perfect (addresses come from the trace): memory
// ops to the same word issue in program order, everything else issues out of
// order. Stores update the data cache at issue and never stall the pipeline;
// loads complete after the hierarchy's reported latency and, when they miss,
// are tracked as outstanding misses for the ready-queue statistic the
// paper's Fig. 15 reports.

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cpu/branch_predictor.hpp"
#include "cpu/core_config.hpp"
#include "cpu/icache.hpp"
#include "cpu/micro_op.hpp"

namespace cpc::cpu {

struct CoreStats {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t icache_misses = 0;
  /// Loads whose value from the hierarchy differed from the trace value —
  /// always zero for a correct hierarchy (checked by the integration tests).
  std::uint64_t value_mismatches = 0;

  // Wrong-path modelling (CoreConfig::wrongpath_depth): speculative probes
  // issued in the shadow of mispredicted branches. Loads reach the data
  // cache; stores are squashed in the store queue and never do.
  std::uint64_t wrongpath_loads = 0;
  std::uint64_t wrongpath_stores_squashed = 0;

  // Ready-queue statistics (paper Fig. 15): ready-to-issue ops per cycle,
  // accumulated separately for cycles with at least one outstanding miss.
  std::uint64_t miss_cycles = 0;
  std::uint64_t ready_sum_miss_cycles = 0;
  std::uint64_t ready_sum_all_cycles = 0;

  /// Ops with a direct producer edge to a load that missed L1 — the
  /// *measured* counterpart of the paper's Amdahl-estimated miss-importance
  /// parameter (Fig. 14): how many instructions the misses directly block.
  std::uint64_t ops_depending_on_miss = 0;

  double direct_miss_dependence_fraction() const {
    return committed == 0 ? 0.0
                          : static_cast<double>(ops_depending_on_miss) /
                                static_cast<double>(committed);
  }

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(committed) / static_cast<double>(cycles);
  }
  double avg_ready_queue_in_miss_cycles() const {
    return miss_cycles == 0 ? 0.0
                            : static_cast<double>(ready_sum_miss_cycles) /
                                  static_cast<double>(miss_cycles);
  }
  double mispredict_rate() const {
    return branches == 0 ? 0.0
                         : static_cast<double>(mispredicts) / static_cast<double>(branches);
  }
};

class OooCore {
 public:
  /// The core drives `dcache` for every load/store; the hierarchy's own
  /// stats accumulate alongside the core's timing stats.
  OooCore(CoreConfig config, cache::MemoryHierarchy& dcache);

  /// Simulates the trace to completion and returns the timing statistics.
  CoreStats run(std::span<const MicroOp> trace);

 private:
  struct WindowEntry {
    std::uint64_t idx = 0;  // trace index
    bool issued = false;
    bool in_lsq = false;
    std::uint64_t done_cycle = 0;  // valid once issued
    std::uint32_t loaded_value = 0;  // loads: the word the hierarchy returned
  };

  /// Issues the wrong-path probes a mispredicted branch at `pc` shadows.
  void issue_wrongpath_probes(std::uint32_t pc, std::uint32_t target,
                              CoreStats& stats);

  bool deps_ready(const MicroOp& op, std::uint64_t idx, std::uint64_t cycle) const;
  bool producer_done(std::uint64_t producer, std::uint64_t cycle) const;
  bool memory_order_clear(std::span<const MicroOp> trace, std::size_t window_pos) const;

  void record_dispatch(std::uint64_t idx);
  void record_done(std::uint64_t idx, std::uint64_t done);

  CoreConfig cfg_;
  cache::MemoryHierarchy& dcache_;
  BimodalPredictor predictor_;
  InstructionCache icache_;

  // Completion-time ring indexed by trace position. Sized far beyond the
  // maximum dependence distance plus in-flight span, so a slot is never
  // reused while a consumer may still ask about it.
  static constexpr std::size_t kRingSize = 1024;
  std::vector<std::uint64_t> done_ring_;
  std::vector<std::uint64_t> who_ring_;
  std::vector<bool> missed_ring_;  // producer was an L1-missing load

  std::deque<WindowEntry> window_;
  std::deque<std::uint64_t> ifq_;  // fetched trace indices
  std::vector<std::uint64_t> outstanding_miss_ends_;
  std::uint32_t wrongpath_salt_ = 0;  // decorrelates successive mispredicts
  std::uint32_t wrongpath_data_anchor_ = 0;  // last fetched memory-op address
};

}  // namespace cpc::cpu
