#pragma once
// Versioned binary serialisation of micro-op traces. Lets a workload be
// generated once (tools/cpc_tracegen) and replayed across configurations
// and machines (tools/cpc_run) with bit-identical results.
//
// Format (little-endian):
//   0x00  8-byte magic "CPCTRACE"
//   0x08  u32 version (currently 1)
//   0x0c  u32 reserved (0)
//   0x10  u64 op count
//   0x18  ops, 16 bytes each: pc, addr, value (u32), kind, dep1, dep2,
//         flags (u8)

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "cpu/micro_op.hpp"

namespace cpc::cpu {

class TraceIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kTraceMagic[8] = {'C', 'P', 'C', 'T', 'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kTraceVersion = 1;

/// Writes a trace; throws TraceIoError on I/O failure.
void write_trace(std::ostream& out, const Trace& trace);
void write_trace_file(const std::string& path, const Trace& trace);

/// Reads a trace; throws TraceIoError on bad magic/version/truncation.
Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

}  // namespace cpc::cpu
