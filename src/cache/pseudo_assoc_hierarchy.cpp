#include "cache/pseudo_assoc_hierarchy.hpp"

#include <cassert>
#include <utility>

namespace cpc::cache {

PseudoAssocHierarchy::PseudoAssocHierarchy(HierarchyConfig config)
    : config_(config), l2_(config.l2) {
  assert(config_.l1.ways == 1 && "pseudo-associativity augments a direct-mapped L1");
  assert(config_.l1.num_sets() >= 2);
  slots_.resize(config_.l1.num_sets());
  for (Line& line : slots_) line.words.resize(config_.l1.words_per_line(), 0);
}

void PseudoAssocHierarchy::retire_l2_victim(const BasicCache::Evicted& victim) {
  if (!victim.valid || !victim.dirty) return;
  ++stats_.mem_writebacks;
  const std::uint32_t base = config_.l2.base_of_line(victim.line_addr);
  memory_.write_words(base, static_cast<std::uint32_t>(victim.words.size()),
                      victim.words.data());
  meter_line_transfer(stats_.traffic, victim.words, base, TransferFormat::kUncompressed,
                      /*writeback=*/true);
}

BasicCache::Line& PseudoAssocHierarchy::ensure_l2_line(std::uint32_t addr,
                                                       AccessResult& result) {
  const std::uint32_t line_addr = config_.l2.line_of(addr);
  if (BasicCache::Line* line = l2_.find(line_addr)) {
    l2_.touch(*line);
    return *line;
  }
  result.l2_miss = true;
  result.served_by = ServedBy::kMemory;
  result.latency = config_.latency.memory;
  ++stats_.l2_misses;
  ++stats_.mem_fetch_lines;
  const std::uint32_t base = config_.l2.base_of_line(line_addr);
  line_scratch_.resize(config_.l2.words_per_line());
  memory_.read_words(base, static_cast<std::uint32_t>(line_scratch_.size()),
                     line_scratch_.data());
  meter_line_transfer(stats_.traffic, line_scratch_, base,
                      TransferFormat::kUncompressed, /*writeback=*/false);
  l2_.fill(line_addr, line_scratch_, evict_scratch_);
  retire_l2_victim(evict_scratch_);
  BasicCache::Line* line = l2_.find(line_addr);
  assert(line != nullptr);
  return *line;
}

void PseudoAssocHierarchy::retire(Line& line) {
  if (!line.valid) return;
  if (line.dirty) {
    ++stats_.l1_writebacks;
    const std::uint32_t base = config_.l1.base_of_line(line.line_addr);
    if (BasicCache::Line* l2_line = l2_.find(config_.l2.line_of(base))) {
      const std::uint32_t word0 = config_.l2.word_of(base);
      for (std::uint32_t i = 0; i < line.words.size(); ++i) {
        l2_.write_word(*l2_line, word0 + i, line.words[i]);
      }
    } else {
      ++stats_.mem_writebacks;
      for (std::uint32_t i = 0; i < line.words.size(); ++i) {
        memory_.write_word(base + i * 4, line.words[i]);
      }
      meter_line_transfer(stats_.traffic, line.words, base,
                          TransferFormat::kUncompressed, /*writeback=*/true);
    }
  }
  line.valid = false;
  line.dirty = false;
}

PseudoAssocHierarchy::Line& PseudoAssocHierarchy::ensure_line(std::uint32_t addr,
                                                              AccessResult& result) {
  const std::uint32_t line_addr = config_.l1.line_of(addr);
  const std::uint32_t home = home_slot(line_addr);
  const std::uint32_t alt = alternate_slot(home);

  Line& primary = slots_[home];
  if (primary.valid && primary.line_addr == line_addr) {
    result.latency = config_.latency.l1_hit;
    result.served_by = ServedBy::kL1;
    return primary;
  }
  Line& secondary = slots_[alt];
  if (secondary.valid && secondary.line_addr == line_addr) {
    // Slow hit: swap so the next access to this line is fast — which also
    // displaces the current primary occupant to the alternate slot (the
    // "kick out" behaviour the paper criticises).
    ++slow_hits_;
    ++stats_.l1_affiliated_hits;  // reported as the "secondary place" hit
    std::swap(primary, secondary);
    result.latency = config_.latency.l1_hit + config_.latency.affiliated_extra;
    result.served_by = ServedBy::kL1Affiliated;
    return primary;
  }

  // Miss at both locations.
  result.l1_miss = true;
  result.served_by = ServedBy::kL2;
  result.latency = config_.latency.l2_hit;
  ++stats_.l1_misses;

  BasicCache::Line& l2_line = ensure_l2_line(addr, result);

  // Displace the primary occupant into the alternate slot, evicting the
  // line that lived there.
  retire(slots_[alt]);
  std::swap(slots_[alt], primary);

  const std::uint32_t base = config_.l1.base_of_line(line_addr);
  const std::uint32_t word0 = config_.l2.word_of(base);
  primary.valid = true;
  primary.dirty = false;
  primary.line_addr = line_addr;
  for (std::uint32_t i = 0; i < primary.words.size(); ++i) {
    primary.words[i] = l2_line.words[word0 + i];
  }
  return primary;
}

AccessResult PseudoAssocHierarchy::read(std::uint32_t addr, std::uint32_t& value) {
  ++stats_.reads;
  AccessResult result;
  Line& line = ensure_line(addr, result);
  value = line.words[config_.l1.word_of(addr)];
  return result;
}

AccessResult PseudoAssocHierarchy::write(std::uint32_t addr, std::uint32_t value) {
  ++stats_.writes;
  AccessResult result;
  Line& line = ensure_line(addr, result);
  line.words[config_.l1.word_of(addr)] = value;
  line.dirty = true;
  return result;
}

}  // namespace cpc::cache
