#include "cache/line_compression_hierarchy.hpp"

#include <cassert>
#include <random>

#include "common/check.hpp"

namespace cpc::cache {

namespace {
constexpr std::uint32_t mix(std::uint32_t v, std::uint32_t salt) {
  std::uint32_t x = v + salt * 0x9e3779b9u;
  x *= 0x85ebca6bu;
  x ^= x >> 15;
  return x;
}

std::uint32_t payload_ecc(const std::vector<std::uint32_t>& words) {
  std::uint32_t e = 0;
  for (std::uint32_t i = 0; i < words.size(); ++i) e ^= mix(words[i], i);
  return e;
}
}  // namespace

LineCompressionHierarchy::LineCompressionHierarchy(HierarchyConfig config,
                                                   compress::Codec codec)
    : config_(config),
      codec_(codec),
      name_(compress::codec_suffixed_name("LCC", codec)),
      l2_(config.l2) {
  assert(config_.l1.ways == 1 && "LCC doubles residency inside direct-mapped frames");
  frames_.resize(config_.l1.num_sets());
}

bool LineCompressionHierarchy::fully_compressible(
    const std::vector<std::uint32_t>& words, std::uint32_t line_addr) const {
  const std::uint32_t base = config_.l1.base_of_line(line_addr);
  const std::uint32_t all = words.size() >= 32
                                ? ~0u
                                : (1u << words.size()) - 1u;
  return codec_.classify_words(words.data(), words.size(), base)
             .compressible() == all;
}

LineCompressionHierarchy::Resident* LineCompressionHierarchy::find(
    std::uint32_t line_addr, Frame** frame_out) {
  Frame& frame = frames_[config_.l1.set_of_line(line_addr)];
  for (auto& slot : frame.slots) {
    if (slot && slot->line_addr == line_addr) {
      if (frame_out != nullptr) *frame_out = &frame;
      return &*slot;
    }
  }
  return nullptr;
}

void LineCompressionHierarchy::retire(Resident& resident) {
  // Content is leaving the frame — last chance to catch a payload strike
  // before it propagates to L2 or memory.
  check_diag(resident.ecc == payload_ecc(resident.words), [&] {
    return Diagnostic{Invariant::kLccLineEcc, "LCC::retire", clock_,
                      resident.line_addr,
                      "payload ECC mismatch on line leaving the frame"};
  });
  if (!resident.dirty) return;
  ++stats_.l1_writebacks;
  const std::uint32_t base = config_.l1.base_of_line(resident.line_addr);
  if (BasicCache::Line* l2_line = l2_.find(config_.l2.line_of(base))) {
    const std::uint32_t word0 = config_.l2.word_of(base);
    for (std::uint32_t i = 0; i < resident.words.size(); ++i) {
      l2_.write_word(*l2_line, word0 + i, resident.words[i]);
    }
    return;
  }
  ++stats_.mem_writebacks;
  memory_.write_words(base, static_cast<std::uint32_t>(resident.words.size()),
                      resident.words.data());
  meter_line_transfer(stats_.traffic, resident.words, base, TransferFormat::kCompressed,
                      /*writeback=*/true, codec_);
}

LineCompressionHierarchy::Resident& LineCompressionHierarchy::install(
    std::uint32_t line_addr, std::vector<std::uint32_t> words) {
  Frame& frame = frames_[config_.l1.set_of_line(line_addr)];
  Resident incoming{line_addr, false, ++clock_, std::move(words)};
  incoming.ecc = payload_ecc(incoming.words);
  const bool incoming_small = fully_compressible(incoming.words, line_addr);

  // Free slot 0: empty frame.
  if (!frame.slots[0]) {
    frame.slots[0] = std::move(incoming);
    return *frame.slots[0];
  }
  // Sharing: both resident and incoming fully compressible.
  if (!frame.slots[1] && incoming_small &&
      fully_compressible(frame.slots[0]->words, frame.slots[0]->line_addr)) {
    frame.slots[1] = std::move(incoming);
    return *frame.slots[1];
  }
  // Eviction. If the frame is shared, evict the LRU resident; if the
  // incoming line is incompressible it needs the whole frame, so evict both.
  if (frame.slots[1]) {
    if (!incoming_small) {
      retire(*frame.slots[0]);
      retire(*frame.slots[1]);
      frame.slots[0] = std::move(incoming);
      frame.slots[1].reset();
      return *frame.slots[0];
    }
    const int lru = frame.slots[0]->last_use <= frame.slots[1]->last_use ? 0 : 1;
    retire(*frame.slots[lru]);
    frame.slots[lru] = std::move(incoming);
    return *frame.slots[lru];
  }
  retire(*frame.slots[0]);
  frame.slots[0] = std::move(incoming);
  return *frame.slots[0];
}

void LineCompressionHierarchy::retire_l2_victim(const BasicCache::Evicted& victim) {
  if (!victim.valid || !victim.dirty) return;
  ++stats_.mem_writebacks;
  const std::uint32_t base = config_.l2.base_of_line(victim.line_addr);
  memory_.write_words(base, static_cast<std::uint32_t>(victim.words.size()),
                      victim.words.data());
  meter_line_transfer(stats_.traffic, victim.words, base, TransferFormat::kCompressed,
                      /*writeback=*/true, codec_);
}

BasicCache::Line& LineCompressionHierarchy::ensure_l2_line(std::uint32_t addr,
                                                           AccessResult& result) {
  const std::uint32_t line_addr = config_.l2.line_of(addr);
  if (BasicCache::Line* line = l2_.find(line_addr)) {
    l2_.touch(*line);
    return *line;
  }
  result.l2_miss = true;
  result.served_by = ServedBy::kMemory;
  result.latency = config_.latency.memory;
  ++stats_.l2_misses;
  ++stats_.mem_fetch_lines;
  const std::uint32_t base = config_.l2.base_of_line(line_addr);
  std::vector<std::uint32_t> words(config_.l2.words_per_line());
  memory_.read_words(base, static_cast<std::uint32_t>(words.size()), words.data());
  meter_line_transfer(stats_.traffic, words, base, TransferFormat::kCompressed,
                      /*writeback=*/false, codec_);
  retire_l2_victim(l2_.fill(line_addr, words));
  BasicCache::Line* line = l2_.find(line_addr);
  assert(line != nullptr);
  return *line;
}

LineCompressionHierarchy::Resident& LineCompressionHierarchy::ensure_line(
    std::uint32_t addr, AccessResult& result) {
  const std::uint32_t line_addr = config_.l1.line_of(addr);
  if (Resident* resident = find(line_addr)) {
    resident->last_use = ++clock_;
    result.latency = config_.latency.l1_hit;
    result.served_by = ServedBy::kL1;
    return *resident;
  }
  result.l1_miss = true;
  result.served_by = ServedBy::kL2;
  result.latency = config_.latency.l2_hit;
  ++stats_.l1_misses;

  BasicCache::Line& l2_line = ensure_l2_line(addr, result);
  const std::uint32_t base = config_.l1.base_of_line(line_addr);
  const std::uint32_t word0 = config_.l2.word_of(base);
  std::vector<std::uint32_t> words{l2_line.words.begin() + word0,
                                   l2_line.words.begin() + word0 +
                                       config_.l1.words_per_line()};
  return install(line_addr, std::move(words));
}

AccessResult LineCompressionHierarchy::read(std::uint32_t addr, std::uint32_t& value) {
  ++stats_.reads;
  AccessResult result;
  Resident& resident = ensure_line(addr, result);
  value = resident.words[config_.l1.word_of(addr)];
  return result;
}

AccessResult LineCompressionHierarchy::write(std::uint32_t addr, std::uint32_t value) {
  ++stats_.writes;
  AccessResult result;
  Resident& resident = ensure_line(addr, result);
  const std::uint32_t w = config_.l1.word_of(addr);
  resident.ecc ^= mix(resident.words[w], w) ^ mix(value, w);
  resident.words[w] = value;
  resident.dirty = true;

  // A write can make a shared resident incompressible; the frame can then
  // no longer hold both lines — evict the other resident ([6]'s policy:
  // "otherwise, only one of them is stored").
  if (!fully_compressible(resident.words, resident.line_addr)) {
    Frame& frame = frames_[config_.l1.set_of_line(resident.line_addr)];
    if (frame.slots[0] && frame.slots[1]) {
      const int other = &*frame.slots[0] == &resident ? 1 : 0;
      retire(*frame.slots[other]);
      frame.slots[other].reset();
      if (other == 0) std::swap(frame.slots[0], frame.slots[1]);
    }
  }
  return result;
}

std::uint64_t LineCompressionHierarchy::shared_frames() const {
  std::uint64_t count = 0;
  for (const Frame& frame : frames_) {
    if (frame.slots[0] && frame.slots[1]) ++count;
  }
  return count;
}

bool LineCompressionHierarchy::inject_fault(const verify::FaultCommand& command) {
  if (command.kind != verify::FaultKind::kPayloadBit) return false;
  std::mt19937_64 rng(command.seed);
  std::vector<Resident*> targets;
  for (Frame& frame : frames_) {
    for (auto& slot : frame.slots) {
      if (slot) targets.push_back(&*slot);
    }
  }
  if (targets.empty()) return false;
  Resident& victim = *targets[rng() % targets.size()];
  // Flip a stored bit without maintaining the ECC: a particle strike.
  victim.words[rng() % victim.words.size()] ^= 1u << (rng() % 32);
  return true;
}

void LineCompressionHierarchy::validate() const {
  for (const Frame& frame : frames_) {
    for (const auto& slot : frame.slots) {
      if (!slot) continue;
      check_diag(slot->ecc == payload_ecc(slot->words), [&] {
        return Diagnostic{Invariant::kLccLineEcc, "LCC::validate", clock_,
                          slot->line_addr, "resident payload ECC mismatch"};
      });
    }
    if (!(frame.slots[0] && frame.slots[1])) continue;
    for (const auto& slot : frame.slots) {
      check_diag(fully_compressible(slot->words, slot->line_addr), [&] {
        return Diagnostic{Invariant::kLccSharedIncompressible, "LCC::validate",
                          clock_, slot->line_addr,
                          "shared LCC frame holds an incompressible line"};
      });
    }
    check_diag(frame.slots[0]->line_addr != frame.slots[1]->line_addr, [&] {
      return Diagnostic{Invariant::kLccDuplicateResident, "LCC::validate", clock_,
                        frame.slots[0]->line_addr,
                        "duplicate resident in LCC frame"};
    });
  }
}

}  // namespace cpc::cache
