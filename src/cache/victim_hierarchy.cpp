#include "cache/victim_hierarchy.hpp"

#include <cassert>

namespace cpc::cache {

VictimHierarchy::VictimHierarchy(HierarchyConfig config, std::uint32_t victim_entries)
    : config_(config), capacity_(victim_entries), l1_(config.l1), l2_(config.l2) {}

void VictimHierarchy::retire_l2_victim(const BasicCache::Evicted& victim) {
  if (!victim.valid || !victim.dirty) return;
  ++stats_.mem_writebacks;
  const std::uint32_t base = config_.l2.base_of_line(victim.line_addr);
  memory_.write_words(base, static_cast<std::uint32_t>(victim.words.size()),
                      victim.words.data());
  meter_line_transfer(stats_.traffic, victim.words, base, TransferFormat::kUncompressed,
                      /*writeback=*/true);
}

BasicCache::Line& VictimHierarchy::ensure_l2_line(std::uint32_t addr,
                                                  AccessResult& result) {
  const std::uint32_t line_addr = config_.l2.line_of(addr);
  if (BasicCache::Line* line = l2_.find(line_addr)) {
    l2_.touch(*line);
    return *line;
  }
  result.l2_miss = true;
  result.served_by = ServedBy::kMemory;
  result.latency = config_.latency.memory;
  ++stats_.l2_misses;
  ++stats_.mem_fetch_lines;
  const std::uint32_t base = config_.l2.base_of_line(line_addr);
  std::vector<std::uint32_t> words(config_.l2.words_per_line());
  memory_.read_words(base, static_cast<std::uint32_t>(words.size()), words.data());
  meter_line_transfer(stats_.traffic, words, base, TransferFormat::kUncompressed,
                      /*writeback=*/false);
  retire_l2_victim(l2_.fill(line_addr, words));
  BasicCache::Line* line = l2_.find(line_addr);
  assert(line != nullptr);
  return *line;
}

void VictimHierarchy::retire_entry(Entry entry) {
  if (!entry.dirty) return;
  ++stats_.l1_writebacks;
  const std::uint32_t base = config_.l1.base_of_line(entry.line_addr);
  if (BasicCache::Line* l2_line = l2_.find(config_.l2.line_of(base))) {
    const std::uint32_t word0 = config_.l2.word_of(base);
    for (std::uint32_t i = 0; i < entry.words.size(); ++i) {
      l2_.write_word(*l2_line, word0 + i, entry.words[i]);
    }
    return;
  }
  ++stats_.mem_writebacks;
  memory_.write_words(base, static_cast<std::uint32_t>(entry.words.size()),
                      entry.words.data());
  meter_line_transfer(stats_.traffic, entry.words, base, TransferFormat::kUncompressed,
                      /*writeback=*/true);
}

void VictimHierarchy::park_victim(const BasicCache::Evicted& evicted) {
  if (!evicted.valid) return;
  victims_.push_front(Entry{evicted.line_addr, evicted.dirty, evicted.words});
  if (victims_.size() > capacity_) {
    Entry last = std::move(victims_.back());
    victims_.pop_back();
    retire_entry(std::move(last));
  }
}

BasicCache::Line& VictimHierarchy::ensure_line(std::uint32_t addr,
                                               AccessResult& result) {
  const std::uint32_t line_addr = config_.l1.line_of(addr);
  if (BasicCache::Line* line = l1_.find(line_addr)) {
    l1_.touch(*line);
    result.latency = config_.latency.l1_hit;
    result.served_by = ServedBy::kL1;
    return *line;
  }
  // Probe the victim cache: a hit swaps the line back into L1 and parks the
  // displaced L1 line in its place.
  for (auto it = victims_.begin(); it != victims_.end(); ++it) {
    if (it->line_addr != line_addr) continue;
    ++victim_hits_;
    ++stats_.l1_affiliated_hits;  // reported as "second chance" hits
    Entry entry = std::move(*it);
    victims_.erase(it);
    const BasicCache::Evicted displaced = l1_.fill(line_addr, entry.words);
    BasicCache::Line* line = l1_.find(line_addr);
    assert(line != nullptr);
    line->dirty = entry.dirty;
    park_victim(displaced);
    result.latency = config_.latency.l1_hit + config_.latency.affiliated_extra;
    result.served_by = ServedBy::kL1Affiliated;
    return *line;
  }

  result.l1_miss = true;
  result.served_by = ServedBy::kL2;
  result.latency = config_.latency.l2_hit;
  ++stats_.l1_misses;

  BasicCache::Line& l2_line = ensure_l2_line(addr, result);
  const std::uint32_t base = config_.l1.base_of_line(line_addr);
  const std::uint32_t word0 = config_.l2.word_of(base);
  const std::span<const std::uint32_t> half{l2_line.words.data() + word0,
                                            config_.l1.words_per_line()};
  park_victim(l1_.fill(line_addr, half));
  BasicCache::Line* line = l1_.find(line_addr);
  assert(line != nullptr);
  return *line;
}

AccessResult VictimHierarchy::read(std::uint32_t addr, std::uint32_t& value) {
  ++stats_.reads;
  AccessResult result;
  BasicCache::Line& line = ensure_line(addr, result);
  value = l1_.read_word(line, config_.l1.word_of(addr));
  return result;
}

AccessResult VictimHierarchy::write(std::uint32_t addr, std::uint32_t value) {
  ++stats_.writes;
  AccessResult result;
  BasicCache::Line& line = ensure_line(addr, result);
  l1_.write_word(line, config_.l1.word_of(addr), value);
  return result;
}

}  // namespace cpc::cache
