#pragma once
// Fully associative LRU prefetch buffer (paper section 4.1: an 8-entry
// buffer helps the L1 cache and a 32-entry buffer helps the L2 cache in the
// BCP configuration). Prefetched lines are always clean: a write first moves
// the line into the cache proper.

#include <cstdint>
#include <list>
#include <optional>
#include <vector>

namespace cpc::cache {

class PrefetchBuffer {
 public:
  struct Entry {
    std::uint32_t line_addr = 0;
    std::vector<std::uint32_t> words;
  };

  PrefetchBuffer(std::uint32_t entries, std::uint32_t words_per_line)
      : capacity_(entries), words_per_line_(words_per_line) {}

  bool contains(std::uint32_t line_addr) const {
    for (const Entry& e : entries_) {
      if (e.line_addr == line_addr) return true;
    }
    return false;
  }

  /// Removes and returns the entry for `line_addr` (used when an access hits
  /// the buffer and the line moves into the cache).
  std::optional<Entry> take(std::uint32_t line_addr) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->line_addr == line_addr) {
        Entry out = std::move(*it);
        entries_.erase(it);
        return out;
      }
    }
    return std::nullopt;
  }

  /// Inserts a prefetched line, evicting the LRU entry if full. A line
  /// already buffered is refreshed (moved to MRU, content replaced).
  void insert(std::uint32_t line_addr, std::vector<std::uint32_t> words) {
    take(line_addr);  // drop any stale copy
    if (entries_.size() == capacity_) entries_.pop_back();  // back = LRU
    entries_.push_front(Entry{line_addr, std::move(words)});
  }

  /// Marks a buffered line most-recently-used.
  void touch(std::uint32_t line_addr) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->line_addr == line_addr) {
        entries_.splice(entries_.begin(), entries_, it);
        return;
      }
    }
  }

  std::size_t size() const { return entries_.size(); }
  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t words_per_line() const { return words_per_line_; }

 private:
  std::uint32_t capacity_;
  std::uint32_t words_per_line_;
  std::list<Entry> entries_;  // front = MRU, back = LRU
};

}  // namespace cpc::cache
