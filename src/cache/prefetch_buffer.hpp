#pragma once
// Fully associative LRU prefetch buffer (paper section 4.1: an 8-entry
// buffer helps the L1 cache and a 32-entry buffer helps the L2 cache in the
// BCP configuration). Prefetched lines are always clean: a write first moves
// the line into the cache proper.
//
// Slot storage is preallocated and recycled: an insert copies the words into
// the evicted (or a free) slot's vector, whose capacity survives, so the
// steady state performs no allocation at all. BCP inserts on every miss —
// on the order of a million times per benchmark run — which is why this
// container deliberately has no take-by-value API.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cpc::cache {

class PrefetchBuffer {
 public:
  struct Entry {
    std::uint32_t line_addr = 0;
    std::vector<std::uint32_t> words;
  };

  PrefetchBuffer(std::uint32_t entries, std::uint32_t words_per_line)
      : capacity_(entries), words_per_line_(words_per_line) {
    slots_.resize(capacity_);
    order_.reserve(capacity_);
    free_.reserve(capacity_);
    for (std::uint32_t i = capacity_; i-- > 0;) free_.push_back(i);
  }

  bool contains(std::uint32_t line_addr) const {
    return position_of(line_addr) != kNone;
  }

  /// Buffered entry for `line_addr`, or nullptr. Does not change LRU order;
  /// pair with touch()/erase() to consume the hit. The pointer is stable
  /// until the entry is erased or evicted.
  const Entry* find(std::uint32_t line_addr) const {
    const std::size_t pos = position_of(line_addr);
    return pos == kNone ? nullptr : &slots_[order_[pos]];
  }
  Entry* find(std::uint32_t line_addr) {
    const std::size_t pos = position_of(line_addr);
    return pos == kNone ? nullptr : &slots_[order_[pos]];
  }

  /// Removes the entry for `line_addr` (no-op when absent); its storage is
  /// recycled by a later insert.
  void erase(std::uint32_t line_addr) {
    const std::size_t pos = position_of(line_addr);
    if (pos == kNone) return;
    free_.push_back(order_[pos]);
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  /// Inserts a prefetched line at MRU, evicting the LRU entry if full. A
  /// line already buffered is refreshed (moved to MRU, content replaced).
  void insert(std::uint32_t line_addr, std::span<const std::uint32_t> words) {
    if (capacity_ == 0) return;
    erase(line_addr);  // drop any stale copy
    std::uint32_t slot = 0;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = order_.back();  // back = LRU
      order_.pop_back();
    }
    slots_[slot].line_addr = line_addr;
    slots_[slot].words.assign(words.begin(), words.end());
    order_.insert(order_.begin(), slot);
  }

  /// Marks a buffered line most-recently-used.
  void touch(std::uint32_t line_addr) {
    const std::size_t pos = position_of(line_addr);
    if (pos == kNone || pos == 0) return;
    const std::uint32_t slot = order_[pos];
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
    order_.insert(order_.begin(), slot);
  }

  std::size_t size() const { return order_.size(); }
  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t words_per_line() const { return words_per_line_; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// Index into order_ of the entry for `line_addr`, or kNone. The buffers
  /// hold 8 or 32 entries, so a linear scan beats any index structure.
  std::size_t position_of(std::uint32_t line_addr) const {
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (slots_[order_[i]].line_addr == line_addr) return i;
    }
    return kNone;
  }

  std::uint32_t capacity_;
  std::uint32_t words_per_line_;
  std::vector<Entry> slots_;        // stable storage, recycled across inserts
  std::vector<std::uint32_t> order_;  // slot indices, front = MRU, back = LRU
  std::vector<std::uint32_t> free_;   // slots not currently in order_
};

}  // namespace cpc::cache
