#pragma once
// How each configuration meters line transfers over the memory bus.
//
//  * kUncompressed — BC, HAC, BCP: every word costs a full bus slot.
//  * kCompressed   — BCC and CPP write-backs: compressible words are
//    transferred in 16-bit form and cost half a slot (paper section 4.1:
//    BCC "only changes the format in which the data is ... transmitted").
//  * CPP demand fetches are metered separately (full line slot with the
//    affiliated words riding in the compression slack — "the memory
//    bandwidth is still the same as before", section 3.3).

#include <bit>
#include <cstdint>
#include <span>

#include "compress/codec.hpp"
#include "mem/traffic_meter.hpp"

namespace cpc::cache {

enum class TransferFormat : std::uint8_t { kUncompressed, kCompressed };

/// Meters the transfer of `words` whose first word lives at `base_addr`.
/// `writeback` selects the write-back counters of the meter.
inline void meter_line_transfer(mem::TrafficMeter& meter,
                                std::span<const std::uint32_t> words,
                                std::uint32_t base_addr, TransferFormat format,
                                bool writeback,
                                const compress::Codec& codec = compress::kPaperCodec) {
  if (format == TransferFormat::kUncompressed) {
    if (writeback) {
      meter.add_writeback_uncompressed_words(words.size());
    } else {
      meter.add_uncompressed_words(words.size());
    }
    return;
  }
  // One batched classification pass, then two bulk meter updates — the
  // per-word costing is unchanged, only the bookkeeping is amortized.
  const compress::WordClassMasks masks =
      codec.classify_words(words.data(), words.size(), base_addr);
  const std::uint64_t compressed = std::popcount(masks.compressible());
  const std::uint64_t uncompressed = words.size() - compressed;
  if (writeback) {
    meter.add_writeback_compressed_words(compressed);
    meter.add_writeback_uncompressed_words(uncompressed);
  } else {
    meter.add_compressed_words(compressed);
    meter.add_uncompressed_words(uncompressed);
  }
}

}  // namespace cpc::cache
