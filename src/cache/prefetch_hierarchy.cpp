#include "cache/prefetch_hierarchy.hpp"

#include <cassert>

namespace cpc::cache {

PrefetchHierarchy::PrefetchHierarchy(HierarchyConfig config,
                                     std::uint32_t l1_buffer_entries,
                                     std::uint32_t l2_buffer_entries)
    : config_(config),
      l1_(config.l1),
      l2_(config.l2),
      l1_buffer_(l1_buffer_entries, config.l1.words_per_line()),
      l2_buffer_(l2_buffer_entries, config.l2.words_per_line()) {}

const std::vector<std::uint32_t>& PrefetchHierarchy::read_memory_line(
    std::uint32_t base, std::uint32_t words, bool prefetch) {
  line_scratch_.resize(words);
  memory_.read_words(base, words, line_scratch_.data());
  // BCP transfers everything uncompressed; prefetches are real bus traffic.
  meter_line_transfer(stats_.traffic, line_scratch_, base,
                      TransferFormat::kUncompressed, /*writeback=*/false);
  if (prefetch) {
    ++stats_.prefetch_lines;
  } else {
    ++stats_.mem_fetch_lines;
  }
  return line_scratch_;
}

void PrefetchHierarchy::retire_l1_victim(const BasicCache::Evicted& victim) {
  if (!victim.valid || !victim.dirty) return;
  ++stats_.l1_writebacks;
  const std::uint32_t base = config_.l1.base_of_line(victim.line_addr);
  const std::uint32_t l2_line_addr = config_.l2.line_of(base);
  if (BasicCache::Line* l2_line = l2_.find(l2_line_addr)) {
    const std::uint32_t word0 = config_.l2.word_of(base);
    for (std::uint32_t i = 0; i < victim.words.size(); ++i) {
      l2_.write_word(*l2_line, word0 + i, victim.words[i]);
    }
    return;
  }
  // The line may be sitting in the L2 prefetch buffer; keep that copy
  // coherent while writing through to memory (updated in place and moved to
  // MRU, exactly what the old take-then-reinsert did).
  if (PrefetchBuffer::Entry* entry = l2_buffer_.find(l2_line_addr)) {
    const std::uint32_t word0 = config_.l2.word_of(base);
    for (std::uint32_t i = 0; i < victim.words.size(); ++i) {
      entry->words[word0 + i] = victim.words[i];
    }
    l2_buffer_.touch(l2_line_addr);
  }
  ++stats_.mem_writebacks;
  memory_.write_words(base, static_cast<std::uint32_t>(victim.words.size()),
                      victim.words.data());
  meter_line_transfer(stats_.traffic, victim.words, base, TransferFormat::kUncompressed,
                      /*writeback=*/true);
}

void PrefetchHierarchy::retire_l2_victim(const BasicCache::Evicted& victim) {
  if (!victim.valid || !victim.dirty) return;
  ++stats_.mem_writebacks;
  const std::uint32_t base = config_.l2.base_of_line(victim.line_addr);
  memory_.write_words(base, static_cast<std::uint32_t>(victim.words.size()),
                      victim.words.data());
  meter_line_transfer(stats_.traffic, victim.words, base, TransferFormat::kUncompressed,
                      /*writeback=*/true);
}

BasicCache::Line& PrefetchHierarchy::ensure_l2_line(std::uint32_t l2_line_addr,
                                                    bool demand, AccessResult& result) {
  if (BasicCache::Line* line = l2_.find(l2_line_addr)) {
    l2_.touch(*line);
    return *line;
  }
  if (const PrefetchBuffer::Entry* entry = l2_buffer_.find(l2_line_addr)) {
    // Demand reference moves the prefetched line into the cache proper.
    ++stats_.l2_pbuf_hits;
    result.served_by = ServedBy::kL2PrefetchBuffer;
    l2_.fill(l2_line_addr, entry->words, evict_scratch_);
    retire_l2_victim(evict_scratch_);
    l2_buffer_.erase(l2_line_addr);
    BasicCache::Line* line = l2_.find(l2_line_addr);
    assert(line != nullptr);
    return *line;
  }
  // Demand L2 miss: fetch from memory and trigger the L2-level prefetch.
  result.l2_miss = true;
  result.served_by = ServedBy::kMemory;
  result.latency = config_.latency.memory;
  ++stats_.l2_misses;

  const std::uint32_t base = config_.l2.base_of_line(l2_line_addr);
  const auto& words =
      read_memory_line(base, config_.l2.words_per_line(), /*prefetch=*/false);
  l2_.fill(l2_line_addr, words, evict_scratch_);
  retire_l2_victim(evict_scratch_);

  // Prefetch-on-miss applies uniformly at this level: every L2 line miss
  // (demand or triggered by an L1-level prefetch) pulls the next L2 line
  // into the buffer. This is what makes BCP's traffic balloon (Fig. 10).
  (void)demand;
  prefetch_into_l2_buffer(l2_line_addr + 1);

  BasicCache::Line* line = l2_.find(l2_line_addr);
  assert(line != nullptr);
  return *line;
}

void PrefetchHierarchy::prefetch_into_l2_buffer(std::uint32_t l2_line_addr) {
  if (l2_.find(l2_line_addr) != nullptr || l2_buffer_.contains(l2_line_addr)) return;
  const std::uint32_t base = config_.l2.base_of_line(l2_line_addr);
  l2_buffer_.insert(
      l2_line_addr,
      read_memory_line(base, config_.l2.words_per_line(), /*prefetch=*/true));
  ++stats_.l2_prefetch_inserts;
}

const std::vector<std::uint32_t>& PrefetchHierarchy::fetch_half_line_from_l2_side(
    std::uint32_t l1_line_addr, bool demand, AccessResult& result) {
  const std::uint32_t base = config_.l1.base_of_line(l1_line_addr);
  const std::uint32_t l2_line_addr = config_.l2.line_of(base);
  const std::uint32_t word0 = config_.l2.word_of(base);
  const std::uint32_t n = config_.l1.words_per_line();

  if (demand) {
    BasicCache::Line& line = ensure_l2_line(l2_line_addr, /*demand=*/true, result);
    half_scratch_.assign(line.words.begin() + word0,
                         line.words.begin() + word0 + n);
    return half_scratch_;
  }

  // Prefetch request: read without disturbing L2 residency. A miss fetches
  // the enclosing L2 line from memory into the L2 *buffer* (it is prefetch
  // data and must not pollute the L2 cache).
  if (BasicCache::Line* line = l2_.find(l2_line_addr)) {
    half_scratch_.assign(line->words.begin() + word0,
                         line->words.begin() + word0 + n);
    return half_scratch_;
  }
  if (const PrefetchBuffer::Entry* entry = l2_buffer_.find(l2_line_addr)) {
    half_scratch_.assign(entry->words.begin() + word0,
                         entry->words.begin() + word0 + n);
    l2_buffer_.touch(l2_line_addr);  // keep buffered, MRU
    return half_scratch_;
  }
  const std::uint32_t l2_base = config_.l2.base_of_line(l2_line_addr);
  const auto& words =
      read_memory_line(l2_base, config_.l2.words_per_line(), /*prefetch=*/true);
  half_scratch_.assign(words.begin() + word0, words.begin() + word0 + n);
  l2_buffer_.insert(l2_line_addr, words);
  // This was an L2 miss too, so the L2-level prefetch-on-miss also fires
  // (and reuses line_scratch_ — half_scratch_ already holds our copy).
  prefetch_into_l2_buffer(l2_line_addr + 1);
  return half_scratch_;
}

void PrefetchHierarchy::prefetch_into_l1_buffer(std::uint32_t l1_line_addr) {
  if (l1_.find(l1_line_addr) != nullptr || l1_buffer_.contains(l1_line_addr)) return;
  AccessResult scratch;  // prefetch timing is off the critical path
  l1_buffer_.insert(l1_line_addr,
                    fetch_half_line_from_l2_side(l1_line_addr, /*demand=*/false, scratch));
  ++stats_.l1_prefetch_inserts;
}

BasicCache::Line& PrefetchHierarchy::ensure_l1_line(std::uint32_t addr,
                                                    AccessResult& result) {
  const std::uint32_t line_addr = config_.l1.line_of(addr);
  if (BasicCache::Line* line = l1_.find(line_addr)) {
    l1_.touch(*line);
    result.latency = config_.latency.l1_hit;
    result.served_by = ServedBy::kL1;
    return *line;
  }
  if (const PrefetchBuffer::Entry* entry = l1_buffer_.find(line_addr)) {
    // Prefetch-buffer hit: not a miss (section 4.4); line moves into L1.
    ++stats_.l1_pbuf_hits;
    result.latency = config_.latency.l1_hit;
    result.served_by = ServedBy::kL1PrefetchBuffer;
    l1_.fill(line_addr, entry->words, evict_scratch_);
    retire_l1_victim(evict_scratch_);
    l1_buffer_.erase(line_addr);
    BasicCache::Line* line = l1_.find(line_addr);
    assert(line != nullptr);
    return *line;
  }
  // Demand L1 miss: fetch line and prefetch its successor.
  result.l1_miss = true;
  result.served_by = ServedBy::kL2;
  result.latency = config_.latency.l2_hit;
  ++stats_.l1_misses;

  const auto& words = fetch_half_line_from_l2_side(line_addr, /*demand=*/true, result);
  l1_.fill(line_addr, words, evict_scratch_);
  retire_l1_victim(evict_scratch_);
  // The prefetch below reuses half_scratch_; the fill above already copied.
  prefetch_into_l1_buffer(line_addr + 1);

  BasicCache::Line* line = l1_.find(line_addr);
  assert(line != nullptr);
  return *line;
}

AccessResult PrefetchHierarchy::read(std::uint32_t addr, std::uint32_t& value) {
  ++stats_.reads;
  AccessResult result;
  BasicCache::Line& line = ensure_l1_line(addr, result);
  value = l1_.read_word(line, config_.l1.word_of(addr));
  return result;
}

AccessResult PrefetchHierarchy::write(std::uint32_t addr, std::uint32_t value) {
  ++stats_.writes;
  AccessResult result;
  BasicCache::Line& line = ensure_l1_line(addr, result);
  l1_.write_word(line, config_.l1.word_of(addr), value);
  return result;
}

}  // namespace cpc::cache
