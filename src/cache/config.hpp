#pragma once
// Cache geometry and latency parameters (paper Fig. 9 and section 4.1).

#include <cassert>
#include <cstdint>

namespace cpc::cache {

/// Geometry of one cache level. Sizes are powers of two.
struct CacheGeometry {
  std::uint32_t size_bytes = 8 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 1;

  constexpr std::uint32_t num_lines() const { return size_bytes / line_bytes; }
  constexpr std::uint32_t num_sets() const { return num_lines() / ways; }
  constexpr std::uint32_t words_per_line() const { return line_bytes / 4; }

  /// Line number (full-address line index) of a byte address.
  constexpr std::uint32_t line_of(std::uint32_t addr) const { return addr / line_bytes; }
  constexpr std::uint32_t set_of_line(std::uint32_t line_addr) const {
    return line_addr % num_sets();
  }
  constexpr std::uint32_t word_of(std::uint32_t addr) const {
    return (addr % line_bytes) / 4;
  }
  constexpr std::uint32_t base_of_line(std::uint32_t line_addr) const {
    return line_addr * line_bytes;
  }

  friend bool operator==(const CacheGeometry&, const CacheGeometry&) = default;
};

/// End-to-end latencies in CPU cycles, as the paper reports them: an access
/// that hits at a level observes that level's value (they are not additive).
struct LatencyConfig {
  unsigned l1_hit = 1;    ///< L1 D-cache hit (Fig. 9)
  unsigned l2_hit = 10;   ///< L1 miss that hits in L2 ("L1 D-cache miss latency")
  unsigned memory = 100;  ///< L2 miss ("memory access latency")
  unsigned affiliated_extra = 1;  ///< extra cycle for an affiliated-line hit (section 3.3)

  /// Returns a copy with miss penalties halved — the perturbation the
  /// paper's Fig. 14 importance analysis applies (S_enhanced = 2).
  constexpr LatencyConfig halved_miss_penalty() const {
    return LatencyConfig{l1_hit, l2_hit / 2, memory / 2, affiliated_extra};
  }

  friend bool operator==(const LatencyConfig&, const LatencyConfig&) = default;
};

/// Two-level hierarchy parameters for one experimental configuration.
struct HierarchyConfig {
  CacheGeometry l1{8 * 1024, 64, 1};    // 8K direct-mapped, 64 B lines
  CacheGeometry l2{64 * 1024, 128, 2};  // 64K 2-way, 128 B lines
  LatencyConfig latency{};
};

/// Paper configurations (section 4.1).
inline constexpr HierarchyConfig kBaselineConfig{};  // BC and BCC

inline constexpr HierarchyConfig kHigherAssocConfig{
    CacheGeometry{8 * 1024, 64, 2},    // L1: 2-way
    CacheGeometry{64 * 1024, 128, 4},  // L2: 4-way
    LatencyConfig{}};

/// BCP prefetch-buffer sizes: 8 entries helping L1, 32 entries helping L2.
inline constexpr std::uint32_t kL1PrefetchEntries = 8;
inline constexpr std::uint32_t kL2PrefetchEntries = 32;

/// Affiliation mask: primary and affiliated line addresses differ by this
/// XOR mask; 0x1 pairs consecutive lines = next-line prefetch (section 3.1).
inline constexpr std::uint32_t kAffiliationMask = 0x1;

}  // namespace cpc::cache
