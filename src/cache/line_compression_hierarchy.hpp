#pragma once
// LCC: a line-granularity compression cache in the style of the paper's
// reference [6] (Yang, Zhang, Gupta — "Frequent Value Compression in Data
// Caches", MICRO 2000), the related-work design section 5 contrasts CPP
// against:
//
//   "Two conflicting cache lines can be stored in the same line if both are
//    compressible; otherwise, only one of them is stored. Both of the above
//    schemes operate at the cache line level and do not distinguish the
//    importance of different words within a cache line. As a result, they
//    could not exploit the saved memory bandwidth for partial cache line
//    prefetching."
//
// Implementation: each L1 physical frame holds either one uncompressed line
// or two *fully compressible* lines mapping to the same set (every word
// compresses to 16 bits under the same scheme CPP uses — our stand-in for
// the frequent-value table). No prefetching: the doubled residency is pure
// capacity. Transfers are metered compressed, as in [6].

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/basic_cache.hpp"
#include "cache/config.hpp"
#include "cache/hierarchy.hpp"
#include "cache/traffic_policy.hpp"
#include "compress/codec.hpp"
#include "mem/sparse_memory.hpp"

namespace cpc::cache {

class LineCompressionHierarchy : public MemoryHierarchy {
 public:
  explicit LineCompressionHierarchy(HierarchyConfig config = kBaselineConfig,
                                    compress::Codec codec = compress::kPaperCodec);

  AccessResult read(std::uint32_t addr, std::uint32_t& value) override;
  AccessResult write(std::uint32_t addr, std::uint32_t value) override;
  std::string name() const override { return name_; }
  void validate() const override;

  /// Supports kPayloadBit strikes on resident L1 lines (the frame payload
  /// array); other fault kinds have no LCC analogue and are refused.
  bool inject_fault(const verify::FaultCommand& command) override;

  const HierarchyConfig& config() const { return config_; }
  mem::SparseMemory& memory() { return memory_; }

  /// Number of physical frames currently holding two compressed residents.
  std::uint64_t shared_frames() const;

 private:
  struct Resident {
    std::uint32_t line_addr = 0;
    bool dirty = false;
    std::uint64_t last_use = 0;
    std::vector<std::uint32_t> words;
    // Payload ECC over `words`, maintained incrementally by legitimate
    // writes; fault strikes bypass it (see core/compressed_line.hpp for the
    // rationale — recomputing would launder strikes).
    std::uint32_t ecc = 0;
  };
  struct Frame {
    // Slot 0 always used first. Two residents => both fully compressible.
    std::optional<Resident> slots[2];
  };

  bool fully_compressible(const std::vector<std::uint32_t>& words,
                          std::uint32_t line_addr) const;

  Resident* find(std::uint32_t line_addr, Frame** frame_out = nullptr);

  /// Installs a line into its set, possibly sharing a frame; returns it.
  Resident& install(std::uint32_t line_addr, std::vector<std::uint32_t> words);

  void retire(Resident& resident);

  BasicCache::Line& ensure_l2_line(std::uint32_t addr, AccessResult& result);
  void retire_l2_victim(const BasicCache::Evicted& victim);

  Resident& ensure_line(std::uint32_t addr, AccessResult& result);

  HierarchyConfig config_;
  compress::Codec codec_;
  std::string name_;
  std::vector<Frame> frames_;  // one per L1 set (direct-mapped frames)
  BasicCache l2_;
  mem::SparseMemory memory_;
  std::uint64_t clock_ = 0;
};

}  // namespace cpc::cache
