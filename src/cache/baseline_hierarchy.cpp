#include "cache/baseline_hierarchy.hpp"

#include <cassert>
#include <vector>

namespace cpc::cache {

BaselineHierarchy::BaselineHierarchy(std::string name, HierarchyConfig config,
                                     TransferFormat format,
                                     compress::Codec codec)
    : name_(std::move(name)),
      config_(config),
      format_(format),
      codec_(codec),
      l1_(config.l1),
      l2_(config.l2) {
  assert(config.l2.line_bytes % config.l1.line_bytes == 0);
}

void BaselineHierarchy::retire_l1_victim(const BasicCache::Evicted& victim) {
  if (!victim.valid || !victim.dirty) return;
  ++stats_.l1_writebacks;
  const std::uint32_t base = config_.l1.base_of_line(victim.line_addr);
  if (BasicCache::Line* l2_line = l2_.find(config_.l2.line_of(base))) {
    // Merge the dirty half-line into the resident L2 line; on-chip, no traffic.
    const std::uint32_t word0 = config_.l2.word_of(base);
    for (std::uint32_t i = 0; i < victim.words.size(); ++i) {
      l2_.write_word(*l2_line, word0 + i, victim.words[i]);
    }
  } else {
    // Non-allocating write-back straight to memory.
    ++stats_.mem_writebacks;
    memory_.write_words(base, static_cast<std::uint32_t>(victim.words.size()),
                        victim.words.data());
    meter_line_transfer(stats_.traffic, victim.words, base, format_,
                        /*writeback=*/true, codec_);
  }
}

void BaselineHierarchy::retire_l2_victim(const BasicCache::Evicted& victim) {
  if (!victim.valid || !victim.dirty) return;
  ++stats_.mem_writebacks;
  const std::uint32_t base = config_.l2.base_of_line(victim.line_addr);
  memory_.write_words(base, static_cast<std::uint32_t>(victim.words.size()),
                      victim.words.data());
  meter_line_transfer(stats_.traffic, victim.words, base, format_,
                      /*writeback=*/true, codec_);
}

BasicCache::Line& BaselineHierarchy::ensure_l2_line(std::uint32_t addr,
                                                    AccessResult& result) {
  const std::uint32_t line_addr = config_.l2.line_of(addr);
  if (BasicCache::Line* line = l2_.find(line_addr)) {
    l2_.touch(*line);
    return *line;
  }
  // L2 miss: fetch the full line from memory.
  result.l2_miss = true;
  result.served_by = ServedBy::kMemory;
  result.latency = config_.latency.memory;
  ++stats_.l2_misses;
  ++stats_.mem_fetch_lines;

  const std::uint32_t base = config_.l2.base_of_line(line_addr);
  line_scratch_.resize(config_.l2.words_per_line());
  memory_.read_words(base, static_cast<std::uint32_t>(line_scratch_.size()),
                     line_scratch_.data());
  meter_line_transfer(stats_.traffic, line_scratch_, base, format_,
                      /*writeback=*/false, codec_);

  l2_.fill(line_addr, line_scratch_, evict_scratch_);
  retire_l2_victim(evict_scratch_);
  BasicCache::Line* line = l2_.find(line_addr);
  assert(line != nullptr);
  return *line;
}

BasicCache::Line& BaselineHierarchy::ensure_l1_line(std::uint32_t addr,
                                                    AccessResult& result) {
  const std::uint32_t line_addr = config_.l1.line_of(addr);
  if (BasicCache::Line* line = l1_.find(line_addr)) {
    l1_.touch(*line);
    result.latency = config_.latency.l1_hit;
    result.served_by = ServedBy::kL1;
    return *line;
  }
  result.l1_miss = true;
  result.served_by = ServedBy::kL2;
  result.latency = config_.latency.l2_hit;
  ++stats_.l1_misses;

  BasicCache::Line& l2_line = ensure_l2_line(addr, result);

  // Copy the covering half of the L2 line into L1.
  const std::uint32_t base = config_.l1.base_of_line(line_addr);
  const std::uint32_t word0 = config_.l2.word_of(base);
  const std::span<const std::uint32_t> half{l2_line.words.data() + word0,
                                            config_.l1.words_per_line()};
  l1_.fill(line_addr, half, evict_scratch_);
  retire_l1_victim(evict_scratch_);
  BasicCache::Line* line = l1_.find(line_addr);
  assert(line != nullptr);
  return *line;
}

AccessResult BaselineHierarchy::read(std::uint32_t addr, std::uint32_t& value) {
  ++stats_.reads;
  AccessResult result;
  BasicCache::Line& line = ensure_l1_line(addr, result);
  value = l1_.read_word(line, config_.l1.word_of(addr));
  return result;
}

AccessResult BaselineHierarchy::write(std::uint32_t addr, std::uint32_t value) {
  ++stats_.writes;
  AccessResult result;
  BasicCache::Line& line = ensure_l1_line(addr, result);  // write-allocate
  l1_.write_word(line, config_.l1.word_of(addr), value);
  return result;
}

}  // namespace cpc::cache
