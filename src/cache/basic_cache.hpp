#pragma once
// A conventional set-associative write-back cache with true-LRU replacement
// that stores real data words. Used for BC, BCC (identical behaviour, only
// traffic metering differs), HAC, and as the cache component of BCP.

#include <cstdint>
#include <span>
#include <vector>

#include "cache/config.hpp"

namespace cpc::cache {

class BasicCache {
 public:
  struct Line {
    std::uint32_t line_addr = 0;  ///< full-address line index (addr / line_bytes)
    bool valid = false;
    bool dirty = false;
    std::uint64_t last_use = 0;  ///< LRU timestamp
    std::vector<std::uint32_t> words;
  };

  /// Result of an eviction: the victim's identity and content, so the
  /// hierarchy can write it back.
  struct Evicted {
    bool valid = false;
    bool dirty = false;
    std::uint32_t line_addr = 0;
    std::vector<std::uint32_t> words;
  };

  explicit BasicCache(CacheGeometry geometry);

  const CacheGeometry& geometry() const { return geo_; }

  /// Returns the resident line for `line_addr`, or nullptr. Does not touch LRU.
  Line* find(std::uint32_t line_addr);
  const Line* find(std::uint32_t line_addr) const;

  /// Marks a line most-recently-used.
  void touch(Line& line) { line.last_use = ++clock_; }

  /// Installs `words` as line `line_addr` (clean, MRU), evicting the LRU way
  /// of the set if necessary. `line_addr` must not currently be resident.
  Evicted fill(std::uint32_t line_addr, std::span<const std::uint32_t> words);

  /// As above, but writes the victim into `out`, reusing its word storage —
  /// the hierarchies keep one Evicted as scratch so the steady-state fill
  /// path never touches the allocator.
  void fill(std::uint32_t line_addr, std::span<const std::uint32_t> words,
            Evicted& out);

  /// Invalidates the line if resident; returns its prior content.
  Evicted invalidate(std::uint32_t line_addr);

  std::uint32_t read_word(const Line& line, std::uint32_t word) const {
    return line.words.at(word);
  }
  void write_word(Line& line, std::uint32_t word, std::uint32_t value) {
    line.words.at(word) = value;
    line.dirty = true;
  }

  /// Number of currently valid lines (for tests).
  std::size_t valid_lines() const;

 private:
  Line& lru_way(std::uint32_t set);

  CacheGeometry geo_;
  std::vector<Line> lines_;  // sets * ways, row-major by set
  std::uint64_t clock_ = 0;
};

}  // namespace cpc::cache
