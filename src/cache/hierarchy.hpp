#pragma once
// The word-based memory-hierarchy interface the CPU model drives, plus the
// statistics every configuration reports. All five paper configurations
// (BC, BCC, HAC, BCP, CPP) implement `MemoryHierarchy`.

#include <cstdint>
#include <string>

#include "mem/traffic_meter.hpp"
#include "verify/fault.hpp"

namespace cpc::cache {

/// Which component ultimately served an access (for stats/debugging).
enum class ServedBy : std::uint8_t {
  kL1,
  kL1Affiliated,
  kL1PrefetchBuffer,
  kL2,
  kL2Affiliated,
  kL2PrefetchBuffer,
  kMemory,
};

/// Timing and classification of one word access.
struct AccessResult {
  unsigned latency = 1;  ///< cycles until the value is available to the CPU
  ServedBy served_by = ServedBy::kL1;
  bool l1_miss = false;  ///< demand miss as the paper counts them (a prefetch
                         ///< buffer hit is NOT a miss, section 4.4)
  bool l2_miss = false;
};

/// Counters common to every hierarchy implementation.
struct HierarchyStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l1_affiliated_hits = 0;  ///< CPP only
  std::uint64_t l2_affiliated_hits = 0;  ///< CPP only
  std::uint64_t l1_pbuf_hits = 0;        ///< BCP only
  std::uint64_t l2_pbuf_hits = 0;        ///< BCP only
  std::uint64_t l1_writebacks = 0;       ///< dirty L1 evictions
  std::uint64_t mem_writebacks = 0;      ///< write-backs that reached memory
  std::uint64_t mem_fetch_lines = 0;     ///< demand line fetches from memory
  std::uint64_t prefetch_lines = 0;      ///< prefetch line fetches from memory (BCP)
  std::uint64_t l1_prefetch_inserts = 0;  ///< lines placed in the L1 buffer (BCP)
  std::uint64_t l2_prefetch_inserts = 0;  ///< lines placed in the L2 buffer (BCP)
  std::uint64_t partial_promotions = 0;  ///< CPP: affiliated→primary moves
  std::uint64_t affiliated_demotions = 0;  ///< CPP: victims kept as affiliated
  mem::TrafficMeter traffic;             ///< L2 <-> memory words (Fig. 10)

  std::uint64_t accesses() const { return reads + writes; }

  /// Fraction of buffered prefetches that were referenced before eviction
  /// (BCP prefetch accuracy). 0 when no prefetches were issued.
  double prefetch_accuracy() const {
    const std::uint64_t inserts = l1_prefetch_inserts + l2_prefetch_inserts;
    return inserts == 0 ? 0.0
                        : static_cast<double>(l1_pbuf_hits + l2_pbuf_hits) /
                              static_cast<double>(inserts);
  }

  double l1_miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(l1_misses) / static_cast<double>(accesses());
  }
};

/// A two-level data-cache hierarchy fed word-granular CPU requests.
///
/// Implementations are *functional*: they store real words, so `read` returns
/// exactly the most recently written value for the address (the property
/// tests rely on this).
class MemoryHierarchy {
 public:
  virtual ~MemoryHierarchy() = default;

  /// Reads the 32-bit word at `addr` (4-byte aligned).
  virtual AccessResult read(std::uint32_t addr, std::uint32_t& value) = 0;

  /// Writes the 32-bit word at `addr`.
  virtual AccessResult write(std::uint32_t addr, std::uint32_t value) = 0;

  /// Short configuration name ("BC", "BCC", "HAC", "BCP", "CPP").
  virtual std::string name() const = 0;

  /// Checks internal structural invariants; throws cpc::InvariantViolation
  /// on corruption. A no-op for configurations without extra invariants.
  virtual void validate() const {}

  /// Inflicts `command` on internal state (fault-injection campaigns,
  /// tools/cpc_faultcamp). Returns true when a target was found and the
  /// fault actually landed (or was armed for the next qualifying event);
  /// the default implementation supports no faults.
  virtual bool inject_fault(const verify::FaultCommand& command) {
    (void)command;
    return false;
  }

  /// Virtual so decorators (verify::GuardedHierarchy) can forward to the
  /// hierarchy they wrap.
  virtual const HierarchyStats& stats() const { return stats_; }
  HierarchyStats& mutable_stats() { return stats_; }

 protected:
  HierarchyStats stats_;
};

}  // namespace cpc::cache
