#pragma once
// BC / BCC / HAC: a conventional two-level write-back hierarchy.
//
//  * BC  — baseline geometry, uncompressed transfers.
//  * BCC — identical caches and timing; values are (de)compressed at the
//    CPU/L1 and L2/memory interfaces, so only the metered traffic changes
//    (paper: "BC and BCC have the same performance").
//  * HAC — doubled associativity at both levels, uncompressed transfers.

#include <cstdint>
#include <string>

#include "cache/basic_cache.hpp"
#include "cache/config.hpp"
#include "cache/hierarchy.hpp"
#include "cache/traffic_policy.hpp"
#include "mem/sparse_memory.hpp"

namespace cpc::cache {

class BaselineHierarchy : public MemoryHierarchy {
 public:
  BaselineHierarchy(std::string name, HierarchyConfig config, TransferFormat format,
                    compress::Codec codec = compress::kPaperCodec);

  AccessResult read(std::uint32_t addr, std::uint32_t& value) override;
  AccessResult write(std::uint32_t addr, std::uint32_t value) override;
  std::string name() const override { return name_; }

  const BasicCache& l1() const { return l1_; }
  const BasicCache& l2() const { return l2_; }
  mem::SparseMemory& memory() { return memory_; }
  const HierarchyConfig& config() const { return config_; }

  /// Convenience factories for the paper's configurations.
  static BaselineHierarchy make_bc() {
    return BaselineHierarchy("BC", kBaselineConfig, TransferFormat::kUncompressed);
  }
  static BaselineHierarchy make_bcc() {
    return BaselineHierarchy("BCC", kBaselineConfig, TransferFormat::kCompressed);
  }
  static BaselineHierarchy make_hac() {
    return BaselineHierarchy("HAC", kHigherAssocConfig, TransferFormat::kUncompressed);
  }

 protected:
  /// Ensures `l1_line` is resident in L1 and returns it, recording miss
  /// counters and the end-to-end latency into `result`.
  BasicCache::Line& ensure_l1_line(std::uint32_t addr, AccessResult& result);

  /// Ensures the L2 line covering `addr` is resident in L2 and returns it.
  /// Sets `result.l2_miss`/latency when it had to go to memory.
  BasicCache::Line& ensure_l2_line(std::uint32_t addr, AccessResult& result);

  /// Handles a line evicted from L1: dirty data goes to L2 if resident there,
  /// otherwise to memory (non-allocating write-back).
  void retire_l1_victim(const BasicCache::Evicted& victim);

  /// Handles a line evicted from L2: dirty data goes to memory.
  void retire_l2_victim(const BasicCache::Evicted& victim);

  std::string name_;
  HierarchyConfig config_;
  TransferFormat format_;
  compress::Codec codec_;  ///< meters kCompressed transfers (BCC variants)
  BasicCache l1_;
  BasicCache l2_;
  mem::SparseMemory memory_;
  // Reused across misses so the fill/evict path stays allocation-free.
  std::vector<std::uint32_t> line_scratch_;
  BasicCache::Evicted evict_scratch_;
};

}  // namespace cpc::cache
