#pragma once
// PAC: a pseudo-associative (column-associative) L1, the related-work
// design the paper contrasts CPP against in section 5:
//
//   "The pseudo associative cache also has a primary and a secondary cache
//    line. Our new design has similar access sequence. However, the cache
//    line is updated very differently. For pseudo associative cache, if a
//    cache line enters its secondary place, it has to kick out the original
//    line. Thus it has the danger to degrade the cache performance by
//    converting a fast hit to a slow hit or even a cache miss."
//
// Implementation: direct-mapped L1; a primary-location miss probes the
// alternate location (set index with its top bit flipped). An alternate hit
// costs one extra cycle and swaps the two lines so the next access is fast.
// A full miss fills the primary location and displaces the previous
// occupant into the alternate location, kicking out whatever lived there —
// the eviction pressure CPP avoids by only using *free* half-slots.

#include <cstdint>
#include <string>

#include "cache/baseline_hierarchy.hpp"

namespace cpc::cache {

class PseudoAssocHierarchy : public MemoryHierarchy {
 public:
  explicit PseudoAssocHierarchy(HierarchyConfig config = kBaselineConfig);

  AccessResult read(std::uint32_t addr, std::uint32_t& value) override;
  AccessResult write(std::uint32_t addr, std::uint32_t value) override;
  std::string name() const override { return "PAC"; }

  const HierarchyConfig& config() const { return config_; }
  mem::SparseMemory& memory() { return memory_; }

  std::uint64_t slow_hits() const { return slow_hits_; }

 private:
  struct Line {
    std::uint32_t line_addr = 0;
    bool valid = false;
    bool dirty = false;
    std::vector<std::uint32_t> words;
  };

  std::uint32_t alternate_slot(std::uint32_t slot) const {
    return slot ^ (config_.l1.num_sets() >> 1);
  }
  std::uint32_t home_slot(std::uint32_t line_addr) const {
    return config_.l1.set_of_line(line_addr);
  }

  /// Ensures the line is in its primary slot; returns it. Tracks latency and
  /// miss flags in `result`.
  Line& ensure_line(std::uint32_t addr, AccessResult& result);

  /// Dirty lines displaced out of the L1 go to L2 / memory.
  void retire(Line& line);

  // Shared L2/memory backend (same policies as the baseline hierarchy).
  BasicCache::Line& ensure_l2_line(std::uint32_t addr, AccessResult& result);
  void retire_l2_victim(const BasicCache::Evicted& victim);

  HierarchyConfig config_;
  std::vector<Line> slots_;  // one line per set (direct mapped)
  BasicCache l2_;
  mem::SparseMemory memory_;
  std::uint64_t slow_hits_ = 0;
  // Reused across misses so the fill/evict path stays allocation-free.
  std::vector<std::uint32_t> line_scratch_;
  BasicCache::Evicted evict_scratch_;
};

}  // namespace cpc::cache
