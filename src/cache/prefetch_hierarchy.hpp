#pragma once
// BCP: the baseline hierarchy extended with next-line prefetch-on-miss into
// dedicated fully associative prefetch buffers (paper section 4.1):
//
//  * an L1 demand miss prefetches the next L1-sized line into an 8-entry
//    buffer beside L1 (sourced from L2, going to memory if L2 misses);
//  * an L2 demand miss prefetches the next L2-sized line from memory into a
//    32-entry buffer beside L2.
//
// A hit in either buffer is not counted as a miss (section 4.4) and moves
// the line into the corresponding cache. All transfers are uncompressed, so
// prefetching shows up directly as extra memory traffic (Fig. 10: +80% on
// average).

#include <cstdint>
#include <string>

#include "cache/baseline_hierarchy.hpp"
#include "cache/prefetch_buffer.hpp"

namespace cpc::cache {

class PrefetchHierarchy : public MemoryHierarchy {
 public:
  explicit PrefetchHierarchy(HierarchyConfig config = kBaselineConfig,
                             std::uint32_t l1_buffer_entries = kL1PrefetchEntries,
                             std::uint32_t l2_buffer_entries = kL2PrefetchEntries);

  AccessResult read(std::uint32_t addr, std::uint32_t& value) override;
  AccessResult write(std::uint32_t addr, std::uint32_t value) override;
  std::string name() const override { return "BCP"; }

  const BasicCache& l1() const { return l1_; }
  const BasicCache& l2() const { return l2_; }
  const PrefetchBuffer& l1_buffer() const { return l1_buffer_; }
  const PrefetchBuffer& l2_buffer() const { return l2_buffer_; }
  const HierarchyConfig& config() const { return config_; }
  mem::SparseMemory& memory() { return memory_; }

 private:
  /// Ensures the word's L1 line is resident (cache proper) and returns it.
  BasicCache::Line& ensure_l1_line(std::uint32_t addr, AccessResult& result);

  /// Reads an L1-sized line image out of the L2 side (L2 cache, L2 buffer,
  /// or memory). `demand` distinguishes demand fills from L1-level
  /// prefetches: only demand L2 misses count as misses and trigger the
  /// L2-level next-line prefetch. Returns a reference to half_scratch_,
  /// valid until the next call — callers copy out before triggering
  /// further prefetches.
  const std::vector<std::uint32_t>& fetch_half_line_from_l2_side(
      std::uint32_t l1_line_addr, bool demand, AccessResult& result);

  /// Ensures the L2 line is resident in the L2 cache proper.
  BasicCache::Line& ensure_l2_line(std::uint32_t l2_line_addr, bool demand,
                                   AccessResult& result);

  void prefetch_into_l1_buffer(std::uint32_t l1_line_addr);
  void prefetch_into_l2_buffer(std::uint32_t l2_line_addr);

  void retire_l1_victim(const BasicCache::Evicted& victim);
  void retire_l2_victim(const BasicCache::Evicted& victim);

  /// Reads a line image from memory into line_scratch_ and meters the
  /// transfer. The reference is valid until the next call.
  const std::vector<std::uint32_t>& read_memory_line(std::uint32_t base,
                                                     std::uint32_t words,
                                                     bool prefetch);

  HierarchyConfig config_;
  BasicCache l1_;
  BasicCache l2_;
  PrefetchBuffer l1_buffer_;
  PrefetchBuffer l2_buffer_;
  mem::SparseMemory memory_;
  // Reused line images: every fill/prefetch on the hot path copies through
  // these instead of allocating a fresh vector per miss.
  std::vector<std::uint32_t> line_scratch_;
  std::vector<std::uint32_t> half_scratch_;
  BasicCache::Evicted evict_scratch_;
};

}  // namespace cpc::cache
