#include "cache/basic_cache.hpp"

#include <algorithm>
#include <cassert>

namespace cpc::cache {

BasicCache::BasicCache(CacheGeometry geometry) : geo_(geometry) {
  assert(geo_.num_sets() >= 1);
  lines_.resize(static_cast<std::size_t>(geo_.num_sets()) * geo_.ways);
  for (auto& line : lines_) line.words.resize(geo_.words_per_line(), 0);
}

BasicCache::Line* BasicCache::find(std::uint32_t line_addr) {
  const std::uint32_t set = geo_.set_of_line(line_addr);
  for (std::uint32_t w = 0; w < geo_.ways; ++w) {
    Line& line = lines_[static_cast<std::size_t>(set) * geo_.ways + w];
    if (line.valid && line.line_addr == line_addr) return &line;
  }
  return nullptr;
}

const BasicCache::Line* BasicCache::find(std::uint32_t line_addr) const {
  return const_cast<BasicCache*>(this)->find(line_addr);
}

BasicCache::Line& BasicCache::lru_way(std::uint32_t set) {
  Line* victim = nullptr;
  for (std::uint32_t w = 0; w < geo_.ways; ++w) {
    Line& line = lines_[static_cast<std::size_t>(set) * geo_.ways + w];
    if (!line.valid) return line;  // free way beats any occupied one
    if (victim == nullptr || line.last_use < victim->last_use) victim = &line;
  }
  return *victim;
}

BasicCache::Evicted BasicCache::fill(std::uint32_t line_addr,
                                     std::span<const std::uint32_t> words) {
  Evicted out;
  fill(line_addr, words, out);
  return out;
}

void BasicCache::fill(std::uint32_t line_addr,
                      std::span<const std::uint32_t> words, Evicted& out) {
  assert(find(line_addr) == nullptr && "fill of already-resident line");
  assert(words.size() == geo_.words_per_line());
  Line& slot = lru_way(geo_.set_of_line(line_addr));

  out.valid = false;
  if (slot.valid) {
    out.valid = true;
    out.dirty = slot.dirty;
    out.line_addr = slot.line_addr;
    out.words.assign(slot.words.begin(), slot.words.end());
  }
  slot.valid = true;
  slot.dirty = false;
  slot.line_addr = line_addr;
  std::copy(words.begin(), words.end(), slot.words.begin());
  touch(slot);
}

BasicCache::Evicted BasicCache::invalidate(std::uint32_t line_addr) {
  Evicted out;
  if (Line* line = find(line_addr)) {
    out.valid = true;
    out.dirty = line->dirty;
    out.line_addr = line->line_addr;
    out.words = line->words;
    line->valid = false;
    line->dirty = false;
  }
  return out;
}

std::size_t BasicCache::valid_lines() const {
  return static_cast<std::size_t>(
      std::count_if(lines_.begin(), lines_.end(), [](const Line& l) { return l.valid; }));
}

}  // namespace cpc::cache
