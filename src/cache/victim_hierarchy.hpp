#pragma once
// VC: a direct-mapped L1 backed by a small fully associative victim cache
// (Jouppi 1990 — the same paper BCP's prefetch buffers come from, reference
// [3] of the reproduced paper). Evicted L1 lines park in the victim cache;
// a miss that hits there swaps the line back at a one-cycle penalty.
//
// Included as a third related-work comparator: like CPP's affiliated place
// it gives conflict victims a second chance near the L1, but it needs
// dedicated storage, holds whole lines only, and cannot prefetch.

#include <cstdint>
#include <list>
#include <string>

#include "cache/baseline_hierarchy.hpp"

namespace cpc::cache {

class VictimHierarchy : public MemoryHierarchy {
 public:
  explicit VictimHierarchy(HierarchyConfig config = kBaselineConfig,
                           std::uint32_t victim_entries = 8);

  AccessResult read(std::uint32_t addr, std::uint32_t& value) override;
  AccessResult write(std::uint32_t addr, std::uint32_t value) override;
  std::string name() const override { return "VC"; }

  const HierarchyConfig& config() const { return config_; }
  mem::SparseMemory& memory() { return memory_; }
  std::uint64_t victim_hits() const { return victim_hits_; }
  std::size_t victim_occupancy() const { return victims_.size(); }

 private:
  struct Entry {
    std::uint32_t line_addr = 0;
    bool dirty = false;
    std::vector<std::uint32_t> words;
  };

  BasicCache::Line& ensure_line(std::uint32_t addr, AccessResult& result);
  void park_victim(const BasicCache::Evicted& evicted);
  void retire_entry(Entry entry);

  BasicCache::Line& ensure_l2_line(std::uint32_t addr, AccessResult& result);
  void retire_l2_victim(const BasicCache::Evicted& victim);

  HierarchyConfig config_;
  std::uint32_t capacity_;
  BasicCache l1_;
  BasicCache l2_;
  std::list<Entry> victims_;  // front = MRU
  mem::SparseMemory memory_;
  std::uint64_t victim_hits_ = 0;
};

}  // namespace cpc::cache
