#include "analysis/reuse_distance.hpp"

#include <cassert>

namespace cpc::analysis {

namespace {
/// Deterministic 64-bit mix for treap priorities (splitmix64 finaliser).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

ReuseDistanceProfiler::Node* ReuseDistanceProfiler::merge(Node* a, Node* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (a->priority > b->priority) {
    a->right = merge(a->right, b);
    pull(a);
    return a;
  }
  b->left = merge(a, b->left);
  pull(b);
  return b;
}

void ReuseDistanceProfiler::split(Node* n, std::uint64_t time, Node*& left,
                                  Node*& right) {
  if (n == nullptr) {
    left = right = nullptr;
    return;
  }
  if (n->time <= time) {
    left = n;
    split(n->right, time, n->right, right);
    pull(n);
  } else {
    right = n;
    split(n->left, time, left, n->left);
    pull(n);
  }
}

void ReuseDistanceProfiler::insert(std::uint64_t time) {
  Node* node;
  if (!free_.empty()) {
    node = free_.back();
    free_.pop_back();
  } else {
    // std::deque gives stable references, so treap pointers survive growth.
    pool_.push_back(Node{});
    node = &pool_.back();
  }
  *node = Node{time, mix(time), 1, nullptr, nullptr};
  Node *left, *right;
  split(root_, time, left, right);
  root_ = merge(merge(left, node), right);
}

void ReuseDistanceProfiler::erase(std::uint64_t time) {
  Node *left, *mid, *right;
  split(root_, time - 1, left, mid);
  split(mid, time, mid, right);
  assert(mid != nullptr && mid->time == time);
  free_.push_back(mid);
  root_ = merge(left, right);
}

std::uint64_t ReuseDistanceProfiler::count_greater(std::uint64_t time) const {
  std::uint64_t count = 0;
  const Node* n = root_;
  while (n != nullptr) {
    if (n->time > time) {
      count += 1 + size_of(n->right);
      n = n->left;
    } else {
      n = n->right;
    }
  }
  return count;
}

std::uint64_t ReuseDistanceProfiler::access(std::uint32_t addr) {
  const std::uint32_t line = addr / line_bytes_;
  ++time_;
  ++histogram_.total;

  std::uint64_t distance = kInfinite;
  const auto it = last_access_.find(line);
  if (it != last_access_.end()) {
    distance = count_greater(it->second);
    erase(it->second);
  }
  insert(time_);
  last_access_[line] = time_;

  if (distance == kInfinite) {
    ++histogram_.cold;
  } else {
    unsigned bucket = 0;
    while ((std::uint64_t{2} << bucket) <= distance) ++bucket;
    if (histogram_.buckets.size() <= bucket) histogram_.buckets.resize(bucket + 1, 0);
    ++histogram_.buckets[bucket];
    ++distance_counts_[distance];
  }
  return distance;
}

std::uint64_t ReuseDistanceProfiler::misses_at_capacity(std::uint64_t lines) const {
  // Miss iff distance >= lines (LRU stack property), plus all cold misses.
  std::uint64_t misses = histogram_.cold;
  for (auto it = distance_counts_.lower_bound(lines); it != distance_counts_.end();
       ++it) {
    misses += it->second;
  }
  return misses;
}

}  // namespace cpc::analysis
